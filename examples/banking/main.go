// Banking: a SmallBank-style application on the public API. Concurrent
// tellers transfer money between accounts whose partitions start scattered
// across sites; DynaMast remasters hot account groups together, every
// transfer runs at exactly one site, and the global balance invariant
// holds throughout.
package main

import (
	"encoding/binary"
	"fmt"
	"log"
	"math/rand"
	"sync"
	"time"

	"dynamast"
)

const (
	accounts       = 5_000
	initialBalance = 1_000
	tellers        = 8
	transfersEach  = 250
)

func ref(acct uint64) dynamast.RowRef {
	return dynamast.RowRef{Table: "accounts", Key: acct}
}

func encode(v uint64) []byte {
	b := make([]byte, 8)
	binary.BigEndian.PutUint64(b, v)
	return b
}

func main() {
	cluster, err := dynamast.New(dynamast.Config{
		Sites:       4,
		Partitioner: dynamast.PartitionByRange(50), // 50 accounts per branch
		// Balance-dominant weights keep mastership spread: transfers pair
		// random branches, so without a strong balance term co-location
		// would eventually merge all branches onto one site.
		Weights: dynamast.YCSBWeights(),
	})
	if err != nil {
		log.Fatal(err)
	}
	defer cluster.Close()

	cluster.CreateTable("accounts")
	rows := make([]dynamast.LoadRow, 0, accounts)
	for a := uint64(0); a < accounts; a++ {
		rows = append(rows, dynamast.LoadRow{Ref: ref(a), Data: encode(initialBalance)})
	}
	cluster.Load(rows)

	var wg sync.WaitGroup
	for t := 0; t < tellers; t++ {
		wg.Add(1)
		go func(t int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(t)))
			sess := cluster.Session(t)
			for i := 0; i < transfersEach; i++ {
				src := uint64(rng.Intn(accounts))
				dst := uint64(rng.Intn(accounts))
				if src == dst {
					continue
				}
				amount := uint64(1 + rng.Intn(100))
				ws := []dynamast.RowRef{ref(src), ref(dst)}
				err := sess.Update(ws, func(tx dynamast.Tx) error {
					sraw, ok := tx.Read(ref(src))
					if !ok {
						return fmt.Errorf("account %d missing", src)
					}
					draw, ok := tx.Read(ref(dst))
					if !ok {
						return fmt.Errorf("account %d missing", dst)
					}
					sbal := binary.BigEndian.Uint64(sraw)
					if sbal < amount {
						return nil // insufficient funds; commit no-op
					}
					dbal := binary.BigEndian.Uint64(draw)
					if err := tx.Write(ref(src), encode(sbal-amount)); err != nil {
						return err
					}
					return tx.Write(ref(dst), encode(dbal+amount))
				})
				if err != nil {
					log.Fatalf("teller %d: %v", t, err)
				}
			}
		}(t)
	}
	wg.Wait()

	// Audit: the sum of all balances must equal the minted total. The
	// audit is a read-only transaction served by any replica; waiting for
	// the cluster to quiesce first lets it run against any site.
	if err := cluster.WaitQuiesced(10 * time.Second); err != nil {
		log.Fatal(err)
	}
	auditor := cluster.Session(999)
	var total uint64
	err = auditor.Read(func(tx dynamast.Tx) error {
		total = 0
		for _, kv := range tx.Scan("accounts", 0, accounts) {
			total += binary.BigEndian.Uint64(kv.Value)
		}
		return nil
	})
	if err != nil {
		log.Fatal(err)
	}
	want := uint64(accounts * initialBalance)
	fmt.Printf("audit: total=%d want=%d ok=%v\n", total, want, total == want)

	m := cluster.Selector().Metrics()
	st := cluster.Stats()
	fmt.Printf("transfers committed: %d (per site %v)\n", st.Commits, st.PerSiteCommits)
	fmt.Printf("remastered: %d of %d write txns (%.1f%%)\n",
		m.RemasterTxns, m.WriteTxns, 100*float64(m.RemasterTxns)/float64(m.WriteTxns))
	fmt.Println("(transfers pair uniformly random branches, so most cannot be")
	fmt.Println(" single-sited in advance — each one remasters, runs at exactly")
	fmt.Println(" one site, and the balance term keeps the branches spread)")
	if total != want {
		log.Fatal("INVARIANT VIOLATED")
	}
}
