// Adaptive: demonstrates DynaMast learning a changing workload (the
// paper's §VI-B5). Phase 1 drives co-accessed key groups from one
// correlation pattern; phase 2 switches to a different pattern. The site
// selector's statistics expire old samples, it re-learns the correlations,
// and throughput recovers as remastering co-locates the new groups.
package main

import (
	"fmt"
	"log"
	"math/rand"
	"time"

	"dynamast"
)

const (
	sites      = 4
	partitions = 200
	partSize   = 100
	clients    = 32
)

func key(part uint64, r *rand.Rand) uint64 {
	return part*partSize + uint64(r.Intn(partSize))
}

// drive runs txns that co-access partition p with pair(p) for the given
// duration and reports throughput and the remaster count delta.
func drive(cluster *dynamast.Cluster, pair func(uint64) uint64, d time.Duration, label string) {
	start := time.Now()
	deadline := start.Add(d)
	startMetrics := cluster.Selector().Metrics()
	done := make(chan int, clients)
	for c := 0; c < clients; c++ {
		go func(c int) {
			r := rand.New(rand.NewSource(int64(c) + 42))
			sess := cluster.Session(c)
			n := 0
			for time.Now().Before(deadline) {
				p := uint64(r.Intn(partitions))
				ws := []dynamast.RowRef{
					{Table: "kv", Key: key(p, r)},
					{Table: "kv", Key: key(pair(p), r)},
				}
				err := sess.Update(ws, func(tx dynamast.Tx) error {
					for _, ref := range ws {
						if err := tx.Write(ref, []byte("x")); err != nil {
							return err
						}
					}
					return nil
				})
				if err != nil {
					log.Fatal(err)
				}
				n++
			}
			done <- n
		}(c)
	}
	total := 0
	for c := 0; c < clients; c++ {
		total += <-done
	}
	m := cluster.Selector().Metrics()
	fmt.Printf("%-22s %6.0f txn/s   remastered %4d txns, moved %4d partitions\n",
		label, float64(total)/d.Seconds(),
		m.RemasterTxns-startMetrics.RemasterTxns,
		m.PartsMoved-startMetrics.PartsMoved)
}

func main() {
	cluster, err := dynamast.New(dynamast.Config{
		Sites:       sites,
		Partitioner: dynamast.PartitionByRange(partSize),
		Weights:     dynamast.Weights{Balance: 1e6, Delay: 0.5, IntraTxn: 3},
	})
	if err != nil {
		log.Fatal(err)
	}
	defer cluster.Close()
	cluster.CreateTable("kv")
	var rows []dynamast.LoadRow
	for k := uint64(0); k < partitions*partSize; k++ {
		rows = append(rows, dynamast.LoadRow{Ref: dynamast.RowRef{Table: "kv", Key: k}, Data: []byte("0")})
	}
	cluster.Load(rows)

	// Phase 1: partition p is always co-written with its "offset partner"
	// p+100 — one hundred disjoint pairs the selector has never seen.
	offset := func(p uint64) uint64 { return (p + partitions/2) % partitions }
	fmt.Println("phase 1: offset-pair correlations (learning from scratch)")
	for i := 0; i < 3; i++ {
		drive(cluster, offset, 2*time.Second, fmt.Sprintf("  window %d", i+1))
	}

	// Phase 2: the correlation flips to a "mirror" pattern — p is now
	// co-written with partitions-1-p. Every learned pair is wrong; the
	// statistics tracker expires the stale correlations and remastering
	// re-co-locates the new pairs, after which churn returns to zero.
	mirror := func(p uint64) uint64 { return partitions - 1 - p }
	fmt.Println("phase 2: mirrored correlations (workload change)")
	for i := 0; i < 4; i++ {
		drive(cluster, mirror, 2*time.Second, fmt.Sprintf("  window %d", i+1))
	}
	fmt.Println("remastering spikes at each pattern change, then decays to zero")
	fmt.Println("once the selector has co-located the new partition pairs.")
}
