// Quickstart: build an embedded four-site DynaMast cluster, run update and
// read-only transactions through a session, and watch the cluster remaster
// data on demand.
package main

import (
	"fmt"
	"log"

	"dynamast"
)

func main() {
	// Four data sites; keys grouped into partitions of 100. The zero
	// network config means an instant wire — ideal for embedding.
	cluster, err := dynamast.New(dynamast.Config{
		Sites:       4,
		Partitioner: dynamast.PartitionByRange(100),
	})
	if err != nil {
		log.Fatal(err)
	}
	defer cluster.Close()

	// Declare a table and load some rows (replicated to every site).
	cluster.CreateTable("inventory")
	var rows []dynamast.LoadRow
	for k := uint64(0); k < 1000; k++ {
		rows = append(rows, dynamast.LoadRow{
			Ref:  dynamast.RowRef{Table: "inventory", Key: k},
			Data: []byte(fmt.Sprintf("sku-%04d qty=100", k)),
		})
	}
	cluster.Load(rows)

	// A session provides strong-session snapshot isolation: its reads
	// always reflect its own earlier writes, at whichever replica serves
	// them.
	sess := cluster.Session(1)

	// An update transaction declares its write set up front; the site
	// selector remasters the written partitions to one site if their
	// masters are split, then the transaction runs entirely at that site.
	writeSet := []dynamast.RowRef{
		{Table: "inventory", Key: 42},  // partition 0, initially at site 0
		{Table: "inventory", Key: 142}, // partition 1, initially at site 1
	}
	err = sess.Update(writeSet, func(tx dynamast.Tx) error {
		for _, ref := range writeSet {
			old, _ := tx.Read(ref)
			if err := tx.Write(ref, append(old[:0:0], "restocked"...)); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		log.Fatal(err)
	}

	// Read-only transactions run at any replica without remastering.
	err = sess.Read(func(tx dynamast.Tx) error {
		data, ok := tx.Read(dynamast.RowRef{Table: "inventory", Key: 42})
		fmt.Printf("key 42 -> %q (found=%v)\n", data, ok)
		rows := tx.Scan("inventory", 40, 45)
		fmt.Printf("scan [40,45) -> %d rows\n", len(rows))
		return nil
	})
	if err != nil {
		log.Fatal(err)
	}

	m := cluster.Selector().Metrics()
	fmt.Printf("write txns: %d, remastered: %d, partitions moved: %d\n",
		m.WriteTxns, m.RemasterTxns, m.PartsMoved)
	for p := uint64(0); p < 10; p++ {
		fmt.Printf("partition %d mastered at site %d\n", p, cluster.Selector().MasterOf(p))
	}
}
