// Cluster: runs DynaMast behind a real TCP server (the same wire protocol
// cmd/dynamastd serves) and drives it with concurrent remote clients over
// gob-framed RPC — demonstrating that the system is a networked database,
// not only an embeddable library.
package main

import (
	"fmt"
	"log"
	"sync"

	"dynamast"
	"dynamast/internal/server"
	"dynamast/internal/storage"
)

func main() {
	cluster, err := dynamast.New(dynamast.Config{
		Sites:       3,
		Partitioner: dynamast.PartitionByRange(100),
	})
	if err != nil {
		log.Fatal(err)
	}
	defer cluster.Close()

	srv, addr, err := server.Serve(cluster, "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	defer srv.Close()
	fmt.Println("dynamast serving on", addr)

	// Remote clients: each increments shared counters transactionally.
	const clients, increments = 4, 50
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			cl, err := server.Dial(addr.String(), c)
			if err != nil {
				log.Fatal(err)
			}
			defer cl.Close()
			if c == 0 {
				if err := cl.CreateTable("counters"); err != nil {
					log.Fatal(err)
				}
			}
			ws := []storage.RowRef{
				{Table: "counters", Key: 1},
				{Table: "counters", Key: 101}, // different partition
			}
			for i := 0; i < increments; i++ {
				_, err := cl.Txn(ws, []server.Op{
					{Kind: server.OpAdd, Table: "counters", Key: 1, Delta: 1},
					{Kind: server.OpAdd, Table: "counters", Key: 101, Delta: 2},
				})
				if err != nil {
					log.Fatal(err)
				}
			}
		}(c)
	}
	// Table creation races with the other clients' first transactions;
	// give client 0 a head start by creating the table eagerly here too.
	cluster.CreateTable("counters")
	wg.Wait()

	reader, err := server.Dial(addr.String(), 99)
	if err != nil {
		log.Fatal(err)
	}
	defer reader.Close()
	res, err := reader.Txn(nil, []server.Op{
		{Kind: server.OpGet, Table: "counters", Key: 1},
		{Kind: server.OpGet, Table: "counters", Key: 101},
	})
	if err != nil {
		log.Fatal(err)
	}
	dec := func(b []byte) (v uint64) {
		for _, x := range b {
			v = v<<8 | uint64(x)
		}
		return
	}
	c1, c2 := dec(res[0].Value), dec(res[1].Value)
	fmt.Printf("counter1=%d (want %d)  counter2=%d (want %d)\n",
		c1, clients*increments, c2, 2*clients*increments)
	if c1 != clients*increments || c2 != 2*clients*increments {
		log.Fatal("LOST UPDATES over the network path")
	}
	st := cluster.Stats()
	fmt.Printf("commits=%d per-site=%v remasters=%d\n", st.Commits, st.PerSiteCommits, st.Remasters)
}
