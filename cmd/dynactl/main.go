// Command dynactl is a command-line client for dynamastd.
//
// Usage:
//
//	dynactl [-addr host:port] [-client 1] <command> [args]
//
// Commands:
//
//	create-table <table>
//	put <table> <key> <value>
//	get <table> <key>
//	add <table> <key> <delta>          atomic counter increment
//	scan <table> <lo> <hi>
//	txn <table> <key1,key2,...>        atomically increment several keys
//	bench <table> <keys> <ops>         quick closed-loop load generator
//	stats                              cluster statistics snapshot
//	checkpoint                         take a checkpoint now: snapshots every
//	                                   site and truncates the covered WAL
//	                                   prefix (requires -wal-dir on the daemon)
//	faults [set <spec> | off]          show, replace ("category:kind:prob
//	                                   [:delay]", comma-separated) or clear
//	                                   the cluster's fault-injection rules
//	metrics [prom] [traces N]          full observability snapshot; "prom"
//	                                   switches to Prometheus exposition
//	                                   format, "traces N" appends the N most
//	                                   recent transaction lifecycle traces
package main

import (
	"flag"
	"fmt"
	"log"
	"math/rand"
	"os"
	"strconv"
	"strings"
	"time"

	"dynamast/internal/server"
	"dynamast/internal/storage"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:7070", "dynamastd address")
	client := flag.Int("client", 1, "client/session id")
	flag.Parse()
	args := flag.Args()
	if len(args) == 0 {
		flag.Usage()
		os.Exit(2)
	}

	cl, err := server.Dial(*addr, *client)
	if err != nil {
		log.Fatalf("dynactl: connect %s: %v", *addr, err)
	}
	defer cl.Close()

	cmd, args := args[0], args[1:]
	if err := run(cl, cmd, args); err != nil {
		log.Fatalf("dynactl: %s: %v", cmd, err)
	}
}

func run(cl *server.Client, cmd string, args []string) error {
	u64 := func(s string) uint64 {
		v, err := strconv.ParseUint(s, 10, 64)
		if err != nil {
			log.Fatalf("dynactl: bad number %q", s)
		}
		return v
	}
	switch cmd {
	case "create-table":
		if len(args) != 1 {
			return fmt.Errorf("usage: create-table <table>")
		}
		return cl.CreateTable(args[0])

	case "put":
		if len(args) != 3 {
			return fmt.Errorf("usage: put <table> <key> <value>")
		}
		return cl.Put(args[0], u64(args[1]), []byte(args[2]))

	case "get":
		if len(args) != 2 {
			return fmt.Errorf("usage: get <table> <key>")
		}
		data, ok, err := cl.Get(args[0], u64(args[1]))
		if err != nil {
			return err
		}
		if !ok {
			fmt.Println("(not found)")
			return nil
		}
		fmt.Printf("%q\n", data)
		return nil

	case "add":
		if len(args) != 3 {
			return fmt.Errorf("usage: add <table> <key> <delta>")
		}
		delta, err := strconv.ParseInt(args[2], 10, 64)
		if err != nil {
			return err
		}
		key := u64(args[1])
		res, err := cl.Txn(
			[]storage.RowRef{{Table: args[0], Key: key}},
			[]server.Op{{Kind: server.OpAdd, Table: args[0], Key: key, Delta: delta}})
		if err != nil {
			return err
		}
		fmt.Printf("-> %d\n", beU64(res[0].Value))
		return nil

	case "scan":
		if len(args) != 3 {
			return fmt.Errorf("usage: scan <table> <lo> <hi>")
		}
		res, err := cl.Txn(nil, []server.Op{{
			Kind: server.OpScan, Table: args[0], Lo: u64(args[1]), Hi: u64(args[2]),
		}})
		if err != nil {
			return err
		}
		for _, kv := range res[0].Rows {
			fmt.Printf("%d\t%q\n", kv.Key, kv.Value)
		}
		fmt.Printf("(%d rows)\n", len(res[0].Rows))
		return nil

	case "txn":
		if len(args) != 2 {
			return fmt.Errorf("usage: txn <table> <key1,key2,...>")
		}
		var ws []storage.RowRef
		var ops []server.Op
		for _, part := range strings.Split(args[1], ",") {
			k := u64(part)
			ws = append(ws, storage.RowRef{Table: args[0], Key: k})
			ops = append(ops, server.Op{Kind: server.OpAdd, Table: args[0], Key: k, Delta: 1})
		}
		res, err := cl.Txn(ws, ops)
		if err != nil {
			return err
		}
		for i, r := range res {
			fmt.Printf("%d -> %d\n", ws[i].Key, beU64(r.Value))
		}
		return nil

	case "stats":
		st, err := cl.Stats()
		if err != nil {
			return err
		}
		fmt.Printf("commits:        %d  (per site %v)\n", st.Commits, st.PerSiteCommits)
		fmt.Printf("write txns:     %d  routed %v\n", st.WriteTxns, st.RoutedPerSite)
		fmt.Printf("read txns:      %d\n", st.ReadTxns)
		fmt.Printf("remastered:     %d txns, %d partitions moved\n", st.RemasterTxns, st.PartsMoved)
		for i, vv := range st.SiteVectors {
			fmt.Printf("site %d vector:  %v\n", i, vv)
		}
		return nil

	case "checkpoint":
		if len(args) != 0 {
			return fmt.Errorf("usage: checkpoint")
		}
		cp, err := cl.Checkpoint()
		if err != nil {
			return err
		}
		fmt.Printf("checkpoint %d committed\n", cp.Seq)
		for i := range cp.Rows {
			fmt.Printf("site %d:  %d rows, %d bytes snapshotted; replay low-water offset %d\n",
				i, cp.Rows[i], cp.Bytes[i], cp.LowWater[i])
		}
		return nil

	case "faults":
		spec := ""
		switch {
		case len(args) == 0: // show
		case len(args) == 1 && args[0] == "off":
			spec = "off"
		case len(args) == 2 && args[0] == "set":
			spec = args[1]
		default:
			return fmt.Errorf("usage: faults [set <spec> | off]")
		}
		f, err := cl.Faults(spec)
		if err != nil {
			return err
		}
		if !f.Enabled {
			fmt.Println("fault injection: disabled (start dynamastd with -fault-spec)")
		} else {
			fmt.Printf("fault injection: enabled (seed %d)\n", f.Seed)
			if len(f.Rules) == 0 {
				fmt.Println("rules:          (none)")
			}
			for _, r := range f.Rules {
				if r.Kind == "delay" {
					fmt.Printf("rule:           %s:%s:%v:%v\n", r.Category, r.Kind, r.Prob, r.Delay)
				} else {
					fmt.Printf("rule:           %s:%s:%v\n", r.Category, r.Kind, r.Prob)
				}
			}
			for k, n := range f.Injected {
				fmt.Printf("injected:       %-20s %d\n", k, n)
			}
		}
		fmt.Printf("rpc retries:    %d\n", f.RPCRetries)
		fmt.Printf("site failovers: %d\n", f.Failovers)
		return nil

	case "metrics":
		prom := false
		traces := 0
		for i := 0; i < len(args); i++ {
			switch args[i] {
			case "prom":
				prom = true
			case "traces":
				if i+1 >= len(args) {
					return fmt.Errorf("usage: metrics [prom] [traces N]")
				}
				i++
				traces = int(u64(args[i]))
			default:
				return fmt.Errorf("usage: metrics [prom] [traces N]")
			}
		}
		m, err := cl.Metrics(traces)
		if err != nil {
			return err
		}
		if prom {
			m.Snapshot.WritePrometheus(os.Stdout)
		} else {
			m.Snapshot.WriteText(os.Stdout)
		}
		for _, tr := range m.Traces {
			fmt.Printf("trace %d client=%d site=%d seq=%d remastered=%v total=%s\n",
				tr.ID, tr.Client, tr.Site, tr.Seq, tr.Remastered, tr.Total)
			for _, st := range []string{"route", "remaster", "execute", "commit", "wal_publish", "refresh_apply"} {
				if ns, ok := tr.Stages[st]; ok {
					fmt.Printf("  %-13s %s\n", st, time.Duration(ns))
				}
			}
		}
		return nil

	case "bench":
		if len(args) != 3 {
			return fmt.Errorf("usage: bench <table> <keys> <ops>")
		}
		keys, ops := u64(args[1]), int(u64(args[2]))
		rng := rand.New(rand.NewSource(time.Now().UnixNano()))
		start := time.Now()
		for i := 0; i < ops; i++ {
			k := uint64(rng.Intn(int(keys)))
			if _, err := cl.Txn(
				[]storage.RowRef{{Table: args[0], Key: k}},
				[]server.Op{{Kind: server.OpAdd, Table: args[0], Key: k, Delta: 1}}); err != nil {
				return err
			}
		}
		d := time.Since(start)
		fmt.Printf("%d txns in %v (%.0f txn/s, avg %v)\n",
			ops, d.Round(time.Millisecond), float64(ops)/d.Seconds(),
			(d / time.Duration(ops)).Round(time.Microsecond))
		return nil
	}
	return fmt.Errorf("unknown command %q", cmd)
}

func beU64(b []byte) (v uint64) {
	for _, x := range b {
		v = v<<8 | uint64(x)
	}
	return
}
