// Command dynactl is a command-line client for dynamastd.
//
// Usage:
//
//	dynactl [-addr host:port] [-client 1] <command> [args]
//
// Commands:
//
//	create-table <table>
//	put <table> <key> <value>
//	get <table> <key>
//	add <table> <key> <delta>          atomic counter increment
//	scan <table> <lo> <hi>
//	txn <table> <key1,key2,...>        atomically increment several keys
//	bench <table> <keys> <ops>         quick closed-loop load generator
//	stats                              cluster statistics snapshot
//	checkpoint                         take a checkpoint now: snapshots every
//	                                   site and truncates the covered WAL
//	                                   prefix (requires -wal-dir on the daemon)
//	placement [-shard N]               replica placement snapshot: per-partition
//	                                   replica sets and masters, per-site
//	                                   resident-partition counts, and the recent
//	                                   replica add/drop decisions (partial
//	                                   replication; see -replication-factor).
//	                                   With -shard N, only partitions owned by
//	                                   router shard N (see -selector-shards)
//	faults [set <spec> | off]          show, replace ("category:kind:prob
//	                                   [:delay]", comma-separated) or clear
//	                                   the cluster's fault-injection rules
//	metrics [prom] [traces N]          full observability snapshot; "prom"
//	                                   switches to Prometheus exposition
//	                                   format, "traces N" appends the N most
//	                                   recent transaction lifecycle traces
//
// HTTP commands (against the daemon's -metrics-listen endpoint, -http flag;
// these do not open an RPC connection):
//
//	traces [slow] [N]                  the N most recent (or, with "slow",
//	                                   slowest-first) transaction lifecycle
//	                                   traces from /debug/traces
//	spans [N]                          summaries of retained distributed
//	                                   traces from /debug/spans
//	trace <hexid>                      one distributed trace's span tree,
//	                                   rendered with parent indentation
//	flightrec                          the flight-recorder event ring
//	epochs                             epoch group-commit status: configured
//	                                   interval, seal/commit rates over a 1s
//	                                   window, mean txns per epoch, and the
//	                                   replication bytes the delta-coalesced
//	                                   frames saved
//	selector                           selector control-plane status. Single
//	                                   router: the node holding the leadership
//	                                   lease, lease epoch, standby delta-feed
//	                                   lag, leader-change/renewal/expiry counts
//	                                   and mean promotion latency. Sharded
//	                                   (-selector-shards > 1): one row per
//	                                   router shard — leaseholder, lease epoch,
//	                                   standby lag, partitions owned and
//	                                   routes/sec — plus cross-shard and
//	                                   placement-cache counters
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"math/rand"
	"net/http"
	"os"
	"sort"
	"strconv"
	"strings"
	"time"

	"dynamast/internal/obs"
	"dynamast/internal/selector"
	"dynamast/internal/server"
	"dynamast/internal/storage"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:7070", "dynamastd address")
	httpAddr := flag.String("http", "127.0.0.1:9090", "dynamastd -metrics-listen address (traces/spans/trace/flightrec commands)")
	client := flag.Int("client", 1, "client/session id")
	flag.Parse()
	args := flag.Args()
	if len(args) == 0 {
		flag.Usage()
		os.Exit(2)
	}

	cmd, args := args[0], args[1:]
	switch cmd {
	case "traces", "spans", "trace", "flightrec", "epochs", "selector":
		// HTTP-only commands: no RPC session needed.
		if err := runHTTP(*httpAddr, cmd, args); err != nil {
			log.Fatalf("dynactl: %s: %v", cmd, err)
		}
		return
	}

	cl, err := server.Dial(*addr, *client)
	if err != nil {
		log.Fatalf("dynactl: connect %s: %v", *addr, err)
	}
	defer cl.Close()

	if err := run(cl, cmd, args); err != nil {
		log.Fatalf("dynactl: %s: %v", cmd, err)
	}
}

// getJSON fetches a path from the daemon's metrics listener and decodes the
// JSON body into out.
func getJSON(addr, path string, out any) error {
	url := "http://" + addr + path
	resp, err := http.Get(url)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return fmt.Errorf("%s: %s: %s", url, resp.Status, strings.TrimSpace(string(body)))
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

// runHTTP serves the trace-inspection commands off the daemon's HTTP
// observability endpoints.
func runHTTP(addr, cmd string, args []string) error {
	switch cmd {
	case "traces":
		slow, n := false, 0
		for _, a := range args {
			if a == "slow" {
				slow = true
				continue
			}
			v, err := strconv.Atoi(a)
			if err != nil || v < 0 {
				return fmt.Errorf("usage: traces [slow] [N]")
			}
			n = v
		}
		path := fmt.Sprintf("/debug/traces?n=%d", n)
		if slow {
			path = fmt.Sprintf("/debug/traces?slowest=%d", n)
		}
		var traces []obs.TraceJSON
		if err := getJSON(addr, path, &traces); err != nil {
			return err
		}
		for _, tr := range traces {
			fmt.Printf("trace %d client=%d site=%d seq=%d remastered=%v total=%s\n",
				tr.ID, tr.Client, tr.Site, tr.Seq, tr.Remastered, tr.Total)
			for _, st := range []string{"route", "remaster", "execute", "commit", "wal_publish", "refresh_apply"} {
				if ns, ok := tr.Stages[st]; ok {
					fmt.Printf("  %-13s %s\n", st, time.Duration(ns))
				}
			}
		}
		fmt.Printf("(%d traces)\n", len(traces))
		return nil

	case "spans":
		n := 0
		if len(args) == 1 {
			v, err := strconv.Atoi(args[0])
			if err != nil || v < 0 {
				return fmt.Errorf("usage: spans [N]")
			}
			n = v
		} else if len(args) > 1 {
			return fmt.Errorf("usage: spans [N]")
		}
		var sums []obs.TraceSummaryJSON
		if err := getJSON(addr, fmt.Sprintf("/debug/spans?n=%d", n), &sums); err != nil {
			return err
		}
		for _, s := range sums {
			fmt.Printf("trace %s  root=%-8s spans=%-3d dur=%s\n", s.Trace, s.Root, s.Spans, s.Dur)
		}
		fmt.Printf("(%d traces)\n", len(sums))
		return nil

	case "trace":
		if len(args) != 1 {
			return fmt.Errorf("usage: trace <hexid>")
		}
		var spans []obs.SpanJSON
		if err := getJSON(addr, "/debug/spans?trace="+args[0], &spans); err != nil {
			return err
		}
		printSpanTree(spans)
		return nil

	case "flightrec":
		var events []obs.FlightEvent
		if err := getJSON(addr, "/debug/flightrecorder", &events); err != nil {
			return err
		}
		for _, ev := range events {
			fmt.Printf("%6d  %s  %-12s site=%-3d %s\n",
				ev.Seq, ev.At.Format(time.RFC3339Nano), ev.Kind, ev.Site, ev.Msg)
		}
		fmt.Printf("(%d events)\n", len(events))
		return nil

	case "epochs":
		if len(args) != 0 {
			return fmt.Errorf("usage: epochs")
		}
		return runEpochs(addr)
	case "selector":
		if len(args) != 0 {
			return fmt.Errorf("usage: selector")
		}
		return runSelector(addr)
	}
	return fmt.Errorf("unknown command %q", cmd)
}

// epochStats is one scrape of the epoch metric family, summed across sites.
type epochStats struct {
	interval   float64 // dynamast_epoch_interval_seconds (per-site gauge, max)
	seals      float64 // dynamast_epoch_seals_total
	txns       float64 // dynamast_epoch_txns_total
	bytesSaved float64 // dynamast_epoch_bytes_saved_total
	sealSum    float64 // dynamast_epoch_seal_seconds_sum
	sealCount  float64 // dynamast_epoch_seal_seconds_count
}

// scrapeEpochStats pulls /metrics and folds the dynamast_epoch_* series.
func scrapeEpochStats(addr string) (epochStats, error) {
	var st epochStats
	resp, err := http.Get("http://" + addr + "/metrics")
	if err != nil {
		return st, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return st, fmt.Errorf("/metrics: %s", resp.Status)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return st, err
	}
	for _, line := range strings.Split(string(body), "\n") {
		if !strings.HasPrefix(line, "dynamast_epoch_") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) != 2 {
			continue
		}
		name := fields[0]
		if i := strings.IndexByte(name, '{'); i >= 0 {
			name = name[:i]
		}
		v, err := strconv.ParseFloat(fields[1], 64)
		if err != nil {
			continue
		}
		switch name {
		case "dynamast_epoch_interval_seconds":
			if v > st.interval {
				st.interval = v
			}
		case "dynamast_epoch_seals_total":
			st.seals += v
		case "dynamast_epoch_txns_total":
			st.txns += v
		case "dynamast_epoch_bytes_saved_total":
			st.bytesSaved += v
		case "dynamast_epoch_seal_seconds_sum":
			st.sealSum += v
		case "dynamast_epoch_seal_seconds_count":
			st.sealCount += v
		}
	}
	return st, nil
}

// runEpochs scrapes the epoch metrics twice about a second apart and prints
// configuration, rates over the window, and cumulative coalescing savings.
func runEpochs(addr string) error {
	before, err := scrapeEpochStats(addr)
	if err != nil {
		return err
	}
	start := time.Now()
	time.Sleep(time.Second)
	after, err := scrapeEpochStats(addr)
	if err != nil {
		return err
	}
	window := time.Since(start).Seconds()

	if after.interval <= 0 {
		fmt.Println("epoch group commit: disabled (-epoch-interval 0)")
		return nil
	}
	fmt.Printf("epoch interval:   %v\n", time.Duration(after.interval*float64(time.Second)).Round(time.Microsecond))
	dSeals := after.seals - before.seals
	dTxns := after.txns - before.txns
	fmt.Printf("seals:            %.0f total, %.1f/s over the last %.1fs\n", after.seals, dSeals/window, window)
	fmt.Printf("commits sealed:   %.0f total, %.1f/s over the last %.1fs\n", after.txns, dTxns/window, window)
	switch {
	case dSeals > 0:
		fmt.Printf("txns per epoch:   %.2f (current)\n", dTxns/dSeals)
	case after.seals > 0:
		fmt.Printf("txns per epoch:   %.2f (lifetime; idle now)\n", after.txns/after.seals)
	}
	if after.sealCount > 0 {
		mean := time.Duration(after.sealSum / after.sealCount * float64(time.Second))
		fmt.Printf("mean seal time:   %v\n", mean.Round(time.Microsecond))
	}
	fmt.Printf("bytes saved:      %.0f total vs per-txn frames", after.bytesSaved)
	if after.txns > 0 {
		fmt.Printf(" (%.1f B/txn)", after.bytesSaved/after.txns)
	}
	fmt.Println()
	return nil
}

// selectorStats is one scrape of the selector-HA metric family for one
// router shard (or the whole selector when the control plane is unsharded).
type selectorStats struct {
	present    bool    // any HA-family series seen (the shard/partition gauges share the prefix but exist without a lease)
	leader     float64 // dynamast_selector_leader (0 = initial master, i+1 = standby i)
	changes    float64 // dynamast_selector_leader_changes_total
	epoch      float64 // dynamast_selector_lease_epoch
	renewals   float64 // dynamast_selector_lease_renewals_total
	expiries   float64 // dynamast_selector_lease_expiries_total
	lag        float64 // dynamast_selector_standby_lag
	promoteSum float64 // dynamast_selector_promotion_seconds_sum
	promoteCnt float64 // dynamast_selector_promotion_seconds_count
	routes     float64 // dynamast_selector_shard_routes_total
	partitions float64 // dynamast_selector_shard_partitions
	remasters  float64 // dynamast_selector_shard_remasters_total
}

// selectorScrape is one scrape of the selector control plane: the shard
// count, per-shard HA/routing series keyed by shard index (-1 = unlabeled,
// i.e. a single-router deployment), and the cross-shard/cache counters.
type selectorScrape struct {
	shards      int
	shard       map[int]*selectorStats
	crossWrites float64 // dynamast_selector_shard_cross_writes_total
	crossHints  float64 // dynamast_selector_shard_cross_hints_total
	cacheRoutes float64 // dynamast_selector_cache_routes_total{type="all"}
	cacheMisses float64 // dynamast_selector_cache_misses_total
	cacheStale  float64 // dynamast_selector_cache_stale_writes_total
	cacheSize   float64 // dynamast_selector_cache_entries
}

func (sc *selectorScrape) at(shard int) *selectorStats {
	st := sc.shard[shard]
	if st == nil {
		st = &selectorStats{}
		sc.shard[shard] = st
	}
	return st
}

// parseProm splits one Prometheus exposition line into name, labels, value.
func parseProm(line string) (name string, labels map[string]string, v float64, ok bool) {
	fields := strings.Fields(line)
	if len(fields) != 2 {
		return "", nil, 0, false
	}
	v, err := strconv.ParseFloat(fields[1], 64)
	if err != nil {
		return "", nil, 0, false
	}
	name = fields[0]
	if i := strings.IndexByte(name, '{'); i >= 0 {
		rest := strings.TrimSuffix(name[i+1:], "}")
		name = name[:i]
		labels = make(map[string]string)
		for _, pair := range strings.Split(rest, ",") {
			k, val, found := strings.Cut(pair, "=")
			if found {
				labels[k] = strings.Trim(val, `"`)
			}
		}
	}
	return name, labels, v, true
}

// scrapeSelectorStats pulls /metrics and folds every dynamast_selector_*
// series into a per-shard view.
func scrapeSelectorStats(addr string) (*selectorScrape, error) {
	sc := &selectorScrape{shard: make(map[int]*selectorStats)}
	resp, err := http.Get("http://" + addr + "/metrics")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("/metrics: %s", resp.Status)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, err
	}
	for _, line := range strings.Split(string(body), "\n") {
		if !strings.HasPrefix(line, "dynamast_selector_") {
			continue
		}
		name, labels, v, ok := parseProm(line)
		if !ok {
			continue
		}
		shard := -1
		if s, found := labels["shard"]; found {
			if n, err := strconv.Atoi(s); err == nil {
				shard = n
			}
		}
		switch name {
		case "dynamast_selector_shards":
			sc.shards = int(v)
		case "dynamast_selector_leader":
			sc.at(shard).present = true
			sc.at(shard).leader = v
		case "dynamast_selector_leader_changes_total":
			sc.at(shard).changes = v
		case "dynamast_selector_lease_epoch":
			sc.at(shard).epoch = v
		case "dynamast_selector_lease_renewals_total":
			sc.at(shard).renewals = v
		case "dynamast_selector_lease_expiries_total":
			sc.at(shard).expiries = v
		case "dynamast_selector_standby_lag":
			sc.at(shard).lag = v
		case "dynamast_selector_promotion_seconds_sum":
			sc.at(shard).promoteSum = v
		case "dynamast_selector_promotion_seconds_count":
			sc.at(shard).promoteCnt = v
		case "dynamast_selector_shard_routes_total":
			sc.at(shard).routes = v
		case "dynamast_selector_shard_partitions":
			sc.at(shard).partitions = v
		case "dynamast_selector_shard_remasters_total":
			sc.at(shard).remasters = v
		case "dynamast_selector_shard_cross_writes_total":
			sc.crossWrites = v
		case "dynamast_selector_shard_cross_hints_total":
			sc.crossHints = v
		case "dynamast_selector_cache_routes_total":
			if labels["type"] == "all" {
				sc.cacheRoutes = v
			}
		case "dynamast_selector_cache_misses_total":
			sc.cacheMisses = v
		case "dynamast_selector_cache_stale_writes_total":
			sc.cacheStale = v
		case "dynamast_selector_cache_entries":
			sc.cacheSize = v
		}
	}
	return sc, nil
}

// printLeaseStats renders one shard's (or the single selector's) lease view.
func printLeaseStats(st *selectorStats) {
	who := "initial master"
	if st.leader > 0 {
		who = fmt.Sprintf("promoted standby %d", int(st.leader)-1)
	}
	fmt.Printf("leader:           node %d (%s)\n", int(st.leader), who)
	fmt.Printf("lease epoch:      %.0f\n", st.epoch)
	fmt.Printf("standby lag:      %.0f delta(s) behind the feed\n", st.lag)
	fmt.Printf("leader changes:   %.0f\n", st.changes)
	fmt.Printf("lease renewals:   %.0f\n", st.renewals)
	fmt.Printf("lease expiries:   %.0f\n", st.expiries)
	if st.promoteCnt > 0 {
		mean := time.Duration(st.promoteSum / st.promoteCnt * float64(time.Second))
		fmt.Printf("mean promotion:   %v over %.0f failover(s)\n", mean.Round(time.Microsecond), st.promoteCnt)
	}
}

// runSelector scrapes the selector metrics and prints the control plane's
// state. For a sharded control plane it scrapes twice about a second apart
// and prints one row per router shard — leaseholder, lease epoch, standby
// lag, partitions owned, and routes/sec over the window — plus the
// cross-shard and placement-cache counters. For a single router it prints
// the classic HA leadership view.
func runSelector(addr string) error {
	before, err := scrapeSelectorStats(addr)
	if err != nil {
		return err
	}
	if before.shards <= 1 {
		st := before.shard[-1]
		if st == nil || !st.present {
			fmt.Println("selector HA: disabled (-selector-lease 0)")
			return nil
		}
		printLeaseStats(st)
		return nil
	}

	start := time.Now()
	time.Sleep(time.Second)
	after, err := scrapeSelectorStats(addr)
	if err != nil {
		return err
	}
	window := time.Since(start).Seconds()

	haOn := false
	for _, st := range after.shard {
		if st.present {
			haOn = true
		}
	}
	fmt.Printf("selector control plane: %d router shards", after.shards)
	if !haOn {
		fmt.Print(" (no lease; -selector-lease 0)")
	}
	fmt.Println()
	fmt.Printf("%-6s %-24s %-12s %-12s %-11s %s\n",
		"shard", "leaseholder", "lease epoch", "standby lag", "partitions", "routes/s")
	for i := 0; i < after.shards; i++ {
		st := after.shard[i]
		if st == nil {
			continue
		}
		holder, epoch, lag := "-", "-", "-"
		if st.present {
			holder = "node 0 (initial master)"
			if st.leader > 0 {
				holder = fmt.Sprintf("node %d (standby %d)", int(st.leader), int(st.leader)-1)
			}
			epoch = fmt.Sprintf("%.0f", st.epoch)
			lag = fmt.Sprintf("%.0f", st.lag)
		}
		rate := st.routes
		if prev := before.shard[i]; prev != nil {
			rate = (st.routes - prev.routes) / window
		}
		fmt.Printf("%-6d %-24s %-12s %-12s %-11.0f %.1f\n",
			i, holder, epoch, lag, st.partitions, rate)
	}
	fmt.Printf("cross-shard writes: %.0f, co-access hints exchanged: %.0f\n",
		after.crossWrites, after.crossHints)
	fmt.Printf("placement cache:    %.0f entries, %.0f cached routes (%.1f/s), %.0f misses, %.0f stale writes resubmitted\n",
		after.cacheSize, after.cacheRoutes, (after.cacheRoutes-before.cacheRoutes)/window,
		after.cacheMisses, after.cacheStale)
	return nil
}

// printSpanTree renders a span list as an indented tree (children under
// parents, siblings in start order); orphaned spans print at the root.
func printSpanTree(spans []obs.SpanJSON) {
	children := make(map[string][]obs.SpanJSON)
	ids := make(map[string]bool, len(spans))
	for _, sp := range spans {
		ids[sp.ID] = true
	}
	for _, sp := range spans {
		p := sp.Parent
		if p != "" && !ids[p] {
			p = "" // orphan (parent evicted or remote): show at root
		}
		children[p] = append(children[p], sp)
	}
	var walk func(parent, indent string)
	walk = func(parent, indent string) {
		for _, sp := range children[parent] {
			fmt.Printf("%s%-14s site=%-3d dur=%-12s id=%s\n", indent, sp.Name, sp.Site, sp.Dur, sp.ID)
			walk(sp.ID, indent+"  ")
		}
	}
	walk("", "")
	fmt.Printf("(%d spans)\n", len(spans))
}

func run(cl *server.Client, cmd string, args []string) error {
	u64 := func(s string) uint64 {
		v, err := strconv.ParseUint(s, 10, 64)
		if err != nil {
			log.Fatalf("dynactl: bad number %q", s)
		}
		return v
	}
	switch cmd {
	case "create-table":
		if len(args) != 1 {
			return fmt.Errorf("usage: create-table <table>")
		}
		return cl.CreateTable(args[0])

	case "put":
		if len(args) != 3 {
			return fmt.Errorf("usage: put <table> <key> <value>")
		}
		return cl.Put(args[0], u64(args[1]), []byte(args[2]))

	case "get":
		if len(args) != 2 {
			return fmt.Errorf("usage: get <table> <key>")
		}
		data, ok, err := cl.Get(args[0], u64(args[1]))
		if err != nil {
			return err
		}
		if !ok {
			fmt.Println("(not found)")
			return nil
		}
		fmt.Printf("%q\n", data)
		return nil

	case "add":
		if len(args) != 3 {
			return fmt.Errorf("usage: add <table> <key> <delta>")
		}
		delta, err := strconv.ParseInt(args[2], 10, 64)
		if err != nil {
			return err
		}
		key := u64(args[1])
		res, err := cl.Txn(
			[]storage.RowRef{{Table: args[0], Key: key}},
			[]server.Op{{Kind: server.OpAdd, Table: args[0], Key: key, Delta: delta}})
		if err != nil {
			return err
		}
		fmt.Printf("-> %d\n", beU64(res[0].Value))
		return nil

	case "scan":
		if len(args) != 3 {
			return fmt.Errorf("usage: scan <table> <lo> <hi>")
		}
		res, err := cl.Txn(nil, []server.Op{{
			Kind: server.OpScan, Table: args[0], Lo: u64(args[1]), Hi: u64(args[2]),
		}})
		if err != nil {
			return err
		}
		for _, kv := range res[0].Rows {
			fmt.Printf("%d\t%q\n", kv.Key, kv.Value)
		}
		fmt.Printf("(%d rows)\n", len(res[0].Rows))
		return nil

	case "txn":
		if len(args) != 2 {
			return fmt.Errorf("usage: txn <table> <key1,key2,...>")
		}
		var ws []storage.RowRef
		var ops []server.Op
		for _, part := range strings.Split(args[1], ",") {
			k := u64(part)
			ws = append(ws, storage.RowRef{Table: args[0], Key: k})
			ops = append(ops, server.Op{Kind: server.OpAdd, Table: args[0], Key: k, Delta: 1})
		}
		res, err := cl.Txn(ws, ops)
		if err != nil {
			return err
		}
		for i, r := range res {
			fmt.Printf("%d -> %d\n", ws[i].Key, beU64(r.Value))
		}
		return nil

	case "stats":
		st, err := cl.Stats()
		if err != nil {
			return err
		}
		fmt.Printf("commits:        %d  (per site %v)\n", st.Commits, st.PerSiteCommits)
		fmt.Printf("write txns:     %d  routed %v\n", st.WriteTxns, st.RoutedPerSite)
		fmt.Printf("read txns:      %d\n", st.ReadTxns)
		fmt.Printf("remastered:     %d txns, %d partitions moved\n", st.RemasterTxns, st.PartsMoved)
		for i, vv := range st.SiteVectors {
			fmt.Printf("site %d vector:  %v\n", i, vv)
		}
		return nil

	case "placement":
		shard := -1
		switch {
		case len(args) == 0: // whole cluster
		case len(args) == 2 && args[0] == "-shard":
			v, err := strconv.Atoi(args[1])
			if err != nil || v < 0 {
				return fmt.Errorf("usage: placement [-shard N]")
			}
			shard = v
		default:
			return fmt.Errorf("usage: placement [-shard N]")
		}
		info, err := cl.Placement()
		if err != nil {
			return err
		}
		if shard >= 0 && info.Shards <= 1 {
			return fmt.Errorf("-shard %d: the selector control plane is not sharded (-selector-shards 1)", shard)
		}
		if shard >= info.Shards && info.Shards > 1 {
			return fmt.Errorf("-shard %d: only %d router shards", shard, info.Shards)
		}
		if info.FullReplication {
			fmt.Println("placement: full replication (every partition on every site)")
		} else {
			fmt.Printf("placement: partial replication, factor [%d, %d]\n",
				info.MinReplicas, info.MaxReplicas)
		}
		if info.Shards > 1 {
			if shard >= 0 {
				fmt.Printf("router shards: %d (showing shard %d only)\n", info.Shards, shard)
			} else {
				fmt.Printf("router shards: %d\n", info.Shards)
			}
		}
		fmt.Printf("resident partitions per site: %v\n", info.Residency)
		parts := make([]uint64, 0, len(info.Masters))
		for p := range info.Masters {
			if shard >= 0 && selector.RouterShardOf(p, info.Shards) != shard {
				continue
			}
			parts = append(parts, p)
		}
		sort.Slice(parts, func(i, j int) bool { return parts[i] < parts[j] })
		for _, p := range parts {
			if reps, ok := info.Partitions[p]; ok {
				fmt.Printf("partition %-6d master=%-3d replicas=%v", p, info.Masters[p], reps)
			} else if shard >= 0 {
				fmt.Printf("partition %-6d master=%-3d", p, info.Masters[p])
			} else {
				continue // full replication, cluster-wide view: masters-only rows add noise
			}
			if info.Shards > 1 {
				fmt.Printf(" shard=%d", selector.RouterShardOf(p, info.Shards))
			}
			fmt.Println()
		}
		fmt.Printf("replica adds: %d, drops: %d\n", info.Adds, info.Drops)
		for _, d := range info.Decisions {
			verb := "drop"
			if d.Add {
				verb = "add"
			}
			fmt.Printf("%s  %-4s partition %-6d site %-3d %s\n",
				d.At.Format(time.RFC3339), verb, d.Part, d.Site, d.Reason)
		}
		return nil

	case "checkpoint":
		if len(args) != 0 {
			return fmt.Errorf("usage: checkpoint")
		}
		cp, err := cl.Checkpoint()
		if err != nil {
			return err
		}
		fmt.Printf("checkpoint %d committed\n", cp.Seq)
		for i := range cp.Rows {
			fmt.Printf("site %d:  %d rows, %d bytes snapshotted; replay low-water offset %d\n",
				i, cp.Rows[i], cp.Bytes[i], cp.LowWater[i])
		}
		return nil

	case "faults":
		spec := ""
		switch {
		case len(args) == 0: // show
		case len(args) == 1 && args[0] == "off":
			spec = "off"
		case len(args) == 2 && args[0] == "set":
			spec = args[1]
		default:
			return fmt.Errorf("usage: faults [set <spec> | off]")
		}
		f, err := cl.Faults(spec)
		if err != nil {
			return err
		}
		if !f.Enabled {
			fmt.Println("fault injection: disabled (start dynamastd with -fault-spec)")
		} else {
			fmt.Printf("fault injection: enabled (seed %d)\n", f.Seed)
			if len(f.Rules) == 0 {
				fmt.Println("rules:          (none)")
			}
			for _, r := range f.Rules {
				if r.Kind == "delay" {
					fmt.Printf("rule:           %s:%s:%v:%v\n", r.Category, r.Kind, r.Prob, r.Delay)
				} else {
					fmt.Printf("rule:           %s:%s:%v\n", r.Category, r.Kind, r.Prob)
				}
			}
			for k, n := range f.Injected {
				fmt.Printf("injected:       %-20s %d\n", k, n)
			}
		}
		fmt.Printf("rpc retries:    %d\n", f.RPCRetries)
		fmt.Printf("site failovers: %d\n", f.Failovers)
		return nil

	case "metrics":
		prom := false
		traces := 0
		for i := 0; i < len(args); i++ {
			switch args[i] {
			case "prom":
				prom = true
			case "traces":
				if i+1 >= len(args) {
					return fmt.Errorf("usage: metrics [prom] [traces N]")
				}
				i++
				traces = int(u64(args[i]))
			default:
				return fmt.Errorf("usage: metrics [prom] [traces N]")
			}
		}
		m, err := cl.Metrics(traces)
		if err != nil {
			return err
		}
		if prom {
			m.Snapshot.WritePrometheus(os.Stdout)
		} else {
			m.Snapshot.WriteText(os.Stdout)
		}
		for _, tr := range m.Traces {
			fmt.Printf("trace %d client=%d site=%d seq=%d remastered=%v total=%s\n",
				tr.ID, tr.Client, tr.Site, tr.Seq, tr.Remastered, tr.Total)
			for _, st := range []string{"route", "remaster", "execute", "commit", "wal_publish", "refresh_apply"} {
				if ns, ok := tr.Stages[st]; ok {
					fmt.Printf("  %-13s %s\n", st, time.Duration(ns))
				}
			}
		}
		return nil

	case "bench":
		if len(args) != 3 {
			return fmt.Errorf("usage: bench <table> <keys> <ops>")
		}
		keys, ops := u64(args[1]), int(u64(args[2]))
		rng := rand.New(rand.NewSource(time.Now().UnixNano()))
		start := time.Now()
		for i := 0; i < ops; i++ {
			k := uint64(rng.Intn(int(keys)))
			if _, err := cl.Txn(
				[]storage.RowRef{{Table: args[0], Key: k}},
				[]server.Op{{Kind: server.OpAdd, Table: args[0], Key: k, Delta: 1}}); err != nil {
				return err
			}
		}
		d := time.Since(start)
		fmt.Printf("%d txns in %v (%.0f txn/s, avg %v)\n",
			ops, d.Round(time.Millisecond), float64(ops)/d.Seconds(),
			(d / time.Duration(ops)).Round(time.Microsecond))
		return nil
	}
	return fmt.Errorf("unknown command %q", cmd)
}

func beU64(b []byte) (v uint64) {
	for _, x := range b {
		v = v<<8 | uint64(x)
	}
	return
}
