// Command dynamastd hosts a DynaMast cluster behind a TCP endpoint.
// Remote clients submit transactions as declared write sets plus operation
// lists over the gob-framed RPC protocol (see internal/server); the
// embedded site selector routes and remasters exactly as in the paper.
//
// Usage:
//
//	dynamastd -listen :7070 -sites 4 -partition-size 100 -wal-dir /var/lib/dynamast \
//	          -metrics-listen :9090
//
// With -metrics-listen set, the daemon serves Prometheus-format metrics on
// /metrics and recent transaction lifecycle traces on /debug/traces (see
// internal/obs). The same snapshot is available through `dynactl metrics`
// over the RPC port, and is printed on shutdown.
//
// Chaos testing: -fault-spec installs a deterministic fault injector on the
// cluster wire ("category:kind:prob[:delay]", comma-separated; seeded with
// -fault-seed), and -heartbeat-interval enables the failure detector that
// fails over a site's partitions to survivors when it stops answering
// probes. Rules can be inspected and changed at runtime with
// `dynactl faults`.
//
// A quick session with the bundled client protocol:
//
//	cl, _ := server.Dial("localhost:7070", 1)
//	cl.CreateTable("kv")
//	cl.Put("kv", 42, []byte("hello"))
package main

import (
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"dynamast"
	"dynamast/internal/obs"
	"dynamast/internal/server"
)

// parseReplicationFactor parses "min" or "min:max" replica bounds.
func parseReplicationFactor(s string) (int, int, error) {
	minS, maxS, ok := strings.Cut(s, ":")
	min, err := strconv.Atoi(minS)
	if err != nil || min < 1 {
		return 0, 0, fmt.Errorf("bad min %q (want integer >= 1)", minS)
	}
	if !ok {
		return min, 0, nil
	}
	max, err := strconv.Atoi(maxS)
	if err != nil || max < min {
		return 0, 0, fmt.Errorf("bad max %q (want integer >= min %d)", maxS, min)
	}
	return min, max, nil
}

func main() {
	listen := flag.String("listen", "127.0.0.1:7070", "address to serve on")
	metricsListen := flag.String("metrics-listen", "", "address for the /metrics and /debug/traces HTTP endpoints (empty = disabled)")
	sites := flag.Int("sites", 4, "number of data sites")
	partitionSize := flag.Uint64("partition-size", 100, "keys per partition group")
	walDir := flag.String("wal-dir", "", "directory for durable update logs (empty = in-memory)")
	checkpointEvery := flag.Duration("checkpoint-every", 0, "background checkpoint interval; snapshots every site, truncates the covered WAL prefix and bounds restart time (0 = disabled; requires -wal-dir)")
	checkpointRecords := flag.Uint64("checkpoint-every-records", 0, "additionally checkpoint after this many new WAL records (0 = disabled)")
	traceRing := flag.Int("trace-ring", obs.DefaultTraceRing, "recent transaction traces retained for /debug/traces")
	faultSpec := flag.String("fault-spec", "", "fault-injection rules, comma-separated category:kind:prob[:delay] (e.g. \"remaster:drop:0.01,txn:delay:0.05:1ms\"); empty = injector disabled")
	faultSeed := flag.Int64("fault-seed", 1, "seed for the deterministic fault-decision stream")
	heartbeat := flag.Duration("heartbeat-interval", 0, "site failure-detection probe interval (0 = detection disabled)")
	traceSample := flag.Int("trace-sample", 0, "head-sample 1 in N update transactions for distributed span tracing, served on /debug/spans (0 = off)")
	sloSpec := flag.String("slo", "", "SLO targets, comma-separated metric:quantile:threshold (e.g. \"dynamast_txn_seconds:p99:250ms\"); empty = disabled")
	sloInterval := flag.Duration("slo-interval", time.Second, "SLO evaluation window")
	flightDir := flag.String("flight-dir", "", "directory for flight-recorder snapshots on failover/recovery/panic (empty = no disk snapshots)")
	pprofOn := flag.Bool("pprof", false, "serve net/http/pprof under /debug/pprof/ on the metrics listener")
	epochInterval := flag.Duration("epoch-interval", dynamast.DefaultEpochInterval, "epoch group-commit seal interval: commits batch into epochs flushed and replicated as one coalesced record (0 = disabled, per-transaction records)")
	selectorLease := flag.Duration("selector-lease", 0, "selector leadership lease TTL: enables lease-fenced leader failover onto hot-standby replicas (0 = disabled; implies at least 2 selector replicas)")
	selectorReplicas := flag.Int("selector-replicas", 0, "replica site-selectors fronting the master (0 = stand-alone selector, or 2 when -selector-lease is set)")
	selectorShards := flag.Int("selector-shards", 1, "independent router shards in the selector control plane, each owning a contiguous partition-range with its own lease and epoch allocator; sessions route off a gossiped placement cache (1 = classic single router)")
	replFactor := flag.String("replication-factor", "", "partial replication bounds per partition, \"min\" or \"min:max\" replicas (empty = classic full replication)")
	placementPolicy := flag.String("placement-policy", "adaptive", "replica placement policy under -replication-factor: adaptive (read-weight driven) or full (every partition everywhere)")
	flag.Parse()

	cfg := dynamast.Config{
		Sites:                  *sites,
		Partitioner:            dynamast.PartitionByRange(*partitionSize),
		WALDir:                 *walDir,
		TraceRing:              *traceRing,
		TraceSampleEvery:       *traceSample,
		SLOInterval:            *sloInterval,
		FlightDir:              *flightDir,
		CheckpointEvery:        *checkpointEvery,
		CheckpointEveryRecords: *checkpointRecords,
		SelectorReplicas:       *selectorReplicas,
		SelectorShards:         *selectorShards,
		SelectorLease:          *selectorLease,
	}
	if *epochInterval > 0 {
		cfg.EpochInterval = *epochInterval
	} else {
		cfg.EpochInterval = -1 // -epoch-interval=0 opts out
	}
	if *sloSpec != "" {
		targets, err := obs.ParseSLOSpec(*sloSpec)
		if err != nil {
			log.Fatal(err)
		}
		cfg.SLOTargets = targets
	}
	if (*checkpointEvery > 0 || *checkpointRecords > 0) && *walDir == "" {
		log.Fatal("dynamastd: -checkpoint-every requires -wal-dir")
	}
	if *faultSpec != "" {
		rules, err := dynamast.ParseFaultSpec(*faultSpec)
		if err != nil {
			log.Fatal(err)
		}
		inj := dynamast.NewFaultInjector(*faultSeed)
		inj.SetRules(rules...)
		cfg.Faults = inj
	}
	if *heartbeat > 0 {
		cfg.FailureDetection = dynamast.FailureDetection{Interval: *heartbeat}
	}
	if *replFactor != "" {
		min, max, err := parseReplicationFactor(*replFactor)
		if err != nil {
			log.Fatalf("dynamastd: -replication-factor: %v", err)
		}
		cfg.MinReplicas, cfg.MaxReplicas = min, max
		switch *placementPolicy {
		case "adaptive": // the default policy; leave nil
		case "full":
			cfg.PlacementPolicy = dynamast.StaticFullReplication()
		default:
			log.Fatalf("dynamastd: unknown -placement-policy %q (want adaptive or full)", *placementPolicy)
		}
	}
	cluster, err := dynamast.New(cfg)
	if err != nil {
		log.Fatal(err)
	}
	defer cluster.Close()
	if *flightDir != "" {
		// The flight recorder is the black box: on a crash, persist what the
		// process saw before dying.
		defer func() {
			if r := recover(); r != nil {
				if path, err := obs.SnapshotFlight("panic"); err == nil {
					fmt.Fprintf(os.Stderr, "dynamastd: flight snapshot at %s\n", path)
				}
				panic(r)
			}
		}()
	}

	if *walDir != "" {
		// Recover whatever the directory holds: newest valid checkpoint plus
		// WAL suffix replay, or full redo replay. On a fresh directory this
		// is a no-op.
		if err := cluster.Recover(nil); err != nil {
			log.Fatalf("dynamastd: recovery from %s: %v", *walDir, err)
		}
		if st := cluster.LastRecovery(); st.UsedCheckpoint || st.ReplayedOwn+st.ReplayedRefresh > 0 {
			fmt.Printf("dynamastd: recovered from %s: checkpoint=%v seq=%d rows=%d replayed=%d+%d in %v\n",
				*walDir, st.UsedCheckpoint, st.Seq, st.RowsRestored, st.ReplayedOwn, st.ReplayedRefresh, st.Duration)
		}
	}

	srv, addr, err := server.Serve(cluster, *listen)
	if err != nil {
		log.Fatal(err)
	}
	defer srv.Close()
	fmt.Printf("dynamastd: %d sites, partition size %d, serving on %s\n",
		*sites, *partitionSize, addr)
	if cfg.Faults != nil {
		fmt.Printf("dynamastd: fault injection on (seed %d): %s\n", *faultSeed, *faultSpec)
	}
	if *heartbeat > 0 {
		fmt.Printf("dynamastd: failure detection on, heartbeat every %v\n", *heartbeat)
	}
	if *selectorLease > 0 {
		fmt.Printf("dynamastd: selector HA on, lease %v, %d standby(s)\n",
			*selectorLease, len(cluster.SelectorReplicas()))
	}
	if *selectorShards > 1 {
		fmt.Printf("dynamastd: selector control plane sharded %d ways, gossiped placement cache on\n",
			*selectorShards)
	}
	if *checkpointEvery > 0 || *checkpointRecords > 0 {
		fmt.Printf("dynamastd: checkpointing every %v / %d records into %s\n",
			*checkpointEvery, *checkpointRecords, *walDir)
	}
	if *replFactor != "" {
		fmt.Printf("dynamastd: partial replication on, factor %s, policy %s\n",
			*replFactor, *placementPolicy)
	}

	if *metricsListen != "" {
		ln, err := net.Listen("tcp", *metricsListen)
		if err != nil {
			log.Fatal(err)
		}
		defer ln.Close()
		mux := http.NewServeMux()
		mux.Handle("/", obs.Handler(cluster.Obs(), cluster.Tracer(), cluster.Spans()))
		if *pprofOn {
			mux.HandleFunc("/debug/pprof/", pprof.Index)
			mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
			mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
			mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
			mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		}
		go http.Serve(ln, mux)
		fmt.Printf("dynamastd: metrics on http://%s/metrics, traces on http://%s/debug/traces\n",
			ln.Addr(), ln.Addr())
		if *pprofOn {
			fmt.Printf("dynamastd: pprof on http://%s/debug/pprof/\n", ln.Addr())
		}
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	// Shutdown report: render the same registry snapshot /metrics serves,
	// so the console and the endpoint can never disagree.
	fmt.Printf("\ndynamastd: shutting down — final metrics snapshot:\n")
	cluster.Obs().Snapshot().WriteText(os.Stdout)
}
