// Command dynamastd hosts a DynaMast cluster behind a TCP endpoint.
// Remote clients submit transactions as declared write sets plus operation
// lists over the gob-framed RPC protocol (see internal/server); the
// embedded site selector routes and remasters exactly as in the paper.
//
// Usage:
//
//	dynamastd -listen :7070 -sites 4 -partition-size 100 -wal-dir /var/lib/dynamast
//
// A quick session with the bundled client protocol:
//
//	cl, _ := server.Dial("localhost:7070", 1)
//	cl.CreateTable("kv")
//	cl.Put("kv", 42, []byte("hello"))
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"syscall"

	"dynamast"
	"dynamast/internal/server"
)

func main() {
	listen := flag.String("listen", "127.0.0.1:7070", "address to serve on")
	sites := flag.Int("sites", 4, "number of data sites")
	partitionSize := flag.Uint64("partition-size", 100, "keys per partition group")
	walDir := flag.String("wal-dir", "", "directory for durable update logs (empty = in-memory)")
	flag.Parse()

	cluster, err := dynamast.New(dynamast.Config{
		Sites:       *sites,
		Partitioner: dynamast.PartitionByRange(*partitionSize),
		WALDir:      *walDir,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer cluster.Close()

	srv, addr, err := server.Serve(cluster, *listen)
	if err != nil {
		log.Fatal(err)
	}
	defer srv.Close()
	fmt.Printf("dynamastd: %d sites, partition size %d, serving on %s\n",
		*sites, *partitionSize, addr)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	m := cluster.Selector().Metrics()
	st := cluster.Stats()
	fmt.Printf("\ndynamastd: shutting down — %d commits (%v per site), %d/%d txns remastered\n",
		st.Commits, st.PerSiteCommits, m.RemasterTxns, m.WriteTxns)
}
