// Command dynamast-bench regenerates the paper's evaluation figures and
// tables. Each subcommand corresponds to one figure; "all" runs everything.
//
// Usage:
//
//	dynamast-bench [-quick] [-duration 4s] [-warmup 3s] [-clients 256] <experiment>
//
// Experiments: fig4a fig4b fig4c fig4d fig4e figxwh figskew fig5a fig5b
// fig7 fig6b fig6c fig8a fig8bcd fig8efg figoverhead all
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"dynamast/internal/bench"
)

func main() {
	quick := flag.Bool("quick", false, "use the fast scale (short runs, small data)")
	duration := flag.Duration("duration", 0, "override measured duration per point")
	warmup := flag.Duration("warmup", 0, "override warmup per point")
	clients := flag.Int("clients", 0, "override client count")
	keys := flag.Uint64("keys", 0, "override YCSB key count")
	seed := flag.Int64("seed", 1, "workload seed")
	epochInterval := flag.Duration("epoch-interval", 0, "DynaMast epoch group-commit interval (0 = default; negative disables epochs for A/B runs)")
	csvDir := flag.String("csv", "", "also write each experiment's table as CSV into this directory")
	flag.Parse()

	scale := bench.FullScale()
	if *quick {
		scale = bench.QuickScale()
	}
	if *duration != 0 {
		scale.Duration = *duration
	}
	if *warmup != 0 {
		scale.Warmup = *warmup
	}
	if *clients != 0 {
		scale.Clients = *clients
	}
	if *keys != 0 {
		scale.Keys = *keys
	}
	scale.Seed = *seed
	scale.EpochInterval = *epochInterval

	args := flag.Args()
	if len(args) == 0 {
		fmt.Fprintln(os.Stderr, "usage: dynamast-bench [flags] <experiment|all>")
		fmt.Fprintln(os.Stderr, "experiments:", allNames())
		os.Exit(2)
	}

	names := args
	if len(args) == 1 && args[0] == "all" {
		names = allNames()
	}
	for _, name := range names {
		fn, ok := experiments[name]
		if !ok {
			fmt.Fprintf(os.Stderr, "unknown experiment %q; have %v\n", name, allNames())
			os.Exit(2)
		}
		start := time.Now()
		exp, err := fn(scale)
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", name, err)
			os.Exit(1)
		}
		exp.Print(os.Stdout)
		if *csvDir != "" {
			if err := writeCSV(*csvDir, name, exp); err != nil {
				fmt.Fprintf(os.Stderr, "csv %s: %v\n", name, err)
			}
		}
		fmt.Printf("(%s took %s)\n\n", name, time.Since(start).Round(time.Millisecond))
	}
}

var experiments = map[string]func(bench.Scale) (*bench.Experiment, error){
	"fig4a": func(s bench.Scale) (*bench.Experiment, error) {
		return bench.Fig4aYCSBUniform5050(s, clientSweep(s))
	},
	"fig4b": func(s bench.Scale) (*bench.Experiment, error) {
		return bench.Fig4bYCSBUniform9010(s, clientSweep(s))
	},
	"fig4c":       bench.Fig4cTPCCNewOrderLatency,
	"fig4d":       bench.Fig4dTPCCStockLevelLatency,
	"fig4e":       func(s bench.Scale) (*bench.Experiment, error) { return bench.Fig4eTPCCNewOrderMix(s, nil) },
	"figxwh":      func(s bench.Scale) (*bench.Experiment, error) { return bench.FigCrossWarehouse(s, nil) },
	"figskew":     bench.FigSkewYCSBZipfian,
	"fig5a":       bench.Fig5aSensitivity,
	"fig5b":       bench.Fig5bAdaptivity,
	"fig7":        bench.Fig7Breakdown,
	"fig6b":       bench.Fig6bDBSize,
	"fig6c":       func(s bench.Scale) (*bench.Experiment, error) { return bench.Fig6cSiteScaling(s, nil) },
	"fig8a":       bench.Fig8aSmallBankThroughput,
	"fig8bcd":     bench.Fig8bcdSmallBankTails,
	"fig8efg":     bench.Fig8efgPayment,
	"figoverhead": bench.FigOverhead,
	"figlatabl":   bench.FigLatencyAblation,
	"figvercap":   bench.FigVersionCapAblation,
}

func writeCSV(dir, name string, exp *bench.Experiment) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	f, err := os.Create(filepath.Join(dir, name+".csv"))
	if err != nil {
		return err
	}
	defer f.Close()
	return exp.WriteCSV(f)
}

func clientSweep(s bench.Scale) []int {
	return []int{s.Clients / 4, s.Clients / 2, s.Clients}
}

func allNames() []string {
	return []string{"fig4a", "fig4b", "fig4c", "fig4d", "fig4e", "figxwh",
		"figskew", "fig5a", "fig5b", "fig7", "fig6b", "fig6c",
		"fig8a", "fig8bcd", "fig8efg", "figoverhead", "figlatabl", "figvercap"}
}
