// Package dynamast is a from-scratch reproduction of "DynaMast: Adaptive
// Dynamic Mastering for Replicated Systems" (Abebe, Glasbergen, Daudjee —
// ICDE 2020): a lazily replicated, multi-master, in-memory transactional
// database that guarantees single-site transaction execution by dynamically
// transferring data mastership (remastering) with a lightweight
// metadata-only protocol, and places masters adaptively using learned
// workload statistics.
//
// The package re-exports the library's primary types; the implementation
// lives under internal/ (see DESIGN.md for the system inventory).
// Clusters are built with functional options:
//
//	cluster, err := dynamast.New(
//	        dynamast.WithSites(4),
//	        dynamast.WithPartitioner(dynamast.PartitionByRange(100)),
//	        dynamast.WithDurableDir(dir),
//	        dynamast.WithCheckpointEvery(30*time.Second),
//	)
//	sess := cluster.Session(1)
//	err = sess.UpdateCtx(ctx, []dynamast.RowRef{{Table: "kv", Key: 7}},
//	        func(tx dynamast.Tx) error { return tx.Write(dynamast.RowRef{Table: "kv", Key: 7}, []byte("v")) })
//
// The historical Config-struct call shape still compiles unchanged — a
// Config value is itself an Option that replaces the whole configuration:
//
//	cluster, err := dynamast.New(dynamast.Config{
//	        Sites:       4,
//	        Partitioner: dynamast.PartitionByRange(100),
//	})
//
// Every transaction executes at exactly one site under strong-session
// snapshot isolation; the embedded site selector remasters data on demand
// and balances mastership across sites.
package dynamast

import (
	"time"

	"dynamast/internal/checkpoint"
	"dynamast/internal/core"
	"dynamast/internal/obs"
	"dynamast/internal/selector"
	"dynamast/internal/sitemgr"
	"dynamast/internal/storage"
	"dynamast/internal/systems"
	"dynamast/internal/transport"
)

// Core types, re-exported.
type (
	// Config describes a cluster (sites, partitioning, strategy weights,
	// simulated network, durability directory).
	Config = core.Config
	// Cluster is a running DynaMast deployment.
	Cluster = core.Cluster
	// Session is one client's strong-session-SI connection.
	Session = core.Session
	// RowRef names a row: table plus uint64 primary key.
	RowRef = storage.RowRef
	// KV is one row returned by a scan.
	KV = storage.KV
	// Tx is the handle a transaction's logic runs against.
	Tx = systems.Tx
	// Client abstracts a session (shared with the baseline systems).
	Client = systems.Client
	// LoadRow is one initial-data row.
	LoadRow = systems.LoadRow
	// Partitioner maps rows to partition groups.
	Partitioner = sitemgr.Partitioner
	// Weights are the remastering-strategy hyperparameters (Equation 8).
	Weights = selector.Weights
	// NetworkConfig configures the simulated wire.
	NetworkConfig = transport.Config
	// CostModel prices transactional work in the capacity model.
	CostModel = sitemgr.CostModel
	// FaultInjector injects deterministic, seedable faults into the
	// cluster wire (Config.Faults).
	FaultInjector = transport.Injector
	// FaultRule is one fault-injection rule (category, kind, probability).
	FaultRule = transport.Rule
	// FailureDetection tunes the heartbeat-based site failure detector
	// (Config.FailureDetection).
	FailureDetection = core.FailureDetectionConfig
	// Option configures a cluster built with New. The interface is sealed:
	// use the With* constructors, or pass a full Config value (itself an
	// Option that replaces the accumulated configuration wholesale).
	Option = core.Option
	// Manifest describes one committed checkpoint (Cluster.Checkpoint).
	Manifest = checkpoint.Manifest
	// RecoveryStats describes what the last Cluster.Recover run did.
	RecoveryStats = core.RecoveryStats
	// SLOTarget is one watched latency quantile threshold (Config.SLOTargets).
	SLOTarget = obs.SLOTarget
	// SLOBreach is one detected SLO threshold violation.
	SLOBreach = obs.Breach
	// SpanContext identifies a position in a distributed trace; remote
	// clients ship it in the RPC frame to stitch cross-site spans.
	SpanContext = obs.SpanContext
	// Span is one timed operation of a sampled distributed trace.
	Span = obs.Span
	// FlightEvent is one flight-recorder entry (failovers, faults, retries,
	// SLO breaches; see Cluster and obs.FlightEvents).
	FlightEvent = obs.FlightEvent
	// SiteID identifies a data site in placement decisions.
	SiteID = selector.SiteID
	// PlacementPolicy decides a partition's replica set from its observed
	// access statistics (WithPlacementPolicy).
	PlacementPolicy = selector.PlacementPolicy
	// PartitionStats is the per-partition input a PlacementPolicy decides on.
	PartitionStats = selector.PartitionStats
	// PlacementInfo snapshots the cluster's replica placement
	// (Cluster.Placement): per-partition replica sets, masters, per-site
	// residency, and the recent add/drop decision log.
	PlacementInfo = selector.PlacementInfo
	// PlacementDecision is one recorded replica add/drop decision.
	PlacementDecision = selector.PlacementDecision
)

// DefaultEpochInterval is the epoch group-commit seal interval used when
// epochs are enabled without an explicit WithEpochInterval.
const DefaultEpochInterval = sitemgr.DefaultEpochInterval

// New builds and starts a DynaMast cluster from functional options:
//
//	dynamast.New(dynamast.WithSites(4), dynamast.WithPartitioner(p))
//
// Passing a Config value as an option keeps the historical struct-based
// call shape working: dynamast.New(dynamast.Config{...}).
func New(opts ...Option) (*Cluster, error) { return core.NewWithOptions(opts...) }

// Functional options for New. Each returns an Option that sets one field
// of the underlying Config; later options override earlier ones.
func WithSites(n int) Option                          { return core.WithSites(n) }
func WithPartitioner(p Partitioner) Option            { return core.WithPartitioner(p) }
func WithDurableDir(dir string) Option                { return core.WithDurableDir(dir) }
func WithWeights(w Weights) Option                    { return core.WithWeights(w) }
func WithNetwork(nc NetworkConfig) Option             { return core.WithNetwork(nc) }
func WithFaults(spec string, seed int64) Option       { return core.WithFaults(spec, seed) }
func WithCheckpointEvery(d time.Duration) Option      { return core.WithCheckpointEvery(d) }
func WithCheckpointEveryRecords(n uint64) Option      { return core.WithCheckpointEveryRecords(n) }
func WithFailureDetection(fd FailureDetection) Option { return core.WithFailureDetection(fd) }
func WithSelectorReplicas(n int) Option               { return core.WithSelectorReplicas(n) }
func WithSelectorShards(n int) Option                 { return core.WithSelectorShards(n) }
func WithSelectorLease(d time.Duration) Option        { return core.WithSelectorLease(d) }
func WithSeed(seed int64) Option                      { return core.WithSeed(seed) }
func WithTraceSampling(n int) Option                  { return core.WithTraceSampling(n) }
func WithSLO(spec string, every time.Duration) Option { return core.WithSLO(spec, every) }
func WithSLOTargets(ts ...SLOTarget) Option           { return core.WithSLOTargets(ts...) }
func WithFlightDir(dir string) Option                 { return core.WithFlightDir(dir) }
func WithEpochInterval(d time.Duration) Option        { return core.WithEpochInterval(d) }
func WithReplicationFactor(min, max int) Option       { return core.WithReplicationFactor(min, max) }
func WithPlacementPolicy(p PlacementPolicy) Option    { return core.WithPlacementPolicy(p) }
func WithPlacementInterval(d time.Duration) Option    { return core.WithPlacementInterval(d) }

// AdaptivePlacement is the default partial-replication policy: a
// partition's replica count grows with its decayed read weight (one extra
// copy per readsPerReplica weight, 0 = default) between the configured
// bounds, keeping the master and the most recently useful replicas.
func AdaptivePlacement(readsPerReplica float64) PlacementPolicy {
	return selector.AdaptivePolicy{ReadsPerReplica: readsPerReplica}
}

// StaticFullReplication is the classic DynaMast placement: every partition
// on every site. Passing it to WithPlacementPolicy keeps the
// full-replication fast path byte-for-byte.
func StaticFullReplication() PlacementPolicy { return selector.StaticFullReplication{} }

// PartitionByRange groups keys of every table into partitions of size
// contiguous keys — the paper's YCSB partitioning.
func PartitionByRange(size uint64) Partitioner {
	return func(ref RowRef) uint64 { return ref.Key / size }
}

// YCSBWeights, TPCCWeights and SmallBankWeights are the paper's
// per-workload strategy hyperparameters (Appendix H).
func YCSBWeights() Weights      { return selector.YCSBWeights() }
func TPCCWeights() Weights      { return selector.TPCCWeights() }
func SmallBankWeights() Weights { return selector.SmallBankWeights() }

// DefaultNetwork is the simulated cluster network used by the benchmark
// experiments; the zero NetworkConfig is a free (instant) wire.
func DefaultNetwork() NetworkConfig { return transport.DefaultConfig() }

// DefaultCosts is the execution capacity model used by the experiments.
func DefaultCosts() CostModel { return sitemgr.DefaultCostModel() }

// NewFaultInjector builds a fault injector whose decision stream is fixed
// by seed: equal seeds, rules and call sequences inject identical faults.
func NewFaultInjector(seed int64) *FaultInjector { return transport.NewInjector(seed) }

// ParseFaultSpec parses a comma-separated "category:kind:prob[:delay]"
// fault specification (see internal/transport) into injection rules.
func ParseFaultSpec(spec string) ([]FaultRule, error) { return transport.ParseFaultSpec(spec) }

// The error taxonomy. Every sentinel supports errors.Is through arbitrary
// wrapping; Retryable classifies the transient subset wholesale. A typical
// caller loop:
//
//	for {
//	        err := sess.UpdateCtx(ctx, refs, fn)
//	        if err == nil || !dynamast.Retryable(err) {
//	                return err
//	        }
//	        // transient: the cluster is reorganizing (site down, mastership
//	        // moving, connection lost) — back off and resubmit.
//	}
var (
	// ErrSiteDown reports that the transaction's site crashed; resubmitting
	// routes around it once failover completes.
	ErrSiteDown = sitemgr.ErrSiteDown
	// ErrStaleEpoch reports a remaster/failover message fenced off by a
	// newer epoch; the losing chain rolls back and a resubmission re-routes.
	ErrStaleEpoch = sitemgr.ErrStaleEpoch
	// ErrConnLost reports a connection torn down mid-RPC by the (injected
	// or real) wire; the operation's outcome is unknown to the caller.
	ErrConnLost = transport.ErrConnLost
	// ErrNoLeader reports that the selector tier is between leaders (lease
	// failover in progress); resubmitting rides out the promotion window.
	ErrNoLeader = selector.ErrNoLeader
	// ErrNotHosted reports a read routed to a site that does not (or no
	// longer does) host one of the partitions it touched (partial
	// replication); resubmitting re-routes to a hosting replica, and
	// Session reads retry it internally with the missing partitions hinted.
	ErrNotHosted = sitemgr.ErrNotHosted
)

// Retryable reports whether a session-level error is transient: the
// transaction did not commit and re-submitting it can succeed.
func Retryable(err error) bool { return core.Retryable(err) }
