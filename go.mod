module dynamast

go 1.22
