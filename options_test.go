package dynamast_test

import (
	"context"
	"errors"
	"testing"
	"time"

	"dynamast"
)

// The functional-options construction path end to end, including a
// context-first transaction pair.
func TestNewWithOptions(t *testing.T) {
	c, err := dynamast.New(
		dynamast.WithSites(3),
		dynamast.WithPartitioner(dynamast.PartitionByRange(100)),
		dynamast.WithDurableDir(t.TempDir()),
		dynamast.WithCheckpointEvery(time.Hour),
		dynamast.WithSeed(7),
	)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	c.CreateTable("kv")

	ctx := context.Background()
	sess := c.Session(1)
	ref := dynamast.RowRef{Table: "kv", Key: 7}
	if err := sess.UpdateCtx(ctx, []dynamast.RowRef{ref}, func(tx dynamast.Tx) error {
		return tx.Write(ref, []byte("v"))
	}); err != nil {
		t.Fatal(err)
	}
	if err := sess.ReadCtx(ctx, func(tx dynamast.Tx) error {
		if data, ok := tx.Read(ref); !ok || string(data) != "v" {
			t.Fatalf("read %q %v", data, ok)
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
}

// The historical Config-struct call shape still works: a Config value is
// itself an Option.
func TestConfigStructStillAnOption(t *testing.T) {
	c, err := dynamast.New(dynamast.Config{
		Sites:       2,
		Partitioner: dynamast.PartitionByRange(100),
	})
	if err != nil {
		t.Fatal(err)
	}
	c.Close()

	// Later options refine a leading Config.
	c, err = dynamast.New(
		dynamast.Config{Sites: 2, Partitioner: dynamast.PartitionByRange(100)},
		dynamast.WithSites(3),
	)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if got := len(c.Sites()); got != 3 {
		t.Fatalf("WithSites after Config: %d sites, want 3", got)
	}
}

func TestWithFaultsRejectsBadSpec(t *testing.T) {
	_, err := dynamast.New(
		dynamast.WithSites(2),
		dynamast.WithPartitioner(dynamast.PartitionByRange(100)),
		dynamast.WithFaults("not-a-spec", 42),
	)
	if err == nil {
		t.Fatal("malformed fault spec did not error")
	}
}

// A cancelled context interrupts both transaction entry points before any
// work happens.
func TestCtxCancellation(t *testing.T) {
	c, err := dynamast.New(
		dynamast.WithSites(2),
		dynamast.WithPartitioner(dynamast.PartitionByRange(100)),
	)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	c.CreateTable("kv")
	sess := c.Session(1)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	ref := dynamast.RowRef{Table: "kv", Key: 1}
	err = sess.UpdateCtx(ctx, []dynamast.RowRef{ref}, func(tx dynamast.Tx) error {
		t.Fatal("transaction logic ran under a cancelled context")
		return nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("UpdateCtx under cancelled ctx: %v", err)
	}
	if err := sess.ReadCtx(ctx, func(tx dynamast.Tx) error { return nil }); !errors.Is(err, context.Canceled) {
		t.Fatalf("ReadCtx under cancelled ctx: %v", err)
	}
	// The session stays usable after a cancellation.
	if err := sess.Update([]dynamast.RowRef{ref}, func(tx dynamast.Tx) error {
		return tx.Write(ref, []byte("v"))
	}); err != nil {
		t.Fatal(err)
	}
}

// The exported sentinels survive the session layer's wrapping.
func TestErrorTaxonomy(t *testing.T) {
	if !dynamast.Retryable(dynamast.ErrSiteDown) {
		t.Fatal("ErrSiteDown must be retryable")
	}
	wrapped := errors.Join(errors.New("outer"), dynamast.ErrStaleEpoch)
	if !errors.Is(wrapped, dynamast.ErrStaleEpoch) {
		t.Fatal("ErrStaleEpoch lost through wrapping")
	}
	if dynamast.ErrConnLost == nil {
		t.Fatal("ErrConnLost unexported")
	}
}
