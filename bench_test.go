package dynamast_test

// One benchmark per figure/table of the paper's evaluation (DESIGN.md §5).
// Each iteration regenerates the figure at bench.QuickScale; the tables are
// printed on the first iteration. The reporting numbers in EXPERIMENTS.md
// come from cmd/dynamast-bench at FullScale:
//
//	go run ./cmd/dynamast-bench all
//
// Run these with a bounded count, e.g.:
//
//	go test -bench=. -benchtime=1x -benchmem

import (
	"os"
	"testing"

	"dynamast/internal/bench"
)

// benchExperiment runs one figure per iteration and reports headline
// metrics from the first run.
func benchExperiment(b *testing.B, fn func(bench.Scale) (*bench.Experiment, error)) {
	b.Helper()
	scale := bench.QuickScale()
	scale.Seed = 7
	for i := 0; i < b.N; i++ {
		exp, err := fn(scale)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			exp.Print(os.Stdout)
			if len(exp.Rows) > 0 {
				for col, v := range exp.Rows[0].Values {
					b.ReportMetric(v, "row0_"+col)
				}
			}
		}
	}
}

func BenchmarkFig4aYCSBUniform5050(b *testing.B) {
	benchExperiment(b, func(s bench.Scale) (*bench.Experiment, error) {
		return bench.Fig4aYCSBUniform5050(s, []int{s.Clients})
	})
}

func BenchmarkFig4bYCSBUniform9010(b *testing.B) {
	benchExperiment(b, func(s bench.Scale) (*bench.Experiment, error) {
		return bench.Fig4bYCSBUniform9010(s, []int{s.Clients})
	})
}

func BenchmarkFig4cTPCCNewOrderLatency(b *testing.B) {
	benchExperiment(b, bench.Fig4cTPCCNewOrderLatency)
}

func BenchmarkFig4dTPCCStockLevelLatency(b *testing.B) {
	benchExperiment(b, bench.Fig4dTPCCStockLevelLatency)
}

func BenchmarkFig4eTPCCNewOrderMix(b *testing.B) {
	benchExperiment(b, func(s bench.Scale) (*bench.Experiment, error) {
		return bench.Fig4eTPCCNewOrderMix(s, []int{45, 90})
	})
}

func BenchmarkFigCrossWarehouse(b *testing.B) {
	benchExperiment(b, func(s bench.Scale) (*bench.Experiment, error) {
		return bench.FigCrossWarehouse(s, []int{-1, 33})
	})
}

func BenchmarkFigSkewYCSBZipfian(b *testing.B) {
	benchExperiment(b, bench.FigSkewYCSBZipfian)
}

func BenchmarkFig5aSensitivity(b *testing.B) {
	benchExperiment(b, bench.Fig5aSensitivity)
}

func BenchmarkFig5bAdaptivity(b *testing.B) {
	benchExperiment(b, bench.Fig5bAdaptivity)
}

func BenchmarkFig7Breakdown(b *testing.B) {
	benchExperiment(b, bench.Fig7Breakdown)
}

func BenchmarkFig6bDBSize(b *testing.B) {
	benchExperiment(b, bench.Fig6bDBSize)
}

func BenchmarkFig6cSiteScaling(b *testing.B) {
	benchExperiment(b, func(s bench.Scale) (*bench.Experiment, error) {
		return bench.Fig6cSiteScaling(s, []int{4, 8})
	})
}

func BenchmarkFig8aSmallBankThroughput(b *testing.B) {
	benchExperiment(b, bench.Fig8aSmallBankThroughput)
}

func BenchmarkFig8bcdSmallBankTails(b *testing.B) {
	benchExperiment(b, bench.Fig8bcdSmallBankTails)
}

func BenchmarkFig8efgPayment(b *testing.B) {
	benchExperiment(b, bench.Fig8efgPayment)
}

func BenchmarkFigOverhead(b *testing.B) {
	benchExperiment(b, bench.FigOverhead)
}

func BenchmarkFigLatencyAblation(b *testing.B) {
	benchExperiment(b, bench.FigLatencyAblation)
}

func BenchmarkFigVersionCapAblation(b *testing.B) {
	benchExperiment(b, bench.FigVersionCapAblation)
}
