package dynamast_test

import (
	"fmt"
	"log"

	"dynamast"
)

// Example shows the minimal lifecycle: build a cluster, load data, run an
// update transaction and read it back through the same session.
func Example() {
	cluster, err := dynamast.New(dynamast.Config{
		Sites:       2,
		Partitioner: dynamast.PartitionByRange(100),
	})
	if err != nil {
		log.Fatal(err)
	}
	defer cluster.Close()

	cluster.CreateTable("kv")
	cluster.Load([]dynamast.LoadRow{
		{Ref: dynamast.RowRef{Table: "kv", Key: 1}, Data: []byte("one")},
	})

	sess := cluster.Session(1)
	ref := dynamast.RowRef{Table: "kv", Key: 1}
	if err := sess.Update([]dynamast.RowRef{ref}, func(tx dynamast.Tx) error {
		return tx.Write(ref, []byte("uno"))
	}); err != nil {
		log.Fatal(err)
	}
	_ = sess.Read(func(tx dynamast.Tx) error {
		data, _ := tx.Read(ref)
		fmt.Printf("%s\n", data)
		return nil
	})
	// Output: uno
}

// ExampleCluster_Session demonstrates remastering: a write set spanning two
// partitions whose masters start at different sites is co-located before
// the transaction executes at a single site.
func ExampleCluster_Session() {
	cluster, err := dynamast.New(dynamast.Config{
		Sites:       2,
		Partitioner: dynamast.PartitionByRange(100),
		// Partition 0 starts at site 0 and partition 1 at site 1.
		InitialMaster: func(part uint64) int { return int(part) % 2 },
	})
	if err != nil {
		log.Fatal(err)
	}
	defer cluster.Close()
	cluster.CreateTable("kv")
	cluster.Load([]dynamast.LoadRow{
		{Ref: dynamast.RowRef{Table: "kv", Key: 10}, Data: []byte("a")},
		{Ref: dynamast.RowRef{Table: "kv", Key: 110}, Data: []byte("b")},
	})

	sess := cluster.Session(7)
	ws := []dynamast.RowRef{{Table: "kv", Key: 10}, {Table: "kv", Key: 110}}
	if err := sess.Update(ws, func(tx dynamast.Tx) error {
		for _, r := range ws {
			if err := tx.Write(r, []byte("x")); err != nil {
				return err
			}
		}
		return nil
	}); err != nil {
		log.Fatal(err)
	}
	m := cluster.Selector().Metrics()
	fmt.Printf("remastered %d transaction(s); partitions co-located: %v\n",
		m.RemasterTxns, cluster.Selector().MasterOf(0) == cluster.Selector().MasterOf(1))
	// Output: remastered 1 transaction(s); partitions co-located: true
}

// ExampleSession_Read shows read-only transactions running at any replica
// under the session's freshness guarantee.
func ExampleSession_Read() {
	cluster, err := dynamast.New(dynamast.Config{
		Sites:       3,
		Partitioner: dynamast.PartitionByRange(100),
	})
	if err != nil {
		log.Fatal(err)
	}
	defer cluster.Close()
	cluster.CreateTable("kv")
	var rows []dynamast.LoadRow
	for k := uint64(0); k < 10; k++ {
		rows = append(rows, dynamast.LoadRow{
			Ref: dynamast.RowRef{Table: "kv", Key: k}, Data: []byte{byte(k)},
		})
	}
	cluster.Load(rows)

	sess := cluster.Session(1)
	_ = sess.Read(func(tx dynamast.Tx) error {
		fmt.Printf("scanned %d rows\n", len(tx.Scan("kv", 0, 10)))
		return nil
	})
	// Output: scanned 10 rows
}
