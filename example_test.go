package dynamast_test

import (
	"context"
	"errors"
	"fmt"
	"log"
	"os"
	"time"

	"dynamast"
)

// Example shows the minimal lifecycle on the functional-options API: build
// a cluster, load data, run an update transaction under a context and read
// it back through the same session.
func Example() {
	cluster, err := dynamast.New(
		dynamast.WithSites(2),
		dynamast.WithPartitioner(dynamast.PartitionByRange(100)),
	)
	if err != nil {
		log.Fatal(err)
	}
	defer cluster.Close()

	cluster.CreateTable("kv")
	cluster.Load([]dynamast.LoadRow{
		{Ref: dynamast.RowRef{Table: "kv", Key: 1}, Data: []byte("one")},
	})

	ctx := context.Background()
	sess := cluster.Session(1)
	ref := dynamast.RowRef{Table: "kv", Key: 1}
	if err := sess.UpdateCtx(ctx, []dynamast.RowRef{ref}, func(tx dynamast.Tx) error {
		return tx.Write(ref, []byte("uno"))
	}); err != nil {
		log.Fatal(err)
	}
	_ = sess.ReadCtx(ctx, func(tx dynamast.Tx) error {
		data, _ := tx.Read(ref)
		fmt.Printf("%s\n", data)
		return nil
	})
	// Output: uno
}

// ExampleNew_config shows the historical construction shape: a Config
// struct is itself an Option, so code written against the previous API
// keeps compiling unchanged, and later options can refine a leading Config.
func ExampleNew_config() {
	cluster, err := dynamast.New(dynamast.Config{
		Sites:       2,
		Partitioner: dynamast.PartitionByRange(100),
	})
	if err != nil {
		log.Fatal(err)
	}
	defer cluster.Close()
	cluster.CreateTable("kv")

	sess := cluster.Session(1)
	ref := dynamast.RowRef{Table: "kv", Key: 3}
	if err := sess.Update([]dynamast.RowRef{ref}, func(tx dynamast.Tx) error {
		return tx.Write(ref, []byte("legacy"))
	}); err != nil {
		log.Fatal(err)
	}
	_ = sess.Read(func(tx dynamast.Tx) error {
		data, _ := tx.Read(ref)
		fmt.Printf("%s\n", data)
		return nil
	})
	// Output: legacy
}

// ExampleNew_durable builds a durable cluster: updates are redo-logged
// under the directory, and a background checkpointer bounds how much log a
// restart must replay (see Cluster.Recover).
func ExampleNew_durable() {
	dir, err := os.MkdirTemp("", "dynamast-example")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	cluster, err := dynamast.New(
		dynamast.WithSites(2),
		dynamast.WithPartitioner(dynamast.PartitionByRange(100)),
		dynamast.WithDurableDir(dir),
		dynamast.WithCheckpointEvery(time.Minute),
	)
	if err != nil {
		log.Fatal(err)
	}
	defer cluster.Close()
	cluster.CreateTable("kv")

	ref := dynamast.RowRef{Table: "kv", Key: 42}
	sess := cluster.Session(1)
	if err := sess.Update([]dynamast.RowRef{ref}, func(tx dynamast.Tx) error {
		return tx.Write(ref, []byte("durable"))
	}); err != nil {
		log.Fatal(err)
	}
	fmt.Println("committed durably")
	// Output: committed durably
}

// ExampleCluster_Session demonstrates remastering: a write set spanning two
// partitions whose masters start at different sites is co-located before
// the transaction executes at a single site. A Config carrying the initial
// placement mixes freely with With-options.
func ExampleCluster_Session() {
	cluster, err := dynamast.New(
		// Partition 0 starts at site 0 and partition 1 at site 1.
		dynamast.Config{InitialMaster: func(part uint64) int { return int(part) % 2 }},
		dynamast.WithSites(2),
		dynamast.WithPartitioner(dynamast.PartitionByRange(100)),
	)
	if err != nil {
		log.Fatal(err)
	}
	defer cluster.Close()
	cluster.CreateTable("kv")
	cluster.Load([]dynamast.LoadRow{
		{Ref: dynamast.RowRef{Table: "kv", Key: 10}, Data: []byte("a")},
		{Ref: dynamast.RowRef{Table: "kv", Key: 110}, Data: []byte("b")},
	})

	sess := cluster.Session(7)
	ws := []dynamast.RowRef{{Table: "kv", Key: 10}, {Table: "kv", Key: 110}}
	if err := sess.Update(ws, func(tx dynamast.Tx) error {
		for _, r := range ws {
			if err := tx.Write(r, []byte("x")); err != nil {
				return err
			}
		}
		return nil
	}); err != nil {
		log.Fatal(err)
	}
	m := cluster.Selector().Metrics()
	fmt.Printf("remastered %d transaction(s); partitions co-located: %v\n",
		m.RemasterTxns, cluster.Selector().MasterOf(0) == cluster.Selector().MasterOf(1))
	// Output: remastered 1 transaction(s); partitions co-located: true
}

// ExampleSession_Read shows read-only transactions running at any replica
// under the session's freshness guarantee.
func ExampleSession_Read() {
	cluster, err := dynamast.New(
		dynamast.WithSites(3),
		dynamast.WithPartitioner(dynamast.PartitionByRange(100)),
	)
	if err != nil {
		log.Fatal(err)
	}
	defer cluster.Close()
	cluster.CreateTable("kv")
	var rows []dynamast.LoadRow
	for k := uint64(0); k < 10; k++ {
		rows = append(rows, dynamast.LoadRow{
			Ref: dynamast.RowRef{Table: "kv", Key: k}, Data: []byte{byte(k)},
		})
	}
	cluster.Load(rows)

	sess := cluster.Session(1)
	_ = sess.Read(func(tx dynamast.Tx) error {
		fmt.Printf("scanned %d rows\n", len(tx.Scan("kv", 0, 10)))
		return nil
	})
	// Output: scanned 10 rows
}

// ExampleRetryable is the canonical client retry loop: transient faults
// (a site mid-failover, a lost connection, a stale remaster epoch) surface
// as retryable errors, while logic errors abort immediately. The sentinels
// ErrSiteDown, ErrStaleEpoch and ErrConnLost support errors.Is even
// through wrapping.
func ExampleRetryable() {
	cluster, err := dynamast.New(
		dynamast.WithSites(2),
		dynamast.WithPartitioner(dynamast.PartitionByRange(100)),
	)
	if err != nil {
		log.Fatal(err)
	}
	defer cluster.Close()
	cluster.CreateTable("kv")

	ctx, cancel := context.WithTimeout(context.Background(), time.Second)
	defer cancel()
	sess := cluster.Session(1)
	ref := dynamast.RowRef{Table: "kv", Key: 9}

	for attempt := 1; ; attempt++ {
		err := sess.UpdateCtx(ctx, []dynamast.RowRef{ref}, func(tx dynamast.Tx) error {
			return tx.Write(ref, []byte("ok"))
		})
		switch {
		case err == nil:
			fmt.Println("committed")
		case errors.Is(err, dynamast.ErrSiteDown) && attempt < 5:
			continue // transient: the failover will re-home the partition
		case dynamast.Retryable(err) && attempt < 5:
			continue
		default:
			log.Fatal(err) // logic error, context expiry, or out of attempts
		}
		break
	}
	// Output: committed
}
