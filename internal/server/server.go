// Package server exposes a DynaMast cluster over the TCP RPC layer: a
// small operation-based transactional API that remote clients drive
// (cmd/dynamastd and examples/cluster). Transactions arrive as declared
// write sets plus ordered operation lists, mirroring the paper's
// stored-procedure submission model.
package server

import (
	"context"
	"fmt"
	"net"
	"sync"
	"time"

	"dynamast/internal/core"
	"dynamast/internal/obs"
	"dynamast/internal/selector"
	"dynamast/internal/storage"
	"dynamast/internal/systems"
	"dynamast/internal/transport"
)

// OpKind discriminates transaction operations.
type OpKind uint8

const (
	// OpGet reads a row into the result list.
	OpGet OpKind = iota + 1
	// OpPut writes Value to the row.
	OpPut
	// OpAdd interprets the row as a big-endian uint64 counter and adds
	// Delta (missing rows count as zero) — the server-side
	// read-modify-write primitive.
	OpAdd
	// OpScan reads rows of Table with Lo <= key < Hi.
	OpScan
)

// Op is one operation of a transaction.
type Op struct {
	Kind  OpKind
	Table string
	Key   uint64
	Lo    uint64
	Hi    uint64
	Value []byte
	Delta int64
}

// OpResult is one operation's outcome.
type OpResult struct {
	Found bool
	Value []byte
	Rows  []storage.KV
}

// TxnRequest is a transaction submission.
type TxnRequest struct {
	// Client identifies the session (strong-session SI is per client).
	Client int
	// WriteSet declares the rows the transaction may write; empty means
	// read-only.
	WriteSet []storage.RowRef
	// Ops execute in order.
	Ops []Op
}

// TxnResponse carries the per-op results of a committed transaction.
type TxnResponse struct {
	Results []OpResult
}

// Server hosts a cluster behind the RPC layer.
type Server struct {
	cluster *core.Cluster
	rpc     *transport.Server

	mu       sync.Mutex
	sessions map[int]*lockedSession
}

// lockedSession serializes a client's transactions: sessions are
// single-threaded by contract (a session's order defines SSSI), and one
// client id may arrive over concurrent connections.
type lockedSession struct {
	mu   sync.Mutex
	sess *core.Session
}

// Serve starts serving cluster on addr ("host:0" picks a free port) and
// returns the bound address.
func Serve(cluster *core.Cluster, addr string) (*Server, net.Addr, error) {
	s := &Server{
		cluster:  cluster,
		rpc:      transport.NewServer(),
		sessions: make(map[int]*lockedSession),
	}
	transport.HandleTraced(s.rpc, "txn", s.handleTxn)
	transport.Handle(s.rpc, "create_table", s.handleCreateTable)
	transport.Handle(s.rpc, "stats", s.handleStats)
	transport.Handle(s.rpc, "metrics", s.handleMetrics)
	transport.Handle(s.rpc, "faults", s.handleFaults)
	transport.Handle(s.rpc, "checkpoint", s.handleCheckpoint)
	transport.Handle(s.rpc, "placement", s.handlePlacement)
	bound, err := s.rpc.ListenAndServe(addr)
	if err != nil {
		return nil, nil, err
	}
	return s, bound, nil
}

// Close stops the RPC listener (the cluster is owned by the caller).
func (s *Server) Close() error { return s.rpc.Close() }

func (s *Server) session(client int) *lockedSession {
	s.mu.Lock()
	defer s.mu.Unlock()
	ls := s.sessions[client]
	if ls == nil {
		ls = &lockedSession{sess: s.cluster.Session(client)}
		s.sessions[client] = ls
	}
	return ls
}

type createTableReq struct{ Name string }
type createTableResp struct{}

func (s *Server) handleCreateTable(req *createTableReq) (*createTableResp, error) {
	s.cluster.CreateTable(req.Name)
	return &createTableResp{}, nil
}

// handleTxn executes one submitted transaction. tc is the distributed trace
// context the client carried in its RPC frame (zero when unsampled): the
// server-side session joins that trace, recording the root txn span and the
// whole downstream span tree under the client's trace id.
func (s *Server) handleTxn(tc obs.SpanContext, req *TxnRequest) (*TxnResponse, error) {
	ls := s.session(req.Client)
	ls.mu.Lock()
	defer ls.mu.Unlock()
	sess := ls.sess
	if tc.Sampled() {
		sess.SetTraceContext(tc)
	}
	resp := &TxnResponse{Results: make([]OpResult, len(req.Ops))}
	run := func(tx systems.Tx) error {
		for i, op := range req.Ops {
			switch op.Kind {
			case OpGet:
				data, ok := tx.Read(storage.RowRef{Table: op.Table, Key: op.Key})
				resp.Results[i] = OpResult{Found: ok, Value: append([]byte(nil), data...)}
			case OpPut:
				if err := tx.Write(storage.RowRef{Table: op.Table, Key: op.Key}, op.Value); err != nil {
					return err
				}
				resp.Results[i] = OpResult{Found: true}
			case OpAdd:
				ref := storage.RowRef{Table: op.Table, Key: op.Key}
				var cur uint64
				if data, ok := tx.Read(ref); ok && len(data) >= 8 {
					for b := 0; b < 8; b++ {
						cur = cur<<8 | uint64(data[b])
					}
				}
				cur = uint64(int64(cur) + op.Delta)
				out := make([]byte, 8)
				for b := 0; b < 8; b++ {
					out[b] = byte(cur >> (56 - 8*b))
				}
				if err := tx.Write(ref, out); err != nil {
					return err
				}
				resp.Results[i] = OpResult{Found: true, Value: out}
			case OpScan:
				rows := tx.Scan(op.Table, op.Lo, op.Hi)
				resp.Results[i] = OpResult{Found: true, Rows: rows}
			default:
				return fmt.Errorf("server: unknown op kind %d", op.Kind)
			}
		}
		return nil
	}
	var err error
	if len(req.WriteSet) > 0 {
		err = sess.Update(req.WriteSet, run)
	} else {
		err = sess.Read(run)
	}
	if err != nil {
		return nil, err
	}
	return resp, nil
}

// StatsRequest asks for cluster statistics.
type StatsRequest struct{}

// StatsReply is a cluster-statistics snapshot for operators.
type StatsReply struct {
	Commits        uint64
	PerSiteCommits []uint64
	WriteTxns      uint64
	ReadTxns       uint64
	RemasterTxns   uint64
	PartsMoved     uint64
	RoutedPerSite  []uint64
	SiteVectors    [][]uint64
}

func (s *Server) handleStats(*StatsRequest) (*StatsReply, error) {
	st := s.cluster.Stats()
	m := s.cluster.Selector().Metrics()
	reply := &StatsReply{
		Commits:        st.Commits,
		PerSiteCommits: st.PerSiteCommits,
		WriteTxns:      m.WriteTxns,
		ReadTxns:       m.ReadTxns,
		RemasterTxns:   m.RemasterTxns,
		PartsMoved:     m.PartsMoved,
		RoutedPerSite:  m.RoutedPerSite,
	}
	for _, site := range s.cluster.Sites() {
		reply.SiteVectors = append(reply.SiteVectors, site.SVV())
	}
	return reply, nil
}

// MetricsRequest asks for an observability snapshot. Traces limits how
// many recent lifecycle traces ride along (0 = none).
type MetricsRequest struct {
	Traces int
}

// MetricsReply carries the full registry snapshot and, when requested,
// recent transaction lifecycle traces — the same data the /metrics and
// /debug/traces HTTP endpoints serve.
type MetricsReply struct {
	Snapshot obs.Snapshot
	Traces   []obs.TraceJSON
}

func (s *Server) handleMetrics(req *MetricsRequest) (*MetricsReply, error) {
	reply := &MetricsReply{Snapshot: s.cluster.Obs().Snapshot()}
	if req.Traces > 0 {
		reply.Traces = obs.TracesJSON(s.cluster.Tracer().Recent(req.Traces))
	}
	return reply, nil
}

// FaultsRequest inspects or updates the cluster's fault-injection rules.
// With Spec empty the request is read-only; "off" clears the rule set; any
// other value is parsed as a fault spec ("category:kind:prob[:delay]",
// comma-separated) and replaces the rules.
type FaultsRequest struct {
	Spec string
}

// FaultRuleInfo is one active injection rule, rendered with names.
type FaultRuleInfo struct {
	Category string
	Kind     string
	Prob     float64
	Delay    time.Duration
}

// FaultsReply reports the cluster's fault-injection state: whether an
// injector is installed, its seed and rules, non-zero injection counters by
// "category/kind", and the related resilience counters.
type FaultsReply struct {
	Enabled    bool
	Seed       int64
	Rules      []FaultRuleInfo
	Injected   map[string]uint64
	RPCRetries uint64
	Failovers  uint64
}

func (s *Server) handleFaults(req *FaultsRequest) (*FaultsReply, error) {
	inj := s.cluster.Faults()
	if req.Spec != "" {
		if inj == nil {
			return nil, fmt.Errorf("fault injection not enabled: start the daemon with -fault-spec (or configure Faults)")
		}
		if req.Spec == "off" {
			inj.SetRules()
		} else {
			rules, err := transport.ParseFaultSpec(req.Spec)
			if err != nil {
				return nil, err
			}
			inj.SetRules(rules...)
		}
	}
	reply := &FaultsReply{
		Enabled:    inj != nil,
		Injected:   make(map[string]uint64),
		RPCRetries: transport.RPCRetries(),
		Failovers:  s.cluster.Failovers(),
	}
	if inj == nil {
		return reply, nil
	}
	reply.Seed = inj.Seed()
	for _, r := range inj.Rules() {
		reply.Rules = append(reply.Rules, FaultRuleInfo{
			Category: r.Category.String(), Kind: r.Kind.String(), Prob: r.Prob, Delay: r.Delay,
		})
	}
	for _, cat := range transport.Categories() {
		for _, k := range []transport.FaultKind{transport.FaultDrop, transport.FaultDelay, transport.FaultError} {
			if n := inj.InjectedCount(cat, k); n > 0 {
				reply.Injected[cat.String()+"/"+k.String()] = n
			}
		}
	}
	return reply, nil
}

// CheckpointRequest asks the cluster to take a checkpoint now.
type CheckpointRequest struct{}

// CheckpointReply summarizes the committed checkpoint: its sequence number,
// per-site snapshot sizes, and the WAL low-water marks the logs were
// truncated to.
type CheckpointReply struct {
	Seq      uint64
	Rows     []uint64
	Bytes    []uint64
	LowWater []uint64
}

func (s *Server) handleCheckpoint(*CheckpointRequest) (*CheckpointReply, error) {
	m, err := s.cluster.Checkpoint()
	if err != nil {
		return nil, err
	}
	reply := &CheckpointReply{Seq: m.Seq, LowWater: m.LowWater}
	for _, info := range m.Snapshots {
		reply.Rows = append(reply.Rows, info.Rows)
		reply.Bytes = append(reply.Bytes, info.Bytes)
	}
	return reply, nil
}

// PlacementRequest asks for the cluster's replica placement snapshot.
type PlacementRequest struct{}

// PlacementReply carries the placement snapshot: per-partition replica sets
// and masters, per-site residency, and the recent add/drop decision log.
type PlacementReply struct {
	Info selector.PlacementInfo
}

func (s *Server) handlePlacement(*PlacementRequest) (*PlacementReply, error) {
	return &PlacementReply{Info: s.cluster.Placement()}, nil
}

// Client is a remote session against a Server.
type Client struct {
	rpc *transport.Client
	id  int
}

// Dial connects a client session (identified by id) to a server.
func Dial(addr string, id int) (*Client, error) {
	rpc, err := transport.Dial(addr)
	if err != nil {
		return nil, err
	}
	return &Client{rpc: rpc, id: id}, nil
}

// Close disconnects.
func (c *Client) Close() error { return c.rpc.Close() }

// CreateTable declares a table cluster-wide.
func (c *Client) CreateTable(name string) error {
	return c.rpc.Call("create_table", &createTableReq{Name: name}, &createTableResp{})
}

// Txn submits a transaction and returns the per-op results.
func (c *Client) Txn(writeSet []storage.RowRef, ops []Op) ([]OpResult, error) {
	return c.TxnTraced(obs.SpanContext{}, writeSet, ops)
}

// TxnTraced is Txn carrying a sampled distributed trace context (start one
// with obs.NewTraceContext): the context rides the RPC frame — zero extra
// bytes when unsampled — and the server records the transaction's span tree
// under it. Fetch the spans afterwards from /debug/spans?trace=<id>.
func (c *Client) TxnTraced(sc obs.SpanContext, writeSet []storage.RowRef, ops []Op) ([]OpResult, error) {
	var resp TxnResponse
	err := c.rpc.CallTraced(context.Background(), sc, "txn",
		&TxnRequest{Client: c.id, WriteSet: writeSet, Ops: ops}, &resp)
	if err != nil {
		return nil, err
	}
	return resp.Results, nil
}

// Get is a single-row read-only transaction.
func (c *Client) Get(table string, key uint64) ([]byte, bool, error) {
	res, err := c.Txn(nil, []Op{{Kind: OpGet, Table: table, Key: key}})
	if err != nil {
		return nil, false, err
	}
	return res[0].Value, res[0].Found, nil
}

// Put is a single-row update transaction.
func (c *Client) Put(table string, key uint64, value []byte) error {
	_, err := c.Txn([]storage.RowRef{{Table: table, Key: key}},
		[]Op{{Kind: OpPut, Table: table, Key: key, Value: value}})
	return err
}

// Stats fetches a cluster-statistics snapshot.
func (c *Client) Stats() (*StatsReply, error) {
	var reply StatsReply
	if err := c.rpc.Call("stats", &StatsRequest{}, &reply); err != nil {
		return nil, err
	}
	return &reply, nil
}

// Metrics fetches the cluster's observability snapshot, with up to traces
// recent lifecycle traces.
func (c *Client) Metrics(traces int) (*MetricsReply, error) {
	var reply MetricsReply
	if err := c.rpc.Call("metrics", &MetricsRequest{Traces: traces}, &reply); err != nil {
		return nil, err
	}
	return &reply, nil
}

// Checkpoint asks the cluster to take a checkpoint now and returns its
// summary (requires the daemon to run with a durable directory).
func (c *Client) Checkpoint() (*CheckpointReply, error) {
	var reply CheckpointReply
	if err := c.rpc.Call("checkpoint", &CheckpointRequest{}, &reply); err != nil {
		return nil, err
	}
	return &reply, nil
}

// Placement fetches the cluster's replica placement snapshot.
func (c *Client) Placement() (*selector.PlacementInfo, error) {
	var reply PlacementReply
	if err := c.rpc.Call("placement", &PlacementRequest{}, &reply); err != nil {
		return nil, err
	}
	return &reply.Info, nil
}

// Faults fetches (and with a non-empty spec, updates) the cluster's
// fault-injection state. Spec "off" clears the rules.
func (c *Client) Faults(spec string) (*FaultsReply, error) {
	var reply FaultsReply
	if err := c.rpc.Call("faults", &FaultsRequest{Spec: spec}, &reply); err != nil {
		return nil, err
	}
	return &reply, nil
}
