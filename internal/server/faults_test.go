package server

import (
	"strings"
	"testing"

	"dynamast/internal/core"
	"dynamast/internal/storage"
	"dynamast/internal/transport"
)

// The faults RPC reads and rewrites the cluster's injection rules.
func TestFaultsRPC(t *testing.T) {
	inj := transport.NewInjector(7)
	cluster, err := core.NewCluster(core.Config{
		Sites:       2,
		Partitioner: func(ref storage.RowRef) uint64 { return ref.Key / 100 },
		Faults:      inj,
	})
	if err != nil {
		t.Fatal(err)
	}
	srv, addr, err := Serve(cluster, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		srv.Close()
		cluster.Close()
	})
	cl, err := Dial(addr.String(), 1)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	f, err := cl.Faults("")
	if err != nil {
		t.Fatal(err)
	}
	if !f.Enabled || f.Seed != 7 || len(f.Rules) != 0 {
		t.Fatalf("initial state: %+v", f)
	}

	f, err = cl.Faults("remaster:drop:0.25,txn:delay:0.5:2ms")
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Rules) != 2 || f.Rules[0].Category != "remaster" || f.Rules[0].Kind != "drop" ||
		f.Rules[1].Kind != "delay" || f.Rules[1].Delay.Milliseconds() != 2 {
		t.Fatalf("rules after set: %+v", f.Rules)
	}
	if got := inj.Rules(); len(got) != 2 {
		t.Fatalf("injector has %d rules, want 2", len(got))
	}

	if _, err := cl.Faults("bogus:drop:0.1"); err == nil ||
		!strings.Contains(err.Error(), "unknown category") {
		t.Fatalf("bad spec error = %v", err)
	}

	f, err = cl.Faults("off")
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Rules) != 0 || len(inj.Rules()) != 0 {
		t.Fatalf("rules after off: %+v / %v", f.Rules, inj.Rules())
	}
}

// Without an injector the RPC is read-only and rejects rule changes.
func TestFaultsRPCDisabled(t *testing.T) {
	_, addr := startServer(t)
	cl, err := Dial(addr, 1)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	f, err := cl.Faults("")
	if err != nil {
		t.Fatal(err)
	}
	if f.Enabled {
		t.Fatalf("injector reported enabled: %+v", f)
	}
	if _, err := cl.Faults("txn:drop:0.1"); err == nil ||
		!strings.Contains(err.Error(), "not enabled") {
		t.Fatalf("set on disabled cluster = %v", err)
	}
}
