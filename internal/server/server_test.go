package server

import (
	"sync"
	"testing"

	"dynamast/internal/core"
	"dynamast/internal/storage"
)

func startServer(t *testing.T) (*core.Cluster, string) {
	t.Helper()
	cluster, err := core.NewCluster(core.Config{
		Sites:       2,
		Partitioner: func(ref storage.RowRef) uint64 { return ref.Key / 100 },
	})
	if err != nil {
		t.Fatal(err)
	}
	srv, addr, err := Serve(cluster, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		srv.Close()
		cluster.Close()
	})
	return cluster, addr.String()
}

func TestPutGetOverRPC(t *testing.T) {
	_, addr := startServer(t)
	cl, err := Dial(addr, 1)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	if err := cl.CreateTable("kv"); err != nil {
		t.Fatal(err)
	}
	if err := cl.Put("kv", 7, []byte("hello")); err != nil {
		t.Fatal(err)
	}
	data, ok, err := cl.Get("kv", 7)
	if err != nil || !ok || string(data) != "hello" {
		t.Fatalf("get = %q %v %v", data, ok, err)
	}
	if _, ok, _ := cl.Get("kv", 8); ok {
		t.Fatal("missing key found")
	}
}

func TestMultiOpTxnAtomicity(t *testing.T) {
	_, addr := startServer(t)
	cl, err := Dial(addr, 2)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	if err := cl.CreateTable("kv"); err != nil {
		t.Fatal(err)
	}
	ws := []storage.RowRef{{Table: "kv", Key: 1}, {Table: "kv", Key: 150}}
	res, err := cl.Txn(ws, []Op{
		{Kind: OpAdd, Table: "kv", Key: 1, Delta: 5},
		{Kind: OpAdd, Table: "kv", Key: 150, Delta: 7},
		{Kind: OpGet, Table: "kv", Key: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res[2].Found || res[2].Value[7] != 5 {
		t.Fatalf("read-own-write over RPC: %+v", res[2])
	}
	// A read-only scan sees both rows.
	res, err = cl.Txn(nil, []Op{{Kind: OpScan, Table: "kv", Lo: 0, Hi: 200}})
	if err != nil {
		t.Fatal(err)
	}
	if len(res[0].Rows) != 2 {
		t.Fatalf("scan rows = %d", len(res[0].Rows))
	}
}

func TestConcurrentRemoteCounters(t *testing.T) {
	cluster, addr := startServer(t)
	cluster.CreateTable("kv")
	const clients, adds = 4, 25
	var wg sync.WaitGroup
	errs := make(chan error, clients)
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			cl, err := Dial(addr, c)
			if err != nil {
				errs <- err
				return
			}
			defer cl.Close()
			ws := []storage.RowRef{{Table: "kv", Key: 9}}
			for i := 0; i < adds; i++ {
				if _, err := cl.Txn(ws, []Op{{Kind: OpAdd, Table: "kv", Key: 9, Delta: 1}}); err != nil {
					errs <- err
					return
				}
			}
		}(c)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	cl, err := Dial(addr, 99)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	data, ok, err := cl.Get("kv", 9)
	if err != nil || !ok {
		t.Fatalf("get: %v %v", ok, err)
	}
	var v uint64
	for _, b := range data {
		v = v<<8 | uint64(b)
	}
	if v != clients*adds {
		t.Fatalf("counter = %d, want %d", v, clients*adds)
	}
}

func TestUnknownOpRejected(t *testing.T) {
	_, addr := startServer(t)
	cl, err := Dial(addr, 1)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	cl.CreateTable("kv")
	if _, err := cl.Txn(nil, []Op{{Kind: 99}}); err == nil {
		t.Fatal("unknown op accepted")
	}
}

func TestSessionReuseSameClientID(t *testing.T) {
	_, addr := startServer(t)
	a, _ := Dial(addr, 5)
	defer a.Close()
	b, _ := Dial(addr, 5) // same session id: same server-side session
	defer b.Close()
	a.CreateTable("kv")
	if err := a.Put("kv", 3, []byte("x")); err != nil {
		t.Fatal(err)
	}
	// Session freshness: connection b (same client id) must see a's write.
	data, ok, err := b.Get("kv", 3)
	if err != nil || !ok || string(data) != "x" {
		t.Fatalf("cross-connection session read: %q %v %v", data, ok, err)
	}
}

func TestStatsRPC(t *testing.T) {
	cluster, addr := startServer(t)
	cluster.CreateTable("kv")
	cl, err := Dial(addr, 1)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	if err := cl.Put("kv", 1, []byte("x")); err != nil {
		t.Fatal(err)
	}
	st, err := cl.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.Commits != 1 || st.WriteTxns != 1 {
		t.Fatalf("stats = %+v", st)
	}
	if len(st.SiteVectors) != 2 || len(st.PerSiteCommits) != 2 {
		t.Fatalf("stats shape = %+v", st)
	}
}

func TestCheckpointRPC(t *testing.T) {
	cluster, err := core.NewCluster(core.Config{
		Sites:       2,
		Partitioner: func(ref storage.RowRef) uint64 { return ref.Key / 100 },
		WALDir:      t.TempDir(),
	})
	if err != nil {
		t.Fatal(err)
	}
	srv, addr, err := Serve(cluster, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		srv.Close()
		cluster.Close()
	})
	cl, err := Dial(addr.String(), 1)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	if err := cl.CreateTable("kv"); err != nil {
		t.Fatal(err)
	}
	for k := uint64(0); k < 50; k++ {
		if err := cl.Put("kv", k, []byte{byte(k)}); err != nil {
			t.Fatal(err)
		}
	}
	cp, err := cl.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}
	if cp.Seq == 0 || len(cp.Rows) != 2 {
		t.Fatalf("checkpoint reply: %+v", cp)
	}
	if cp.Rows[0]+cp.Rows[1] == 0 {
		t.Fatal("checkpoint snapshotted zero rows")
	}
}

func TestCheckpointRPCWithoutWALDir(t *testing.T) {
	_, addr := startServer(t)
	cl, err := Dial(addr, 1)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	if _, err := cl.Checkpoint(); err == nil {
		t.Fatal("checkpoint without a durable directory must error")
	}
}
