package server

import (
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"dynamast/internal/core"
	"dynamast/internal/obs"
	"dynamast/internal/storage"
)

// TestMetricsEndToEnd drives a small cluster through remastering-forcing
// update transactions and checks the full observability surface: the
// /metrics Prometheus endpoint, the /debug/traces lifecycle traces (with
// route → remaster → commit → refresh-apply spans), and the metrics RPC that
// backs `dynactl metrics`.
func TestMetricsEndToEnd(t *testing.T) {
	cluster, err := core.NewCluster(core.Config{
		Sites: 2,
		// One key per partition, alternating initial masters: any two-key
		// write set {2k, 2k+1} spans both sites and must remaster.
		Partitioner:   func(ref storage.RowRef) uint64 { return ref.Key },
		InitialMaster: func(part uint64) int { return int(part % 2) },
	})
	if err != nil {
		t.Fatal(err)
	}
	srv, addr, err := Serve(cluster, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		srv.Close()
		cluster.Close()
	}()

	// The same handler dynamastd mounts behind -metrics-listen.
	web := httptest.NewServer(obs.Handler(cluster.Obs(), cluster.Tracer(), cluster.Spans()))
	defer web.Close()

	cl, err := Dial(addr.String(), 1)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	if err := cl.CreateTable("kv"); err != nil {
		t.Fatal(err)
	}

	// Updates whose write sets span both initial masters force remastering.
	const txns = 8
	for i := uint64(0); i < txns; i++ {
		k0, k1 := 2*i, 2*i+1
		ws := []storage.RowRef{{Table: "kv", Key: k0}, {Table: "kv", Key: k1}}
		ops := []Op{
			{Kind: OpPut, Table: "kv", Key: k0, Value: []byte("a")},
			{Kind: OpPut, Table: "kv", Key: k1, Value: []byte("b")},
		}
		if _, err := cl.Txn(ws, ops); err != nil {
			t.Fatal(err)
		}
	}
	if _, _, err := cl.Get("kv", 0); err != nil { // one read transaction
		t.Fatal(err)
	}

	get := func(path string) []byte {
		t.Helper()
		resp, err := http.Get(web.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return body
	}

	// /metrics: the families the acceptance criteria name, live with data.
	prom := string(get("/metrics"))
	for _, want := range []string{
		`dynamast_commits_total{site="0"}`,
		`dynamast_commits_total{site="1"}`,
		`dynamast_refreshes_total{site="0"}`,
		`dynamast_aborts_total{site="0"}`,
		"dynamast_remaster_total ",
		"dynamast_remaster_seconds_bucket",
		`dynamast_net_bytes_total{category=`,
		`dynamast_refresh_delay{`,
		`dynamast_txn_stage_seconds_bucket{stage="remaster"`,
		`dynamast_route_total{type="read"}`,
	} {
		if !strings.Contains(prom, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
	var remasters float64
	fmt.Sscanf(promValue(t, prom, "dynamast_remaster_total"), "%g", &remasters)
	if remasters == 0 {
		t.Fatal("no remaster transactions counted")
	}

	// /debug/traces: poll until a remastered trace carries non-zero spans
	// for every lifecycle stage (refresh-apply completes asynchronously).
	var goodTrace *obs.TraceJSON
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) && goodTrace == nil {
		var traces []obs.TraceJSON
		if err := json.Unmarshal(get("/debug/traces?n=64"), &traces); err != nil {
			t.Fatal(err)
		}
		for i, tr := range traces {
			if tr.Remastered && tr.TotalNS > 0 &&
				tr.Stages["route"] > 0 && tr.Stages["remaster"] > 0 &&
				tr.Stages["commit"] > 0 && tr.Stages["refresh_apply"] > 0 {
				goodTrace = &traces[i]
				break
			}
		}
		if goodTrace == nil {
			time.Sleep(5 * time.Millisecond)
		}
	}
	if goodTrace == nil {
		t.Fatal("no remastered trace with route/remaster/commit/refresh_apply spans appeared")
	}
	if goodTrace.PartsMoved == 0 {
		t.Errorf("remastered trace moved no partitions: %+v", goodTrace)
	}
	if goodTrace.Stages["execute"] <= 0 || goodTrace.Stages["wal_publish"] <= 0 {
		t.Errorf("execute/wal_publish spans missing: %+v", goodTrace.Stages)
	}

	// ?sort=slow must order by total latency.
	var slow []obs.TraceJSON
	if err := json.Unmarshal(get("/debug/traces?sort=slow&n=3"), &slow); err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(slow); i++ {
		if slow[i].TotalNS > slow[i-1].TotalNS {
			t.Fatalf("slow sort out of order: %d > %d", slow[i].TotalNS, slow[i-1].TotalNS)
		}
	}

	// The metrics RPC (dynactl's path) reports the same state.
	reply, err := cl.Metrics(10)
	if err != nil {
		t.Fatal(err)
	}
	if v, ok := reply.Snapshot.Value("dynamast_remaster_total"); !ok || v != remasters {
		t.Fatalf("RPC remaster_total = %g, %v; want %g", v, ok, remasters)
	}
	commits := 0.0
	for site := 0; site < 2; site++ {
		v, ok := reply.Snapshot.Value("dynamast_commits_total", obs.Site(site))
		if !ok {
			t.Fatalf("RPC missing commits_total{site=%d}", site)
		}
		commits += v
	}
	if commits != txns {
		t.Fatalf("RPC commits = %g, want %d", commits, txns)
	}
	if len(reply.Traces) == 0 {
		t.Fatal("RPC returned no traces")
	}
	if sm, ok := reply.Snapshot.Get("dynamast_txn_seconds", obs.L("type", "update")); !ok || sm.Count != txns || sm.P50 <= 0 {
		t.Fatalf("RPC txn_seconds{update} = %+v, %v", sm, ok)
	}
}

// promValue extracts the value of an unlabelled sample line from Prometheus
// exposition text.
func promValue(t *testing.T, body, name string) string {
	t.Helper()
	for _, line := range strings.Split(body, "\n") {
		if strings.HasPrefix(line, name+" ") {
			return strings.TrimPrefix(line, name+" ")
		}
	}
	t.Fatalf("%s not found in exposition", name)
	return ""
}

// TestMetricsListenFlagHandler checks the handler serves the right content
// type on a plain listener, as dynamastd mounts it.
func TestMetricsContentType(t *testing.T) {
	cluster, err := core.NewCluster(core.Config{
		Sites:       2,
		Partitioner: func(ref storage.RowRef) uint64 { return ref.Key / 100 },
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cluster.Close()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go http.Serve(ln, obs.Handler(cluster.Obs(), cluster.Tracer(), cluster.Spans()))
	resp, err := http.Get("http://" + ln.Addr().String() + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Fatalf("content type = %q", ct)
	}
	resp2, err := http.Get("http://" + ln.Addr().String() + "/debug/traces")
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	if ct := resp2.Header.Get("Content-Type"); ct != "application/json" {
		t.Fatalf("traces content type = %q", ct)
	}
}
