package server

import (
	"testing"
	"time"

	"dynamast/internal/core"
	"dynamast/internal/obs"
	"dynamast/internal/storage"
)

// TestDistributedTraceOverTCP drives a sampled update transaction through
// the real TCP transport and asserts the acceptance criterion for the
// tracing tentpole: one trace whose span tree stitches the route decision,
// the remaster's release (source site) and grant (destination site) legs,
// execution, commit, the WAL flush, and the replicas' asynchronous refresh
// application — with spans at two or more distinct data sites.
func TestDistributedTraceOverTCP(t *testing.T) {
	cluster, err := core.NewCluster(core.Config{
		Sites:       2,
		Partitioner: func(ref storage.RowRef) uint64 { return ref.Key / 100 },
		// Pin partition p to site p%2 so a write set spanning partitions 0
		// and 1 is guaranteed to need a mastership transfer.
		InitialMaster: func(p uint64) int { return int(p % 2) },
	})
	if err != nil {
		t.Fatal(err)
	}
	srv, addr, err := Serve(cluster, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		srv.Close()
		cluster.Close()
	})

	cl, err := Dial(addr.String(), 1)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	if err := cl.CreateTable("kv"); err != nil {
		t.Fatal(err)
	}
	// Warm both partitions at their pinned masters (single-partition writes
	// remaster nothing).
	if err := cl.Put("kv", 1, []byte("a")); err != nil {
		t.Fatal(err)
	}
	if err := cl.Put("kv", 150, []byte("b")); err != nil {
		t.Fatal(err)
	}

	// The sampled transaction: its write set spans both partitions, so the
	// selector must remaster one of them before routing.
	sc := obs.NewTraceContext()
	ws := []storage.RowRef{{Table: "kv", Key: 1}, {Table: "kv", Key: 150}}
	if _, err := cl.TxnTraced(sc, ws, []Op{
		{Kind: OpAdd, Table: "kv", Key: 1, Delta: 1},
		{Kind: OpAdd, Table: "kv", Key: 150, Delta: 1},
	}); err != nil {
		t.Fatal(err)
	}

	// The synchronous spans are recorded before the RPC returns; the
	// refresh-apply tail is asynchronous, so poll for it.
	want := map[string]bool{
		"txn": false, "route": false, "release": false, "grant": false,
		"execute": false, "commit": false, "wal_flush": false, "refresh_apply": false,
	}
	var spans []obs.Span
	deadline := time.Now().Add(5 * time.Second)
	for {
		spans = cluster.Spans().Spans(sc.Trace)
		for k := range want {
			want[k] = false
		}
		for _, sp := range spans {
			if _, ok := want[sp.Name]; ok {
				want[sp.Name] = true
			}
		}
		complete := true
		for _, seen := range want {
			complete = complete && seen
		}
		if complete || time.Now().After(deadline) {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	for name, seen := range want {
		if !seen {
			t.Errorf("trace missing a %q span; got %d spans: %+v", name, len(spans), spans)
		}
	}
	if t.Failed() {
		t.FailNow()
	}

	// One tree: exactly one root, and every parent edge resolves to a span
	// in the same trace.
	ids := make(map[uint64]bool, len(spans))
	roots := 0
	for _, sp := range spans {
		if sp.Trace != sc.Trace {
			t.Fatalf("span from another trace: %+v", sp)
		}
		ids[sp.ID] = true
		if sp.Parent == 0 {
			roots++
			if sp.Name != "txn" {
				t.Fatalf("root span is %q, want txn", sp.Name)
			}
			if sp.ID != sc.Span {
				t.Fatalf("root span id %x, want the caller's context span %x", sp.ID, sc.Span)
			}
		}
	}
	if roots != 1 {
		t.Fatalf("trace has %d roots, want 1", roots)
	}
	for _, sp := range spans {
		if sp.Parent != 0 && !ids[sp.Parent] {
			t.Fatalf("span %q parent %x not in trace", sp.Name, sp.Parent)
		}
	}

	// Cross-site: spans at two or more distinct data sites, and the release
	// and grant legs at different sites from each other.
	sites := make(map[int]bool)
	var releaseSite, grantSite = -1, -1
	for _, sp := range spans {
		if sp.Site >= 0 {
			sites[sp.Site] = true
		}
		switch sp.Name {
		case "release":
			releaseSite = sp.Site
		case "grant":
			grantSite = sp.Site
		}
	}
	if len(sites) < 2 {
		t.Fatalf("trace touched %d distinct sites, want >= 2: %+v", len(sites), spans)
	}
	if releaseSite == grantSite {
		t.Fatalf("release and grant both at site %d: the remaster legs must cross sites", releaseSite)
	}

	// The refresh-apply span hangs off the commit span at the replica.
	var commitID uint64
	for _, sp := range spans {
		if sp.Name == "commit" {
			commitID = sp.ID
		}
	}
	for _, sp := range spans {
		if sp.Name == "refresh_apply" && sp.Parent != commitID {
			t.Fatalf("refresh_apply parent %x, want commit span %x", sp.Parent, commitID)
		}
		if sp.Name == "wal_flush" && sp.Parent != commitID {
			t.Fatalf("wal_flush parent %x, want commit span %x", sp.Parent, commitID)
		}
	}
}

// TestUntracedTxnRecordsNoSpans pins the unsampled fast path: with no
// sampler configured and no caller-supplied context, transactions leave the
// span recorder empty.
func TestUntracedTxnRecordsNoSpans(t *testing.T) {
	cluster, addr := startServer(t)
	cl, err := Dial(addr, 1)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	if err := cl.CreateTable("kv"); err != nil {
		t.Fatal(err)
	}
	if err := cl.Put("kv", 3, []byte("x")); err != nil {
		t.Fatal(err)
	}
	if traces, spans, _ := cluster.Spans().Counts(); traces != 0 || spans != 0 {
		t.Fatalf("untraced workload recorded (%d traces, %d spans), want none", traces, spans)
	}
}
