package server

import (
	"sort"
	"time"

	"dynamast/internal/codec"
)

// Binary wire schemas (format v1) for the server's RPC bodies. Every
// client-facing request/response implements codec.Message, so the transport
// layer uses the zero-allocation binary path instead of the gob fallback.
// The one deliberate exception is the metrics RPC: MetricsReply embeds the
// full observability snapshot (nested maps of label sets), is operator-path
// rather than transaction-path, and stays on gob.
//
// All Unmarshal methods obey the codec ownership rule — every decoded
// []byte/string is freshly allocated — and assign every field, so a reused
// destination struct cannot leak stale state between calls.

var (
	_ codec.Message = (*createTableReq)(nil)
	_ codec.Message = (*createTableResp)(nil)
	_ codec.Message = (*TxnRequest)(nil)
	_ codec.Message = (*TxnResponse)(nil)
	_ codec.Message = (*StatsRequest)(nil)
	_ codec.Message = (*StatsReply)(nil)
	_ codec.Message = (*FaultsRequest)(nil)
	_ codec.Message = (*FaultsReply)(nil)
	_ codec.Message = (*CheckpointRequest)(nil)
	_ codec.Message = (*CheckpointReply)(nil)
)

// MarshalTo implements codec.Message.
func (m *createTableReq) MarshalTo(buf []byte) []byte {
	buf = codec.AppendHeader(buf, codec.Version1)
	return codec.AppendString(buf, m.Name)
}

// Unmarshal implements codec.Message.
func (m *createTableReq) Unmarshal(data []byte) error {
	r := codec.NewReader(data)
	m.Name = r.String()
	return r.Done()
}

// MarshalTo implements codec.Message.
func (m *createTableResp) MarshalTo(buf []byte) []byte {
	return codec.AppendHeader(buf, codec.Version1)
}

// Unmarshal implements codec.Message.
func (m *createTableResp) Unmarshal(data []byte) error {
	return codec.NewReader(data).Done()
}

// appendOp appends one operation's fields.
func appendOp(buf []byte, op *Op) []byte {
	buf = codec.AppendUvarint(buf, uint64(op.Kind))
	buf = codec.AppendString(buf, op.Table)
	buf = codec.AppendUvarint(buf, op.Key)
	buf = codec.AppendUvarint(buf, op.Lo)
	buf = codec.AppendUvarint(buf, op.Hi)
	buf = codec.AppendBytes(buf, op.Value)
	return codec.AppendInt(buf, op.Delta)
}

// decodeOp decodes one operation's fields.
func decodeOp(r *codec.Reader, op *Op) {
	op.Kind = OpKind(r.Uvarint())
	op.Table = r.String()
	op.Key = r.Uvarint()
	op.Lo = r.Uvarint()
	op.Hi = r.Uvarint()
	op.Value = r.Bytes()
	op.Delta = r.Int()
}

// MarshalTo implements codec.Message.
func (m *TxnRequest) MarshalTo(buf []byte) []byte {
	buf = codec.AppendHeader(buf, codec.Version1)
	buf = codec.AppendInt(buf, int64(m.Client))
	buf = codec.AppendRefs(buf, m.WriteSet)
	buf = codec.AppendUvarint(buf, uint64(len(m.Ops)))
	for i := range m.Ops {
		buf = appendOp(buf, &m.Ops[i])
	}
	return buf
}

// Unmarshal implements codec.Message.
func (m *TxnRequest) Unmarshal(data []byte) error {
	r := codec.NewReader(data)
	m.Client = int(r.Int())
	m.WriteSet = r.Refs()
	m.Ops = nil
	if n := r.Uvarint(); n > 0 && r.Err() == nil {
		m.Ops = make([]Op, n)
		for i := range m.Ops {
			decodeOp(r, &m.Ops[i])
			if r.Err() != nil {
				m.Ops = nil
				break
			}
		}
	}
	return r.Done()
}

// MarshalTo implements codec.Message.
func (m *TxnResponse) MarshalTo(buf []byte) []byte {
	buf = codec.AppendHeader(buf, codec.Version1)
	buf = codec.AppendUvarint(buf, uint64(len(m.Results)))
	for i := range m.Results {
		res := &m.Results[i]
		buf = codec.AppendBool(buf, res.Found)
		buf = codec.AppendBytes(buf, res.Value)
		buf = codec.AppendKVs(buf, res.Rows)
	}
	return buf
}

// Unmarshal implements codec.Message.
func (m *TxnResponse) Unmarshal(data []byte) error {
	r := codec.NewReader(data)
	m.Results = nil
	if n := r.Uvarint(); n > 0 && r.Err() == nil {
		m.Results = make([]OpResult, n)
		for i := range m.Results {
			m.Results[i].Found = r.Bool()
			m.Results[i].Value = r.Bytes()
			m.Results[i].Rows = r.KVs()
			if r.Err() != nil {
				m.Results = nil
				break
			}
		}
	}
	return r.Done()
}

// MarshalTo implements codec.Message.
func (m *StatsRequest) MarshalTo(buf []byte) []byte {
	return codec.AppendHeader(buf, codec.Version1)
}

// Unmarshal implements codec.Message.
func (m *StatsRequest) Unmarshal(data []byte) error {
	return codec.NewReader(data).Done()
}

// MarshalTo implements codec.Message.
func (m *StatsReply) MarshalTo(buf []byte) []byte {
	buf = codec.AppendHeader(buf, codec.Version1)
	buf = codec.AppendUvarint(buf, m.Commits)
	buf = codec.AppendUint64s(buf, m.PerSiteCommits)
	buf = codec.AppendUvarint(buf, m.WriteTxns)
	buf = codec.AppendUvarint(buf, m.ReadTxns)
	buf = codec.AppendUvarint(buf, m.RemasterTxns)
	buf = codec.AppendUvarint(buf, m.PartsMoved)
	buf = codec.AppendUint64s(buf, m.RoutedPerSite)
	buf = codec.AppendUvarint(buf, uint64(len(m.SiteVectors)))
	for _, v := range m.SiteVectors {
		buf = codec.AppendUint64s(buf, v)
	}
	return buf
}

// Unmarshal implements codec.Message.
func (m *StatsReply) Unmarshal(data []byte) error {
	r := codec.NewReader(data)
	m.Commits = r.Uvarint()
	m.PerSiteCommits = r.Uint64s()
	m.WriteTxns = r.Uvarint()
	m.ReadTxns = r.Uvarint()
	m.RemasterTxns = r.Uvarint()
	m.PartsMoved = r.Uvarint()
	m.RoutedPerSite = r.Uint64s()
	m.SiteVectors = nil
	if n := r.Uvarint(); n > 0 && r.Err() == nil {
		m.SiteVectors = make([][]uint64, n)
		for i := range m.SiteVectors {
			m.SiteVectors[i] = r.Uint64s()
			if r.Err() != nil {
				m.SiteVectors = nil
				break
			}
		}
	}
	return r.Done()
}

// MarshalTo implements codec.Message.
func (m *FaultsRequest) MarshalTo(buf []byte) []byte {
	buf = codec.AppendHeader(buf, codec.Version1)
	return codec.AppendString(buf, m.Spec)
}

// Unmarshal implements codec.Message.
func (m *FaultsRequest) Unmarshal(data []byte) error {
	r := codec.NewReader(data)
	m.Spec = r.String()
	return r.Done()
}

// MarshalTo implements codec.Message. The Injected map is emitted in sorted
// key order so equal replies encode to equal bytes.
func (m *FaultsReply) MarshalTo(buf []byte) []byte {
	buf = codec.AppendHeader(buf, codec.Version1)
	buf = codec.AppendBool(buf, m.Enabled)
	buf = codec.AppendInt(buf, m.Seed)
	buf = codec.AppendUvarint(buf, uint64(len(m.Rules)))
	for i := range m.Rules {
		rule := &m.Rules[i]
		buf = codec.AppendString(buf, rule.Category)
		buf = codec.AppendString(buf, rule.Kind)
		buf = codec.AppendFloat(buf, rule.Prob)
		buf = codec.AppendInt(buf, int64(rule.Delay))
	}
	buf = codec.AppendUvarint(buf, uint64(len(m.Injected)))
	keys := make([]string, 0, len(m.Injected))
	for k := range m.Injected {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		buf = codec.AppendString(buf, k)
		buf = codec.AppendUvarint(buf, m.Injected[k])
	}
	buf = codec.AppendUvarint(buf, m.RPCRetries)
	return codec.AppendUvarint(buf, m.Failovers)
}

// Unmarshal implements codec.Message.
func (m *FaultsReply) Unmarshal(data []byte) error {
	r := codec.NewReader(data)
	m.Enabled = r.Bool()
	m.Seed = r.Int()
	m.Rules = nil
	if n := r.Uvarint(); n > 0 && r.Err() == nil {
		m.Rules = make([]FaultRuleInfo, n)
		for i := range m.Rules {
			m.Rules[i].Category = r.String()
			m.Rules[i].Kind = r.String()
			m.Rules[i].Prob = r.Float()
			m.Rules[i].Delay = time.Duration(r.Int())
			if r.Err() != nil {
				m.Rules = nil
				break
			}
		}
	}
	m.Injected = nil
	if n := r.Uvarint(); r.Err() == nil {
		m.Injected = make(map[string]uint64, n)
		for i := uint64(0); i < n; i++ {
			k := r.String()
			v := r.Uvarint()
			if r.Err() != nil {
				m.Injected = nil
				break
			}
			m.Injected[k] = v
		}
	}
	m.RPCRetries = r.Uvarint()
	m.Failovers = r.Uvarint()
	return r.Done()
}

// MarshalTo implements codec.Message.
func (m *CheckpointRequest) MarshalTo(buf []byte) []byte {
	return codec.AppendHeader(buf, codec.Version1)
}

// Unmarshal implements codec.Message.
func (m *CheckpointRequest) Unmarshal(data []byte) error {
	return codec.NewReader(data).Done()
}

// MarshalTo implements codec.Message.
func (m *CheckpointReply) MarshalTo(buf []byte) []byte {
	buf = codec.AppendHeader(buf, codec.Version1)
	buf = codec.AppendUvarint(buf, m.Seq)
	buf = codec.AppendUint64s(buf, m.Rows)
	buf = codec.AppendUint64s(buf, m.Bytes)
	return codec.AppendUint64s(buf, m.LowWater)
}

// Unmarshal implements codec.Message.
func (m *CheckpointReply) Unmarshal(data []byte) error {
	r := codec.NewReader(data)
	m.Seq = r.Uvarint()
	m.Rows = r.Uint64s()
	m.Bytes = r.Uint64s()
	m.LowWater = r.Uint64s()
	return r.Done()
}
