package server

import (
	"reflect"
	"testing"
	"time"

	"dynamast/internal/codec"
	"dynamast/internal/storage"
)

// roundTrip marshals src and unmarshals into dst (same concrete type),
// checking the payload is binary-format and decodes cleanly.
func roundTrip(t *testing.T, src, dst codec.Message) {
	t.Helper()
	payload := src.MarshalTo(nil)
	if !codec.IsBinary(payload) {
		t.Fatalf("%T payload is not binary-format", src)
	}
	if err := dst.Unmarshal(payload); err != nil {
		t.Fatalf("%T unmarshal: %v", src, err)
	}
	if !reflect.DeepEqual(src, dst) {
		t.Fatalf("%T round trip mismatch:\n got %+v\nwant %+v", src, dst, src)
	}
}

func TestWireRoundTrip(t *testing.T) {
	roundTrip(t, &createTableReq{Name: "accounts"}, &createTableReq{})
	roundTrip(t, &createTableResp{}, &createTableResp{})
	roundTrip(t, &TxnRequest{
		Client:   42,
		WriteSet: []storage.RowRef{{Table: "accounts", Key: 1}, {Table: "orders", Key: 9}},
		Ops: []Op{
			{Kind: OpGet, Table: "accounts", Key: 1},
			{Kind: OpPut, Table: "accounts", Key: 1, Value: []byte("v")},
			{Kind: OpAdd, Table: "counters", Key: 7, Delta: -3},
			{Kind: OpScan, Table: "orders", Lo: 5, Hi: 50},
		},
	}, &TxnRequest{})
	roundTrip(t, &TxnRequest{Client: 0}, &TxnRequest{})
	roundTrip(t, &TxnResponse{Results: []OpResult{
		{Found: true, Value: []byte{0, 1, 2}},
		{Found: false},
		{Found: true, Rows: []storage.KV{{Key: 1, Value: []byte("a")}, {Key: 2, Value: nil}}},
	}}, &TxnResponse{})
	roundTrip(t, &StatsRequest{}, &StatsRequest{})
	roundTrip(t, &StatsReply{
		Commits:        100,
		PerSiteCommits: []uint64{40, 60},
		WriteTxns:      70,
		ReadTxns:       30,
		RemasterTxns:   5,
		PartsMoved:     12,
		RoutedPerSite:  []uint64{55, 45},
		SiteVectors:    [][]uint64{{1, 2}, {3, 4}},
	}, &StatsReply{})
	roundTrip(t, &FaultsRequest{Spec: "rpc:drop:0.1:5ms"}, &FaultsRequest{})
	roundTrip(t, &FaultsReply{
		Enabled: true,
		Seed:    -42,
		Rules: []FaultRuleInfo{
			{Category: "rpc", Kind: "drop", Prob: 0.25, Delay: 5 * time.Millisecond},
			{Category: "disk", Kind: "error", Prob: 0.001},
		},
		Injected:   map[string]uint64{"rpc/drop": 17, "disk/error": 2},
		RPCRetries: 9,
		Failovers:  1,
	}, &FaultsReply{})
	roundTrip(t, &CheckpointRequest{}, &CheckpointRequest{})
	roundTrip(t, &CheckpointReply{
		Seq:      3,
		Rows:     []uint64{10, 20},
		Bytes:    []uint64{1000, 2000},
		LowWater: []uint64{5, 6},
	}, &CheckpointReply{})
}

// TestWireUnmarshalResetsDest checks that decoding into a dirty struct
// leaves no stale fields behind (the transport may reuse destinations).
func TestWireUnmarshalResetsDest(t *testing.T) {
	dirty := &TxnRequest{
		Client:   99,
		WriteSet: []storage.RowRef{{Table: "stale", Key: 1}},
		Ops:      []Op{{Kind: OpPut, Table: "stale", Value: []byte("old")}},
	}
	payload := (&TxnRequest{Client: 1}).MarshalTo(nil)
	if err := dirty.Unmarshal(payload); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(dirty, &TxnRequest{Client: 1}) {
		t.Fatalf("stale state survived unmarshal: %+v", dirty)
	}
}

// TestWireGarbageRejected checks that corrupt payloads error instead of
// panicking, for every message type.
func TestWireGarbageRejected(t *testing.T) {
	msgs := []codec.Message{
		&createTableReq{}, &createTableResp{}, &TxnRequest{}, &TxnResponse{},
		&StatsRequest{}, &StatsReply{}, &FaultsRequest{}, &FaultsReply{},
		&CheckpointRequest{}, &CheckpointReply{},
	}
	inputs := [][]byte{
		nil,
		{codec.Magic},
		{codec.Magic, codec.Version1, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff},
		{codec.Magic, 0x7f},
		{0x42, 0x42, 0x42},
	}
	for _, m := range msgs {
		for _, in := range inputs {
			if err := m.Unmarshal(in); err == nil && len(in) > codec.HeaderSize {
				t.Fatalf("%T accepted garbage %v", m, in)
			}
		}
	}
}
