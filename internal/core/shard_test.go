package core

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"time"

	"dynamast/internal/selector"
	"dynamast/internal/storage"
	"dynamast/internal/systems"
	"dynamast/internal/transport"
)

// Sharded selector control plane: end-to-end coverage of WithSelectorShards.
// The cluster splits routing, statistics, placement and (under HA) leases
// across N independent router shards, and sessions route off a gossiped
// placement cache with zero selector RPCs in steady state.

func newShardedCluster(t *testing.T, sites, shards int, mutate func(*Config)) *Cluster {
	t.Helper()
	cfg := Config{
		Sites:          sites,
		Partitioner:    partitionBy100,
		Weights:        selector.YCSBWeights(),
		SelectorShards: shards,
	}
	if mutate != nil {
		mutate(&cfg)
	}
	c, err := NewCluster(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)
	c.CreateTable("kv")
	rows := make([]systems.LoadRow, 0, 1000)
	for k := uint64(0); k < 1000; k++ {
		rows = append(rows, systems.LoadRow{Ref: ref(k), Data: []byte{byte(k)}})
	}
	c.Load(rows)
	return c
}

// routeMessages returns the CatRoute message count: the session <-> selector
// begin_transaction traffic the placement cache is meant to eliminate.
func routeMessages(c *Cluster) uint64 {
	for _, st := range c.Network().Stats() {
		if st.Category == transport.CatRoute {
			return st.Messages
		}
	}
	return 0
}

func TestSelectorShardsValidation(t *testing.T) {
	if _, err := NewWithOptions(WithSites(2), WithPartitioner(partitionBy100),
		WithSelectorShards(selector.MaxRouterShards+1)); err == nil {
		t.Fatal("oversized shard count accepted")
	}
	c, err := NewWithOptions(WithSites(2), WithPartitioner(partitionBy100))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)
	if got := c.SelectorShardCount(); got != 1 {
		t.Fatalf("default shard count = %d, want 1", got)
	}
	if c.Group().Cache() != nil {
		t.Fatal("single-shard cluster built a placement cache")
	}
}

func TestShardedClusterEndToEnd(t *testing.T) {
	c := newShardedCluster(t, 3, 4, nil)
	if got := c.SelectorShardCount(); got != 4 {
		t.Fatalf("shard count = %d, want 4", got)
	}
	if c.Group().Cache() == nil {
		t.Fatal("sharded cluster did not enable the placement cache")
	}

	// Writes across every shard's partition range, including cross-shard
	// sets (partitions 0..9 spread over 4 shards).
	sess := c.Session(1)
	for p := uint64(0); p < 10; p++ {
		key := ref(p * 100)
		if err := sess.Update([]storage.RowRef{key}, func(tx systems.Tx) error {
			return tx.Write(key, []byte{byte(p)})
		}); err != nil {
			t.Fatalf("write to partition %d: %v", p, err)
		}
	}
	// A cross-shard write set: co-locate two partitions owned by different
	// router shards.
	g := c.Group()
	var pa, pb uint64
	found := false
	for a := uint64(0); a < 10 && !found; a++ {
		for b := a + 1; b < 10; b++ {
			if g.ShardOf(a) != g.ShardOf(b) {
				pa, pb, found = a, b, true
				break
			}
		}
	}
	if !found {
		t.Fatal("no cross-shard partition pair in 0..9")
	}
	a, b := ref(pa*100+1), ref(pb*100+1)
	if err := sess.Update([]storage.RowRef{a, b}, func(tx systems.Tx) error {
		if err := tx.Write(a, []byte{1}); err != nil {
			return err
		}
		return tx.Write(b, []byte{1})
	}); err != nil {
		t.Fatalf("cross-shard update: %v", err)
	}
	if got := g.MasterOf(pa); got != g.MasterOf(pb) {
		t.Fatalf("cross-shard write did not co-locate: %d vs %d", got, g.MasterOf(pb))
	}

	// Every partition has exactly one owning site, agreed by sites and the
	// owning router shard; no shard tracks a foreign partition.
	for p := uint64(0); p < 10; p++ {
		owners, ownerSite := 0, -1
		for i, s := range c.Sites() {
			if s.Masters(p) {
				owners++
				ownerSite = i
			}
		}
		if owners != 1 {
			t.Fatalf("partition %d has %d owning sites", p, owners)
		}
		if got := g.MasterOf(p); got != ownerSite {
			t.Fatalf("partition %d: group says %d, sites say %d", p, got, ownerSite)
		}
	}
	for si := 0; si < g.Shards(); si++ {
		for site := range c.Sites() {
			for _, p := range g.Shard(si).MasteredBy(site) {
				if g.ShardOf(p) != si {
					t.Fatalf("shard %d tracks foreign partition %d", si, p)
				}
			}
		}
	}

	// Reads see every committed write.
	if err := sess.Read(func(tx systems.Tx) error {
		for p := uint64(0); p < 10; p++ {
			v, _ := tx.Read(ref(p * 100))
			if len(v) != 1 || v[0] != byte(p) {
				return fmt.Errorf("partition %d read %v, want [%d]", p, v, p)
			}
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
}

// TestCachedRoutingZeroRouterRPCs counter-verifies the tentpole's steady
// state: once the gossiped cache holds the placement, session reads — and
// single-partition writes — route with zero CatRoute messages.
func TestCachedRoutingZeroRouterRPCs(t *testing.T) {
	c := newShardedCluster(t, 3, 4, nil)
	cache := c.Group().Cache()

	// Warm: loading registered partitions 0..9; wait for a gossip pull to
	// copy them into the cache.
	deadline := time.Now().Add(5 * time.Second)
	for cache.Size() < 10 {
		if time.Now().After(deadline) {
			t.Fatalf("cache never warmed: %d entries", cache.Size())
		}
		time.Sleep(time.Millisecond)
	}

	sess := c.Session(2)
	// One write to set the session's cvv, outside the measured window.
	if err := sess.Update([]storage.RowRef{ref(5)}, func(tx systems.Tx) error {
		return tx.Write(ref(5), []byte{1})
	}); err != nil {
		t.Fatal(err)
	}
	if err := c.WaitQuiesced(10 * time.Second); err != nil {
		t.Fatal(err)
	}

	// Steady-state reads: zero router RPCs, every one served by the cache.
	readsBefore, msgsBefore := cache.ReadRoutes(), routeMessages(c)
	for i := 0; i < 50; i++ {
		if err := sess.Read(func(tx systems.Tx) error {
			_, _ = tx.Read(ref(uint64(i) % 1000))
			return nil
		}); err != nil {
			t.Fatal(err)
		}
	}
	if d := routeMessages(c) - msgsBefore; d != 0 {
		t.Fatalf("%d CatRoute messages during cached reads, want 0", d)
	}
	if d := cache.ReadRoutes() - readsBefore; d < 50 {
		t.Fatalf("cache served %d of 50 reads", d)
	}

	// Steady-state single-partition writes: also zero router RPCs.
	writesBefore, msgsBefore := cache.WriteRoutes(), routeMessages(c)
	for i := 0; i < 10; i++ {
		if err := sess.Update([]storage.RowRef{ref(7)}, func(tx systems.Tx) error {
			return tx.Write(ref(7), []byte{byte(i)})
		}); err != nil {
			t.Fatal(err)
		}
	}
	if d := routeMessages(c) - msgsBefore; d != 0 {
		t.Fatalf("%d CatRoute messages during cached writes, want 0", d)
	}
	if d := cache.WriteRoutes() - writesBefore; d != 10 {
		t.Fatalf("cache served %d of 10 writes", d)
	}
}

// TestStaleCacheWriteRecovers drives the optimistic-write fallback: the
// cache's owner entry goes stale (an epoch-0 seed behind a higher cached
// epoch — the monotonic ingest rightly refuses the rollback), the routed
// write bounces off the former master with ErrNotMaster, and the session's
// resubmit routes authoritatively and commits exactly once.
func TestStaleCacheWriteRecovers(t *testing.T) {
	c := newShardedCluster(t, 2, 4, nil)
	g, cache := c.Group(), c.Group().Cache()
	sess := c.Session(3)

	// Remaster partition 0 under an allocated (nonzero) epoch so its cache
	// entry carries that epoch: the shard's delta feed publishes the move.
	cur := g.MasterOf(0)
	dest := 1 - cur
	epoch, err := g.AllocEpochFor(0)
	if err != nil {
		t.Fatal(err)
	}
	rel, err := c.Sites()[cur].Release([]uint64{0}, dest, epoch)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Sites()[dest].Grant([]uint64{0}, rel, cur, epoch); err != nil {
		t.Fatal(err)
	}
	g.RegisterPartitionEpoch(0, dest, epoch)

	// Wait until the delta feed (or gossip) has cached partition 0 at dest.
	deadline := time.Now().Add(5 * time.Second)
	for {
		if r, ok := probeCachedWrite(c, 3, ref(2)); ok && r.Site == dest {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("cache never learned the remastered placement")
		}
		time.Sleep(time.Millisecond)
	}

	// Move partition 0 back behind the cache's back: a site-level transfer
	// plus an epoch-0 selector seed. The selector map follows (seeds are
	// authoritative); the cache's monotonic ingest refuses the epoch
	// rollback and keeps routing at dest — stale.
	other := 1 - dest
	rel, err = c.Sites()[dest].Release([]uint64{0}, other, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Sites()[other].Grant([]uint64{0}, rel, dest, 0); err != nil {
		t.Fatal(err)
	}
	g.RegisterPartitionEpoch(0, other, 0)
	if got := g.MasterOf(0); got != other {
		t.Fatalf("selector did not follow the seed: master %d, want %d", got, other)
	}

	before := c.Stats().Commits
	staleBefore := cache.StaleWrites()
	if err := sess.Update([]storage.RowRef{ref(2)}, func(tx systems.Tx) error {
		v, _ := tx.Read(ref(2))
		var n byte
		if len(v) > 0 {
			n = v[0]
		}
		return tx.Write(ref(2), []byte{n + 1})
	}); err != nil {
		t.Fatalf("stale-cache write did not recover: %v", err)
	}
	if got := c.Stats().Commits; got != before+1 {
		t.Fatalf("commits went %d -> %d, want exactly one more", before, got)
	}
	if cache.StaleWrites() == staleBefore {
		t.Fatal("recovery did not go through the stale-cache resubmit path")
	}
	if err := sess.Read(func(tx systems.Tx) error {
		v, _ := tx.Read(ref(2))
		if len(v) != 1 || v[0] != 3 {
			return fmt.Errorf("value = %v, want [3] (loaded 2 + one increment)", v)
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
}

// probeCachedWrite asks the session's router what the cache would answer for
// a write, without committing anything.
func probeCachedWrite(c *Cluster, client int, key storage.RowRef) (selector.Route, bool) {
	cr, ok := c.Group().RouterFor(client).(*selector.CachedRouter)
	if !ok {
		return selector.Route{}, false
	}
	return cr.RouteWriteCached(client, []storage.RowRef{key}, nil)
}

// TestChaosShardLeaderKill is the sharded control plane's chaos run: the
// same seed-42 fault mix, 4 router shards each holding its own lease, and
// the crash victim is ONE shard's leaseholder. The other three shards must
// keep routing while the victim shard promotes (no global stall), the
// promotion must fence only the victim's partition range, commits must stay
// exactly-once, and no partition may end dual-owned across shards or sites.
func TestChaosShardLeaderKill(t *testing.T) {
	const shardLease = 150 * time.Millisecond
	c, inj, _ := newChaosCluster(t, func(cfg *Config) {
		cfg.SelectorShards = 4
		cfg.SelectorLease = shardLease
	})
	g := c.Group()
	for i := 0; i < 4; i++ {
		if c.SelectorShardHA(i) == nil {
			t.Fatalf("shard %d has no HA under SelectorLease", i)
		}
	}

	const (
		pairs   = 16 // one pair per partition, spread over all 4 shards
		workers = 6
		iters   = 30
	)
	pairRefs := func(p uint64) (storage.RowRef, storage.RowRef) {
		return ref(p * 100), ref(p*100 + 50)
	}
	shardOfPair := func(p uint64) int { return g.ShardOf(p) }

	victimShard := shardOfPair(0)
	otherPair := uint64(0)
	for p := uint64(0); p < pairs; p++ {
		if shardOfPair(p) != victimShard {
			otherPair = p
			break
		}
	}
	if shardOfPair(otherPair) == victimShard {
		t.Fatal("all pair partitions hash to one shard — widen the pair range")
	}

	setup := c.Session(500)
	for p := uint64(0); p < pairs; p++ {
		a, b := pairRefs(p)
		if err := setup.Update([]storage.RowRef{a, b}, func(tx systems.Tx) error {
			if err := tx.Write(a, []byte{1}); err != nil {
				return err
			}
			return tx.Write(b, []byte{1})
		}); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.WaitQuiesced(10 * time.Second); err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	stop := make(chan struct{})
	var stopOnce sync.Once
	stopAll := func() { stopOnce.Do(func() { close(stop) }) }
	violations := make(chan string, 64)

	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			sess := c.Session(w)
			for i := 0; i < iters; i++ {
				p := uint64(rng.Intn(pairs))
				a, b := pairRefs(p)
				err := sess.Update([]storage.RowRef{a, b}, func(tx systems.Tx) error {
					av, _ := tx.Read(a)
					var n byte
					if len(av) > 0 {
						n = av[0]
					}
					if err := tx.Write(a, []byte{n + 1}); err != nil {
						return err
					}
					return tx.Write(b, []byte{n + 1})
				})
				if err != nil {
					violations <- fmt.Sprintf("writer %d: %v", w, err)
					return
				}
			}
		}(w)
	}
	for r := 0; r < 2; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(100 + r)))
			sess := c.Session(100 + r)
			for {
				select {
				case <-stop:
					return
				default:
				}
				p := uint64(rng.Intn(pairs))
				a, b := pairRefs(p)
				err := sess.Read(func(tx systems.Tx) error {
					av, _ := tx.Read(a)
					bv, _ := tx.Read(b)
					var an, bn byte
					if len(av) > 0 {
						an = av[0]
					}
					if len(bv) > 0 {
						bn = bv[0]
					}
					if an != bn {
						return fmt.Errorf("pair %d torn: %d != %d", p, an, bn)
					}
					return nil
				})
				if err != nil {
					violations <- fmt.Sprintf("reader %d: %v", r, err)
					return
				}
			}
		}(r)
	}

	// Kill the victim shard's leaseholder once a third of the workload is in.
	killTarget := uint64(pairs + workers*iters/3)
	killDeadline := time.Now().Add(30 * time.Second)
	for c.Stats().Commits < killTarget {
		if time.Now().After(killDeadline) {
			stopAll()
			t.Fatal("workload never reached the kill threshold")
		}
		time.Sleep(time.Millisecond)
	}
	oldLeader := g.Shard(victimShard)
	ha := c.SelectorShardHA(victimShard)
	killedAt := time.Now()
	commitsAtKill := c.Stats().Commits
	if killed := c.KillSelectorShard(victimShard); killed != 0 {
		stopAll()
		t.Fatalf("killed shard %d node %d, want initial leader 0", victimShard, killed)
	}

	// The victim shard's standby must promote within the lease-bounded
	// window.
	for ha.Promotions() == 0 {
		if time.Since(killedAt) > 10*time.Second {
			stopAll()
			t.Fatal("victim shard never promoted after the leader kill")
		}
		time.Sleep(time.Millisecond)
	}
	promotionWindow := time.Since(killedAt)
	commitsDuringPromotion := c.Stats().Commits - commitsAtKill
	t.Logf("shard %d failover window: %v (lease %v), %d commits flowed during it",
		victimShard, promotionWindow, shardLease, commitsDuringPromotion)
	if bound := 2*shardLease + 500*time.Millisecond; promotionWindow > bound {
		stopAll()
		t.Fatalf("promotion took %v, want < %v (~2x lease)", promotionWindow, bound)
	}

	// No global stall: the other shards kept committing through the victim's
	// leaderless window (the workload is still mid-flight at the kill
	// threshold, and three of four shards never lost their router).
	writersStillRunning := c.Stats().Commits < uint64(pairs+workers*iters)
	if commitsDuringPromotion == 0 && writersStillRunning {
		stopAll()
		t.Fatal("no commits during the victim shard's promotion — the whole control plane stalled")
	}

	// Only the victim shard changed leadership; a shard kill is not a global
	// event.
	for i := 0; i < 4; i++ {
		if i == victimShard {
			continue
		}
		if got := c.SelectorShardHA(i).Promotions(); got != 0 {
			stopAll()
			t.Fatalf("shard %d promoted %d times after shard %d's kill", i, got, victimShard)
		}
	}

	// The deposed leader is fenced for its own range.
	if !oldLeader.Deposed() {
		stopAll()
		t.Fatal("killed shard leader not deposed")
	}
	a0, _ := pairRefs(0)
	if _, err := oldLeader.RouteWrite(999, []storage.RowRef{a0}, nil); !errors.Is(err, selector.ErrNoLeader) {
		stopAll()
		t.Fatalf("deposed shard leader routed a write: %v", err)
	}
	if g.Shard(victimShard) == oldLeader {
		stopAll()
		t.Fatal("group still exposes the deposed selector as the shard leader")
	}

	// All writers finish despite the shard crash.
	done := make(chan struct{})
	go func() {
		wg.Wait()
		close(done)
	}()
	writersDone := make(chan struct{})
	go func() {
		for c.Stats().Commits < pairs+workers*iters {
			select {
			case <-done:
				close(writersDone)
				return
			case <-time.After(5 * time.Millisecond):
			}
		}
		stopAll()
		<-done
		close(writersDone)
	}()
	select {
	case v := <-violations:
		stopAll()
		t.Fatalf("consistency violation: %s", v)
	case <-writersDone:
	case <-time.After(60 * time.Second):
		t.Fatal("workload hung after the shard leader kill")
	}
	select {
	case v := <-violations:
		t.Fatalf("consistency violation: %s", v)
	default:
	}

	// The promoted shard leader runs full remaster chains over its range,
	// and the untouched shards still route cross-shard sets with it.
	post := c.Session(901)
	aV, _ := pairRefs(0)         // victim shard's range
	aO, _ := pairRefs(otherPair) // another shard's range
	for i := 0; i < 8; i++ {
		if err := post.Update([]storage.RowRef{aV, aO}, func(tx systems.Tx) error {
			av, _ := tx.Read(aV)
			if err := tx.Write(aV, av); err != nil {
				return err
			}
			ov, _ := tx.Read(aO)
			return tx.Write(aO, ov)
		}); err != nil {
			t.Fatalf("post-promotion cross-shard update %d: %v", i, err)
		}
	}

	// Exactly-once across the shard leadership change.
	if err := c.WaitQuiesced(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	wantCommits := uint64(pairs + workers*iters + 8)
	if commits := c.Stats().Commits; commits != wantCommits {
		t.Fatalf("commits = %d, want %d", commits, wantCommits)
	}
	audit := c.Session(999)
	for p := uint64(0); p < pairs; p++ {
		a, b := pairRefs(p)
		if err := audit.Read(func(tx systems.Tx) error {
			av, _ := tx.Read(a)
			bv, _ := tx.Read(b)
			var an, bn byte
			if len(av) > 0 {
				an = av[0]
			}
			if len(bv) > 0 {
				bn = bv[0]
			}
			if an != bn {
				return fmt.Errorf("final pair %d torn: %d != %d", p, an, bn)
			}
			return nil
		}); err != nil {
			t.Fatal(err)
		}
	}

	// Unique per-partition ownership across shards and sites.
	for p := uint64(0); p < pairs; p++ {
		owners, ownerSite := 0, -1
		for i, s := range c.Sites() {
			if s.Masters(p) {
				owners++
				ownerSite = i
			}
		}
		if owners != 1 {
			t.Fatalf("partition %d has %d owning sites, want exactly 1", p, owners)
		}
		if got := g.MasterOf(p); got != ownerSite {
			t.Fatalf("partition %d: group says %d, sites say %d", p, got, ownerSite)
		}
	}
	for si := 0; si < 4; si++ {
		for site := range c.Sites() {
			for _, p := range g.Shard(si).MasteredBy(site) {
				if g.ShardOf(p) != si {
					t.Fatalf("shard %d tracks foreign partition %d after failover", si, p)
				}
			}
		}
	}

	// The run exercised what it claims.
	if inj.InjectedTotal() == 0 {
		t.Fatal("no faults were injected")
	}
	if got := ha.Leader(); got == 0 {
		t.Fatal("victim shard leadership still at the killed node")
	}
	var leaseMsgs uint64
	for _, st := range c.Network().Stats() {
		if st.Category == transport.CatLease {
			leaseMsgs = st.Messages
		}
	}
	if leaseMsgs == 0 {
		t.Fatal("no lease-category traffic recorded")
	}
}
