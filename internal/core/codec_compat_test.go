package core

import (
	"fmt"
	"path/filepath"
	"testing"
	"time"

	"dynamast/internal/checkpoint"
	"dynamast/internal/codec"
	"dynamast/internal/systems"
	"dynamast/internal/wal"
)

// rewriteDurableStateAsLegacy converts every durable artifact under dir —
// the per-site WAL files and every committed checkpoint's snapshot files —
// to the pre-codec gob format, exactly as a cluster run entirely on the
// previous build would have left them. Checkpoint manifests are patched
// with the gob files' byte counts so integrity verification still passes.
func rewriteDurableStateAsLegacy(t *testing.T, dir string, sites int) {
	t.Helper()
	for i := 0; i < sites; i++ {
		path := filepath.Join(dir, fmt.Sprintf("site-%d.wal", i))
		l, err := wal.Open(path)
		if err != nil {
			t.Fatalf("reopen WAL %d: %v", i, err)
		}
		var entries []wal.Entry
		c := l.Subscribe(l.Base())
		for {
			e, ok := c.TryNext()
			if !ok {
				break
			}
			entries = append(entries, e)
		}
		c.Close()
		if err := l.Close(); err != nil {
			t.Fatal(err)
		}
		if err := wal.WriteLegacyLog(path, entries); err != nil {
			t.Fatalf("legacy rewrite WAL %d: %v", i, err)
		}
	}
	for _, m := range checkpoint.List(dir) {
		cdir := checkpoint.Dir(dir, m.Seq)
		for i := 0; i < m.Sites; i++ {
			snap := filepath.Join(cdir, checkpoint.SnapshotName(i))
			var rows []checkpoint.Row
			if _, err := checkpoint.ReadSnapshot(snap, func(r checkpoint.Row) error {
				rows = append(rows, r)
				return nil
			}); err != nil {
				t.Fatalf("read snapshot %s: %v", snap, err)
			}
			info, err := checkpoint.WriteLegacySnapshot(snap, rows)
			if err != nil {
				t.Fatalf("legacy rewrite snapshot %s: %v", snap, err)
			}
			m.Snapshots[i] = info
		}
		if err := checkpoint.WriteManifest(cdir, m); err != nil {
			t.Fatalf("rewrite manifest seq %d: %v", m.Seq, err)
		}
	}
}

// TestRecoverFromGobBuildDurableState is the cross-build upgrade test: a
// cluster whose entire durable state — WALs and a committed checkpoint —
// was written in the previous build's gob format must recover under this
// build, via the per-frame legacy fallback, to the exact pre-crash data.
// Post-recovery traffic then appends binary-format frames to the gob-format
// logs, and a second recovery replays that mixed state too.
func TestRecoverFromGobBuildDurableState(t *testing.T) {
	dir := t.TempDir()
	cfg := Config{Sites: 3, Partitioner: partitionBy100, WALDir: dir}
	c, err := NewCluster(cfg)
	if err != nil {
		t.Fatal(err)
	}
	c.CreateTable("kv")
	var rows []systems.LoadRow
	for k := uint64(0); k < 1000; k++ {
		rows = append(rows, systems.LoadRow{Ref: ref(k), Data: []byte{0}})
	}
	c.Load(rows)
	initial := captureInitial(c)

	sess := c.Session(1)
	want := drive(t, c, sess, 400, 0)
	if err := c.WaitQuiesced(30 * time.Second); err != nil {
		t.Fatal(err)
	}
	m, err := c.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}
	// A post-checkpoint suffix so recovery exercises both the snapshot
	// restore and the WAL redo replay.
	for k, v := range drive(t, c, sess, 100, 0x5A) {
		want[k] = v
	}
	if err := c.WaitQuiesced(30 * time.Second); err != nil {
		t.Fatal(err)
	}
	c.Close()

	// Downgrade the durable state to what the previous build would have
	// written: gob frames everywhere.
	rewriteDurableStateAsLegacy(t, dir, 3)

	codec.Reset()
	c2, err := NewCluster(cfg)
	if err != nil {
		t.Fatal(err)
	}
	c2.CreateTable("kv")
	if err := c2.Recover(initial); err != nil {
		t.Fatalf("recovery from gob-build state: %v", err)
	}
	st := c2.LastRecovery()
	if !st.UsedCheckpoint || st.Seq != m.Seq {
		t.Fatalf("recovery did not use the gob-format checkpoint %d: %+v", m.Seq, st)
	}
	if err := c2.WaitQuiesced(30 * time.Second); err != nil {
		t.Fatal(err)
	}
	for k, v := range want {
		data, ok := c2.Sites()[c2.Selector().MasterOf(k/100)].ReadLocal(ref(k))
		if !ok || data[0] != v {
			t.Fatalf("key %d after gob-build recovery: %v %v, want %d", k, data, ok, v)
		}
	}
	// The fallback readers must actually have run on both surfaces.
	if n := codec.LegacyFrames(codec.SurfaceWAL); n == 0 {
		t.Fatal("no legacy WAL frames decoded — test did not exercise the fallback")
	}
	if n := codec.LegacyFrames(codec.SurfaceCheckpoint); n == 0 {
		t.Fatal("no legacy checkpoint frames decoded — test did not exercise the fallback")
	}

	// Keep running on the recovered cluster: new commits append
	// binary-format frames after the gob prefix in the same files.
	sess2 := c2.Session(1)
	for k, v := range drive(t, c2, sess2, 100, 0x77) {
		want[k] = v
	}
	if err := c2.WaitQuiesced(30 * time.Second); err != nil {
		t.Fatal(err)
	}
	c2.Close()

	// Second crash: the logs are now mixed-format (gob prefix + binary
	// suffix). Recovery must replay both parts to one coherent state.
	c3, err := NewCluster(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer c3.Close()
	c3.CreateTable("kv")
	if err := c3.Recover(initial); err != nil {
		t.Fatalf("recovery from mixed-format state: %v", err)
	}
	if err := c3.WaitQuiesced(30 * time.Second); err != nil {
		t.Fatal(err)
	}
	for k, v := range want {
		data, ok := c3.Sites()[c3.Selector().MasterOf(k/100)].ReadLocal(ref(k))
		if !ok || data[0] != v {
			t.Fatalf("key %d after mixed-format recovery: %v %v, want %d", k, data, ok, v)
		}
	}
}
