package core

import (
	"context"
	"fmt"
	"sync/atomic"
	"time"

	"dynamast/internal/obs"
	"dynamast/internal/selector"
	"dynamast/internal/sitemgr"
	"dynamast/internal/storage"
	"dynamast/internal/systems"
	"dynamast/internal/transport"
	"dynamast/internal/vclock"
)

// beginRetries bounds resubmission when a transaction hits a transient
// fault: mastership moved between routing and execution (racing
// remasterings), an injected wire fault, or a site that died mid-flight.
// The selector re-routes around the failure on retry.
const beginRetries = 64

// retryBackoff sleeps briefly before resubmitting a transaction so retry
// storms drain instead of livelocking. Returns early with the context's
// error if it is cancelled mid-backoff.
func retryBackoff(ctx context.Context, attempt int) error {
	if attempt <= 1 {
		return ctx.Err()
	}
	backoff := time.Duration(attempt) * 2 * time.Millisecond
	if backoff > 20*time.Millisecond {
		backoff = 20 * time.Millisecond
	}
	if ctx.Done() == nil {
		time.Sleep(backoff)
		return nil
	}
	t := time.NewTimer(backoff)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Session is one client's connection to the cluster. It tracks the client
// version vector that enforces strong-session snapshot isolation: every
// transaction executes on data at least as fresh as the state the client
// last observed, and the vector is folded forward after each transaction.
// A Session is used by one goroutine at a time.
type Session struct {
	c      *Cluster
	id     int
	cvv    vclock.Vector
	router selector.Router

	// nextSC, when sampled, is the distributed trace context the next update
	// transaction joins (set by the RPC server when a remote client shipped
	// one in the frame); consumed by the next UpdateCtx.
	nextSC obs.SpanContext
}

// Session opens a session for client id. With replica selectors
// configured, the session is assigned one round-robin; otherwise it talks
// to the master selector.
func (c *Cluster) Session(id int) *Session {
	c.sessions.Add(1)
	return &Session{c: c, id: id, cvv: vclock.New(len(c.sites)), router: c.group.RouterFor(id)}
}

// NewClient implements systems.System: sessions adapted to the
// benchmark-facing Client interface. Under full replication the read hint is
// ignored (any replica serves any read); under partial replication it routes
// the read to a site hosting every hinted partition.
func (c *Cluster) NewClient(id int) systems.Client { return sessionClient{c.Session(id)} }

// sessionClient adapts *Session to systems.Client.
type sessionClient struct{ s *Session }

func (a sessionClient) Update(ws []storage.RowRef, fn func(systems.Tx) error) error {
	return a.s.Update(ws, fn)
}
func (a sessionClient) Read(hint []storage.RowRef, fn func(systems.Tx) error) error {
	return a.s.ReadHinted(hint, fn)
}

// CVV returns a copy of the session's client version vector.
func (s *Session) CVV() vclock.Vector { return s.cvv.Clone() }

// SetTraceContext primes the session's next update transaction to join the
// given distributed trace (the RPC server calls this with the context a
// remote client carried in its frame). sc.Span is the root span the
// transaction records; the zero context clears any pending one.
func (s *Session) SetTraceContext(sc obs.SpanContext) { s.nextSC = sc }

// Update executes fn as an update transaction with the declared write set:
// the client sends begin_transaction to the site selector, which remasters
// if needed and returns the execution site and minimum begin version; the
// client then runs the stored procedure at that site and commits locally —
// no distributed coordination inside the transaction.
func (s *Session) Update(writeSet []storage.RowRef, fn func(systems.Tx) error) error {
	return s.UpdateCtx(context.Background(), writeSet, fn)
}

// UpdateCtx is Update honoring ctx: cancellation interrupts routing
// (including waits on in-flight remaster chains), the begin freshness
// wait, and retry backoffs, returning ctx.Err(). A transaction whose begin
// is abandoned mid-wait is aborted the moment it surfaces, so its locks
// are always released; once fn has run, the local commit is never
// abandoned. With a non-cancellable context (context.Background), the
// call takes exactly the legacy allocation-free path.
func (s *Session) UpdateCtx(ctx context.Context, writeSet []storage.RowRef, fn func(systems.Tx) error) error {
	if ctx == nil {
		ctx = context.Background()
	}
	c := s.c
	bd := &c.breakdown

	// Join the remote client's trace when one was shipped, else make the
	// local head-sampling decision. The route span id is fixed up front so
	// the selector's release/grant spans (recorded mid-route) parent on the
	// same id the route span is later recorded under.
	sc := s.nextSC
	s.nextSC = obs.SpanContext{}
	if !sc.Sampled() && c.sampler.Sample() {
		sc = obs.NewTraceContext()
	}
	var routeSpan uint64
	if sc.Sampled() {
		routeSpan = obs.NewSpanID()
	}

	// With the sharded selector's gossiped placement cache, a first attempt
	// whose write set is cached single-sited routes with zero selector RPCs
	// (both begin_transaction legs skipped). A stale cache answer is safe:
	// the data site bounces it (ErrNotMaster/ErrStaleEpoch) and the retry
	// below resubmits authoritatively through the owning router shard.
	cachedW, _ := s.router.(cachedWriteRouter)

	for attempt := 0; ; attempt++ {
		if err := ctx.Err(); err != nil {
			return err
		}
		t0 := time.Now()
		var route selector.Route
		var err error
		cached := false
		if cachedW != nil && attempt == 0 {
			route, cached = cachedW.RouteWriteCached(s.id, writeSet, s.cvv)
		}
		t1 := time.Now()
		if !cached {
			// begin_transaction round trip to the site selector.
			c.net.Send(transport.CatRoute, transport.MsgOverhead+transport.SizeOfRefs(writeSet))
			t1 = time.Now()
			route, err = s.routeCtx(ctx, attempt, writeSet, obs.SpanContext{Trace: sc.Trace, Span: routeSpan})
		}
		if err != nil {
			if cerr := ctx.Err(); cerr != nil {
				return cerr
			}
			// Routing fails transiently when the remastering it triggered
			// hit an injected fault or a dying site; resubmitting re-routes
			// (the selector rolls failed chains back and skips down sites).
			if Retryable(err) && attempt < beginRetries {
				if berr := retryBackoff(ctx, attempt); berr != nil {
					return berr
				}
				continue
			}
			return fmt.Errorf("core: route: %w", err)
		}
		t2 := time.Now()
		if !cached {
			c.net.Send(transport.CatRoute, transport.MsgOverhead+transport.SizeOfVector(route.MinVV))
		}
		t3 := time.Now()

		minVV := s.cvv.Clone().MaxInto(route.MinVV)
		site := c.sites[route.Site]

		// Stored-procedure round trip to the data site: ship the write-set
		// arguments, execute, and receive the commit timestamp.
		c.net.Send(transport.CatTxn, transport.MsgOverhead+transport.SizeOfRefs(writeSet))
		t4 := time.Now()
		tx, err := s.beginCtx(ctx, site, minVV, writeSet)
		if err != nil {
			if cerr := ctx.Err(); cerr != nil {
				return cerr
			}
			// Mastership moved between routing and begin (racing
			// remasterings on a hot partition), or the site died after the
			// route resolved. Both are retryable: nothing executed.
			if Retryable(err) && attempt < beginRetries {
				if berr := retryBackoff(ctx, attempt); berr != nil {
					return berr
				}
				continue
			}
			return fmt.Errorf("core: begin after %d retries: %w", attempt, err)
		}
		t5 := time.Now()
		if sc.Sampled() {
			tx.SetSpan(sc)
		}
		// Run the stored procedure, then charge its modelled CPU through
		// the site's execution slots.
		ferr := fn(txAdapter{tx})
		site.Exec(tx.Cost)
		// A stale-snapshot poison outranks fn's own error: a read outside
		// the (locked) write set missed a record whose visible version may
		// have been evicted, so whatever fn computed — including any error —
		// came from an unsound miss. Resubmit on a fresher snapshot.
		if tx.SnapshotTooOld() && attempt < beginRetries {
			tx.Abort()
			if berr := retryBackoff(ctx, attempt); berr != nil {
				return berr
			}
			continue
		}
		if ferr != nil {
			tx.Abort()
			return ferr
		}
		t6 := time.Now()
		tvv, err := tx.Commit()
		if err != nil {
			// A failed commit published nothing (the site aborts, releasing
			// its locks, before any WAL write becomes visible), so the
			// whole transaction can be resubmitted elsewhere.
			if Retryable(err) && attempt < beginRetries {
				if berr := retryBackoff(ctx, attempt); berr != nil {
					return berr
				}
				continue
			}
			return fmt.Errorf("core: commit: %w", err)
		}
		t7 := time.Now()
		c.net.Send(transport.CatTxn, transport.MsgOverhead+transport.SizeOfVector(tvv))
		t8 := time.Now()

		s.cvv = s.cvv.MaxInto(tvv)

		bd.record(phaseNetwork, t1.Sub(t0)+t3.Sub(t2)+t4.Sub(t3)+t8.Sub(t7))
		bd.record(phaseRoute, t2.Sub(t1))
		bd.record(phaseBegin, t5.Sub(t4))
		bd.record(phaseLogic, t6.Sub(t5))
		bd.record(phaseCommit, t7.Sub(t6))
		bd.count.Add(1)
		c.trace(s.id, route, tvv, sc, routeSpan, t0, t1, t2, t4, t6, t7, t8, tx.WALPublish())
		return nil
	}
}

// routeCtx runs the begin_transaction routing round, which can block inside
// an in-flight remaster release/grant chain. With a cancellable context the
// round runs in a goroutine and the wait is abandoned on cancellation; the
// chain itself always runs to completion (or rolls back) in the background,
// so abandoning the wait never tears mastership — the client just no longer
// observes the result. The replica fallback resubmits through the master
// selector after a data site rejected the transaction on stale replica
// metadata (Appendix I).
func (s *Session) routeCtx(ctx context.Context, attempt int, writeSet []storage.RowRef, sc obs.SpanContext) (selector.Route, error) {
	route := func(cvv vclock.Vector) (selector.Route, error) {
		if attempt > 0 {
			// A prior attempt was rejected on stale replica metadata;
			// resubmit through the master selector, keeping any sampled
			// trace context so the resubmit's remaster spans stay in the
			// transaction's trace.
			if sc.Sampled() {
				if mr, ok := s.router.(masterRouterTraced); ok {
					return mr.RouteToMasterTraced(s.id, writeSet, cvv, sc)
				}
			}
			if mr, ok := s.router.(masterRouter); ok {
				return mr.RouteToMaster(s.id, writeSet, cvv)
			}
		}
		if sc.Sampled() {
			if tr, ok := s.router.(tracedRouter); ok {
				return tr.RouteWriteTraced(s.id, writeSet, cvv, sc)
			}
		}
		return s.router.RouteWrite(s.id, writeSet, cvv)
	}
	if ctx.Done() == nil {
		return route(s.cvv)
	}
	type res struct {
		r   selector.Route
		err error
	}
	ch := make(chan res, 1)
	cvv := s.cvv.Clone() // the goroutine may outlive this call
	go func() {
		r, err := route(cvv)
		ch <- res{r, err}
	}()
	select {
	case r := <-ch:
		return r.r, r.err
	case <-ctx.Done():
		return selector.Route{}, ctx.Err()
	}
}

// beginCtx runs Begin, which blocks until the site can serve the
// transaction's freshness floor. On cancellation the abandoned transaction
// is aborted as soon as Begin surfaces it, so its row locks are always
// released even though the client has moved on.
func (s *Session) beginCtx(ctx context.Context, site *sitemgr.Site, minVV vclock.Vector, writeSet []storage.RowRef) (*sitemgr.Txn, error) {
	if ctx.Done() == nil {
		return site.Begin(minVV, writeSet)
	}
	type res struct {
		tx  *sitemgr.Txn
		err error
	}
	ch := make(chan res, 1)
	minVV = minVV.Clone() // the goroutine may outlive this call
	go func() {
		tx, err := site.Begin(minVV, writeSet)
		ch <- res{tx, err}
	}()
	select {
	case r := <-ch:
		return r.tx, r.err
	case <-ctx.Done():
		go func() {
			if r := <-ch; r.tx != nil {
				r.tx.Abort()
			}
		}()
		return nil, ctx.Err()
	}
}

// tracedRouter is the optional routing capability carrying a sampled trace
// context; both *selector.Selector and *selector.Replica implement it.
type tracedRouter interface {
	RouteWriteTraced(client int, writeSet []storage.RowRef, cvv vclock.Vector, sc obs.SpanContext) (selector.Route, error)
}

// masterRouter is the optional stale-metadata fallback: resubmit the
// routing decision through the master selector after a data site rejected
// the transaction (*selector.Replica implements it; the master selector
// itself needs no fallback — its metadata is authoritative).
type masterRouter interface {
	RouteToMaster(client int, writeSet []storage.RowRef, cvv vclock.Vector) (selector.Route, error)
}

// masterRouterTraced is masterRouter under a sampled distributed trace.
type masterRouterTraced interface {
	RouteToMasterTraced(client int, writeSet []storage.RowRef, cvv vclock.Vector, sc obs.SpanContext) (selector.Route, error)
}

// cachedWriteRouter is the optional zero-RPC optimistic write routing off
// the gossiped placement cache (*selector.CachedRouter implements it). The
// second result reports whether the cache could serve the route; false
// falls back to the selector round trip.
type cachedWriteRouter interface {
	RouteWriteCached(client int, writeSet []storage.RowRef, cvv vclock.Vector) (selector.Route, bool)
}

// cachedReadRouter is the optional zero-RPC read routing off the gossiped
// placement cache (*selector.CachedRouter implements it).
type cachedReadRouter interface {
	RouteReadCached(client int, cvv vclock.Vector, parts []uint64) (selector.Route, bool)
}

// trace assembles the transaction's lifecycle trace, records it in the
// trace ring, and feeds the per-stage histograms. The refresh-apply stage
// is completed later by the replicas' appliers (see sitemgr.applyLoop).
// For sampled transactions it also records the selector-side spans: the
// root txn span, the route span (whose release/grant children the selector
// recorded mid-route), and the execute span at the routed site; the commit
// and wal_flush spans were recorded inside Txn.Commit.
func (c *Cluster) trace(client int, route selector.Route, tvv vclock.Vector,
	sc obs.SpanContext, routeSpan uint64,
	t0, t1, t2, t4, t6, t7, t8 time.Time, walPublish time.Duration) {
	if sc.Sampled() {
		c.spans.Record(obs.Span{Trace: sc.Trace, ID: sc.Span,
			Name: "txn", Site: obs.SelectorSite, Start: t0, Dur: t8.Sub(t0)})
		c.spans.Record(obs.Span{Trace: sc.Trace, ID: routeSpan, Parent: sc.Span,
			Name: "route", Site: obs.SelectorSite, Start: t1, Dur: t2.Sub(t1)})
		c.spans.Record(obs.Span{Trace: sc.Trace, Parent: sc.Span,
			Name: "execute", Site: route.Site, Start: t4, Dur: t6.Sub(t4)})
	}
	clamp := func(d time.Duration) time.Duration {
		if d < 0 {
			return 0
		}
		return d
	}
	tr := obs.Trace{
		Client:     client,
		Site:       route.Site,
		Seq:        tvv[route.Site],
		Remastered: route.Remastered,
		PartsMoved: route.PartsMoved,
		Start:      t0,
		Total:      t8.Sub(t0),
	}
	tr.Stages[obs.StageRoute] = clamp(t2.Sub(t1) - route.RemasterWait)
	tr.Stages[obs.StageRemaster] = route.RemasterWait
	tr.Stages[obs.StageExecute] = t6.Sub(t4)
	tr.Stages[obs.StageCommit] = clamp(t7.Sub(t6) - walPublish)
	tr.Stages[obs.StageWALPublish] = walPublish
	c.tracer.Record(tr)
	for st, d := range tr.Stages {
		if obs.Stage(st) == obs.StageRefreshApply {
			continue // observed by the appliers when it happens
		}
		c.stageDur[st].ObserveDuration(d)
	}
	c.updateDur.ObserveDuration(tr.Total)
}

// Read executes fn as a read-only transaction at a replica satisfying the
// session's freshness guarantee; any site works, no cross-site
// synchronization occurs.
func (s *Session) Read(fn func(systems.Tx) error) error {
	return s.ReadHintedCtx(context.Background(), nil, fn)
}

// ReadHinted is Read with a read-set hint: under partial replication the
// hinted rows' partitions steer routing to a site hosting all of them.
// Under full replication the hint is ignored.
func (s *Session) ReadHinted(hint []storage.RowRef, fn func(systems.Tx) error) error {
	return s.ReadHintedCtx(context.Background(), hint, fn)
}

// ReadCtx is Read honoring ctx: cancellation interrupts the begin
// freshness wait and retry backoffs, returning ctx.Err(). Read routing
// itself never blocks, so it is not wrapped.
func (s *Session) ReadCtx(ctx context.Context, fn func(systems.Tx) error) error {
	return s.ReadHintedCtx(ctx, nil, fn)
}

// partsRouter is the optional partition-aware read routing capability
// (partial replication); *selector.Selector and *selector.Replica implement
// it.
type partsRouter interface {
	RouteReadParts(client int, cvv vclock.Vector, parts []uint64) selector.Route
}

// readParts maps a read hint to its deduplicated partition set.
func (s *Session) readParts(hint []storage.RowRef) []uint64 {
	parts := make([]uint64, 0, len(hint))
outer:
	for _, ref := range hint {
		id := s.c.cfg.Partitioner(ref)
		for _, seen := range parts {
			if seen == id {
				continue outer
			}
		}
		parts = append(parts, id)
	}
	return parts
}

// mergeParts folds extra partitions into parts, deduplicating.
func mergeParts(parts, extra []uint64) []uint64 {
outer:
	for _, id := range extra {
		for _, seen := range parts {
			if seen == id {
				continue outer
			}
		}
		parts = append(parts, id)
	}
	return parts
}

// ReadHintedCtx is ReadHinted honoring ctx. Under partial replication a read
// that lands on a site missing one of its partitions comes back poisoned
// with the retryable sitemgr.ErrNotHosted; the session folds the missing
// partitions into the routing hint and resubmits, so even unhinted reads
// converge on a hosting site within a retry or two.
func (s *Session) ReadHintedCtx(ctx context.Context, hint []storage.RowRef, fn func(systems.Tx) error) error {
	if ctx == nil {
		ctx = context.Background()
	}
	c := s.c
	var parts []uint64
	if len(hint) > 0 && c.group.PartialPlacement() {
		parts = s.readParts(hint)
	}
	start := time.Now()
	for attempt := 0; ; attempt++ {
		if err := ctx.Err(); err != nil {
			return err
		}
		// First attempt consults the gossiped placement cache: a hit routes
		// the read with zero selector RPCs. A stale replica set bounces with
		// ErrNotHosted below, and the retry routes authoritatively.
		var route selector.Route
		cached := false
		if cr, ok := s.router.(cachedReadRouter); ok && attempt == 0 {
			route, cached = cr.RouteReadCached(s.id, s.cvv, parts)
		}
		if !cached {
			c.net.Send(transport.CatRoute, transport.MsgOverhead)
			if pr, ok := s.router.(partsRouter); ok && len(parts) > 0 {
				route = pr.RouteReadParts(s.id, s.cvv, parts)
			} else {
				route = s.router.RouteRead(s.id, s.cvv)
			}
			c.net.Send(transport.CatRoute, transport.MsgOverhead)
		}

		c.net.Send(transport.CatTxn, transport.MsgOverhead)
		site := c.sites[route.Site]
		tx, err := s.beginCtx(ctx, site, s.cvv, nil)
		if err != nil {
			if cerr := ctx.Err(); cerr != nil {
				return cerr
			}
			// The chosen replica died between routing and begin; any other
			// replica serves the read, so re-route and retry.
			if Retryable(err) && attempt < beginRetries {
				if berr := retryBackoff(ctx, attempt); berr != nil {
					return berr
				}
				continue
			}
			return fmt.Errorf("core: read begin: %w", err)
		}
		ferr := fn(txAdapter{tx})
		site.Exec(tx.Cost)
		// Check the not-hosted poison before fn's own error: a read that
		// silently returned "no row" for a partition this site does not host
		// may have induced fn's failure, and re-routing fixes both.
		if missing := tx.NotHostedParts(); len(missing) > 0 {
			tx.Abort()
			parts = mergeParts(parts, missing)
			// Re-routing alone cannot converge when no single site hosts
			// every partition the read touches (disjoint replica sets). After
			// a couple of bounces, materialize the missing replicas at the
			// routed site — a read-triggered replica add, the DynamicCache
			// move — so a co-hosting site exists on the next attempt.
			if attempt >= 2 {
				if err := c.ensureHostedAll(missing, route.Site); err != nil && !Retryable(err) {
					return fmt.Errorf("core: read replica add: %w", err)
				}
			}
			if attempt < beginRetries {
				if berr := retryBackoff(ctx, attempt); berr != nil {
					return berr
				}
				continue
			}
			return fmt.Errorf("core: read after %d retries: %w", attempt, sitemgr.ErrNotHosted)
		}
		// Likewise a stale-snapshot poison: a read missed a record whose
		// visible version may have been evicted from the bounded chain, so
		// any miss fn observed (and any error it derived from one) is
		// unsound. Re-begin: the fresh snapshot sees the retained versions.
		if tx.SnapshotTooOld() {
			tx.Abort()
			if attempt < beginRetries {
				if berr := retryBackoff(ctx, attempt); berr != nil {
					return berr
				}
				continue
			}
			return fmt.Errorf("core: read after %d retries: %w", attempt, sitemgr.ErrSnapshotTooOld)
		}
		if ferr != nil {
			tx.Abort()
			return ferr
		}
		snap := tx.Snapshot()
		if _, err := tx.Commit(); err != nil {
			return err
		}
		c.net.Send(transport.CatTxn, transport.MsgOverhead)
		s.cvv = s.cvv.MaxInto(snap)
		c.readDur.ObserveDuration(time.Since(start))
		return nil
	}
}

// txAdapter exposes a sitemgr transaction through the systems.Tx interface.
type txAdapter struct{ tx *sitemgr.Txn }

func (a txAdapter) Read(ref storage.RowRef) ([]byte, bool) { return a.tx.Read(ref) }
func (a txAdapter) Scan(table string, lo, hi uint64) []storage.KV {
	return a.tx.Scan(table, lo, hi)
}
func (a txAdapter) Write(ref storage.RowRef, data []byte) error { return a.tx.Write(ref, data) }

// Breakdown phases (Figure 7's latency categories). Locate/route is
// reported from the selector's own metrics; the session adds network,
// begin, logic and commit.
type phase int

const (
	phaseRoute phase = iota
	phaseNetwork
	phaseBegin
	phaseLogic
	phaseCommit
	numPhases
)

// Breakdown accumulates per-phase latency across a cluster's update
// transactions.
type Breakdown struct {
	nanos [numPhases]atomic.Int64
	count atomic.Uint64
}

func (b *Breakdown) record(p phase, d time.Duration) { b.nanos[p].Add(int64(d)) }

// BreakdownReport is the averaged per-phase latency.
type BreakdownReport struct {
	Count   uint64
	Route   time.Duration // selector processing incl. remastering wait
	Network time.Duration
	Begin   time.Duration // lock acquisition + session-freshness wait
	Logic   time.Duration // stored procedure execution
	Commit  time.Duration
}

// Breakdown returns the averaged latency breakdown of all update
// transactions executed so far.
func (c *Cluster) Breakdown() BreakdownReport {
	n := c.breakdown.count.Load()
	r := BreakdownReport{Count: n}
	if n == 0 {
		return r
	}
	avg := func(p phase) time.Duration {
		return time.Duration(c.breakdown.nanos[p].Load() / int64(n))
	}
	r.Route = avg(phaseRoute)
	r.Network = avg(phaseNetwork)
	r.Begin = avg(phaseBegin)
	r.Logic = avg(phaseLogic)
	r.Commit = avg(phaseCommit)
	return r
}
