package core

import (
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	"dynamast/internal/checkpoint"
	"dynamast/internal/obs"
	"dynamast/internal/sitemgr"
	"dynamast/internal/vclock"
)

// Checkpointing turns restart cost from O(log length) into O(suffix): a
// checkpoint captures every site's store at a consistent version vector,
// records where each site's redo replay must resume in every origin's log,
// and truncates the WAL prefix all sites' snapshots already cover. The
// capture order matters and is fixed here:
//
//  1. Every site exports its store at its own current svv (parallel;
//     writers are never blocked — see storage.Store.ExportAt).
//  2. Replay offsets are derived: Offsets[s][o] is the first update in
//     origin o's log past SVVs[s][o].
//  3. Fold offsets — each origin's log end — are captured BEFORE the
//     placement snapshot, so every mastership change that races the
//     capture lands in the folded suffix; re-folding a change the
//     placement already reflects is idempotent.
//  4. The selector's placement is snapshotted with per-partition install
//     epochs (serialized against in-flight remaster chains by the
//     partition locks).
//  5. The manifest is committed by an atomic rename; only then is the WAL
//     low-water advanced and the dead prefix truncated.
//
// One known benign race: a failover grant appends its log entry before the
// selector map updates, so a capture in that window can snapshot the
// pre-failover owner. The grant is then in the folded suffix under its
// fresh epoch and wins the fold — recovery still converges on a single
// consistent owner (see DESIGN.md).

// checkpointsToKeep bounds disk usage: the newest checkpoint plus one
// fallback survive garbage collection.
const checkpointsToKeep = 2

// RecoveryStats describes what the last Cluster.Recover run did.
type RecoveryStats struct {
	// UsedCheckpoint is false when recovery degraded to full redo replay.
	UsedCheckpoint bool
	// Seq is the recovered checkpoint's sequence (0 for full replay).
	Seq uint64
	// RowsRestored counts snapshot rows installed across sites.
	RowsRestored uint64
	// ReplayedOwn counts redo records each site replayed from its own log
	// (deterministic: refresh appliers never touch a site's own
	// dimension, so this is exactly the post-checkpoint commit suffix).
	ReplayedOwn uint64
	// ReplayedRefresh counts refresh records applied synchronously during
	// recovery catch-up (the concurrent refresh appliers may claim some of
	// the same suffix, so this is a lower bound on suffix refresh work).
	ReplayedRefresh uint64
	// Duration is Recover's wall time.
	Duration time.Duration
}

// LastRecovery returns stats for the most recent Recover call.
func (c *Cluster) LastRecovery() RecoveryStats {
	c.ckptMu.Lock()
	defer c.ckptMu.Unlock()
	return c.lastRecovery
}

// Checkpoint takes one checkpoint now and returns its manifest. Safe to
// call concurrently with transaction traffic (runs serialize; writers are
// never blocked) and concurrently with Close (a checkpoint racing shutdown
// either commits its manifest atomically or is discarded whole).
func (c *Cluster) Checkpoint() (*checkpoint.Manifest, error) {
	if c.cfg.WALDir == "" {
		return nil, fmt.Errorf("core: checkpointing requires Config.WALDir")
	}
	c.ckptMu.Lock()
	defer c.ckptMu.Unlock()
	if c.closing.Load() {
		return nil, fmt.Errorf("core: cluster is closing")
	}
	start := time.Now()
	m, err := c.checkpointLocked()
	if err != nil {
		c.obCkptFails.Inc()
		return nil, err
	}
	c.obCkpts.Inc()
	for _, info := range m.Snapshots {
		c.obCkptBytes.Add(info.Bytes)
	}
	c.ckptDur.ObserveDuration(time.Since(start))
	return m, nil
}

func (c *Cluster) checkpointLocked() (*checkpoint.Manifest, error) {
	root := c.cfg.WALDir
	seq := checkpoint.NextSeq(root)
	dir := checkpoint.Dir(root, seq)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	n := len(c.sites)
	m := &checkpoint.Manifest{
		Seq:       seq,
		TakenAt:   time.Now(),
		Sites:     n,
		SVVs:      make([]vclock.Vector, n),
		Offsets:   make([][]uint64, n),
		LowWater:  make([]uint64, n),
		Snapshots: make([]checkpoint.SnapshotInfo, n),
	}

	// 1. Parallel per-site export, each at the site's own current svv.
	errs := make([]error, n)
	var wg sync.WaitGroup
	for i, s := range c.sites {
		wg.Add(1)
		go func(i int, s *sitemgr.Site) {
			defer wg.Done()
			w, err := checkpoint.CreateSnapshot(filepath.Join(dir, checkpoint.SnapshotName(i)))
			if err != nil {
				errs[i] = err
				return
			}
			svv, err := s.WriteSnapshot(w)
			if err != nil {
				w.Abort()
				errs[i] = err
				return
			}
			info, err := w.Close()
			if err != nil {
				errs[i] = err
				return
			}
			m.SVVs[i], m.Snapshots[i] = svv, info
		}(i, s)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			os.RemoveAll(dir)
			return nil, fmt.Errorf("core: checkpoint export: %w", err)
		}
	}

	// 2. Replay offsets; LowWater[o] is the prefix every snapshot covers.
	for s := 0; s < n; s++ {
		m.Offsets[s] = make([]uint64, n)
		for o := 0; o < n; o++ {
			m.Offsets[s][o] = c.broker.Log(o).FirstUpdateOffsetAfter(m.SVVs[s][o])
		}
	}
	for o := 0; o < n; o++ {
		lw := m.Offsets[0][o]
		for s := 1; s < n; s++ {
			if m.Offsets[s][o] < lw {
				lw = m.Offsets[s][o]
			}
		}
		m.LowWater[o] = lw
	}

	// 3+4. Fold offsets strictly before the placement snapshot.
	m.FoldOffsets = make([]uint64, n)
	for o := 0; o < n; o++ {
		m.FoldOffsets[o] = c.broker.Log(o).Len()
	}
	m.Placement, m.PlacementEpochs = c.group.PlacementSnapshot()
	m.ReplicaSets = c.group.PlacementTable()
	m.MaxEpoch = c.group.CurrentEpoch()
	for _, e := range m.PlacementEpochs {
		if e > m.MaxEpoch {
			m.MaxEpoch = e
		}
	}

	// 5. Commit point. A shutdown racing this rename gets either a fully
	// committed checkpoint or none; after the closing flag is up, discard
	// rather than commit so Close never waits on truncation I/O.
	if c.closing.Load() {
		os.RemoveAll(dir)
		return nil, fmt.Errorf("core: checkpoint abandoned: cluster is closing")
	}
	if err := checkpoint.WriteManifest(dir, m); err != nil {
		os.RemoveAll(dir)
		return nil, fmt.Errorf("core: checkpoint commit: %w", err)
	}

	// GC superseded checkpoints, then truncate the WAL prefixes. The
	// truncation floor is the minimum low-water across the checkpoints that
	// SURVIVE GC, not just this one's: a retained fallback checkpoint must
	// keep its whole replay suffix in the log, or falling back to it after
	// the newest checkpoint corrupts would leave an unfillable gap.
	if seq > checkpointsToKeep {
		for _, old := range checkpoint.List(root) {
			if old.Seq <= seq-checkpointsToKeep {
				_ = checkpoint.Remove(root, old.Seq)
			}
		}
	}
	floor := append([]uint64(nil), m.LowWater...)
	for _, kept := range checkpoint.List(root) {
		if kept.Sites != n {
			continue
		}
		for o := 0; o < n; o++ {
			if kept.LowWater[o] < floor[o] {
				floor[o] = kept.LowWater[o]
			}
		}
	}
	for o := 0; o < n; o++ {
		if _, err := c.broker.Log(o).SetLowWater(floor[o]); err != nil {
			// The checkpoint is committed; failed truncation only costs disk.
			fmt.Fprintf(os.Stderr, "core: wal truncation (site %d): %v\n", o, err)
		}
	}
	return m, nil
}

// checkpointLoop is the background checkpointer: a checkpoint fires every
// `every`, or sooner once `everyRecords` new WAL records have accumulated.
func (c *Cluster) checkpointLoop(every time.Duration, everyRecords uint64) {
	defer c.ckptWG.Done()
	poll := every
	if everyRecords > 0 {
		if poll == 0 || poll > 50*time.Millisecond {
			poll = 50 * time.Millisecond
		}
	}
	totalLen := func() uint64 {
		var t uint64
		for o := 0; o < len(c.sites); o++ {
			t += c.broker.Log(o).Len()
		}
		return t
	}
	lastLen := totalLen()
	lastAt := time.Now()
	ticker := time.NewTicker(poll)
	defer ticker.Stop()
	for {
		select {
		case <-c.ckptStop:
			return
		case <-ticker.C:
		}
		due := every > 0 && time.Since(lastAt) >= every
		if !due && everyRecords > 0 {
			due = totalLen()-lastLen >= everyRecords
		}
		if !due {
			continue
		}
		if _, err := c.Checkpoint(); err != nil {
			if c.closing.Load() {
				return
			}
			fmt.Fprintf(os.Stderr, "core: background checkpoint: %v\n", err)
		}
		lastLen, lastAt = totalLen(), time.Now()
	}
}

// verifyCheckpoint CRC-walks every snapshot file against the manifest
// before anything is installed, so recovery never half-installs a corrupt
// checkpoint and then has to fall back over poisoned state.
func (c *Cluster) verifyCheckpoint(m *checkpoint.Manifest) error {
	if m.Sites != len(c.sites) {
		return fmt.Errorf("checkpoint has %d sites, cluster has %d", m.Sites, len(c.sites))
	}
	dir := checkpoint.Dir(c.cfg.WALDir, m.Seq)
	for i := range c.sites {
		if err := checkpoint.VerifySnapshot(filepath.Join(dir, checkpoint.SnapshotName(i)), m.Snapshots[i]); err != nil {
			return err
		}
	}
	return nil
}

// recover implements Cluster.Recover: checkpoint restore with fallback.
func (c *Cluster) recover(initialPlacement map[uint64]int) error {
	start := time.Now()
	var st RecoveryStats

	var m *checkpoint.Manifest
	if c.cfg.WALDir != "" {
		for _, cand := range checkpoint.List(c.cfg.WALDir) {
			if err := c.verifyCheckpoint(cand); err != nil {
				fmt.Fprintf(os.Stderr, "core: recovery skipping checkpoint %d: %v\n", cand.Seq, err)
				continue
			}
			m = cand
			break
		}
	}

	var owner map[uint64]int
	var maxEpoch uint64
	if m != nil {
		st.UsedCheckpoint, st.Seq = true, m.Seq
		dir := checkpoint.Dir(c.cfg.WALDir, m.Seq)
		// Partial replication: fold replica-set membership to the capture
		// before any catch-up runs, so the refresh appliers filter with the
		// membership the snapshots were taken under. Adds and drops after the
		// capture are not journaled; the master-hosting reconciliation below
		// redoes lost adds that matter, and lost drops merely resurrect a
		// replica the controller can re-drop.
		if c.group.PartialPlacement() && len(m.ReplicaSets) > 0 {
			c.group.AdoptReplicaSets(m.ReplicaSets)
			for i, s := range c.sites {
				hosted := make(map[uint64]bool, len(m.ReplicaSets))
				for p, set := range m.ReplicaSets {
					hosted[p] = hostedIn(set, i)
				}
				s.AdoptHosting(hosted)
			}
		}
		var rows, own, refresh atomic.Uint64
		errs := make([]error, len(c.sites))
		var wg sync.WaitGroup
		for i, s := range c.sites {
			wg.Add(1)
			go func(i int, s *sitemgr.Site) {
				defer wg.Done()
				nr, err := s.RestoreSnapshot(filepath.Join(dir, checkpoint.SnapshotName(i)), m.SVVs[i])
				if err != nil {
					errs[i] = fmt.Errorf("core: restore site %d: %w", i, err)
					return
				}
				rows.Add(nr)
				no, err := s.RecoverLocalFrom(m.Offsets[i][i])
				if err != nil {
					errs[i] = fmt.Errorf("core: recover site %d: %w", i, err)
					return
				}
				own.Add(no)
				refresh.Add(s.CatchUpFrom(m.Offsets[i], nil))
			}(i, s)
		}
		wg.Wait()
		for _, err := range errs {
			if err != nil {
				return err
			}
		}
		st.RowsRestored, st.ReplayedOwn, st.ReplayedRefresh = rows.Load(), own.Load(), refresh.Load()

		seedP := make(map[uint64]int, len(m.Placement))
		seedE := make(map[uint64]uint64, len(m.PlacementEpochs))
		for p, site := range initialPlacement {
			seedP[p] = site
		}
		for p, site := range m.Placement {
			seedP[p] = site
			seedE[p] = m.PlacementEpochs[p]
		}
		owner, maxEpoch = sitemgr.RecoverMastershipFrom(c.broker, seedP, seedE, m.FoldOffsets)
		if m.MaxEpoch > maxEpoch {
			maxEpoch = m.MaxEpoch
		}
	} else {
		// Full redo replay (§V-C), the fallback when no checkpoint is
		// usable. The empty-placement fold is RecoverMastership plus the
		// max-epoch scan the recovered selector needs.
		var own, refresh atomic.Uint64
		errs := make([]error, len(c.sites))
		var wg sync.WaitGroup
		for i, s := range c.sites {
			wg.Add(1)
			go func(i int, s *sitemgr.Site) {
				defer wg.Done()
				no, err := s.RecoverLocalFrom(0)
				if err != nil {
					errs[i] = fmt.Errorf("core: recover site %d: %w", i, err)
					return
				}
				own.Add(no)
			}(i, s)
		}
		wg.Wait()
		for _, err := range errs {
			if err != nil {
				return err
			}
		}
		owner, maxEpoch = sitemgr.RecoverMastershipFrom(c.broker, nil, nil, nil)
		for p, site := range initialPlacement {
			if _, ok := owner[p]; !ok {
				owner[p] = site
			}
		}
		for _, s := range c.sites {
			s.AdoptMastership(owner)
			refresh.Add(s.CatchUpFrom(nil, nil))
		}
		st.ReplayedOwn, st.ReplayedRefresh = own.Load(), refresh.Load()
	}

	// Epochs allocated after recovery must out-fence everything logged
	// before the crash, or stale pre-crash grants could win arbitration
	// against fresh remaster chains.
	c.group.BumpEpoch(maxEpoch)
	for _, s := range c.sites {
		s.AdoptMastership(owner)
	}
	for p, site := range owner {
		c.group.RegisterPartitionEpoch(p, site, maxEpoch)
	}
	// Partial replication: a master must host what it masters. Mastership
	// folds from the WAL (grants are journaled) but membership folds to the
	// checkpoint capture (adds are not), so a partition granted after the
	// capture can recover with its master outside the hosting set. Re-add
	// the copy before traffic routes there.
	if c.group.PartialPlacement() {
		for p, site := range owner {
			if site >= 0 && site < len(c.sites) && !c.sites[site].Hosts(p) {
				if err := c.AddReplica(p, site); err != nil {
					return fmt.Errorf("core: recovery replica add (partition %d at site %d): %w", p, site, err)
				}
			}
		}
	}

	st.Duration = time.Since(start)
	c.obReplayed.Add(st.ReplayedOwn + st.ReplayedRefresh)
	c.recoverDur.ObserveDuration(st.Duration)
	c.ckptMu.Lock()
	c.lastRecovery = st
	c.ckptMu.Unlock()
	obs.RecordEvent(obs.FlightRecovery, obs.SelectorSite,
		"recovered in %v: checkpoint=%v rows=%d replayed own=%d refresh=%d",
		st.Duration.Round(time.Millisecond), st.UsedCheckpoint, st.RowsRestored, st.ReplayedOwn, st.ReplayedRefresh)
	if _, err := obs.SnapshotFlight("recovery"); err != nil {
		fmt.Fprintf(os.Stderr, "core: flight snapshot after recovery: %v\n", err)
	}
	return nil
}
