package core

import (
	"testing"
	"time"

	"dynamast/internal/storage"
	"dynamast/internal/systems"
)

// BenchmarkRecoveryRestart measures a full cluster restart — construction,
// state recovery, quiesce — against the same committed history with and
// without a checkpoint mid-way. The checkpointed variant restores site
// snapshots and replays only the post-checkpoint suffix; full-replay redoes
// the entire retained log (the paper's §V-C baseline). Reported metrics:
// replayed_records/op (own-log + refresh records redone per restart) and
// restored_rows/op.
func BenchmarkRecoveryRestart(b *testing.B) {
	const pre, post = 10_000, 1_000
	for _, mode := range []struct {
		name       string
		checkpoint bool
	}{
		{"full-replay", false},
		{"checkpointed", true},
	} {
		b.Run(mode.name, func(b *testing.B) {
			dir := b.TempDir()
			cfg := Config{Sites: 3, Partitioner: partitionBy100, WALDir: dir}
			c, err := NewCluster(cfg)
			if err != nil {
				b.Fatal(err)
			}
			c.CreateTable("kv")
			var rows []systems.LoadRow
			for k := uint64(0); k < 1000; k++ {
				rows = append(rows, systems.LoadRow{Ref: ref(k), Data: []byte{0}})
			}
			c.Load(rows)
			initial := captureInitial(c)

			sess := c.Session(1)
			commit := func(n int) {
				for i := 0; i < n; i++ {
					k := uint64(i%10)*100 + uint64(i%7)
					if err := sess.Update([]storage.RowRef{ref(k)}, func(tx systems.Tx) error {
						return tx.Write(ref(k), []byte{byte(i)})
					}); err != nil {
						b.Fatal(err)
					}
				}
			}
			commit(pre)
			if err := c.WaitQuiesced(30 * time.Second); err != nil {
				b.Fatal(err)
			}
			if mode.checkpoint {
				if _, err := c.Checkpoint(); err != nil {
					b.Fatal(err)
				}
			}
			commit(post)
			if err := c.WaitQuiesced(30 * time.Second); err != nil {
				b.Fatal(err)
			}
			c.Close()

			var replayed, restored uint64
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				c2, err := NewCluster(cfg)
				if err != nil {
					b.Fatal(err)
				}
				c2.CreateTable("kv")
				if err := c2.Recover(initial); err != nil {
					b.Fatal(err)
				}
				if err := c2.WaitQuiesced(30 * time.Second); err != nil {
					b.Fatal(err)
				}
				st := c2.LastRecovery()
				replayed += st.ReplayedOwn + st.ReplayedRefresh
				restored += st.RowsRestored
				c2.Close()
			}
			b.StopTimer()
			b.ReportMetric(float64(replayed)/float64(b.N), "replayed_records/op")
			b.ReportMetric(float64(restored)/float64(b.N), "restored_rows/op")
		})
	}
}
