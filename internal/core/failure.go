package core

import (
	"errors"
	"fmt"
	"os"
	"sort"
	"time"

	"dynamast/internal/obs"
	"dynamast/internal/selector"
	"dynamast/internal/sitemgr"
	"dynamast/internal/transport"
	"dynamast/internal/vclock"
)

// Site failure handling (§V-C). Every DynaMast site is a full replica, so a
// site failure loses no data: the failed site's durable update log survives
// in the broker, survivors keep applying it, and mastership of the failed
// site's partitions is reconstructed and re-granted to survivors. The
// cluster detects failures with a selector-side heartbeat over the control
// plane; in-flight transactions at the failed site abort with the retryable
// ErrSiteDown and sessions re-route after failover updates the selector.

// FailureDetectionConfig tunes the heartbeat-based failure detector. The
// zero value disables detection (no background goroutine); KillSite and
// Failover still work when driven manually.
type FailureDetectionConfig struct {
	// Interval between heartbeat probes per site.
	Interval time.Duration
	// Misses is how many consecutive failed probes declare the site down
	// (0 = default 3).
	Misses int
}

// Retryable reports whether a session-level error is transient: the
// transaction did not commit and re-submitting it (the selector will route
// around the failure) can succeed. Fatal errors — schema violations,
// application errors — are not retryable.
func Retryable(err error) bool {
	return errors.Is(err, sitemgr.ErrSiteDown) ||
		errors.Is(err, sitemgr.ErrNotMaster) ||
		errors.Is(err, sitemgr.ErrNotHosted) ||
		errors.Is(err, sitemgr.ErrSnapshotTooOld) ||
		errors.Is(err, sitemgr.ErrReleasing) ||
		errors.Is(err, selector.ErrNoLeader) ||
		transport.IsInjected(err)
}

// heartbeatLoop probes every site each interval and declares a site down
// after `misses` consecutive failed probes. A probe fails when the control
// wire drops it (injected fault or partition) or the site is dead. Runs
// until the cluster closes.
func (c *Cluster) heartbeatLoop(interval time.Duration, misses int) {
	defer c.hbWG.Done()
	missed := make([]int, len(c.sites))
	ticker := time.NewTicker(interval)
	defer ticker.Stop()
	for {
		select {
		case <-c.hbStop:
			return
		case <-ticker.C:
		}
		for i, s := range c.sites {
			if c.group.SiteDown(i) {
				// A site can be marked down with its failover incomplete
				// (a grant leg failed mid-way); keep retrying until every
				// orphaned partition has a live master — an abandoned
				// partial failover would leave those partitions mastered
				// at the dead site forever.
				if !c.FailedOver(i) {
					_ = c.Failover(i) // errors retried next tick
				}
				continue
			}
			// Probe: request + response on the control plane. Either leg
			// lost counts as a miss; a dead site never answers.
			err := c.net.SendTo(transport.CatControl, transport.SelectorNode, i, transport.MsgOverhead)
			if err == nil && s.Alive() {
				err = c.net.SendTo(transport.CatControl, i, transport.SelectorNode, transport.MsgOverhead)
			} else if err == nil {
				err = sitemgr.ErrSiteDown
			}
			if err == nil {
				missed[i] = 0
				continue
			}
			missed[i]++
			if missed[i] >= misses {
				c.Failover(i)
			}
		}
	}
}

// KillSite simulates a crash of site i: the site fails every subsequent
// operation with ErrSiteDown and wakes anything blocked on it. With failure
// detection configured the selector notices via missed heartbeats and runs
// Failover; otherwise call Failover directly.
func (c *Cluster) KillSite(i int) {
	c.sites[i].Kill()
}

// Failovers returns how many site failovers the cluster has executed.
func (c *Cluster) Failovers() uint64 { return c.failovers.Load() }

// FailedOver reports whether site i's failover has fully completed (every
// orphaned partition re-granted to a live survivor).
func (c *Cluster) FailedOver(i int) bool {
	c.failoverMu.Lock()
	defer c.failoverMu.Unlock()
	return c.failedOver[i]
}

// Faults returns the cluster's fault injector, nil when none is configured.
func (c *Cluster) Faults() *transport.Injector { return c.net.Injector() }

// Failover marks site `dead` failed and re-masters every partition it owned
// onto the survivors (§V-C). Idempotent per site. The steps:
//
//  1. The selector marks the site down: no new reads, writes or remaster
//     destinations go there.
//  2. The set of partitions to move is the union of the selector's live map
//     and the mastership reconstructed from the surviving redo logs (the
//     logs are authoritative across selector restarts; the live map catches
//     grants whose log entries raced the crash).
//  3. Each partition batch is granted to a survivor under a fresh epoch,
//     fencing out any release/grant chains in flight at the crash. The
//     release vector pins the dead site's dimension at its last published
//     update: survivors serve the partitions only after applying everything
//     the dead site made durable — no committed write is lost (every site
//     replicates, so the data is already on its way via the refresh
//     appliers reading the dead site's surviving log).
//  4. The selector's partition map is updated per batch, re-routing new
//     transactions; in-flight ones at the dead site abort retryably.
func (c *Cluster) Failover(dead int) error {
	c.failoverMu.Lock()
	defer c.failoverMu.Unlock()
	// Mark the site down on every router shard before the idempotence
	// check: a selector promotion replays down flags from its predecessor,
	// but a flag raced past a leadership swap must be re-installable on the
	// new leader even after this site's failover already completed.
	c.group.MarkDown(dead)
	if c.failedOver[dead] {
		return nil
	}
	c.sites[dead].Kill() // ensure it stops serving even if only partitioned

	survivors := make([]int, 0, len(c.sites)-1)
	for i := range c.sites {
		if i != dead && !c.group.SiteDown(i) {
			survivors = append(survivors, i)
		}
	}
	if len(survivors) == 0 {
		return fmt.Errorf("core: failover of site %d: no surviving sites", dead)
	}

	// Union of selector metadata and log-reconstructed mastership.
	owned := make(map[uint64]struct{})
	for _, p := range c.group.MasteredBy(dead) {
		owned[p] = struct{}{}
	}
	for p, site := range sitemgr.RecoverMastership(c.broker, nil) {
		if site == dead {
			owned[p] = struct{}{}
		}
	}
	parts := make([]uint64, 0, len(owned))
	for p := range owned {
		parts = append(parts, p)
	}
	sort.Slice(parts, func(i, j int) bool { return parts[i] < parts[j] })

	// Survivors must catch up to everything the dead site published before
	// serving its partitions.
	relVV := vclock.New(len(c.sites))
	relVV[dead] = c.broker.Log(dead).LastUpdateSeq()

	// Re-grant shard by shard: each batch's fencing epoch comes from the
	// owning router shard's allocator (per-shard epochs are incomparable,
	// so a batch never mixes partitions of two shards), and each shard's
	// registrations land on that shard's map. With one shard this is the
	// original whole-cluster scatter unchanged.
	var firstErr error
	for si := 0; si < c.group.Shards(); si++ {
		shardParts := parts
		if c.group.Shards() > 1 {
			shardParts = shardParts[:0:0]
			for _, p := range parts {
				if c.group.ShardOf(p) == si {
					shardParts = append(shardParts, p)
				}
			}
		}
		if len(shardParts) == 0 {
			continue
		}
		if err := c.failoverShard(si, dead, shardParts, survivors, relVV); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	if firstErr != nil {
		return firstErr
	}
	// The dead site serves no replicas; shed it from every replica set (the
	// placement controller restores the factor on live sites over later
	// ticks). Metadata only — there is nothing to purge at a dead site.
	if dropped := c.group.DropSiteReplicas(dead); len(dropped) > 0 {
		obs.RecordEvent(obs.FlightPlacement, dead,
			"site %d shed from %d replica set(s) after failover", dead, len(dropped))
	}
	c.failedOver[dead] = true
	c.failovers.Add(1)
	c.obFailovers.Inc()
	obs.RecordEvent(obs.FlightFailover, dead,
		"site %d failed over: %d partition(s) re-mastered across %d survivor(s)",
		dead, len(parts), len(survivors))
	if _, err := obs.SnapshotFlight("failover"); err != nil {
		fmt.Fprintf(os.Stderr, "core: flight snapshot after failover: %v\n", err)
	}
	return nil
}

// failoverShard re-grants one router shard's slice of a dead site's
// partitions across the survivors. Scatter is round-robin, one grant batch
// per survivor. A batch whose preferred heir cannot take the grant (it
// died since the survivor scan, or its log append failed) falls back to
// the next survivor rather than failing the batch; a batch no survivor
// accepts leaves failedOver unset, and the heartbeat loop retries the
// failover — granted batches are already registered, so the retry covers
// only the remainder.
func (c *Cluster) failoverShard(si, dead int, parts []uint64, survivors []int, relVV vclock.Vector) error {
	sel := c.group.Shard(si)
	batches := make([][]uint64, len(survivors))
	for i, p := range parts {
		batches[i%len(survivors)] = append(batches[i%len(survivors)], p)
	}
	var firstErr error
	for bi, ids := range batches {
		if len(ids) == 0 {
			continue
		}
		granted := false
		var lastErr error
		for off := 0; off < len(survivors) && !granted; off++ {
			heir := survivors[(bi+off)%len(survivors)]
			if sel.SiteDown(heir) {
				continue
			}
			epoch, err := sel.AllocEpoch()
			if err != nil {
				// The shard lost its lease mid-failover (leadership handover
				// in flight). Leave the batch for the heartbeat retry, which
				// re-runs under the promoted leader.
				lastErr = fmt.Errorf("core: failover of site %d: %w", dead, err)
				break
			}
			// Partial replication: the heir must host a partition before
			// mastering it. Live replicas bootstrap the copy; when none of a
			// partition's replicas survived, the heir rebuilds from the
			// retained logs (see AddReplica).
			if err := c.ensureHostedAll(ids, heir); err != nil {
				lastErr = fmt.Errorf("core: failover replica add at site %d: %w", heir, err)
				continue
			}
			if _, err := c.sites[heir].Grant(ids, relVV, dead, epoch); err != nil {
				lastErr = fmt.Errorf("core: failover grant to site %d: %w", heir, err)
				continue
			}
			for _, p := range ids {
				sel.RegisterPartitionEpoch(p, heir, epoch)
			}
			// Replica caches still point the batch at the dead site; push
			// the heir proactively so replicas stop routing there now
			// instead of waiting for each cached entry's ErrNotMaster
			// bounce off a site that can no longer answer at all.
			c.repls[si].LearnAll(ids, heir)
			granted = true
		}
		if !granted && firstErr == nil {
			if lastErr == nil {
				lastErr = fmt.Errorf("core: failover of site %d: no live heir", dead)
			}
			firstErr = lastErr
		}
	}
	return firstErr
}
