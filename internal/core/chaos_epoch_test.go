package core

import (
	"testing"
	"time"

	"dynamast/internal/wal"
)

// TestChaosEpochKillSiteMidRun reruns the seed-42 chaos scenario — injected
// wire faults, a site killed mid-run, heartbeat failover — with epoch
// group-commit enabled, so the kill lands mid-epoch at some site. The
// shared runner asserts the SI/SSSI invariants (no torn pairs, monotonic
// sessions, exact commit accounting); afterwards every site's log is
// scanned to prove the remaster fence held: no epoch or update frame
// writes a partition after the origin released it and before it was
// granted back.
func TestChaosEpochKillSiteMidRun(t *testing.T) {
	c, inj, _ := newChaosCluster(t, func(cfg *Config) {
		cfg.EpochInterval = 2 * time.Millisecond
	})
	runChaosKillSiteMidRun(t, c, inj)

	epochs := 0
	for i := range c.Sites() {
		l := c.Broker().Log(i)
		released := map[uint64]bool{}
		for off := l.Base(); off < l.Len(); off++ {
			e, ok := l.Get(off)
			if !ok {
				continue
			}
			switch e.Kind {
			case wal.KindRelease:
				for _, p := range e.Partitions {
					released[p] = true
				}
			case wal.KindGrant:
				for _, p := range e.Partitions {
					released[p] = false
				}
			case wal.KindEpoch:
				epochs++
				for _, m := range e.Txns {
					for _, w := range m.Writes {
						if p := partitionBy100(w.Ref); released[p] {
							t.Fatalf("site %d offset %d: epoch writes partition %d after its release", i, off, p)
						}
					}
				}
			case wal.KindUpdate:
				t.Fatalf("site %d offset %d: per-txn update logged with epochs enabled", i, off)
			}
		}
	}
	if epochs == 0 {
		t.Fatal("chaos run logged no epoch frames")
	}
}
