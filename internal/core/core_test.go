package core

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"dynamast/internal/selector"
	"dynamast/internal/storage"
	"dynamast/internal/systems"
	"dynamast/internal/transport"
)

func partitionBy100(ref storage.RowRef) uint64 { return ref.Key / 100 }

func ref(key uint64) storage.RowRef { return storage.RowRef{Table: "kv", Key: key} }

func newTestCluster(t *testing.T, m int) *Cluster {
	t.Helper()
	c, err := NewCluster(Config{
		Sites:       m,
		Partitioner: partitionBy100,
		Weights:     selector.YCSBWeights(),
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)
	c.CreateTable("kv")
	rows := make([]systems.LoadRow, 0, 1000)
	for k := uint64(0); k < 1000; k++ {
		rows = append(rows, systems.LoadRow{Ref: ref(k), Data: []byte{byte(k)}})
	}
	c.Load(rows)
	return c
}

func TestNewClusterValidation(t *testing.T) {
	if _, err := NewCluster(Config{Partitioner: partitionBy100}); err == nil {
		t.Error("zero sites accepted")
	}
	if _, err := NewCluster(Config{Sites: 2}); err == nil {
		t.Error("missing partitioner accepted")
	}
}

func TestLoadVisibleEverywhere(t *testing.T) {
	c := newTestCluster(t, 3)
	for _, s := range c.Sites() {
		if data, ok := s.ReadLocal(ref(42)); !ok || data[0] != 42 {
			t.Fatalf("site %d: loaded row unreadable: %v %v", s.ID(), data, ok)
		}
	}
	// Partition 0's initial master under the default scatter is site 0
	// (hash of 0), and only that site may own it.
	if !c.Sites()[0].Masters(0) || c.Sites()[1].Masters(0) {
		t.Fatal("initial mastership inconsistent")
	}
}

func TestUpdateAndReadOwnWrite(t *testing.T) {
	c := newTestCluster(t, 2)
	sess := c.Session(1)
	ws := []storage.RowRef{ref(1), ref(2)}
	err := sess.Update(ws, func(tx systems.Tx) error {
		if err := tx.Write(ref(1), []byte("a")); err != nil {
			return err
		}
		return tx.Write(ref(2), []byte("b"))
	})
	if err != nil {
		t.Fatal(err)
	}
	// Session freshness: the next read must see the update regardless of
	// which replica serves it.
	err = sess.Read(func(tx systems.Tx) error {
		if data, ok := tx.Read(ref(1)); !ok || string(data) != "a" {
			return fmt.Errorf("read own write: %q %v", data, ok)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := c.Stats().Commits; got != 1 {
		t.Fatalf("commits = %d", got)
	}
}

func TestSessionOrderAcrossSites(t *testing.T) {
	// Strong-session SI: a session's reads always reflect its writes even
	// when repeatedly routed to random replicas.
	c := newTestCluster(t, 4)
	sess := c.Session(1)
	for i := 0; i < 20; i++ {
		val := []byte{byte(i)}
		if err := sess.Update([]storage.RowRef{ref(7)}, func(tx systems.Tx) error {
			return tx.Write(ref(7), val)
		}); err != nil {
			t.Fatal(err)
		}
		if err := sess.Read(func(tx systems.Tx) error {
			data, ok := tx.Read(ref(7))
			if !ok || data[0] != byte(i) {
				return fmt.Errorf("iteration %d: stale read %v %v", i, data, ok)
			}
			return nil
		}); err != nil {
			t.Fatal(err)
		}
	}
}

func TestCrossPartitionUpdateRemasters(t *testing.T) {
	c := newTestCluster(t, 2)
	// First scatter mastership: pairs of partitions end up apart only if
	// we force it — move partition 5 to site 1 directly.
	s0, s1 := c.Sites()[0], c.Sites()[1]
	rel, err := s0.Release([]uint64{5}, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s1.Grant([]uint64{5}, rel, 0, 0); err != nil {
		t.Fatal(err)
	}
	c.Selector().RegisterPartition(5, 1)

	sess := c.Session(1)
	ws := []storage.RowRef{ref(10), ref(510)} // partitions 0 and 5
	if err := sess.Update(ws, func(tx systems.Tx) error {
		tx.Write(ref(10), []byte("x"))
		return tx.Write(ref(510), []byte("y"))
	}); err != nil {
		t.Fatal(err)
	}
	if got := c.Stats().Remasters; got != 1 {
		t.Fatalf("remasters = %d", got)
	}
	// Both partitions co-located now; a second identical update needs none.
	if err := sess.Update(ws, func(tx systems.Tx) error {
		return tx.Write(ref(10), []byte("x2"))
	}); err != nil {
		t.Fatal(err)
	}
	if got := c.Stats().Remasters; got != 1 {
		t.Fatalf("remasters after amortized txn = %d", got)
	}
}

func TestUpdateFnErrorAborts(t *testing.T) {
	c := newTestCluster(t, 2)
	sess := c.Session(1)
	boom := errors.New("boom")
	err := sess.Update([]storage.RowRef{ref(1)}, func(tx systems.Tx) error {
		tx.Write(ref(1), []byte("garbage"))
		return boom
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v", err)
	}
	if err := sess.Read(func(tx systems.Tx) error {
		if data, _ := tx.Read(ref(1)); string(data) == "garbage" {
			return errors.New("aborted write visible")
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if got := c.Stats().Commits; got != 0 {
		t.Fatalf("commits = %d", got)
	}
}

func TestConcurrentSessionsDisjointKeys(t *testing.T) {
	c := newTestCluster(t, 4)
	var wg sync.WaitGroup
	errs := make(chan error, 16)
	for cl := 0; cl < 8; cl++ {
		wg.Add(1)
		go func(cl int) {
			defer wg.Done()
			sess := c.Session(cl)
			for i := 0; i < 25; i++ {
				k := uint64(cl*100 + i) // client-private partition
				if err := sess.Update([]storage.RowRef{ref(k)}, func(tx systems.Tx) error {
					return tx.Write(ref(k), []byte{byte(i)})
				}); err != nil {
					errs <- err
					return
				}
			}
		}(cl)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if got := c.Stats().Commits; got != 200 {
		t.Fatalf("commits = %d", got)
	}
}

func TestConcurrentSessionsContendedKeys(t *testing.T) {
	// All clients hammer the same two partitions from all sites; lost
	// updates are impossible under the mastership discipline: the final
	// counter equals the number of successful increments.
	c := newTestCluster(t, 3)
	const clients, iters = 6, 20
	var wg sync.WaitGroup
	for cl := 0; cl < clients; cl++ {
		wg.Add(1)
		go func(cl int) {
			defer wg.Done()
			sess := c.Session(cl)
			for i := 0; i < iters; i++ {
				err := sess.Update([]storage.RowRef{ref(0), ref(100)}, func(tx systems.Tx) error {
					for _, r := range []storage.RowRef{ref(0), ref(100)} {
						cur, _ := tx.Read(r)
						var n uint64
						if len(cur) == 8 {
							for b := 0; b < 8; b++ {
								n = n<<8 | uint64(cur[b])
							}
						}
						n++
						buf := make([]byte, 8)
						for b := 0; b < 8; b++ {
							buf[b] = byte(n >> (56 - 8*b))
						}
						if err := tx.Write(r, buf); err != nil {
							return err
						}
					}
					return nil
				})
				if err != nil {
					panic(err)
				}
			}
		}(cl)
	}
	wg.Wait()
	if err := c.WaitQuiesced(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	sess := c.Session(99)
	err := sess.Read(func(tx systems.Tx) error {
		for _, r := range []storage.RowRef{ref(0), ref(100)} {
			data, ok := tx.Read(r)
			if !ok {
				return fmt.Errorf("counter %v missing", r)
			}
			var n uint64
			for b := 0; b < 8; b++ {
				n = n<<8 | uint64(data[b])
			}
			if n != clients*iters {
				return fmt.Errorf("counter %v = %d, want %d (lost updates)", r, n, clients*iters)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestScansRunAtReplicas(t *testing.T) {
	c := newTestCluster(t, 2)
	sess := c.Session(1)
	err := sess.Read(func(tx systems.Tx) error {
		rows := tx.Scan("kv", 100, 110)
		if len(rows) != 10 {
			return fmt.Errorf("scan rows = %d", len(rows))
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := c.Stats().Remasters; got != 0 {
		t.Fatal("read-only scan triggered remastering")
	}
}

func TestBreakdownAccumulates(t *testing.T) {
	c := newTestCluster(t, 2)
	sess := c.Session(1)
	for i := 0; i < 5; i++ {
		if err := sess.Update([]storage.RowRef{ref(1)}, func(tx systems.Tx) error {
			return tx.Write(ref(1), []byte("x"))
		}); err != nil {
			t.Fatal(err)
		}
	}
	bd := c.Breakdown()
	if bd.Count != 5 {
		t.Fatalf("breakdown count = %d", bd.Count)
	}
	if bd.Logic <= 0 || bd.Commit <= 0 {
		t.Fatalf("breakdown = %+v", bd)
	}
}

func TestNetworkChargedPerCategory(t *testing.T) {
	c, err := NewCluster(Config{
		Sites:       2,
		Partitioner: partitionBy100,
		Network:     transport.Config{OneWay: 100 * time.Microsecond},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	c.CreateTable("kv")
	c.Load([]systems.LoadRow{{Ref: ref(1), Data: []byte("v")}})

	sess := c.Session(1)
	start := time.Now()
	if err := sess.Update([]storage.RowRef{ref(1)}, func(tx systems.Tx) error {
		return tx.Write(ref(1), []byte("w"))
	}); err != nil {
		t.Fatal(err)
	}
	// Route round trip + txn round trip = 4 one-way messages >= 400µs.
	if d := time.Since(start); d < 400*time.Microsecond {
		t.Fatalf("update took %v; network latency not charged", d)
	}
	var route, txn uint64
	for _, s := range c.Network().Stats() {
		switch s.Category {
		case transport.CatRoute:
			route = s.Messages
		case transport.CatTxn:
			txn = s.Messages
		}
	}
	if route != 2 || txn != 2 {
		t.Fatalf("route msgs = %d, txn msgs = %d", route, txn)
	}
}

func TestWaitQuiesced(t *testing.T) {
	c := newTestCluster(t, 3)
	sess := c.Session(1)
	for i := 0; i < 10; i++ {
		if err := sess.Update([]storage.RowRef{ref(uint64(i))}, func(tx systems.Tx) error {
			return tx.Write(ref(uint64(i)), []byte("x"))
		}); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.WaitQuiesced(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	svv0 := c.Sites()[0].SVV()
	for _, s := range c.Sites() {
		if !s.SVV().DominatesEq(svv0) {
			t.Fatalf("site %d not quiesced: %v vs %v", s.ID(), s.SVV(), svv0)
		}
	}
}

func TestDurableClusterRecovery(t *testing.T) {
	dir := t.TempDir()
	cfg := Config{
		Sites:       2,
		Partitioner: partitionBy100,
		WALDir:      dir,
	}
	c, err := NewCluster(cfg)
	if err != nil {
		t.Fatal(err)
	}
	c.CreateTable("kv")
	c.Load([]systems.LoadRow{{Ref: ref(1), Data: []byte("init")}})
	sess := c.Session(1)
	if err := sess.Update([]storage.RowRef{ref(1)}, func(tx systems.Tx) error {
		return tx.Write(ref(1), []byte("durable"))
	}); err != nil {
		t.Fatal(err)
	}
	if err := c.WaitQuiesced(5 * time.Second); err != nil {
		t.Fatal(err)
	}
	c.Close()

	// Restart: logs replay; recover site state from the redo logs.
	c2, err := NewCluster(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	c2.CreateTable("kv")
	for _, s := range c2.Sites() {
		if err := s.RecoverLocal(); err != nil {
			t.Fatal(err)
		}
	}
	s0 := c2.Sites()[0]
	if data, ok := s0.ReadLocal(storage.RowRef{Table: "kv", Key: 1}); !ok || string(data) != "durable" {
		t.Fatalf("recovered read = %q %v", data, ok)
	}
}

func TestSelectorReplicasEndToEnd(t *testing.T) {
	c, err := NewCluster(Config{
		Sites:            2,
		Partitioner:      partitionBy100,
		SelectorReplicas: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)
	c.CreateTable("kv")
	rows := make([]systems.LoadRow, 0, 400)
	for k := uint64(0); k < 400; k++ {
		rows = append(rows, systems.LoadRow{Ref: ref(k), Data: []byte{byte(k)}})
	}
	c.Load(rows)
	if len(c.SelectorReplicas()) != 2 {
		t.Fatalf("replica tier size = %d", len(c.SelectorReplicas()))
	}

	// Two sessions on different replicas update overlapping partitions:
	// replica A's remastering makes replica B's cache stale; B's client
	// must transparently fall back to the master and succeed.
	sessA := c.Session(0) // replica 0
	sessB := c.Session(1) // replica 1
	ws := []storage.RowRef{ref(10), ref(110)}
	for i := 0; i < 10; i++ {
		if err := sessA.Update(ws, func(tx systems.Tx) error {
			return tx.Write(ref(10), []byte{byte(i)})
		}); err != nil {
			t.Fatal(err)
		}
		// B writes a set that overlaps A's partitions plus a third one,
		// forcing remastering that invalidates A's cached locations.
		wsB := []storage.RowRef{ref(110), ref(uint64(200 + i*10))}
		if err := sessB.Update(wsB, func(tx systems.Tx) error {
			return tx.Write(ref(110), []byte{byte(i + 100)})
		}); err != nil {
			t.Fatal(err)
		}
	}
	// Both sessions read their own writes (SSSI held through fallbacks).
	if err := sessA.Read(func(tx systems.Tx) error {
		d, ok := tx.Read(ref(10))
		if !ok || d[0] != 9 {
			return fmt.Errorf("A read %v %v", d, ok)
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if err := sessB.Read(func(tx systems.Tx) error {
		d, ok := tx.Read(ref(110))
		if !ok || d[0] != 109 {
			return fmt.Errorf("B read %v %v", d, ok)
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if got := c.Stats().Commits; got != 20 {
		t.Fatalf("commits = %d", got)
	}
}
