package core

import (
	"testing"
	"time"

	"dynamast/internal/obs"
	"dynamast/internal/storage"
	"dynamast/internal/systems"
)

// BenchmarkUpdateTxnTracing measures the update-transaction hot path with
// the observability tentpole at three settings — tracing disabled (the
// default every benchmark and Fig4a run uses), 1-in-16 head sampling with a
// running SLO engine, and every-transaction sampling — pinning the
// acceptance bound that the disabled path costs nothing and the sampled
// paths stay within noise of it.
func BenchmarkUpdateTxnTracing(b *testing.B) {
	for _, mode := range []struct {
		name   string
		sample int
		slo    bool
	}{
		{"off", 0, false},
		{"sampled-16", 16, true},
		{"sampled-1", 1, true},
	} {
		b.Run(mode.name, func(b *testing.B) {
			cfg := Config{
				Sites:            4,
				Partitioner:      partitionBy100,
				TraceSampleEvery: mode.sample,
			}
			if mode.slo {
				cfg.SLOTargets = []obs.SLOTarget{{
					Metric: "dynamast_txn_seconds", Labels: []obs.Label{obs.L("type", "update")},
					Quantile: 0.99, Threshold: time.Second,
				}}
				cfg.SLOInterval = 10 * time.Millisecond
			}
			c, err := NewCluster(cfg)
			if err != nil {
				b.Fatal(err)
			}
			defer c.Close()
			c.CreateTable("kv")
			var rows []systems.LoadRow
			for k := uint64(0); k < 1000; k++ {
				rows = append(rows, systems.LoadRow{Ref: ref(k), Data: []byte{0}})
			}
			c.Load(rows)
			sess := c.Session(1)
			key := ref(7)
			ws := []storage.RowRef{key}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := sess.Update(ws, func(tx systems.Tx) error {
					return tx.Write(key, []byte{byte(i)})
				}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
