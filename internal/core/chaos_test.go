package core

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"time"

	"dynamast/internal/selector"
	"dynamast/internal/storage"
	"dynamast/internal/systems"
	"dynamast/internal/transport"
)

// Chaos test: a 4-site cluster runs a pair-invariant workload under injected
// wire faults, loses a site mid-run, and must (a) detect the failure over
// heartbeats and fail over within a bounded window, (b) keep every snapshot
// consistent (no torn pairs) and every session monotonic throughout, (c)
// abort in-flight transactions at the dead site retryably rather than hang,
// and (d) recover throughput: the workload completes and a post-failover
// burst commits promptly on the survivors.

// newChaosCluster builds a 4-site cluster with a deterministic fault
// injector (fixed seed) and a fast heartbeat failure detector. mutate, when
// non-nil, adjusts the config before the cluster starts (e.g. to add
// durability and background checkpointing).
func newChaosCluster(t *testing.T, mutate func(*Config)) (*Cluster, *transport.Injector, Config) {
	t.Helper()
	inj := transport.NewInjector(42)
	// Jitter on the transaction wire; drops and errors on the remaster
	// RPCs so release/grant chains exercise retry + rollback.
	inj.SetRules(
		transport.Rule{Category: transport.CatTxn, Kind: transport.FaultDelay, Prob: 0.2, Delay: 100 * time.Microsecond},
		transport.Rule{Category: transport.CatRemaster, Kind: transport.FaultDrop, Prob: 0.05},
		transport.Rule{Category: transport.CatRemaster, Kind: transport.FaultError, Prob: 0.05},
	)
	cfg := Config{
		Sites:       4,
		Partitioner: partitionBy100,
		Weights:     selector.YCSBWeights(),
		Faults:      inj,
		FailureDetection: FailureDetectionConfig{
			Interval: 2 * time.Millisecond,
			Misses:   3,
		},
	}
	if mutate != nil {
		mutate(&cfg)
	}
	c, err := NewCluster(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)
	c.CreateTable("kv")
	rows := make([]systems.LoadRow, 0, 1000)
	for k := uint64(0); k < 1000; k++ {
		rows = append(rows, systems.LoadRow{Ref: ref(k), Data: []byte{byte(k)}})
	}
	c.Load(rows)
	return c, inj, cfg
}

func TestChaosKillSiteMidRun(t *testing.T) {
	c, inj, _ := newChaosCluster(t, nil)
	runChaosKillSiteMidRun(t, c, inj)
}

// The same seed-42 chaos run with a durable WAL and an aggressive background
// checkpointer racing the workload, the injected faults and the failover —
// then a crash-restart that must recover from a checkpoint and reproduce the
// exact pre-crash audit state.
func TestChaosKillSiteMidRunCheckpointed(t *testing.T) {
	dir := t.TempDir()
	c, inj, cfg := newChaosCluster(t, func(cfg *Config) {
		cfg.WALDir = dir
		cfg.CheckpointEvery = 10 * time.Millisecond
		cfg.CheckpointEveryRecords = 500
	})
	initial := map[uint64]int{}
	for p := uint64(0); p < 10; p++ {
		initial[p] = c.Selector().MasterOf(p)
	}
	total := runChaosKillSiteMidRun(t, c, inj)
	c.Close()

	// Restart on the surviving files (no faults — the chaos already
	// happened) and re-audit: recovery must come from a checkpoint and land
	// on the identical pair state.
	cfg.Faults = nil
	cfg.FailureDetection = FailureDetectionConfig{}
	cfg.CheckpointEvery, cfg.CheckpointEveryRecords = 0, 0
	c2, err := NewCluster(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c2.Close)
	c2.CreateTable("kv")
	if err := c2.Recover(initial); err != nil {
		t.Fatal(err)
	}
	st := c2.LastRecovery()
	if !st.UsedCheckpoint {
		t.Fatalf("restart did not use a checkpoint: %+v", st)
	}
	if err := c2.WaitQuiesced(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	if got := auditPairs(t, c2, chaosPairs); got != total {
		t.Fatalf("recovered counter mass %d, want %d", got, total)
	}
}

const chaosPairs = 8

// auditPairs checks every pair is intact (both halves equal in one
// snapshot) and returns the summed counter mass.
func auditPairs(t *testing.T, c *Cluster, pairs uint64) int {
	t.Helper()
	audit := c.Session(999)
	total := 0
	for p := uint64(0); p < pairs; p++ {
		err := audit.Read(func(tx systems.Tx) error {
			av, _ := tx.Read(ref(p))
			bv, _ := tx.Read(ref(p + 500))
			var an, bn byte
			if len(av) > 0 {
				an = av[0]
			}
			if len(bv) > 0 {
				bn = bv[0]
			}
			if an != bn {
				return fmt.Errorf("final pair %d torn: %d != %d", p, an, bn)
			}
			total += int(an)
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	return total
}

// runChaosKillSiteMidRun drives the chaos workload against c and returns
// the final audited counter mass.
func runChaosKillSiteMidRun(t *testing.T, c *Cluster, inj *transport.Injector) int {
	t.Helper()
	const (
		pairs   = chaosPairs
		workers = 6
		iters   = 40
		victim  = 2
	)

	// Seed every pair once so both halves are equal before readers start
	// (the loaded values differ by construction).
	setup := c.Session(500)
	for p := uint64(0); p < pairs; p++ {
		a, b := ref(p), ref(p+500)
		if err := setup.Update([]storage.RowRef{a, b}, func(tx systems.Tx) error {
			av, _ := tx.Read(a)
			if err := tx.Write(a, []byte{av[0] + 1}); err != nil {
				return err
			}
			return tx.Write(b, []byte{av[0] + 1})
		}); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.WaitQuiesced(10 * time.Second); err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	stop := make(chan struct{})
	var stopOnce sync.Once
	stopAll := func() { stopOnce.Do(func() { close(stop) }) }
	violations := make(chan string, 64)

	// Writers: atomic pair increments. Session.Update retries transient
	// faults internally, so any surfaced error is a real failure.
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			sess := c.Session(w)
			for i := 0; i < iters; i++ {
				p := uint64(rng.Intn(pairs))
				a, b := ref(p), ref(p+500)
				err := sess.Update([]storage.RowRef{a, b}, func(tx systems.Tx) error {
					av, _ := tx.Read(a)
					n := byte(0)
					if len(av) > 0 {
						n = av[0]
					}
					if err := tx.Write(a, []byte{n + 1}); err != nil {
						return err
					}
					return tx.Write(b, []byte{n + 1})
				})
				if err != nil {
					violations <- fmt.Sprintf("writer %d: %v", w, err)
					return
				}
			}
		}(w)
	}

	// Readers: both halves of a pair must be equal in every snapshot, site
	// failure or not.
	for r := 0; r < 3; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(100 + r)))
			sess := c.Session(100 + r)
			for {
				select {
				case <-stop:
					return
				default:
				}
				p := uint64(rng.Intn(pairs))
				a, b := ref(p), ref(p+500)
				err := sess.Read(func(tx systems.Tx) error {
					av, _ := tx.Read(a)
					bv, _ := tx.Read(b)
					var an, bn byte
					if len(av) > 0 {
						an = av[0]
					}
					if len(bv) > 0 {
						bn = bv[0]
					}
					if an != bn {
						return fmt.Errorf("pair %d torn: %d != %d", p, an, bn)
					}
					return nil
				})
				if err != nil {
					violations <- fmt.Sprintf("reader %d: %v", r, err)
					return
				}
			}
		}(r)
	}

	// Kill the victim once roughly a third of the workload has committed.
	killTarget := uint64(pairs + workers*iters/3)
	killDeadline := time.Now().Add(30 * time.Second)
	for uint64(c.Stats().Commits) < killTarget {
		if time.Now().After(killDeadline) {
			stopAll()
			t.Fatal("workload never reached the kill threshold")
		}
		time.Sleep(time.Millisecond)
	}
	killedAt := time.Now()
	c.KillSite(victim)

	// The heartbeat detector must notice and complete the failover within a
	// bounded window (interval 2ms x 3 misses, plus the re-grant itself).
	for c.Failovers() == 0 {
		if time.Since(killedAt) > 5*time.Second {
			stopAll()
			t.Fatal("failover did not complete within 5s of the kill")
		}
		time.Sleep(time.Millisecond)
	}
	failoverWindow := time.Since(killedAt)
	t.Logf("failover window: %v", failoverWindow)
	if !c.Selector().SiteDown(victim) {
		t.Fatal("selector does not mark the killed site down")
	}

	// All writers must finish despite the failure — no hung transactions.
	done := make(chan struct{})
	go func() {
		wg.Wait()
		close(done)
	}()
	writersDone := make(chan struct{})
	go func() {
		for c.Stats().Commits < workers*iters+pairs {
			select {
			case <-done:
				close(writersDone)
				return
			case <-time.After(5 * time.Millisecond):
			}
		}
		stopAll()
		<-done
		close(writersDone)
	}()
	select {
	case v := <-violations:
		stopAll()
		t.Fatalf("consistency violation: %s", v)
	case <-writersDone:
	case <-time.After(60 * time.Second):
		t.Fatal("workload hung after site failure")
	}
	select {
	case v := <-violations:
		t.Fatalf("consistency violation: %s", v)
	default:
	}

	// Throughput recovery: a fresh burst of updates commits promptly on the
	// survivors.
	burst := c.Session(900)
	burstStart := time.Now()
	for i := 0; i < 50; i++ {
		p := uint64(i % pairs)
		a, b := ref(p), ref(p+500)
		if err := burst.Update([]storage.RowRef{a, b}, func(tx systems.Tx) error {
			av, _ := tx.Read(a)
			if err := tx.Write(a, []byte{av[0] + 1}); err != nil {
				return err
			}
			return tx.Write(b, []byte{av[0] + 1})
		}); err != nil {
			t.Fatalf("post-failover update %d: %v", i, err)
		}
	}
	if d := time.Since(burstStart); d > 10*time.Second {
		t.Fatalf("post-failover burst took %v", d)
	}

	// Final audit on the survivors: every pair intact, counter mass matches
	// the committed increments (each commit adds exactly 1 to one pair).
	if err := c.WaitQuiesced(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	commits := c.Stats().Commits
	if commits != pairs+workers*iters+50 {
		t.Fatalf("commits = %d, want %d", commits, pairs+workers*iters+50)
	}
	total := auditPairs(t, c, pairs)
	expected := 0 // seeds leave counter p at byte(p)+1
	for p := uint64(0); p < pairs; p++ {
		expected += int(byte(p)) + 1
	}
	// Every non-seed commit added 1 to some pair counter (mod 256 wrap is
	// impossible here: max counter value is 7+1+290 < 256... keep the bound
	// conservative instead of exact since increments scatter over pairs).
	if total < expected || total > expected+workers*iters+50 {
		t.Fatalf("counter mass %d outside [%d, %d]", total, expected, expected+workers*iters+50)
	}

	// The run actually exercised the fault machinery.
	if inj.InjectedTotal() == 0 {
		t.Fatal("no faults were injected")
	}
	if got := c.Failovers(); got != 1 {
		t.Fatalf("failovers = %d, want 1", got)
	}
	return total
}

// TestChaosManualFailoverRecoversMastership drives Failover directly (no
// heartbeat) and checks the dead site's partitions land on survivors and
// writes to them succeed.
func TestChaosManualFailoverRecoversMastership(t *testing.T) {
	c := newTestCluster(t, 4)
	victim := 1
	owned := c.Selector().MasteredBy(victim)
	if len(owned) == 0 {
		t.Skip("victim owns nothing under this scatter")
	}
	c.KillSite(victim)
	if err := c.Failover(victim); err != nil {
		t.Fatal(err)
	}
	// Idempotent: a second call (detector racing a manual one) is a no-op.
	if err := c.Failover(victim); err != nil {
		t.Fatal(err)
	}
	if got := c.Failovers(); got != 1 {
		t.Fatalf("failovers = %d, want 1", got)
	}
	for _, p := range owned {
		if len(c.Selector().MasteredBy(victim)) != 0 {
			t.Fatalf("partition %d still mastered by dead site", p)
		}
	}
	// Writes to the orphaned partitions must succeed on the new masters.
	sess := c.Session(7)
	for _, p := range owned {
		key := ref(p * 100)
		if err := sess.Update([]storage.RowRef{key}, func(tx systems.Tx) error {
			return tx.Write(key, []byte("moved"))
		}); err != nil {
			t.Fatalf("write to failed-over partition %d: %v", p, err)
		}
	}
}

// TestHeartbeatRetriesIncompleteFailover simulates a failover that died
// mid-way — the site is marked down but failedOver was never set (as when
// every grant leg failed transiently) — and checks the heartbeat loop picks
// the failover back up instead of skipping the down site forever.
func TestHeartbeatRetriesIncompleteFailover(t *testing.T) {
	c, err := NewCluster(Config{
		Sites:       4,
		Partitioner: partitionBy100,
		Weights:     selector.YCSBWeights(),
		FailureDetection: FailureDetectionConfig{
			Interval: 2 * time.Millisecond,
			Misses:   3,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)
	c.CreateTable("kv")
	rows := make([]systems.LoadRow, 0, 1000)
	for k := uint64(0); k < 1000; k++ {
		rows = append(rows, systems.LoadRow{Ref: ref(k), Data: []byte{byte(k)}})
	}
	c.Load(rows)

	victim := 2
	if len(c.Selector().MasteredBy(victim)) == 0 {
		t.Skip("victim owns nothing under this scatter")
	}
	c.KillSite(victim)
	c.Selector().MarkDown(victim) // down, but no failover ran
	deadline := time.Now().Add(5 * time.Second)
	for c.Failovers() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("heartbeat loop never completed the failover of a down site")
		}
		time.Sleep(time.Millisecond)
	}
	if got := len(c.Selector().MasteredBy(victim)); got != 0 {
		t.Fatalf("%d partitions still mastered at the dead site", got)
	}
	if !c.FailedOver(victim) {
		t.Fatal("failover not recorded complete")
	}
}

// TestFailoverFallsBackToLiveHeir kills a second site that the survivor
// scan still considers alive (its failure has not been detected yet); grant
// batches aimed at it must fall back to live survivors instead of failing
// the whole failover.
func TestFailoverFallsBackToLiveHeir(t *testing.T) {
	c := newTestCluster(t, 4)
	victim, unreliable := 2, 1
	owned := c.Selector().MasteredBy(victim)
	if len(owned) == 0 {
		t.Skip("victim owns nothing under this scatter")
	}
	c.KillSite(unreliable) // dead but not yet marked down
	c.KillSite(victim)
	if err := c.Failover(victim); err != nil {
		t.Fatalf("failover with one dead heir should fall back: %v", err)
	}
	if !c.FailedOver(victim) {
		t.Fatal("failover did not complete")
	}
	for _, p := range owned {
		m := c.Selector().MasterOf(p)
		if m == victim || m == unreliable {
			t.Fatalf("partition %d mastered at dead site %d", p, m)
		}
		if !c.Sites()[m].Masters(p) {
			t.Fatalf("partition %d: selector says %d but the site does not master it", p, m)
		}
	}
}
