package core

import (
	"fmt"

	"dynamast/internal/obs"
	"dynamast/internal/selector"
	"dynamast/internal/sitemgr"
)

// Replica placement: the cluster is the selector placement layer's
// ReplicaMover — it materializes replica-set decisions at the data sites.
// AddReplica follows the add protocol documented in sitemgr/hosting.go:
// flip the hosting filter first (capturing the exact cut vector), then copy
// the partition's rows as of the cut from a live replica, so the bootstrap
// copy and the (now-unfiltered) applier stream meet with no gap and no
// double-install. DropReplica removes routing metadata first — reads stop
// landing on the site before its rows purge.
//
// Moves serialize on placeMu: the controller, routing's ensure hook, and
// failover's heir materialization never interleave two moves of the same
// partition.

// AddReplica makes site a hosting replica of part, bootstrapping its rows
// from a live replica (or, when none survived, from the retained logs).
// Idempotent; implements selector.ReplicaMover.
func (c *Cluster) AddReplica(part uint64, site int) error {
	if site < 0 || site >= len(c.sites) {
		return fmt.Errorf("core: add replica: no such site %d", site)
	}
	c.placeMu.Lock()
	defer c.placeMu.Unlock()
	sel := c.group.ShardFor(part) // replica-set metadata lives on the owning shard
	if !sel.PartialPlacement() {
		return nil
	}
	tgt := c.sites[site]
	if !tgt.Alive() {
		return fmt.Errorf("core: add replica of partition %d: site %d: %w",
			part, site, sitemgr.ErrSiteDown)
	}
	if tgt.Hosts(part) {
		sel.AddReplicaMeta(part, site, "already hosted")
		return nil
	}
	cut := tgt.HostPartition(part)

	// Any live site already hosting part serves as the bootstrap source:
	// once its clock dominates the cut it holds every version visible there.
	src := -1
	for _, m := range sel.ReplicaSet(part) {
		if m != site && m >= 0 && m < len(c.sites) && c.sites[m].Alive() && c.sites[m].Hosts(part) {
			src = m
			break
		}
	}
	rows := 0
	from := "logs"
	if src >= 0 {
		srcSite := c.sites[src]
		srcSite.Clock().WaitDominatesEq(cut)
		// The wait returns unconditionally if the source dies mid-wait;
		// re-check before trusting its export.
		if srcSite.Alive() {
			rows = tgt.BootstrapPartitionFrom(srcSite, part, cut)
			from = fmt.Sprintf("site %d", src)
		} else {
			src = -1
		}
	}
	if src < 0 {
		rows = tgt.RebuildPartitionFromLogs(part, cut)
	}
	sel.AddReplicaMeta(part, site, fmt.Sprintf("bootstrap %d rows from %s", rows, from))
	obs.RecordEvent(obs.FlightPlacement, site,
		"partition %d: replica added (%d rows from %s)", part, rows, from)
	return nil
}

// DropReplica removes site from part's replica set and purges its resident
// rows. Refuses to drop the partition's master or shrink the set below the
// configured minimum. Implements selector.ReplicaMover.
func (c *Cluster) DropReplica(part uint64, site int) error {
	if site < 0 || site >= len(c.sites) {
		return fmt.Errorf("core: drop replica: no such site %d", site)
	}
	c.placeMu.Lock()
	defer c.placeMu.Unlock()
	sel := c.group.ShardFor(part)
	if !sel.PartialPlacement() {
		return nil
	}
	tgt := c.sites[site]
	// The site-level mastership flag is authoritative: a remaster chain that
	// just granted here may not have flipped selector metadata yet.
	if tgt.Masters(part) {
		return fmt.Errorf("core: drop replica: site %d masters partition %d", site, part)
	}
	// Metadata first: reads stop routing at this site before its rows go.
	if !sel.DropReplicaMeta(part, site, "policy drop") {
		return fmt.Errorf("core: drop replica: partition %d 's set at site %d is at minimum", part, site)
	}
	purged := 0
	if tgt.Alive() {
		purged = tgt.UnhostPartition(part)
	}
	obs.RecordEvent(obs.FlightPlacement, site,
		"partition %d: replica dropped (%d rows purged)", part, purged)
	return nil
}

// hostedIn reports whether site appears in a replica-set slice.
func hostedIn(set []int, site int) bool {
	for _, m := range set {
		if m == site {
			return true
		}
	}
	return false
}

// ensureHostedAll makes site a hosting replica of every partition in parts
// (routing's add-then-grant hook and failover's heir materialization).
func (c *Cluster) ensureHostedAll(parts []uint64, site int) error {
	for _, part := range parts {
		if err := c.AddReplica(part, site); err != nil {
			return err
		}
	}
	return nil
}

// Placement snapshots the cluster's replica placement: per-partition replica
// sets and masters, per-site residency, and the recent add/drop decision
// log. Under full replication only the masters and residency are populated.
func (c *Cluster) Placement() selector.PlacementInfo {
	info := c.group.PlacementInfo()
	info.Residency = make([]int, len(c.sites))
	for i, s := range c.sites {
		if s.Alive() {
			info.Residency[i] = s.ResidentPartitions()
		}
	}
	return info
}
