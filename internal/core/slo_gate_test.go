package core

import (
	"os"
	"testing"
	"time"

	"dynamast/internal/obs"
)

// TestChaosSLOGateSeed42 is the CI SLO gate: the deterministic seed-42 chaos
// run (site kill, injected faults, failover) executes under watched latency
// SLOs and distributed trace sampling, and the build fails if any SLO
// breaches. The thresholds are generous — they catch pathological stalls
// (hung remaster chains, runaway commit latency), not CI jitter.
//
// Gated behind DYNAMAST_SLO_GATE=1 so the ordinary test run stays fast;
// DYNAMAST_FLIGHT_DIR, when set, receives flight-recorder snapshots that CI
// uploads as a postmortem artifact on failure.
func TestChaosSLOGateSeed42(t *testing.T) {
	if os.Getenv("DYNAMAST_SLO_GATE") == "" {
		t.Skip("set DYNAMAST_SLO_GATE=1 to run the SLO-gated chaos smoke")
	}
	flightDir := os.Getenv("DYNAMAST_FLIGHT_DIR")

	seqBefore := obs.FlightEventCount()
	c, inj, _ := newChaosCluster(t, func(cfg *Config) {
		cfg.TraceSampleEvery = 16 // tracing on: the gate measures the traced system
		cfg.SLOTargets = []obs.SLOTarget{
			{Metric: "dynamast_txn_seconds", Labels: []obs.Label{obs.L("type", "update")},
				Quantile: 0.99, Threshold: 5 * time.Second},
			{Metric: "dynamast_remaster_seconds", Quantile: 0.99, Threshold: 5 * time.Second},
		}
		cfg.SLOInterval = 50 * time.Millisecond
		cfg.FlightDir = flightDir
	})
	runChaosKillSiteMidRun(t, c, inj)

	// Close the final window, then gate.
	c.SLO().Evaluate()
	if n := c.SLO().TotalBreaches(); n > 0 {
		if flightDir != "" {
			if path, err := obs.SnapshotFlight("slo-gate"); err == nil {
				t.Logf("flight snapshot: %s", path)
			}
		}
		for _, ev := range obs.FlightEvents() {
			if ev.Kind == obs.FlightSLOBreach && ev.Seq > seqBefore {
				t.Errorf("breach: %s", ev.Msg)
			}
		}
		t.Fatalf("SLO gate: %d breach(es) during the seed-42 chaos run", n)
	}

	// The run must actually have exercised the observability tentpole: the
	// sampler produced traces, and the flight recorder captured the failover
	// and the injected faults.
	if traces, spans, _ := c.Spans().Counts(); traces == 0 || spans == 0 {
		t.Fatalf("1-in-16 sampling recorded (%d traces, %d spans) over the chaos run", traces, spans)
	}
	var sawFailover, sawFault bool
	for _, ev := range obs.FlightEvents() {
		if ev.Seq <= seqBefore {
			continue
		}
		switch ev.Kind {
		case obs.FlightFailover:
			sawFailover = true
		case obs.FlightFaultInject:
			sawFault = true
		}
	}
	if !sawFailover {
		t.Error("flight recorder missed the failover")
	}
	if !sawFault {
		t.Error("flight recorder missed the injected faults")
	}
	if flightDir != "" {
		entries, err := os.ReadDir(flightDir)
		if err != nil || len(entries) == 0 {
			t.Errorf("no flight snapshot written to %s (err=%v)", flightDir, err)
		}
	}
}
