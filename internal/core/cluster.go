// Package core assembles DynaMast: a site selector, m replicating data
// sites, and per-site durable update logs, exposed through client sessions
// that guarantee strong-session snapshot isolation. It is the paper's
// primary contribution (§V) built on the substrates in internal/.
package core

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"dynamast/internal/codec"
	"dynamast/internal/obs"
	"dynamast/internal/selector"
	"dynamast/internal/sitemgr"
	"dynamast/internal/storage"
	"dynamast/internal/systems"
	"dynamast/internal/transport"
	"dynamast/internal/wal"
)

// Config describes a DynaMast cluster.
type Config struct {
	// Sites is the number of data sites (m).
	Sites int
	// Partitioner maps rows to partition groups; required.
	Partitioner sitemgr.Partitioner
	// Weights are the remastering-strategy hyperparameters; zero value
	// means selector.YCSBWeights.
	Weights selector.Weights
	// Network configures the simulated wire; zero value means free
	// (transport.Instant) — benchmarks use transport.DefaultConfig.
	Network transport.Config
	// InitialMaster seeds partition placement; nil scatters partitions
	// pseudo-randomly across the sites (the paper gives DynaMast no
	// curated initial placement — its strategies must organize mastership
	// themselves).
	InitialMaster func(part uint64) int
	// MaxVersions caps record version chains (0 = 4, the paper default).
	MaxVersions int
	// Stats tunes the selector's statistics tracking.
	Stats selector.StatsConfig
	// WALDir, when set, makes the update logs file-backed (durability and
	// crash recovery); empty keeps them in memory. Checkpoints live under
	// the same directory.
	WALDir string
	// CheckpointEvery, when positive (and WALDir is set), runs a background
	// checkpointer at this interval. Each checkpoint snapshots every site's
	// store, records WAL replay offsets in a manifest, and truncates the
	// covered log prefix, bounding both restart time and disk usage.
	CheckpointEvery time.Duration
	// CheckpointEveryRecords additionally triggers a checkpoint whenever
	// this many new WAL records have accumulated since the last one
	// (0 disables the record-count trigger).
	CheckpointEveryRecords uint64
	// ExecSlots is each site's execution parallelism (0 = default).
	ExecSlots int
	// EpochInterval is the epoch group-commit seal interval. Zero means the
	// default (sitemgr.DefaultEpochInterval); negative disables epochs and
	// restores per-transaction commit records. Use WithEpochInterval.
	EpochInterval time.Duration
	// Costs prices transactional work (zero = free; benchmarks use
	// sitemgr.DefaultCostModel).
	Costs sitemgr.CostModel
	// SelectorReplicas adds replica site-selectors (Appendix I): clients
	// are assigned to replicas round-robin; single-sited write sets route
	// locally at the replica and only remastering decisions reach the
	// master selector. 0 keeps the stand-alone selector.
	SelectorReplicas int
	// SelectorShards, when above 1, splits the selector control plane into
	// that many independent router shards, each owning a contiguous range
	// of the partition-id hash space (selector.RouterShardOf) with its own
	// routing loop, statistics stripes, placement controller, and — under
	// SelectorLease — its own lease and remaster-epoch allocator. Sessions
	// route reads (and optimistically route writes) off a gossiped
	// placement cache without touching any router. 0 or 1 keeps the single
	// router. Use WithSelectorShards.
	SelectorShards int
	// SelectorLease, when positive, puts the selector tier under
	// lease-based leadership (high availability): the replicas double as
	// hot standbys fed by the leader's metadata delta stream, the leader
	// renews a lease of this TTL, and on expiry a standby promotes —
	// fencing the deposed leader's in-flight remaster chains with a fresh
	// epoch and reconciling its mirror against the sites' WAL fold.
	// Requires at least one replica; when SelectorReplicas is 0 it
	// defaults to 2. Zero disables HA (the selector is a single point of
	// failure, as in the paper's prototype).
	SelectorLease time.Duration
	// MinReplicas, when positive, enables adaptive partial replication:
	// every partition is hosted by an explicit replica set of at least
	// MinReplicas sites instead of everywhere. Use WithReplicationFactor.
	MinReplicas int
	// MaxReplicas bounds replica-set growth under partial replication
	// (0 = the site count).
	MaxReplicas int
	// PlacementPolicy decides each partition's desired replica set under
	// partial replication (nil = selector.AdaptivePolicy). Setting a policy
	// other than StaticFullReplication without MinReplicas implies a
	// replication factor of [1, Sites]. Use WithPlacementPolicy.
	PlacementPolicy selector.PlacementPolicy
	// PlacementInterval is the placement controller's tick interval
	// (0 = selector.DefaultPlacementInterval).
	PlacementInterval time.Duration
	// Seed drives read-routing randomization.
	Seed int64
	// Faults, when set, installs a fault injector on the simulated wire
	// (chaos testing; see transport.Injector). Fault-free operation is one
	// atomic pointer load per message.
	Faults *transport.Injector
	// FailureDetection enables the heartbeat-based site failure detector;
	// the zero value disables it (KillSite/Failover still work manually).
	FailureDetection FailureDetectionConfig
	// Obs receives the cluster's metrics; nil creates a private registry
	// (reachable through Cluster.Obs).
	Obs *obs.Registry
	// TraceRing caps the in-memory ring of recent transaction lifecycle
	// traces (0 = obs.DefaultTraceRing).
	TraceRing int
	// TraceSampleEvery head-samples one in every N locally originated update
	// transactions for distributed span tracing (0 disables sampling; RPC
	// clients that send their own trace context are always honored).
	TraceSampleEvery int
	// SLOTargets are watched latency quantile thresholds; breaches count in
	// dynamast_slo_breaches_total and land in the flight recorder.
	SLOTargets []obs.SLOTarget
	// SLOInterval is the SLO evaluation window (0 = 1s; only meaningful with
	// SLOTargets).
	SLOInterval time.Duration
	// FlightDir, when set, is where flight-recorder snapshots are written on
	// failover, recovery, and SLO breaches.
	FlightDir string

	// optErr carries a construction error recorded by an Option (e.g. a
	// malformed WithFaults spec) so NewWithOptions can surface it.
	optErr error
}

// Cluster is a running DynaMast deployment.
type Cluster struct {
	cfg    Config
	net    *transport.Network
	broker *wal.Broker
	sites  []*sitemgr.Site
	sel    *selector.Selector   // shard 0's initial master (compat accessor)
	repl   *selector.Replicated // shard 0's replica tier (compat accessor)
	repls  []*selector.Replicated
	group  *selector.Group

	breakdown Breakdown
	sessions  atomic.Uint64

	// Partial replication (see placement.go).
	placeMu   sync.Mutex // serializes replica adds/drops
	placeCtls []*selector.PlacementController

	// Failure handling (see failure.go).
	failoverMu  sync.Mutex
	failedOver  map[int]bool
	failovers   atomic.Uint64
	obFailovers *obs.Counter
	hbStop      chan struct{}
	hbWG        sync.WaitGroup
	closeOnce   sync.Once
	closing     atomic.Bool

	// Checkpointing (see checkpoint.go).
	ckptMu       sync.Mutex // serializes checkpoint runs
	ckptStop     chan struct{}
	ckptWG       sync.WaitGroup
	lastRecovery RecoveryStats
	obCkpts      *obs.Counter
	obCkptFails  *obs.Counter
	obCkptBytes  *obs.Counter
	ckptDur      *obs.Histogram
	obReplayed   *obs.Counter
	recoverDur   *obs.Histogram

	obs     *obs.Registry
	tracer  *obs.Tracer
	spans   *obs.SpanRecorder
	sampler *obs.Sampler
	slo     *obs.SLOEngine
	// Session-level instruments (see instrument).
	updateDur *obs.Histogram
	readDur   *obs.Histogram
	stageDur  [obs.NumStages]*obs.Histogram
}

// NewCluster builds and starts a DynaMast cluster.
func NewCluster(cfg Config) (*Cluster, error) {
	if cfg.Sites <= 0 {
		return nil, fmt.Errorf("core: Sites must be positive")
	}
	if cfg.Partitioner == nil {
		return nil, fmt.Errorf("core: config requires a Partitioner")
	}
	if cfg.Weights == (selector.Weights{}) {
		cfg.Weights = selector.YCSBWeights()
	}
	c := &Cluster{
		cfg:        cfg,
		net:        transport.NewNetwork(cfg.Network),
		failedOver: make(map[int]bool),
		hbStop:     make(chan struct{}),
		ckptStop:   make(chan struct{}),
	}
	c.obs = cfg.Obs
	if c.obs == nil {
		c.obs = obs.NewRegistry()
	}
	c.tracer = obs.NewTracer(cfg.TraceRing)
	c.spans = obs.NewSpanRecorder(cfg.TraceRing)
	c.sampler = obs.NewSampler(cfg.TraceSampleEvery)
	if cfg.FlightDir != "" {
		if err := obs.SetFlightDir(cfg.FlightDir); err != nil {
			return nil, fmt.Errorf("core: flight dir: %w", err)
		}
	}
	c.net.Instrument(c.obs)
	codec.Instrument(c.obs)
	if cfg.Faults != nil {
		c.net.SetInjector(cfg.Faults)
		cfg.Faults.Instrument(c.obs)
	}

	var err error
	if cfg.WALDir != "" {
		c.broker, err = wal.OpenBroker(cfg.WALDir, cfg.Sites)
		if err != nil {
			return nil, err
		}
	} else {
		c.broker = wal.NewBroker(cfg.Sites)
	}
	c.broker.Instrument(c.obs)

	// Epoch group commit defaults on; WithEpochInterval(0) opts out by
	// storing a negative sentinel.
	epochIv := cfg.EpochInterval
	switch {
	case epochIv < 0:
		epochIv = 0 // explicit opt-out: per-transaction commit records
	case epochIv == 0:
		epochIv = sitemgr.DefaultEpochInterval
	}

	initial := cfg.InitialMaster
	if initial == nil {
		m := uint64(cfg.Sites)
		initial = func(part uint64) int {
			// Fibonacci hashing scatters partitions uncorrelated with the
			// workloads' range structure.
			return int((part * 0x9E3779B97F4A7C15 >> 17) % m)
		}
	}

	// Partial-replication resolution: an explicit replication factor turns
	// it on; a non-static placement policy alone implies the loosest bounds.
	minRF, maxRF := cfg.MinReplicas, cfg.MaxReplicas
	if cfg.PlacementPolicy != nil && minRF == 0 {
		if _, static := cfg.PlacementPolicy.(selector.StaticFullReplication); !static {
			minRF, maxRF = 1, cfg.Sites
		}
	}
	if minRF > cfg.Sites {
		minRF = cfg.Sites
	}
	partial := minRF > 0
	if partial && cfg.SelectorLease > 0 {
		c.broker.Close()
		return nil, fmt.Errorf("core: partial replication is not supported with selector HA " +
			"(a promoted standby would lose the replica-set metadata); disable one of " +
			"WithReplicationFactor/WithPlacementPolicy and SelectorLease")
	}

	c.sites = make([]*sitemgr.Site, cfg.Sites)
	dsites := make([]selector.DataSite, cfg.Sites)
	for i := 0; i < cfg.Sites; i++ {
		siteCfg := sitemgr.Config{
			SiteID:        i,
			Sites:         cfg.Sites,
			Net:           c.net,
			Broker:        c.broker,
			MaxVersions:   cfg.MaxVersions,
			Partitioner:   cfg.Partitioner,
			Replicate:     true,
			ExecSlots:     cfg.ExecSlots,
			EpochInterval: epochIv,
			Costs:         cfg.Costs,
			Obs:           c.obs,
			Tracer:        c.tracer,
			Spans:         c.spans,
		}
		if partial {
			siteCfg.PartialReplication = true
			// Seed membership mirrors selector.DefaultReplicaSet: partition p
			// starts at sites initial(p) .. initial(p)+minRF-1 (mod m).
			site, m, rf := i, cfg.Sites, minRF
			siteCfg.DefaultHosted = func(part uint64) bool {
				d := site - initial(part)%m
				if d < 0 {
					d += m
				}
				return d < rf
			}
		}
		s, err := sitemgr.New(siteCfg)
		if err != nil {
			c.broker.Close()
			return nil, err
		}
		c.sites[i], dsites[i] = s, s
	}

	shards := cfg.SelectorShards
	if shards <= 0 {
		shards = 1
	}
	if shards > selector.MaxRouterShards {
		c.broker.Close()
		return nil, fmt.Errorf("core: SelectorShards %d exceeds the maximum %d",
			shards, selector.MaxRouterShards)
	}

	replicas := cfg.SelectorReplicas
	if cfg.SelectorLease > 0 && replicas == 0 {
		replicas = 2 // HA needs standbys; two matches the paper's testbed headroom
	}

	// One selector + replica tier per router shard. Single-shard
	// deployments keep the pre-sharding construction byte for byte: the
	// selector registers its own metrics and no shard hooks are installed.
	// Sharded deployments give each shard's selector the group hooks —
	// ownership guard, foreign-master resolution, group-wide stats and
	// load — and leave per-selector metrics to the group's shard-labeled
	// collectors (unlabeled re-registrations would collide).
	c.repls = make([]*selector.Replicated, shards)
	selCfgs := make([]selector.Config, shards)
	for i := 0; i < shards; i++ {
		selCfg := selector.Config{
			Sites:         dsites,
			Partitioner:   cfg.Partitioner,
			InitialMaster: initial,
			Weights:       cfg.Weights,
			Stats:         cfg.Stats,
			Net:           c.net,
			Seed:          cfg.Seed + int64(i),
			MinReplicas:   minRF,
			MaxReplicas:   maxRF,
			Spans:         c.spans,
			Hooks:         selector.GroupHooks(i, shards, func() *selector.Group { return c.group }),
		}
		if shards == 1 {
			selCfg.Obs = c.obs
		}
		sel, err := selector.New(selCfg)
		if err != nil {
			c.broker.Close()
			return nil, err
		}
		if partial {
			sel.SetReplicaEnsurer(c.ensureHostedAll)
		}
		c.repls[i] = selector.NewReplicated(sel, replicas, c.net)
		selCfgs[i] = selCfg
	}
	c.sel = c.repls[0].Master
	c.repl = c.repls[0]

	// The group dispatches control-plane calls by partition owner and runs
	// the gossiped placement cache; with one shard it is pure pass-through.
	// Built before EnableHA so every shard's lease goroutine starts after
	// c.group is assigned (the hooks read it).
	c.group, err = selector.NewGroup(selector.GroupConfig{
		Shards:         c.repls,
		Cache:          shards > 1,
		GossipInterval: cfg.PlacementInterval, // reuse the placement cadence knob; 0 = default
		Obs:            c.obs,
	})
	if err != nil {
		c.broker.Close()
		return nil, err
	}

	if cfg.SelectorLease > 0 {
		// Each shard holds its own lease: one key of a shared keyed store,
		// doubling as that shard's remaster-epoch allocator. A shard
		// promotion fences and folds only its own partition range.
		leases := selector.NewKeyedLeaseStore(cfg.SelectorLease, c.net, shards)
		for i := 0; i < shards; i++ {
			ha := selector.HAConfig{
				Lease:  cfg.SelectorLease,
				Broker: c.broker,
				Obs:    c.obs,
			}
			if shards > 1 {
				ha.Store = leases.View(i)
				ha.Shard = i
				ha.Shards = shards
			}
			if _, err := c.repls[i].EnableHA(selCfgs[i], ha); err != nil {
				c.broker.Close()
				return nil, err
			}
		}
	}
	c.instrument()

	c.slo = obs.NewSLOEngine(c.obs)
	for _, t := range cfg.SLOTargets {
		if err := c.slo.Watch(t); err != nil {
			c.broker.Close()
			return nil, err
		}
	}
	if len(cfg.SLOTargets) > 0 {
		interval := cfg.SLOInterval
		if interval <= 0 {
			interval = time.Second
		}
		c.slo.Start(interval)
	}

	for _, s := range c.sites {
		s.Start()
	}
	if partial {
		// One controller per shard: each decides placement only for the
		// partitions its shard masters (a shard's PlacementSnapshot holds
		// nothing else).
		for i := 0; i < shards; i++ {
			i := i
			ctl := selector.NewPlacementController(
				func() *selector.Selector { return c.group.Shard(i) },
				c, cfg.PlacementPolicy, cfg.PlacementInterval)
			ctl.Start()
			c.placeCtls = append(c.placeCtls, ctl)
		}
	}
	if fd := cfg.FailureDetection; fd.Interval > 0 {
		if fd.Misses <= 0 {
			fd.Misses = 3
		}
		c.hbWG.Add(1)
		go c.heartbeatLoop(fd.Interval, fd.Misses)
	}
	if cfg.WALDir != "" && (cfg.CheckpointEvery > 0 || cfg.CheckpointEveryRecords > 0) {
		c.ckptWG.Add(1)
		go c.checkpointLoop(cfg.CheckpointEvery, cfg.CheckpointEveryRecords)
	}
	return c, nil
}

// instrument registers the cluster-level instruments: end-to-end session
// latency, per-lifecycle-stage latency, and per-site commit gauges.
func (c *Cluster) instrument() {
	reg := c.obs
	reg.Help("dynamast_txn_seconds", "Client-observed transaction latency by type.")
	reg.Help("dynamast_txn_stage_seconds", "Update-transaction lifecycle stage latency.")
	reg.Help("dynamast_site_commits", "Committed update transactions per site (gauge re-export).")
	reg.Help("dynamast_sessions", "Sessions opened against the cluster.")
	c.updateDur = reg.Histogram("dynamast_txn_seconds", obs.L("type", "update"))
	c.readDur = reg.Histogram("dynamast_txn_seconds", obs.L("type", "read"))
	for _, st := range obs.Stages() {
		c.stageDur[st] = reg.Histogram("dynamast_txn_stage_seconds", obs.L("stage", st.String()))
	}
	for i, s := range c.sites {
		s := s
		reg.Func("dynamast_site_commits", obs.KindGauge,
			func() float64 { return float64(s.Commits()) }, obs.Site(i))
	}
	reg.Func("dynamast_sessions", obs.KindGauge,
		func() float64 { return float64(c.sessions.Load()) })
	reg.Help("dynamast_site_failovers_total", "Site failures handled by re-mastering to survivors.")
	c.obFailovers = reg.Counter("dynamast_site_failovers_total")
	reg.Help("dynamast_checkpoints_total", "Committed checkpoints.")
	reg.Help("dynamast_checkpoint_failures_total", "Checkpoint attempts abandoned on error or shutdown.")
	reg.Help("dynamast_checkpoint_bytes_total", "Snapshot bytes written by committed checkpoints.")
	reg.Help("dynamast_checkpoint_seconds", "Wall time per committed checkpoint (export through truncation).")
	reg.Help("dynamast_recovery_replayed_records_total", "WAL records replayed by Cluster.Recover.")
	reg.Help("dynamast_recovery_seconds", "Wall time per Cluster.Recover run.")
	c.obCkpts = reg.Counter("dynamast_checkpoints_total")
	c.obCkptFails = reg.Counter("dynamast_checkpoint_failures_total")
	c.obCkptBytes = reg.Counter("dynamast_checkpoint_bytes_total")
	c.ckptDur = reg.Histogram("dynamast_checkpoint_seconds")
	c.obReplayed = reg.Counter("dynamast_recovery_replayed_records_total")
	c.recoverDur = reg.Histogram("dynamast_recovery_seconds")
	c.spans.Instrument(reg)
	obs.InstrumentFlight(reg)
	obs.RegisterGoRuntime(reg)
}

// Obs exposes the cluster's metrics registry.
func (c *Cluster) Obs() *obs.Registry { return c.obs }

// Tracer exposes the transaction-lifecycle trace ring.
func (c *Cluster) Tracer() *obs.Tracer { return c.tracer }

// Spans exposes the distributed-trace span recorder.
func (c *Cluster) Spans() *obs.SpanRecorder { return c.spans }

// SLO exposes the SLO engine (nil-safe methods; no targets unless
// configured).
func (c *Cluster) SLO() *obs.SLOEngine { return c.slo }

// Name implements systems.System.
func (c *Cluster) Name() string { return "dynamast" }

// CreateTable declares a table on every site.
func (c *Cluster) CreateTable(name string) {
	for _, s := range c.sites {
		s.Store().CreateTable(name)
	}
}

// Load installs initial rows on every replica site and seeds the partitions'
// initial mastership on the sites and the selector. Under full replication
// every site receives every row; under partial replication a row lands only
// on the sites in its partition's replica set (the schema still exists
// everywhere — see CreateTable).
func (c *Cluster) Load(rows []systems.LoadRow) {
	seen := make(map[uint64]struct{})
	loadStamp := storage.Stamp{Origin: 0, Seq: 0} // visible at every snapshot
	for _, row := range rows {
		part := c.cfg.Partitioner(row.Ref)
		if _, ok := seen[part]; !ok {
			seen[part] = struct{}{}
			master := c.group.MasterOf(part) // registers at initial placement on the owning shard
			for i, s := range c.sites {
				s.SetMaster(part, i == master)
			}
		}
		for _, s := range c.sites {
			if !s.Hosts(part) {
				continue
			}
			t := s.Store().CreateTable(row.Ref.Table)
			t.Record(row.Ref.Key, true).Install(loadStamp, row.Data, false, s.Store().MaxVersions())
		}
	}
}

// leader returns the selector currently holding shard 0's control-plane
// leadership: the initial master outside HA deployments, the promoted
// standby's selector after a lease failover. Single-router deployments
// route every cluster-internal selector use through it; sharded
// deployments dispatch through c.group instead (leader() then covers only
// the shard-0 slice of uniform state such as weights).
func (c *Cluster) leader() *selector.Selector { return c.repl.Leader() }

// Selector exposes the site selector currently holding shard 0's
// leadership (experiments tweak weights and read routing metrics through
// it). Outside HA deployments this is always shard 0's master selector;
// use Group for shard-aware access.
func (c *Cluster) Selector() *selector.Selector { return c.leader() }

// Group exposes the sharded selector control plane (pass-through with one
// shard).
func (c *Cluster) Group() *selector.Group { return c.group }

// SelectorShardCount returns the number of router shards (1 = unsharded).
func (c *Cluster) SelectorShardCount() int { return c.group.Shards() }

// SelectorHA exposes shard 0's high-availability state machine, nil unless
// Config.SelectorLease enabled it. Use SelectorShardHA for other shards.
func (c *Cluster) SelectorHA() *selector.HA { return c.repl.HA() }

// SelectorShardHA exposes router shard i's high-availability state
// machine, nil unless Config.SelectorLease enabled it.
func (c *Cluster) SelectorShardHA(i int) *selector.HA { return c.repls[i].HA() }

// KillSelector simulates a crash of the selector node currently holding
// shard 0's leadership and returns its id (0 = initial master, i+1 =
// standby i). The lease expires unrenewed and a surviving standby
// promotes; until then write routing fails fast with the retryable
// selector.ErrNoLeader while read routing keeps flowing off the replica
// tier. Requires HA.
func (c *Cluster) KillSelector() int { return c.KillSelectorShard(0) }

// KillSelectorShard crashes the current leaseholder of router shard i and
// returns its node id. Only that shard's partition range loses its router
// until a standby promotes — the other shards keep routing. Requires HA.
func (c *Cluster) KillSelectorShard(i int) int {
	ha := c.repls[i].HA()
	if ha == nil {
		return -1
	}
	return ha.KillLeader()
}

// SelectorReplicas exposes the replica selector tier (empty unless
// configured).
func (c *Cluster) SelectorReplicas() []*selector.Replica { return c.repl.Replicas() }

// Sites exposes the data sites.
func (c *Cluster) Sites() []*sitemgr.Site { return c.sites }

// Network exposes the simulated network for traffic accounting.
func (c *Cluster) Network() *transport.Network { return c.net }

// Broker exposes the update-log broker (recovery tests).
func (c *Cluster) Broker() *wal.Broker { return c.broker }

// Stats implements systems.System.
func (c *Cluster) Stats() systems.Stats {
	st := systems.Stats{
		Remasters:      c.group.Metrics().RemasterTxns,
		PerSiteCommits: make([]uint64, len(c.sites)),
		Network:        c.net.Stats(),
	}
	for i, s := range c.sites {
		st.PerSiteCommits[i] = s.Commits()
		st.Commits += s.Commits()
	}
	return st
}

// Close shuts down replication and closes the logs. The failure detector
// and background checkpointer stop first (neither must act during
// teardown); an in-flight checkpoint is then waited out — its manifest
// commit is a single atomic rename, so it either completed or left nothing
// — before the broker closes so blocked appliers drain and exit.
// Idempotent: second and later calls return immediately.
func (c *Cluster) Close() {
	c.closeOnce.Do(func() {
		c.closing.Store(true)
		for _, ctl := range c.placeCtls {
			ctl.Stop() // no replica moves during teardown
		}
		c.slo.Stop()
		c.group.Stop() // cache gossip stops before the selectors go away
		for _, repl := range c.repls {
			if ha := repl.HA(); ha != nil {
				ha.Stop() // no promotions during teardown
			}
		}
		close(c.hbStop)
		close(c.ckptStop)
		c.hbWG.Wait()
		c.ckptWG.Wait()
		// Drain any manual Checkpoint in flight; new ones refuse via closing.
		c.ckptMu.Lock()
		c.ckptMu.Unlock() //nolint:staticcheck // empty critical section = barrier
		// Seal every site's in-flight epoch while the logs are still open:
		// acked commits must reach the log before it closes.
		for _, s := range c.sites {
			_ = s.SealEpoch()
		}
		c.broker.Close()
		for _, s := range c.sites {
			s.Stop()
		}
	})
}

// WaitQuiesced blocks until every site has applied every other site's
// committed updates (used between experiment phases and in tests).
func (c *Cluster) WaitQuiesced(timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	for {
		target := make([]uint64, len(c.sites))
		for i, s := range c.sites {
			if s.Alive() {
				// Epoch-buffered commits are acked but not yet in the svv;
				// quiescence must wait for their seal to replicate too. (A
				// killed site sealed on Kill — its svv is already final.)
				target[i] = s.InstalledSeq()
			} else {
				target[i] = s.SVV()[i]
			}
		}
		ok := true
		for _, s := range c.sites {
			if !s.Alive() {
				continue // a dead site stops applying; survivors still must
			}
			svv := s.SVV()
			for k, want := range target {
				if svv[k] < want {
					ok = false
					break
				}
			}
		}
		if ok {
			return nil
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("core: cluster did not quiesce within %v", timeout)
		}
		time.Sleep(time.Millisecond)
	}
}

// Recover rebuilds a durable cluster's state after a restart. When a valid
// checkpoint exists under Config.WALDir, each site installs its snapshot
// and replays only the WAL suffix past the manifest's offsets, mastership
// folds from the manifest's placement snapshot plus the post-capture
// suffix, and the selector's epoch counter is bumped past everything the
// previous incarnation allocated; sites recover in parallel. A checkpoint
// that fails verification falls back to the previous one, and with no
// usable checkpoint recovery degrades to the paper's full redo replay.
// Call it on a freshly constructed cluster whose Config.WALDir points at
// the previous incarnation's logs, after re-creating the schema with
// CreateTable.
func (c *Cluster) Recover(initialPlacement map[uint64]int) error {
	return c.recover(initialPlacement)
}
