package core

import (
	"sync"
	"testing"
	"time"

	"dynamast/internal/obs"
	"dynamast/internal/sitemgr"
	"dynamast/internal/storage"
	"dynamast/internal/systems"
	"dynamast/internal/transport"
	"dynamast/internal/wal"
)

// TestEpochDefaultOnLogsEpochFrames checks epochs are the default commit
// path: a cluster built with a zero-value interval logs KindEpoch frames,
// and WaitQuiesced covers commits still inside the seal pipeline.
func TestEpochDefaultOnLogsEpochFrames(t *testing.T) {
	c := newTestCluster(t, 2)
	sess := c.Session(1)
	for i := 0; i < 5; i++ {
		err := sess.Update([]storage.RowRef{ref(0)}, func(tx systems.Tx) error {
			return tx.Write(ref(0), []byte{1, 2, 3, 4, 5, 6, 7, byte(i)})
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	if err := c.WaitQuiesced(5 * time.Second); err != nil {
		t.Fatal(err)
	}
	var epochs int
	for i := range c.Sites() {
		l := c.Broker().Log(i)
		for off := l.Base(); off < l.Len(); off++ {
			e, ok := l.Get(off)
			if !ok {
				continue
			}
			if e.Kind == wal.KindUpdate {
				t.Fatalf("site %d logged a per-txn update with epochs on", i)
			}
			if e.Kind == wal.KindEpoch {
				epochs++
			}
		}
	}
	if epochs == 0 {
		t.Fatal("no epoch frames logged under the default configuration")
	}
	for _, s := range c.Sites() {
		data, ok := s.ReadLocal(ref(0))
		if !ok || len(data) != 8 {
			t.Errorf("site %d: stale/missing row after quiesce: %v", s.ID(), data)
		}
	}
}

// TestEpochOptOutLogsPerTxnFrames checks WithEpochInterval(0) restores the
// pre-epoch commit path: every commit logs its own KindUpdate entry.
func TestEpochOptOutLogsPerTxnFrames(t *testing.T) {
	c, err := NewWithOptions(Config{
		Sites:       2,
		Partitioner: partitionBy100,
	}, WithEpochInterval(0))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)
	c.CreateTable("kv")
	sess := c.Session(1)
	for i := 0; i < 5; i++ {
		err := sess.Update([]storage.RowRef{ref(0)}, func(tx systems.Tx) error {
			return tx.Write(ref(0), []byte{byte(i)})
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	if err := c.WaitQuiesced(5 * time.Second); err != nil {
		t.Fatal(err)
	}
	var updates int
	for i := range c.Sites() {
		l := c.Broker().Log(i)
		for off := l.Base(); off < l.Len(); off++ {
			e, ok := l.Get(off)
			if !ok {
				continue
			}
			if e.Kind == wal.KindEpoch {
				t.Fatalf("site %d logged an epoch frame with epochs disabled", i)
			}
			if e.Kind == wal.KindUpdate {
				updates++
			}
		}
	}
	if updates != 5 {
		t.Fatalf("logged %d per-txn updates with epochs disabled, want 5", updates)
	}
}

// TestEpochReplicationByteSavings measures the replication bytes per commit
// with epochs on vs off under a concurrent commit burst (the case epochs
// exist for) and checks the delta-coalesced frames cut the per-transaction
// wire cost substantially. The acceptance target is −40%; the assertion
// allows −30% so low epoch occupancy on a loaded CI machine cannot flake
// the suite, and logs the measured numbers.
func TestEpochReplicationByteSavings(t *testing.T) {
	const clients, updates = 32, 20
	run := func(opt Option) (bytes, commits uint64) {
		c, err := NewWithOptions(Config{
			Sites:       3,
			Partitioner: partitionBy100,
		}, opt)
		if err != nil {
			t.Fatal(err)
		}
		defer c.Close()
		c.CreateTable("kv")
		var wg sync.WaitGroup
		for cl := 0; cl < clients; cl++ {
			wg.Add(1)
			go func(cl int) {
				defer wg.Done()
				sess := c.Session(cl)
				key := ref(uint64(cl))
				for i := 0; i < updates; i++ {
					err := sess.Update([]storage.RowRef{key}, func(tx systems.Tx) error {
						return tx.Write(key, []byte{byte(cl), byte(i), 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15})
					})
					if err != nil {
						t.Error(err)
						return
					}
				}
			}(cl)
		}
		wg.Wait()
		if err := c.WaitQuiesced(10 * time.Second); err != nil {
			t.Fatal(err)
		}
		for _, st := range c.Network().Stats() {
			if st.Category == transport.CatReplication {
				bytes = st.Bytes
			}
		}
		var p99 float64
		for i := range c.Sites() {
			if q := c.Obs().Histogram("dynamast_commit_seconds", obs.Site(i)).Quantile(0.99); q > p99 {
				p99 = q
			}
		}
		t.Logf("p99 commit latency: %v", time.Duration(p99*float64(time.Second)).Round(time.Microsecond))
		return bytes, uint64(c.Stats().Commits)
	}

	onBytes, onCommits := run(WithEpochInterval(sitemgr.DefaultEpochInterval))
	offBytes, offCommits := run(WithEpochInterval(0))
	if onCommits != clients*updates || offCommits != clients*updates {
		t.Fatalf("commits on=%d off=%d, want %d", onCommits, offCommits, clients*updates)
	}
	onPer := float64(onBytes) / float64(onCommits)
	offPer := float64(offBytes) / float64(offCommits)
	t.Logf("replication bytes/txn: epochs on %.1f, off %.1f (%.1f%% saved)",
		onPer, offPer, 100*(1-onPer/offPer))
	if onPer > 0.7*offPer {
		t.Errorf("epochs save only %.1f%% replication bytes/txn, want >= 30%%", 100*(1-onPer/offPer))
	}
}

// TestEpochConcurrentCounterConverges drives a contended read-modify-write
// counter through concurrent sessions — the remaster-heavy worst case for
// epoch boundaries — and checks no increment is lost and every site
// converges to the final value once quiesced.
func TestEpochConcurrentCounterConverges(t *testing.T) {
	c, err := NewCluster(Config{
		Sites:       2,
		Partitioner: partitionBy100,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)
	c.CreateTable("kv")
	const clients, adds = 4, 25
	var wg sync.WaitGroup
	for cl := 0; cl < clients; cl++ {
		wg.Add(1)
		go func(cl int) {
			defer wg.Done()
			sess := c.Session(cl)
			ws := []storage.RowRef{ref(9)}
			for i := 0; i < adds; i++ {
				err := sess.Update(ws, func(tx systems.Tx) error {
					var cur uint64
					if data, ok := tx.Read(ref(9)); ok && len(data) >= 8 {
						for b := 0; b < 8; b++ {
							cur = cur<<8 | uint64(data[b])
						}
					}
					cur++
					out := make([]byte, 8)
					for b := 0; b < 8; b++ {
						out[b] = byte(cur >> (56 - 8*b))
					}
					return tx.Write(ref(9), out)
				})
				if err != nil {
					t.Error(err)
					return
				}
			}
		}(cl)
	}
	wg.Wait()
	if err := c.WaitQuiesced(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	for _, s := range c.Sites() {
		data, ok := s.ReadLocal(ref(9))
		if !ok {
			t.Fatalf("site %d: counter row missing", s.ID())
		}
		var v uint64
		for _, b := range data {
			v = v<<8 | uint64(b)
		}
		if v != clients*adds {
			t.Errorf("site %d: counter = %d, want %d", s.ID(), v, clients*adds)
		}
	}
}
