package core

import (
	"fmt"
	"time"

	"dynamast/internal/obs"
	"dynamast/internal/selector"
	"dynamast/internal/sitemgr"
	"dynamast/internal/transport"
)

// Option configures a cluster built with NewWithOptions. The interface is
// sealed: options are constructed with the With* helpers, and a full Config
// value is itself an Option (it replaces the accumulated configuration
// wholesale), which keeps the historical dynamast.New(dynamast.Config{...})
// call shape compiling unchanged.
type Option interface {
	apply(*Config)
}

// apply makes Config an Option: applying a Config replaces everything set
// so far, so it composes as "start from this struct" when passed first.
func (c Config) apply(dst *Config) {
	err := dst.optErr
	*dst = c
	if dst.optErr == nil {
		dst.optErr = err
	}
}

// optionFunc adapts a closure to the sealed Option interface.
type optionFunc func(*Config)

func (f optionFunc) apply(c *Config) { f(c) }

// NewWithOptions builds a Config from opts and starts a cluster on it.
func NewWithOptions(opts ...Option) (*Cluster, error) {
	var cfg Config
	for _, o := range opts {
		o.apply(&cfg)
	}
	if cfg.optErr != nil {
		return nil, cfg.optErr
	}
	return NewCluster(cfg)
}

// WithSites sets the number of data sites (m).
func WithSites(n int) Option {
	return optionFunc(func(c *Config) { c.Sites = n })
}

// WithPartitioner sets the row-to-partition mapping (required).
func WithPartitioner(p sitemgr.Partitioner) Option {
	return optionFunc(func(c *Config) { c.Partitioner = p })
}

// WithDurableDir makes the update logs file-backed under dir and places
// checkpoints alongside them, enabling crash recovery (Cluster.Recover).
func WithDurableDir(dir string) Option {
	return optionFunc(func(c *Config) { c.WALDir = dir })
}

// WithWeights sets the remastering-strategy hyperparameters (Equation 8).
func WithWeights(w selector.Weights) Option {
	return optionFunc(func(c *Config) { c.Weights = w })
}

// WithNetwork configures the simulated wire.
func WithNetwork(nc transport.Config) Option {
	return optionFunc(func(c *Config) { c.Network = nc })
}

// WithCheckpointEvery runs the background checkpointer at the given
// interval (requires a durable directory).
func WithCheckpointEvery(d time.Duration) Option {
	return optionFunc(func(c *Config) { c.CheckpointEvery = d })
}

// WithCheckpointEveryRecords additionally triggers a checkpoint whenever n
// new WAL records have accumulated since the last one.
func WithCheckpointEveryRecords(n uint64) Option {
	return optionFunc(func(c *Config) { c.CheckpointEveryRecords = n })
}

// WithFaults installs a deterministic fault injector on the cluster wire,
// configured by a "category:kind:prob[:delay]" spec (see
// transport.ParseFaultSpec) and seeded so equal seeds replay identical
// fault streams. A malformed spec surfaces as an error from New.
func WithFaults(spec string, seed int64) Option {
	return optionFunc(func(c *Config) {
		rules, err := transport.ParseFaultSpec(spec)
		if err != nil {
			c.optErr = fmt.Errorf("core: WithFaults: %w", err)
			return
		}
		inj := transport.NewInjector(seed)
		inj.SetRules(rules...)
		c.Faults = inj
	})
}

// WithFailureDetection enables the heartbeat-based site failure detector.
func WithFailureDetection(fd FailureDetectionConfig) Option {
	return optionFunc(func(c *Config) { c.FailureDetection = fd })
}

// WithSelectorReplicas adds replica site-selectors (Appendix I).
func WithSelectorReplicas(n int) Option {
	return optionFunc(func(c *Config) { c.SelectorReplicas = n })
}

// WithSelectorShards splits the selector control plane into n independent
// router shards, each owning a contiguous range of the partition-id hash
// space (selector.RouterShardOf) with its own routing loop, statistics
// stripes, placement controller, and — under WithSelectorLease — its own
// lease and remaster-epoch allocator. Sharded deployments also run the
// gossiped placement cache: sessions route reads, and optimistically route
// writes, without touching any router. n <= 1 keeps the single-router
// selector (the default, wire-identical to earlier versions); n above
// selector.MaxRouterShards is an error.
func WithSelectorShards(n int) Option {
	return optionFunc(func(c *Config) {
		if n > selector.MaxRouterShards {
			c.optErr = fmt.Errorf("core: WithSelectorShards(%d) exceeds the maximum %d",
				n, selector.MaxRouterShards)
			return
		}
		c.SelectorShards = n
	})
}

// WithSelectorLease puts the selector tier under lease-based leader
// failover with the given lease TTL: replicas double as hot standbys and
// one promotes — fencing the deposed leader and reconciling against the
// sites' WAL fold — when the leader's lease expires. d <= 0 disables HA.
func WithSelectorLease(d time.Duration) Option {
	return optionFunc(func(c *Config) { c.SelectorLease = d })
}

// WithSeed fixes the read-routing randomization seed.
func WithSeed(seed int64) Option {
	return optionFunc(func(c *Config) { c.Seed = seed })
}

// WithTraceSampling head-samples one in every n locally originated update
// transactions for distributed span tracing (n <= 0 disables sampling).
func WithTraceSampling(n int) Option {
	return optionFunc(func(c *Config) { c.TraceSampleEvery = n })
}

// WithSLO watches latency SLO targets described by a
// "metric:quantile:threshold" spec (see obs.ParseSLOSpec), evaluated every
// interval (0 = 1s). A malformed spec surfaces as an error from New.
func WithSLO(spec string, interval time.Duration) Option {
	return optionFunc(func(c *Config) {
		targets, err := obs.ParseSLOSpec(spec)
		if err != nil {
			c.optErr = fmt.Errorf("core: WithSLO: %w", err)
			return
		}
		c.SLOTargets = append(c.SLOTargets, targets...)
		c.SLOInterval = interval
	})
}

// WithSLOTargets watches pre-built SLO targets (programmatic form of
// WithSLO).
func WithSLOTargets(targets ...obs.SLOTarget) Option {
	return optionFunc(func(c *Config) { c.SLOTargets = append(c.SLOTargets, targets...) })
}

// WithFlightDir writes flight-recorder snapshots under dir on failover,
// recovery, and panic (see obs.SnapshotFlight).
func WithFlightDir(dir string) Option {
	return optionFunc(func(c *Config) { c.FlightDir = dir })
}

// WithReplicationFactor bounds each partition's replica set to [min, max]
// sites, turning on adaptive partial replication: partitions start at min
// copies placed deterministically, and the placement controller adds
// replicas where reads concentrate and drops them where access decays. max
// < min (0 included) means "up to every site". Requires min >= 1; without
// this option every partition replicates everywhere (the classic DynaMast
// model).
func WithReplicationFactor(min, max int) Option {
	return optionFunc(func(c *Config) {
		if min < 1 {
			c.optErr = fmt.Errorf("core: WithReplicationFactor: min %d < 1", min)
			return
		}
		if max != 0 && max < min {
			c.optErr = fmt.Errorf("core: WithReplicationFactor: max %d < min %d", max, min)
			return
		}
		c.MinReplicas, c.MaxReplicas = min, max
	})
}

// WithPlacementPolicy sets the policy deciding each partition's replica set
// from its observed access statistics. Implies partial replication at
// bounds [1, Sites] unless WithReplicationFactor narrows them — except for
// StaticFullReplication, which keeps the full-replication fast path.
func WithPlacementPolicy(p selector.PlacementPolicy) Option {
	return optionFunc(func(c *Config) { c.PlacementPolicy = p })
}

// WithPlacementInterval sets how often the placement controller re-evaluates
// replica sets (0 = selector.DefaultPlacementInterval).
func WithPlacementInterval(d time.Duration) Option {
	return optionFunc(func(c *Config) { c.PlacementInterval = d })
}

// WithEpochInterval sets the epoch group-commit seal interval: commits batch
// into epochs sealed every d with one WAL flush, one site-vector advance,
// and one coalesced replication record. d <= 0 disables epochs, restoring
// per-transaction commit records (the pre-epoch wire format, byte for
// byte). Without this option epochs default on at
// sitemgr.DefaultEpochInterval.
func WithEpochInterval(d time.Duration) Option {
	return optionFunc(func(c *Config) {
		if d <= 0 {
			c.EpochInterval = -1
		} else {
			c.EpochInterval = d
		}
	})
}
