package core

import (
	"fmt"
	"testing"
	"time"

	"dynamast/internal/sitemgr"
	"dynamast/internal/storage"
	"dynamast/internal/systems"
)

// Full-cluster crash/recovery: run traffic (including remastering) against
// a durable cluster, tear everything down, restart from the write-ahead
// logs alone, and verify data and mastership state.
func TestClusterCrashRecoveryEndToEnd(t *testing.T) {
	dir := t.TempDir()
	cfg := Config{
		Sites:       3,
		Partitioner: partitionBy100,
		WALDir:      dir,
	}
	c, err := NewCluster(cfg)
	if err != nil {
		t.Fatal(err)
	}
	c.CreateTable("kv")
	var rows []systems.LoadRow
	for k := uint64(0); k < 1000; k++ {
		rows = append(rows, systems.LoadRow{Ref: ref(k), Data: []byte{0}})
	}
	c.Load(rows)

	// Capture the load-time mastership (the WAL only records changes).
	initial := map[uint64]int{}
	for p := uint64(0); p < 10; p++ {
		initial[p] = c.Selector().MasterOf(p)
	}

	// Drive cross-partition updates so mastership moves and commits land
	// at multiple sites.
	sess := c.Session(1)
	want := map[uint64]byte{}
	for i := 0; i < 40; i++ {
		a := uint64((i * 7) % 10)
		b := uint64((i*13 + 3) % 10)
		if a == b {
			continue
		}
		ws := []storage.RowRef{ref(a*100 + 5), ref(b*100 + 5)}
		v := byte(i + 1)
		if err := sess.Update(ws, func(tx systems.Tx) error {
			for _, r := range ws {
				if err := tx.Write(r, []byte{v}); err != nil {
					return err
				}
			}
			return nil
		}); err != nil {
			t.Fatal(err)
		}
		want[a*100+5], want[b*100+5] = v, v
	}
	if c.Stats().Remasters == 0 {
		t.Fatal("workload did not exercise remastering")
	}
	finalMasters := map[uint64]int{}
	for p := uint64(0); p < 10; p++ {
		finalMasters[p] = c.Selector().MasterOf(p)
	}
	if err := c.WaitQuiesced(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	c.Close() // "crash": all in-memory state gone; only the WALs remain

	// Restart: replay each site's own log, adopt recovered mastership,
	// and seed the fresh selector with it.
	owner := map[uint64]int{}
	c2, err := NewCluster(Config{
		Sites:       3,
		Partitioner: partitionBy100,
		WALDir:      dir,
		InitialMaster: func(p uint64) int {
			if s, ok := owner[p]; ok {
				return s
			}
			return 0
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	c2.CreateTable("kv")
	for _, s := range c2.Sites() {
		if err := s.RecoverLocal(); err != nil {
			t.Fatal(err)
		}
	}
	recovered := sitemgr.RecoverMastership(c2.Broker(), initial)
	for p, s := range recovered {
		owner[p] = s
	}
	for _, s := range c2.Sites() {
		s.AdoptMastership(recovered)
		s.CatchUp(nil)
	}

	// Mastership matches the pre-crash state.
	for p := uint64(0); p < 10; p++ {
		if recovered[p] != finalMasters[p] {
			t.Errorf("partition %d recovered owner %d, want %d", p, recovered[p], finalMasters[p])
		}
	}

	// Every committed value is readable (catch up replicas first).
	for k, v := range want {
		data, ok := c2.Sites()[recovered[k/100]].ReadLocal(ref(k))
		if !ok || data[0] != v {
			t.Fatalf("key %d after recovery: %v %v, want %d", k, data, ok, v)
		}
	}

	// And the recovered cluster accepts new transactions on the recovered
	// mastership, including further remastering.
	sess2 := c2.Session(5)
	ws := []storage.RowRef{ref(105), ref(905)}
	if err := sess2.Update(ws, func(tx systems.Tx) error {
		for _, r := range ws {
			if err := tx.Write(r, []byte{0xEE}); err != nil {
				return err
			}
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if err := sess2.Read(func(tx systems.Tx) error {
		data, ok := tx.Read(ref(105))
		if !ok || data[0] != 0xEE {
			return fmt.Errorf("post-recovery write unreadable: %v %v", data, ok)
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
}

// A single crashed site rejoins by bootstrapping from a live replica and
// resuming replication.
func TestSingleSiteBootstrapRejoin(t *testing.T) {
	c := newTestCluster(t, 3)
	sess := c.Session(1)
	for i := 0; i < 20; i++ {
		k := uint64(i * 37 % 1000)
		if err := sess.Update([]storage.RowRef{ref(k)}, func(tx systems.Tx) error {
			return tx.Write(ref(k), []byte{byte(i)})
		}); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.WaitQuiesced(10 * time.Second); err != nil {
		t.Fatal(err)
	}

	// Build a replacement for site 2 from site 0's state.
	fresh, err := sitemgr.New(sitemgr.Config{
		SiteID:      2,
		Sites:       3,
		Broker:      c.Broker(),
		Partitioner: partitionBy100,
	})
	if err != nil {
		t.Fatal(err)
	}
	fresh.BootstrapFrom(c.Sites()[0])
	if !fresh.SVV().DominatesEq(c.Sites()[0].SVV()) {
		t.Fatalf("bootstrap vector %v behind donor %v", fresh.SVV(), c.Sites()[0].SVV())
	}
	// Spot-check data equality at the latest snapshot.
	for _, k := range []uint64{0, 37, 74} {
		want, okW := c.Sites()[0].ReadLocal(ref(k))
		got, okG := fresh.ReadLocal(ref(k))
		if okW != okG || (okW && string(want) != string(got)) {
			t.Fatalf("key %d differs after bootstrap: %v/%v vs %v/%v", k, want, okW, got, okG)
		}
	}
}

// Cluster.Recover performs the full recovery dance in one call.
func TestClusterRecoverConvenience(t *testing.T) {
	dir := t.TempDir()
	cfg := Config{Sites: 2, Partitioner: partitionBy100, WALDir: dir}
	c, err := NewCluster(cfg)
	if err != nil {
		t.Fatal(err)
	}
	c.CreateTable("kv")
	c.Load([]systems.LoadRow{{Ref: ref(1), Data: []byte("init")}, {Ref: ref(101), Data: []byte("init")}})
	initial := map[uint64]int{0: c.Selector().MasterOf(0), 1: c.Selector().MasterOf(1)}
	sess := c.Session(1)
	if err := sess.Update([]storage.RowRef{ref(1), ref(101)}, func(tx systems.Tx) error {
		tx.Write(ref(1), []byte("a"))
		return tx.Write(ref(101), []byte("b"))
	}); err != nil {
		t.Fatal(err)
	}
	master := c.Selector().MasterOf(0)
	if err := c.WaitQuiesced(5 * time.Second); err != nil {
		t.Fatal(err)
	}
	c.Close()

	c2, err := NewCluster(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	c2.CreateTable("kv")
	if err := c2.Recover(initial); err != nil {
		t.Fatal(err)
	}
	if got := c2.Selector().MasterOf(0); got != master {
		t.Fatalf("recovered master %d, want %d", got, master)
	}
	sess2 := c2.Session(2)
	if err := sess2.Read(func(tx systems.Tx) error {
		if d, ok := tx.Read(ref(1)); !ok || string(d) != "a" {
			return fmt.Errorf("recovered read %q %v", d, ok)
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	// The recovered cluster accepts writes on the recovered mastership.
	if err := sess2.Update([]storage.RowRef{ref(1)}, func(tx systems.Tx) error {
		return tx.Write(ref(1), []byte("post"))
	}); err != nil {
		t.Fatal(err)
	}
}

// Crash-restart after a site failover: the failed site's log still ends in
// a grant (it never released — it crashed), so mastership reconstruction
// must use the failover grants' higher epochs to decide that the heirs, not
// the dead site, own its partitions.
func TestCrashRestartAfterFailoverReconstructsMastership(t *testing.T) {
	dir := t.TempDir()
	cfg := Config{Sites: 3, Partitioner: partitionBy100, WALDir: dir}
	c, err := NewCluster(cfg)
	if err != nil {
		t.Fatal(err)
	}
	c.CreateTable("kv")
	var rows []systems.LoadRow
	for k := uint64(0); k < 1000; k++ {
		rows = append(rows, systems.LoadRow{Ref: ref(k), Data: []byte{0}})
	}
	c.Load(rows)
	initial := map[uint64]int{}
	for p := uint64(0); p < 10; p++ {
		initial[p] = c.Selector().MasterOf(p)
	}

	// Some traffic, including cross-partition remastering.
	sess := c.Session(1)
	for i := 0; i < 10; i++ {
		ws := []storage.RowRef{ref(uint64(i*100 + 5)), ref(uint64((i+3)%10*100 + 5))}
		if err := sess.Update(ws, func(tx systems.Tx) error {
			for _, r := range ws {
				if err := tx.Write(r, []byte{byte(i + 1)}); err != nil {
					return err
				}
			}
			return nil
		}); err != nil {
			t.Fatal(err)
		}
	}

	// Fail over a site that masters something.
	victim := -1
	for i := 0; i < 3; i++ {
		if len(c.Selector().MasteredBy(i)) > 0 {
			victim = i
			break
		}
	}
	if victim < 0 {
		t.Fatal("no site masters anything")
	}
	orphans := c.Selector().MasteredBy(victim)
	c.KillSite(victim)
	if err := c.Failover(victim); err != nil {
		t.Fatal(err)
	}

	// Post-failover writes to the moved partitions land on the heirs.
	for _, p := range orphans {
		key := ref(p * 100)
		if err := sess.Update([]storage.RowRef{key}, func(tx systems.Tx) error {
			return tx.Write(key, []byte{0xAB})
		}); err != nil {
			t.Fatalf("post-failover write to partition %d: %v", p, err)
		}
	}
	finalMasters := map[uint64]int{}
	for p := uint64(0); p < 10; p++ {
		finalMasters[p] = c.Selector().MasterOf(p)
	}
	if err := c.WaitQuiesced(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	c.Close()

	// Restart everything (including the machine that died) from the logs.
	c2, err := NewCluster(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	c2.CreateTable("kv")
	if err := c2.Recover(initial); err != nil {
		t.Fatal(err)
	}
	// Recover's CatchUp races the freshly started refresh appliers; wait for
	// full convergence before auditing with fresh sessions (whose empty
	// version vectors would legally read older snapshots).
	if err := c2.WaitQuiesced(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	for p := uint64(0); p < 10; p++ {
		if got := c2.Selector().MasterOf(p); got != finalMasters[p] {
			t.Errorf("partition %d recovered master %d, want %d", p, got, finalMasters[p])
		}
	}
	for _, p := range orphans {
		if got := c2.Selector().MasterOf(p); got == victim {
			t.Errorf("partition %d reconstructed onto the failed site %d", p, victim)
		}
	}
	// Data written after the failover survives the restart.
	sess2 := c2.Session(9)
	for _, p := range orphans {
		key := ref(p * 100)
		if err := sess2.Read(func(tx systems.Tx) error {
			data, ok := tx.Read(key)
			if !ok || data[0] != 0xAB {
				return fmt.Errorf("partition %d: post-failover write lost: %v %v", p, data, ok)
			}
			return nil
		}); err != nil {
			t.Fatal(err)
		}
	}
}
