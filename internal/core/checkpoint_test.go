package core

import (
	"fmt"
	"os"
	"path/filepath"
	"testing"
	"time"

	"dynamast/internal/checkpoint"
	"dynamast/internal/storage"
	"dynamast/internal/systems"
)

// drive commits n single-partition updates spread across partitions and
// returns the value each touched key should finally hold.
func drive(t *testing.T, c *Cluster, sess *Session, n int, salt byte) map[uint64]byte {
	t.Helper()
	want := map[uint64]byte{}
	for i := 0; i < n; i++ {
		k := uint64(i%10)*100 + uint64(i%7)
		v := byte(i) ^ salt
		if err := sess.Update([]storage.RowRef{ref(k)}, func(tx systems.Tx) error {
			return tx.Write(ref(k), []byte{v})
		}); err != nil {
			t.Fatal(err)
		}
		want[k] = v
	}
	return want
}

func captureInitial(c *Cluster) map[uint64]int {
	initial := map[uint64]int{}
	for p := uint64(0); p < 10; p++ {
		initial[p] = c.Selector().MasterOf(p)
	}
	return initial
}

// The acceptance test for checkpointed restart: after a long run with a
// checkpoint mid-way, recovery replays ONLY the post-checkpoint suffix —
// asserted by exact record count — instead of the full log, and the WAL's
// disk footprint shrinks at the checkpoint.
func TestCheckpointRestartReplaysOnlySuffix(t *testing.T) {
	pre, post := 50_000, 5_000
	if testing.Short() {
		pre, post = 5_000, 500
	}
	dir := t.TempDir()
	cfg := Config{Sites: 3, Partitioner: partitionBy100, WALDir: dir}
	c, err := NewCluster(cfg)
	if err != nil {
		t.Fatal(err)
	}
	c.CreateTable("kv")
	var rows []systems.LoadRow
	for k := uint64(0); k < 1000; k++ {
		rows = append(rows, systems.LoadRow{Ref: ref(k), Data: []byte{0}})
	}
	c.Load(rows)
	initial := captureInitial(c)

	sess := c.Session(1)
	want := drive(t, c, sess, pre, 0)
	// Quiesce so every site's svv covers the whole prefix: the manifest's
	// replay offsets then sit exactly at the pre-checkpoint log ends,
	// making the expected replay count exact.
	if err := c.WaitQuiesced(30 * time.Second); err != nil {
		t.Fatal(err)
	}

	sizeBefore := walBytes(t, dir, 3)
	m, err := c.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}
	if walBytes(t, dir, 3) >= sizeBefore {
		t.Fatalf("WAL did not shrink at checkpoint: %d -> %d bytes", sizeBefore, walBytes(t, dir, 3))
	}

	for k, v := range drive(t, c, sess, post, 0x5A) {
		want[k] = v
	}
	if err := c.WaitQuiesced(30 * time.Second); err != nil {
		t.Fatal(err)
	}
	c.Close()

	c2, err := NewCluster(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	c2.CreateTable("kv")
	if err := c2.Recover(initial); err != nil {
		t.Fatal(err)
	}
	st := c2.LastRecovery()
	if !st.UsedCheckpoint || st.Seq != m.Seq {
		t.Fatalf("recovery did not use checkpoint %d: %+v", m.Seq, st)
	}
	// Each update commits at exactly one site, and refresh appliers never
	// touch a site's own dimension, so the summed own-log replay equals the
	// post-checkpoint commit count exactly.
	if st.ReplayedOwn != uint64(post) {
		t.Fatalf("replayed %d own-log records, want exactly the %d-record post-checkpoint suffix (full log is %d)",
			st.ReplayedOwn, post, pre+post)
	}
	if err := c2.WaitQuiesced(30 * time.Second); err != nil {
		t.Fatal(err)
	}
	for k, v := range want {
		data, ok := c2.Sites()[c2.Selector().MasterOf(k/100)].ReadLocal(ref(k))
		if !ok || data[0] != v {
			t.Fatalf("key %d after recovery: %v %v, want %d", k, data, ok, v)
		}
	}
	// Rows loaded (not logged) before the checkpoint survive via the
	// snapshot — something full redo replay cannot reconstruct.
	if data, ok := c2.Sites()[0].ReadLocal(ref(999)); !ok || data[0] != 0 {
		t.Fatalf("loaded row lost across checkpointed restart: %v %v", data, ok)
	}
}

func walBytes(t *testing.T, dir string, sites int) int64 {
	t.Helper()
	var total int64
	for i := 0; i < sites; i++ {
		st, err := os.Stat(filepath.Join(dir, fmt.Sprintf("site-%d.wal", i)))
		if err != nil {
			t.Fatal(err)
		}
		total += st.Size()
	}
	return total
}

// A corrupt newest checkpoint is rejected whole (verify-before-install) and
// recovery falls back to the previous checkpoint.
func TestCorruptedCheckpointFallsBack(t *testing.T) {
	dir := t.TempDir()
	cfg := Config{Sites: 2, Partitioner: partitionBy100, WALDir: dir}
	c, err := NewCluster(cfg)
	if err != nil {
		t.Fatal(err)
	}
	c.CreateTable("kv")
	c.Load([]systems.LoadRow{{Ref: ref(1), Data: []byte{0}}, {Ref: ref(101), Data: []byte{0}}})
	initial := captureInitial(c)
	sess := c.Session(1)

	want := drive(t, c, sess, 300, 0)
	if err := c.WaitQuiesced(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	m1, err := c.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}
	for k, v := range drive(t, c, sess, 200, 0x77) {
		want[k] = v
	}
	if err := c.WaitQuiesced(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	m2, err := c.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}
	if m2.Seq <= m1.Seq {
		t.Fatalf("checkpoint seqs not increasing: %d then %d", m1.Seq, m2.Seq)
	}
	for k, v := range drive(t, c, sess, 100, 0x33) {
		want[k] = v
	}
	if err := c.WaitQuiesced(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	c.Close()

	// Bit-rot the newest checkpoint's site-1 snapshot.
	snap := filepath.Join(checkpoint.Dir(dir, m2.Seq), checkpoint.SnapshotName(1))
	data, err := os.ReadFile(snap)
	if err != nil {
		t.Fatal(err)
	}
	if len(data) == 0 {
		t.Fatal("empty snapshot")
	}
	data[len(data)/3] ^= 0x10
	if err := os.WriteFile(snap, data, 0o644); err != nil {
		t.Fatal(err)
	}

	c2, err := NewCluster(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	c2.CreateTable("kv")
	if err := c2.Recover(initial); err != nil {
		t.Fatal(err)
	}
	st := c2.LastRecovery()
	if !st.UsedCheckpoint || st.Seq != m1.Seq {
		t.Fatalf("recovery used %+v, want fallback to checkpoint %d", st, m1.Seq)
	}
	if err := c2.WaitQuiesced(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	for k, v := range want {
		data, ok := c2.Sites()[c2.Selector().MasterOf(k/100)].ReadLocal(ref(k))
		if !ok || data[0] != v {
			t.Fatalf("key %d after fallback recovery: %v %v, want %d", k, data, ok, v)
		}
	}
}

// Shutdown-ordering regression: Close is idempotent, a background
// checkpointer racing shutdown leaves no torn manifest, and the survivors
// on disk restart cleanly.
func TestCloseTwiceAndRestart(t *testing.T) {
	dir := t.TempDir()
	cfg := Config{
		Sites:                  2,
		Partitioner:            partitionBy100,
		WALDir:                 dir,
		CheckpointEvery:        time.Millisecond, // races Close on purpose
		CheckpointEveryRecords: 50,
	}
	c, err := NewCluster(cfg)
	if err != nil {
		t.Fatal(err)
	}
	c.CreateTable("kv")
	c.Load([]systems.LoadRow{{Ref: ref(1), Data: []byte{0}}})
	initial := captureInitial(c)
	sess := c.Session(1)
	want := drive(t, c, sess, 500, 0)
	if err := c.WaitQuiesced(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	c.Close()
	c.Close() // idempotent

	// Every surviving checkpoint directory is committed or absent — never
	// a torn manifest (temp files or manifest inconsistent with sites).
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range ents {
		if !e.IsDir() {
			continue
		}
		if _, err := os.Stat(filepath.Join(dir, e.Name(), checkpoint.ManifestName+".tmp")); err == nil {
			t.Fatalf("torn manifest temp file in %s", e.Name())
		}
	}

	c2, err := NewCluster(cfg)
	if err != nil {
		t.Fatal(err)
	}
	c2.CreateTable("kv")
	if err := c2.Recover(initial); err != nil {
		t.Fatal(err)
	}
	if err := c2.WaitQuiesced(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	for k, v := range want {
		data, ok := c2.Sites()[c2.Selector().MasterOf(k/100)].ReadLocal(ref(k))
		if !ok || data[0] != v {
			t.Fatalf("key %d after restart: %v %v, want %d", k, data, ok, v)
		}
	}
	c2.Close()
	c2.Close()
}
