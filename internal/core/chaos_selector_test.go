package core

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"time"

	"dynamast/internal/selector"
	"dynamast/internal/storage"
	"dynamast/internal/systems"
	"dynamast/internal/transport"
)

// Selector-tier chaos: the same seed-42 fault mix as the site-kill chaos
// run, but the crash victim is the control plane itself — the selector
// holding the leadership lease dies mid-workload. A hot standby must
// promote within a bounded window (the lease TTL governs detection), the
// deposed leader must be fenced (its routing fails fast with the retryable
// ErrNoLeader, never acting on dead authority), every pair snapshot must
// stay consistent, commits must stay exactly-once, and no partition may
// end with more or fewer than one master.

const selectorChaosLease = 50 * time.Millisecond

func TestChaosSelectorLeaderKill(t *testing.T) {
	c, inj, _ := newChaosCluster(t, func(cfg *Config) {
		cfg.SelectorLease = selectorChaosLease
	})
	ha := c.SelectorHA()
	if ha == nil {
		t.Fatal("SelectorLease did not enable HA")
	}
	if got := len(c.SelectorReplicas()); got != 2 {
		t.Fatalf("HA defaulted %d standbys, want 2", got)
	}
	oldLeader := c.Selector()

	const (
		pairs   = chaosPairs
		workers = 6
		iters   = 40
	)

	// Seed every pair so both halves are equal before readers start.
	setup := c.Session(500)
	for p := uint64(0); p < pairs; p++ {
		a, b := ref(p), ref(p+500)
		if err := setup.Update([]storage.RowRef{a, b}, func(tx systems.Tx) error {
			av, _ := tx.Read(a)
			if err := tx.Write(a, []byte{av[0] + 1}); err != nil {
				return err
			}
			return tx.Write(b, []byte{av[0] + 1})
		}); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.WaitQuiesced(10 * time.Second); err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	stop := make(chan struct{})
	var stopOnce sync.Once
	stopAll := func() { stopOnce.Do(func() { close(stop) }) }
	violations := make(chan string, 64)

	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			sess := c.Session(w)
			for i := 0; i < iters; i++ {
				p := uint64(rng.Intn(pairs))
				a, b := ref(p), ref(p+500)
				err := sess.Update([]storage.RowRef{a, b}, func(tx systems.Tx) error {
					av, _ := tx.Read(a)
					n := byte(0)
					if len(av) > 0 {
						n = av[0]
					}
					if err := tx.Write(a, []byte{n + 1}); err != nil {
						return err
					}
					return tx.Write(b, []byte{n + 1})
				})
				if err != nil {
					violations <- fmt.Sprintf("writer %d: %v", w, err)
					return
				}
			}
		}(w)
	}

	// Readers must keep flowing off the replica tier with no leader up.
	for r := 0; r < 3; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(100 + r)))
			sess := c.Session(100 + r)
			for {
				select {
				case <-stop:
					return
				default:
				}
				p := uint64(rng.Intn(pairs))
				a, b := ref(p), ref(p+500)
				err := sess.Read(func(tx systems.Tx) error {
					av, _ := tx.Read(a)
					bv, _ := tx.Read(b)
					var an, bn byte
					if len(av) > 0 {
						an = av[0]
					}
					if len(bv) > 0 {
						bn = bv[0]
					}
					if an != bn {
						return fmt.Errorf("pair %d torn: %d != %d", p, an, bn)
					}
					return nil
				})
				if err != nil {
					violations <- fmt.Sprintf("reader %d: %v", r, err)
					return
				}
			}
		}(r)
	}

	// Kill the selector leader once roughly a third of the workload is in.
	killTarget := uint64(pairs + workers*iters/3)
	killDeadline := time.Now().Add(30 * time.Second)
	for uint64(c.Stats().Commits) < killTarget {
		if time.Now().After(killDeadline) {
			stopAll()
			t.Fatal("workload never reached the kill threshold")
		}
		time.Sleep(time.Millisecond)
	}
	killedAt := time.Now()
	killed := c.KillSelector()
	if killed != 0 {
		stopAll()
		t.Fatalf("killed selector node %d, want initial leader 0", killed)
	}

	// A standby must promote within the lease-bounded window: the lease
	// expires at most TTL + TTL/4 after the last renewal, plus the
	// fence+fold+swap work — about 2x the TTL, with generous scheduler
	// slack for -race CI.
	for ha.Promotions() == 0 {
		if time.Since(killedAt) > 10*time.Second {
			stopAll()
			t.Fatal("standby never promoted after the leader kill")
		}
		time.Sleep(time.Millisecond)
	}
	promotionWindow := time.Since(killedAt)
	t.Logf("selector failover window: %v (lease %v)", promotionWindow, selectorChaosLease)
	if bound := 2*selectorChaosLease + 500*time.Millisecond; promotionWindow > bound {
		stopAll()
		t.Fatalf("promotion took %v, want < %v (~2x lease)", promotionWindow, bound)
	}

	// The deposed leader is fenced: no routes off dead authority, ever.
	if !oldLeader.Deposed() {
		stopAll()
		t.Fatal("killed leader not deposed")
	}
	if _, err := oldLeader.RouteWrite(999, []storage.RowRef{ref(1)}, nil); !errors.Is(err, selector.ErrNoLeader) {
		stopAll()
		t.Fatalf("deposed leader routed a write: %v", err)
	}
	if c.Selector() == oldLeader {
		stopAll()
		t.Fatal("cluster still exposes the deposed selector as leader")
	}

	// All writers finish despite the control-plane crash.
	done := make(chan struct{})
	go func() {
		wg.Wait()
		close(done)
	}()
	writersDone := make(chan struct{})
	go func() {
		for c.Stats().Commits < workers*iters+pairs {
			select {
			case <-done:
				close(writersDone)
				return
			case <-time.After(5 * time.Millisecond):
			}
		}
		stopAll()
		<-done
		close(writersDone)
	}()
	select {
	case v := <-violations:
		stopAll()
		t.Fatalf("consistency violation: %s", v)
	case <-writersDone:
	case <-time.After(60 * time.Second):
		t.Fatal("workload hung after the selector kill")
	}
	select {
	case v := <-violations:
		t.Fatalf("consistency violation: %s", v)
	default:
	}

	// The promoted leader must run full remaster chains: force cross-
	// partition co-locations through it (fresh lease-store epochs, delta
	// feed, site grants).
	cross := c.Session(901)
	for q := uint64(0); q < 10; q++ {
		a, b := ref(q*100), ref(((q+1)%10)*100)
		if err := cross.Update([]storage.RowRef{a, b}, func(tx systems.Tx) error {
			av, _ := tx.Read(a)
			if err := tx.Write(a, av); err != nil {
				return err
			}
			bv, _ := tx.Read(b)
			return tx.Write(b, bv)
		}); err != nil {
			t.Fatalf("post-promotion cross-partition update %d: %v", q, err)
		}
	}

	// Post-failover burst: throughput recovers promptly.
	burst := c.Session(900)
	burstStart := time.Now()
	for i := 0; i < 50; i++ {
		p := uint64(i % pairs)
		a, b := ref(p), ref(p+500)
		if err := burst.Update([]storage.RowRef{a, b}, func(tx systems.Tx) error {
			av, _ := tx.Read(a)
			if err := tx.Write(a, []byte{av[0] + 1}); err != nil {
				return err
			}
			return tx.Write(b, []byte{av[0] + 1})
		}); err != nil {
			t.Fatalf("post-failover update %d: %v", i, err)
		}
	}
	if d := time.Since(burstStart); d > 10*time.Second {
		t.Fatalf("post-failover burst took %v", d)
	}

	// Exactly-once: every committed increment counted once, nothing
	// duplicated across the leadership change.
	if err := c.WaitQuiesced(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	wantCommits := pairs + workers*iters + 10 + 50
	if commits := c.Stats().Commits; commits != uint64(wantCommits) {
		t.Fatalf("commits = %d, want %d", commits, wantCommits)
	}
	auditPairs(t, c, pairs)

	// No dual (or absent) mastership anywhere: each partition has exactly
	// one owning site, and the promoted selector agrees with it.
	for p := uint64(0); p < 10; p++ {
		owners := 0
		ownerSite := -1
		for i, s := range c.Sites() {
			if s.Masters(p) {
				owners++
				ownerSite = i
			}
		}
		if owners != 1 {
			t.Fatalf("partition %d has %d owning sites, want exactly 1", p, owners)
		}
		if got := c.Selector().MasterOf(p); got != ownerSite {
			t.Fatalf("partition %d: selector says %d, sites say %d", p, got, ownerSite)
		}
	}

	// The run exercised what it claims: injected faults fired, the lease
	// machinery carried control-plane traffic, leadership moved once.
	if inj.InjectedTotal() == 0 {
		t.Fatal("no faults were injected")
	}
	if got := ha.Leader(); got == 0 {
		t.Fatalf("leadership still at the killed node")
	}
	var leaseMsgs uint64
	for _, st := range c.Network().Stats() {
		if st.Category == transport.CatLease {
			leaseMsgs = st.Messages
		}
	}
	if leaseMsgs == 0 {
		t.Fatal("no lease-category traffic recorded")
	}
}

// TestReplicaResubmitAfterRemaster covers the ErrNotMaster resubmit path
// under fault injection: a replica's cached location goes stale after a
// mid-run remaster, the data site rejects the routed transaction, and the
// session must retry through RouteToMaster — across injected drops on the
// replica->master forwarding wire — and commit exactly once.
func TestReplicaResubmitAfterRemaster(t *testing.T) {
	inj := transport.NewInjector(7)
	inj.SetRules(
		transport.Rule{Category: transport.CatRoute, Kind: transport.FaultDrop, Prob: 0.25},
		transport.Rule{Category: transport.CatRoute, Kind: transport.FaultDelay, Prob: 1, Delay: 50 * time.Microsecond},
	)
	c, err := NewCluster(Config{
		Sites:            2,
		Partitioner:      partitionBy100,
		Weights:          selector.YCSBWeights(),
		SelectorReplicas: 1,
		Faults:           inj,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)
	c.CreateTable("kv")
	rows := make([]systems.LoadRow, 0, 200)
	for k := uint64(0); k < 200; k++ {
		rows = append(rows, systems.LoadRow{Ref: ref(k), Data: []byte{byte(k)}})
	}
	c.Load(rows)

	rep := c.SelectorReplicas()[0]
	sess := c.Session(0) // client 0 routes through replica 0

	// Prime the replica cache: a local write to partition 0 caches its
	// current master.
	if err := sess.Update([]storage.RowRef{ref(5)}, func(tx systems.Tx) error {
		return tx.Write(ref(5), []byte{1})
	}); err != nil {
		t.Fatal(err)
	}
	m0 := c.Selector().MasterOf(0)
	m1 := 1 - m0
	if owner, _ := rep.Mirror(); owner[0] != m0 {
		t.Fatalf("replica cache did not prime: %v", owner)
	}

	// Mid-run remaster behind the replica's back: partition 0 moves to the
	// other site (direct site-to-site transfer + master-selector
	// registration — the replica is not told).
	rel, err := c.Sites()[m0].Release([]uint64{0}, m1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Sites()[m1].Grant([]uint64{0}, rel, m0, 0); err != nil {
		t.Fatal(err)
	}
	c.Selector().RegisterPartition(0, m1)

	// The replica now routes partition 0 at the old master, which rejects
	// with ErrNotMaster; the session's retry must resubmit through
	// RouteToMaster (riding out injected CatRoute drops) and commit the
	// increment exactly once.
	before := c.Stats().Commits
	if err := sess.Update([]storage.RowRef{ref(5)}, func(tx systems.Tx) error {
		v, _ := tx.Read(ref(5))
		return tx.Write(ref(5), []byte{v[0] + 1})
	}); err != nil {
		t.Fatalf("resubmit update: %v", err)
	}
	if got := rep.Resubmits(); got == 0 {
		t.Fatal("session never resubmitted through RouteToMaster")
	}
	if got := c.Stats().Commits; got != before+1 {
		t.Fatalf("commits went %d -> %d, want exactly one more", before, got)
	}
	// The refreshed cache points at the new master.
	if owner, _ := rep.Mirror(); owner[0] != m1 {
		t.Fatalf("replica cache not refreshed after resubmit: partition 0 at %d, want %d", owner[0], m1)
	}
	// The committed value is the single increment.
	if err := sess.Read(func(tx systems.Tx) error {
		v, _ := tx.Read(ref(5))
		if len(v) != 1 || v[0] != 2 {
			return fmt.Errorf("value = %v, want [2]", v)
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if inj.InjectedTotal() == 0 {
		t.Fatal("no faults were injected on the routing wire")
	}
}

// TestFailoverRefreshesReplicaCaches is the regression test for failover
// leaving replica caches pointing at the dead site: Failover must push the
// heirs into every replica proactively, so post-failover writes route
// correctly on the first attempt instead of bouncing off ErrNotMaster (or
// hanging on a site that can no longer answer at all).
func TestFailoverRefreshesReplicaCaches(t *testing.T) {
	c, err := NewCluster(Config{
		Sites:            3,
		Partitioner:      partitionBy100,
		Weights:          selector.YCSBWeights(),
		SelectorReplicas: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)
	c.CreateTable("kv")
	rows := make([]systems.LoadRow, 0, 1000)
	for k := uint64(0); k < 1000; k++ {
		rows = append(rows, systems.LoadRow{Ref: ref(k), Data: []byte{byte(k)}})
	}
	c.Load(rows)

	rep := c.SelectorReplicas()[0]
	sess := c.Session(0)

	// Cache every partition's location in the replica.
	for p := uint64(0); p < 10; p++ {
		key := ref(p * 100)
		if err := sess.Update([]storage.RowRef{key}, func(tx systems.Tx) error {
			return tx.Write(key, []byte{1})
		}); err != nil {
			t.Fatal(err)
		}
	}
	victim := c.Selector().MasterOf(0)
	cached, _ := rep.Mirror()
	victimParts := make([]uint64, 0, 4)
	for p, site := range cached {
		if site == victim {
			victimParts = append(victimParts, p)
		}
	}
	if len(victimParts) == 0 {
		t.Skip("victim owns nothing under this scatter")
	}

	c.KillSite(victim)
	if err := c.Failover(victim); err != nil {
		t.Fatal(err)
	}

	// The replica cache must already point every orphaned partition at its
	// heir — no stale entries at the dead site.
	owner, _ := rep.Mirror()
	for _, p := range victimParts {
		if owner[p] == victim {
			t.Fatalf("replica cache still routes partition %d at the dead site", p)
		}
		if want := c.Selector().MasterOf(p); owner[p] != want {
			t.Fatalf("replica cache: partition %d at %d, selector says %d", p, owner[p], want)
		}
	}

	// First-attempt routing: the writes succeed without a single
	// stale-metadata resubmit.
	for _, p := range victimParts {
		key := ref(p * 100)
		if err := sess.Update([]storage.RowRef{key}, func(tx systems.Tx) error {
			return tx.Write(key, []byte{2})
		}); err != nil {
			t.Fatalf("post-failover write to partition %d: %v", p, err)
		}
	}
	if got := rep.Resubmits(); got != 0 {
		t.Fatalf("%d stale-metadata resubmits after failover, want 0 (caches should be pre-refreshed)", got)
	}
}
