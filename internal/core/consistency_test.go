package core

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"time"

	"dynamast/internal/storage"
	"dynamast/internal/systems"
)

// Consistency checking: drive random concurrent transactions through a
// DynaMast cluster and verify snapshot-isolation and strong-session
// invariants post hoc.
//
// Every row holds a (writerID, seq) pair unique per committed write. The
// checker validates:
//
//  1. No lost updates: for each row, the sequence of committed writes
//     observed by a final read equals the number of committed updates to
//     that row (each update RMWs a per-row counter).
//  2. Snapshot consistency: a transaction that reads two rows always
//     updated together atomically must observe them equal.
//  3. Session monotonicity (SSSI): a session's reads never observe a
//     row-counter smaller than the value the session itself last wrote or
//     read.

func TestConsistencyAtomicPairsUnderConcurrency(t *testing.T) {
	c := newTestCluster(t, 3)
	// Pairs (k, k+500) span two partitions (partition size 100) and are
	// always written together with equal values.
	const pairs = 8
	const workers = 6
	const iters = 30

	// The loaded values of a pair's halves differ (byte(p) vs byte(p+500)),
	// so the pair invariant only holds after a pair's first co-write. Seed
	// every pair once, synchronously, before any reader starts.
	setup := c.Session(500)
	for p := uint64(0); p < pairs; p++ {
		a, b := ref(p), ref(p+500)
		if err := setup.Update([]storage.RowRef{a, b}, func(tx systems.Tx) error {
			av, _ := tx.Read(a)
			if err := tx.Write(a, []byte{av[0] + 1}); err != nil {
				return err
			}
			return tx.Write(b, []byte{av[0] + 1})
		}); err != nil {
			t.Fatal(err)
		}
	}
	// The seeds commit at one master; replicas apply them asynchronously.
	// The readers below open fresh sessions (empty cvv), and strong-session
	// SI lets a fresh session read any consistent snapshot — including the
	// pre-seed loaded state, whose pair halves differ by construction. Wait
	// for the seeds to replicate so the pair invariant holds cluster-wide
	// before the first read.
	if err := c.WaitQuiesced(10 * time.Second); err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	stop := make(chan struct{})
	var stopOnce sync.Once
	stopAll := func() { stopOnce.Do(func() { close(stop) }) }
	violations := make(chan string, 64)

	// Writers: atomically increment both halves of a random pair.
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			sess := c.Session(w)
			for i := 0; i < iters; i++ {
				p := uint64(rng.Intn(pairs))
				a, b := ref(p), ref(p+500)
				err := sess.Update([]storage.RowRef{a, b}, func(tx systems.Tx) error {
					av, _ := tx.Read(a)
					n := byte(0)
					if len(av) > 0 {
						n = av[0]
					}
					if err := tx.Write(a, []byte{n + 1}); err != nil {
						return err
					}
					return tx.Write(b, []byte{n + 1})
				})
				if err != nil {
					violations <- fmt.Sprintf("writer %d: %v", w, err)
					return
				}
			}
		}(w)
	}

	// Readers: under SI both halves of a pair must always be equal.
	for r := 0; r < 3; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(100 + r)))
			sess := c.Session(100 + r)
			for {
				select {
				case <-stop:
					return
				default:
				}
				p := uint64(rng.Intn(pairs))
				a, b := ref(p), ref(p+500)
				err := sess.Read(func(tx systems.Tx) error {
					av, aok := tx.Read(a)
					bv, bok := tx.Read(b)
					var an, bn byte
					if aok && len(av) > 0 {
						an = av[0]
					}
					if bok && len(bv) > 0 {
						bn = bv[0]
					}
					if an != bn {
						return fmt.Errorf("pair %d torn: %d != %d", p, an, bn)
					}
					return nil
				})
				if err != nil {
					violations <- err.Error()
					return
				}
			}
		}(r)
	}

	// Let writers finish, then stop readers.
	done := make(chan struct{})
	go func() {
		wg.Wait()
		close(done)
	}()
	writersDone := make(chan struct{})
	go func() {
		// Writers exit on their own; poll commit count.
		for c.Stats().Commits < workers*iters+pairs {
			select {
			case <-done:
				close(writersDone)
				return
			case <-time.After(5 * time.Millisecond):
			}
		}
		stopAll()
		<-done
		close(writersDone)
	}()
	select {
	case v := <-violations:
		stopAll()
		t.Fatalf("consistency violation: %s", v)
	case <-writersDone:
	}
	select {
	case v := <-violations:
		t.Fatalf("consistency violation: %s", v)
	default:
	}

	// Final audit: counters match committed increments per pair.
	if err := c.WaitQuiesced(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	total := 0
	sess := c.Session(999)
	for p := uint64(0); p < pairs; p++ {
		err := sess.Read(func(tx systems.Tx) error {
			av, _ := tx.Read(ref(p))
			bv, _ := tx.Read(ref(p + 500))
			var an, bn byte
			if len(av) > 0 {
				an = av[0]
			}
			if len(bv) > 0 {
				bn = bv[0]
			}
			if an != bn {
				return fmt.Errorf("final pair %d torn: %d != %d", p, an, bn)
			}
			total += int(an)
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	// The seeding pass read the loaded value byte(p) of ref(p) and wrote
	// byte(p)+1 to both halves; the counters therefore start at byte(p)+1.
	expected := 0
	for p := uint64(0); p < pairs; p++ {
		expected += int(byte(p)) + 1
	}
	if got := c.Stats().Commits; got != workers*iters+pairs {
		t.Fatalf("commits = %d, want %d", got, workers*iters+pairs)
	}
	if total < expected || total > expected+workers*iters {
		t.Fatalf("total counter mass %d outside [%d, %d]", total, expected, expected+workers*iters)
	}
}

func TestConsistencySessionMonotonic(t *testing.T) {
	// A session interleaving updates and reads across replicas must never
	// observe its counter going backwards (SSSI).
	c := newTestCluster(t, 4)
	var wg sync.WaitGroup
	fail := make(chan string, 8)
	for w := 0; w < 6; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			sess := c.Session(w)
			key := ref(uint64(w * 150)) // private key per session
			last := -1
			for i := 0; i < 25; i++ {
				if err := sess.Update([]storage.RowRef{key}, func(tx systems.Tx) error {
					return tx.Write(key, []byte{byte(i)})
				}); err != nil {
					fail <- err.Error()
					return
				}
				last = i
				if err := sess.Read(func(tx systems.Tx) error {
					data, ok := tx.Read(key)
					if !ok || int(data[0]) < last {
						return fmt.Errorf("session %d: read %v after writing %d", w, data, last)
					}
					return nil
				}); err != nil {
					fail <- err.Error()
					return
				}
			}
		}(w)
	}
	wg.Wait()
	select {
	case v := <-fail:
		t.Fatal(v)
	default:
	}
}

func TestConsistencyMonotonicAcrossRemastering(t *testing.T) {
	// Remastering a counter's partition back and forth must never lose or
	// reorder increments: two sessions alternately pull the partition to
	// opposite "sides" via co-writes with anchor partitions.
	c := newTestCluster(t, 2)
	shared := ref(450)  // partition 4, the contended counter
	anchorA := ref(50)  // partition 0
	anchorB := ref(950) // partition 9
	sessA := c.Session(1)
	sessB := c.Session(2)

	inc := func(sess *Session, anchor storage.RowRef) error {
		return sess.Update([]storage.RowRef{anchor, shared}, func(tx systems.Tx) error {
			cur, _ := tx.Read(shared)
			n := byte(0)
			if len(cur) > 0 {
				n = cur[0]
			}
			if err := tx.Write(shared, []byte{n + 1}); err != nil {
				return err
			}
			return tx.Write(anchor, []byte{n})
		})
	}
	const rounds = 20
	for i := 0; i < rounds; i++ {
		if err := inc(sessA, anchorA); err != nil {
			t.Fatal(err)
		}
		if err := inc(sessB, anchorB); err != nil {
			t.Fatal(err)
		}
	}
	sess := c.Session(9)
	if err := c.WaitQuiesced(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	err := sess.Read(func(tx systems.Tx) error {
		data, ok := tx.Read(shared)
		// The counter starts at the loaded value byte(450%256) = 194 and
		// wraps mod 256; 2*rounds increments later:
		want := byte(194 + 2*rounds)
		if !ok || data[0] != want {
			return fmt.Errorf("counter = %v, want %d", data, want)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := c.Stats().Remasters; got == 0 {
		t.Fatal("test exercised no remastering")
	}
}
