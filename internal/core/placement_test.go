package core

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"time"

	"dynamast/internal/selector"
	"dynamast/internal/storage"
	"dynamast/internal/systems"
	"dynamast/internal/transport"
)

// Partial-replication tests: the placement API, the replica add/drop
// protocol under concurrent writes, the master-must-host invariant across
// remastering, and the pin that the default configuration remains exactly
// the paper's full-replication model.

// newPartialCluster builds an m-site cluster with replication bounds
// [min, max] and the placement controller effectively parked (hour-long
// interval), so tests drive replica moves deterministically.
func newPartialCluster(t *testing.T, m, min, max int) *Cluster {
	t.Helper()
	c, err := NewCluster(Config{
		Sites:             m,
		Partitioner:       partitionBy100,
		Weights:           selector.YCSBWeights(),
		MinReplicas:       min,
		MaxReplicas:       max,
		PlacementInterval: time.Hour,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)
	c.CreateTable("kv")
	rows := make([]systems.LoadRow, 0, 1000)
	for k := uint64(0); k < 1000; k++ {
		rows = append(rows, systems.LoadRow{Ref: ref(k), Data: []byte{byte(k)}})
	}
	c.Load(rows)
	return c
}

// TestDefaultIsFullReplication pins the compatibility contract: a cluster
// built without WithReplicationFactor / WithPlacementPolicy behaves exactly
// like the classic fully replicated DynaMast — every site hosts every
// partition, every write lands everywhere, and the placement API reports
// full replication.
func TestDefaultIsFullReplication(t *testing.T) {
	c := newTestCluster(t, 3)
	if c.Selector().PartialPlacement() {
		t.Fatal("default cluster reports partial placement")
	}
	info := c.Placement()
	if !info.FullReplication {
		t.Fatal("default cluster's PlacementInfo is not full replication")
	}
	if len(info.Partitions) != 0 {
		t.Fatalf("full replication carries %d explicit replica sets", len(info.Partitions))
	}
	for _, s := range c.Sites() {
		for p := uint64(0); p < 10; p++ {
			if !s.Hosts(p) {
				t.Fatalf("site %d does not host partition %d under full replication", s.ID(), p)
			}
		}
		if set := c.Selector().ReplicaSet(5); len(set) != 3 {
			t.Fatalf("ReplicaSet under full replication = %v, want all 3 sites", set)
		}
	}
	// A write is applied by every site's refresh stream.
	sess := c.Session(1)
	if err := sess.Update([]storage.RowRef{ref(7)}, func(tx systems.Tx) error {
		return tx.Write(ref(7), []byte("everywhere"))
	}); err != nil {
		t.Fatal(err)
	}
	if err := c.WaitQuiesced(5 * time.Second); err != nil {
		t.Fatal(err)
	}
	for _, s := range c.Sites() {
		if data, ok := s.ReadLocal(ref(7)); !ok || string(data) != "everywhere" {
			t.Fatalf("site %d: write not replicated: %q %v", s.ID(), data, ok)
		}
	}

	// StaticFullReplication as an explicit policy keeps the same fast path.
	c2, err := NewCluster(Config{
		Sites:           2,
		Partitioner:     partitionBy100,
		PlacementPolicy: selector.StaticFullReplication{},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	if c2.Selector().PartialPlacement() {
		t.Fatal("StaticFullReplication enabled partial placement")
	}
}

// TestReplicationFactorOptionValidation pins the option-error contract.
func TestReplicationFactorOptionValidation(t *testing.T) {
	if _, err := NewWithOptions(WithSites(2), WithPartitioner(partitionBy100),
		WithReplicationFactor(0, 2)); err == nil {
		t.Error("min 0 accepted")
	}
	if _, err := NewWithOptions(WithSites(2), WithPartitioner(partitionBy100),
		WithReplicationFactor(3, 2)); err == nil {
		t.Error("max < min accepted")
	}
}

// TestPartialSeedMembership checks the deterministic seed placement: with
// bounds [2, m] on 4 sites every partition starts on exactly 2 sites, the
// master is one of them, and non-members hold none of the partition's rows.
func TestPartialSeedMembership(t *testing.T) {
	c := newPartialCluster(t, 4, 2, 4)
	sel := c.Selector()
	if !sel.PartialPlacement() {
		t.Fatal("partial placement not enabled")
	}
	for p := uint64(0); p < 10; p++ {
		set := sel.ReplicaSet(p)
		if len(set) != 2 {
			t.Fatalf("partition %d replica set %v, want 2 members", p, set)
		}
		if !hostedIn(set, sel.MasterOf(p)) {
			t.Fatalf("partition %d master %d outside replica set %v", p, sel.MasterOf(p), set)
		}
		for i, s := range c.Sites() {
			member := hostedIn(set, i)
			if s.Hosts(p) != member {
				t.Fatalf("site %d Hosts(%d) = %v, membership says %v", i, p, s.Hosts(p), member)
			}
			if data, ok := s.ReadLocal(ref(p * 100)); ok != member {
				t.Fatalf("site %d holds row of partition %d: %v (member %v, data %q)", i, p, ok, member, data)
			}
		}
	}
	info := c.Placement()
	if info.FullReplication || info.MinReplicas != 2 {
		t.Fatalf("PlacementInfo = %+v, want partial with min 2", info)
	}
	total := 0
	for _, n := range info.Residency {
		total += n
	}
	if total != 2*10 {
		t.Fatalf("total residency %d, want %d (10 partitions x 2 replicas)", total, 20)
	}
}

// TestRemasterToNonReplica checks add-then-grant: a multi-partition write
// whose destination site is outside one partition's replica set must first
// make the destination a hosting replica, so the master-is-a-member
// invariant holds after the remaster chain completes.
func TestRemasterToNonReplica(t *testing.T) {
	c := newPartialCluster(t, 4, 1, 4)
	sel := c.Selector()

	// Find two partitions with different (singleton) replica sets.
	p1 := uint64(0)
	p2 := uint64(0)
	for p := uint64(1); p < 10; p++ {
		if sel.MasterOf(p) != sel.MasterOf(p1) {
			p2 = p
			break
		}
	}
	if p2 == 0 {
		t.Fatal("all partitions mastered at one site; cannot exercise remastering")
	}

	sess := c.Session(1)
	ws := []storage.RowRef{ref(p1 * 100), ref(p2 * 100)}
	if err := sess.Update(ws, func(tx systems.Tx) error {
		for _, r := range ws {
			if err := tx.Write(r, []byte("co")); err != nil {
				return err
			}
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}

	m1, m2 := sel.MasterOf(p1), sel.MasterOf(p2)
	if m1 != m2 {
		t.Fatalf("multi-partition write left masters apart: %d vs %d", m1, m2)
	}
	for _, p := range []uint64{p1, p2} {
		if !hostedIn(sel.ReplicaSet(p), m1) {
			t.Fatalf("partition %d master %d outside replica set %v after remaster", p, m1, sel.ReplicaSet(p))
		}
		if !c.Sites()[m1].Hosts(p) {
			t.Fatalf("partition %d master %d does not host it after remaster", p, m1)
		}
		if !c.Sites()[m1].Masters(p) {
			t.Fatalf("partition %d: site-level mastership missing at %d", p, m1)
		}
	}
}

// TestReplicaAddBootstrapRace adds a replica while writers hammer the
// partition: the flip-then-bootstrap protocol must leave the new replica
// with exactly the same rows as the master — no write lost in the gap
// between the snapshot cut and the filtered applier stream, none doubly
// installed.
func TestReplicaAddBootstrapRace(t *testing.T) {
	c := newPartialCluster(t, 3, 1, 3)
	sel := c.Selector()
	const part = uint64(0)
	master := sel.MasterOf(part)
	tgt := -1
	for i := range c.Sites() {
		if i != master && !c.Sites()[i].Hosts(part) {
			tgt = i
			break
		}
	}
	if tgt < 0 {
		t.Fatal("no non-hosting target site")
	}

	const writers = 4
	const iters = 50
	var wg sync.WaitGroup
	errCh := make(chan error, writers)
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			sess := c.Session(w)
			for i := 0; i < iters; i++ {
				k := uint64(w*20 + i%20) // keys 0..79, all partition 0
				if err := sess.Update([]storage.RowRef{ref(k)}, func(tx systems.Tx) error {
					return tx.Write(ref(k), []byte{byte(w), byte(i)})
				}); err != nil {
					errCh <- fmt.Errorf("writer %d: %w", w, err)
					return
				}
			}
		}(w)
	}
	// Let some writes land, then add the replica mid-stream.
	time.Sleep(2 * time.Millisecond)
	if err := c.AddReplica(part, tgt); err != nil {
		t.Fatal(err)
	}
	wg.Wait()
	select {
	case err := <-errCh:
		t.Fatal(err)
	default:
	}
	if err := c.WaitQuiesced(10 * time.Second); err != nil {
		t.Fatal(err)
	}

	if !c.Sites()[tgt].Hosts(part) || !hostedIn(sel.ReplicaSet(part), tgt) {
		t.Fatal("target site not a replica after AddReplica")
	}
	// Every row of the partition must read identically at the master and
	// the bootstrapped replica.
	for k := uint64(0); k < 100; k++ {
		want, wok := c.Sites()[master].ReadLocal(ref(k))
		got, gok := c.Sites()[tgt].ReadLocal(ref(k))
		if wok != gok || string(want) != string(got) {
			t.Fatalf("key %d diverged after bootstrap: master %q/%v, replica %q/%v", k, want, wok, got, gok)
		}
	}

	// And the replica can be dropped again (not the master), purging rows.
	other := 3 - master - tgt
	_ = other
	if err := c.DropReplica(part, tgt); err != nil {
		t.Fatal(err)
	}
	if c.Sites()[tgt].Hosts(part) {
		t.Fatal("target still hosts the partition after DropReplica")
	}
	if _, ok := c.Sites()[tgt].ReadLocal(ref(0)); ok {
		t.Fatal("dropped replica still serves the partition's rows")
	}
	if err := c.DropReplica(part, master); err == nil {
		t.Fatal("dropping the master's replica was allowed")
	}
}

// TestPartialReplicationByteSavings is the headline experiment for adaptive
// partial replication (BENCH_partial.json): a 64-partition, 8-site cluster
// under a Zipfian-skewed workload, replication bounds [2, 3] vs classic
// full replication. Partial replication must cut replication bytes per
// committed transaction by at least half and keep the mean per-site
// resident-partition count at or below half the partition count.
func TestPartialReplicationByteSavings(t *testing.T) {
	const sites, parts = 8, 64
	const clients, updates = 16, 40
	run := func(opts ...Option) (bytesPerTxn, meanResident float64, commits int) {
		base := []Option{Config{
			Sites:       sites,
			Partitioner: partitionBy100,
			Weights:     selector.YCSBWeights(),
		}}
		c, err := NewWithOptions(append(base, opts...)...)
		if err != nil {
			t.Fatal(err)
		}
		defer c.Close()
		c.CreateTable("kv")
		rows := make([]systems.LoadRow, 0, parts*4)
		for p := uint64(0); p < parts; p++ {
			for k := uint64(0); k < 4; k++ {
				rows = append(rows, systems.LoadRow{Ref: ref(p*100 + k), Data: []byte{byte(p)}})
			}
		}
		c.Load(rows)

		var wg sync.WaitGroup
		for cl := 0; cl < clients; cl++ {
			wg.Add(1)
			go func(cl int) {
				defer wg.Done()
				rng := rand.New(rand.NewSource(int64(cl)))
				zipf := rand.NewZipf(rng, 1.2, 1, parts-1)
				sess := c.Session(cl)
				for i := 0; i < updates; i++ {
					p := zipf.Uint64()
					key := ref(p*100 + uint64(cl%4))
					// YCSB-sized payload (the paper's workload writes 1KB
					// rows); epoch envelopes are per-frame, so realistic
					// payloads are what partial replication actually filters.
					val := make([]byte, 256)
					val[0], val[1] = byte(cl), byte(i)
					if err := sess.Update([]storage.RowRef{key}, func(tx systems.Tx) error {
						return tx.Write(key, val)
					}); err != nil {
						t.Error(err)
						return
					}
					// Skewed reads feed the adaptive policy's read weights.
					hint := []storage.RowRef{key}
					if err := sess.ReadHinted(hint, func(tx systems.Tx) error {
						tx.Read(key)
						return nil
					}); err != nil {
						t.Error(err)
						return
					}
				}
			}(cl)
		}
		wg.Wait()
		if err := c.WaitQuiesced(15 * time.Second); err != nil {
			t.Fatal(err)
		}
		var bytes uint64
		for _, st := range c.Network().Stats() {
			if st.Category == transport.CatReplication {
				bytes = st.Bytes
			}
		}
		total := 0
		for _, s := range c.Sites() {
			total += s.ResidentPartitions()
		}
		commits = int(c.Stats().Commits)
		return float64(bytes) / float64(commits), float64(total) / float64(sites), commits
	}

	fullPer, fullRes, fullCommits := run()
	partPer, partRes, partCommits := run(WithReplicationFactor(2, 3))
	t.Logf("replication bytes/txn: full %.1f (%d commits), partial %.1f (%d commits) — %.1f%% saved",
		fullPer, fullCommits, partPer, partCommits, 100*(1-partPer/fullPer))
	t.Logf("mean resident partitions/site: full %.1f, partial %.1f (of %d)", fullRes, partRes, parts)
	if partPer > 0.5*fullPer {
		t.Errorf("partial replication saves only %.1f%% replication bytes/txn, want >= 50%%",
			100*(1-partPer/fullPer))
	}
	if partRes > 0.5*parts {
		t.Errorf("mean resident partitions %.1f > half the partition count (%d)", partRes, parts/2)
	}
	if fullRes < float64(parts)-0.5 {
		t.Errorf("full replication baseline should be fully resident, got %.1f", fullRes)
	}
}

// TestChaosPartialReplicationSeed42 is the seed-42 chaos run (injected wire
// faults, site kill mid-run, heartbeat failover) on a cluster with
// replication bounds [2, 3] and the placement controller live: the same
// consistency, liveness and audit invariants must hold while replicas
// bootstrap, drop, and fail over with partitions hosted at only a subset of
// sites.
func TestChaosPartialReplicationSeed42(t *testing.T) {
	c, inj, _ := newChaosCluster(t, func(cfg *Config) {
		cfg.MinReplicas = 2
		cfg.MaxReplicas = 3
	})
	runChaosKillSiteMidRun(t, c, inj)
	// The run must actually have operated in partial mode.
	if !c.Selector().PartialPlacement() {
		t.Fatal("chaos cluster was not in partial mode")
	}
	info := c.Placement()
	if info.FullReplication {
		t.Fatal("placement reports full replication")
	}
}
