// Package storage implements DynaMast's in-memory multi-version row store
// (the paper's Hekaton-like database component, §V-A1).
//
// Records live in row-oriented in-memory tables indexed by a uint64 primary
// key. Every update creates a new versioned record stamped with the origin
// site and that site's commit sequence number; a transaction reading at
// snapshot vector snap sees the newest version whose stamp (origin, seq)
// satisfies seq <= snap[origin]. Concurrent writers to the same record are
// mutually excluded with per-record locks (writes block, they do not
// abort); readers never block.
//
// The store keeps a bounded number of versions per record (four by default,
// matching the paper's empirically chosen setting) and discards older ones.
package storage

import (
	"sync"

	"dynamast/internal/vclock"
)

// Stamp identifies the committed transaction that produced a version: the
// site it originated at and its position in that site's commit order. It is
// the projection of the transaction version vector tvv onto the origin
// dimension, which is all MVCC visibility requires.
type Stamp struct {
	Origin int
	Seq    uint64
}

// VisibleAt reports whether a version with this stamp is contained in the
// snapshot snap.
func (s Stamp) VisibleAt(snap vclock.Vector) bool {
	if s.Origin < 0 || s.Origin >= len(snap) {
		return false
	}
	return s.Seq <= snap[s.Origin]
}

// version is one entry of a record's version chain.
type version struct {
	stamp   Stamp
	data    []byte
	deleted bool
}

// Record is a multi-versioned row. The write lock (Lock/Unlock) mutually
// excludes transactions updating the record and is held for the duration of
// the owning transaction; Install appends versions while locked. Refresh
// transactions installing propagated updates use the same lock briefly.
type Record struct {
	lock chan struct{} // 1-slot semaphore: usable across goroutines

	mu       sync.RWMutex // guards versions
	versions []version    // newest first
}

func newRecord() *Record {
	return &Record{lock: make(chan struct{}, 1)}
}

// Lock acquires the record's write lock, blocking until available.
func (r *Record) Lock() { r.lock <- struct{}{} }

// TryLock acquires the write lock if it is free and reports success.
func (r *Record) TryLock() bool {
	select {
	case r.lock <- struct{}{}:
		return true
	default:
		return false
	}
}

// Unlock releases the write lock. Unlike sync.Mutex it may be released by a
// different goroutine than the one that acquired it, which the commit path
// of a networked database needs.
func (r *Record) Unlock() { <-r.lock }

// Install prepends a new version. maxVersions bounds the chain length; 0
// means unbounded. Callers hold the write lock (local updates) or are the
// single refresh applier for the record's partition.
func (r *Record) Install(stamp Stamp, data []byte, deleted bool, maxVersions int) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.versions = append(r.versions, version{})
	copy(r.versions[1:], r.versions)
	r.versions[0] = version{stamp: stamp, data: data, deleted: deleted}
	if maxVersions > 0 && len(r.versions) > maxVersions {
		r.versions = r.versions[:maxVersions]
	}
}

// Read returns the newest version visible at snap. ok is false if no
// visible version exists or the visible version is a tombstone.
func (r *Record) Read(snap vclock.Vector) (data []byte, ok bool) {
	data, ok, _ = r.ReadChecked(snap)
	return data, ok
}

// ReadChecked is Read distinguishing a clean miss from an evicted one:
// evicted is true when the record holds versions but none is visible at
// snap, meaning either the key was created after the snapshot or — the case
// callers must not ignore — the version the snapshot could see was trimmed
// off the bounded chain by newer installs. A transaction receiving
// evicted=true cannot trust the miss and should retry on a fresher
// snapshot. A visible tombstone is a clean miss, not an eviction.
func (r *Record) ReadChecked(snap vclock.Vector) (data []byte, ok, evicted bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	for _, v := range r.versions {
		if v.stamp.VisibleAt(snap) {
			if v.deleted {
				return nil, false, false
			}
			return v.data, true, false
		}
	}
	return nil, false, len(r.versions) > 0
}

// ReadLatest returns the newest version regardless of snapshot; used for
// data shipping (LEAP) and replica bootstrap.
func (r *Record) ReadLatest() (data []byte, stamp Stamp, ok bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	if len(r.versions) == 0 || r.versions[0].deleted {
		return nil, Stamp{}, false
	}
	return r.versions[0].data, r.versions[0].stamp, true
}

// HeadStamp returns the stamp of the newest version (tombstone or not);
// ok is false only for records with no versions at all.
func (r *Record) HeadStamp() (Stamp, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	if len(r.versions) == 0 {
		return Stamp{}, false
	}
	return r.versions[0].stamp, true
}

// VersionCount returns the current length of the version chain.
func (r *Record) VersionCount() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.versions)
}
