package storage

import (
	"fmt"
	"testing"

	"dynamast/internal/vclock"
)

func BenchmarkRecordInstall(b *testing.B) {
	for _, cap := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("versions=%d", cap), func(b *testing.B) {
			r := newRecord()
			data := make([]byte, 100)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				r.Install(Stamp{0, uint64(i + 1)}, data, false, cap)
			}
		})
	}
}

func BenchmarkRecordRead(b *testing.B) {
	r := newRecord()
	for s := uint64(1); s <= 4; s++ {
		r.Install(Stamp{0, s}, make([]byte, 100), false, 4)
	}
	snap := vclock.Vector{3}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := r.Read(snap); !ok {
			b.Fatal("miss")
		}
	}
}

func BenchmarkTableGet(b *testing.B) {
	t := NewTable("t")
	for k := uint64(0); k < 100_000; k++ {
		t.Record(k, true).Install(Stamp{0, 1}, make([]byte, 100), false, 4)
	}
	snap := vclock.Vector{1}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := t.Get(uint64(i)%100_000, snap); !ok {
			b.Fatal("miss")
		}
	}
}

func BenchmarkTableScan1000(b *testing.B) {
	t := NewTable("t")
	for k := uint64(0); k < 100_000; k++ {
		t.Record(k, true).Install(Stamp{0, 1}, make([]byte, 100), false, 4)
	}
	snap := vclock.Vector{1}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		lo := uint64(i) % 99_000
		if rows := t.Scan(lo, lo+1000, snap); len(rows) != 1000 {
			b.Fatalf("rows=%d", len(rows))
		}
	}
}

func BenchmarkLockSet3(b *testing.B) {
	s := NewStore(0)
	s.CreateTable("t")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		k := uint64(i % 1000)
		_, recs, err := s.LockSet([]RowRef{{"t", k}, {"t", k + 1}, {"t", k + 2}})
		if err != nil {
			b.Fatal(err)
		}
		UnlockAll(recs)
	}
}

func BenchmarkStoreApply(b *testing.B) {
	s := NewStore(0)
	s.CreateTable("t")
	writes := []Write{
		{Ref: RowRef{"t", 1}, Data: make([]byte, 100)},
		{Ref: RowRef{"t", 2}, Data: make([]byte, 100)},
		{Ref: RowRef{"t", 3}, Data: make([]byte, 100)},
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Apply(Stamp{0, uint64(i + 1)}, writes)
	}
}
