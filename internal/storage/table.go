package storage

import (
	"sort"
	"sync"

	"dynamast/internal/vclock"
)

const tableShards = 16

// Table is a row-oriented in-memory table keyed by uint64 primary keys.
// Lookups and inserts are sharded; range scans iterate the key space in
// order. Keys in this system are dense within ranges (workloads encode
// composite keys into uint64), so scans enumerate the sorted key set.
type Table struct {
	name   string
	shards [tableShards]tableShard
}

type tableShard struct {
	mu   sync.RWMutex
	recs map[uint64]*Record
	keys []uint64 // sorted; maintained on insert
}

// NewTable returns an empty table with the given name.
func NewTable(name string) *Table {
	t := &Table{name: name}
	for i := range t.shards {
		t.shards[i].recs = make(map[uint64]*Record)
	}
	return t
}

// Name returns the table's name.
func (t *Table) Name() string { return t.name }

func (t *Table) shard(key uint64) *tableShard {
	return &t.shards[key%tableShards]
}

// Record returns the record for key, creating it if create is set.
func (t *Table) Record(key uint64, create bool) *Record {
	s := t.shard(key)
	s.mu.RLock()
	r := s.recs[key]
	s.mu.RUnlock()
	if r != nil || !create {
		return r
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if r = s.recs[key]; r != nil {
		return r
	}
	r = newRecord()
	s.recs[key] = r
	i := sort.Search(len(s.keys), func(i int) bool { return s.keys[i] >= key })
	s.keys = append(s.keys, 0)
	copy(s.keys[i+1:], s.keys[i:])
	s.keys[i] = key
	return r
}

// Get reads key at snapshot snap.
func (t *Table) Get(key uint64, snap vclock.Vector) ([]byte, bool) {
	r := t.Record(key, false)
	if r == nil {
		return nil, false
	}
	return r.Read(snap)
}

// GetChecked is Get distinguishing a clean miss from one caused by version
// eviction (see Record.ReadChecked); a missing record is a clean miss.
func (t *Table) GetChecked(key uint64, snap vclock.Vector) (data []byte, ok, evicted bool) {
	r := t.Record(key, false)
	if r == nil {
		return nil, false, false
	}
	return r.ReadChecked(snap)
}

// GetLatest reads the newest committed version of key.
func (t *Table) GetLatest(key uint64) ([]byte, Stamp, bool) {
	r := t.Record(key, false)
	if r == nil {
		return nil, Stamp{}, false
	}
	return r.ReadLatest()
}

// KV is one row produced by a scan.
type KV struct {
	Key   uint64
	Value []byte
}

// Scan returns all visible rows with lo <= key < hi at snapshot snap, in
// key order.
func (t *Table) Scan(lo, hi uint64, snap vclock.Vector) []KV {
	out, _ := t.ScanChecked(lo, hi, snap)
	return out
}

// ScanChecked is Scan also reporting whether any skipped record was an
// eviction miss rather than a clean one (see Record.ReadChecked): a row the
// snapshot should see may have been trimmed off its bounded version chain,
// so the scan result cannot be trusted and the caller should retry on a
// fresher snapshot.
func (t *Table) ScanChecked(lo, hi uint64, snap vclock.Vector) (out []KV, evicted bool) {
	for i := range t.shards {
		s := &t.shards[i]
		s.mu.RLock()
		start := sort.Search(len(s.keys), func(j int) bool { return s.keys[j] >= lo })
		for j := start; j < len(s.keys) && s.keys[j] < hi; j++ {
			k := s.keys[j]
			data, ok, ev := s.recs[k].ReadChecked(snap)
			if ok {
				out = append(out, KV{Key: k, Value: data})
			} else if ev {
				evicted = true
			}
		}
		s.mu.RUnlock()
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Key < out[j].Key })
	return out, evicted
}

// ScanKeys calls fn for each visible row in [lo, hi) in shard order
// (not globally sorted); fn returning false stops the scan early. It avoids
// the allocation and sort of Scan for aggregate-style consumers. The
// returned evicted flag is ScanChecked's.
func (t *Table) ScanKeys(lo, hi uint64, snap vclock.Vector, fn func(key uint64, data []byte) bool) (evicted bool) {
	for i := range t.shards {
		s := &t.shards[i]
		s.mu.RLock()
		start := sort.Search(len(s.keys), func(j int) bool { return s.keys[j] >= lo })
		for j := start; j < len(s.keys) && s.keys[j] < hi; j++ {
			k := s.keys[j]
			data, ok, ev := s.recs[k].ReadChecked(snap)
			if ok {
				if !fn(k, data) {
					s.mu.RUnlock()
					return evicted
				}
			} else if ev {
				evicted = true
			}
		}
		s.mu.RUnlock()
	}
	return evicted
}

// Keys returns the number of records (of any visibility) in the table.
func (t *Table) Keys() int {
	n := 0
	for i := range t.shards {
		s := &t.shards[i]
		s.mu.RLock()
		n += len(s.keys)
		s.mu.RUnlock()
	}
	return n
}

// RemoveMatching deletes every record whose key matches and returns how
// many were removed. Callers must exclude concurrent readers of the removed
// keys; lookups racing the removal see either the record or a clean miss.
func (t *Table) RemoveMatching(match func(key uint64) bool) int {
	removed := 0
	for i := range t.shards {
		s := &t.shards[i]
		s.mu.Lock()
		kept := s.keys[:0]
		for _, k := range s.keys {
			if match(k) {
				delete(s.recs, k)
				removed++
				continue
			}
			kept = append(kept, k)
		}
		s.keys = kept
		s.mu.Unlock()
	}
	return removed
}

// ForEachLatest iterates every record's newest version; used to bootstrap a
// recovering replica from a live one.
func (t *Table) ForEachLatest(fn func(key uint64, data []byte, stamp Stamp)) {
	for i := range t.shards {
		s := &t.shards[i]
		s.mu.RLock()
		keys := append([]uint64(nil), s.keys...)
		recs := make([]*Record, len(keys))
		for j, k := range keys {
			recs[j] = s.recs[k]
		}
		s.mu.RUnlock()
		for j, r := range recs {
			if data, stamp, ok := r.ReadLatest(); ok {
				fn(keys[j], data, stamp)
			}
		}
	}
}
