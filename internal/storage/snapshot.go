package storage

import (
	"dynamast/internal/vclock"
)

// Snapshot export/import: the walk a checkpoint makes over the store.
//
// ExportAt visits every record once and emits the version a reader at
// snapshot svv would observe, without taking any write locks — concurrent
// update transactions keep committing while a checkpoint streams out. The
// subtlety is the bounded version chain: a record updated more than
// maxVersions times during the walk may have evicted the version that was
// visible at svv. In that case ExportAt falls back to the oldest retained
// version, which is necessarily NEWER than svv. That is safe for
// checkpointing because recovery replays the WAL suffix past svv anyway:
// the too-new version's own log entry is in that suffix and re-installs
// itself on top, so after replay the chain's newest-first prefix is exactly
// what a crash-free site would hold.

// ExportAt streams the store's contents as observed at snapshot svv to fn,
// table by table. Rows whose visible version is a tombstone (or that have
// no version at or before svv and no retained newer version) are skipped:
// an absent row and a deleted row are indistinguishable to readers, and
// suffix replay re-installs any post-svv tombstone. fn returning false
// stops the walk early; ExportAt reports whether the walk completed.
func (s *Store) ExportAt(svv vclock.Vector, fn func(table string, key uint64, data []byte, stamp Stamp) bool) bool {
	for _, name := range s.TableNames() {
		t := s.Table(name)
		if t == nil {
			continue
		}
		if !t.exportAt(name, svv, fn) {
			return false
		}
	}
	return true
}

// exportAt walks one table shard by shard. Keys and record pointers are
// copied under the shard read lock; version reads happen outside it so the
// walk never holds a shard lock across fn.
func (t *Table) exportAt(name string, svv vclock.Vector, fn func(table string, key uint64, data []byte, stamp Stamp) bool) bool {
	for i := range t.shards {
		s := &t.shards[i]
		s.mu.RLock()
		keys := append([]uint64(nil), s.keys...)
		recs := make([]*Record, len(keys))
		for j, k := range keys {
			recs[j] = s.recs[k]
		}
		s.mu.RUnlock()
		for j, r := range recs {
			data, stamp, ok := r.ExportAt(svv)
			if !ok {
				continue
			}
			if !fn(name, keys[j], data, stamp) {
				return false
			}
		}
	}
	return true
}

// ExportAt returns the version of the record a checkpoint at snapshot snap
// should carry: the newest version visible at snap, or — when concurrent
// writers evicted every snap-visible version from the bounded chain — the
// oldest retained version (newer than snap; its redo entry is in the replay
// suffix). ok is false for tombstones and empty records.
func (r *Record) ExportAt(snap vclock.Vector) (data []byte, stamp Stamp, ok bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	for _, v := range r.versions {
		if v.stamp.VisibleAt(snap) {
			if v.deleted {
				return nil, Stamp{}, false
			}
			return v.data, v.stamp, true
		}
	}
	// No retained version is visible at snap. Either the record was created
	// after snap (every version newer — exporting the oldest is safe, see
	// package comment), or the chain cap evicted the visible version.
	if n := len(r.versions); n > 0 {
		v := r.versions[n-1]
		if v.deleted {
			return nil, Stamp{}, false
		}
		return v.data, v.stamp, true
	}
	return nil, Stamp{}, false
}

// ImportRow installs one checkpointed row with its original stamp; used by
// recovery to rebuild a store from a snapshot file before replaying the WAL
// suffix on top.
func (s *Store) ImportRow(table string, key uint64, data []byte, stamp Stamp) {
	t := s.CreateTable(table)
	t.Record(key, true).Install(stamp, data, false, s.maxVersions)
}

// ImportRowIfNewer is ImportRow guarded against replay inversion: when the
// record already holds versions AND the row is at or below applied[origin]
// (the importer's clock — everything the running appliers have installed for
// that origin), the import is skipped and false returned. Install prepends
// blindly and reads are first-visible-wins, so importing an old snapshot row
// over a head some applier already advanced past would otherwise shadow the
// newer state permanently. An empty record always installs: rows that
// predate the retained WAL (initial loads, truncated prefixes) exist only in
// the snapshot.
func (s *Store) ImportRowIfNewer(table string, key uint64, data []byte, stamp Stamp, applied vclock.Vector) bool {
	t := s.CreateTable(table)
	r := t.Record(key, true)
	if r.VersionCount() > 0 && stamp.Origin < len(applied) && stamp.Seq <= applied[stamp.Origin] {
		return false
	}
	r.Install(stamp, data, false, s.maxVersions)
	return true
}

// ImportRowSuperseding installs a row exported from another store, guarded
// against shadowing newer local state: the import proceeds only when the
// record is empty, or when the local head version was already contained in
// the exporter's snapshot (srcVV) — meaning the exported version is at least
// as new as anything held here. A local head NOT visible at srcVV is ahead
// of the exporter (it arrived through a path the exporter had not observed)
// and must not be buried; version chains are newest-first, so a late stale
// install would poison every subsequent snapshot read. Replica-add
// bootstraps and recovery re-bootstraps use this: unlike ImportRowIfNewer's
// applied-vector guard, it stays correct when the importer's clock covers
// sequences whose writes were filtered out (partial replication advances the
// svv past skipped entries).
func (s *Store) ImportRowSuperseding(table string, key uint64, data []byte, stamp Stamp, srcVV vclock.Vector) bool {
	t := s.CreateTable(table)
	r := t.Record(key, true)
	if head, ok := r.HeadStamp(); ok {
		if head == stamp {
			return false // exactly this version is already installed
		}
		if !head.VisibleAt(srcVV) {
			return false // local state is ahead of the exporter
		}
	}
	r.Install(stamp, data, false, s.maxVersions)
	return true
}
