package storage

import (
	"fmt"
	"sync"
	"testing"

	"dynamast/internal/vclock"
)

func TestExportAtRoundtrip(t *testing.T) {
	src := NewStore(0)
	for k := uint64(0); k < 100; k++ {
		src.Apply(Stamp{Origin: int(k % 3), Seq: k/3 + 1}, []Write{
			{Ref: RowRef{Table: "acct", Key: k}, Data: []byte(fmt.Sprintf("v%d", k))},
		})
	}
	// A row deleted before the snapshot must not be exported.
	src.Apply(Stamp{Origin: 0, Seq: 40}, []Write{
		{Ref: RowRef{Table: "acct", Key: 7}, Deleted: true},
	})
	svv := vclock.Vector{40, 40, 40}

	dst := NewStore(0)
	n := 0
	if !src.ExportAt(svv, func(table string, key uint64, data []byte, stamp Stamp) bool {
		dst.ImportRow(table, key, data, stamp)
		n++
		return true
	}) {
		t.Fatal("export stopped early")
	}
	if n != 99 {
		t.Fatalf("exported %d rows, want 99 (100 minus one tombstone)", n)
	}
	for k := uint64(0); k < 100; k++ {
		want, wok := src.Get(RowRef{Table: "acct", Key: k}, svv)
		got, gok := dst.Get(RowRef{Table: "acct", Key: k}, svv)
		if wok != gok || string(want) != string(got) {
			t.Fatalf("key %d: src=(%q,%v) dst=(%q,%v)", k, want, wok, got, gok)
		}
	}
}

func TestExportAtStopsEarly(t *testing.T) {
	src := NewStore(0)
	for k := uint64(0); k < 50; k++ {
		src.Apply(Stamp{Origin: 0, Seq: k + 1}, []Write{
			{Ref: RowRef{Table: "t", Key: k}, Data: []byte("x")},
		})
	}
	n := 0
	done := src.ExportAt(vclock.Vector{50}, func(string, uint64, []byte, Stamp) bool {
		n++
		return n < 10
	})
	if done || n != 10 {
		t.Fatalf("done=%v n=%d, want early stop after 10", done, n)
	}
}

// TestExportAtEvictedVersionFallsForward drives a record's version chain past
// the cap so the snapshot-visible version is evicted, and checks ExportAt
// emits the oldest retained (newer-than-snapshot) version instead of losing
// the row. Replaying the WAL suffix past the snapshot re-installs those newer
// versions anyway, so "too new" is recoverable where "missing" would not be.
func TestExportAtEvictedVersionFallsForward(t *testing.T) {
	s := NewStore(2)
	ref := RowRef{Table: "t", Key: 1}
	s.Apply(Stamp{Origin: 0, Seq: 1}, []Write{{Ref: ref, Data: []byte("old")}})
	snap := vclock.Vector{1}
	// Two more installs evict seq 1 from the 2-cap chain.
	s.Apply(Stamp{Origin: 0, Seq: 2}, []Write{{Ref: ref, Data: []byte("mid")}})
	s.Apply(Stamp{Origin: 0, Seq: 3}, []Write{{Ref: ref, Data: []byte("new")}})

	var got []byte
	var stamp Stamp
	s.ExportAt(snap, func(_ string, _ uint64, data []byte, st Stamp) bool {
		got, stamp = data, st
		return true
	})
	if string(got) != "mid" || stamp.Seq != 2 {
		t.Fatalf("got (%q, seq %d), want oldest retained (\"mid\", seq 2)", got, stamp.Seq)
	}
}

// TestExportAtConcurrentWriters checks the export walk holds no lock that a
// committing writer needs: writers make progress while a slow export streams.
func TestExportAtConcurrentWriters(t *testing.T) {
	s := NewStore(0)
	for k := uint64(0); k < 200; k++ {
		s.Apply(Stamp{Origin: 0, Seq: k + 1}, []Write{
			{Ref: RowRef{Table: "t", Key: k}, Data: []byte("seed")},
		})
	}
	svv := vclock.Vector{200, 0}

	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		seq := uint64(0)
		for {
			select {
			case <-stop:
				return
			default:
			}
			seq++
			s.Apply(Stamp{Origin: 1, Seq: seq}, []Write{
				{Ref: RowRef{Table: "t", Key: seq % 200}, Data: []byte("hot")},
			})
		}
	}()

	n := 0
	s.ExportAt(svv, func(_ string, _ uint64, data []byte, st Stamp) bool {
		n++
		// Origin-1 writes are invisible at svv and the chain is unbounded, so
		// every exported version must be the seed.
		if st.Origin != 0 || string(data) != "seed" {
			t.Errorf("exported (%q, origin %d), want seed version", data, st.Origin)
			return false
		}
		return true
	})
	close(stop)
	wg.Wait()
	if n != 200 {
		t.Fatalf("exported %d rows, want 200", n)
	}
}
