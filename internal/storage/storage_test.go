package storage

import (
	"bytes"
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"testing/quick"
	"time"

	"dynamast/internal/vclock"
)

func TestStampVisibleAt(t *testing.T) {
	snap := vclock.Vector{3, 0, 1}
	cases := []struct {
		s    Stamp
		want bool
	}{
		{Stamp{0, 3}, true},
		{Stamp{0, 4}, false},
		{Stamp{1, 1}, false},
		{Stamp{2, 1}, true},
		{Stamp{-1, 0}, false},
		{Stamp{5, 0}, false},
	}
	for i, c := range cases {
		if got := c.s.VisibleAt(snap); got != c.want {
			t.Errorf("case %d: %+v.VisibleAt(%v) = %v, want %v", i, c.s, snap, got, c.want)
		}
	}
}

func TestRecordReadSnapshots(t *testing.T) {
	r := newRecord()
	r.Install(Stamp{0, 1}, []byte("v1"), false, 4)
	r.Install(Stamp{0, 2}, []byte("v2"), false, 4)
	r.Install(Stamp{1, 1}, []byte("v3"), false, 4)

	if _, ok := r.Read(vclock.Vector{0, 0}); ok {
		t.Error("empty snapshot saw data")
	}
	if d, ok := r.Read(vclock.Vector{1, 0}); !ok || string(d) != "v1" {
		t.Errorf("snap [1 0]: got %q %v", d, ok)
	}
	if d, ok := r.Read(vclock.Vector{2, 0}); !ok || string(d) != "v2" {
		t.Errorf("snap [2 0]: got %q %v", d, ok)
	}
	if d, ok := r.Read(vclock.Vector{2, 1}); !ok || string(d) != "v3" {
		t.Errorf("snap [2 1]: got %q %v", d, ok)
	}
	// A snapshot that saw site-1's update but lags site-0: newest visible
	// version wins in chain order.
	if d, ok := r.Read(vclock.Vector{1, 1}); !ok || string(d) != "v3" {
		t.Errorf("snap [1 1]: got %q %v", d, ok)
	}
}

func TestRecordTombstone(t *testing.T) {
	r := newRecord()
	r.Install(Stamp{0, 1}, []byte("v1"), false, 4)
	r.Install(Stamp{0, 2}, nil, true, 4)
	if d, ok := r.Read(vclock.Vector{1}); !ok || string(d) != "v1" {
		t.Errorf("pre-delete snapshot: got %q %v", d, ok)
	}
	if _, ok := r.Read(vclock.Vector{2}); ok {
		t.Error("deleted row visible")
	}
	if _, _, ok := r.ReadLatest(); ok {
		t.Error("ReadLatest returned tombstone")
	}
}

func TestRecordVersionCap(t *testing.T) {
	r := newRecord()
	for seq := uint64(1); seq <= 10; seq++ {
		r.Install(Stamp{0, seq}, []byte{byte(seq)}, false, 4)
	}
	if n := r.VersionCount(); n != 4 {
		t.Fatalf("VersionCount = %d, want 4", n)
	}
	// Oldest retained version is seq 7; snapshots older than that see
	// nothing (the price of bounded chains).
	if _, ok := r.Read(vclock.Vector{6}); ok {
		t.Error("GC'd version still visible")
	}
	if d, ok := r.Read(vclock.Vector{7}); !ok || d[0] != 7 {
		t.Errorf("oldest retained: got %v %v", d, ok)
	}
}

func TestRecordUnboundedVersions(t *testing.T) {
	r := newRecord()
	for seq := uint64(1); seq <= 10; seq++ {
		r.Install(Stamp{0, seq}, []byte{byte(seq)}, false, 0)
	}
	if n := r.VersionCount(); n != 10 {
		t.Fatalf("VersionCount = %d, want 10", n)
	}
}

func TestRecordLockMutualExclusion(t *testing.T) {
	r := newRecord()
	r.Lock()
	if r.TryLock() {
		t.Fatal("TryLock succeeded while held")
	}
	released := make(chan struct{})
	go func() {
		r.Lock()
		close(released)
	}()
	select {
	case <-released:
		t.Fatal("second Lock acquired while held")
	case <-time.After(10 * time.Millisecond):
	}
	r.Unlock()
	select {
	case <-released:
	case <-time.After(2 * time.Second):
		t.Fatal("blocked Lock never woke")
	}
	r.Unlock()
	if !r.TryLock() {
		t.Fatal("TryLock failed on free lock")
	}
	r.Unlock()
}

func TestRecordCrossGoroutineUnlock(t *testing.T) {
	r := newRecord()
	r.Lock()
	done := make(chan struct{})
	go func() {
		r.Unlock() // a commit path may release from another goroutine
		close(done)
	}()
	<-done
	if !r.TryLock() {
		t.Fatal("lock not released")
	}
	r.Unlock()
}

func TestTableGetMissing(t *testing.T) {
	tb := NewTable("t")
	if _, ok := tb.Get(42, vclock.Vector{1}); ok {
		t.Fatal("missing key returned data")
	}
	if r := tb.Record(42, false); r != nil {
		t.Fatal("Record(create=false) created a record")
	}
}

func TestTableScanOrderAndBounds(t *testing.T) {
	tb := NewTable("t")
	snap := vclock.Vector{1}
	for _, k := range []uint64{5, 1, 9, 3, 7, 100} {
		tb.Record(k, true).Install(Stamp{0, 1}, []byte{byte(k)}, false, 4)
	}
	got := tb.Scan(3, 10, snap)
	want := []uint64{3, 5, 7, 9}
	if len(got) != len(want) {
		t.Fatalf("Scan returned %d rows, want %d", len(got), len(want))
	}
	for i, kv := range got {
		if kv.Key != want[i] {
			t.Errorf("row %d key = %d, want %d", i, kv.Key, want[i])
		}
	}
}

func TestTableScanSnapshotFilter(t *testing.T) {
	tb := NewTable("t")
	tb.Record(1, true).Install(Stamp{0, 1}, []byte("a"), false, 4)
	tb.Record(2, true).Install(Stamp{0, 2}, []byte("b"), false, 4)
	got := tb.Scan(0, 10, vclock.Vector{1})
	if len(got) != 1 || got[0].Key != 1 {
		t.Fatalf("snapshot scan = %+v", got)
	}
}

func TestTableScanKeysEarlyStop(t *testing.T) {
	tb := NewTable("t")
	for k := uint64(0); k < 50; k++ {
		tb.Record(k, true).Install(Stamp{0, 1}, []byte{1}, false, 4)
	}
	n := 0
	tb.ScanKeys(0, 50, vclock.Vector{1}, func(uint64, []byte) bool {
		n++
		return n < 10
	})
	if n != 10 {
		t.Fatalf("early stop visited %d rows", n)
	}
}

func TestTableForEachLatest(t *testing.T) {
	tb := NewTable("t")
	tb.Record(1, true).Install(Stamp{0, 1}, []byte("old"), false, 4)
	tb.Record(1, true).Install(Stamp{0, 2}, []byte("new"), false, 4)
	tb.Record(2, true).Install(Stamp{1, 1}, nil, true, 4) // tombstone skipped
	var seen []string
	tb.ForEachLatest(func(key uint64, data []byte, stamp Stamp) {
		seen = append(seen, fmt.Sprintf("%d=%s@%d:%d", key, data, stamp.Origin, stamp.Seq))
	})
	if len(seen) != 1 || seen[0] != "1=new@0:2" {
		t.Fatalf("ForEachLatest = %v", seen)
	}
}

func TestStoreCreateTableIdempotent(t *testing.T) {
	s := NewStore(0)
	a := s.CreateTable("x")
	b := s.CreateTable("x")
	if a != b {
		t.Fatal("CreateTable returned distinct tables for one name")
	}
	if s.Table("y") != nil {
		t.Fatal("Table returned non-nil for missing table")
	}
	if s.MaxVersions() != DefaultMaxVersions {
		t.Fatalf("MaxVersions = %d", s.MaxVersions())
	}
}

func TestStoreTableNamesSorted(t *testing.T) {
	s := NewStore(0)
	for _, n := range []string{"zeta", "alpha", "mid"} {
		s.CreateTable(n)
	}
	names := s.TableNames()
	want := []string{"alpha", "mid", "zeta"}
	for i := range want {
		if names[i] != want[i] {
			t.Fatalf("TableNames = %v", names)
		}
	}
}

func TestSortRefsDedup(t *testing.T) {
	refs := []RowRef{{"b", 1}, {"a", 2}, {"a", 1}, {"a", 2}, {"b", 1}}
	got := SortRefs(refs)
	want := []RowRef{{"a", 1}, {"a", 2}, {"b", 1}}
	if len(got) != len(want) {
		t.Fatalf("SortRefs = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("SortRefs = %v, want %v", got, want)
		}
	}
}

func TestRowRefCompare(t *testing.T) {
	if (RowRef{"a", 1}).Compare(RowRef{"a", 1}) != 0 {
		t.Error("equal refs compare nonzero")
	}
	if (RowRef{"a", 2}).Compare(RowRef{"b", 1}) != -1 {
		t.Error("table ordering broken")
	}
	if (RowRef{"a", 2}).Compare(RowRef{"a", 1}) != 1 {
		t.Error("key ordering broken")
	}
	if got := (RowRef{"t", 7}).String(); got != "t/7" {
		t.Errorf("String = %q", got)
	}
}

func TestLockSetUnknownTable(t *testing.T) {
	s := NewStore(0)
	s.CreateTable("known")
	_, _, err := s.LockSet([]RowRef{{"known", 1}, {"unknown", 2}})
	if err == nil {
		t.Fatal("LockSet accepted unknown table")
	}
	// The lock taken on the known record must have been released.
	r := s.Table("known").Record(1, false)
	if r == nil || !r.TryLock() {
		t.Fatal("LockSet leaked a lock on failure")
	}
	r.Unlock()
}

func TestLockSetOrderingPreventsDeadlock(t *testing.T) {
	s := NewStore(0)
	s.CreateTable("t")
	// Two transactions locking overlapping sets in opposite textual order
	// must not deadlock because LockSet sorts canonically.
	var wg sync.WaitGroup
	for i := 0; i < 20; i++ {
		wg.Add(2)
		go func() {
			defer wg.Done()
			_, recs, err := s.LockSet([]RowRef{{"t", 1}, {"t", 2}, {"t", 3}})
			if err != nil {
				panic(err)
			}
			UnlockAll(recs)
		}()
		go func() {
			defer wg.Done()
			_, recs, err := s.LockSet([]RowRef{{"t", 3}, {"t", 2}, {"t", 1}})
			if err != nil {
				panic(err)
			}
			UnlockAll(recs)
		}()
	}
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("deadlock in LockSet")
	}
}

func TestStoreApplyAndGet(t *testing.T) {
	s := NewStore(0)
	s.Apply(Stamp{0, 1}, []Write{
		{Ref: RowRef{"t", 1}, Data: []byte("x")},
		{Ref: RowRef{"t", 2}, Data: []byte("y")},
	})
	if d, ok := s.Get(RowRef{"t", 1}, vclock.Vector{1}); !ok || string(d) != "x" {
		t.Fatalf("Get = %q %v", d, ok)
	}
	if _, ok := s.Get(RowRef{"missing", 1}, vclock.Vector{1}); ok {
		t.Fatal("Get on missing table succeeded")
	}
	if s.RowCount() != 2 {
		t.Fatalf("RowCount = %d", s.RowCount())
	}
}

// Property: for any sequence of versions installed with increasing
// sequence numbers from a single origin, reading at snapshot seq s returns
// the version with the largest stamp <= s among the retained window.
func TestQuickSnapshotReadsSingleOrigin(t *testing.T) {
	f := func(nVersions uint8, snapSeq uint8) bool {
		n := int(nVersions%20) + 1
		r := newRecord()
		for seq := 1; seq <= n; seq++ {
			r.Install(Stamp{0, uint64(seq)}, []byte{byte(seq)}, false, 4)
		}
		s := uint64(snapSeq) % uint64(n+3)
		d, ok := r.Read(vclock.Vector{s})
		oldestRetained := uint64(1)
		if n > 4 {
			oldestRetained = uint64(n - 3)
		}
		want := s
		if want > uint64(n) {
			want = uint64(n)
		}
		if want < oldestRetained {
			return !ok
		}
		return ok && uint64(d[0]) == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// Property: concurrent lock/install/read never corrupts a record — every
// read observes a value that was installed, and the chain stays bounded.
func TestConcurrentInstallAndRead(t *testing.T) {
	r := newRecord()
	r.Install(Stamp{0, 1}, []byte{0, 1}, false, 4)
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(2)
	go func() { // writer
		defer wg.Done()
		for seq := uint64(2); ; seq++ {
			select {
			case <-stop:
				return
			default:
			}
			r.Lock()
			r.Install(Stamp{0, seq}, []byte{byte(seq >> 8), byte(seq)}, false, 4)
			r.Unlock()
		}
	}()
	var bad bool
	go func() { // reader
		defer wg.Done()
		for i := 0; i < 5000; i++ {
			d, ok := r.Read(vclock.Vector{1 << 62})
			if !ok || len(d) != 2 {
				bad = true
				return
			}
		}
	}()
	time.Sleep(20 * time.Millisecond)
	close(stop)
	wg.Wait()
	if bad {
		t.Fatal("reader observed corrupt state")
	}
	if r.VersionCount() > 4 {
		t.Fatalf("chain grew to %d", r.VersionCount())
	}
}

func TestScanRandomizedAgainstModel(t *testing.T) {
	rnd := rand.New(rand.NewSource(1))
	tb := NewTable("t")
	model := map[uint64][]byte{}
	for i := 0; i < 300; i++ {
		k := uint64(rnd.Intn(100))
		v := []byte{byte(rnd.Intn(256))}
		tb.Record(k, true).Install(Stamp{0, uint64(i + 1)}, v, false, 4)
		model[k] = v
	}
	snap := vclock.Vector{301}
	got := tb.Scan(0, 100, snap)
	if len(got) != len(model) {
		t.Fatalf("scan rows %d, model %d", len(got), len(model))
	}
	for _, kv := range got {
		if !bytes.Equal(kv.Value, model[kv.Key]) {
			t.Fatalf("key %d: got %v want %v", kv.Key, kv.Value, model[kv.Key])
		}
	}
}
