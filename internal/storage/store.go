package storage

import (
	"fmt"
	"sort"
	"sync"

	"dynamast/internal/vclock"
)

// DefaultMaxVersions is the per-record version chain cap. The paper keeps
// four versions of every record, a setting its authors chose empirically.
const DefaultMaxVersions = 4

// Store is one data site's database: a set of named tables plus the store-
// wide MVCC configuration.
type Store struct {
	maxVersions int

	mu     sync.RWMutex
	tables map[string]*Table
}

// NewStore returns an empty store keeping maxVersions versions per record
// (DefaultMaxVersions if maxVersions is 0).
func NewStore(maxVersions int) *Store {
	if maxVersions == 0 {
		maxVersions = DefaultMaxVersions
	}
	return &Store{
		maxVersions: maxVersions,
		tables:      make(map[string]*Table),
	}
}

// MaxVersions returns the store's version chain cap.
func (s *Store) MaxVersions() int { return s.maxVersions }

// CreateTable creates (or returns the existing) table with the given name.
func (s *Store) CreateTable(name string) *Table {
	s.mu.Lock()
	defer s.mu.Unlock()
	if t, ok := s.tables[name]; ok {
		return t
	}
	t := NewTable(name)
	s.tables[name] = t
	return t
}

// Table returns the named table, or nil if it does not exist.
func (s *Store) Table(name string) *Table {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.tables[name]
}

// TableNames returns the names of all tables in sorted order.
func (s *Store) TableNames() []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	names := make([]string, 0, len(s.tables))
	for n := range s.tables {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// RowRef names one row: a table plus a primary key.
type RowRef struct {
	Table string
	Key   uint64
}

// String renders the reference as table/key.
func (r RowRef) String() string { return fmt.Sprintf("%s/%d", r.Table, r.Key) }

// Compare orders row references by (table, key); the canonical lock
// acquisition order that makes concurrent multi-record transactions
// deadlock-free.
func (r RowRef) Compare(o RowRef) int {
	switch {
	case r.Table < o.Table:
		return -1
	case r.Table > o.Table:
		return 1
	case r.Key < o.Key:
		return -1
	case r.Key > o.Key:
		return 1
	}
	return 0
}

// SortRefs sorts refs into canonical lock order and removes duplicates,
// returning the (possibly shortened) slice.
func SortRefs(refs []RowRef) []RowRef {
	sort.Slice(refs, func(i, j int) bool { return refs[i].Compare(refs[j]) < 0 })
	out := refs[:0]
	for i, r := range refs {
		if i == 0 || r.Compare(refs[i-1]) != 0 {
			out = append(out, r)
		}
	}
	return out
}

// LockSet acquires write locks on every referenced record in canonical
// order, creating missing records, and returns them in the same order as
// the (sorted, deduplicated) refs. Callers release with UnlockAll. The
// returned refs slice is the deduplicated lock set.
func (s *Store) LockSet(refs []RowRef) ([]RowRef, []*Record, error) {
	refs = SortRefs(refs)
	recs := make([]*Record, 0, len(refs))
	for _, ref := range refs {
		t := s.Table(ref.Table)
		if t == nil {
			UnlockAll(recs)
			return nil, nil, fmt.Errorf("storage: no such table %q", ref.Table)
		}
		r := t.Record(ref.Key, true)
		r.Lock()
		recs = append(recs, r)
	}
	return refs, recs, nil
}

// UnlockAll releases the given records' write locks.
func UnlockAll(recs []*Record) {
	for _, r := range recs {
		r.Unlock()
	}
}

// Write is one row mutation carried by a committed transaction (and by its
// refresh transactions at the other sites).
type Write struct {
	Ref     RowRef
	Data    []byte
	Deleted bool
}

// Apply installs a committed write set with the given stamp. Local commits
// call it while holding the records' write locks; the refresh applier calls
// it without (application order is serialized per partition by the
// replication manager).
func (s *Store) Apply(stamp Stamp, writes []Write) {
	for _, w := range writes {
		t := s.CreateTable(w.Ref.Table)
		r := t.Record(w.Ref.Key, true)
		r.Install(stamp, w.Data, w.Deleted, s.maxVersions)
	}
}

// Get reads one row at a snapshot.
func (s *Store) Get(ref RowRef, snap vclock.Vector) ([]byte, bool) {
	t := s.Table(ref.Table)
	if t == nil {
		return nil, false
	}
	return t.Get(ref.Key, snap)
}

// GetChecked is Get distinguishing a clean miss from one caused by version
// eviction (see Record.ReadChecked).
func (s *Store) GetChecked(ref RowRef, snap vclock.Vector) (data []byte, ok, evicted bool) {
	t := s.Table(ref.Table)
	if t == nil {
		return nil, false, false
	}
	return t.GetChecked(ref.Key, snap)
}

// PurgeMatching removes every record whose reference matches, across all
// tables, and returns how many were dropped. Partial replication uses it to
// evict a partition's rows when a site drops out of the replica set; the
// caller is responsible for excluding concurrent readers of the purged rows
// (the site manager holds its hosting lock across check-and-read).
func (s *Store) PurgeMatching(match func(RowRef) bool) int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	n := 0
	for name, t := range s.tables {
		n += t.RemoveMatching(func(key uint64) bool {
			return match(RowRef{Table: name, Key: key})
		})
	}
	return n
}

// RowCount returns the total number of records across all tables.
func (s *Store) RowCount() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	n := 0
	for _, t := range s.tables {
		n += t.Keys()
	}
	return n
}
