package selector

import (
	"errors"
	"testing"
	"time"

	"dynamast/internal/sitemgr"
	"dynamast/internal/storage"
	"dynamast/internal/wal"
)

// newHATier builds m data sites over one broker, a master selector with
// `standbys` replicas, and enables lease-based HA with the given TTL.
func newHATier(t *testing.T, m, standbys int, lease time.Duration) (*Replicated, *HA, []*sitemgr.Site, *wal.Broker) {
	t.Helper()
	b := wal.NewBroker(m)
	sites := make([]*sitemgr.Site, m)
	dsites := make([]DataSite, m)
	for i := 0; i < m; i++ {
		s, err := sitemgr.New(sitemgr.Config{
			SiteID: i, Sites: m, Broker: b,
			Partitioner: partitionBy100, Replicate: true,
		})
		if err != nil {
			t.Fatal(err)
		}
		s.Store().CreateTable("t")
		for p := uint64(0); p < 50; p++ {
			s.SetMaster(p, i == 0)
		}
		sites[i], dsites[i] = s, s
	}
	for _, s := range sites {
		s.Start()
	}
	cfg := Config{
		Sites:       dsites,
		Partitioner: partitionBy100,
		Weights:     YCSBWeights(),
		Stats:       StatsConfig{HistorySize: 128},
	}
	sel, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	repl := NewReplicated(sel, standbys, nil)
	ha, err := repl.EnableHA(cfg, HAConfig{Lease: lease, Broker: b})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		ha.Stop()
		b.Close()
		for _, s := range sites {
			s.Stop()
		}
	})
	return repl, ha, sites, b
}

// waitPromotions blocks until ha has completed at least n promotions.
func waitPromotions(t *testing.T, ha *HA, n uint64) time.Duration {
	t.Helper()
	start := time.Now()
	deadline := start.Add(10 * time.Second)
	for ha.Promotions() < n {
		if time.Now().After(deadline) {
			t.Fatalf("promotion %d did not complete within 10s (leader %d)", n, ha.Leader())
		}
		time.Sleep(time.Millisecond)
	}
	return time.Since(start)
}

func TestLeaseStoreMutualExclusion(t *testing.T) {
	ls := NewLeaseStore(50*time.Millisecond, nil)
	tok0, ok := ls.Acquire(0)
	if !ok || tok0 == 0 {
		t.Fatalf("initial acquire failed: token %d ok %v", tok0, ok)
	}
	if _, ok := ls.Acquire(1); ok {
		t.Fatal("second node acquired a held lease")
	}
	if !ls.Renew(0, tok0) {
		t.Fatal("holder could not renew with its token")
	}
	if ls.Renew(0, tok0+1) {
		t.Fatal("renew accepted a stale token")
	}
	if ls.Renew(1, tok0) {
		t.Fatal("renew accepted the wrong node")
	}
	if _, err := ls.AllocEpoch(1, tok0); !errors.Is(err, ErrNoLeader) {
		t.Fatalf("non-holder epoch allocation: err = %v, want ErrNoLeader", err)
	}
	e1, err := ls.AllocEpoch(0, tok0)
	if err != nil || e1 == 0 {
		t.Fatalf("holder epoch allocation: %d, %v", e1, err)
	}
	// Expiry: the holder stops renewing; another node takes over with a
	// higher token, after which the old token allocates nothing.
	time.Sleep(60 * time.Millisecond)
	if !ls.Expired() {
		t.Fatal("lease did not expire")
	}
	tok1, ok := ls.Acquire(1)
	if !ok || tok1 <= tok0 {
		t.Fatalf("takeover failed: token %d ok %v", tok1, ok)
	}
	if _, err := ls.AllocEpoch(0, tok0); !errors.Is(err, ErrNoLeader) {
		t.Fatalf("deposed holder allocated an epoch: %v", err)
	}
	if ls.LeaderChanges() != 2 {
		t.Fatalf("leader changes = %d, want 2", ls.LeaderChanges())
	}
}

func TestHAPromotionOnLeaderKill(t *testing.T) {
	repl, ha, sites, _ := newHATier(t, 2, 2, 20*time.Millisecond)
	old := repl.Leader()

	// Route some writes through the leader so the placement is warm and a
	// remaster has happened (partitions 0 and 1 end up co-located).
	if _, err := old.RouteWrite(1, []storage.RowRef{ref(1), ref(101)}, nil); err != nil {
		t.Fatal(err)
	}

	killed := ha.KillLeader()
	if killed != 0 {
		t.Fatalf("killed node %d, want initial leader 0", killed)
	}
	window := waitPromotions(t, ha, 1)
	t.Logf("promotion completed %v after the kill", window)

	if ha.Leader() == 0 {
		t.Fatal("leadership did not move off the killed node")
	}
	neu := repl.Leader()
	if neu == old {
		t.Fatal("leader selector was not swapped")
	}
	if !old.Deposed() {
		t.Fatal("old leader not deposed")
	}
	if _, err := old.RouteWrite(2, []storage.RowRef{ref(1)}, nil); !errors.Is(err, ErrNoLeader) {
		t.Fatalf("deposed leader routed a write: %v", err)
	}

	// The promoted leader's map must agree with the sites: every partition
	// the sites know has exactly one owner, and it is the selector's owner.
	for p := uint64(0); p < 3; p++ {
		owners := 0
		ownerSite := -1
		for i, s := range sites {
			if s.Masters(p) {
				owners++
				ownerSite = i
			}
		}
		if owners != 1 {
			t.Fatalf("partition %d has %d owners", p, owners)
		}
		if got := neu.MasterOf(p); got != ownerSite {
			t.Fatalf("partition %d: promoted selector says %d, sites say %d", p, got, ownerSite)
		}
	}

	// Routing resumes on the promoted leader.
	if _, err := neu.RouteWrite(3, []storage.RowRef{ref(1), ref(101)}, nil); err != nil {
		t.Fatalf("post-promotion route: %v", err)
	}
}

// TestHAFencingPreventsDualOwnership is the dedicated fencing proof: an
// epoch allocated by the old leader before its crash (modelling an
// in-flight release/grant chain) must be rejected by every site after a
// standby promotes, so the zombie chain can never flip ownership — no
// interleaving yields two masters for one partition.
func TestHAFencingPreventsDualOwnership(t *testing.T) {
	repl, ha, sites, _ := newHATier(t, 2, 1, 20*time.Millisecond)
	old := repl.Leader()

	// The deposed leader allocated this epoch for a chain moving partition
	// 0 from site 0 to site 1, but crashed before the chain ran.
	zombie, err := old.AllocEpoch()
	if err != nil {
		t.Fatal(err)
	}

	ha.KillLeader()
	waitPromotions(t, ha, 1)

	// The promotion fence out-arbitrates the zombie epoch at every site:
	// neither leg of the dead chain can execute.
	if _, err := sites[0].Release([]uint64{0}, 1, zombie); !errors.Is(err, sitemgr.ErrStaleEpoch) {
		t.Fatalf("zombie release: err = %v, want ErrStaleEpoch", err)
	}
	if _, err := sites[1].Grant([]uint64{0}, nil, 0, zombie); !errors.Is(err, sitemgr.ErrStaleEpoch) {
		t.Fatalf("zombie grant: err = %v, want ErrStaleEpoch", err)
	}

	owners := 0
	for _, s := range sites {
		if s.Masters(0) {
			owners++
		}
	}
	if owners != 1 {
		t.Fatalf("partition 0 has %d owners after the zombie chain, want exactly 1", owners)
	}
	if !sites[0].Masters(0) {
		t.Fatal("ownership moved despite the fence")
	}
	if got := repl.Leader().MasterOf(0); got != 0 {
		t.Fatalf("promoted leader maps partition 0 to %d, want 0", got)
	}
}

// TestHADanglingReleaseRepair crashes the leader between a release and its
// grant: the releasing site has durably given up ownership into the void.
// The promotion must detect the dangling release in the WAL fold and
// re-grant the partition to the releaser under a fresh epoch, and the
// zombie grant must still be fenced out.
func TestHADanglingReleaseRepair(t *testing.T) {
	repl, ha, sites, _ := newHATier(t, 2, 1, 20*time.Millisecond)
	old := repl.Leader()

	epoch, err := old.AllocEpoch()
	if err != nil {
		t.Fatal(err)
	}
	relVV, err := sites[0].Release([]uint64{2}, 1, epoch)
	if err != nil {
		t.Fatal(err)
	}
	if sites[0].Masters(2) {
		t.Fatal("release did not surrender ownership")
	}
	// Leader dies here — the grant leg never runs.
	ha.KillLeader()
	waitPromotions(t, ha, 1)

	// The zombie grant (retried by some stale RPC path) dies on the fence.
	if _, err := sites[1].Grant([]uint64{2}, relVV, 0, epoch); !errors.Is(err, sitemgr.ErrStaleEpoch) {
		t.Fatalf("zombie grant: err = %v, want ErrStaleEpoch", err)
	}

	// The repair re-granted the partition to the releasing site.
	if !sites[0].Masters(2) {
		t.Fatal("dangling release not repaired: releaser does not own the partition")
	}
	if sites[1].Masters(2) {
		t.Fatal("dual ownership after repair")
	}
	if got := repl.Leader().MasterOf(2); got != 0 {
		t.Fatalf("promoted leader maps partition 2 to %d, want 0", got)
	}
	// The repaired partition is writable through the promoted leader.
	if _, err := repl.Leader().RouteWrite(5, []storage.RowRef{ref(200)}, nil); err != nil {
		t.Fatalf("route to repaired partition: %v", err)
	}
}

// TestHAStandbyMirrorFollowsDeltas checks the leader's delta feed keeps
// standby mirrors fresh: a remaster shows up in every replica's mirror
// with its install epoch, without any routing through the replica.
func TestHAStandbyMirrorFollowsDeltas(t *testing.T) {
	repl, ha, sites, _ := newHATier(t, 2, 2, time.Second)
	sel := repl.Leader()

	// Split partition 1 to site 1 so a write spanning partitions 0 and 1
	// forces a remaster chain (and hence a delta-feed publication).
	rel, err := sites[0].Release([]uint64{1}, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sites[1].Grant([]uint64{1}, rel, 0, 0); err != nil {
		t.Fatal(err)
	}
	sel.RegisterPartition(1, 1)

	r, err := sel.RouteWrite(1, []storage.RowRef{ref(1), ref(101)}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !r.Remastered {
		t.Fatal("write did not remaster; test needs a mastership flip")
	}
	for i, rep := range repl.Replicas() {
		owner, epochs := rep.Mirror()
		for _, p := range []uint64{0, 1} {
			if owner[p] != r.Site {
				t.Fatalf("replica %d mirror: partition %d at %d, want %d", i, p, owner[p], r.Site)
			}
		}
		if epochs[0] == 0 && epochs[1] == 0 {
			t.Fatalf("replica %d mirror carries no install epoch for the remastered partitions", i)
		}
		if rep.FeedSeq() == 0 {
			t.Fatalf("replica %d never ingested a delta", i)
		}
	}
	if lag := ha.StandbyLag(); lag != 0 {
		t.Fatalf("standby lag = %d after synchronous feed, want 0", lag)
	}
}

// TestHASurvivesSecondFailover kills the promoted leader too: leadership
// must move again, and the tier keeps routing.
func TestHASurvivesSecondFailover(t *testing.T) {
	repl, ha, _, _ := newHATier(t, 2, 2, 20*time.Millisecond)
	if _, err := repl.Leader().RouteWrite(1, []storage.RowRef{ref(1), ref(101)}, nil); err != nil {
		t.Fatal(err)
	}
	ha.KillLeader()
	waitPromotions(t, ha, 1)
	first := ha.Leader()
	ha.KillLeader()
	waitPromotions(t, ha, 2)
	second := ha.Leader()
	if second == 0 || second == first {
		t.Fatalf("second promotion landed on %d (first %d, dead 0)", second, first)
	}
	if _, err := repl.Leader().RouteWrite(9, []storage.RowRef{ref(1)}, nil); err != nil {
		t.Fatalf("routing after two failovers: %v", err)
	}
}
