package selector

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"dynamast/internal/obs"
	"dynamast/internal/sitemgr"
	"dynamast/internal/storage"
	"dynamast/internal/transport"
	"dynamast/internal/vclock"
)

// DataSite is the selector's view of a data site: the mastership-transfer
// RPCs plus the version vector used by the refresh-delay feature and read
// routing. *sitemgr.Site implements it; multi-process deployments use an
// RPC-backed implementation. The epoch parameter fences and memoizes the
// transfer (see sitemgr): retried calls with the same epoch are idempotent,
// stale epochs are rejected; epoch 0 disables fencing (initial placement).
type DataSite interface {
	ID() int
	SVV() vclock.Vector
	Release(parts []uint64, to int, epoch uint64) (vclock.Vector, error)
	Grant(parts []uint64, relVV vclock.Vector, from int, epoch uint64) (vclock.Vector, error)
}

// Config describes a site selector.
type Config struct {
	// Sites are the data sites, indexed by site id.
	Sites []DataSite
	// Partitioner maps rows to partitions; must match the sites'.
	Partitioner sitemgr.Partitioner
	// InitialMaster gives the master of a partition first seen by the
	// selector; nil places everything at site 0 (DynaMast is evaluated
	// with no curated initial placement).
	InitialMaster func(part uint64) int
	// Weights are the strategy hyperparameters (Equation 8).
	Weights Weights
	// Stats configures the statistics tracker.
	Stats StatsConfig
	// Net simulates selector <-> site traffic for release/grant.
	Net *transport.Network
	// Seed drives read-routing randomization.
	Seed int64
	// MinReplicas, when positive, enables partial replication: each
	// partition carries an explicit replica set of at least MinReplicas and
	// at most MaxReplicas sites (MaxReplicas <= 0 means no upper bound
	// beyond the site count). Zero preserves full replication.
	MinReplicas int
	// MaxReplicas bounds replica-set growth under partial replication.
	MaxReplicas int
	// Obs receives the selector's metrics (routing counters, remaster
	// latency, strategy feature scores); nil disables instrumentation.
	Obs *obs.Registry
	// Spans receives the release/grant spans of sampled traced routing
	// decisions (RouteWriteTraced); nil disables span recording.
	Spans *obs.SpanRecorder
	// Hooks wire this selector into a sharded Group (zero value = the
	// stand-alone, whole-map selector). They live in the Config so an HA
	// promotion's rebuilt selector keeps its shard identity.
	Hooks ShardHooks
}

// ShardHooks connect one router shard's selector to its Group. Every hook is
// optional; a nil hook falls back to the selector's own state, which is
// exactly the single-shard behavior.
type ShardHooks struct {
	// Owns reports whether a partition belongs to this shard's range. A
	// shard never creates (or grants) partitions outside its range: foreign
	// ids reach it only through scoring, which resolves them read-only via
	// ForeignMaster.
	Owns func(part uint64) bool
	// ForeignMaster resolves the (possibly stale) master hint of a
	// partition outside this shard's range, for the co-access scoring
	// features. Never creates state anywhere.
	ForeignMaster func(part uint64) int
	// Record replaces the local stats feed: the Group dispatches each
	// decided write's full partition set to every shard whose stripes need
	// the sample (cross-shard co-access accounting).
	Record func(client int, parts []uint64, now time.Time)
	// AccessWeight and CoAccess read access statistics across the Group
	// (each shard's tracker only sees samples relevant to its own range).
	AccessWeight func(part uint64) float64
	// CoAccess iterates partition d1's co-access probabilities (intra or
	// inter transaction) from the owning shard's tracker.
	CoAccess func(d1 uint64, intra bool, fn func(d2 uint64, p float64))
	// SiteLoads sums materialized per-site load across all shards (the
	// balance feature must see global load, not one shard's slice).
	SiteLoads func() []float64
}

// Route is a routing decision returned to the client.
type Route struct {
	// Site is the execution site.
	Site int
	// MinVV is the minimum version vector the transaction must begin at
	// (element-wise max of grant vectors; nil when no remastering
	// happened).
	MinVV vclock.Vector
	// Remastered reports whether the decision required mastership
	// transfers.
	Remastered bool
	// PartsMoved is the number of partitions transferred.
	PartsMoved int
	// RemasterWait is the time spent in the release/grant RPC chains
	// (zero when no remastering happened); lifecycle traces subtract it
	// from the routing stage.
	RemasterWait time.Duration
}

// partInfo is the per-partition-group metadata of §V-B: current master
// location and a readers-writer lock serializing routing against
// remastering. hint mirrors master lock-free for the scoring heuristic,
// which must not take partition locks it does not hold (lock-order safety):
// a stale hint can only skew a score, never correctness.
type partInfo struct {
	mu     sync.RWMutex
	master int
	epoch  uint64 // remaster epoch that installed master (0 = initial placement)
	hint   atomic.Int32
}

func (p *partInfo) setMaster(m int, epoch uint64) {
	p.master = m
	p.epoch = epoch
	p.hint.Store(int32(m))
}

// partShardCount shards the partition map so concurrent routing decisions
// looking up disjoint partitions do not serialize on one map lock. Must be
// a power of two.
const partShardCount = 64

// partShard is one slice of the partition map.
type partShard struct {
	mu sync.RWMutex
	m  map[uint64]*partInfo
	_  [24]byte // pad shards apart
}

// shardOf spreads partition ids (often small and dense) across shards with
// a Fibonacci multiply-shift.
func shardOf(id uint64) uint64 {
	return (id * 0x9E3779B97F4A7C15) >> 32 & (partShardCount - 1)
}

// Selector routes transactions and remasters data (§IV, §V-B).
type Selector struct {
	sites       []DataSite
	m           int
	partitioner sitemgr.Partitioner
	initial     func(part uint64) int
	weights     atomic.Pointer[Weights]
	stats       *Stats
	net         *transport.Network

	shards [partShardCount]partShard

	// Read-routing RNG: pooled so concurrent RouteRead calls never share
	// (or lock) one generator. Pool misses seed a fresh generator from
	// seed ⊕ a split counter, keeping runs with the same Config.Seed
	// statistically reproducible.
	rngPool  sync.Pool
	rngSplit atomic.Uint64
	seed     int64

	// Materialized per-site load (sum of mastered partitions' access
	// weights), used by the balance feature. Float64 bits in atomics;
	// bumpLoad CAS-adds and decays when the running total crosses the
	// stats decay threshold.
	siteLoad  []atomic.Uint64
	loadTotal atomic.Uint64
	decaying  atomic.Bool

	routed      []atomic.Uint64 // per-site routed write transactions
	writeTxns   atomic.Uint64
	readTxns    atomic.Uint64
	remasterOps atomic.Uint64 // transactions that required remastering
	partsMoved  atomic.Uint64 // partitions transferred
	routeNanos  atomic.Int64  // cumulative routing decision time
	remastNanos atomic.Int64  // cumulative remastering wait time

	// epochs allocates remaster-chain epochs (monotonic; 0 is reserved for
	// unfenced operations). The default source is a process-local counter;
	// HA deployments install a lease-validated allocator (see lease.go)
	// whose Alloc fails once this selector is deposed, so a deposed leader
	// can never mint an epoch that out-fences the new leader's.
	epochs epochSource

	// deposed marks this selector as no longer the control-plane leader
	// (lease lost, or its process killed): write routing fails fast with
	// the retryable ErrNoLeader, and first-sight partition creation stops
	// issuing placement grants. Read routing keeps working — it only
	// consults site version vectors, which staleness cannot corrupt.
	deposed atomic.Bool

	// feed, when set, mirrors committed mastership flips to the standby
	// selectors (the leader -> standby delta stream of the HA tier).
	feed atomic.Pointer[func(parts []uint64, site int, epoch uint64)]

	// downSites flags sites declared failed (heartbeat misses); routing and
	// remastering exclude them until failover completes.
	downSites []atomic.Bool

	// placement tracks per-partition replica sets under partial replication
	// (nil on fully replicating selectors — the hot paths branch on it).
	placement *placementState
	// ensureReplica materializes a replica before routing depends on it
	// (the core cluster's AddReplica); see SetReplicaEnsurer.
	ensureReplica func(parts []uint64, site int) error

	spans *obs.SpanRecorder

	// hooks wire this selector into a sharded Group (see ShardHooks); all
	// zero on the stand-alone selector.
	hooks ShardHooks

	ob selectorInstruments
}

// selectorInstruments are the selector's registered metrics (nil-safe
// no-ops when built without a registry).
type selectorInstruments struct {
	writeTxns  *obs.Counter
	readTxns   *obs.Counter
	remasters  *obs.Counter
	partsMoved *obs.Counter
	routed     []*obs.Counter
	routeDur   *obs.Histogram
	remastDur  *obs.Histogram
	// Last winning remaster decision's Equation 8 feature scores.
	featBalance, featDelay, featIntra, featInter *obs.Gauge
}

// instrument registers the selector's metrics.
func (s *Selector) instrument(reg *obs.Registry) {
	if reg == nil {
		return
	}
	reg.Help("dynamast_route_total", "Routing decisions by transaction type.")
	reg.Help("dynamast_routed_total", "Write transactions routed per destination site.")
	reg.Help("dynamast_remaster_total", "Write transactions that required mastership transfer.")
	reg.Help("dynamast_remaster_partitions_total", "Partitions whose mastership was transferred.")
	reg.Help("dynamast_route_seconds", "Routing decision latency (including any remaster wait).")
	reg.Help("dynamast_remaster_seconds", "Release/grant RPC-chain wait per remastering decision.")
	reg.Help("dynamast_strategy_feature", "Equation 8 feature scores of the last remaster decision.")
	reg.Help("dynamast_selector_partitions", "Partitions tracked in the selector's sharded partition map.")
	reg.Help("dynamast_selector_shard_max_entries", "Largest partition-map shard (residency skew indicator).")
	s.ob = selectorInstruments{
		writeTxns:   reg.Counter("dynamast_route_total", obs.L("type", "write")),
		readTxns:    reg.Counter("dynamast_route_total", obs.L("type", "read")),
		remasters:   reg.Counter("dynamast_remaster_total"),
		partsMoved:  reg.Counter("dynamast_remaster_partitions_total"),
		routed:      make([]*obs.Counter, s.m),
		routeDur:    reg.Histogram("dynamast_route_seconds"),
		remastDur:   reg.Histogram("dynamast_remaster_seconds"),
		featBalance: reg.Gauge("dynamast_strategy_feature", obs.L("feature", "balance")),
		featDelay:   reg.Gauge("dynamast_strategy_feature", obs.L("feature", "delay")),
		featIntra:   reg.Gauge("dynamast_strategy_feature", obs.L("feature", "intra")),
		featInter:   reg.Gauge("dynamast_strategy_feature", obs.L("feature", "inter")),
	}
	for i := range s.ob.routed {
		s.ob.routed[i] = reg.Counter("dynamast_routed_total", obs.Site(i))
	}
	reg.Func("dynamast_selector_partitions", obs.KindGauge, func() float64 {
		total, _ := s.shardResidency()
		return float64(total)
	})
	reg.Func("dynamast_selector_shard_max_entries", obs.KindGauge, func() float64 {
		_, max := s.shardResidency()
		return float64(max)
	})
	if ps := s.placement; ps != nil {
		reg.Help("dynamast_placement_replicas_total", "Replica-set memberships across all tracked partitions.")
		reg.Help("dynamast_placement_adds_total", "Replica additions performed by the placement layer.")
		reg.Help("dynamast_placement_drops_total", "Replica drops performed by the placement layer.")
		reg.Func("dynamast_placement_replicas_total", obs.KindGauge, func() float64 {
			ps.mu.RLock()
			defer ps.mu.RUnlock()
			n := 0
			for _, set := range ps.sets {
				n += len(set)
			}
			return float64(n)
		})
		reg.Func("dynamast_placement_adds_total", obs.KindCounter, func() float64 {
			return float64(ps.adds.Load())
		})
		reg.Func("dynamast_placement_drops_total", obs.KindCounter, func() float64 {
			return float64(ps.drops.Load())
		})
	}
}

// shardResidency reports the total partition count and the largest shard.
func (s *Selector) shardResidency() (total, max int) {
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.RLock()
		n := len(sh.m)
		sh.mu.RUnlock()
		total += n
		if n > max {
			max = n
		}
	}
	return total, max
}

// New constructs a selector.
func New(cfg Config) (*Selector, error) {
	if len(cfg.Sites) == 0 {
		return nil, fmt.Errorf("selector: no sites")
	}
	if cfg.Partitioner == nil {
		return nil, fmt.Errorf("selector: config requires a Partitioner")
	}
	if cfg.InitialMaster == nil {
		cfg.InitialMaster = func(uint64) int { return 0 }
	}
	s := &Selector{
		sites:       cfg.Sites,
		m:           len(cfg.Sites),
		partitioner: cfg.Partitioner,
		initial:     cfg.InitialMaster,
		stats:       NewStats(cfg.Stats),
		net:         cfg.Net,
		seed:        cfg.Seed,
		siteLoad:    make([]atomic.Uint64, len(cfg.Sites)),
		routed:      make([]atomic.Uint64, len(cfg.Sites)),
		downSites:   make([]atomic.Bool, len(cfg.Sites)),
		spans:       cfg.Spans,
		hooks:       cfg.Hooks,
		epochs:      &localEpochs{},
	}
	w := cfg.Weights
	s.weights.Store(&w)
	if cfg.MinReplicas > 0 {
		s.placement = newPlacementState(cfg.MinReplicas, cfg.MaxReplicas, s.m,
			DefaultReplicaSet(s.initial, s.m, cfg.MinReplicas))
	}
	for i := range s.shards {
		s.shards[i].m = make(map[uint64]*partInfo)
	}
	s.rngPool.New = func() any {
		// splitmix64 over a per-generator counter, xored with the seed.
		z := s.rngSplit.Add(1) * 0x9E3779B97F4A7C15
		z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
		z = (z ^ (z >> 27)) * 0x94D049BB133111EB
		return rand.New(rand.NewSource(s.seed ^ int64(z^(z>>31))))
	}
	s.instrument(cfg.Obs)
	return s, nil
}

// Weights returns the selector's strategy hyperparameters.
func (s *Selector) Weights() Weights { return *s.weights.Load() }

// SetWeights replaces the strategy hyperparameters (sensitivity sweeps
// swap them mid-run; the pointer swap is atomic against concurrent
// routing decisions).
func (s *Selector) SetWeights(w Weights) { s.weights.Store(&w) }

// Stats exposes the statistics tracker.
func (s *Selector) Stats() *Stats { return s.stats }

// part returns the partition info, creating it at the initial master. On
// first sight of a partition the initial master site is granted ownership,
// so transactions can create rows in partitions that did not exist at load
// time (e.g. freshly allocated key ranges).
func (s *Selector) part(id uint64) *partInfo {
	sh := &s.shards[shardOf(id)]
	sh.mu.RLock()
	p := sh.m[id]
	sh.mu.RUnlock()
	if p != nil {
		return p
	}
	sh.mu.Lock()
	if p = sh.m[id]; p != nil {
		sh.mu.Unlock()
		return p
	}
	p = &partInfo{}
	master := s.initial(id)
	if s.downSites[master].Load() {
		// The configured initial master is dead: place at the first
		// surviving site instead of granting into a failed one.
		for i := range s.downSites {
			if !s.downSites[i].Load() {
				master = i
				break
			}
		}
	}
	p.setMaster(master, 0)
	sh.m[id] = p
	sh.mu.Unlock()
	s.noteMaster([]uint64{id}, master)
	// Outside the shard lock: materialize ownership at the data site
	// (idempotent; a nil release vector means no catch-up wait; epoch 0 —
	// initial placement has no remaster chain to fence). A deposed leader
	// must not act on the sites: the promoted leader's own first sight of
	// the partition issues the grant instead. A sharded selector never
	// grants outside its range — the owning shard's first sight does.
	if !s.deposed.Load() && (s.hooks.Owns == nil || s.hooks.Owns(id)) {
		if _, err := s.sites[master].Grant([]uint64{id}, nil, master, 0); err != nil {
			// Grant only fails at shutdown; routing will surface the error.
			_ = err
		}
		s.publish([]uint64{id}, master, 0)
	}
	return p
}

// MarkDown flags a site failed: routing and destination scoring exclude it
// until MarkUp. Mastership reassignment is the failover coordinator's job
// (core.Cluster.Failover); MarkDown only stops new traffic toward the site.
func (s *Selector) MarkDown(site int) {
	if site >= 0 && site < s.m {
		s.downSites[site].Store(true)
	}
}

// MarkUp clears a site's failed flag (a recovered site rejoining).
func (s *Selector) MarkUp(site int) {
	if site >= 0 && site < s.m {
		s.downSites[site].Store(false)
	}
}

// SiteDown reports whether the selector considers the site failed.
func (s *Selector) SiteDown(site int) bool {
	return site >= 0 && site < s.m && s.downSites[site].Load()
}

// epochSource allocates the monotonic fencing epochs remaster chains are
// stamped with. localEpochs (the default) is an infallible process-local
// counter; leaseEpochs (lease.go) validates the caller's lease on every
// allocation so a deposed leader's chains die instead of out-fencing the
// new leader.
type epochSource interface {
	Alloc() (uint64, error)
	Current() uint64
	Bump(n uint64)
}

// localEpochs is the stand-alone epoch allocator: a plain atomic counter.
type localEpochs struct{ n atomic.Uint64 }

func (l *localEpochs) Alloc() (uint64, error) { return l.n.Add(1), nil }
func (l *localEpochs) Current() uint64        { return l.n.Load() }
func (l *localEpochs) Bump(n uint64) {
	for {
		cur := l.n.Load()
		if cur >= n || l.n.CompareAndSwap(cur, n) {
			return
		}
	}
}

// setEpochSource installs the selector's epoch allocator. Called only
// before the selector serves traffic (HA wiring at construction, or on a
// freshly built selector during promotion), so the plain store is safe.
func (s *Selector) setEpochSource(src epochSource) { s.epochs = src }

// AllocEpoch allocates a fresh remaster epoch (failover re-grants use it to
// fence out any in-flight chains that raced the failure). Under the HA
// tier the allocation is lease-validated and fails with ErrNoLeader once
// this selector has been deposed.
func (s *Selector) AllocEpoch() (uint64, error) { return s.epochs.Alloc() }

// depose marks this selector as no longer the leader: write routing fails
// fast with ErrNoLeader. Reads keep flowing (see RouteRead).
func (s *Selector) depose() { s.deposed.Store(true) }

// Deposed reports whether this selector has been deposed as the
// control-plane leader.
func (s *Selector) Deposed() bool { return s.deposed.Load() }

// SetDeltaFeed installs the leader -> standby mastership delta stream:
// every committed metadata flip (remaster chain completion, failover
// registration, first-sight placement) is published to f.
func (s *Selector) SetDeltaFeed(f func(parts []uint64, site int, epoch uint64)) {
	s.feed.Store(&f)
}

// publish mirrors a committed mastership flip to the standbys, if a delta
// feed is wired.
func (s *Selector) publish(parts []uint64, site int, epoch uint64) {
	if f := s.feed.Load(); f != nil {
		(*f)(parts, site, epoch)
	}
}

// MasteredBy returns every partition currently assigned to site in the
// selector's map. Failover uses it as the authoritative set to re-grant
// (the selector's map is what routing consults, so reassigning exactly this
// set leaves no partition routed at a dead site).
func (s *Selector) MasteredBy(site int) []uint64 {
	var out []uint64
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.RLock()
		for id, p := range sh.m {
			p.mu.RLock()
			if p.master == site {
				out = append(out, id)
			}
			p.mu.RUnlock()
		}
		sh.mu.RUnlock()
	}
	return out
}

// RegisterPartition seeds a partition's master location (load-time
// placement for the baselines; DynaMast experiments use the default).
func (s *Selector) RegisterPartition(id uint64, master int) {
	s.RegisterPartitionEpoch(id, master, 0)
}

// RegisterPartitionEpoch seeds a partition's master together with the
// remaster epoch that installed it; failover and recovery use it so
// checkpointed placement snapshots carry accurate epochs.
func (s *Selector) RegisterPartitionEpoch(id uint64, master int, epoch uint64) {
	p := s.part(id)
	p.mu.Lock()
	p.setMaster(master, epoch)
	p.mu.Unlock()
	s.noteMaster([]uint64{id}, master)
	s.publish([]uint64{id}, master, epoch)
}

// PlacementSnapshot captures the full partition map with the epoch each
// entry was installed under. Per-partition read locks serialize the capture
// against in-flight remaster chains (which hold the exclusive lock through
// their metadata flip), so every entry is a (master, epoch) pair some chain
// actually committed — never a torn mix.
func (s *Selector) PlacementSnapshot() (map[uint64]int, map[uint64]uint64) {
	placement := make(map[uint64]int)
	epochs := make(map[uint64]uint64)
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.RLock()
		ids := make([]uint64, 0, len(sh.m))
		infos := make([]*partInfo, 0, len(sh.m))
		for id, p := range sh.m {
			ids = append(ids, id)
			infos = append(infos, p)
		}
		sh.mu.RUnlock()
		for j, p := range infos {
			p.mu.RLock()
			placement[ids[j]] = p.master
			epochs[ids[j]] = p.epoch
			p.mu.RUnlock()
		}
	}
	return placement, epochs
}

// CurrentEpoch returns the highest remaster epoch allocated so far.
func (s *Selector) CurrentEpoch() uint64 { return s.epochs.Current() }

// BumpEpoch raises the epoch counter to at least n. A recovered selector
// calls it with the highest epoch found in the checkpoint and log suffix so
// freshly allocated epochs keep out-fencing pre-crash ones.
func (s *Selector) BumpEpoch(n uint64) { s.epochs.Bump(n) }

// adoptPlacement installs a reconciled placement map (partition -> master,
// with the epoch that installed each entry) without issuing any site-level
// grants: promotion already verified — and where needed repaired — the
// sites' own ownership state, so this is a pure metadata install.
func (s *Selector) adoptPlacement(owner map[uint64]int, epochs map[uint64]uint64) {
	for p, site := range owner {
		sh := &s.shards[shardOf(p)]
		sh.mu.Lock()
		in := sh.m[p]
		if in == nil {
			in = &partInfo{}
			sh.m[p] = in
		}
		sh.mu.Unlock()
		in.mu.Lock()
		in.setMaster(site, epochs[p])
		in.mu.Unlock()
		s.noteMaster([]uint64{p}, site)
	}
}

// MasterOf returns the current master site of a partition.
func (s *Selector) MasterOf(id uint64) int {
	p := s.part(id)
	p.mu.RLock()
	defer p.mu.RUnlock()
	return p.master
}

// peekMaster returns the lock-free master hint of a partition WITHOUT
// creating it (part() would grant first-sight ownership — only the owning
// shard may do that). ok is false when the partition has never been seen.
func (s *Selector) peekMaster(id uint64) (int, bool) {
	sh := &s.shards[shardOf(id)]
	sh.mu.RLock()
	p := sh.m[id]
	sh.mu.RUnlock()
	if p == nil {
		return 0, false
	}
	return int(p.hint.Load()), true
}

// hintFor resolves a partition's lock-free master hint for scoring: own
// partitions through the local map, foreign partitions (sharded Group only)
// through the Group's read-only resolver.
func (s *Selector) hintFor(id uint64) int {
	if s.hooks.Owns != nil && !s.hooks.Owns(id) {
		if s.hooks.ForeignMaster != nil {
			return s.hooks.ForeignMaster(id)
		}
		return s.initial(id)
	}
	return int(s.part(id).hint.Load())
}

// accessWeight reads a partition's access weight from the Group-wide
// tracker when sharded, the local tracker otherwise.
func (s *Selector) accessWeight(id uint64) float64 {
	if s.hooks.AccessWeight != nil {
		return s.hooks.AccessWeight(id)
	}
	return s.stats.AccessWeight(id)
}

// coAccess iterates a partition's co-access distribution from the owning
// shard's tracker when sharded, the local tracker otherwise.
func (s *Selector) coAccess(d1 uint64, intra bool, fn func(d2 uint64, p float64)) {
	if s.hooks.CoAccess != nil {
		s.hooks.CoAccess(d1, intra, fn)
		return
	}
	s.stats.CoAccess(d1, intra, fn)
}

// writeParts maps a write set to its sorted, deduplicated partition ids.
// Write sets are small (a handful of partitions), so the common path
// dedups by linear scan and sorts by insertion — no map, no sort.Slice
// closure — falling back to the general path for large sets.
func (s *Selector) writeParts(writeSet []storage.RowRef) []uint64 {
	if len(writeSet) > 32 {
		return s.writePartsLarge(writeSet)
	}
	parts := make([]uint64, 0, len(writeSet))
outer:
	for _, ref := range writeSet {
		id := s.partitioner(ref)
		for _, seen := range parts {
			if seen == id {
				continue outer
			}
		}
		parts = append(parts, id)
	}
	for i := 1; i < len(parts); i++ {
		for j := i; j > 0 && parts[j] < parts[j-1]; j-- {
			parts[j], parts[j-1] = parts[j-1], parts[j]
		}
	}
	return parts
}

func (s *Selector) writePartsLarge(writeSet []storage.RowRef) []uint64 {
	seen := make(map[uint64]struct{}, len(writeSet))
	parts := make([]uint64, 0, len(writeSet))
	for _, ref := range writeSet {
		id := s.partitioner(ref)
		if _, ok := seen[id]; !ok {
			seen[id] = struct{}{}
			parts = append(parts, id)
		}
	}
	sort.Slice(parts, func(i, j int) bool { return parts[i] < parts[j] })
	return parts
}

// RouteWrite decides the execution site for a write transaction with the
// given write set, remastering the written partitions to one site if their
// masters are currently distributed (§V-B). cvv is the client's session
// vector, used by the refresh-delay feature.
func (s *Selector) RouteWrite(client int, writeSet []storage.RowRef, cvv vclock.Vector) (Route, error) {
	return s.routeWrite(client, writeSet, cvv, obs.SpanContext{})
}

// RouteWriteTraced is RouteWrite under a sampled distributed trace: sc is
// the route span's context, and any remaster chain records one release span
// (at the source site) and one grant span (at the destination) per chain as
// children of sc.Span.
func (s *Selector) RouteWriteTraced(client int, writeSet []storage.RowRef, cvv vclock.Vector, sc obs.SpanContext) (Route, error) {
	return s.routeWrite(client, writeSet, cvv, sc)
}

func (s *Selector) routeWrite(client int, writeSet []storage.RowRef, cvv vclock.Vector, sc obs.SpanContext) (Route, error) {
	if s.deposed.Load() {
		return Route{}, ErrNoLeader
	}
	start := time.Now()
	parts := s.writeParts(writeSet)
	if len(parts) == 0 {
		s.writeTxns.Add(1)
		return Route{Site: 0}, nil
	}
	infos := make([]*partInfo, len(parts))
	for i, id := range parts {
		infos[i] = s.part(id)
	}

	// Fast path: shared-lock all partitions (in sorted id order) and check
	// for a single master.
	for _, in := range infos {
		in.mu.RLock()
	}
	master := infos[0].master
	single := true
	for _, in := range infos[1:] {
		if in.master != master {
			single = false
			break
		}
	}
	if single {
		for _, in := range infos {
			in.mu.RUnlock()
		}
		if err := s.ensureHostedAt(parts, master); err != nil {
			return Route{}, err
		}
		s.finishWrite(client, parts, master, start)
		return Route{Site: master}, nil
	}

	// Slow path: upgrade to exclusive locks (drop shared, reacquire
	// exclusive in order — the recheck below covers intervening changes).
	for _, in := range infos {
		in.mu.RUnlock()
	}
	for _, in := range infos {
		in.mu.Lock()
	}
	defer func() {
		for _, in := range infos {
			in.mu.Unlock()
		}
	}()
	master = infos[0].master
	single = true
	for _, in := range infos[1:] {
		if in.master != master {
			single = false
			break
		}
	}
	if single {
		// A concurrent client with a common write set already remastered.
		if err := s.ensureHostedAt(parts, master); err != nil {
			return Route{}, err
		}
		s.finishWrite(client, parts, master, start)
		return Route{Site: master}, nil
	}

	dest, err := s.chooseDestination(parts, infos, cvv)
	if err != nil {
		return Route{}, err
	}
	remStart := time.Now()
	minVV, moved, err := s.remaster(parts, infos, dest, sc)
	wait := time.Since(remStart)
	if err != nil {
		return Route{}, err
	}
	s.remasterOps.Add(1)
	s.partsMoved.Add(uint64(moved))
	s.remastNanos.Add(int64(wait))
	s.ob.remasters.Inc()
	s.ob.partsMoved.Add(uint64(moved))
	s.ob.remastDur.ObserveDuration(wait)
	s.finishWrite(client, parts, dest, start)
	return Route{Site: dest, MinVV: minVV, Remastered: true, PartsMoved: moved, RemasterWait: wait}, nil
}

// finishWrite records statistics and routing counters for a decided write
// (called by the master's own routing paths and by replica selectors'
// local decisions).
func (s *Selector) finishWrite(client int, parts []uint64, site int, start time.Time) {
	now := time.Now()
	elapsed := now.Sub(start)
	s.writeTxns.Add(1)
	s.routed[site].Add(1)
	if s.hooks.Record != nil {
		// Sharded: the Group dispatches the sample to every shard whose
		// stripes need it (cross-shard co-access pairs land on both sides).
		s.hooks.Record(client, parts, now)
	} else {
		s.stats.RecordWrite(client, parts, now)
	}
	s.bumpLoad(parts, site)
	s.routeNanos.Add(int64(elapsed))
	s.ob.writeTxns.Inc()
	if s.ob.routed != nil {
		s.ob.routed[site].Inc()
	}
	s.ob.routeDur.Observe(elapsed.Seconds())
}

// addFloat CAS-adds d to the float64 bit-cast in a, returning the new value.
func addFloat(a *atomic.Uint64, d float64) float64 {
	for {
		old := a.Load()
		next := math.Float64frombits(old) + d
		if a.CompareAndSwap(old, math.Float64bits(next)) {
			return next
		}
	}
}

// loadFloat reads the float64 bit-cast in a.
func loadFloat(a *atomic.Uint64) float64 { return math.Float64frombits(a.Load()) }

// bumpLoad maintains the materialized per-site load: every access adds the
// partitions' unit weight to their (possibly new) master site, lock-free.
// The load decays with the stats tracker's halving implicitly through
// re-derivation: we approximate by adding 1 per partition access to the
// master site and halving all site loads when the running total exceeds
// the stats decay threshold (a single decayer runs at a time; racing adds
// skew a score at most transiently — the load is a scoring heuristic).
func (s *Selector) bumpLoad(parts []uint64, site int) {
	w := float64(len(parts))
	addFloat(&s.siteLoad[site], w)
	if addFloat(&s.loadTotal, w) > s.stats.decayThreshold {
		s.decayLoad()
	}
}

// decayLoad halves every site's load; only one goroutine decays at a time.
func (s *Selector) decayLoad() {
	if !s.decaying.CompareAndSwap(false, true) {
		return
	}
	defer s.decaying.Store(false)
	if loadFloat(&s.loadTotal) <= s.stats.decayThreshold {
		return
	}
	for i := range s.siteLoad {
		a := &s.siteLoad[i]
		for {
			old := a.Load()
			if a.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)/2)) {
				break
			}
		}
	}
	for {
		old := s.loadTotal.Load()
		if s.loadTotal.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)/2)) {
			break
		}
	}
}

// siteLoadSnapshot copies the current per-site load.
func (s *Selector) siteLoadSnapshot() []float64 {
	out := make([]float64, len(s.siteLoad))
	for i := range s.siteLoad {
		out[i] = loadFloat(&s.siteLoad[i])
	}
	return out
}

// chooseDestination scores every live site as a remastering destination
// with the Equation 8 model and returns the best; when every site is
// flagged down it returns a retryable error rather than targeting a dead
// site. Caller holds the partitions' exclusive locks; infos parallels
// parts.
func (s *Selector) chooseDestination(parts []uint64, infos []*partInfo, cvv vclock.Vector) (int, error) {
	inSet := make(map[uint64]int, len(parts)) // partition -> index
	for i, id := range parts {
		inSet[id] = i
	}
	masterOf := func(id uint64) int {
		if i, ok := inSet[id]; ok {
			return infos[i].master
		}
		// Lock-free hint: scoring must not acquire locks on partitions
		// outside the write set (and, sharded, must not create foreign
		// partitions — hintFor resolves those read-only via the Group).
		return s.hintFor(id)
	}
	inWriteSet := func(id uint64) bool { _, ok := inSet[id]; return ok }

	// Current load and the write set's per-partition weights.
	var before []float64
	if s.hooks.SiteLoads != nil {
		before = s.hooks.SiteLoads()
	} else {
		before = s.siteLoadSnapshot()
	}
	weights := make([]float64, len(parts))
	for i, id := range parts {
		w := s.accessWeight(id)
		if w == 0 {
			w = 1
		}
		weights[i] = w
	}

	// Source sites' version vectors (for the refresh-delay feature): the
	// element-wise max of the client session vector and every releasing
	// site's vector is what the destination must catch up to.
	need := cvv.Clone()
	seenSrc := make(map[int]struct{})
	for _, in := range infos {
		if _, ok := seenSrc[in.master]; ok {
			continue
		}
		seenSrc[in.master] = struct{}{}
		need = need.MaxInto(s.sites[in.master].SVV())
	}

	model := s.Weights()
	best, bestScore := -1, 0.0
	var bestFeat [4]float64 // balance, delay, intra, inter of the winner
	for cand := 0; cand < s.m; cand++ {
		if s.downSites[cand].Load() {
			continue // never remaster into a failed site
		}
		after := append([]float64(nil), before...)
		for i, in := range infos {
			if in.master != cand {
				after[in.master] -= weights[i]
				if after[in.master] < 0 {
					after[in.master] = 0
				}
				after[cand] += weights[i]
			}
		}
		balance := BalanceFactor(before, after)
		delay := RefreshDelay(need, s.sites[cand].SVV())

		var intra, inter float64
		for _, d1 := range parts {
			s.coAccess(d1, true, func(d2 uint64, p float64) {
				intra += p * SingleSited(cand, d1, d2, masterOf, inWriteSet)
			})
			s.coAccess(d1, false, func(d2 uint64, p float64) {
				inter += p * SingleSited(cand, d1, d2, masterOf, inWriteSet)
			})
		}

		score := model.Benefit(balance, delay, intra, inter)
		if best < 0 || score > bestScore {
			best, bestScore = cand, score
			bestFeat = [4]float64{balance, delay, intra, inter}
		}
	}
	if best < 0 {
		return -1, fmt.Errorf("selector: no live remaster destination: %w", sitemgr.ErrSiteDown)
	}
	s.ob.featBalance.Set(bestFeat[0])
	s.ob.featDelay.Set(bestFeat[1])
	s.ob.featIntra.Set(bestFeat[2])
	s.ob.featInter.Set(bestFeat[3])
	return best, nil
}

// remasterSendRetries bounds how many times a lost remaster RPC is retried
// before the chain is declared failed.
const remasterSendRetries = 3

// remasterCall performs one release/grant RPC against site peer: request
// message, operation, response message. Injected wire faults (drops,
// errors) are retried a bounded number of times — safe because epoch
// fencing makes the operation idempotent: a retry reaching a site that
// already executed the epoch gets the memoized result, never a second
// state change. Errors returned by the site itself (down, stale epoch) are
// definitive and surface immediately.
func (s *Selector) remasterCall(peer, reqSize int, op func() (vclock.Vector, error)) (vclock.Vector, error) {
	var lastErr error
	for attempt := 0; attempt <= remasterSendRetries; attempt++ {
		if attempt > 0 {
			transport.CountRetry()
		}
		if err := s.net.SendTo(transport.CatRemaster, transport.SelectorNode, peer, reqSize); err != nil {
			lastErr = err
			continue // request lost on the wire
		}
		vv, err := op()
		if err != nil {
			return nil, err
		}
		if err := s.net.SendTo(transport.CatRemaster, peer, transport.SelectorNode,
			transport.MsgOverhead+transport.SizeOfVector(vv)); err != nil {
			lastErr = err
			continue // response lost; the idempotent call re-runs
		}
		return vv, nil
	}
	return nil, fmt.Errorf("selector: remaster RPC to site %d failed after %d attempts: %w",
		peer, remasterSendRetries+1, lastErr)
}

// remaster transfers mastership of every partition in parts not already at
// dest, using parallel release+grant chains per source site (Algorithm 1),
// and returns the element-wise max of the grant vectors plus the number of
// partitions moved. Caller holds the partitions' exclusive locks.
//
// Each chain is fenced by a fresh epoch and is failure-hardened: lost RPCs
// retry against the idempotent release/grant; a grant that fails after its
// release succeeded rolls ownership back to the releaser rather than
// stranding the partitions masterless. The rollback runs under a FRESH
// epoch as a Release(dest)+Grant(src) chain: the grant leg can fail with
// the destination having executed the grant (request delivered, every
// response and retry lost — e.g. a one-way partition back to the
// selector), and re-granting the source under the chain's own epoch would
// then leave both sites' logs ending in a grant at the same epoch, which
// recovery tie-breaks arbitrarily. The fresh-epoch release fences out (and
// revokes) any such phantom ownership at the destination, and the grant
// back to the source strictly out-epochs whatever the destination logged,
// so recovery arbitration stays unambiguous. Selector metadata updates per
// chain, so a failed chain never undoes — or blocks — a succeeded one.
func (s *Selector) remaster(parts []uint64, infos []*partInfo, dest int, sc obs.SpanContext) (vclock.Vector, int, error) {
	type chain struct {
		src  int
		ids  []uint64
		idxs []int // indexes into infos, for per-chain metadata updates
	}
	bySource := make(map[int]*chain)
	for i, in := range infos {
		if in.master != dest {
			c := bySource[in.master]
			if c == nil {
				c = &chain{src: in.master}
				bySource[in.master] = c
			}
			c.ids = append(c.ids, parts[i])
			c.idxs = append(c.idxs, i)
		}
	}

	var (
		wg    sync.WaitGroup
		mu    sync.Mutex
		out   vclock.Vector
		first error
		moved int
	)
	for _, c := range bySource {
		wg.Add(1)
		go func(c *chain) {
			defer wg.Done()
			epoch, allocErr := s.epochs.Alloc()
			if allocErr != nil {
				// Deposed mid-route: no epoch, no chain. The session
				// retries against the promoted leader.
				mu.Lock()
				if first == nil {
					first = allocErr
				}
				mu.Unlock()
				return
			}
			// Partial replication: a master must be a replica-set member, so
			// materialize the destination's replica (bootstrap copy) BEFORE
			// the release/grant chain. An add that fails aborts the chain
			// with nothing to roll back; an add that succeeds with the chain
			// later failing leaves dest as a plain replica the controller
			// may drop again.
			if ensErr := s.ensureHostedAt(c.ids, dest); ensErr != nil {
				mu.Lock()
				if first == nil {
					first = ensErr
				}
				mu.Unlock()
				return
			}
			relStart := time.Now()
			relVV, err := s.remasterCall(c.src,
				transport.MsgOverhead+transport.SizeOfPartitions(c.ids),
				func() (vclock.Vector, error) { return s.sites[c.src].Release(c.ids, dest, epoch) })
			if sc.Sampled() && err == nil {
				s.spans.Record(obs.Span{
					Trace: sc.Trace, Parent: sc.Span, Name: "release", Site: c.src,
					Start: relStart, Dur: time.Since(relStart),
				})
			}
			if err == nil {
				grantStart := time.Now()
				var grantVV vclock.Vector
				grantVV, err = s.remasterCall(dest,
					transport.MsgOverhead+transport.SizeOfPartitions(c.ids)+transport.SizeOfVector(relVV),
					func() (vclock.Vector, error) { return s.sites[dest].Grant(c.ids, relVV, c.src, epoch) })
				if err == nil {
					if sc.Sampled() {
						s.spans.Record(obs.Span{
							Trace: sc.Trace, Parent: sc.Span, Name: "grant", Site: dest,
							Start: grantStart, Dur: time.Since(grantStart),
						})
					}
					obs.RecordEvent(obs.FlightRemaster, dest,
						"epoch %d: %d partition(s) remastered %d -> %d", epoch, len(c.ids), c.src, dest)
					// Chain complete: flip this chain's metadata now (the
					// caller holds the partitions' exclusive locks).
					for _, ix := range c.idxs {
						infos[ix].setMaster(dest, epoch)
					}
					s.noteMaster(c.ids, dest)
					s.publish(c.ids, dest, epoch)
					mu.Lock()
					out = out.MaxInto(grantVV)
					moved += len(c.ids)
					mu.Unlock()
					return
				}
				// The source released but the grant leg failed. A stale
				// epoch means a newer chain (a racing failover) already
				// moved the partitions; rolling back would clobber that
				// newer ownership, so leave it be.
				if errors.Is(err, sitemgr.ErrStaleEpoch) {
					mu.Lock()
					if first == nil {
						first = err
					}
					mu.Unlock()
					return
				}
				// Otherwise the destination may still have executed the
				// grant (only the responses were lost), so fence its
				// possible phantom ownership with a fresh-epoch release
				// before granting the partitions back to the releaser. An
				// unconfirmed release is fine: either it executed
				// (destination fenced and revoked) or the destination
				// never owned — in both cases the higher-epoch grant below
				// wins recovery arbitration and routing still points at
				// the source.
				rbEpoch, rbAllocErr := s.epochs.Alloc()
				if rbAllocErr != nil {
					// Deposed before the rollback could run: the release
					// stands without a grant, which the promoted leader's
					// dangling-release repair re-grants to the source.
					mu.Lock()
					if first == nil {
						first = err
					}
					mu.Unlock()
					return
				}
				if vv, rbErr := s.remasterCall(dest,
					transport.MsgOverhead+transport.SizeOfPartitions(c.ids),
					func() (vclock.Vector, error) { return s.sites[dest].Release(c.ids, c.src, rbEpoch) }); rbErr == nil {
					relVV = relVV.MaxInto(vv)
				}
				if _, rbErr := s.remasterCall(c.src,
					transport.MsgOverhead+transport.SizeOfPartitions(c.ids)+transport.SizeOfVector(relVV),
					func() (vclock.Vector, error) { return s.sites[c.src].Grant(c.ids, relVV, c.src, rbEpoch) }); rbErr != nil {
					err = fmt.Errorf("%w (rollback to site %d also failed: %v)", err, c.src, rbErr)
				}
			}
			mu.Lock()
			if first == nil {
				first = err
			}
			mu.Unlock()
		}(c)
	}
	wg.Wait()
	if first != nil {
		return nil, moved, first
	}
	return out, moved, nil
}

// RouteRead picks an execution site for a read-only transaction: a random
// site whose version vector already satisfies the client's session
// freshness, spreading load while minimizing blocking (§IV-B). If no site
// satisfies it, the least-lagged site is returned (the transaction blocks
// there the shortest time).
func (s *Selector) RouteRead(client int, cvv vclock.Vector) Route {
	s.readTxns.Add(1)
	s.ob.readTxns.Inc()
	fresh := make([]int, 0, s.m)
	bestLag, bestSite := uint64(1)<<63, 0
	for i, site := range s.sites {
		if s.downSites[i].Load() {
			continue // reads never route to a failed site
		}
		svv := site.SVV()
		if svv.DominatesEq(cvv) {
			fresh = append(fresh, i)
			continue
		}
		if lag := svv.LagBehind(cvv); lag < bestLag {
			bestLag, bestSite = lag, i
		}
	}
	if len(fresh) == 0 {
		return Route{Site: bestSite}
	}
	rng := s.rngPool.Get().(*rand.Rand)
	pick := fresh[rng.Intn(len(fresh))]
	s.rngPool.Put(rng)
	return Route{Site: pick}
}

// Metrics is a snapshot of the selector's counters.
type Metrics struct {
	WriteTxns     uint64
	ReadTxns      uint64
	RemasterTxns  uint64 // write txns that required remastering
	PartsMoved    uint64
	RoutedPerSite []uint64
	AvgRouteTime  time.Duration // mean routing decision latency
	AvgRemaster   time.Duration // mean release/grant wait of remastering decisions
}

// Metrics returns a snapshot of routing counters.
func (s *Selector) Metrics() Metrics {
	m := Metrics{
		WriteTxns:     s.writeTxns.Load(),
		ReadTxns:      s.readTxns.Load(),
		RemasterTxns:  s.remasterOps.Load(),
		PartsMoved:    s.partsMoved.Load(),
		RoutedPerSite: make([]uint64, s.m),
	}
	for i := range s.routed {
		m.RoutedPerSite[i] = s.routed[i].Load()
	}
	if m.WriteTxns > 0 {
		m.AvgRouteTime = time.Duration(s.routeNanos.Load() / int64(m.WriteTxns))
	}
	if m.RemasterTxns > 0 {
		m.AvgRemaster = time.Duration(s.remastNanos.Load() / int64(m.RemasterTxns))
	}
	return m
}
