// Package selector implements DynaMast's site selector: transaction routing,
// the remastering protocol (Algorithm 1), and the adaptive remastering
// strategies of §IV built on learned workload statistics.
package selector

import (
	"sync"
	"time"
)

// Stats learns workload access patterns (§V-B): per-partition write access
// frequencies (for the load-balance feature), and intra-/inter-transaction
// co-access counts (for the localization features). Write sets are sampled
// into a bounded history queue; when a sample expires its contribution is
// decremented, letting the statistics track workload change.
type Stats struct {
	mu sync.Mutex

	// Write access frequency, for f_balance. Counted for every routed
	// write (not sampled): access[p] is partition p's recent write count.
	access      map[uint64]float64
	totalAccess float64
	// decayThreshold triggers halving of all access counts so frequencies
	// follow the recent workload.
	decayThreshold float64

	// Co-access statistics from sampled write sets.
	intra       map[uint64]map[uint64]float64 // intra[d1][d2]: times d1,d2 written in one txn
	inter       map[uint64]map[uint64]float64 // inter[d1][d2]: d2 written within Δt after d1 by same client
	occurrences map[uint64]float64            // samples containing d1 (P(d2|d1) denominator)

	history  []sample // ring buffer of samples
	histNext int
	histLen  int

	// Per-client recent write sets for inter-transaction correlation.
	recent      map[int]recentTxn
	interWindow time.Duration

	sampleEvery int // record 1 of every sampleEvery write sets
	sampleTick  int
}

type sample struct {
	parts      []uint64
	interPairs [][2]uint64 // inter-txn pairs this sample contributed
}

type recentTxn struct {
	parts []uint64
	at    time.Time
}

// StatsConfig tunes the statistics tracker.
type StatsConfig struct {
	// HistorySize bounds the sample queue; expiring samples decrement
	// their counts (default 4096).
	HistorySize int
	// SampleEvery records one in every SampleEvery write sets (default 1:
	// record everything; the paper samples adaptively to bound overhead).
	SampleEvery int
	// InterWindow is Δt for inter-transaction correlations (default 50ms,
	// scaled to this reproduction's transaction rates).
	InterWindow time.Duration
	// DecayThreshold halves access counts when the total exceeds it
	// (default 100k accesses).
	DecayThreshold float64
}

// NewStats returns a tracker with the given configuration.
func NewStats(cfg StatsConfig) *Stats {
	if cfg.HistorySize == 0 {
		cfg.HistorySize = 4096
	}
	if cfg.SampleEvery == 0 {
		cfg.SampleEvery = 1
	}
	if cfg.InterWindow == 0 {
		cfg.InterWindow = 50 * time.Millisecond
	}
	if cfg.DecayThreshold == 0 {
		cfg.DecayThreshold = 100_000
	}
	return &Stats{
		access:         make(map[uint64]float64),
		decayThreshold: cfg.DecayThreshold,
		intra:          make(map[uint64]map[uint64]float64),
		inter:          make(map[uint64]map[uint64]float64),
		occurrences:    make(map[uint64]float64),
		history:        make([]sample, cfg.HistorySize),
		recent:         make(map[int]recentTxn),
		interWindow:    cfg.InterWindow,
		sampleEvery:    cfg.SampleEvery,
	}
}

// RecordWrite ingests one routed write transaction's partition set for
// client. Access counts are always updated; co-access statistics are
// updated for sampled transactions.
func (st *Stats) RecordWrite(client int, parts []uint64, now time.Time) {
	st.mu.Lock()
	defer st.mu.Unlock()

	for _, p := range parts {
		st.access[p]++
	}
	st.totalAccess += float64(len(parts))
	if st.totalAccess > st.decayThreshold {
		for p := range st.access {
			st.access[p] /= 2
		}
		st.totalAccess /= 2
	}

	st.sampleTick++
	if st.sampleTick%st.sampleEvery != 0 {
		return
	}

	sm := sample{parts: append([]uint64(nil), parts...)}

	// Intra-transaction pairs.
	for i, d1 := range parts {
		st.occurrences[d1]++
		for j, d2 := range parts {
			if i == j {
				continue
			}
			addPair(st.intra, d1, d2, 1)
		}
	}

	// Inter-transaction pairs: partitions of this client's previous write
	// set within Δt correlate with this write set.
	if prev, ok := st.recent[client]; ok && now.Sub(prev.at) <= st.interWindow {
		for _, d1 := range prev.parts {
			for _, d2 := range parts {
				if d1 == d2 {
					continue
				}
				addPair(st.inter, d1, d2, 1)
				sm.interPairs = append(sm.interPairs, [2]uint64{d1, d2})
			}
		}
	}
	st.recent[client] = recentTxn{parts: sm.parts, at: now}

	// Expire the sample this one replaces.
	old := st.history[st.histNext]
	if st.histLen == len(st.history) {
		st.expireLocked(old)
	} else {
		st.histLen++
	}
	st.history[st.histNext] = sm
	st.histNext = (st.histNext + 1) % len(st.history)
}

// expireLocked reverses an old sample's contributions.
func (st *Stats) expireLocked(old sample) {
	for i, d1 := range old.parts {
		if st.occurrences[d1] > 0 {
			st.occurrences[d1]--
		}
		for j, d2 := range old.parts {
			if i == j {
				continue
			}
			addPair(st.intra, d1, d2, -1)
		}
	}
	for _, pr := range old.interPairs {
		addPair(st.inter, pr[0], pr[1], -1)
	}
}

func addPair(m map[uint64]map[uint64]float64, d1, d2 uint64, delta float64) {
	row := m[d1]
	if row == nil {
		if delta <= 0 {
			return
		}
		row = make(map[uint64]float64)
		m[d1] = row
	}
	v := row[d2] + delta
	if v <= 0 {
		delete(row, d2)
		if len(row) == 0 {
			delete(m, d1)
		}
		return
	}
	row[d2] = v
}

// AccessWeight returns partition p's recent write access count.
func (st *Stats) AccessWeight(p uint64) float64 {
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.access[p]
}

// CoAccess enumerates, for source partition d1, every correlated partition
// d2 with its conditional probability P(d2|d1) (intra) and
// P(d2|d1; T<=Δt) (inter). fn is called under the stats lock; it must not
// call back into Stats.
func (st *Stats) CoAccess(d1 uint64, intra bool, fn func(d2 uint64, p float64)) {
	st.mu.Lock()
	defer st.mu.Unlock()
	n := st.occurrences[d1]
	if n == 0 {
		return
	}
	src := st.intra
	if !intra {
		src = st.inter
	}
	for d2, c := range src[d1] {
		fn(d2, c/n)
	}
}
