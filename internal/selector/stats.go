// Package selector implements DynaMast's site selector: transaction routing,
// the remastering protocol (Algorithm 1), and the adaptive remastering
// strategies of §IV built on learned workload statistics.
package selector

import (
	"sync"
	"time"
)

// Stats learns workload access patterns (§V-B): per-partition write access
// frequencies (for the load-balance feature), and intra-/inter-transaction
// co-access counts (for the localization features). Write sets are sampled
// into a bounded history queue; when a sample expires its contribution is
// decremented, letting the statistics track workload change.
//
// The tracker is striped by client: every routed write locks only the
// stripe its client hashes to, so concurrent RecordWrite calls from
// different clients do not serialize on one mutex (the selector's routing
// hot path). Each stripe is a complete single-lock tracker with the
// configured history/decay bounds; readers (AccessWeight, CoAccess)
// aggregate across stripes. Because inter-transaction correlation is
// per-client and intra-transaction correlation is per-write-set, striping
// by client preserves both exactly; a single client's stream behaves
// identically to the pre-striping global tracker (see
// TestStripedStatsMatchesReference).
type Stats struct {
	stripes []statsStripe
	// decayThreshold is the configured (per-stripe) decay trigger; the
	// selector's materialized-load decay reuses it.
	decayThreshold float64
}

// statsStripe is one client-hash stripe: the original single-mutex tracker.
type statsStripe struct {
	mu sync.Mutex

	// Write access frequency, for f_balance. Counted for every routed
	// write (not sampled): access[p] is partition p's recent write count.
	access      map[uint64]float64
	totalAccess float64
	// decayThreshold triggers halving of all access counts so frequencies
	// follow the recent workload.
	decayThreshold float64

	// Read access frequency, for the placement policy's replica-demand
	// signal. Decays on the same threshold as write access.
	reads      map[uint64]float64
	totalReads float64

	// Co-access statistics from sampled write sets.
	intra       map[uint64]map[uint64]float64 // intra[d1][d2]: times d1,d2 written in one txn
	inter       map[uint64]map[uint64]float64 // inter[d1][d2]: d2 written within Δt after d1 by same client
	occurrences map[uint64]float64            // samples containing d1 (P(d2|d1) denominator)

	history  []sample // ring buffer of samples
	histNext int
	histLen  int

	// Per-client recent write sets for inter-transaction correlation.
	recent      map[int]recentTxn
	interWindow time.Duration

	sampleEvery int // record 1 of every sampleEvery write sets
	sampleTick  int

	_ [40]byte // pad stripes apart (mutex + hot fields per cache line)
}

type sample struct {
	parts      []uint64
	interPairs [][2]uint64 // inter-txn pairs this sample contributed
}

// recentTxn is a client's last write set, held by value (small sets inline)
// so it never aliases a history sample's arrays — which lets RecordWrite
// recycle an expired sample's backing arrays for the sample replacing it,
// keeping the hot path allocation-free once the ring has filled.
type recentTxn struct {
	at     time.Time
	n      int
	inline [8]uint64
	spill  []uint64 // write sets larger than inline
}

func (r *recentTxn) view() []uint64 {
	if r.spill != nil {
		return r.spill
	}
	return r.inline[:r.n]
}

func setRecent(m map[int]recentTxn, client int, parts []uint64, at time.Time) {
	r := recentTxn{at: at, n: len(parts)}
	if len(parts) <= len(r.inline) {
		copy(r.inline[:], parts)
	} else {
		r.spill = append([]uint64(nil), parts...)
	}
	m[client] = r
}

// StatsConfig tunes the statistics tracker.
type StatsConfig struct {
	// HistorySize bounds each stripe's sample queue; expiring samples
	// decrement their counts (default 4096).
	HistorySize int
	// SampleEvery records one in every SampleEvery write sets per stripe
	// (default 1: record everything; the paper samples adaptively to bound
	// overhead).
	SampleEvery int
	// InterWindow is Δt for inter-transaction correlations (default 50ms,
	// scaled to this reproduction's transaction rates).
	InterWindow time.Duration
	// DecayThreshold halves a stripe's access counts when its total
	// exceeds it (default 100k accesses).
	DecayThreshold float64
	// Stripes is the number of client-hash stripes (rounded up to a power
	// of two; default 16). 1 recovers the single-lock tracker.
	Stripes int
}

// defaultStatsStripes is the default client-hash stripe count.
const defaultStatsStripes = 16

// NewStats returns a tracker with the given configuration.
func NewStats(cfg StatsConfig) *Stats {
	if cfg.HistorySize == 0 {
		cfg.HistorySize = 4096
	}
	if cfg.SampleEvery == 0 {
		cfg.SampleEvery = 1
	}
	if cfg.InterWindow == 0 {
		cfg.InterWindow = 50 * time.Millisecond
	}
	if cfg.DecayThreshold == 0 {
		cfg.DecayThreshold = 100_000
	}
	if cfg.Stripes == 0 {
		cfg.Stripes = defaultStatsStripes
	}
	n := 1
	for n < cfg.Stripes {
		n *= 2
	}
	st := &Stats{
		stripes:        make([]statsStripe, n),
		decayThreshold: cfg.DecayThreshold,
	}
	for i := range st.stripes {
		sp := &st.stripes[i]
		sp.access = make(map[uint64]float64)
		sp.reads = make(map[uint64]float64)
		sp.decayThreshold = cfg.DecayThreshold
		sp.intra = make(map[uint64]map[uint64]float64)
		sp.inter = make(map[uint64]map[uint64]float64)
		sp.occurrences = make(map[uint64]float64)
		sp.history = make([]sample, cfg.HistorySize)
		sp.recent = make(map[int]recentTxn)
		sp.interWindow = cfg.InterWindow
		sp.sampleEvery = cfg.SampleEvery
	}
	return st
}

// Stripes returns the stripe count (a power of two).
func (st *Stats) Stripes() int { return len(st.stripes) }

// stripe returns the stripe client hashes to. Client ids are small dense
// integers, so a Fibonacci multiply-shift spreads consecutive ids across
// stripes.
func (st *Stats) stripe(client int) *statsStripe {
	return &st.stripes[st.stripeIndex(client)]
}

func (st *Stats) stripeIndex(client int) int {
	return int((uint64(client) * 0x9E3779B97F4A7C15) >> 32 & uint64(len(st.stripes)-1))
}

// RecordWrite ingests one routed write transaction's partition set for
// client. Access counts are always updated; co-access statistics are
// updated for sampled transactions. Only the client's stripe is locked.
func (st *Stats) RecordWrite(client int, parts []uint64, now time.Time) {
	sp := st.stripe(client)
	sp.mu.Lock()
	defer sp.mu.Unlock()

	for _, p := range parts {
		sp.access[p]++
	}
	sp.totalAccess += float64(len(parts))
	if sp.totalAccess > sp.decayThreshold {
		for p := range sp.access {
			sp.access[p] /= 2
		}
		sp.totalAccess /= 2
	}

	sp.sampleTick++
	if sp.sampleTick%sp.sampleEvery != 0 {
		return
	}

	// Expire the sample this one replaces, then recycle its backing arrays
	// for the new sample (expiry and addition commute, so reordering them
	// ahead of the increments below leaves every count unchanged).
	old := sp.history[sp.histNext]
	if sp.histLen == len(sp.history) {
		sp.expireLocked(old)
	} else {
		sp.histLen++
	}
	sm := sample{parts: append(old.parts[:0], parts...), interPairs: old.interPairs[:0]}

	// Intra-transaction pairs.
	for i, d1 := range parts {
		sp.occurrences[d1]++
		for j, d2 := range parts {
			if i == j {
				continue
			}
			addPair(sp.intra, d1, d2, 1)
		}
	}

	// Inter-transaction pairs: partitions of this client's previous write
	// set within Δt correlate with this write set.
	if prev, ok := sp.recent[client]; ok && now.Sub(prev.at) <= sp.interWindow {
		for _, d1 := range prev.view() {
			for _, d2 := range parts {
				if d1 == d2 {
					continue
				}
				addPair(sp.inter, d1, d2, 1)
				sm.interPairs = append(sm.interPairs, [2]uint64{d1, d2})
			}
		}
	}
	setRecent(sp.recent, client, parts, now)

	sp.history[sp.histNext] = sm
	sp.histNext = (sp.histNext + 1) % len(sp.history)
}

// RecordRead ingests one routed read transaction's partition set for client
// (partial-replication read routing feeds it). Only read access frequencies
// are tracked — reads contribute nothing to the remastering co-access model.
// Only the client's stripe is locked.
func (st *Stats) RecordRead(client int, parts []uint64) {
	sp := st.stripe(client)
	sp.mu.Lock()
	defer sp.mu.Unlock()
	for _, p := range parts {
		sp.reads[p]++
	}
	sp.totalReads += float64(len(parts))
	if sp.totalReads > sp.decayThreshold {
		for p := range sp.reads {
			sp.reads[p] /= 2
		}
		sp.totalReads /= 2
	}
}

// ReadWeight returns partition p's recent read access count, aggregated
// across stripes.
func (st *Stats) ReadWeight(p uint64) float64 {
	var w float64
	for i := range st.stripes {
		sp := &st.stripes[i]
		sp.mu.Lock()
		w += sp.reads[p]
		sp.mu.Unlock()
	}
	return w
}

// expireLocked reverses an old sample's contributions.
func (sp *statsStripe) expireLocked(old sample) {
	for i, d1 := range old.parts {
		if sp.occurrences[d1] > 0 {
			sp.occurrences[d1]--
		}
		for j, d2 := range old.parts {
			if i == j {
				continue
			}
			addPair(sp.intra, d1, d2, -1)
		}
	}
	for _, pr := range old.interPairs {
		addPair(sp.inter, pr[0], pr[1], -1)
	}
}

func addPair(m map[uint64]map[uint64]float64, d1, d2 uint64, delta float64) {
	row := m[d1]
	if row == nil {
		if delta <= 0 {
			return
		}
		row = make(map[uint64]float64)
		m[d1] = row
	}
	v := row[d2] + delta
	if v <= 0 {
		delete(row, d2)
		if len(row) == 0 {
			delete(m, d1)
		}
		return
	}
	row[d2] = v
}

// AccessWeight returns partition p's recent write access count, aggregated
// across stripes.
func (st *Stats) AccessWeight(p uint64) float64 {
	var w float64
	for i := range st.stripes {
		sp := &st.stripes[i]
		sp.mu.Lock()
		w += sp.access[p]
		sp.mu.Unlock()
	}
	return w
}

// occurrencesOf returns the aggregate sample count containing partition p
// (the P(d2|p) denominator); test hook.
func (st *Stats) occurrencesOf(p uint64) float64 {
	var n float64
	for i := range st.stripes {
		sp := &st.stripes[i]
		sp.mu.Lock()
		n += sp.occurrences[p]
		sp.mu.Unlock()
	}
	return n
}

// CoAccess enumerates, for source partition d1, every correlated partition
// d2 with its conditional probability P(d2|d1) (intra) and
// P(d2|d1; T<=Δt) (inter), aggregated across stripes: the pair counts and
// the occurrence denominator are summed over stripes before dividing, so
// the probabilities equal the unstriped tracker's over the same samples.
// fn is called with no stripe lock held; it may call back into Stats.
func (st *Stats) CoAccess(d1 uint64, intra bool, fn func(d2 uint64, p float64)) {
	var n float64
	var agg map[uint64]float64
	for i := range st.stripes {
		sp := &st.stripes[i]
		sp.mu.Lock()
		n += sp.occurrences[d1]
		src := sp.intra
		if !intra {
			src = sp.inter
		}
		if row := src[d1]; len(row) > 0 {
			if agg == nil {
				agg = make(map[uint64]float64, len(row))
			}
			for d2, c := range row {
				agg[d2] += c
			}
		}
		sp.mu.Unlock()
	}
	if n == 0 {
		return
	}
	for d2, c := range agg {
		fn(d2, c/n)
	}
}
