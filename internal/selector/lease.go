package selector

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"dynamast/internal/obs"
	"dynamast/internal/sitemgr"
	"dynamast/internal/transport"
	"dynamast/internal/vclock"
	"dynamast/internal/wal"
)

// Selector high availability: a leader + hot-standby control plane.
//
// The selector tier is DynaMast's availability-critical state: every update
// transaction passes through it, and its partition map is the routing
// truth. This file turns the replica tier (replica.go) into hot standbys
// and puts leadership under a renewable lease with fencing tokens:
//
//   - The lease lives in a LeaseStore, standing in for the small
//     highly-available coordination service (etcd/ZooKeeper-style) such
//     deployments assume. Crucially, the store is also the SINGLE remaster
//     epoch allocator, and every allocation validates the caller's lease —
//     so the promotion fence (one fresh epoch) trivially dominates every
//     epoch any leader ever issued, and a deposed leader cannot mint new
//     ones. That closes the classic lagging-observer hole: no standby-side
//     counter mirror can lag an in-flight allocation.
//   - The leader renews its lease every Lease/4. When the lease expires
//     (leader crashed, or stalled past the TTL), a standby promotes:
//     (1) acquire the lease (mutually exclusive, fresh token);
//     (2) FENCE every data site with a freshly allocated epoch, so any
//         in-flight release/grant from the deposed leader dies with
//         ErrStaleEpoch — and, via the sites' fence lock, every operation
//         that will still complete is already in its WAL;
//     (3) FOLD the per-site WALs (sitemgr.FoldMastership) — authoritative
//         for everything the logs retain — and overlay the standby's
//         delta-fed mirror for entries checkpoint truncation dropped,
//         higher install epoch winning per partition;
//     (4) REPAIR dangling releases (release logged, grant never executed:
//         the old leader died between the two legs) by re-granting the
//         partitions to the releasing site under a fresh epoch;
//     (5) build a new Selector on the reconciled map and swap it in.
//
// The fence-before-fold order is what makes the map sound: after step (2)
// no deposed-leader operation can reach any site's log, so the fold in
// step (3) is a complete account of site-level ownership. Routing
// unavailability is bounded by the expiry-detection delay plus promotion
// work — about 1.5x the lease TTL — during which writes fail fast with the
// retryable ErrNoLeader and reads keep flowing off the replica tier.

// ErrNoLeader is returned by write routing (and lease-validated epoch
// allocation) while the selector tier has no active leader — during the
// window between a leader crash and a standby's promotion, or forever on a
// deposed leader. Sessions treat it as retryable: the existing bounded
// backoff rides out the failover window.
var ErrNoLeader = errors.New("selector: no control-plane leader (lease failover in progress)")

// leaseMsg is the modelled size of one lease-store operation on the wire.
const leaseMsg = transport.MsgOverhead + 16

// KeyedLeaseStore models the coordination service holding the selector
// leadership leases. It is deliberately simple shared state guarded by one
// mutex per key — the stand-in for a quorum system assumed reliable — but
// its interface is exactly what a remote lease service provides: acquire
// with TTL and fencing token, renew, and token-validated epoch allocation.
// Every operation charges control-plane traffic.
//
// The store is keyed so one service instance can hold many independent
// leases: the sharded selector keeps one lease per router shard, and each
// key's epoch counter is that shard's remaster-epoch allocator. Keys are
// fully independent — one shard's promotion fence (a fresh epoch from ITS
// key) says nothing about another shard's epochs, which is exactly the
// "one shard's fence dominates only its range" invariant the range-scoped
// site fences enforce. The single-leader deployment is the 1-key store.
type KeyedLeaseStore struct {
	net   *transport.Network
	ttl   time.Duration
	cells []leaseCell
}

// leaseCell is one key's lease + epoch-allocator state.
type leaseCell struct {
	mu     sync.Mutex
	holder int // node id; -1 = vacant
	token  uint64
	expiry time.Time
	epochs uint64 // this key's remaster-epoch allocator under HA

	changes  atomic.Uint64 // leadership changes (distinct acquisitions)
	renewals atomic.Uint64
	expiries atomic.Uint64
}

// NewKeyedLeaseStore builds a lease store with n independent keys, all
// sharing one TTL.
func NewKeyedLeaseStore(ttl time.Duration, net *transport.Network, n int) *KeyedLeaseStore {
	if n < 1 {
		n = 1
	}
	ks := &KeyedLeaseStore{net: net, ttl: ttl, cells: make([]leaseCell, n)}
	for i := range ks.cells {
		ks.cells[i].holder = -1
	}
	return ks
}

// Keys returns the number of independent leases the store holds.
func (ks *KeyedLeaseStore) Keys() int { return len(ks.cells) }

// View returns the single-lease view of one key: the LeaseStore interface
// the HA machinery (and a shard's epoch source) operates on.
func (ks *KeyedLeaseStore) View(key int) *LeaseStore {
	return &LeaseStore{ks: ks, cell: &ks.cells[key]}
}

// LeaseStore is a single lease (one key of a KeyedLeaseStore): the
// leadership lease plus the remaster-epoch allocator fenced by it. The
// classic single-leader deployment is View(0) of a 1-key store.
type LeaseStore struct {
	ks   *KeyedLeaseStore
	cell *leaseCell
}

// NewLeaseStore builds a stand-alone single-lease store with the given TTL.
func NewLeaseStore(ttl time.Duration, net *transport.Network) *LeaseStore {
	return NewKeyedLeaseStore(ttl, net, 1).View(0)
}

func (ls *LeaseStore) charge() {
	ls.ks.net.Account(transport.CatLease, leaseMsg)
}

// TTL returns the lease duration.
func (ls *LeaseStore) TTL() time.Duration { return ls.ks.ttl }

// Acquire grants the lease to node if it is vacant or expired (or already
// held by node), returning a fresh fencing token. Exactly one concurrent
// caller can win a vacant lease.
func (ls *LeaseStore) Acquire(node int) (uint64, bool) {
	ls.charge()
	c := ls.cell
	c.mu.Lock()
	defer c.mu.Unlock()
	now := time.Now()
	if c.holder >= 0 && c.holder != node && now.Before(c.expiry) {
		return 0, false
	}
	if c.holder != node {
		c.changes.Add(1)
	}
	c.holder = node
	c.token++
	c.expiry = now.Add(ls.ks.ttl)
	return c.token, true
}

// Renew extends the lease if node still holds it under token. A renewal
// after nominal expiry succeeds as long as no other node acquired in
// between — the check is linearized by the store, so this never resurrects
// a superseded leader.
func (ls *LeaseStore) Renew(node int, token uint64) bool {
	ls.charge()
	c := ls.cell
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.holder != node || c.token != token {
		return false
	}
	c.expiry = time.Now().Add(ls.ks.ttl)
	c.renewals.Add(1)
	return true
}

// Expired reports whether the lease is currently claimable: vacant, or
// past its expiry.
func (ls *LeaseStore) Expired() bool {
	ls.charge()
	c := ls.cell
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.holder < 0 || time.Now().After(c.expiry)
}

// Holder returns the current lease holder and token (holder -1 = vacant;
// the lease may be expired — see Expired).
func (ls *LeaseStore) Holder() (int, uint64) {
	c := ls.cell
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.holder, c.token
}

// AllocEpoch allocates the next remaster epoch, validating that the caller
// still holds the lease. Every epoch an HA shard issues comes from here,
// which is what lets one fresh epoch fence out all prior leaders of the
// same key (and only them).
func (ls *LeaseStore) AllocEpoch(node int, token uint64) (uint64, error) {
	ls.charge()
	c := ls.cell
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.holder != node || c.token != token {
		return 0, ErrNoLeader
	}
	c.epochs++
	return c.epochs, nil
}

// CurrentEpoch returns the highest epoch allocated so far.
func (ls *LeaseStore) CurrentEpoch() uint64 {
	c := ls.cell
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.epochs
}

// BumpEpoch raises the allocator to at least n (carrying over epochs a
// pre-HA selector already issued).
func (ls *LeaseStore) BumpEpoch(n uint64) {
	c := ls.cell
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.epochs < n {
		c.epochs = n
	}
}

// LeaderChanges returns how many distinct lease acquisitions have occurred.
func (ls *LeaseStore) LeaderChanges() uint64 { return ls.cell.changes.Load() }

// Renewals returns how many successful lease renewals have occurred.
func (ls *LeaseStore) Renewals() uint64 { return ls.cell.renewals.Load() }

// leaseEpochs adapts the store to the selector's epochSource: allocations
// are lease-validated, so they fail with ErrNoLeader once the owning
// selector is deposed.
type leaseEpochs struct {
	store *LeaseStore
	node  int
	token uint64
}

func (l *leaseEpochs) Alloc() (uint64, error) { return l.store.AllocEpoch(l.node, l.token) }
func (l *leaseEpochs) Current() uint64        { return l.store.CurrentEpoch() }
func (l *leaseEpochs) Bump(n uint64)          { l.store.BumpEpoch(n) }

// HAConfig configures the selector high-availability tier.
type HAConfig struct {
	// Lease is the leadership lease TTL. The leader renews (and standbys
	// check) every Lease/4; worst-case write unavailability on a leader
	// crash is about Lease + Lease/4 plus promotion work.
	Lease time.Duration
	// Broker holds the per-site WALs promotion folds; required.
	Broker *wal.Broker
	// Obs receives the dynamast_selector_* leadership metrics.
	Obs *obs.Registry
	// Store, when non-nil, is the lease (+ epoch allocator) this tier uses —
	// typically one key's view of a KeyedLeaseStore shared by all router
	// shards. Nil builds a private single-lease store (the classic
	// deployment).
	Store *LeaseStore
	// Shard/Shards scope this tier to one router shard of a sharded
	// selector: promotion folds, fences, and repairs only the partitions
	// RouterShardOf assigns to Shard, and the site fence is installed with
	// FenceEpochsBelowRange so it dominates only this shard's range.
	// Shards <= 1 (the default) is the unsharded, whole-map tier.
	Shard, Shards int
}

// ownsPart reports whether this HA tier's shard range covers partition p.
func (cfg *HAConfig) ownsPart(p uint64) bool {
	return cfg.Shards <= 1 || sitemgr.RouterShard(p, cfg.Shards) == cfg.Shard
}

// HA is the selector tier's leadership state machine: lease renewal on the
// leader, expiry watch + promotion on the standbys, and the delta feed
// keeping standby mirrors hot. In-process it is one goroutine playing all
// the nodes' timers; the protocol state (lease, tokens, epochs) lives in
// the LeaseStore exactly as it would in an external coordination service.
type HA struct {
	repl   *Replicated
	store  *LeaseStore
	cfg    HAConfig
	selCfg Config

	// node is the current leader: 0 = the initial master selector's
	// process, i+1 = the process co-located with standby replica i.
	node  atomic.Int32
	token uint64 // current lease token (run goroutine only)

	killed  []atomic.Bool
	feedSeq atomic.Uint64

	stop     chan struct{}
	stopOnce sync.Once
	wg       sync.WaitGroup

	promotions    atomic.Uint64
	lastPromotion atomic.Int64 // nanoseconds of the last promotion's duration

	obLeader     *obs.Gauge
	obChanges    *obs.Counter
	obExpiries   *obs.Counter
	obPromoteDur *obs.Histogram
}

// EnableHA puts the selector tier under lease-based leadership: the master
// becomes the initial leader (its epoch allocator moves into the lease
// store), the replicas become hot standbys fed by the leader's delta
// stream, and a background watcher renews the lease and promotes a standby
// when it expires. Requires at least one replica to stand by.
func (r *Replicated) EnableHA(selCfg Config, cfg HAConfig) (*HA, error) {
	if len(r.replicas) == 0 {
		return nil, fmt.Errorf("selector: HA requires at least one replica standby")
	}
	if cfg.Lease <= 0 {
		return nil, fmt.Errorf("selector: HA requires a positive lease TTL")
	}
	if cfg.Broker == nil {
		return nil, fmt.Errorf("selector: HA requires the WAL broker")
	}
	if r.ha != nil {
		return nil, fmt.Errorf("selector: HA already enabled")
	}
	store := cfg.Store
	if store == nil {
		store = NewLeaseStore(cfg.Lease, r.net)
	}
	store.BumpEpoch(r.Master.CurrentEpoch())
	token, ok := store.Acquire(0)
	if !ok {
		return nil, fmt.Errorf("selector: initial lease acquisition failed")
	}
	ha := &HA{
		repl:   r,
		store:  store,
		cfg:    cfg,
		selCfg: selCfg,
		killed: make([]atomic.Bool, len(r.replicas)+1),
		stop:   make(chan struct{}),
	}
	ha.token = token
	r.Master.setEpochSource(&leaseEpochs{store: store, node: 0, token: token})
	r.Master.SetDeltaFeed(ha.broadcast)
	placement, epochs := r.Master.PlacementSnapshot()
	for _, rep := range r.replicas {
		rep.seedMirror(placement, epochs)
	}
	ha.instrument(cfg.Obs)
	r.ha = ha
	ha.wg.Add(1)
	go ha.run()
	return ha, nil
}

// instrument registers the leadership metrics. A sharded tier labels every
// series with its shard index so N shards' instruments stay distinct in one
// registry.
func (ha *HA) instrument(reg *obs.Registry) {
	if reg == nil {
		return
	}
	reg.Help("dynamast_selector_leader", "Selector node currently holding the leadership lease (0 = initial master, i+1 = standby i).")
	reg.Help("dynamast_selector_leader_changes_total", "Selector leadership changes (lease acquisitions by a new node).")
	reg.Help("dynamast_selector_lease_epoch", "Highest remaster epoch issued by the lease store's allocator.")
	reg.Help("dynamast_selector_lease_renewals_total", "Successful leadership lease renewals.")
	reg.Help("dynamast_selector_lease_expiries_total", "Lease expiries observed by the standby watcher.")
	reg.Help("dynamast_selector_standby_lag", "Leader delta-feed sequence minus the slowest standby's ingested sequence.")
	reg.Help("dynamast_selector_promotion_seconds", "Standby promotion latency (fence, fold, reconcile, swap).")
	var labels []obs.Label
	if ha.cfg.Shards > 1 {
		labels = append(labels, obs.L("shard", fmt.Sprint(ha.cfg.Shard)))
	}
	ha.obLeader = reg.Gauge("dynamast_selector_leader", labels...)
	ha.obLeader.Set(0)
	ha.obChanges = reg.Counter("dynamast_selector_leader_changes_total", labels...)
	ha.obExpiries = reg.Counter("dynamast_selector_lease_expiries_total", labels...)
	ha.obPromoteDur = reg.Histogram("dynamast_selector_promotion_seconds", labels...)
	reg.Func("dynamast_selector_lease_epoch", obs.KindGauge, func() float64 {
		return float64(ha.store.CurrentEpoch())
	}, labels...)
	reg.Func("dynamast_selector_lease_renewals_total", obs.KindCounter, func() float64 {
		return float64(ha.store.Renewals())
	}, labels...)
	reg.Func("dynamast_selector_standby_lag", obs.KindGauge, func() float64 {
		return float64(ha.StandbyLag())
	}, labels...)
}

// StandbyLag returns the delta-feed distance between the leader and the
// slowest standby (0 = fully caught up).
func (ha *HA) StandbyLag() uint64 {
	head := ha.feedSeq.Load()
	var maxLag uint64
	for _, rep := range ha.repl.replicas {
		if got := rep.FeedSeq(); got < head && head-got > maxLag {
			maxLag = head - got
		}
	}
	return maxLag
}

// Leader returns the node id currently holding leadership.
func (ha *HA) Leader() int { return int(ha.node.Load()) }

// Promotions returns how many standby promotions have completed.
func (ha *HA) Promotions() uint64 { return ha.promotions.Load() }

// LastPromotionDuration returns the wall time of the most recent promotion
// (zero if none ran).
func (ha *HA) LastPromotionDuration() time.Duration {
	return time.Duration(ha.lastPromotion.Load())
}

// Store exposes the lease store (status endpoints and tests).
func (ha *HA) Store() *LeaseStore { return ha.store }

// KillNode simulates a crash of selector node (0 = initial master, i+1 =
// standby i): a killed leader stops renewing — its lease expires and a
// standby promotes — and a killed standby is skipped as a promotion
// candidate. Killing the current leader also deposes its selector so
// in-flight routing fails fast rather than acting on dead authority.
func (ha *HA) KillNode(node int) {
	if node < 0 || node >= len(ha.killed) {
		return
	}
	ha.killed[node].Store(true)
	if int(ha.node.Load()) == node {
		ha.repl.Leader().depose()
	}
}

// KillLeader crashes the node currently holding leadership and returns its
// id.
func (ha *HA) KillLeader() int {
	node := int(ha.node.Load())
	ha.KillNode(node)
	return node
}

// Stop terminates the HA watcher goroutine.
func (ha *HA) Stop() {
	ha.stopOnce.Do(func() { close(ha.stop) })
	ha.wg.Wait()
}

// broadcast is the leader's delta feed: one committed mastership flip
// fanned out to every standby mirror, charged as asynchronous
// control-plane traffic.
func (ha *HA) broadcast(parts []uint64, site int, epoch uint64) {
	seq := ha.feedSeq.Add(1)
	size := transport.MsgOverhead + transport.SizeOfPartitions(parts) + 16
	for _, rep := range ha.repl.replicas {
		ha.repl.net.Account(transport.CatLease, size)
		rep.ingest(seq, parts, site, epoch)
	}
	ha.repl.deliverDelta(parts, site, epoch)
}

// run plays the tier's timers: the live leader renews at TTL/4, and the
// standby watcher promotes when the lease expires. One goroutine holds
// both roles because the simulation is in-process; the store's
// token-validated operations are what keep the roles honest.
func (ha *HA) run() {
	defer ha.wg.Done()
	interval := ha.cfg.Lease / 4
	if interval < 100*time.Microsecond {
		interval = 100 * time.Microsecond
	}
	ticker := time.NewTicker(interval)
	defer ticker.Stop()
	for {
		select {
		case <-ha.stop:
			return
		case <-ticker.C:
		}
		leader := int(ha.node.Load())
		if !ha.killed[leader].Load() {
			ha.store.Renew(leader, ha.token)
			continue
		}
		if ha.store.Expired() {
			ha.obExpiries.Inc()
			ha.promote()
		}
	}
}

// promote elects the next live node and runs the fence -> fold ->
// reconcile -> repair -> swap sequence described in the file comment. A
// failed step leaves the lease claimed but the old (dead) leader in place;
// the next tick retries from Acquire, which succeeds for the same node.
func (ha *HA) promote() {
	start := time.Now()
	n := len(ha.repl.replicas) + 1
	cur := int(ha.node.Load())
	cand := -1
	for off := 1; off <= n; off++ {
		c := (cur + off) % n
		if !ha.killed[c].Load() {
			cand = c
			break
		}
	}
	if cand < 0 {
		return // no live selector node; keep watching
	}
	token, ok := ha.store.Acquire(cand)
	if !ok {
		return
	}

	old := ha.repl.Leader()
	old.depose()

	// (2) Fence: one fresh epoch dominates every epoch any leader ever
	// issued (single allocator), installed at every site BEFORE the fold
	// so no deposed-leader chain can write a release/grant the fold would
	// miss. A site we cannot reach is marked down on the new leader: it is
	// dead or partitioned from the control plane, and the site-failover
	// path re-masters its partitions under yet-higher epochs.
	fence, err := ha.store.AllocEpoch(cand, token)
	if err != nil {
		return
	}
	unfenced := ha.fenceSites(fence)

	// (3) Fold the WALs and overlay the promoted standby's mirror. A
	// sharded tier folds the full logs but keeps only its own range: the
	// other shards' partitions are their leaders' business, and their
	// epochs come from different allocators anyway (incomparable).
	fold := sitemgr.FoldMastership(ha.cfg.Broker, nil)
	owner, epochs := fold.Owner, fold.Epoch
	if ha.cfg.Shards > 1 {
		for p := range owner {
			if !ha.cfg.ownsPart(p) {
				delete(owner, p)
				delete(epochs, p)
			}
		}
	}
	var mirror map[uint64]int
	var mirrorEpochs map[uint64]uint64
	if cand >= 1 {
		mirror, mirrorEpochs = ha.repl.replicas[cand-1].Mirror()
	} else {
		mirror, mirrorEpochs = old.PlacementSnapshot()
	}
	for p, site := range mirror {
		if !ha.cfg.ownsPart(p) {
			continue
		}
		fe, inFold := epochs[p]
		if !inFold || mirrorEpochs[p] > fe {
			owner[p] = site
			epochs[p] = mirrorEpochs[p]
		}
	}

	// (5, part one) Build the new selector on the reconciled map. The
	// metrics registry tolerates re-registration (instruments are shared,
	// collector funcs replaced), so the promoted selector takes over the
	// dynamast_selector_* series. Strategy weights carry over from the
	// deposed leader (sweeps may have changed them mid-run); access
	// statistics restart and warm back up.
	selCfg := ha.selCfg
	selCfg.Weights = old.Weights()
	newSel, err := New(selCfg)
	if err != nil {
		return
	}
	for i := range selCfg.Sites {
		if old.SiteDown(i) || unfenced[i] {
			newSel.MarkDown(i)
		}
	}
	newSel.adoptPlacement(owner, epochs)
	newSel.setEpochSource(&leaseEpochs{store: ha.store, node: cand, token: token})

	// (4) Repair dangling releases: the old leader died between a release
	// and its grant, so the releasing site — still holding the data —
	// gave up ownership into the void. Re-grant to the releaser under a
	// fresh epoch (nil release vector: nothing moved, no catch-up).
	byOrigin := make(map[int][]uint64)
	for p, origin := range fold.Dangling {
		if !ha.cfg.ownsPart(p) {
			continue // another shard's range; its own promotion repairs it
		}
		if newSel.SiteDown(origin) {
			continue // site failover re-masters these under higher epochs
		}
		byOrigin[origin] = append(byOrigin[origin], p)
	}
	for origin, parts := range byOrigin {
		epoch, err := ha.store.AllocEpoch(cand, token)
		if err != nil {
			return
		}
		if _, err := newSel.remasterCall(origin,
			transport.MsgOverhead+transport.SizeOfPartitions(parts),
			func() (vclock.Vector, error) {
				return ha.selCfg.Sites[origin].Grant(parts, nil, origin, epoch)
			}); err != nil {
			continue // heartbeat failover covers a site that dies here
		}
		for _, p := range parts {
			newSel.RegisterPartitionEpoch(p, origin, epoch)
		}
	}

	// (5, part two) Swap leadership and rewire the standby tier.
	newSel.SetDeltaFeed(ha.broadcast)
	ha.repl.leader.Store(newSel)
	placement, eps := newSel.PlacementSnapshot()
	for _, rep := range ha.repl.replicas {
		rep.seedMirror(placement, eps)
	}
	ha.node.Store(int32(cand))
	ha.token = token

	dur := time.Since(start)
	ha.promotions.Add(1)
	ha.lastPromotion.Store(int64(dur))
	ha.obLeader.Set(float64(cand))
	ha.obChanges.Inc()
	ha.obPromoteDur.ObserveDuration(dur)
	obs.RecordEvent(obs.FlightLeaderChange, obs.SelectorSite,
		"selector node %d promoted (fence epoch %d, %d partition(s), %d dangling repaired) in %v",
		cand, fence, len(owner), len(fold.Dangling), dur)
}

// fenceSites installs the fence epoch at every data site, returning which
// sites could not be reached (request leg lost through every retry).
// Response loss is ignored: the fence installed, which is all that
// matters, and re-fencing is idempotent. A sharded tier installs a
// range-scoped fence covering only its own partitions, so a zombie leader
// of THIS shard dies with ErrStaleEpoch while the other shards' in-flight
// chains — stamped from different allocators — pass untouched.
func (ha *HA) fenceSites(fence uint64) []bool {
	unfenced := make([]bool, len(ha.selCfg.Sites))
	for i, site := range ha.selCfg.Sites {
		install := func() {}
		if ha.cfg.Shards > 1 {
			f, ok := site.(interface {
				FenceEpochsBelowRange(floor uint64, shard, shards int) uint64
			})
			if !ok {
				continue // test double without fencing; nothing to install
			}
			install = func() { f.FenceEpochsBelowRange(fence, ha.cfg.Shard, ha.cfg.Shards) }
		} else {
			f, ok := site.(interface{ FenceEpochsBelow(floor uint64) uint64 })
			if !ok {
				continue // test double without fencing; nothing to install
			}
			install = func() { f.FenceEpochsBelow(fence) }
		}
		sent := false
		for attempt := 0; attempt <= remasterSendRetries && !sent; attempt++ {
			if attempt > 0 {
				transport.CountRetry()
			}
			if ha.repl.net.SendTo(transport.CatLease, transport.SelectorNode, i, transport.MsgOverhead) != nil {
				continue
			}
			install()
			_ = ha.repl.net.SendTo(transport.CatLease, i, transport.SelectorNode, transport.MsgOverhead)
			sent = true
		}
		unfenced[i] = !sent
	}
	return unfenced
}
