package selector

import (
	"sync/atomic"
	"testing"
	"time"

	"dynamast/internal/storage"
	"dynamast/internal/vclock"
)

// benchSite is a no-op DataSite for routing micro-benchmarks.
type benchSite struct {
	id  int
	svv vclock.Vector
}

func (s *benchSite) ID() int            { return s.id }
func (s *benchSite) SVV() vclock.Vector { return s.svv.Clone() }
func (s *benchSite) Release(parts []uint64, to int, epoch uint64) (vclock.Vector, error) {
	return s.svv.Clone(), nil
}
func (s *benchSite) Grant(parts []uint64, relVV vclock.Vector, from int, epoch uint64) (vclock.Vector, error) {
	return s.svv.Clone(), nil
}

func benchSelector(b *testing.B, m int, w Weights) *Selector {
	b.Helper()
	sites := make([]DataSite, m)
	for i := range sites {
		sites[i] = &benchSite{id: i, svv: vclock.New(m)}
	}
	sel, err := New(Config{
		Sites:       sites,
		Partitioner: func(ref storage.RowRef) uint64 { return ref.Key / 100 },
		Weights:     w,
	})
	if err != nil {
		b.Fatal(err)
	}
	return sel
}

// BenchmarkRouteWriteFastPath measures the single-master fast path: the
// common case the paper reports at <1% of transaction time.
func BenchmarkRouteWriteFastPath(b *testing.B) {
	sel := benchSelector(b, 4, YCSBWeights())
	ws := []storage.RowRef{{Table: "t", Key: 1}, {Table: "t", Key: 150}, {Table: "t", Key: 250}}
	// Co-locate once.
	if _, err := sel.RouteWrite(0, ws, nil); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sel.RouteWrite(0, ws, nil); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRouteWriteRemaster measures the slow path: scoring all sites and
// transferring mastership (no simulated network).
func BenchmarkRouteWriteRemaster(b *testing.B) {
	sel := benchSelector(b, 4, YCSBWeights())
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		k := uint64(i) * 200
		// Two partitions that have never been co-located.
		ws := []storage.RowRef{{Table: "t", Key: k}, {Table: "t", Key: k + 100}}
		if _, err := sel.RouteWrite(0, ws, nil); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRouteWriteParallel drives the single-master fast path from many
// goroutines at once: the selector's routing hot path under concurrent
// client load, where partition-map, statistics and load-tracking
// synchronization costs dominate.
func BenchmarkRouteWriteParallel(b *testing.B) {
	sel := benchSelector(b, 4, YCSBWeights())
	// Materialize 64 partitions at site 0 so every route takes the fast path.
	for p := uint64(0); p < 64; p++ {
		if _, err := sel.RouteWrite(0, []storage.RowRef{{Table: "t", Key: p * 100}}, nil); err != nil {
			b.Fatal(err)
		}
	}
	var nextClient atomic.Int64
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		client := int(nextClient.Add(1))
		i := uint64(client)
		ws := make([]storage.RowRef, 3)
		for pb.Next() {
			i++
			base := (i * 7) % 64
			ws[0] = storage.RowRef{Table: "t", Key: base * 100}
			ws[1] = storage.RowRef{Table: "t", Key: ((base + 1) % 64) * 100}
			ws[2] = storage.RowRef{Table: "t", Key: ((base + 2) % 64) * 100}
			if _, err := sel.RouteWrite(client, ws, nil); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkRouteReadParallel measures concurrent read routing (RNG and SVV
// snapshot costs).
func BenchmarkRouteReadParallel(b *testing.B) {
	sel := benchSelector(b, 8, YCSBWeights())
	cvv := vclock.New(8)
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			sel.RouteRead(1, cvv)
		}
	})
}

func BenchmarkRouteRead(b *testing.B) {
	sel := benchSelector(b, 8, YCSBWeights())
	cvv := vclock.New(8)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sel.RouteRead(1, cvv)
	}
}

func BenchmarkStatsRecordWrite(b *testing.B) {
	st := NewStats(StatsConfig{})
	now := time.Now()
	parts := []uint64{1, 2, 3}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		st.RecordWrite(i%16, parts, now)
	}
}

func BenchmarkBalanceFactor(b *testing.B) {
	before := []float64{100, 120, 90, 110}
	after := []float64{105, 115, 95, 105}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		BalanceFactor(before, after)
	}
}
