package selector

import (
	"math"
	"testing"
	"testing/quick"

	"dynamast/internal/vclock"
)

func almostEqual(a, b float64) bool { return math.Abs(a-b) < 1e-12 }

func TestBalanceDistPerfect(t *testing.T) {
	if d := BalanceDist([]float64{10, 10, 10, 10}); !almostEqual(d, 0) {
		t.Fatalf("balanced dist = %g", d)
	}
	if d := BalanceDist(nil); d != 0 {
		t.Fatalf("empty dist = %g", d)
	}
	if d := BalanceDist([]float64{0, 0}); d != 0 {
		t.Fatalf("zero-load dist = %g", d)
	}
}

func TestBalanceDistSkewed(t *testing.T) {
	// All load at one of two sites: (|1/2-1| + |1/2-0|)^2 = 1.
	if d := BalanceDist([]float64{100, 0}); !almostEqual(d, 1) {
		t.Fatalf("fully skewed 2-site dist = %g", d)
	}
	// More balanced allocations score strictly lower.
	if BalanceDist([]float64{75, 25}) >= BalanceDist([]float64{100, 0}) {
		t.Fatal("75/25 not better than 100/0")
	}
	if BalanceDist([]float64{60, 40}) >= BalanceDist([]float64{75, 25}) {
		t.Fatal("60/40 not better than 75/25")
	}
}

// Property: BalanceDist is scale-invariant (frequencies, not volumes).
func TestQuickBalanceDistScaleInvariant(t *testing.T) {
	f := func(a, b, c uint16, scale uint8) bool {
		load := []float64{float64(a), float64(b), float64(c)}
		k := float64(scale%9) + 1
		scaled := []float64{k * load[0], k * load[1], k * load[2]}
		return math.Abs(BalanceDist(load)-BalanceDist(scaled)) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestBalanceFactorSign(t *testing.T) {
	// Moving load toward balance: positive factor.
	if f := BalanceFactor([]float64{100, 0}, []float64{50, 50}); f <= 0 {
		t.Fatalf("balancing move factor = %g", f)
	}
	// Moving load away from balance: negative factor.
	if f := BalanceFactor([]float64{50, 50}, []float64{100, 0}); f >= 0 {
		t.Fatalf("unbalancing move factor = %g", f)
	}
	// No change: zero.
	if f := BalanceFactor([]float64{60, 40}, []float64{60, 40}); !almostEqual(f, 0) {
		t.Fatalf("no-op factor = %g", f)
	}
}

func TestBalanceFactorRateScaling(t *testing.T) {
	// Correcting a badly unbalanced system is worth more than the same
	// absolute improvement on a nearly balanced one (Equation 3's exp
	// scaling).
	big := BalanceFactor([]float64{100, 0}, []float64{75, 25})
	small := BalanceFactor([]float64{55, 45}, []float64{50, 50})
	if big <= small {
		t.Fatalf("rate scaling lost: big=%g small=%g", big, small)
	}
}

func TestRefreshDelay(t *testing.T) {
	need := vclock.Vector{5, 3, 0}
	if d := RefreshDelay(need, vclock.Vector{5, 3, 7}); d != 0 {
		t.Fatalf("caught-up delay = %g", d)
	}
	if d := RefreshDelay(need, vclock.Vector{2, 3, 0}); d != -3 {
		t.Fatalf("lagging delay = %g", d)
	}
	if d := RefreshDelay(need, vclock.Vector{0, 0, 0}); d != -8 {
		t.Fatalf("cold delay = %g", d)
	}
}

func TestSingleSited(t *testing.T) {
	// Partitions: d1=1 mastered at 0, d2=2 mastered at 1, d3=3 at 0.
	master := func(p uint64) int {
		if p == 2 {
			return 1
		}
		return 0
	}
	notInSet := func(uint64) bool { return false }
	inSet := func(p uint64) bool { return p == 2 }

	// Remaster d1 to site 1 where d2 lives: co-locates -> +1.
	if v := SingleSited(1, 1, 2, master, notInSet); v != 1 {
		t.Fatalf("co-locating move = %g", v)
	}
	// Remaster d1 to site 0 (no move wrt d2, still split) -> 0.
	if v := SingleSited(0, 1, 2, master, notInSet); v != 0 {
		t.Fatalf("no-change move = %g", v)
	}
	// Remaster d1 to site 1, away from co-located d3 -> -1.
	if v := SingleSited(1, 1, 3, master, notInSet); v != -1 {
		t.Fatalf("splitting move = %g", v)
	}
	// d2 in the write set: both move to S -> co-located wherever S is.
	if v := SingleSited(2, 1, 2, master, inSet); v != 1 {
		t.Fatalf("write-set companion = %g", v)
	}
	// d1 and d3 co-located at 0, remaster both... d3 not in set, S=0 -> 0.
	if v := SingleSited(0, 1, 3, master, notInSet); v != 0 {
		t.Fatalf("stay-home = %g", v)
	}
}

func TestWeightsBenefit(t *testing.T) {
	w := Weights{Balance: 2, Delay: 3, IntraTxn: 5, InterTxn: 7}
	if got := w.Benefit(1, 1, 1, 1); !almostEqual(got, 17) {
		t.Fatalf("benefit = %g", got)
	}
	if got := (Weights{}).Benefit(100, 100, 100, 100); got != 0 {
		t.Fatalf("zero weights benefit = %g", got)
	}
}

func TestDefaultWeights(t *testing.T) {
	y := YCSBWeights()
	if y.Balance != 1e6 || y.IntraTxn != 3 || y.InterTxn != 0 || y.Delay != 0.5 {
		t.Fatalf("YCSB weights = %+v", y)
	}
	c := TPCCWeights()
	if c.Balance != 3 || c.IntraTxn != 0.88 || c.InterTxn != 0.88 || c.Delay != 0.05 {
		t.Fatalf("TPCC weights = %+v", c)
	}
	sb := SmallBankWeights()
	if sb.Balance != 1e4 || sb.IntraTxn != 3 {
		t.Fatalf("SmallBank weights = %+v", sb)
	}
}
