package selector

import (
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"dynamast/internal/obs"
	"dynamast/internal/sitemgr"
	"dynamast/internal/storage"
	"dynamast/internal/vclock"
)

// Sharded selector routers. The single selector leader is DynaMast's last
// serialization point: every update route, remaster chain, and placement
// decision flows through one process. A Group splits that control plane into
// N independent router shards, each owning a contiguous range of the
// partition-id hash space (RouterShardOf — the same Fibonacci multiply-shift
// the selector's own lock striping uses, so shard assignment is a pure
// function of the partition id). Each shard is a full Replicated tier: its
// own Selector (routing loop + stats stripes + placement state), its own
// standby replicas, and — under HA — its own lease, which doubles as that
// shard's remaster-epoch allocator (one key of a KeyedLeaseStore).
//
// Cross-shard concerns are handled at the edges:
//
//   - Remaster chains stay single-shard by construction: a write set
//     spanning shards is decomposed into per-shard chains, each stamped
//     from its own shard's epoch allocator, so no epoch ever needs to be
//     compared across shards.
//   - Co-access statistics crossing a shard boundary travel over a small
//     inter-shard channel (dispatchRecord): each decided write's full
//     partition set is delivered to every shard owning a partition of the
//     write OR of the client's previous write, so both sides of every
//     cross-shard pair record it and neither placement controller sees a
//     one-sided affinity signal.
//   - Sessions route reads (and optimistically route writes) off a gossiped
//     read-only placement cache (cache.go) without touching any router.
//
// With one shard the Group is pure pass-through: RouterFor delegates to the
// single Replicated tier, no hooks are installed, and the wire behavior is
// byte-for-byte the single-leader selector.

// MaxRouterShards bounds the shard count (recent-owner sets are uint64
// bitmasks).
const MaxRouterShards = 64

// RouterShardOf maps a partition id to its router shard in [0, n): a pure
// function (Fibonacci multiply-shift onto n contiguous hash ranges) shared
// with the sites' range-scoped fences and the dynactl tooling.
func RouterShardOf(part uint64, n int) int { return sitemgr.RouterShard(part, n) }

// recentStripes stripes the Group's per-client recent-owner map (the
// inter-shard co-access hint channel).
const recentStripes = 16

// recentOwners remembers which shards own partitions of a client's last
// write set, and when it was routed.
type recentOwners struct {
	at   time.Time
	mask uint64 // bit i = shard i owned a partition of the write set
}

type recentStripe struct {
	mu sync.Mutex
	m  map[int]recentOwners
	_  [24]byte // pad stripes apart
}

// GroupConfig configures a sharded router group.
type GroupConfig struct {
	// Shards are the per-shard Replicated tiers, indexed by shard.
	Shards []*Replicated
	// GossipInterval is the placement cache's anti-entropy pull period
	// (bounds cache staleness; 0 = DefaultGossipInterval). Cache only.
	GossipInterval time.Duration
	// Cache enables the gossiped placement cache: sessions route reads —
	// and optimistically route writes — off the cache with zero router
	// RPCs, falling back to the routers on a miss or an ErrNotMaster/
	// ErrStaleEpoch resubmit.
	Cache bool
	// Obs receives the dynamast_selector_shard_* metrics.
	Obs *obs.Registry
}

// Group is the sharded selector control plane. All control-plane entry
// points dispatch by RouterShardOf; routing entry points additionally
// decompose cross-shard write sets at partition granularity.
type Group struct {
	repls []*Replicated
	n     int
	cache *PlacementCache

	// recent is the inter-shard co-access hint channel: per client, the
	// owner-shard set of the last routed write.
	recent [recentStripes]recentStripe

	crossWrites atomic.Uint64 // write routes spanning >1 shard
	crossHints  atomic.Uint64 // stat samples delivered beyond their own shards
}

// NewGroup builds the sharded control plane over per-shard Replicated
// tiers. The shard selectors must have been built with GroupHooks(i, n,
// get) so their scoring and stats flow through the group; get's late-bound
// reference must resolve to the returned group before any traffic routes.
func NewGroup(cfg GroupConfig) (*Group, error) {
	if len(cfg.Shards) == 0 {
		return nil, fmt.Errorf("selector: group requires at least one shard")
	}
	if len(cfg.Shards) > MaxRouterShards {
		return nil, fmt.Errorf("selector: %d shards exceeds the maximum %d", len(cfg.Shards), MaxRouterShards)
	}
	g := &Group{repls: cfg.Shards, n: len(cfg.Shards)}
	for i := range g.recent {
		g.recent[i].m = make(map[int]recentOwners)
	}
	if cfg.Cache && g.n > 1 {
		g.cache = newPlacementCache(g, cfg.GossipInterval, cfg.Obs)
		g.wireCacheFeed()
		g.cache.start()
	}
	g.instrument(cfg.Obs)
	return g, nil
}

// GroupHooks builds the ShardHooks wiring shard i of an n-shard group. The
// group usually does not exist yet when the shard's Config is built, so the
// group reference is late-bound through get (which must be non-nil by the
// time the shard routes traffic). n <= 1 returns zero hooks: the
// single-shard deployment keeps the stand-alone selector paths.
func GroupHooks(i, n int, get func() *Group) ShardHooks {
	if n <= 1 {
		return ShardHooks{}
	}
	return ShardHooks{
		Owns:          func(p uint64) bool { return RouterShardOf(p, n) == i },
		ForeignMaster: func(p uint64) int { return get().hintOf(p) },
		Record: func(client int, parts []uint64, now time.Time) {
			get().dispatchRecord(client, parts, now)
		},
		AccessWeight: func(p uint64) float64 { return get().ShardFor(p).stats.AccessWeight(p) },
		CoAccess: func(d1 uint64, intra bool, fn func(d2 uint64, p float64)) {
			get().ShardFor(d1).stats.CoAccess(d1, intra, fn)
		},
		SiteLoads: func() []float64 { return get().siteLoads() },
	}
}

// wireCacheFeed taps every shard's mastership delta feed into the cache.
// Shards under HA already broadcast their feed to standbys; the Replicated
// feed sink forwards each delta to the cache and survives leader swaps.
// Shards without HA get the sink wired as the selector's feed directly.
func (g *Group) wireCacheFeed() {
	for _, repl := range g.repls {
		repl := repl
		repl.setFeedSink(g.cache.ingest)
		if repl.ha == nil {
			repl.Master.SetDeltaFeed(repl.deliverDelta)
		}
	}
}

// Shards returns the shard count.
func (g *Group) Shards() int { return g.n }

// Shard returns shard i's current leader selector.
func (g *Group) Shard(i int) *Selector { return g.repls[i].Leader() }

// Repl returns shard i's Replicated tier.
func (g *Group) Repl(i int) *Replicated { return g.repls[i] }

// ShardOf returns the shard owning a partition.
func (g *Group) ShardOf(part uint64) int { return RouterShardOf(part, g.n) }

// ShardFor returns the leader selector of the shard owning a partition.
func (g *Group) ShardFor(part uint64) *Selector { return g.repls[g.ShardOf(part)].Leader() }

// Cache returns the gossiped placement cache (nil when disabled or
// single-shard).
func (g *Group) Cache() *PlacementCache { return g.cache }

// CrossShardWrites returns how many write routes spanned multiple shards.
func (g *Group) CrossShardWrites() uint64 { return g.crossWrites.Load() }

// CrossShardHints returns how many stat samples were delivered to shards
// beyond the write set's own owners (the inter-shard co-access channel).
func (g *Group) CrossShardHints() uint64 { return g.crossHints.Load() }

// Stop terminates the group's background work (the cache gossip loop).
func (g *Group) Stop() {
	if g.cache != nil {
		g.cache.stopLoop()
	}
}

// RouterFor assigns a client its router. Single-shard groups delegate to
// the shard's own replica tier — the pre-sharding path, untouched. Sharded
// groups hand out the cache-backed router (or the group itself when the
// cache is off); the per-shard replicas then serve purely as HA standbys.
func (g *Group) RouterFor(client int) Router {
	if g.n == 1 {
		return g.repls[0].RouterFor(client)
	}
	if g.cache != nil {
		return &CachedRouter{g: g, c: g.cache}
	}
	return g
}

// hintOf resolves a partition's master hint read-only across the group:
// the owning shard's lock-free hint if the partition exists, its initial
// placement otherwise. Never creates partition state (a foreign part()
// would grant first-sight ownership from the wrong shard).
func (g *Group) hintOf(p uint64) int {
	sel := g.ShardFor(p)
	if m, ok := sel.peekMaster(p); ok {
		return m
	}
	return sel.initial(p)
}

// siteLoads sums materialized per-site load across all shards (the balance
// feature scores global load).
func (g *Group) siteLoads() []float64 {
	out := g.Shard(0).siteLoadSnapshot()
	for i := 1; i < g.n; i++ {
		for s, v := range g.Shard(i).siteLoadSnapshot() {
			out[s] += v
		}
	}
	return out
}

// ownerMask returns the set of shards owning partitions of parts as a
// bitmask.
func (g *Group) ownerMask(parts []uint64) uint64 {
	var mask uint64
	for _, p := range parts {
		mask |= 1 << uint(g.ShardOf(p))
	}
	return mask
}

// dispatchRecord is the inter-shard co-access channel: one decided write's
// full partition set, delivered to every shard owning a partition of this
// write or of the client's previous write. Both endpoints of every
// cross-shard co-access pair (intra-transaction: two partitions of this
// set; inter-transaction: one of the previous set, one of this) therefore
// record the pair on their own stripes — neither side's placement
// controller sees a one-sided affinity signal. Delivery of the previous
// owners is unconditional (not windowed): even when the pair window has
// lapsed, it keeps those shards' per-client recency fresh, so their next
// in-window pair matches the unsharded tracker's.
func (g *Group) dispatchRecord(client int, parts []uint64, now time.Time) {
	cur := g.ownerMask(parts)
	st := &g.recent[uint64(uint(client))*0x9E3779B97F4A7C15>>32&(recentStripes-1)]
	st.mu.Lock()
	mask := cur | st.m[client].mask
	st.m[client] = recentOwners{at: now, mask: cur}
	st.mu.Unlock()
	if mask != cur {
		g.crossHints.Add(1)
	}
	for si := 0; si < g.n; si++ {
		if mask&(1<<uint(si)) != 0 {
			g.Shard(si).stats.RecordWrite(client, parts, now)
		}
	}
}

// --- Routing ---

// RouteWrite implements Router: single-shard write sets delegate wholesale
// to the owning shard's routing loop; cross-shard sets run the group
// decision (global lock order, one destination, per-shard remaster chains).
func (g *Group) RouteWrite(client int, writeSet []storage.RowRef, cvv vclock.Vector) (Route, error) {
	return g.routeWrite(client, writeSet, cvv, obs.SpanContext{})
}

// RouteWriteTraced is RouteWrite under a sampled distributed trace.
func (g *Group) RouteWriteTraced(client int, writeSet []storage.RowRef, cvv vclock.Vector, sc obs.SpanContext) (Route, error) {
	return g.routeWrite(client, writeSet, cvv, sc)
}

// RouteToMaster is the authoritative resubmit path (stale metadata bounced
// at a data site): the group IS the master tier, so route authoritatively.
func (g *Group) RouteToMaster(client int, writeSet []storage.RowRef, cvv vclock.Vector) (Route, error) {
	return g.routeWrite(client, writeSet, cvv, obs.SpanContext{})
}

// RouteToMasterTraced is RouteToMaster under a sampled trace.
func (g *Group) RouteToMasterTraced(client int, writeSet []storage.RowRef, cvv vclock.Vector, sc obs.SpanContext) (Route, error) {
	return g.routeWrite(client, writeSet, cvv, sc)
}

func (g *Group) routeWrite(client int, writeSet []storage.RowRef, cvv vclock.Vector, sc obs.SpanContext) (Route, error) {
	s0 := g.Shard(0)
	parts := s0.writeParts(writeSet)
	if len(parts) == 0 {
		return s0.routeWrite(client, writeSet, cvv, sc)
	}
	first := g.ShardOf(parts[0])
	single := true
	for _, p := range parts[1:] {
		if g.ShardOf(p) != first {
			single = false
			break
		}
	}
	if single {
		// The common case: remaster chains stay single-shard by
		// construction, and the shard's own loop handles everything.
		return g.Shard(first).routeWrite(client, writeSet, cvv, sc)
	}
	return g.routeWriteCross(client, parts, cvv, sc)
}

// routeWriteCross routes a write set spanning shards: partition locks are
// taken in global sorted-id order (consistent with every shard's internal
// order, so no lock cycles), the destination is chosen once over the full
// set, and each involved shard remasters its own partitions under its own
// epoch allocator.
func (g *Group) routeWriteCross(client int, parts []uint64, cvv vclock.Vector, sc obs.SpanContext) (Route, error) {
	g.crossWrites.Add(1)
	start := time.Now()
	sels := make([]*Selector, len(parts))
	infos := make([]*partInfo, len(parts))
	for i, p := range parts {
		sel := g.ShardFor(p)
		if sel.deposed.Load() {
			return Route{}, ErrNoLeader
		}
		sels[i] = sel
		infos[i] = sel.part(p)
	}

	// Fast path: shared-lock all partitions (global sorted id order) and
	// check for a single master.
	for _, in := range infos {
		in.mu.RLock()
	}
	master := infos[0].master
	single := true
	for _, in := range infos[1:] {
		if in.master != master {
			single = false
			break
		}
	}
	if single {
		for _, in := range infos {
			in.mu.RUnlock()
		}
		if err := g.ensureHostedCross(parts, sels, master); err != nil {
			return Route{}, err
		}
		g.finishCross(client, parts, sels, master, start)
		return Route{Site: master}, nil
	}

	// Slow path: upgrade to exclusive locks (drop shared, reacquire in
	// order — the recheck below covers intervening changes).
	for _, in := range infos {
		in.mu.RUnlock()
	}
	for _, in := range infos {
		in.mu.Lock()
	}
	defer func() {
		for _, in := range infos {
			in.mu.Unlock()
		}
	}()
	master = infos[0].master
	single = true
	for _, in := range infos[1:] {
		if in.master != master {
			single = false
			break
		}
	}
	if single {
		if err := g.ensureHostedCross(parts, sels, master); err != nil {
			return Route{}, err
		}
		g.finishCross(client, parts, sels, master, start)
		return Route{Site: master}, nil
	}

	// One destination for the whole set, scored by the home shard (lowest
	// partition id — deterministic) over group-wide stats and load via the
	// shard hooks.
	home := sels[0]
	dest, err := home.chooseDestination(parts, infos, cvv)
	if err != nil {
		return Route{}, err
	}

	// Per-shard remaster chains: each shard moves its own partitions under
	// epochs from its own allocator, so chains never compare epochs across
	// shards and a single shard's ErrNoLeader (mid-promotion) fails only
	// its slice — the session retry re-routes the whole set.
	type sub struct {
		sel   *Selector
		parts []uint64
		infos []*partInfo
	}
	subs := make(map[int]*sub, 2)
	var order []int
	for i, p := range parts {
		si := g.ShardOf(p)
		sb := subs[si]
		if sb == nil {
			sb = &sub{sel: sels[i]}
			subs[si] = sb
			order = append(order, si)
		}
		sb.parts = append(sb.parts, p)
		sb.infos = append(sb.infos, infos[i])
	}
	remStart := time.Now()
	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		minVV    vclock.Vector
		moved    int
		firstErr error
	)
	for _, si := range order {
		sb := subs[si]
		wg.Add(1)
		go func(sb *sub) {
			defer wg.Done()
			vv, mvd, err := sb.sel.remaster(sb.parts, sb.infos, dest, sc)
			mu.Lock()
			defer mu.Unlock()
			moved += mvd
			if err != nil {
				if firstErr == nil {
					firstErr = err
				}
				return
			}
			minVV = minVV.MaxInto(vv)
		}(sb)
	}
	wg.Wait()
	wait := time.Since(remStart)
	if firstErr != nil {
		return Route{}, firstErr
	}
	home.remasterOps.Add(1)
	home.partsMoved.Add(uint64(moved))
	home.remastNanos.Add(int64(wait))
	g.finishCross(client, parts, sels, dest, start)
	return Route{Site: dest, MinVV: minVV, Remastered: true, PartsMoved: moved, RemasterWait: wait}, nil
}

// ensureHostedCross materializes the destination's replicas per owning
// shard (partial replication; no-op under full replication).
func (g *Group) ensureHostedCross(parts []uint64, sels []*Selector, site int) error {
	if sels[0].placement == nil {
		return nil
	}
	for i := range parts {
		if err := sels[i].ensureHostedAt(parts[i:i+1], site); err != nil {
			return err
		}
	}
	return nil
}

// finishCross records a decided cross-shard write: transaction counters on
// the home shard (counted once), per-partition load on each owning shard,
// and the stats sample through the inter-shard dispatch.
func (g *Group) finishCross(client int, parts []uint64, sels []*Selector, site int, start time.Time) {
	now := time.Now()
	home := sels[0]
	home.writeTxns.Add(1)
	home.routed[site].Add(1)
	home.routeNanos.Add(int64(now.Sub(start)))
	g.dispatchRecord(client, parts, now)
	for i := range parts {
		sels[i].bumpLoad(parts[i:i+1], site)
	}
}

// RouteRead implements Router: reads consult only site version vectors,
// which every shard sees identically, so shard 0 decides (and counts).
func (g *Group) RouteRead(client int, cvv vclock.Vector) Route {
	return g.Shard(0).RouteRead(client, cvv)
}

// RouteReadParts routes a partition-hinted read (partial replication):
// single-shard hints delegate; cross-shard hints intersect the owning
// shards' replica sets and apply the same freshness pick.
func (g *Group) RouteReadParts(client int, cvv vclock.Vector, parts []uint64) Route {
	s0 := g.Shard(0)
	if g.n == 1 || len(parts) == 0 || s0.placement == nil {
		return s0.RouteReadParts(client, cvv, parts)
	}
	first := g.ShardOf(parts[0])
	single := true
	for _, p := range parts[1:] {
		if g.ShardOf(p) != first {
			single = false
			break
		}
	}
	if single {
		return g.Shard(first).RouteReadParts(client, cvv, parts)
	}
	// Cross-shard hint: feed read stats to each owning shard and intersect
	// their common hosts.
	var hosts []int
	for si, sub := range g.partsByShard(parts) {
		sel := g.Shard(si)
		sel.stats.RecordRead(client, sub)
		h := sel.commonHosts(sub)
		if hosts == nil {
			hosts = h
			continue
		}
		kept := hosts[:0]
		for _, m := range hosts {
			if containsSite(h, m) {
				kept = append(kept, m)
			}
		}
		hosts = kept
	}
	if len(hosts) == 0 {
		// No common host across shards; fall back to the first partition's
		// replica set — the session retries the remainder on ErrNotHosted.
		return g.ShardFor(parts[0]).RouteReadParts(client, cvv, parts[:1])
	}
	s0.readTxns.Add(1)
	return pickFreshHost(s0, hosts, cvv, g.ShardFor(parts[0]), parts[0])
}

// partsByShard splits a sorted partition list by owning shard.
func (g *Group) partsByShard(parts []uint64) map[int][]uint64 {
	out := make(map[int][]uint64, 2)
	for _, p := range parts {
		si := g.ShardOf(p)
		out[si] = append(out[si], p)
	}
	return out
}

// pickFreshHost applies the selector read policy to an explicit host list:
// a random host already satisfying the client's freshness, else the
// least-lagged live host, else the first partition's master.
func pickFreshHost(s *Selector, hosts []int, cvv vclock.Vector, owner *Selector, part uint64) Route {
	fresh := make([]int, 0, len(hosts))
	bestLag, bestSite := uint64(1)<<63, -1
	for _, i := range hosts {
		if s.downSites[i].Load() {
			continue
		}
		svv := s.sites[i].SVV()
		if svv.DominatesEq(cvv) {
			fresh = append(fresh, i)
			continue
		}
		if lag := svv.LagBehind(cvv); lag < bestLag {
			bestLag, bestSite = lag, i
		}
	}
	if len(fresh) == 0 {
		if bestSite < 0 {
			return Route{Site: owner.MasterOf(part)}
		}
		return Route{Site: bestSite}
	}
	rng := s.rngPool.Get().(*rand.Rand)
	pick := fresh[rng.Intn(len(fresh))]
	s.rngPool.Put(rng)
	return Route{Site: pick}
}

// --- Control-plane dispatch ---

// MasterOf returns the current master of a partition (owning shard's map).
func (g *Group) MasterOf(p uint64) int { return g.ShardFor(p).MasterOf(p) }

// MasteredBy unions every shard's partitions mastered at site. Shard maps
// are disjoint by construction (a shard only creates partitions it owns).
func (g *Group) MasteredBy(site int) []uint64 {
	if g.n == 1 {
		return g.Shard(0).MasteredBy(site)
	}
	var out []uint64
	for i := 0; i < g.n; i++ {
		out = append(out, g.Shard(i).MasteredBy(site)...)
	}
	return out
}

// RegisterPartitionEpoch seeds a partition's master on its owning shard.
func (g *Group) RegisterPartitionEpoch(p uint64, master int, epoch uint64) {
	g.ShardFor(p).RegisterPartitionEpoch(p, master, epoch)
}

// AllocEpochFor allocates a remaster epoch from the owning shard's
// allocator (failover re-grants group their partitions per shard so epochs
// never mix allocators).
func (g *Group) AllocEpochFor(p uint64) (uint64, error) { return g.ShardFor(p).AllocEpoch() }

// MarkDown flags a site failed on every shard.
func (g *Group) MarkDown(site int) {
	for i := 0; i < g.n; i++ {
		g.Shard(i).MarkDown(site)
	}
}

// MarkUp clears a site's failed flag on every shard.
func (g *Group) MarkUp(site int) {
	for i := 0; i < g.n; i++ {
		g.Shard(i).MarkUp(site)
	}
}

// SiteDown reports whether the group considers the site failed (all shards
// agree; MarkDown/MarkUp fan out).
func (g *Group) SiteDown(site int) bool { return g.Shard(0).SiteDown(site) }

// BumpEpoch raises every shard's allocator to at least n (recovery carries
// the checkpointed max epoch; bumping all shards is safe — allocators only
// need monotonicity, not density).
func (g *Group) BumpEpoch(n uint64) {
	for i := 0; i < g.n; i++ {
		g.Shard(i).BumpEpoch(n)
	}
}

// CurrentEpoch returns the highest epoch allocated by any shard.
func (g *Group) CurrentEpoch() uint64 {
	var max uint64
	for i := 0; i < g.n; i++ {
		if e := g.Shard(i).CurrentEpoch(); e > max {
			max = e
		}
	}
	return max
}

// PlacementSnapshot merges every shard's partition map.
func (g *Group) PlacementSnapshot() (map[uint64]int, map[uint64]uint64) {
	if g.n == 1 {
		return g.Shard(0).PlacementSnapshot()
	}
	placement := make(map[uint64]int)
	epochs := make(map[uint64]uint64)
	for i := 0; i < g.n; i++ {
		pl, ep := g.Shard(i).PlacementSnapshot()
		for p, s := range pl {
			if g.ShardOf(p) != i {
				continue // defensive: never let a foreign entry shadow the owner's
			}
			placement[p] = s
			epochs[p] = ep[p]
		}
	}
	return placement, epochs
}

// PlacementTable merges every shard's replica sets (nil under full
// replication).
func (g *Group) PlacementTable() map[uint64][]int {
	if g.n == 1 {
		return g.Shard(0).PlacementTable()
	}
	var out map[uint64][]int
	for i := 0; i < g.n; i++ {
		t := g.Shard(i).PlacementTable()
		if t == nil {
			continue
		}
		if out == nil {
			out = make(map[uint64][]int)
		}
		for p, set := range t {
			if g.ShardOf(p) == i {
				out[p] = set
			}
		}
	}
	return out
}

// AdoptReplicaSets installs recovered replica sets on their owning shards.
func (g *Group) AdoptReplicaSets(sets map[uint64][]int) {
	if g.n == 1 {
		g.Shard(0).AdoptReplicaSets(sets)
		return
	}
	for si, sub := range g.setsByShard(sets) {
		g.Shard(si).AdoptReplicaSets(sub)
	}
}

func (g *Group) setsByShard(sets map[uint64][]int) map[int]map[uint64][]int {
	out := make(map[int]map[uint64][]int, g.n)
	for p, set := range sets {
		si := g.ShardOf(p)
		if out[si] == nil {
			out[si] = make(map[uint64][]int)
		}
		out[si][p] = set
	}
	return out
}

// DropSiteReplicas removes site from every shard's replica sets, returning
// the affected partitions.
func (g *Group) DropSiteReplicas(site int) []uint64 {
	var out []uint64
	for i := 0; i < g.n; i++ {
		out = append(out, g.Shard(i).DropSiteReplicas(site)...)
	}
	return out
}

// ReplicaSet returns a partition's replica set from its owning shard.
func (g *Group) ReplicaSet(p uint64) []int { return g.ShardFor(p).ReplicaSet(p) }

// HostsAt reports whether site hosts a replica of the partition.
func (g *Group) HostsAt(p uint64, site int) bool { return g.ShardFor(p).HostsAt(p, site) }

// AddReplicaMeta records replica membership on the owning shard.
func (g *Group) AddReplicaMeta(p uint64, site int, reason string) bool {
	return g.ShardFor(p).AddReplicaMeta(p, site, reason)
}

// DropReplicaMeta removes replica membership on the owning shard.
func (g *Group) DropReplicaMeta(p uint64, site int, reason string) bool {
	return g.ShardFor(p).DropReplicaMeta(p, site, reason)
}

// PartialPlacement reports whether the group runs partial replication
// (uniform across shards).
func (g *Group) PartialPlacement() bool { return g.Shard(0).PartialPlacement() }

// PlacementInfo merges every shard's placement summary (adds/drops/decision
// logs concatenate; bounds are uniform).
func (g *Group) PlacementInfo() PlacementInfo {
	info := g.Shard(0).PlacementInfo()
	info.Shards = g.n
	for i := 1; i < g.n; i++ {
		in := g.Shard(i).PlacementInfo()
		for p, m := range in.Masters {
			if g.ShardOf(p) != i {
				continue
			}
			info.Masters[p] = m
			if in.Partitions != nil {
				if info.Partitions == nil {
					info.Partitions = make(map[uint64][]int)
				}
				info.Partitions[p] = in.Partitions[p]
			}
		}
		info.Adds += in.Adds
		info.Drops += in.Drops
		info.Decisions = append(info.Decisions, in.Decisions...)
	}
	return info
}

// LearnAll refreshes every shard's replica caches for the given partitions
// (failover uses it; each partition goes to its owning shard's tier).
func (g *Group) LearnAll(parts []uint64, site int) {
	if g.n == 1 {
		g.repls[0].LearnAll(parts, site)
		return
	}
	for si, sub := range g.partsByShard(parts) {
		g.repls[si].LearnAll(sub, site)
	}
}

// Weights returns the strategy hyperparameters (uniform across shards).
func (g *Group) Weights() Weights { return g.Shard(0).Weights() }

// SetWeights replaces the strategy hyperparameters on every shard.
func (g *Group) SetWeights(w Weights) {
	for i := 0; i < g.n; i++ {
		g.Shard(i).SetWeights(w)
	}
}

// Metrics aggregates routing counters across shards. Latency means weight
// by each shard's transaction counts.
func (g *Group) Metrics() Metrics {
	if g.n == 1 {
		return g.Shard(0).Metrics()
	}
	var out Metrics
	var routeNanos, remastNanos int64
	for i := 0; i < g.n; i++ {
		s := g.Shard(i)
		m := s.Metrics()
		out.WriteTxns += m.WriteTxns
		out.ReadTxns += m.ReadTxns
		out.RemasterTxns += m.RemasterTxns
		out.PartsMoved += m.PartsMoved
		if out.RoutedPerSite == nil {
			out.RoutedPerSite = make([]uint64, len(m.RoutedPerSite))
		}
		for j, v := range m.RoutedPerSite {
			out.RoutedPerSite[j] += v
		}
		routeNanos += s.routeNanos.Load()
		remastNanos += s.remastNanos.Load()
	}
	if out.WriteTxns > 0 {
		out.AvgRouteTime = time.Duration(routeNanos / int64(out.WriteTxns))
	}
	if out.RemasterTxns > 0 {
		out.AvgRemaster = time.Duration(remastNanos / int64(out.RemasterTxns))
	}
	return out
}

// instrument registers the per-shard and group metrics. Shard selectors are
// built without a registry (their unlabeled series would collide), so the
// group publishes shard-labeled collectors over their counters instead.
func (g *Group) instrument(reg *obs.Registry) {
	if reg == nil || g.n == 1 {
		return
	}
	reg.Help("dynamast_selector_shards", "Router shards in the selector control plane.")
	reg.Help("dynamast_selector_shard_routes_total", "Routing decisions handled per router shard (writes + reads).")
	reg.Help("dynamast_selector_shard_write_routes_total", "Write routing decisions handled per router shard.")
	reg.Help("dynamast_selector_shard_remasters_total", "Remastering decisions executed per router shard.")
	reg.Help("dynamast_selector_shard_partitions", "Partitions tracked per router shard.")
	reg.Help("dynamast_selector_shard_cross_writes_total", "Write routes whose partition set spanned multiple shards.")
	reg.Help("dynamast_selector_shard_cross_hints_total", "Co-access stat samples exchanged over the inter-shard channel.")
	reg.Gauge("dynamast_selector_shards").Set(float64(g.n))
	for i := 0; i < g.n; i++ {
		i := i
		label := obs.L("shard", fmt.Sprint(i))
		reg.Func("dynamast_selector_shard_routes_total", obs.KindCounter, func() float64 {
			m := g.Shard(i).Metrics()
			return float64(m.WriteTxns + m.ReadTxns)
		}, label)
		reg.Func("dynamast_selector_shard_write_routes_total", obs.KindCounter, func() float64 {
			return float64(g.Shard(i).Metrics().WriteTxns)
		}, label)
		reg.Func("dynamast_selector_shard_remasters_total", obs.KindCounter, func() float64 {
			return float64(g.Shard(i).Metrics().RemasterTxns)
		}, label)
		reg.Func("dynamast_selector_shard_partitions", obs.KindGauge, func() float64 {
			total, _ := g.Shard(i).shardResidency()
			return float64(total)
		}, label)
	}
	reg.Func("dynamast_selector_shard_cross_writes_total", obs.KindCounter, func() float64 {
		return float64(g.crossWrites.Load())
	})
	reg.Func("dynamast_selector_shard_cross_hints_total", obs.KindCounter, func() float64 {
		return float64(g.crossHints.Load())
	})
}
