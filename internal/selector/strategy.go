package selector

import (
	"math"

	"dynamast/internal/vclock"
)

// Weights are the hyperparameters of the remastering benefit model
// (Equation 8). The defaults below are the values the paper selected per
// workload (Appendix H).
type Weights struct {
	Balance  float64 // w_balance: load-balance factor (Eq. 2-4)
	Delay    float64 // w_delay: refresh-delay factor (Eq. 5)
	IntraTxn float64 // w_intra_txn: intra-transaction localization (Eq. 6)
	InterTxn float64 // w_inter_txn: inter-transaction localization (Eq. 7)
}

// YCSBWeights are the paper's YCSB hyperparameters: load balance dominates,
// intra-transaction locality second, inter-transaction unused because the
// intra feature already captures partition relationships.
func YCSBWeights() Weights { return Weights{Balance: 1e6, Delay: 0.5, IntraTxn: 3, InterTxn: 0} }

// TPCCWeights follow the paper's TPC-C calibration: locality dominates
// (intra = inter = 0.88, near the probability that a transaction stays
// within one warehouse) and balance is the smallest balance weight of the
// three workloads — just enough that mastership never collapses onto one
// site. The absolute balance value is rescaled from the paper's 0.01 to
// this implementation's feature magnitudes (feature scales depend on
// normalization details the paper does not pin down); the paper's ordering
// w_balance(YCSB) >> w_balance(SmallBank) >> w_balance(TPC-C) is
// preserved.
func TPCCWeights() Weights {
	return Weights{Balance: 3, Delay: 0.05, IntraTxn: 0.88, InterTxn: 0.88}
}

// SmallBankWeights follow the paper's SmallBank calibration: as YCSB but
// with the balance weight lowered (short transactions place less load, so
// locality matters comparatively more). Rescaled to this implementation's
// feature magnitudes like TPCCWeights; the cross-workload ordering
// w_balance(YCSB) > w_balance(SmallBank) > w_balance(TPC-C) is the paper's.
func SmallBankWeights() Weights {
	return Weights{Balance: 1e4, Delay: 0.5, IntraTxn: 3, InterTxn: 0}
}

// BalanceDist is f_balance_dist (Equation 2): the distance of a mastership
// allocation from perfect write-load balance, computed as the square of
// the summed absolute deviations of each site's write-request fraction
// from 1/m. Zero means perfectly balanced; a fully collapsed allocation
// over m sites scores (2(m-1)/m)^2, so imbalance grows superlinearly —
// which (together with Equation 3's exp scaling) is what stops the
// co-location features from ever merging all mastership onto one site.
// An all-zero load is treated as balanced.
func BalanceDist(load []float64) float64 {
	m := len(load)
	if m == 0 {
		return 0
	}
	var total float64
	for _, l := range load {
		total += l
	}
	if total == 0 {
		return 0
	}
	var sum float64
	for _, l := range load {
		d := 1/float64(m) - l/total
		if d < 0 {
			d = -d
		}
		sum += d
	}
	return sum * sum
}

// BalanceFactor is f_balance (Equations 3-4) for remastering to a candidate
// whose projected per-site load is after, from the current load before:
// the change in balance distance scaled by the exponential of the worse of
// the two distances, so correcting a badly unbalanced system outweighs
// mildly unbalancing a balanced one.
func BalanceFactor(before, after []float64) float64 {
	db := BalanceDist(before)
	da := BalanceDist(after)
	delta := db - da
	rate := math.Max(db, da)
	return delta * math.Exp(rate)
}

// RefreshDelay is f_refresh_delay (Equation 5) as a benefit contribution:
// the negated number of updates candidate site svvS must still apply to
// reach the element-wise max of the client's session vector and the
// releasing sites' vectors. Zero when the candidate is fully caught up;
// more negative the further it lags.
func RefreshDelay(need, svvS vclock.Vector) float64 {
	return -float64(svvS.LagBehind(need))
}

// SingleSited implements the single_sited term of Equations 6-7 for a pair
// (d1 in the write set, d2 correlated with d1) and candidate site S:
//
//	+1 if remastering the write set to S co-locates d1 and d2's masters,
//	-1 if it splits masters that are currently co-located,
//	 0 if co-location is unchanged.
//
// master gives the current master of a partition and inWriteSet reports
// whether d2 is itself being remastered with the write set.
func SingleSited(s int, d1, d2 uint64, master func(uint64) int, inWriteSet func(uint64) bool) float64 {
	before := master(d1) == master(d2)
	var after bool
	if inWriteSet(d2) {
		after = true // both move to S
	} else {
		after = master(d2) == s
	}
	switch {
	case after && !before:
		return 1
	case before && !after:
		return -1
	}
	return 0
}

// Benefit combines the four features with the model weights (Equation 8).
func (w Weights) Benefit(balance, delay, intra, inter float64) float64 {
	return w.Balance*balance + w.Delay*delay + w.IntraTxn*intra + w.InterTxn*inter
}
