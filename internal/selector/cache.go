package selector

import (
	"sync"
	"sync/atomic"
	"time"

	"dynamast/internal/obs"
	"dynamast/internal/storage"
	"dynamast/internal/vclock"
)

// DefaultGossipInterval is the placement cache's anti-entropy pull period:
// the upper bound on how stale a cache entry the delta feed missed can stay.
const DefaultGossipInterval = 20 * time.Millisecond

// PlacementCache is the gossiped read-only placement view of a sharded
// selector group: mastership (and, under partial replication, replica-set)
// snapshots versioned by install epoch. Two feeds keep it fresh:
//
//   - every shard's existing leader->standby mastership delta feed is
//     piggybacked into ingest (same deltas, one more consumer), so
//     remaster decisions reach the cache with no extra machinery;
//   - a periodic anti-entropy pull copies each shard leader's placement
//     snapshot, catching entries the delta feed cannot carry (first-sight
//     placements that never remastered, replica-set changes, promotions'
//     reconciled maps). GossipInterval bounds the staleness window.
//
// Sessions route reads off the cache — and optimistically route writes —
// with zero router RPCs. Staleness is safe by construction: a read routed
// to a site that no longer hosts the partition bounces with ErrNotHosted,
// and a write routed to a former master bounces with ErrNotMaster or loses
// its fence race with ErrStaleEpoch; the session's existing resubmit path
// then routes authoritatively through the owning router shard, which
// refreshes this cache via its delta feed.
type PlacementCache struct {
	g        *Group
	interval time.Duration

	mu    sync.RWMutex
	owner map[uint64]int
	epoch map[uint64]uint64
	sets  map[uint64][]int // replica sets; nil under full replication

	readRoutes  atomic.Uint64 // reads served with zero router RPCs
	writeRoutes atomic.Uint64 // writes served with zero router RPCs
	staleWrites atomic.Uint64 // cached writes bounced and resubmitted
	misses      atomic.Uint64 // routes that fell back to a router
	gossipTicks atomic.Uint64

	stop     chan struct{}
	stopOnce sync.Once
	wg       sync.WaitGroup
}

func newPlacementCache(g *Group, interval time.Duration, reg *obs.Registry) *PlacementCache {
	if interval <= 0 {
		interval = DefaultGossipInterval
	}
	c := &PlacementCache{
		g:        g,
		interval: interval,
		owner:    make(map[uint64]int),
		epoch:    make(map[uint64]uint64),
		stop:     make(chan struct{}),
	}
	c.instrument(reg)
	return c
}

func (c *PlacementCache) start() {
	c.gossip() // seed synchronously so early sessions see initial placement
	c.wg.Add(1)
	go func() {
		defer c.wg.Done()
		t := time.NewTicker(c.interval)
		defer t.Stop()
		for {
			select {
			case <-c.stop:
				return
			case <-t.C:
				c.gossip()
			}
		}
	}()
}

func (c *PlacementCache) stopLoop() {
	c.stopOnce.Do(func() { close(c.stop) })
	c.wg.Wait()
}

// ingest applies one mastership delta (piggybacked off a shard's delta
// feed). Epoch-monotonic per partition: a straggler below the installed
// epoch never rolls the cache back.
func (c *PlacementCache) ingest(parts []uint64, site int, epoch uint64) {
	c.mu.Lock()
	for _, p := range parts {
		if epoch >= c.epoch[p] {
			c.owner[p] = site
			c.epoch[p] = epoch
		}
	}
	c.mu.Unlock()
}

// gossip pulls every shard leader's placement snapshot — the anti-entropy
// pass bounding staleness for entries no delta carries.
func (c *PlacementCache) gossip() {
	c.gossipTicks.Add(1)
	for i := 0; i < c.g.n; i++ {
		sel := c.g.Shard(i)
		placement, epochs := sel.PlacementSnapshot()
		table := sel.PlacementTable()
		c.mu.Lock()
		for p, site := range placement {
			if c.g.ShardOf(p) != i {
				continue
			}
			if e := epochs[p]; e >= c.epoch[p] {
				c.owner[p] = site
				c.epoch[p] = e
			}
		}
		if table != nil {
			if c.sets == nil {
				c.sets = make(map[uint64][]int, len(table))
			}
			for p, set := range table {
				if c.g.ShardOf(p) == i {
					c.sets[p] = set
				}
			}
		}
		c.mu.Unlock()
	}
}

// lookupOwner returns the cached master of every partition if all are
// cached at the same site.
func (c *PlacementCache) lookupOwner(parts []uint64) (int, bool) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	site, ok := c.owner[parts[0]]
	if !ok {
		return 0, false
	}
	for _, p := range parts[1:] {
		m, ok := c.owner[p]
		if !ok || m != site {
			return 0, false
		}
	}
	return site, true
}

// routeWriteCached serves a write route purely from the cache: all
// partitions cached as mastered at one live site. The decision mirrors the
// replica tier's local-decision model — counted as a write transaction and
// fed back into the owning shards' statistics — without any router RPC. A
// multi-site or uncached set returns false; the caller falls back to the
// routers (an optimistic wrong answer is recovered by the data site's
// ErrNotMaster/ErrStaleEpoch bounce and the session's resubmit).
func (c *PlacementCache) routeWriteCached(client int, writeSet []storage.RowRef, cvv vclock.Vector) (Route, bool) {
	s0 := c.g.Shard(0)
	parts := s0.writeParts(writeSet)
	if len(parts) == 0 {
		return Route{Site: 0}, true
	}
	site, ok := c.lookupOwner(parts)
	if !ok || s0.SiteDown(site) {
		c.misses.Add(1)
		return Route{}, false
	}
	c.writeRoutes.Add(1)
	// Stats feedback: finishWrite dispatches through the shard hooks, so
	// the sample lands on every owning shard's stripes.
	c.g.ShardFor(parts[0]).finishWrite(client, parts, site, time.Now())
	return Route{Site: site}, true
}

// routeReadCached serves a partition-hinted read from the cached replica
// sets (or, under full replication, from the full site set): a fresh-enough
// host is picked with the selector's read policy, with zero router RPCs.
func (c *PlacementCache) routeReadCached(client int, cvv vclock.Vector, parts []uint64) (Route, bool) {
	s0 := c.g.Shard(0)
	if len(parts) == 0 {
		c.readRoutes.Add(1)
		return s0.RouteRead(client, cvv), true
	}
	var hosts []int
	if s0.placement == nil {
		// Full replication: every site hosts everything.
		hosts = make([]int, len(s0.sites))
		for i := range hosts {
			hosts[i] = i
		}
	} else {
		c.mu.RLock()
		for i, p := range parts {
			set, ok := c.sets[p]
			if !ok {
				c.mu.RUnlock()
				c.misses.Add(1)
				return Route{}, false
			}
			if i == 0 {
				hosts = append(hosts, set...)
				continue
			}
			kept := hosts[:0]
			for _, m := range hosts {
				for _, n := range set {
					if n == m {
						kept = append(kept, m)
						break
					}
				}
			}
			hosts = kept
		}
		c.mu.RUnlock()
		if len(hosts) == 0 {
			c.misses.Add(1)
			return Route{}, false
		}
	}
	// Feed read statistics to the owning shards (the paper's replicas
	// report samples back asynchronously; the cache does the same).
	for si, sub := range c.g.partsByShard(parts) {
		c.g.Shard(si).stats.RecordRead(client, sub)
	}
	c.readRoutes.Add(1)
	s0.readTxns.Add(1)
	return pickFreshHost(s0, hosts, cvv, c.g.ShardFor(parts[0]), parts[0]), true
}

// ReadRoutes returns how many reads the cache served without a router RPC.
func (c *PlacementCache) ReadRoutes() uint64 { return c.readRoutes.Load() }

// WriteRoutes returns how many writes the cache served without a router RPC.
func (c *PlacementCache) WriteRoutes() uint64 { return c.writeRoutes.Load() }

// StaleWrites returns how many cache-routed writes bounced at a data site
// and were resubmitted through a router shard.
func (c *PlacementCache) StaleWrites() uint64 { return c.staleWrites.Load() }

// Misses returns how many route attempts fell back to the routers.
func (c *PlacementCache) Misses() uint64 { return c.misses.Load() }

// Size returns the number of cached mastership entries.
func (c *PlacementCache) Size() int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return len(c.owner)
}

func (c *PlacementCache) instrument(reg *obs.Registry) {
	if reg == nil {
		return
	}
	reg.Help("dynamast_selector_cache_routes_total", "Session routes served purely from the gossiped placement cache.")
	reg.Help("dynamast_selector_cache_misses_total", "Session routes that fell back to a router shard on a cache miss.")
	reg.Help("dynamast_selector_cache_stale_writes_total", "Cache-routed writes bounced by a data site and resubmitted authoritatively.")
	reg.Help("dynamast_selector_cache_entries", "Mastership entries in the gossiped placement cache.")
	reg.Help("dynamast_selector_cache_gossip_total", "Anti-entropy gossip pulls refreshing the placement cache.")
	reg.Func("dynamast_selector_cache_routes_total", obs.KindCounter, func() float64 {
		return float64(c.readRoutes.Load() + c.writeRoutes.Load())
	}, obs.L("type", "all"))
	reg.Func("dynamast_selector_cache_routes_total", obs.KindCounter, func() float64 {
		return float64(c.readRoutes.Load())
	}, obs.L("type", "read"))
	reg.Func("dynamast_selector_cache_routes_total", obs.KindCounter, func() float64 {
		return float64(c.writeRoutes.Load())
	}, obs.L("type", "write"))
	reg.Func("dynamast_selector_cache_misses_total", obs.KindCounter, func() float64 {
		return float64(c.misses.Load())
	})
	reg.Func("dynamast_selector_cache_stale_writes_total", obs.KindCounter, func() float64 {
		return float64(c.staleWrites.Load())
	})
	reg.Func("dynamast_selector_cache_entries", obs.KindGauge, func() float64 {
		return float64(c.Size())
	})
	reg.Func("dynamast_selector_cache_gossip_total", obs.KindCounter, func() float64 {
		return float64(c.gossipTicks.Load())
	})
}

// CachedRouter is the session-facing router of a sharded group with the
// placement cache enabled: reads and single-site writes come straight from
// the cache (no router involvement), everything else dispatches into the
// group, and stale-metadata resubmits count against the cache before
// routing authoritatively.
type CachedRouter struct {
	g *Group
	c *PlacementCache
}

// RouteWriteCached serves a write purely from the cache when its write set
// is cached single-sited; ok=false means the caller must route through the
// group (the session then pays the selector round trip).
func (r *CachedRouter) RouteWriteCached(client int, writeSet []storage.RowRef, cvv vclock.Vector) (Route, bool) {
	return r.c.routeWriteCached(client, writeSet, cvv)
}

// RouteReadCached serves a partition-hinted read purely from the cached
// replica sets; ok=false falls back to the group's routers.
func (r *CachedRouter) RouteReadCached(client int, cvv vclock.Vector, parts []uint64) (Route, bool) {
	return r.c.routeReadCached(client, cvv, parts)
}

// RouteWrite implements Router authoritatively. The session tries
// RouteWriteCached first and only lands here on a miss, so this does not
// re-consult the cache (a second consult would double-count misses).
func (r *CachedRouter) RouteWrite(client int, writeSet []storage.RowRef, cvv vclock.Vector) (Route, error) {
	return r.g.RouteWrite(client, writeSet, cvv)
}

// RouteWriteTraced is RouteWrite under a sampled trace.
func (r *CachedRouter) RouteWriteTraced(client int, writeSet []storage.RowRef, cvv vclock.Vector, sc obs.SpanContext) (Route, error) {
	return r.g.RouteWriteTraced(client, writeSet, cvv, sc)
}

// RouteToMaster is the stale-metadata resubmit: the optimistic cache route
// bounced (ErrNotMaster / ErrStaleEpoch at the data site), so route
// authoritatively through the owning router shards.
func (r *CachedRouter) RouteToMaster(client int, writeSet []storage.RowRef, cvv vclock.Vector) (Route, error) {
	r.c.staleWrites.Add(1)
	return r.g.RouteToMaster(client, writeSet, cvv)
}

// RouteToMasterTraced is RouteToMaster under a sampled trace.
func (r *CachedRouter) RouteToMasterTraced(client int, writeSet []storage.RowRef, cvv vclock.Vector, sc obs.SpanContext) (Route, error) {
	r.c.staleWrites.Add(1)
	return r.g.RouteToMasterTraced(client, writeSet, cvv, sc)
}

// RouteRead implements Router: version-vector reads need no placement, so
// they are always cache-grade (zero router RPCs by nature).
func (r *CachedRouter) RouteRead(client int, cvv vclock.Vector) Route {
	r.c.readRoutes.Add(1)
	return r.g.RouteRead(client, cvv)
}

// RouteReadParts routes a partition-hinted read authoritatively through the
// group (the session tries RouteReadCached first).
func (r *CachedRouter) RouteReadParts(client int, cvv vclock.Vector, parts []uint64) Route {
	return r.g.RouteReadParts(client, cvv, parts)
}
