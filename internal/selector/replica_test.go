package selector

import (
	"testing"

	"dynamast/internal/storage"
)

func TestReplicatedRouterAssignment(t *testing.T) {
	sel, _ := newCluster(t, 2, YCSBWeights())
	// No replicas: everyone gets the master.
	r0 := NewReplicated(sel, 0, nil)
	if r0.RouterFor(3) != Router(sel) {
		t.Fatal("no-replica tier did not return the master")
	}
	r2 := NewReplicated(sel, 2, nil)
	if len(r2.Replicas()) != 2 {
		t.Fatal("replica count")
	}
	if r2.RouterFor(0) == r2.RouterFor(1) {
		t.Fatal("clients not spread over replicas")
	}
	if r2.RouterFor(0) != r2.RouterFor(2) {
		t.Fatal("round-robin broken")
	}
}

func TestReplicaFastPathAvoidsMaster(t *testing.T) {
	sel, _ := newCluster(t, 2, YCSBWeights())
	tier := NewReplicated(sel, 1, nil)
	rep := tier.Replicas()[0]

	// Single-sited write set: the replica decides locally; the master's
	// remaster counter must stay zero.
	ws := []storage.RowRef{ref(1), ref(50)}
	route, err := rep.RouteWrite(1, ws, nil)
	if err != nil {
		t.Fatal(err)
	}
	if route.Site != 0 || route.Remastered {
		t.Fatalf("route = %+v", route)
	}
	if rep.CacheSize() == 0 {
		t.Fatal("replica cached nothing")
	}
	if sel.Metrics().RemasterTxns != 0 {
		t.Fatal("fast path reached the master's remastering")
	}
	// Statistics still flow to the master tier.
	if sel.Metrics().WriteTxns == 0 {
		t.Fatal("replica-routed write not counted")
	}
}

func TestReplicaForwardsSplitWriteSets(t *testing.T) {
	sel, sites := newCluster(t, 2, YCSBWeights())
	rel, _ := sites[0].Release([]uint64{1}, 1, 0)
	sites[1].Grant([]uint64{1}, rel, 0, 0)
	sel.RegisterPartition(1, 1)

	tier := NewReplicated(sel, 1, nil)
	rep := tier.Replicas()[0]
	ws := []storage.RowRef{ref(1), ref(101)}
	route, err := rep.RouteWrite(1, ws, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !route.Remastered {
		t.Fatal("split write set did not remaster via the master")
	}
	// The replica learned the new locations: the same write set now takes
	// the fast path.
	before := sel.Metrics().RemasterTxns
	route2, err := rep.RouteWrite(1, ws, nil)
	if err != nil {
		t.Fatal(err)
	}
	if route2.Remastered || sel.Metrics().RemasterTxns != before {
		t.Fatal("replica did not learn the co-located placement")
	}
}

func TestReplicaStaleCacheFallback(t *testing.T) {
	sel, sites := newCluster(t, 2, YCSBWeights())
	tier := NewReplicated(sel, 1, nil)
	rep := tier.Replicas()[0]

	ws := []storage.RowRef{ref(1)}
	if _, err := rep.RouteWrite(1, ws, nil); err != nil {
		t.Fatal(err)
	}
	// Mastership moves behind the replica's back.
	rel, _ := sites[0].Release([]uint64{0}, 1, 0)
	sites[1].Grant([]uint64{0}, rel, 0, 0)
	sel.RegisterPartition(0, 1)

	// The replica still routes to site 0 (stale).
	route, _ := rep.RouteWrite(1, ws, nil)
	if route.Site != 0 {
		t.Fatalf("expected stale route to site 0, got %d", route.Site)
	}
	// The data site would reject; the client falls back to the master.
	route2, err := rep.RouteToMaster(1, ws, nil)
	if err != nil {
		t.Fatal(err)
	}
	if route2.Site != 1 {
		t.Fatalf("master fallback routed to %d", route2.Site)
	}
	// And the replica's cache is fresh again.
	route3, _ := rep.RouteWrite(1, ws, nil)
	if route3.Site != 1 {
		t.Fatalf("replica cache not refreshed: %d", route3.Site)
	}
}

func TestReplicaRouteRead(t *testing.T) {
	sel, _ := newCluster(t, 3, YCSBWeights())
	tier := NewReplicated(sel, 1, nil)
	rep := tier.Replicas()[0]
	seen := map[int]bool{}
	for i := 0; i < 60; i++ {
		seen[rep.RouteRead(1, nil).Site] = true
	}
	if len(seen) < 2 {
		t.Fatal("replica read routing not spreading load")
	}
}
