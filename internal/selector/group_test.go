package selector

import (
	"fmt"
	"math"
	"math/rand"
	"os"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"dynamast/internal/sitemgr"
	"dynamast/internal/storage"
	"dynamast/internal/wal"
)

// newShardedGroup builds m replicating data sites fronted by an n-shard
// router group (no HA, no replicas — the sharding machinery itself). Every
// partition starts mastered at site 0, as in newCluster.
func newShardedGroup(t *testing.T, m, shards int, cache bool, stats StatsConfig) (*Group, []*sitemgr.Site) {
	t.Helper()
	b := wal.NewBroker(m)
	sites := make([]*sitemgr.Site, m)
	dsites := make([]DataSite, m)
	for i := 0; i < m; i++ {
		s, err := sitemgr.New(sitemgr.Config{
			SiteID: i, Sites: m, Broker: b,
			Partitioner: partitionBy100, Replicate: true,
		})
		if err != nil {
			t.Fatal(err)
		}
		s.Store().CreateTable("t")
		for p := uint64(0); p < 50; p++ {
			s.SetMaster(p, i == 0)
		}
		sites[i], dsites[i] = s, s
	}
	for _, s := range sites {
		s.Start()
	}
	var g *Group
	repls := make([]*Replicated, shards)
	for i := 0; i < shards; i++ {
		sel, err := New(Config{
			Sites:       dsites,
			Partitioner: partitionBy100,
			Weights:     YCSBWeights(),
			Stats:       stats,
			Seed:        int64(i),
			Hooks:       GroupHooks(i, shards, func() *Group { return g }),
		})
		if err != nil {
			t.Fatal(err)
		}
		repls[i] = NewReplicated(sel, 0, nil)
	}
	var err error
	g, err = NewGroup(GroupConfig{Shards: repls, Cache: cache, GossipInterval: 2 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		g.Stop()
		b.Close()
		for _, s := range sites {
			s.Stop()
		}
	})
	return g, sites
}

// shardBuckets splits partitions [0, count) by owning shard.
func shardBuckets(count uint64, shards int) [][]uint64 {
	out := make([][]uint64, shards)
	for p := uint64(0); p < count; p++ {
		si := RouterShardOf(p, shards)
		out[si] = append(out[si], p)
	}
	return out
}

func TestRouterShardOfProperties(t *testing.T) {
	// Pure and bounded: identical inputs map to identical shards in [0, n).
	for _, n := range []int{1, 2, 3, 4, 7, 16, MaxRouterShards} {
		for p := uint64(0); p < 10_000; p += 37 {
			si := RouterShardOf(p, n)
			if si < 0 || si >= n {
				t.Fatalf("RouterShardOf(%d, %d) = %d out of range", p, n, si)
			}
			if again := RouterShardOf(p, n); again != si {
				t.Fatalf("RouterShardOf(%d, %d) not pure: %d then %d", p, n, si, again)
			}
			if got := sitemgr.RouterShard(p, n); got != si {
				t.Fatalf("selector and sitemgr disagree on shard of %d/%d: %d vs %d", p, n, si, got)
			}
		}
	}
	// n <= 1 always shard 0.
	if RouterShardOf(123, 1) != 0 || RouterShardOf(123, 0) != 0 {
		t.Fatal("single-shard mapping must be 0")
	}
	// The multiply-shift spreads a dense partition range roughly evenly: no
	// shard of 4 may own more than half of 1024 consecutive partitions.
	buckets := shardBuckets(1024, 4)
	for si, parts := range buckets {
		if len(parts) == 0 || len(parts) > 512 {
			t.Fatalf("shard %d owns %d of 1024 partitions — degenerate spread", si, len(parts))
		}
	}
}

func TestGroupSingleShardPassThrough(t *testing.T) {
	g, _ := newShardedGroup(t, 2, 1, true, StatsConfig{HistorySize: 128})
	if g.Cache() != nil {
		t.Fatal("single-shard group built a placement cache")
	}
	// The router is the shard's own selector — not the group, not a cache.
	if _, ok := g.RouterFor(1).(*Selector); !ok {
		t.Fatalf("single-shard RouterFor = %T, want the selector itself", g.RouterFor(1))
	}
	r, err := g.RouteWrite(1, []storage.RowRef{ref(1), ref(150)}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if r.Site != 0 || r.Remastered {
		t.Fatalf("route = %+v, want site 0 without remastering", r)
	}
	if g.CrossShardWrites() != 0 {
		t.Fatal("single-shard group counted a cross-shard write")
	}
}

func TestGroupCrossShardWriteRemasters(t *testing.T) {
	g, sites := newShardedGroup(t, 2, 2, false, StatsConfig{HistorySize: 128})
	buckets := shardBuckets(50, 2)
	pa, pb := buckets[0][0], buckets[1][0]

	// Split mastership across both sites AND both shards: pb moves to site 1
	// behind a direct site-to-site transfer plus owner-shard registration.
	rel, err := sites[0].Release([]uint64{pb}, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sites[1].Grant([]uint64{pb}, rel, 0, 0); err != nil {
		t.Fatal(err)
	}
	g.ShardFor(pb).RegisterPartition(pb, 1)

	ws := []storage.RowRef{ref(pa*100 + 1), ref(pb*100 + 1)}
	r, err := g.RouteWrite(7, ws, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !r.Remastered || r.PartsMoved == 0 {
		t.Fatalf("cross-shard split-master route did not remaster: %+v", r)
	}
	if g.CrossShardWrites() != 1 {
		t.Fatalf("CrossShardWrites = %d, want 1", g.CrossShardWrites())
	}
	// One destination for the whole set, agreed by both shards and the sites.
	if got := g.MasterOf(pa); got != r.Site {
		t.Fatalf("partition %d mastered at %d, route said %d", pa, got, r.Site)
	}
	if got := g.MasterOf(pb); got != r.Site {
		t.Fatalf("partition %d mastered at %d, route said %d", pb, got, r.Site)
	}
	for _, p := range []uint64{pa, pb} {
		owners := 0
		for _, s := range sites {
			if s.Masters(p) {
				owners++
			}
		}
		if owners != 1 {
			t.Fatalf("partition %d has %d site owners after cross-shard remaster, want 1", p, owners)
		}
	}
	// Each shard's chain ran under its own allocator: the moved partitions'
	// epochs advanced on their owning shards.
	if g.CurrentEpoch() == 0 {
		t.Fatal("no epoch was allocated for the cross-shard remaster")
	}
	// Shard maps never leak foreign partitions: every partition a shard
	// masters anywhere hashes back to that shard.
	for si := 0; si < g.Shards(); si++ {
		for site := range sites {
			for _, p := range g.Shard(si).MasteredBy(site) {
				if g.ShardOf(p) != si {
					t.Fatalf("shard %d tracks foreign partition %d (owner shard %d)", si, p, g.ShardOf(p))
				}
			}
		}
	}
	// Re-routing the now co-located set takes the single-master fast path.
	r2, err := g.RouteWrite(7, ws, nil)
	if err != nil {
		t.Fatal(err)
	}
	if r2.Remastered || r2.Site != r.Site {
		t.Fatalf("second route = %+v, want fast path at site %d", r2, r.Site)
	}
}

// TestCrossShardCoAccessMatchesReference is the sharded-stats golden test:
// a workload whose co-accessed partitions land on different shards must
// record every pair on BOTH owning shards' stripes, so that querying any
// partition's owner shard reproduces exactly what one unsharded tracker fed
// the full stream would report. The workload alternates shards between
// consecutive writes (with spanning sets mixed in), so the one-hop
// prev-owner delivery of dispatchRecord covers every tracker.
func TestCrossShardCoAccessMatchesReference(t *testing.T) {
	cfg := StatsConfig{HistorySize: 4096, Stripes: 4, InterWindow: time.Hour}
	g, _ := newShardedGroup(t, 2, 2, false, cfg)
	reference := NewStats(cfg)

	buckets := shardBuckets(50, 2)
	rng := rand.New(rand.NewSource(42))
	now := time.Unix(1_000_000, 0)
	pick := func(si, n int) []uint64 {
		parts := make([]uint64, 0, n)
		for len(parts) < n {
			p := buckets[si][rng.Intn(len(buckets[si]))]
			dup := false
			for _, q := range parts {
				if q == p {
					dup = true
				}
			}
			if !dup {
				parts = append(parts, p)
			}
		}
		return parts
	}

	const clients, writes = 8, 60
	last := make([]int, clients) // last single-shard side per client
	for c := 0; c < clients; c++ {
		// First write spans both shards so every tracker is warm from the
		// client's first sample.
		parts := append(pick(0, 1+rng.Intn(2)), pick(1, 1+rng.Intn(2))...)
		g.dispatchRecord(c, parts, now)
		reference.RecordWrite(c, parts, now)
		last[c] = -1 // spanning
	}
	for i := 0; i < writes; i++ {
		now = now.Add(time.Millisecond)
		c := rng.Intn(clients)
		var parts []uint64
		if rng.Intn(3) == 0 {
			parts = append(pick(0, 1), pick(1, 1)...) // spanning set
			last[c] = -1
		} else {
			// Strict alternation: never two consecutive same-shard-only
			// writes, so the one-hop delivery keeps both trackers exact.
			side := 0
			if last[c] == 0 {
				side = 1
			} else if last[c] == -1 {
				side = rng.Intn(2)
			}
			parts = pick(side, 1+rng.Intn(2))
			last[c] = side
		}
		g.dispatchRecord(c, parts, now)
		reference.RecordWrite(c, parts, now)
	}
	if g.CrossShardHints() == 0 {
		t.Fatal("workload crossed shards but no inter-shard hints were exchanged")
	}

	coAccessMap := func(st *Stats, d1 uint64, intra bool) map[uint64]float64 {
		out := make(map[uint64]float64)
		st.CoAccess(d1, intra, func(d2 uint64, p float64) { out[d2] = p })
		return out
	}
	for p := uint64(0); p < 50; p++ {
		owner := g.ShardFor(p).stats
		if got, want := owner.AccessWeight(p), reference.AccessWeight(p); got != want {
			t.Fatalf("AccessWeight(%d) on owner shard = %g, reference %g", p, got, want)
		}
		if got, want := owner.occurrencesOf(p), reference.occurrencesOf(p); got != want {
			t.Fatalf("occurrencesOf(%d) on owner shard = %g, reference %g", p, got, want)
		}
		for _, intra := range []bool{true, false} {
			got, want := coAccessMap(owner, p, intra), coAccessMap(reference, p, intra)
			if len(got) != len(want) {
				t.Fatalf("CoAccess(%d, intra=%v): owner shard has %d pairs, reference %d (%v vs %v)",
					p, intra, len(got), len(want), got, want)
			}
			for d2, wp := range want {
				if gp, ok := got[d2]; !ok || math.Abs(gp-wp) > 1e-12 {
					t.Fatalf("CoAccess(%d->%d, intra=%v) = %g on owner shard, reference %g", p, d2, intra, gp, wp)
				}
			}
		}
	}
}

func TestPlacementCacheIngestMonotonic(t *testing.T) {
	g, _ := newShardedGroup(t, 2, 2, true, StatsConfig{HistorySize: 128})
	c := g.Cache()
	if c == nil {
		t.Fatal("sharded group with Cache on built no cache")
	}
	// Partition 77 exists nowhere, so gossip never touches it.
	c.ingest([]uint64{77}, 1, 10)
	if site, ok := c.lookupOwner([]uint64{77}); !ok || site != 1 {
		t.Fatalf("after ingest: owner = %d/%v, want 1", site, ok)
	}
	// A straggler below the installed epoch never rolls the cache back.
	c.ingest([]uint64{77}, 0, 9)
	if site, _ := c.lookupOwner([]uint64{77}); site != 1 {
		t.Fatalf("stale delta rolled the cache back to site %d", site)
	}
	// An equal-or-newer epoch wins.
	c.ingest([]uint64{77}, 0, 11)
	if site, _ := c.lookupOwner([]uint64{77}); site != 0 {
		t.Fatalf("newer delta did not install: owner %d, want 0", site)
	}
}

func TestCachedRouterServesAndFallsBack(t *testing.T) {
	g, _ := newShardedGroup(t, 2, 2, true, StatsConfig{HistorySize: 128})
	cr, ok := g.RouterFor(3).(*CachedRouter)
	if !ok {
		t.Fatalf("cache-enabled RouterFor = %T, want *CachedRouter", g.RouterFor(3))
	}
	c := g.Cache()

	// Nothing routed yet: the partitions do not exist on any shard, so the
	// cache misses and the caller must fall back to the routers.
	if _, ok := cr.RouteWriteCached(3, []storage.RowRef{ref(1)}, nil); ok {
		t.Fatal("cache served a write for a partition it never saw")
	}
	if c.Misses() == 0 {
		t.Fatal("cache miss not counted")
	}

	// Materialize the partition through the group, then pull placement.
	if _, err := g.RouteWrite(3, []storage.RowRef{ref(1)}, nil); err != nil {
		t.Fatal(err)
	}
	c.gossip()
	route, ok := cr.RouteWriteCached(3, []storage.RowRef{ref(1)}, nil)
	if !ok || route.Site != 0 {
		t.Fatalf("cached write route = %+v/%v, want site 0 hit", route, ok)
	}
	if c.WriteRoutes() == 0 {
		t.Fatal("cache write hit not counted")
	}

	// Reads under full replication are always cache-grade.
	if _, ok := cr.RouteReadCached(3, nil, []uint64{0}); !ok {
		t.Fatal("full-replication read missed the cache")
	}
	if c.ReadRoutes() == 0 {
		t.Fatal("cache read hit not counted")
	}

	// The resubmit path counts against the cache and routes authoritatively.
	before := c.StaleWrites()
	if _, err := cr.RouteToMaster(3, []storage.RowRef{ref(1)}, nil); err != nil {
		t.Fatal(err)
	}
	if c.StaleWrites() != before+1 {
		t.Fatal("RouteToMaster did not count a stale cache write")
	}
}

// TestShardedRoutingThroughputScales asserts the tentpole's point: four
// router shards sustain materially higher aggregate routing throughput than
// one. Gated behind DYNAMAST_BENCH_SMOKE (CI's bench-smoke step) and a
// multi-core box — a 1-2 core runner cannot demonstrate control-plane
// parallelism.
func TestShardedRoutingThroughputScales(t *testing.T) {
	if os.Getenv("DYNAMAST_BENCH_SMOKE") == "" {
		t.Skip("set DYNAMAST_BENCH_SMOKE=1 to run the shard scaling smoke test")
	}
	if runtime.NumCPU() < 4 {
		t.Skipf("%d CPUs cannot exercise 4-way control-plane parallelism", runtime.NumCPU())
	}
	const parts = 256
	routesPerSec := func(shards int) float64 {
		sites := make([]DataSite, 4)
		for i := range sites {
			sites[i] = &benchSite{id: i}
		}
		var g *Group
		repls := make([]*Replicated, shards)
		for i := 0; i < shards; i++ {
			sel, err := New(Config{
				Sites:       sites,
				Partitioner: func(ref storage.RowRef) uint64 { return ref.Key / 100 },
				Weights:     YCSBWeights(),
				Seed:        int64(i),
				Hooks:       GroupHooks(i, shards, func() *Group { return g }),
			})
			if err != nil {
				t.Fatal(err)
			}
			repls[i] = NewReplicated(sel, 0, nil)
		}
		var err error
		g, err = NewGroup(GroupConfig{Shards: repls})
		if err != nil {
			t.Fatal(err)
		}
		for p := uint64(0); p < parts; p++ {
			if _, err := g.RouteWrite(0, []storage.RowRef{{Table: "t", Key: p * 100}}, nil); err != nil {
				t.Fatal(err)
			}
		}
		buckets := shardBuckets(parts, shards)
		workers := runtime.GOMAXPROCS(0)
		var total atomic.Uint64
		var wg sync.WaitGroup
		stop := make(chan struct{})
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				bucket := buckets[w%shards]
				client := 1 + w
				i, n := uint64(w), uint64(0)
				ws := make([]storage.RowRef, 3)
				for {
					select {
					case <-stop:
						total.Add(n)
						return
					default:
					}
					i++
					base := int(i*7) % len(bucket)
					ws[0] = storage.RowRef{Table: "t", Key: bucket[base] * 100}
					ws[1] = storage.RowRef{Table: "t", Key: bucket[(base+1)%len(bucket)] * 100}
					ws[2] = storage.RowRef{Table: "t", Key: bucket[(base+2)%len(bucket)] * 100}
					if _, err := g.RouteWrite(client, ws, nil); err != nil {
						t.Error(err)
						total.Add(n)
						return
					}
					n++
				}
			}(w)
		}
		const window = 500 * time.Millisecond
		time.Sleep(window)
		close(stop)
		wg.Wait()
		return float64(total.Load()) / window.Seconds()
	}
	single := routesPerSec(1)
	sharded := routesPerSec(4)
	ratio := sharded / single
	t.Logf("aggregate routes/sec: 1 shard %.0f, 4 shards %.0f (%.2fx)", single, sharded, ratio)
	if ratio < 1.8 {
		t.Fatalf("4-shard aggregate routing throughput only %.2fx single-shard, want >= 1.8x", ratio)
	}
}

// newBenchGroup builds an n-shard group over no-op data sites with pre-
// materialized partitions for routing throughput benchmarks.
func newBenchGroup(b *testing.B, m, shards int, parts uint64) *Group {
	b.Helper()
	sites := make([]DataSite, m)
	for i := range sites {
		sites[i] = &benchSite{id: i}
	}
	var g *Group
	repls := make([]*Replicated, shards)
	for i := 0; i < shards; i++ {
		sel, err := New(Config{
			Sites:       sites,
			Partitioner: func(ref storage.RowRef) uint64 { return ref.Key / 100 },
			Weights:     YCSBWeights(),
			Seed:        int64(i),
			Hooks:       GroupHooks(i, shards, func() *Group { return g }),
		})
		if err != nil {
			b.Fatal(err)
		}
		repls[i] = NewReplicated(sel, 0, nil)
	}
	var err error
	g, err = NewGroup(GroupConfig{Shards: repls})
	if err != nil {
		b.Fatal(err)
	}
	for p := uint64(0); p < parts; p++ {
		if _, err := g.RouteWrite(0, []storage.RowRef{{Table: "t", Key: p * 100}}, nil); err != nil {
			b.Fatal(err)
		}
	}
	return g
}

// BenchmarkRouteWriteParallelSharded measures aggregate routing throughput
// of the sharded control plane under concurrent client load. Each client
// sticks to one shard's partition-range (the common case: remaster chains
// keep co-accessed partitions together), so shards route with no shared
// serialization point between them.
func BenchmarkRouteWriteParallelSharded(b *testing.B) {
	const parts = 256
	for _, shards := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			g := newBenchGroup(b, 4, shards, parts)
			buckets := shardBuckets(parts, shards)
			var nextClient atomic.Int64
			b.ReportAllocs()
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				client := int(nextClient.Add(1))
				bucket := buckets[client%shards]
				i := uint64(client)
				ws := make([]storage.RowRef, 3)
				for pb.Next() {
					i++
					base := int(i*7) % len(bucket)
					ws[0] = storage.RowRef{Table: "t", Key: bucket[base] * 100}
					ws[1] = storage.RowRef{Table: "t", Key: bucket[(base+1)%len(bucket)] * 100}
					ws[2] = storage.RowRef{Table: "t", Key: bucket[(base+2)%len(bucket)] * 100}
					if _, err := g.RouteWrite(client, ws, nil); err != nil {
						b.Fatal(err)
					}
				}
			})
		})
	}
}
