package selector

import (
	"errors"
	"sync"
	"testing"
	"time"

	"dynamast/internal/obs"
	"dynamast/internal/sitemgr"
	"dynamast/internal/storage"
	"dynamast/internal/transport"
	"dynamast/internal/wal"
)

func partitionBy100(ref storage.RowRef) uint64 { return ref.Key / 100 }

func ref(key uint64) storage.RowRef { return storage.RowRef{Table: "t", Key: key} }

// newCluster builds m replicating data sites plus a selector whose initial
// placement puts every partition at site 0.
func newCluster(t *testing.T, m int, w Weights) (*Selector, []*sitemgr.Site) {
	t.Helper()
	b := wal.NewBroker(m)
	sites := make([]*sitemgr.Site, m)
	dsites := make([]DataSite, m)
	for i := 0; i < m; i++ {
		s, err := sitemgr.New(sitemgr.Config{
			SiteID: i, Sites: m, Broker: b,
			Partitioner: partitionBy100, Replicate: true,
		})
		if err != nil {
			t.Fatal(err)
		}
		s.Store().CreateTable("t")
		for p := uint64(0); p < 50; p++ {
			s.SetMaster(p, i == 0)
		}
		sites[i], dsites[i] = s, s
	}
	for _, s := range sites {
		s.Start()
	}
	sel, err := New(Config{
		Sites:       dsites,
		Partitioner: partitionBy100,
		Weights:     w,
		Stats:       StatsConfig{HistorySize: 128},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		b.Close()
		for _, s := range sites {
			s.Stop()
		}
	})
	return sel, sites
}

func TestNewValidation(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Error("empty config accepted")
	}
	if _, err := New(Config{Sites: make([]DataSite, 1)}); err == nil {
		t.Error("missing partitioner accepted")
	}
}

func TestRouteWriteSingleMasterFastPath(t *testing.T) {
	sel, _ := newCluster(t, 2, YCSBWeights())
	r, err := sel.RouteWrite(1, []storage.RowRef{ref(1), ref(50)}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if r.Site != 0 || r.Remastered {
		t.Fatalf("route = %+v, want site 0 without remastering", r)
	}
	m := sel.Metrics()
	if m.WriteTxns != 1 || m.RemasterTxns != 0 {
		t.Fatalf("metrics = %+v", m)
	}
}

func TestRouteWriteRemasters(t *testing.T) {
	sel, sites := newCluster(t, 2, YCSBWeights())
	// Split partition 1's mastership to site 1 so that a write covering
	// partitions 0 and 1 requires remastering.
	rel, err := sites[0].Release([]uint64{1}, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sites[1].Grant([]uint64{1}, rel, 0, 0); err != nil {
		t.Fatal(err)
	}
	sel.RegisterPartition(1, 1)

	r, err := sel.RouteWrite(1, []storage.RowRef{ref(1), ref(101)}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !r.Remastered {
		t.Fatal("no remastering despite split masters")
	}
	if sel.MasterOf(0) != r.Site || sel.MasterOf(1) != r.Site {
		t.Fatalf("masters not co-located: %d %d route %d",
			sel.MasterOf(0), sel.MasterOf(1), r.Site)
	}
	// The chosen site must actually master both partitions now.
	if !sites[r.Site].Masters(0) || !sites[r.Site].Masters(1) {
		t.Fatal("data site ownership does not match selector metadata")
	}
	// The transaction can begin at the chosen site at the returned vector.
	tx, err := sites[r.Site].Begin(r.MinVV, []storage.RowRef{ref(1), ref(101)})
	if err != nil {
		t.Fatal(err)
	}
	tx.Abort()
	m := sel.Metrics()
	if m.RemasterTxns != 1 || m.PartsMoved == 0 {
		t.Fatalf("metrics = %+v", m)
	}
}

func TestSubsequentWritesAmortizeRemastering(t *testing.T) {
	sel, sites := newCluster(t, 2, YCSBWeights())
	rel, _ := sites[0].Release([]uint64{1}, 1, 0)
	sites[1].Grant([]uint64{1}, rel, 0, 0)
	sel.RegisterPartition(1, 1)

	ws := []storage.RowRef{ref(1), ref(101)}
	if r, err := sel.RouteWrite(1, ws, nil); err != nil || !r.Remastered {
		t.Fatalf("first route: %+v %v", r, err)
	}
	// The same write set routes without remastering now (the paper's T2).
	r, err := sel.RouteWrite(1, ws, nil)
	if err != nil {
		t.Fatal(err)
	}
	if r.Remastered {
		t.Fatal("second identical write set remastered again")
	}
	if got := sel.Metrics().RemasterTxns; got != 1 {
		t.Fatalf("remaster count = %d", got)
	}
}

func TestBalanceSpreadsMastersAcrossSites(t *testing.T) {
	// With the balance-dominant YCSB weights and disjoint single-partition
	// write sets, remastering should distribute partitions across sites
	// rather than leaving everything at site 0. Routing alone cannot move
	// singleton write sets (they never require remastering), so drive the
	// split with two-partition write sets from distinct ranges.
	sel, sites := newCluster(t, 4, YCSBWeights())
	// Pre-split: move half the partitions' mastership via the selector by
	// issuing writes pairing a "home" partition with a fresh one.
	for p := uint64(1); p < 32; p++ {
		rel, err := sites[sel.MasterOf(p)].Release([]uint64{p}, 0, 0)
		if err != nil {
			t.Fatal(err)
		}
		// Re-grant to site 0 (no-op placement, just exercising the path).
		sites[0].Grant([]uint64{p}, rel, 0, 0)
	}
	for p := uint64(1); p < 32; p++ {
		sel.RegisterPartition(p, 0)
	}
	// Now run paired writes (p, p+32): p+32 is fresh (also at site 0), so
	// the pair is single-sited... instead pair partitions currently at
	// different sites to force remastering choices. Seed a conflict: move
	// odd partitions to site 1 first.
	for p := uint64(1); p < 32; p += 2 {
		rel, _ := sites[0].Release([]uint64{p}, 1, 0)
		sites[1].Grant([]uint64{p}, rel, 0, 0)
		sel.RegisterPartition(p, 1)
	}
	for p := uint64(0); p+1 < 32; p += 2 {
		ws := []storage.RowRef{ref(p * 100), ref((p + 1) * 100)}
		if _, err := sel.RouteWrite(int(p), ws, nil); err != nil {
			t.Fatal(err)
		}
	}
	// Count partitions per site; the balance term must have moved at
	// least some mastership off site 0.
	counts := make(map[int]int)
	for p := uint64(0); p < 32; p++ {
		counts[sel.MasterOf(p)]++
	}
	if counts[0] == 32 {
		t.Fatalf("all partitions stayed at site 0: %v", counts)
	}
}

func TestIntraTxnCoLocationLearning(t *testing.T) {
	// With balance off and intra-txn weight on, repeated co-access of
	// partitions should pull them to one site and keep them there.
	sel, sites := newCluster(t, 2, Weights{IntraTxn: 1})
	// Split partitions 0 and 1 across sites.
	rel, _ := sites[0].Release([]uint64{1}, 1, 0)
	sites[1].Grant([]uint64{1}, rel, 0, 0)
	sel.RegisterPartition(1, 1)

	ws := []storage.RowRef{ref(10), ref(110)}
	for i := 0; i < 5; i++ {
		if _, err := sel.RouteWrite(7, ws, nil); err != nil {
			t.Fatal(err)
		}
	}
	if sel.MasterOf(0) != sel.MasterOf(1) {
		t.Fatal("co-accessed partitions not co-located")
	}
	if got := sel.Metrics().RemasterTxns; got != 1 {
		t.Fatalf("remastered %d times; co-location should stick", got)
	}
}

func TestRouteReadFreshSitesOnly(t *testing.T) {
	sel, sites := newCluster(t, 3, YCSBWeights())
	// Commit one txn at site 0; a session that saw it must not be routed
	// to a site that has not applied it yet. Stop replication first so
	// sites 1,2 stay stale.
	tx, err := sites[0].Begin(nil, []storage.RowRef{ref(1)})
	if err != nil {
		t.Fatal(err)
	}
	tx.Write(ref(1), []byte("x"))
	cvv, err := tx.Commit()
	if err != nil {
		t.Fatal(err)
	}
	// Immediately route reads; only site 0 is guaranteed fresh. Replicas
	// may catch up concurrently, which is also acceptable — assert the
	// chosen site satisfies the session.
	for i := 0; i < 20; i++ {
		r := sel.RouteRead(1, cvv)
		if !sites[r.Site].SVV().DominatesEq(cvv) {
			// Permitted only if no site was fresh at decision time; then
			// the transaction blocks at the least-lagged site. Verify it
			// becomes fresh quickly (replication is running).
			deadline := time.Now().Add(2 * time.Second)
			for !sites[r.Site].SVV().DominatesEq(cvv) {
				if time.Now().After(deadline) {
					t.Fatal("routed to a site that never catches up")
				}
				time.Sleep(time.Millisecond)
			}
		}
	}
	if got := sel.Metrics().ReadTxns; got != 20 {
		t.Fatalf("read txns = %d", got)
	}
}

func TestRouteReadSpreadsLoad(t *testing.T) {
	sel, _ := newCluster(t, 4, YCSBWeights())
	counts := make(map[int]int)
	for i := 0; i < 400; i++ {
		r := sel.RouteRead(1, nil)
		counts[r.Site]++
	}
	for site := 0; site < 4; site++ {
		if counts[site] < 50 {
			t.Fatalf("site %d starved: %v", site, counts)
		}
	}
}

func TestConcurrentRoutingNoDeadlock(t *testing.T) {
	sel, _ := newCluster(t, 4, YCSBWeights())
	var wg sync.WaitGroup
	for c := 0; c < 8; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := 0; i < 40; i++ {
				a := uint64((c*7 + i) % 30)
				b := uint64((c*13 + i*3) % 30)
				ws := []storage.RowRef{ref(a * 100), ref(b * 100)}
				if _, err := sel.RouteWrite(c, ws, nil); err != nil {
					panic(err)
				}
				sel.RouteRead(c, nil)
			}
		}(c)
	}
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("routing deadlocked")
	}
	// Selector metadata and site ownership agree for every partition.
	m := sel.Metrics()
	if m.WriteTxns != 8*40 {
		t.Fatalf("write txns = %d", m.WriteTxns)
	}
}

func TestMetadataMatchesSiteOwnership(t *testing.T) {
	sel, sites := newCluster(t, 3, YCSBWeights())
	// Drive remastering, then audit agreement.
	for i := 0; i < 30; i++ {
		a := uint64(i % 10)
		b := uint64((i * 3) % 10)
		if a == b {
			continue
		}
		ws := []storage.RowRef{ref(a * 100), ref(b * 100)}
		if _, err := sel.RouteWrite(i, ws, nil); err != nil {
			t.Fatal(err)
		}
	}
	for p := uint64(0); p < 10; p++ {
		owner := sel.MasterOf(p)
		if !sites[owner].Masters(p) {
			t.Fatalf("partition %d: selector says %d, site disagrees", p, owner)
		}
		for i, s := range sites {
			if i != owner && s.Masters(p) {
				t.Fatalf("partition %d: duplicate master at %d (owner %d)", p, i, owner)
			}
		}
	}
}

func TestEmptyWriteSetRoute(t *testing.T) {
	sel, _ := newCluster(t, 2, YCSBWeights())
	r, err := sel.RouteWrite(1, nil, nil)
	if err != nil || r.Site != 0 || r.Remastered {
		t.Fatalf("empty write set route = %+v, %v", r, err)
	}
}

func TestMinVVDominatesGrantPoints(t *testing.T) {
	sel, sites := newCluster(t, 3, YCSBWeights())
	// Put partitions 0,1,2 at sites 0,1,2 and commit at each so release
	// vectors are non-trivial.
	for p := uint64(1); p <= 2; p++ {
		rel, _ := sites[0].Release([]uint64{p}, int(p), 0)
		sites[p].Grant([]uint64{p}, rel, 0, 0)
		sel.RegisterPartition(p, int(p))
	}
	for site := 0; site < 3; site++ {
		tx, err := sites[site].Begin(nil, []storage.RowRef{ref(uint64(site)*100 + 5)})
		if err != nil {
			t.Fatal(err)
		}
		tx.Write(ref(uint64(site)*100+5), []byte("x"))
		if _, err := tx.Commit(); err != nil {
			t.Fatal(err)
		}
	}
	r, err := sel.RouteWrite(1, []storage.RowRef{ref(0), ref(100), ref(200)}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !r.Remastered {
		t.Fatal("expected remastering")
	}
	// MinVV must reflect the commits at every source site other than the
	// destination (their release points included those commits).
	for site := 0; site < 3; site++ {
		if site == r.Site {
			continue
		}
		if r.MinVV[site] < 1 {
			t.Fatalf("MinVV %v misses source site %d's commit", r.MinVV, site)
		}
	}
}

func TestStatsRecordAndCoAccess(t *testing.T) {
	st := NewStats(StatsConfig{HistorySize: 8})
	now := time.Now()
	st.RecordWrite(1, []uint64{1, 2}, now)
	st.RecordWrite(1, []uint64{1, 2}, now.Add(time.Millisecond))
	st.RecordWrite(1, []uint64{1, 3}, now.Add(2*time.Millisecond))

	var got []struct {
		d2 uint64
		p  float64
	}
	st.CoAccess(1, true, func(d2 uint64, p float64) {
		got = append(got, struct {
			d2 uint64
			p  float64
		}{d2, p})
	})
	probs := map[uint64]float64{}
	for _, g := range got {
		probs[g.d2] = g.p
	}
	if !almostEqual(probs[2], 2.0/3.0) {
		t.Fatalf("P(2|1) = %g, want 2/3", probs[2])
	}
	if !almostEqual(probs[3], 1.0/3.0) {
		t.Fatalf("P(3|1) = %g, want 1/3", probs[3])
	}
}

func TestStatsInterTxnWindow(t *testing.T) {
	st := NewStats(StatsConfig{HistorySize: 8, InterWindow: 10 * time.Millisecond})
	now := time.Now()
	st.RecordWrite(1, []uint64{1}, now)
	st.RecordWrite(1, []uint64{2}, now.Add(5*time.Millisecond)) // within Δt
	st.RecordWrite(1, []uint64{3}, now.Add(time.Second))        // outside Δt

	seen := map[uint64]bool{}
	st.CoAccess(1, false, func(d2 uint64, p float64) { seen[d2] = true })
	if !seen[2] {
		t.Fatal("inter-txn pair within Δt not recorded")
	}
	if seen[3] {
		t.Fatal("inter-txn pair outside Δt recorded")
	}
	// Different clients never correlate.
	st2 := NewStats(StatsConfig{HistorySize: 8, InterWindow: time.Hour})
	st2.RecordWrite(1, []uint64{1}, now)
	st2.RecordWrite(2, []uint64{2}, now.Add(time.Millisecond))
	cnt := 0
	st2.CoAccess(1, false, func(uint64, float64) { cnt++ })
	if cnt != 0 {
		t.Fatal("cross-client inter-txn correlation recorded")
	}
}

func TestStatsExpiryAdaptsToChange(t *testing.T) {
	st := NewStats(StatsConfig{HistorySize: 4})
	now := time.Now()
	// Old workload: 1 co-accessed with 2.
	for i := 0; i < 4; i++ {
		st.RecordWrite(1, []uint64{1, 2}, now)
	}
	// New workload: 1 co-accessed with 9; history wraps, expiring the old.
	for i := 0; i < 4; i++ {
		st.RecordWrite(1, []uint64{1, 9}, now)
	}
	probs := map[uint64]float64{}
	st.CoAccess(1, true, func(d2 uint64, p float64) { probs[d2] = p })
	if probs[2] != 0 {
		t.Fatalf("expired correlation still present: P(2|1)=%g", probs[2])
	}
	if probs[9] == 0 {
		t.Fatal("new correlation not learned")
	}
}

func TestStatsAccessDecay(t *testing.T) {
	st := NewStats(StatsConfig{HistorySize: 8, DecayThreshold: 10})
	now := time.Now()
	for i := 0; i < 20; i++ {
		st.RecordWrite(1, []uint64{1}, now)
	}
	if w := st.AccessWeight(1); w >= 20 {
		t.Fatalf("access weight %g never decayed", w)
	}
	if w := st.AccessWeight(1); w <= 0 {
		t.Fatalf("access weight %g fully lost", w)
	}
}

func TestStatsSampling(t *testing.T) {
	st := NewStats(StatsConfig{HistorySize: 100, SampleEvery: 10})
	now := time.Now()
	for i := 0; i < 100; i++ {
		st.RecordWrite(1, []uint64{1, 2}, now)
	}
	// Access counts see everything; co-access only sampled transactions.
	if w := st.AccessWeight(1); w != 100 {
		t.Fatalf("access weight = %g", w)
	}
	total := 0.0
	st.CoAccess(1, true, func(_ uint64, p float64) { total += p })
	if total == 0 {
		t.Fatal("sampled co-access empty")
	}
	occ := st.occurrencesOf(1)
	if occ != 10 {
		t.Fatalf("occurrences = %g, want 10 (sampled 1/10)", occ)
	}
}

func TestSetWeights(t *testing.T) {
	sel, _ := newCluster(t, 2, YCSBWeights())
	w := Weights{Balance: 42}
	sel.SetWeights(w)
	if sel.Weights() != w {
		t.Fatal("SetWeights did not take effect")
	}
}

func TestCoAccessUnknownPartition(t *testing.T) {
	st := NewStats(StatsConfig{})
	called := false
	st.CoAccess(999, true, func(uint64, float64) { called = true })
	if called {
		t.Fatal("CoAccess on unseen partition invoked fn")
	}
}

// TestRemasterRollbackFencesPhantomGrant loses every response from the
// remaster destination back to the selector (a one-way partition): the
// destination EXECUTES the grant, but the selector observes only failures.
// The rollback must not re-grant the source under the chain's epoch — that
// would leave both sites owning, and both logs ending in a grant at the
// same epoch, so recovery would tie-break arbitrarily. Instead it fences
// the destination's phantom ownership with a fresh-epoch release before
// granting the source back.
func TestRemasterRollbackFencesPhantomGrant(t *testing.T) {
	const m = 2
	b := wal.NewBroker(m)
	net := transport.NewNetwork(transport.Instant())
	inj := transport.NewInjector(7)
	net.SetInjector(inj)
	sites := make([]*sitemgr.Site, m)
	dsites := make([]DataSite, m)
	for i := 0; i < m; i++ {
		s, err := sitemgr.New(sitemgr.Config{
			SiteID: i, Sites: m, Broker: b,
			Partitioner: partitionBy100, Replicate: true,
		})
		if err != nil {
			t.Fatal(err)
		}
		s.Store().CreateTable("t")
		s.SetMaster(0, i == 0)
		sites[i], dsites[i] = s, s
	}
	for _, s := range sites {
		s.Start()
	}
	sel, err := New(Config{
		Sites:       dsites,
		Partitioner: partitionBy100,
		Weights:     YCSBWeights(),
		Net:         net,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		b.Close()
		for _, s := range sites {
			s.Stop()
		}
	})
	info := sel.part(0) // places partition 0 at site 0

	// Everything the destination sends back to the selector is lost: its
	// grant executes, but neither the response nor any retry's arrives.
	inj.PartitionOneWay(1, transport.SelectorNode)

	info.mu.Lock()
	_, _, err = sel.remaster([]uint64{0}, []*partInfo{info}, 1, obs.SpanContext{})
	info.mu.Unlock()
	if err == nil {
		t.Fatal("remaster with every destination response lost should fail")
	}

	// The rollback restored the source and fenced the destination's phantom
	// ownership: exactly one live master.
	if !sites[0].Masters(0) {
		t.Fatal("source does not master the partition after rollback")
	}
	if sites[1].Masters(0) {
		t.Fatal("destination kept phantom ownership after rollback — dual master")
	}
	if got := sel.MasterOf(0); got != 0 {
		t.Fatalf("selector maps partition to %d, want 0", got)
	}
	// Log-based recovery agrees: the rollback grant out-epochs the phantom
	// grant, so arbitration is unambiguous.
	if owner := sitemgr.RecoverMastership(b, nil); owner[0] != 0 {
		t.Fatalf("recovered owner = %d, want 0", owner[0])
	}
}

// With every site flagged down, a write set whose masters are distributed
// must fail fast with a retryable error rather than remastering into a
// known-dead destination.
func TestRouteWriteAllSitesDownFailsFast(t *testing.T) {
	sel, sites := newCluster(t, 2, YCSBWeights())
	// Split the write set's masters so routing needs a remaster destination.
	sel.RegisterPartition(1, 1)
	sites[0].SetMaster(1, false)
	sites[1].SetMaster(1, true)
	sel.MarkDown(0)
	sel.MarkDown(1)
	_, err := sel.RouteWrite(0, []storage.RowRef{ref(50), ref(150)}, nil)
	if err == nil {
		t.Fatal("routing with every site down should fail")
	}
	if !errors.Is(err, sitemgr.ErrSiteDown) {
		t.Fatalf("err = %v, want ErrSiteDown (retryable)", err)
	}
}
