package selector

import (
	"sync"
	"sync/atomic"
	"time"

	"dynamast/internal/obs"
	"dynamast/internal/storage"
	"dynamast/internal/transport"
	"dynamast/internal/vclock"
)

// Replica is a replica site-selector (Appendix I): a scalability tier in
// front of the master selector. It holds a possibly stale copy of the
// partition-location metadata; write transactions whose (cached) masters
// are all at one site are routed directly — no master-selector involvement
// — and only transactions that appear to need remastering are forwarded to
// the master. Because remastering is rare, replicas stay fresh and absorb
// nearly all routing load.
//
// Stale metadata is possible: a data site rejects transactions for
// partitions it no longer masters (sitemgr.ErrNotMaster), and the client
// resubmits through the master selector, which performs any remastering
// and refreshes this replica's cache.
//
// Under the HA tier (lease.go) each replica doubles as a hot standby: the
// leader's delta feed keeps the replica's mirror — owner plus the epoch
// that installed it — continuously fresh, and a promotion reconciles that
// mirror against the sites' WAL fold to become the new leader's map.
type Replica struct {
	master *Replicated
	net    *transport.Network

	mu    sync.RWMutex
	cache map[uint64]int
	// epochs mirrors the install epoch of each cached owner (fed by the
	// HA delta stream; lazily cached lookups carry epoch 0, which never
	// out-arbitrates a fold entry during promotion reconciliation).
	epochs map[uint64]uint64
	// feedSeq is the last delta-feed sequence number ingested; the
	// leader's sequence minus this is the standby's lag.
	feedSeq atomic.Uint64

	// resubmits counts stale-metadata fallbacks routed through
	// RouteToMaster after a data site rejected a transaction.
	resubmits atomic.Uint64
}

// Replicated wraps a master Selector with its replica tier. Under HA the
// leader pointer is swapped on promotion; Master keeps naming the initial
// leader for compatibility.
type Replicated struct {
	Master   *Selector
	replicas []*Replica
	net      *transport.Network
	leader   atomic.Pointer[Selector]
	ha       *HA

	// feedSink is an extra consumer of the leader's mastership delta feed
	// (the sharded selector's gossiped placement cache). It survives leader
	// swaps: under HA the broadcast fan-out forwards each delta here, and
	// without HA the Group wires the master's feed to deliverDelta directly.
	feedSink atomic.Pointer[func(parts []uint64, site int, epoch uint64)]
}

// setFeedSink installs (or clears) the extra delta-feed consumer.
func (r *Replicated) setFeedSink(f func(parts []uint64, site int, epoch uint64)) {
	if f == nil {
		r.feedSink.Store(nil)
		return
	}
	r.feedSink.Store(&f)
}

// deliverDelta hands one committed mastership flip to the feed sink, if any.
func (r *Replicated) deliverDelta(parts []uint64, site int, epoch uint64) {
	if f := r.feedSink.Load(); f != nil {
		(*f)(parts, site, epoch)
	}
}

// NewReplicated builds n replica selectors over master.
func NewReplicated(master *Selector, n int, net *transport.Network) *Replicated {
	r := &Replicated{Master: master, net: net}
	r.leader.Store(master)
	for i := 0; i < n; i++ {
		r.replicas = append(r.replicas, &Replica{
			master: r,
			net:    net,
			cache:  make(map[uint64]int),
			epochs: make(map[uint64]uint64),
		})
	}
	return r
}

// Replicas returns the replica tier.
func (r *Replicated) Replicas() []*Replica { return r.replicas }

// Leader returns the selector currently holding leadership (the master
// outside HA deployments).
func (r *Replicated) Leader() *Selector { return r.leader.Load() }

// HA returns the high-availability state machine, nil unless EnableHA ran.
func (r *Replicated) HA() *HA { return r.ha }

// LearnAll installs fresh partition locations in every replica's cache
// (failover uses it so replicas stop routing at a dead site immediately,
// rather than waiting for each cached entry's ErrNotMaster bounce).
func (r *Replicated) LearnAll(parts []uint64, site int) {
	for _, rep := range r.replicas {
		rep.Learn(parts, site)
	}
}

// RouterFor assigns a client a selector: replicas round-robin, or the
// master when no replicas exist.
func (r *Replicated) RouterFor(client int) Router {
	if len(r.replicas) == 0 {
		return r.Master
	}
	return r.replicas[client%len(r.replicas)]
}

// Router is the routing interface sessions use; *Selector and *Replica
// both implement it.
type Router interface {
	RouteWrite(client int, writeSet []storage.RowRef, cvv vclock.Vector) (Route, error)
	RouteRead(client int, cvv vclock.Vector) Route
}

// sel returns the selector this replica currently forwards to: the live
// leader under HA, the static master otherwise.
func (r *Replica) sel() *Selector { return r.master.Leader() }

// lookup returns the replica's cached master for a partition, filling the
// cache from the master's metadata on a miss (modelled as part of the
// replica's asynchronous metadata feed; misses are free of master work).
func (r *Replica) lookup(part uint64) int {
	r.mu.RLock()
	m, ok := r.cache[part]
	r.mu.RUnlock()
	if ok {
		return m
	}
	m = r.sel().MasterOf(part)
	r.mu.Lock()
	r.cache[part] = m
	r.mu.Unlock()
	return m
}

// Learn installs fresh locations (called after a master-routed decision).
// The mirrored install epochs are untouched: Learn's source is the
// leader's live map, whose epoch the delta feed delivers separately.
func (r *Replica) Learn(parts []uint64, site int) {
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, p := range parts {
		r.cache[p] = site
	}
}

// ingest applies one leader delta to the standby mirror. Deltas for the
// same partition arrive in epoch order (the leader publishes under the
// partition's exclusive lock), but a lower-epoch straggler racing a
// failover registration is still discarded by the epoch comparison.
func (r *Replica) ingest(seq uint64, parts []uint64, site int, epoch uint64) {
	r.mu.Lock()
	for _, p := range parts {
		if epoch >= r.epochs[p] {
			r.cache[p] = site
			r.epochs[p] = epoch
		}
	}
	r.mu.Unlock()
	r.feedSeq.Store(seq)
}

// seedMirror replaces the standby mirror (and routing cache) with a full
// placement snapshot — HA wiring at start, and re-seeding after a
// promotion reconciled the map.
func (r *Replica) seedMirror(placement map[uint64]int, epochs map[uint64]uint64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.cache = make(map[uint64]int, len(placement))
	r.epochs = make(map[uint64]uint64, len(placement))
	for p, site := range placement {
		r.cache[p] = site
		r.epochs[p] = epochs[p]
	}
}

// Mirror copies the standby's mirrored placement: owner and install epoch
// per partition. Promotion reconciles it against the WAL fold.
func (r *Replica) Mirror() (map[uint64]int, map[uint64]uint64) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	owner := make(map[uint64]int, len(r.cache))
	epochs := make(map[uint64]uint64, len(r.cache))
	for p, site := range r.cache {
		owner[p] = site
		epochs[p] = r.epochs[p]
	}
	return owner, epochs
}

// FeedSeq returns the last delta-feed sequence number this standby
// ingested.
func (r *Replica) FeedSeq() uint64 { return r.feedSeq.Load() }

// Resubmits returns how many stale-metadata resubmits this replica routed
// through the master selector.
func (r *Replica) Resubmits() uint64 { return r.resubmits.Load() }

// RouteWrite implements Router. If the cached locations are single-sited,
// the replica routes locally; otherwise it forwards to the master
// selector (one extra routing hop), learning the outcome.
func (r *Replica) RouteWrite(client int, writeSet []storage.RowRef, cvv vclock.Vector) (Route, error) {
	return r.routeWrite(client, writeSet, cvv, obs.SpanContext{})
}

// RouteWriteTraced is RouteWrite carrying a sampled trace context: a
// forwarded decision hands sc to the master selector, whose remaster
// chains record their release/grant spans under it. Locally decided
// (single-sited) routes involve no remastering, so no extra spans arise.
func (r *Replica) RouteWriteTraced(client int, writeSet []storage.RowRef, cvv vclock.Vector, sc obs.SpanContext) (Route, error) {
	return r.routeWrite(client, writeSet, cvv, sc)
}

func (r *Replica) routeWrite(client int, writeSet []storage.RowRef, cvv vclock.Vector, sc obs.SpanContext) (Route, error) {
	sel := r.sel()
	parts := sel.writeParts(writeSet)
	if len(parts) == 0 {
		return Route{Site: 0}, nil
	}
	single := true
	site := r.lookup(parts[0])
	for _, p := range parts[1:] {
		if r.lookup(p) != site {
			single = false
			break
		}
	}
	if single {
		// Local decision; record statistics at the master tier so the
		// strategies keep learning (the paper's replicas feed samples
		// back asynchronously).
		sel.finishWrite(client, parts, site, time.Now())
		return Route{Site: site}, nil
	}
	// Forward to the master selector: one replica->master round trip, each
	// leg exposed to injected wire faults (a lost leg is retryable at the
	// session; the decision itself is stateless until it returns).
	if err := r.forward(transport.MsgOverhead + transport.SizeOfRefs(writeSet)); err != nil {
		return Route{}, err
	}
	route, err := sel.routeWrite(client, writeSet, cvv, sc)
	if err == nil {
		r.Learn(parts, route.Site)
	}
	return route, err
}

// forward charges (and fault-exposes) the replica -> master request leg
// and the response leg of a forwarded routing decision.
func (r *Replica) forward(reqSize int) error {
	if err := r.net.SendTo(transport.CatRoute, transport.SelectorNode, transport.SelectorNode, reqSize); err != nil {
		return err
	}
	return r.net.SendTo(transport.CatRoute, transport.SelectorNode, transport.SelectorNode, transport.MsgOverhead)
}

// RouteToMaster is the stale-metadata fallback: the client's transaction
// was rejected by a data site, so resubmit through the master selector and
// refresh the cache.
func (r *Replica) RouteToMaster(client int, writeSet []storage.RowRef, cvv vclock.Vector) (Route, error) {
	return r.RouteToMasterTraced(client, writeSet, cvv, obs.SpanContext{})
}

// RouteToMasterTraced is RouteToMaster under a sampled distributed trace:
// the resubmitted decision's remaster chains record their release/grant
// spans as children of sc.Span, so stale-metadata bounces stay visible in
// the transaction's trace instead of vanishing between two route spans.
func (r *Replica) RouteToMasterTraced(client int, writeSet []storage.RowRef, cvv vclock.Vector, sc obs.SpanContext) (Route, error) {
	r.resubmits.Add(1)
	sel := r.sel()
	if err := r.forward(transport.MsgOverhead + transport.SizeOfRefs(writeSet)); err != nil {
		return Route{}, err
	}
	route, err := sel.routeWrite(client, writeSet, cvv, sc)
	if err == nil {
		r.Learn(sel.writeParts(writeSet), route.Site)
	}
	return route, err
}

// RouteRead implements Router: read routing does not change in the
// distributed design (any sufficiently fresh replica site works), and it
// keeps working off the current leader's site vectors even while that
// leader is deposed — reads never touch the mastership map.
func (r *Replica) RouteRead(client int, cvv vclock.Vector) Route {
	return r.sel().RouteRead(client, cvv)
}

// RouteReadParts routes a read restricted to the sites hosting the given
// partitions (partial replication). Replica sets live only at the leader, so
// the decision delegates; like RouteRead it stays available while deposed.
func (r *Replica) RouteReadParts(client int, cvv vclock.Vector, parts []uint64) Route {
	return r.sel().RouteReadParts(client, cvv, parts)
}

// CacheSize returns the number of cached partition locations.
func (r *Replica) CacheSize() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.cache)
}
