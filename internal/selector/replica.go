package selector

import (
	"sync"
	"time"

	"dynamast/internal/obs"
	"dynamast/internal/storage"
	"dynamast/internal/transport"
	"dynamast/internal/vclock"
)

// Replica is a replica site-selector (Appendix I): a scalability tier in
// front of the master selector. It holds a possibly stale copy of the
// partition-location metadata; write transactions whose (cached) masters
// are all at one site are routed directly — no master-selector involvement
// — and only transactions that appear to need remastering are forwarded to
// the master. Because remastering is rare, replicas stay fresh and absorb
// nearly all routing load.
//
// Stale metadata is possible: a data site rejects transactions for
// partitions it no longer masters (sitemgr.ErrNotMaster), and the client
// resubmits through the master selector, which performs any remastering
// and refreshes this replica's cache.
type Replica struct {
	master *Replicated
	parent *Selector
	net    *transport.Network

	mu    sync.RWMutex
	cache map[uint64]int
}

// Replicated wraps a master Selector with its replica tier.
type Replicated struct {
	Master   *Selector
	replicas []*Replica
}

// NewReplicated builds n replica selectors over master.
func NewReplicated(master *Selector, n int, net *transport.Network) *Replicated {
	r := &Replicated{Master: master}
	for i := 0; i < n; i++ {
		r.replicas = append(r.replicas, &Replica{
			master: r,
			parent: master,
			net:    net,
			cache:  make(map[uint64]int),
		})
	}
	return r
}

// Replicas returns the replica tier.
func (r *Replicated) Replicas() []*Replica { return r.replicas }

// RouterFor assigns a client a selector: replicas round-robin, or the
// master when no replicas exist.
func (r *Replicated) RouterFor(client int) Router {
	if len(r.replicas) == 0 {
		return r.Master
	}
	return r.replicas[client%len(r.replicas)]
}

// Router is the routing interface sessions use; *Selector and *Replica
// both implement it.
type Router interface {
	RouteWrite(client int, writeSet []storage.RowRef, cvv vclock.Vector) (Route, error)
	RouteRead(client int, cvv vclock.Vector) Route
}

// lookup returns the replica's cached master for a partition, filling the
// cache from the master's metadata on a miss (modelled as part of the
// replica's asynchronous metadata feed; misses are free of master work).
func (r *Replica) lookup(part uint64) int {
	r.mu.RLock()
	m, ok := r.cache[part]
	r.mu.RUnlock()
	if ok {
		return m
	}
	m = r.parent.MasterOf(part)
	r.mu.Lock()
	r.cache[part] = m
	r.mu.Unlock()
	return m
}

// Learn installs fresh locations (called after a master-routed decision).
func (r *Replica) Learn(parts []uint64, site int) {
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, p := range parts {
		r.cache[p] = site
	}
}

// RouteWrite implements Router. If the cached locations are single-sited,
// the replica routes locally; otherwise it forwards to the master
// selector (one extra routing hop), learning the outcome.
func (r *Replica) RouteWrite(client int, writeSet []storage.RowRef, cvv vclock.Vector) (Route, error) {
	return r.routeWrite(client, writeSet, cvv, obs.SpanContext{})
}

// RouteWriteTraced is RouteWrite carrying a sampled trace context: a
// forwarded decision hands sc to the master selector, whose remaster
// chains record their release/grant spans under it. Locally decided
// (single-sited) routes involve no remastering, so no extra spans arise.
func (r *Replica) RouteWriteTraced(client int, writeSet []storage.RowRef, cvv vclock.Vector, sc obs.SpanContext) (Route, error) {
	return r.routeWrite(client, writeSet, cvv, sc)
}

func (r *Replica) routeWrite(client int, writeSet []storage.RowRef, cvv vclock.Vector, sc obs.SpanContext) (Route, error) {
	parts := r.parent.writeParts(writeSet)
	if len(parts) == 0 {
		return Route{Site: 0}, nil
	}
	single := true
	site := r.lookup(parts[0])
	for _, p := range parts[1:] {
		if r.lookup(p) != site {
			single = false
			break
		}
	}
	if single {
		// Local decision; record statistics at the master tier so the
		// strategies keep learning (the paper's replicas feed samples
		// back asynchronously).
		r.parent.finishWrite(client, parts, site, time.Now())
		return Route{Site: site}, nil
	}
	// Forward to the master selector: one replica->master round trip.
	r.net.RoundTrip(transport.CatRoute,
		transport.MsgOverhead+transport.SizeOfRefs(writeSet), transport.MsgOverhead)
	route, err := r.parent.routeWrite(client, writeSet, cvv, sc)
	if err == nil {
		r.Learn(parts, route.Site)
	}
	return route, err
}

// RouteToMaster is the stale-metadata fallback: the client's transaction
// was rejected by a data site, so resubmit through the master selector and
// refresh the cache.
func (r *Replica) RouteToMaster(client int, writeSet []storage.RowRef, cvv vclock.Vector) (Route, error) {
	r.net.RoundTrip(transport.CatRoute,
		transport.MsgOverhead+transport.SizeOfRefs(writeSet), transport.MsgOverhead)
	route, err := r.parent.RouteWrite(client, writeSet, cvv)
	if err == nil {
		r.Learn(r.parent.writeParts(writeSet), route.Site)
	}
	return route, err
}

// RouteRead implements Router: read routing does not change in the
// distributed design (any sufficiently fresh replica site works).
func (r *Replica) RouteRead(client int, cvv vclock.Vector) Route {
	return r.parent.RouteRead(client, cvv)
}

// CacheSize returns the number of cached partition locations.
func (r *Replica) CacheSize() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.cache)
}
