package selector

import (
	"math/rand"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"dynamast/internal/vclock"
)

// Adaptive partial replication: each partition carries an explicit replica
// set instead of the implicit "every site replicates everything". The
// selector owns the authoritative membership metadata (routing consults it),
// a PlacementPolicy decides each partition's desired replica set from the
// learned workload statistics, and a PlacementController diffs desired
// against actual and drives replica adds/drops through a ReplicaMover (the
// core cluster, which performs the site-level bootstrap and purge). The
// shape follows DynamicCache/DynaMast's other control loops: observe decayed
// access statistics, decide per partition, converge with a bounded number of
// moves per tick.
//
// Invariant: a partition's master is always a member of its replica set.
// Remaster chains add the destination before granting (see routeWrite),
// failover re-grants only after the heir hosts, and every mastership
// metadata flip folds the master into the set.

// SiteID identifies a data site in placement decisions (an index into the
// cluster's site slice).
type SiteID = int

// PartitionStats is the per-partition workload summary handed to a
// PlacementPolicy.
type PartitionStats struct {
	// Partition is the partition id.
	Partition uint64
	// Master is the current master site.
	Master SiteID
	// Replicas is the current replica set (sorted; includes Master).
	Replicas []SiteID
	// Sites is the cluster's site count.
	Sites int
	// MinReplicas and MaxReplicas bound the sizes a decision may return;
	// the controller clamps decisions outside them.
	MinReplicas int
	MaxReplicas int
	// ReadWeight is the partition's decayed recent read access count.
	ReadWeight float64
	// WriteWeight is the partition's decayed recent write access count.
	WriteWeight float64
}

// PlacementPolicy decides a partition's desired replica set. Decide is
// called by the placement controller once per partition per tick with no
// selector locks held; implementations must be safe for concurrent use.
// Returned sets are normalized by the controller: deduplicated, clamped to
// valid site ids, forced to contain the master, and clamped to the
// configured size bounds.
type PlacementPolicy interface {
	Decide(stats PartitionStats) []SiteID
}

// AdaptivePolicy is the default placement policy: partitions earn replicas
// where reads concentrate and shed them as access decays. The desired size
// is MinReplicas plus one replica per ReadsPerReplica units of decayed read
// weight, clamped to MaxReplicas; membership keeps the master and the
// longest-standing current replicas for stability, filling new slots
// round-robin from the master.
type AdaptivePolicy struct {
	// ReadsPerReplica is the decayed read weight that justifies one replica
	// beyond the minimum (default 64).
	ReadsPerReplica float64
}

// Decide implements PlacementPolicy.
func (a AdaptivePolicy) Decide(st PartitionStats) []SiteID {
	per := a.ReadsPerReplica
	if per <= 0 {
		per = 64
	}
	size := st.MinReplicas + int(st.ReadWeight/per)
	if size > st.MaxReplicas {
		size = st.MaxReplicas
	}
	if size < st.MinReplicas {
		size = st.MinReplicas
	}
	out := make([]SiteID, 0, size)
	out = append(out, st.Master)
	for _, r := range st.Replicas {
		if len(out) >= size {
			break
		}
		if !containsSite(out, r) {
			out = append(out, r)
		}
	}
	for i := 1; len(out) < size && i < st.Sites; i++ {
		if cand := (st.Master + i) % st.Sites; !containsSite(out, cand) {
			out = append(out, cand)
		}
	}
	return out
}

// StaticFullReplication places every partition at every site — the
// pre-placement behavior as an explicit policy. Clusters constructed with it
// (and no replication-factor bounds) bypass partial replication entirely.
type StaticFullReplication struct{}

// Decide implements PlacementPolicy.
func (StaticFullReplication) Decide(st PartitionStats) []SiteID {
	out := make([]SiteID, st.Sites)
	for i := range out {
		out[i] = i
	}
	return out
}

func containsSite(s []SiteID, v SiteID) bool {
	for _, x := range s {
		if x == v {
			return true
		}
	}
	return false
}

// DefaultReplicaSet builds the deterministic seed membership function shared
// by the selector's placement metadata and the sites' hosting maps: partition
// p starts replicated at its initial master and the rf-1 sites following it
// round-robin. Both layers computing membership from the same function is
// what lets a cold cluster route reads before any placement metadata exists.
func DefaultReplicaSet(initial func(part uint64) int, sites, rf int) func(part uint64) []int {
	if rf > sites {
		rf = sites
	}
	if rf < 1 {
		rf = 1
	}
	return func(part uint64) []int {
		base := initial(part) % sites
		set := make([]int, rf)
		for i := range set {
			set[i] = (base + i) % sites
		}
		sort.Ints(set)
		return set
	}
}

// PlacementDecision records one replica add or drop for the decision log
// surfaced by dynactl placement.
type PlacementDecision struct {
	Part   uint64    `json:"part"`
	Site   int       `json:"site"`
	Add    bool      `json:"add"` // false = drop
	Reason string    `json:"reason,omitempty"`
	At     time.Time `json:"at"`
}

// PlacementInfo is a point-in-time snapshot of the cluster's placement
// state (Cluster.Placement).
type PlacementInfo struct {
	// FullReplication reports the pre-placement mode: every site hosts
	// everything and the remaining fields (except Masters) are empty.
	FullReplication bool `json:"full_replication"`
	// MinReplicas and MaxReplicas are the configured replication-factor
	// bounds (zero under full replication).
	MinReplicas int `json:"min_replicas,omitempty"`
	MaxReplicas int `json:"max_replicas,omitempty"`
	// Partitions maps each tracked partition to its sorted replica set.
	Partitions map[uint64][]int `json:"partitions,omitempty"`
	// Masters maps each tracked partition to its current master site.
	Masters map[uint64]int `json:"masters"`
	// Residency is the per-site count of partitions with resident rows.
	Residency []int `json:"residency,omitempty"`
	// Adds and Drops count replica-set changes since startup.
	Adds  uint64 `json:"adds"`
	Drops uint64 `json:"drops"`
	// Decisions are the most recent add/drop decisions, oldest first.
	Decisions []PlacementDecision `json:"decisions,omitempty"`
	// Shards is the router-shard count when the control plane is sharded
	// (0 or 1 = single router).
	Shards int `json:"shards,omitempty"`
}

// placementDecisionRing bounds the retained decision log.
const placementDecisionRing = 64

// placementState is the selector's replica-set metadata for partial
// replication (nil on fully replicating selectors).
type placementState struct {
	mu     sync.RWMutex
	min    int
	max    int
	defSet func(part uint64) []int
	sets   map[uint64][]int // sorted; absent partitions use defSet

	decisions []PlacementDecision // ring, decHead is the next write slot
	decHead   int
	decLen    int

	adds  atomic.Uint64
	drops atomic.Uint64
}

func newPlacementState(min, max, sites int, defSet func(part uint64) []int) *placementState {
	if min < 1 {
		min = 1
	}
	if min > sites {
		min = sites
	}
	if max < min {
		max = sites
	}
	if max > sites {
		max = sites
	}
	return &placementState{
		min:    min,
		max:    max,
		defSet: defSet,
		sets:   make(map[uint64][]int),
	}
}

// setLocked returns part's replica set, materializing the seed set on first
// touch so later membership edits have a concrete slice to modify.
func (ps *placementState) setLocked(part uint64) []int {
	if set, ok := ps.sets[part]; ok {
		return set
	}
	set := ps.defSet(part)
	ps.sets[part] = set
	return set
}

func (ps *placementState) recordLocked(d PlacementDecision) {
	if len(ps.decisions) < placementDecisionRing {
		ps.decisions = append(ps.decisions, d)
		ps.decLen = len(ps.decisions)
		ps.decHead = ps.decLen % placementDecisionRing
		return
	}
	ps.decisions[ps.decHead] = d
	ps.decHead = (ps.decHead + 1) % placementDecisionRing
}

// PartialPlacement reports whether this selector tracks per-partition
// replica sets (partial replication mode).
func (s *Selector) PartialPlacement() bool { return s.placement != nil }

// ReplicationBounds returns the configured (min, max) replication factor;
// (0, 0) under full replication.
func (s *Selector) ReplicationBounds() (int, int) {
	ps := s.placement
	if ps == nil {
		return 0, 0
	}
	return ps.min, ps.max
}

// ReplicaSet returns part's current replica set (sorted). Under full
// replication every site is a member.
func (s *Selector) ReplicaSet(part uint64) []int {
	ps := s.placement
	if ps == nil {
		all := make([]int, s.m)
		for i := range all {
			all[i] = i
		}
		return all
	}
	ps.mu.RLock()
	defer ps.mu.RUnlock()
	if set, ok := ps.sets[part]; ok {
		return append([]int(nil), set...)
	}
	return ps.defSet(part)
}

// HostsAt reports whether site is in part's replica set. Always true under
// full replication.
func (s *Selector) HostsAt(part uint64, site int) bool {
	ps := s.placement
	if ps == nil {
		return true
	}
	ps.mu.RLock()
	defer ps.mu.RUnlock()
	return containsSite(ps.memberViewLocked(part), site)
}

// memberViewLocked returns part's membership without copying (callers hold
// ps.mu and must not retain the slice).
func (ps *placementState) memberViewLocked(part uint64) []int {
	if set, ok := ps.sets[part]; ok {
		return set
	}
	return ps.defSet(part)
}

// AddReplicaMeta records site as a member of part's replica set (metadata
// only — the site-level bootstrap is the mover's job, which calls this after
// the data flip). Returns false when site was already a member.
func (s *Selector) AddReplicaMeta(part uint64, site int, reason string) bool {
	ps := s.placement
	if ps == nil || site < 0 || site >= s.m {
		return false
	}
	ps.mu.Lock()
	defer ps.mu.Unlock()
	set := ps.setLocked(part)
	if containsSite(set, site) {
		return false
	}
	set = append(set, site)
	sort.Ints(set)
	ps.sets[part] = set
	ps.adds.Add(1)
	ps.recordLocked(PlacementDecision{Part: part, Site: site, Add: true, Reason: reason, At: time.Now()})
	return true
}

// DropReplicaMeta removes site from part's replica set (metadata only; the
// mover purges the site afterwards — reads stop routing there the moment
// this returns). Refuses to shrink the set below the configured minimum or
// below one member, returning false.
func (s *Selector) DropReplicaMeta(part uint64, site int, reason string) bool {
	ps := s.placement
	if ps == nil {
		return false
	}
	ps.mu.Lock()
	defer ps.mu.Unlock()
	set := ps.setLocked(part)
	if !containsSite(set, site) || len(set) <= 1 || len(set) <= ps.min {
		return false
	}
	out := make([]int, 0, len(set)-1)
	for _, m := range set {
		if m != site {
			out = append(out, m)
		}
	}
	ps.sets[part] = out
	ps.drops.Add(1)
	ps.recordLocked(PlacementDecision{Part: part, Site: site, Add: false, Reason: reason, At: time.Now()})
	return true
}

// DropSiteReplicas removes a dead site from every replica set (failover
// metadata cleanup; no site-level purge — the site is gone). Sets at or
// below the minimum still shed the dead member: a dead replica serves
// nothing, and the controller restores the factor on later ticks. Returns
// the partitions whose sets changed.
func (s *Selector) DropSiteReplicas(site int) []uint64 {
	ps := s.placement
	if ps == nil {
		return nil
	}
	ps.mu.Lock()
	defer ps.mu.Unlock()
	var changed []uint64
	for part, set := range ps.sets {
		if !containsSite(set, site) || len(set) <= 1 {
			continue
		}
		out := make([]int, 0, len(set)-1)
		for _, m := range set {
			if m != site {
				out = append(out, m)
			}
		}
		ps.sets[part] = out
		ps.drops.Add(1)
		ps.recordLocked(PlacementDecision{Part: part, Site: site, Add: false, Reason: "site failed", At: time.Now()})
		changed = append(changed, part)
	}
	return changed
}

// noteMaster folds a committed mastership flip into the replica-set
// metadata, preserving the master-is-a-member invariant. Metadata only: the
// mastership protocol has already materialized the data at the site (grants
// are preceded by replica adds under partial replication).
func (s *Selector) noteMaster(parts []uint64, site int) {
	ps := s.placement
	if ps == nil || site < 0 || site >= s.m {
		return
	}
	ps.mu.Lock()
	defer ps.mu.Unlock()
	for _, part := range parts {
		set := ps.setLocked(part)
		if containsSite(set, site) {
			continue
		}
		set = append(set, site)
		sort.Ints(set)
		ps.sets[part] = set
	}
}

// PlacementTable snapshots every explicitly tracked replica set (checkpoint
// manifests persist it; partitions still on the seed membership are omitted
// — recovery re-derives them from the same DefaultReplicaSet function).
func (s *Selector) PlacementTable() map[uint64][]int {
	ps := s.placement
	if ps == nil {
		return nil
	}
	ps.mu.RLock()
	defer ps.mu.RUnlock()
	out := make(map[uint64][]int, len(ps.sets))
	for part, set := range ps.sets {
		out[part] = append([]int(nil), set...)
	}
	return out
}

// AdoptReplicaSets installs checkpointed replica sets (recovery). Metadata
// only; the recovery path separately folds the same membership into each
// site's hosting map.
func (s *Selector) AdoptReplicaSets(sets map[uint64][]int) {
	ps := s.placement
	if ps == nil {
		return
	}
	ps.mu.Lock()
	defer ps.mu.Unlock()
	for part, set := range sets {
		cp := append([]int(nil), set...)
		sort.Ints(cp)
		ps.sets[part] = cp
	}
}

// PlacementInfo assembles the selector's half of a placement snapshot (the
// cluster adds per-site residency).
func (s *Selector) PlacementInfo() PlacementInfo {
	masters, _ := s.PlacementSnapshot()
	ps := s.placement
	if ps == nil {
		return PlacementInfo{FullReplication: true, Masters: masters}
	}
	info := PlacementInfo{
		MinReplicas: ps.min,
		MaxReplicas: ps.max,
		Masters:     masters,
		Partitions:  make(map[uint64][]int, len(masters)),
		Adds:        ps.adds.Load(),
		Drops:       ps.drops.Load(),
	}
	ps.mu.RLock()
	for part := range masters {
		info.Partitions[part] = append([]int(nil), ps.memberViewLocked(part)...)
	}
	if ps.decLen > 0 {
		info.Decisions = make([]PlacementDecision, 0, ps.decLen)
		start := 0
		if ps.decLen == placementDecisionRing {
			start = ps.decHead
		}
		for i := 0; i < ps.decLen; i++ {
			info.Decisions = append(info.Decisions, ps.decisions[(start+i)%placementDecisionRing])
		}
	}
	ps.mu.RUnlock()
	return info
}

// SetReplicaEnsurer installs the callback routing uses to materialize a
// replica before depending on it: ensure(parts, site) must make site a
// hosting member of every partition in parts (idempotent). The core cluster
// wires its AddReplica here. Called during construction, before traffic.
func (s *Selector) SetReplicaEnsurer(ensure func(parts []uint64, site int) error) {
	s.ensureReplica = ensure
}

// ensureHostedAt makes site a hosting replica of every partition in parts,
// via the installed ensurer. Fast no-op when the metadata already shows
// membership (the common case: masters are members by invariant). Safe to
// call while holding partition routing locks — the ensurer takes only
// placement, hosting, and apply locks, never partition-map locks.
func (s *Selector) ensureHostedAt(parts []uint64, site int) error {
	ps := s.placement
	if ps == nil {
		return nil
	}
	var missing []uint64
	ps.mu.RLock()
	for _, part := range parts {
		if !containsSite(ps.memberViewLocked(part), site) {
			missing = append(missing, part)
		}
	}
	ps.mu.RUnlock()
	if len(missing) == 0 || s.ensureReplica == nil {
		return nil
	}
	return s.ensureReplica(missing, site)
}

// commonHosts returns the sites hosting every partition in parts (sorted).
func (s *Selector) commonHosts(parts []uint64) []int {
	ps := s.placement
	ps.mu.RLock()
	defer ps.mu.RUnlock()
	var out []int
	for i, part := range parts {
		set := ps.memberViewLocked(part)
		if i == 0 {
			out = append(out, set...)
			continue
		}
		kept := out[:0]
		for _, m := range out {
			if containsSite(set, m) {
				kept = append(kept, m)
			}
		}
		out = kept
		if len(out) == 0 {
			return nil
		}
	}
	return out
}

// RouteReadParts routes a read-only transaction whose read set touches the
// given partitions: among the sites hosting every partition, a random one
// already satisfying the client's session freshness, else the least-lagged
// host (RouteRead's policy restricted to the replica sets). Reads with no
// common host fall back to the first partition's replica set — the session
// retries the remainder elsewhere on ErrNotHosted. The access feeds the
// read-weight statistics driving the adaptive placement policy.
func (s *Selector) RouteReadParts(client int, cvv vclock.Vector, parts []uint64) Route {
	if s.placement == nil || len(parts) == 0 {
		return s.RouteRead(client, cvv)
	}
	s.stats.RecordRead(client, parts)
	hosts := s.commonHosts(parts)
	if len(hosts) == 0 {
		hosts = s.commonHosts(parts[:1])
	}
	s.readTxns.Add(1)
	s.ob.readTxns.Inc()
	fresh := make([]int, 0, len(hosts))
	bestLag, bestSite := uint64(1)<<63, -1
	for _, i := range hosts {
		if s.downSites[i].Load() {
			continue
		}
		svv := s.sites[i].SVV()
		if svv.DominatesEq(cvv) {
			fresh = append(fresh, i)
			continue
		}
		if lag := svv.LagBehind(cvv); lag < bestLag {
			bestLag, bestSite = lag, i
		}
	}
	if len(fresh) == 0 {
		if bestSite < 0 {
			// Every host is down; route to the master (failover will have
			// re-homed it) so the error surfaced is the site's own.
			return Route{Site: s.MasterOf(parts[0])}
		}
		return Route{Site: bestSite}
	}
	rng := s.rngPool.Get().(*rand.Rand)
	pick := fresh[rng.Intn(len(fresh))]
	s.rngPool.Put(rng)
	return Route{Site: pick}
}

// ReplicaMover materializes placement decisions at the data sites: AddReplica
// bootstraps part onto site, DropReplica purges it. The core cluster
// implements it; both are idempotent and serialize internally.
type ReplicaMover interface {
	AddReplica(part uint64, site int) error
	DropReplica(part uint64, site int) error
}

// DefaultPlacementInterval is the placement controller's default tick.
const DefaultPlacementInterval = 100 * time.Millisecond

// defaultMaxMovesPerTick bounds replica churn per controller tick.
const defaultMaxMovesPerTick = 8

// PlacementController is the replica-placement control loop: every tick it
// snapshots the tracked partitions, asks the policy for each one's desired
// replica set, and converges actual toward desired through the mover with a
// bounded number of moves. sel is an accessor (not a pointer) so the HA
// tier's leader swaps carry over.
type PlacementController struct {
	sel      func() *Selector
	mover    ReplicaMover
	policy   PlacementPolicy
	interval time.Duration
	maxMoves int

	stop     chan struct{}
	stopOnce sync.Once
	wg       sync.WaitGroup
}

// NewPlacementController builds a controller; Start launches its loop.
func NewPlacementController(sel func() *Selector, mover ReplicaMover, policy PlacementPolicy, interval time.Duration) *PlacementController {
	if policy == nil {
		policy = AdaptivePolicy{}
	}
	if interval <= 0 {
		interval = DefaultPlacementInterval
	}
	return &PlacementController{
		sel:      sel,
		mover:    mover,
		policy:   policy,
		interval: interval,
		maxMoves: defaultMaxMovesPerTick,
		stop:     make(chan struct{}),
	}
}

// Start launches the control loop.
func (pc *PlacementController) Start() {
	pc.wg.Add(1)
	go func() {
		defer pc.wg.Done()
		t := time.NewTicker(pc.interval)
		defer t.Stop()
		for {
			select {
			case <-pc.stop:
				return
			case <-t.C:
				pc.Tick()
			}
		}
	}()
}

// Stop terminates the control loop and waits for the in-flight tick.
func (pc *PlacementController) Stop() {
	pc.stopOnce.Do(func() { close(pc.stop) })
	pc.wg.Wait()
}

// Tick runs one decide-and-converge pass, returning the replica adds and
// drops performed. The partition snapshot is taken before any placement
// locks; policy decisions run lock-free; mover calls serialize inside the
// mover.
func (pc *PlacementController) Tick() (adds, drops int) {
	s := pc.sel()
	if s == nil || s.placement == nil || s.Deposed() {
		return 0, 0
	}
	ps := s.placement
	masters, _ := s.PlacementSnapshot()
	moves := 0
	for part, master := range masters {
		if moves >= pc.maxMoves {
			break
		}
		replicas := s.ReplicaSet(part)
		desired := pc.policy.Decide(PartitionStats{
			Partition:   part,
			Master:      master,
			Replicas:    replicas,
			Sites:       s.m,
			MinReplicas: ps.min,
			MaxReplicas: ps.max,
			ReadWeight:  s.stats.ReadWeight(part),
			WriteWeight: s.stats.AccessWeight(part),
		})
		desired = normalizeSet(desired, master, replicas, ps.min, ps.max, s.m)
		for _, site := range desired {
			if moves >= pc.maxMoves {
				break
			}
			if containsSite(replicas, site) || s.SiteDown(site) {
				continue
			}
			if err := pc.mover.AddReplica(part, site); err == nil {
				adds++
				moves++
			}
		}
		for _, site := range replicas {
			if moves >= pc.maxMoves {
				break
			}
			if site == master || containsSite(desired, site) {
				continue
			}
			if err := pc.mover.DropReplica(part, site); err == nil {
				drops++
				moves++
			}
		}
	}
	return adds, drops
}

// normalizeSet sanitizes a policy decision: dedup, discard invalid site ids,
// force the master in, and clamp the size to [min, max] — padding from the
// current replicas (stability) then round-robin, trimming non-masters from
// the tail.
func normalizeSet(desired []SiteID, master SiteID, current []SiteID, min, max, sites int) []SiteID {
	out := make([]SiteID, 0, len(desired)+1)
	out = append(out, master)
	for _, site := range desired {
		if site >= 0 && site < sites && !containsSite(out, site) {
			out = append(out, site)
		}
	}
	for _, site := range current {
		if len(out) >= min {
			break
		}
		if !containsSite(out, site) {
			out = append(out, site)
		}
	}
	for i := 1; len(out) < min && i < sites; i++ {
		if cand := (master + i) % sites; !containsSite(out, cand) {
			out = append(out, cand)
		}
	}
	if len(out) > max {
		out = out[:max]
	}
	return out
}
