package selector

import (
	"math"
	"math/rand"
	"sync"
	"testing"
	"time"

	"dynamast/internal/storage"
)

// refTrackers builds one single-lock reference tracker per stripe of st,
// so a recorded stream can be mirrored stripe-for-stripe.
func refTrackers(cfg StatsConfig, stripes int) []*Stats {
	cfg.Stripes = 1
	refs := make([]*Stats, stripes)
	for i := range refs {
		refs[i] = NewStats(cfg)
	}
	return refs
}

// TestStripedStatsMatchesReference is the striping golden test: an
// identical stream of write sets is driven through the striped tracker and
// through per-stripe single-lock reference trackers (the pre-striping
// implementation, recovered with Stripes:1). Access frequencies, sample
// occurrences and co-access probabilities must match exactly — including
// across decay halvings and history expiry — proving striping changed the
// synchronization, not the statistics.
func TestStripedStatsMatchesReference(t *testing.T) {
	cfg := StatsConfig{
		HistorySize:    32, // small: forces expiry
		DecayThreshold: 64, // small: forces decay halvings
		InterWindow:    time.Minute,
		Stripes:        4,
	}
	st := NewStats(cfg)
	refs := refTrackers(cfg, st.Stripes())

	rng := rand.New(rand.NewSource(7))
	now := time.Now()
	for i := 0; i < 2000; i++ {
		client := rng.Intn(13)
		n := 1 + rng.Intn(4)
		parts := make([]uint64, 0, n)
		for len(parts) < n {
			p := uint64(rng.Intn(20))
			dup := false
			for _, q := range parts {
				if q == p {
					dup = true
				}
			}
			if !dup {
				parts = append(parts, p)
			}
		}
		at := now.Add(time.Duration(i) * time.Millisecond)
		st.RecordWrite(client, parts, at)
		refs[st.stripeIndex(client)].RecordWrite(client, parts, at)
	}

	sumRef := func(f func(*Stats) float64) float64 {
		var s float64
		for _, r := range refs {
			s += f(r)
		}
		return s
	}
	for p := uint64(0); p < 20; p++ {
		if got, want := st.AccessWeight(p), sumRef(func(r *Stats) float64 { return r.AccessWeight(p) }); got != want {
			t.Fatalf("AccessWeight(%d) = %g, reference %g", p, got, want)
		}
		if got, want := st.occurrencesOf(p), sumRef(func(r *Stats) float64 { return r.occurrencesOf(p) }); got != want {
			t.Fatalf("occurrencesOf(%d) = %g, reference %g", p, got, want)
		}
	}

	// Co-access: the striped tracker divides summed pair counts by summed
	// occurrences; reconstruct the same quantity from the references.
	for _, intra := range []bool{true, false} {
		for d1 := uint64(0); d1 < 20; d1++ {
			var occ float64
			counts := map[uint64]float64{}
			for _, r := range refs {
				o := r.occurrencesOf(d1)
				occ += o
				r.CoAccess(d1, intra, func(d2 uint64, p float64) {
					counts[d2] += p * o
				})
			}
			want := map[uint64]float64{}
			if occ > 0 {
				for d2, c := range counts {
					want[d2] = c / occ
				}
			}
			got := map[uint64]float64{}
			st.CoAccess(d1, intra, func(d2 uint64, p float64) { got[d2] = p })
			if len(got) != len(want) {
				t.Fatalf("CoAccess(%d, intra=%v): %d pairs, reference %d", d1, intra, len(got), len(want))
			}
			for d2, p := range want {
				if math.Abs(got[d2]-p) > 1e-12 {
					t.Fatalf("CoAccess(%d->%d, intra=%v) = %g, reference %g", d1, d2, intra, got[d2], p)
				}
			}
		}
	}
}

// TestStripedStatsSingleClientIdentical pins the per-stripe configuration
// semantics: one client's stream lands entirely on one stripe, which has
// the full (undivided) history and decay bounds, so the striped tracker is
// bit-identical to a single-lock tracker — decay fires at the same write.
func TestStripedStatsSingleClientIdentical(t *testing.T) {
	cfg := StatsConfig{HistorySize: 8, DecayThreshold: 10, Stripes: 16}
	striped := NewStats(cfg)
	cfg.Stripes = 1
	single := NewStats(cfg)

	now := time.Now()
	for i := 0; i < 40; i++ {
		parts := []uint64{uint64(i % 3), 5}
		striped.RecordWrite(7, parts, now)
		single.RecordWrite(7, parts, now)
		for p := uint64(0); p < 6; p++ {
			if a, b := striped.AccessWeight(p), single.AccessWeight(p); a != b {
				t.Fatalf("write %d: AccessWeight(%d) diverged: striped %g, single %g", i, p, a, b)
			}
		}
	}
}

// TestSetWeightsConcurrent exercises the atomic weights swap against
// concurrent routing decisions; meaningful under -race (CI runs it so).
func TestSetWeightsConcurrent(t *testing.T) {
	sel, _ := newCluster(t, 3, YCSBWeights())
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			sel.SetWeights(Weights{Balance: float64(i)})
			_ = sel.Weights()
		}
	}()
	for c := 0; c < 4; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				k := uint64((c*200 + i)) * 200
				ws := []storage.RowRef{{Table: "t", Key: k}, {Table: "t", Key: k + 100}}
				if _, err := sel.RouteWrite(c, ws, nil); err != nil {
					t.Error(err)
					return
				}
			}
		}(c)
	}
	// Wait for the routers, then stop the weight swapper.
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	time.Sleep(10 * time.Millisecond)
	close(stop)
	<-done
}
