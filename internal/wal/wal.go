// Package wal provides the ordered, durable update logs that DynaMast's
// replication managers publish to and subscribe from.
//
// The paper stores per-site logs in Apache Kafka, relying on two Kafka
// properties: per-log FIFO ordering with reliable delivery, and the ability
// to replay a log from a known offset for redo-based recovery. This package
// provides both: every site owns one Log; appends are totally ordered and
// assigned dense offsets; subscribers read entries in order via cursors;
// and a Log may be file-backed, in which case entries are encoded with the
// zero-allocation binary codec (internal/codec) to an append-only file and
// can be replayed after a crash. Logs written by pre-codec builds carry gob
// payloads in the same CRC frames; replay detects the format per frame, so
// legacy and mixed-format logs recover unchanged.
package wal

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"dynamast/internal/codec"
	"dynamast/internal/obs"
	"dynamast/internal/storage"
	"dynamast/internal/vclock"
)

// Kind discriminates log entry types.
type Kind uint8

const (
	// KindUpdate carries a committed transaction's write set; replicas
	// apply it as a refresh transaction.
	KindUpdate Kind = iota + 1
	// KindRelease records that the origin site released mastership of
	// partitions (logged for selector/site recovery).
	KindRelease
	// KindGrant records that the origin site was granted mastership of
	// partitions.
	KindGrant
	// KindEpoch carries a sealed commit epoch: every transaction the origin
	// committed during one group-commit interval, coalesced into a single
	// record that replicas apply as one refresh unit. Its TVV is the epoch's
	// closing vector (element-wise max of the members' commit vectors; the
	// origin dimension is the last member's sequence).
	KindEpoch
)

// String returns the kind's name.
func (k Kind) String() string {
	switch k {
	case KindUpdate:
		return "update"
	case KindRelease:
		return "release"
	case KindGrant:
		return "grant"
	case KindEpoch:
		return "epoch"
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// On-disk framing: every record is [u32 length][u32 CRC-32C][payload], all
// little-endian, where each payload is a self-contained encoding of one
// Entry — the binary codec format (first byte 0x00) for records this build
// writes, legacy gob for records written by older builds. The checksum
// turns silent corruption and torn tail writes into detectable conditions:
// Open verifies each frame and truncates the file at the last intact record
// instead of replaying garbage.
const frameHeaderSize = 8

// maxFrame bounds a frame's claimed length so a corrupt header cannot ask
// for an absurd allocation; anything larger is treated as corruption.
const maxFrame = 64 << 20

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// EpochTxn is one member transaction of a sealed commit epoch (KindEpoch):
// its commit vector, commit time, and write set. Members are ordered by the
// origin's commit sequence, which is dense across the epoch — member i
// carries sequence TVV[origin]-len(Txns)+1+i.
type EpochTxn struct {
	TVV    vclock.Vector
	At     time.Time
	Writes []storage.Write
}

// Entry is one record of a site's log: a committed update transaction to be
// propagated as a refresh transaction, a sealed commit epoch batching many
// of them, or a mastership change (release/grant) recorded for recovery.
type Entry struct {
	Offset     uint64
	Kind       Kind
	Origin     int           // site the entry originated at
	At         time.Time     // append time; replicas use it to model pipeline delay
	TVV        vclock.Vector // commit timestamp (KindUpdate); closing vector (KindEpoch)
	Writes     []storage.Write
	Partitions []uint64   // partitions whose mastership changed (release/grant)
	Peer       int        // the other site involved in a mastership change
	Epoch      uint64     // remaster epoch fencing the change (0 = unfenced)
	Txns       []EpochTxn // member transactions of a sealed epoch (KindEpoch only)
}

// IsUpdate reports whether the entry carries committed writes replicas must
// apply (a single update transaction or a sealed epoch of them).
func (e *Entry) IsUpdate() bool { return e.Kind == KindUpdate || e.Kind == KindEpoch }

// lastSeq returns the origin-dimension commit sequence the entry advances a
// replica to (0 for mastership records).
func (e *Entry) lastSeq() uint64 {
	if e.IsUpdate() && e.Origin >= 0 && e.Origin < len(e.TVV) {
		return e.TVV[e.Origin]
	}
	return 0
}

// FirstSeq returns the origin-dimension commit sequence of the entry's first
// member: the sequence itself for a single update, the opening sequence for
// a sealed epoch (its members are seq-dense through TVV[origin]).
func (e *Entry) FirstSeq() uint64 {
	last := e.lastSeq()
	if e.Kind == KindEpoch && len(e.Txns) > 0 && uint64(len(e.Txns)) <= last {
		return last - uint64(len(e.Txns)) + 1
	}
	return last
}

// Log is one site's ordered update log. The zero value is not usable; use
// New or Open.
//
// File-backed logs persist with group commit: Append encodes the entry
// into an in-memory buffer under the log mutex, then one appender — the
// flush leader — writes every buffered byte to the file in a single write
// while later appenders queue behind it; when the leader returns, all of
// them are durable at once. Entries become readable by cursors only at
// the visibility watermark, which trails durability, so subscribers never
// replicate an update the origin could lose in a crash. In-memory logs
// advance the watermark immediately.
type Log struct {
	mu      sync.Mutex
	cond    *sync.Cond
	entries []Entry // entries[i] holds absolute offset base+i
	closed  bool

	// base is the absolute offset of entries[0]. It starts at 0 and rises
	// when truncation reclaims a checkpointed prefix; offsets are stable
	// across truncation (an entry keeps its offset for life).
	base uint64

	// lowWater is the truncation permission: a checkpoint that captured
	// everything below offset lowWater has committed, so the prefix
	// [base, lowWater) is dead weight once every registered cursor has
	// also passed it.
	lowWater uint64

	// cursors tracks live subscriptions; truncation never reclaims an
	// entry a registered cursor has yet to read. Cursor.Close unregisters.
	cursors map[*Cursor]struct{}

	// visible is the subscriber-visibility watermark (absolute): cursors
	// read offsets below it. Equal to base+len(entries) for in-memory
	// logs; for file-backed logs it advances when a flush makes entries
	// durable.
	visible uint64

	file       *os.File
	path       string // backing file path; "" for in-memory logs
	fileBacked bool

	// encScratch is the shared per-record encode buffer: Append and the
	// truncation rewrite both serialize entries through it (under mu), so
	// steady-state encoding allocates nothing.
	encScratch []byte

	// buf accumulates framed records for the next group commit; spare is
	// the buffer the previous flush drained, swapped back in so the flush
	// leader never allocates to capture its write set.
	buf   []byte
	spare []byte

	torn uint64 // trailing bytes discarded as torn/corrupt at Open

	flushing  bool       // a flush leader is writing outside mu
	flushCond *sync.Cond // signalled when a flush completes
	flushErr  error      // sticky: a failed flush poisons the log

	// updSeq is the origin-dimension commit sequence of the last
	// KindUpdate entry appended: what a fully caught-up replica's version
	// vector shows for this site (refresh-delay gauges compare against it).
	updSeq atomic.Uint64

	// Observability instruments (nil-safe; see Instrument).
	appendDur    *obs.Histogram
	flushDur     *obs.Histogram
	kindCounts   map[Kind]*obs.Counter
	flushes      *obs.Counter
	truncEntries *obs.Counter
	truncBytes   *obs.Counter
	siteID       int // set by Instrument; labels flight-recorder events
}

// New returns an in-memory log.
func New() *Log {
	l := &Log{cursors: make(map[*Cursor]struct{})}
	l.cond = sync.NewCond(&l.mu)
	l.flushCond = sync.NewCond(&l.mu)
	return l
}

// Open returns a file-backed log at path, replaying any entries already
// present (recovery). Every record's CRC-32C is verified; a torn tail write
// (expected after a crash) or corrupt trailing record is detected, warned
// about, and truncated away so the log ends at its last intact record.
// Appends are written through to the file.
func Open(path string) (*Log, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, fmt.Errorf("wal: open %s: %w", path, err)
	}
	data, err := io.ReadAll(f)
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("wal: read %s: %w", path, err)
	}

	// Walk the frames, verifying each checksum and decoding the record
	// (each frame is a self-contained message — binary codec or legacy
	// gob, detected per frame); `good` is the byte offset after the last
	// intact record. One intern dictionary spans the walk so repeated
	// table names decode to shared strings.
	l := New()
	good := 0
	decStart := time.Now()
	intern := make(map[string]string)
	for off := 0; off+frameHeaderSize <= len(data); {
		n := binary.LittleEndian.Uint32(data[off:])
		sum := binary.LittleEndian.Uint32(data[off+4:])
		if n > maxFrame || off+frameHeaderSize+int(n) > len(data) {
			break // torn header or short payload
		}
		payload := data[off+frameHeaderSize : off+frameHeaderSize+int(n)]
		if crc32.Checksum(payload, crcTable) != sum {
			break // bit rot or torn write inside the record
		}
		var e Entry
		if err := decodeEntryPayload(payload, &e, intern); err != nil {
			break // checksummed but structurally invalid: treat as corrupt tail
		}
		// The first record fixes the log's base: a truncated log legally
		// starts at a non-zero offset. After that, offsets must be dense.
		if len(l.entries) == 0 {
			l.base = e.Offset
		} else if e.Offset != l.base+uint64(len(l.entries)) {
			f.Close()
			return nil, fmt.Errorf("wal: %s corrupt: offset %d at position %d", path, e.Offset, l.base+uint64(len(l.entries)))
		}
		l.entries = append(l.entries, e)
		if seq := e.lastSeq(); seq > 0 {
			l.updSeq.Store(seq)
		}
		off += frameHeaderSize + int(n)
		good = off
	}
	codec.RecordDecode(codec.SurfaceWAL, good, time.Since(decStart))
	if good < len(data) {
		l.torn = uint64(len(data) - good)
		fmt.Fprintf(os.Stderr, "wal: %s: dropping %d torn/corrupt trailing bytes (log intact through byte %d)\n",
			path, l.torn, good)
		if err := f.Truncate(int64(good)); err != nil {
			f.Close()
			return nil, fmt.Errorf("wal: truncate %s: %w", path, err)
		}
	}
	if _, err := f.Seek(0, io.SeekEnd); err != nil {
		f.Close()
		return nil, err
	}
	l.visible = l.base + uint64(len(l.entries))
	l.lowWater = l.base
	l.file = f
	l.path = path
	l.fileBacked = true
	return l, nil
}

// TornBytes reports how many trailing bytes Open discarded as torn or
// corrupt (0 for a clean log or an in-memory one).
func (l *Log) TornBytes() uint64 { return l.torn }

// Append assigns the next offset to e, appends it, persists it if the log
// is file-backed (group commit: the append returns once a flush covering
// it completes, typically batching many concurrent appends into one file
// write), wakes subscribers, and returns the assigned offset.
func (l *Log) Append(e Entry) (uint64, error) {
	start := time.Now()
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return 0, fmt.Errorf("wal: append to closed log")
	}
	if l.flushErr != nil {
		return 0, l.flushErr
	}
	e.Offset = l.base + uint64(len(l.entries))
	if e.At.IsZero() {
		e.At = start
	}
	if l.fileBacked {
		// Each record is a self-contained binary-codec message framed with
		// length + CRC-32C, so replay can verify and decode frames
		// independently. The encode scratch is shared (under mu) with the
		// truncation rewrite; steady state allocates nothing.
		l.encScratch = encodeTimed(l.encScratch[:0], &e)
		l.buf = appendFrame(l.buf, l.encScratch)
	}
	l.entries = append(l.entries, e)
	if seq := e.lastSeq(); seq > 0 {
		l.updSeq.Store(seq)
	}
	if !l.fileBacked {
		// In-memory: immediately visible.
		l.visible = l.base + uint64(len(l.entries))
		l.cond.Broadcast()
	} else if err := l.waitDurable(e.Offset); err != nil {
		return 0, err
	}
	l.kindCounts[e.Kind].Inc()
	l.appendDur.ObserveDuration(time.Since(start))
	return e.Offset, nil
}

// waitDurable blocks until a flush covering offset off completes, electing
// this goroutine flush leader when none is running. Caller holds l.mu.
func (l *Log) waitDurable(off uint64) error {
	for l.visible <= off && l.flushErr == nil {
		if l.flushing {
			l.flushCond.Wait()
			continue
		}
		l.flushLocked()
	}
	return l.flushErr
}

// flushLocked drains the encode buffer to the file in one write, releasing
// l.mu during the write (appenders keep encoding into the swapped-in spare
// buffer), and advances the visibility watermark over everything the write
// covered. The two buffers rotate: the leader takes l.buf, installs
// l.spare for concurrent appenders, and puts its drained buffer back as
// the next spare — so steady-state flushing allocates nothing. Caller
// holds l.mu; it is held again on return.
func (l *Log) flushLocked() {
	l.flushing = true
	data := l.buf
	l.buf = l.spare[:0]
	l.spare = nil // owned by this flush until it completes
	target := l.base + uint64(len(l.entries))
	f := l.file
	l.mu.Unlock()
	var err error
	flushStart := time.Now()
	if len(data) > 0 && f != nil {
		_, err = f.Write(data)
	}
	flushTook := time.Since(flushStart)
	l.mu.Lock()
	l.flushDur.ObserveDuration(flushTook)
	l.flushing = false
	l.spare = data[:0]
	if err != nil {
		if l.flushErr == nil {
			l.flushErr = fmt.Errorf("wal: flush: %w", err)
		}
	} else if target > l.visible {
		l.visible = target
	}
	l.flushes.Inc()
	l.cond.Broadcast()
	l.flushCond.Broadcast()
}

// LastUpdateSeq returns the commit sequence number of the newest update
// entry published to this log (the origin site's own version-vector
// dimension when it committed).
func (l *Log) LastUpdateSeq() uint64 { return l.updSeq.Load() }

// Instrument registers the log's metrics as site siteID's update log:
// per-kind append counters, an append-latency histogram, and publish-state
// gauges. Call once, before serving traffic.
func (l *Log) Instrument(reg *obs.Registry, siteID int) {
	if reg == nil {
		return
	}
	site := obs.Site(siteID)
	l.mu.Lock()
	l.siteID = siteID
	l.appendDur = reg.Histogram("dynamast_wal_append_seconds", site)
	l.flushDur = reg.Histogram("dynamast_wal_flush_seconds", site)
	l.flushes = reg.Counter("dynamast_wal_flushes_total", site)
	l.truncEntries = reg.Counter("dynamast_wal_truncated_entries_total", site)
	l.truncBytes = reg.Counter("dynamast_wal_truncated_bytes_total", site)
	l.kindCounts = map[Kind]*obs.Counter{
		KindUpdate:  reg.Counter("dynamast_wal_entries_total", site, obs.L("kind", KindUpdate.String())),
		KindRelease: reg.Counter("dynamast_wal_entries_total", site, obs.L("kind", KindRelease.String())),
		KindGrant:   reg.Counter("dynamast_wal_entries_total", site, obs.L("kind", KindGrant.String())),
		KindEpoch:   reg.Counter("dynamast_wal_entries_total", site, obs.L("kind", KindEpoch.String())),
	}
	l.mu.Unlock()
	reg.Func("dynamast_wal_entries", obs.KindGauge,
		func() float64 { return float64(l.Len()) }, site)
	reg.Func("dynamast_wal_last_update_seq", obs.KindGauge,
		func() float64 { return float64(l.LastUpdateSeq()) }, site)
}

// Len returns the absolute end offset of the published (subscriber-visible)
// log: the number of entries ever published, unaffected by truncation.
func (l *Log) Len() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.visible
}

// Get returns the entry at offset, if published and still retained.
func (l *Log) Get(offset uint64) (Entry, bool) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if offset >= l.visible || offset < l.base {
		return Entry{}, false
	}
	return l.entries[offset-l.base], true
}

// Base returns the absolute offset of the oldest retained entry (0 until
// truncation has reclaimed a prefix).
func (l *Log) Base() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.base
}

// LowWater returns the current truncation low-water mark.
func (l *Log) LowWater() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.lowWater
}

// Path returns the backing file path ("" for an in-memory log).
func (l *Log) Path() string { return l.path }

// FileBacked reports whether appends persist to a backing file (and thus
// block for durability) or publish immediately in memory.
func (l *Log) FileBacked() bool { return l.fileBacked }

// FirstUpdateOffsetAfter returns the absolute offset of the first published
// update entry whose origin-dimension commit sequence exceeds seq, or the
// log's end offset when seq already covers every published update. Because a
// site's commit sequences are assigned in append order, this is the exact
// replay start for a replica whose version vector shows seq for this origin.
func (l *Log) FirstUpdateOffsetAfter(seq uint64) uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	for i := range l.entries {
		off := l.base + uint64(i)
		if off >= l.visible {
			break
		}
		e := &l.entries[i]
		if e.lastSeq() > seq {
			return off
		}
	}
	return l.visible
}

// SetLowWater raises the truncation low-water mark to off (never lowered)
// and reclaims the dead prefix: every entry below min(low-water, slowest
// registered cursor, durability watermark) is dropped from memory and — for
// file-backed logs — rewritten out of the backing file via an atomic
// temp-file rename, so a crash mid-truncation leaves either the old or the
// new file, both valid. Returns how many entries were reclaimed.
func (l *Log) SetLowWater(off uint64) (uint64, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if off > l.lowWater {
		l.lowWater = off
	}
	floor := l.lowWater
	if floor > l.visible {
		floor = l.visible
	}
	for c := range l.cursors {
		if c.next < floor {
			floor = c.next
		}
	}
	if floor <= l.base || l.closed {
		return 0, nil
	}
	dropped := floor - l.base

	if l.fileBacked {
		// Quiesce flushing: the rewrite must see a stable durable prefix
		// and must not race a leader's file write.
		for l.flushing {
			l.flushCond.Wait()
		}
		if l.flushErr != nil {
			return 0, l.flushErr
		}
		var oldSize int64
		if st, err := l.file.Stat(); err == nil {
			oldSize = st.Size()
		}
		nf, err := l.rewriteFrom(dropped)
		if err != nil {
			return 0, fmt.Errorf("wal: truncate %s: %w", l.path, err)
		}
		l.file.Close()
		l.file = nf
		if st, err := nf.Stat(); err == nil && oldSize > st.Size() {
			l.truncBytes.Add(uint64(oldSize - st.Size()))
		}
	}

	l.entries = append([]Entry(nil), l.entries[dropped:]...)
	l.base = floor
	l.truncEntries.Add(dropped)
	obs.RecordEvent(obs.FlightWALTruncate, l.siteID,
		"truncated %d entries, new base %d (low-water %d)", dropped, l.base, l.lowWater)
	return dropped, nil
}

// rewriteFrom writes the retained durable suffix (entries[keep:] up to the
// durability watermark) to a temp file and renames it over the log's path,
// returning the new file positioned for appends. Caller holds l.mu with no
// flush in flight; pending undurable frames stay in l.buf and land in the
// new file on the next flush.
func (l *Log) rewriteFrom(keep uint64) (*os.File, error) {
	tmp := l.path + ".tmp"
	nf, err := os.OpenFile(tmp, os.O_CREATE|os.O_TRUNC|os.O_RDWR, 0o644)
	if err != nil {
		return nil, err
	}
	// Re-encode the retained suffix through the same shared scratch the
	// append path uses (caller holds mu, so the buffers are quiescent);
	// entries replayed from a legacy gob log are rewritten in the binary
	// format here, which is how a mixed-format log converges to pure
	// binary over time.
	durable := l.visible - l.base // entries with bytes already in the file
	var out []byte
	for i := keep; i < durable; i++ {
		l.encScratch = encodeTimed(l.encScratch[:0], &l.entries[i])
		out = appendFrame(out, l.encScratch)
	}
	if _, err := nf.Write(out); err != nil {
		nf.Close()
		os.Remove(tmp)
		return nil, err
	}
	if err := os.Rename(tmp, l.path); err != nil {
		nf.Close()
		os.Remove(tmp)
		return nil, err
	}
	if _, err := nf.Seek(0, io.SeekEnd); err != nil {
		nf.Close()
		return nil, err
	}
	return nf, nil
}

// Close flushes any buffered appends, marks the log closed, waking blocked
// cursors (their Next returns ok=false once drained), and closes the
// backing file if any.
func (l *Log) Close() error {
	l.mu.Lock()
	if l.fileBacked && len(l.entries) > 0 {
		// Drain the tail (also waits out any in-flight leader).
		_ = l.waitDurable(l.base + uint64(len(l.entries)) - 1)
	}
	for l.flushing {
		l.flushCond.Wait()
	}
	l.closed = true
	l.cond.Broadcast()
	l.flushCond.Broadcast()
	f := l.file
	l.file = nil
	l.mu.Unlock()
	if f != nil {
		return f.Close()
	}
	return nil
}

// Cursor reads a log in order starting at a subscription offset. A live
// cursor pins the log's truncation floor at its position; callers that
// abandon a cursor before the log closes must Close it, or the prefix it
// has yet to read is retained forever.
type Cursor struct {
	log  *Log
	next uint64
}

// Subscribe returns a registered cursor positioned at offset from (clamped
// up to the oldest retained entry when the prefix was already truncated).
func (l *Log) Subscribe(from uint64) *Cursor {
	l.mu.Lock()
	defer l.mu.Unlock()
	if from < l.base {
		from = l.base
	}
	c := &Cursor{log: l, next: from}
	l.cursors[c] = struct{}{}
	return c
}

// Close unregisters the cursor so it no longer pins the truncation floor.
// Reads after Close still work but lose the retention guarantee. Idempotent.
func (c *Cursor) Close() {
	l := c.log
	l.mu.Lock()
	delete(l.cursors, c)
	l.mu.Unlock()
}

// Next blocks until the next entry is available and returns it; ok is false
// if the log was closed and fully drained.
func (c *Cursor) Next() (Entry, bool) {
	l := c.log
	l.mu.Lock()
	defer l.mu.Unlock()
	if c.next < l.base {
		c.next = l.base
	}
	for c.next >= l.visible {
		if l.closed {
			return Entry{}, false
		}
		l.cond.Wait()
	}
	e := l.entries[c.next-l.base]
	c.next++
	return e, true
}

// NextBatch blocks until at least one entry is available, then appends
// every available entry — up to max; max <= 0 means unbounded — to dst and
// returns it. One cursor wake drains the whole published backlog, so a
// subscriber that fell behind pays the wake/lock cost once per batch
// instead of once per entry. ok is false when the log was closed and fully
// drained (any remaining published entries are still returned first).
func (c *Cursor) NextBatch(dst []Entry, max int) ([]Entry, bool) {
	l := c.log
	l.mu.Lock()
	defer l.mu.Unlock()
	if c.next < l.base {
		c.next = l.base
	}
	for c.next >= l.visible {
		if l.closed {
			return dst, false
		}
		l.cond.Wait()
	}
	n := l.visible - c.next
	if max > 0 && uint64(max) < n {
		n = uint64(max)
	}
	i := c.next - l.base
	dst = append(dst, l.entries[i:i+n]...)
	c.next += n
	return dst, true
}

// batchPool recycles []Entry buffers for NextBatch consumers (refresh
// appliers, recovery catch-up): a subscriber loop gets one buffer for its
// lifetime and returns it on exit, so per-loop batch storage is shared
// across subscriber generations instead of re-grown by each.
var batchPool = sync.Pool{
	New: func() any {
		b := make([]Entry, 0, 64)
		return &b
	},
}

// GetBatch returns a pooled, zero-length entry buffer for NextBatch.
func GetBatch() *[]Entry { return batchPool.Get().(*[]Entry) }

// PutBatch zeroes and returns an entry buffer to the pool. Zeroing drops
// the entries' references to write sets and vectors, so a parked pool
// buffer never pins replicated payload memory.
func PutBatch(b *[]Entry) {
	if b == nil {
		return
	}
	s := (*b)[:cap(*b)]
	clear(s)
	*b = s[:0]
	batchPool.Put(b)
}

// TryNext returns the next entry if one is available without blocking.
func (c *Cursor) TryNext() (Entry, bool) {
	l := c.log
	l.mu.Lock()
	defer l.mu.Unlock()
	if c.next < l.base {
		c.next = l.base
	}
	if c.next >= l.visible {
		return Entry{}, false
	}
	e := l.entries[c.next-l.base]
	c.next++
	return e, true
}

// Offset returns the cursor's next read position.
func (c *Cursor) Offset() uint64 { return c.next }

// Broker groups the per-site logs of a cluster, mirroring the paper's
// "distinct Kafka logs for updates from each site".
type Broker struct {
	logs []*Log
}

// NewBroker returns a broker with m in-memory logs.
func NewBroker(m int) *Broker {
	b := &Broker{logs: make([]*Log, m)}
	for i := range b.logs {
		b.logs[i] = New()
	}
	return b
}

// OpenBroker returns a broker with m file-backed logs under dir, replaying
// existing contents.
func OpenBroker(dir string, m int) (*Broker, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	b := &Broker{logs: make([]*Log, m)}
	for i := range b.logs {
		l, err := Open(fmt.Sprintf("%s/site-%d.wal", dir, i))
		if err != nil {
			b.Close()
			return nil, err
		}
		b.logs[i] = l
	}
	return b, nil
}

// Log returns site i's log.
func (b *Broker) Log(i int) *Log { return b.logs[i] }

// Instrument registers every log's metrics in reg (see Log.Instrument).
func (b *Broker) Instrument(reg *obs.Registry) {
	reg.Help("dynamast_wal_entries_total", "Update-log appends by site and entry kind.")
	reg.Help("dynamast_wal_append_seconds", "Update-log append (publish) latency per site.")
	reg.Help("dynamast_wal_entries", "Entries currently retained in each site's update log.")
	reg.Help("dynamast_wal_last_update_seq", "Commit sequence of the newest update published per site.")
	reg.Help("dynamast_wal_flushes_total", "Group-commit file flushes per site (appends/flushes = mean batch size).")
	reg.Help("dynamast_wal_flush_seconds", "Group-commit file write latency per site (leader's write syscall).")
	reg.Help("dynamast_wal_truncated_entries_total", "Log entries reclaimed by checkpoint-driven prefix truncation.")
	reg.Help("dynamast_wal_truncated_bytes_total", "Backing-file bytes reclaimed by prefix truncation.")
	for i, l := range b.logs {
		l.Instrument(reg, i)
	}
}

// Sites returns the number of logs.
func (b *Broker) Sites() int { return len(b.logs) }

// Close closes every log.
func (b *Broker) Close() error {
	var first error
	for _, l := range b.logs {
		if l == nil {
			continue
		}
		if err := l.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}
