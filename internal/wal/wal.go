// Package wal provides the ordered, durable update logs that DynaMast's
// replication managers publish to and subscribe from.
//
// The paper stores per-site logs in Apache Kafka, relying on two Kafka
// properties: per-log FIFO ordering with reliable delivery, and the ability
// to replay a log from a known offset for redo-based recovery. This package
// provides both: every site owns one Log; appends are totally ordered and
// assigned dense offsets; subscribers read entries in order via cursors;
// and a Log may be file-backed, in which case entries are gob-encoded to an
// append-only file and can be replayed after a crash.
package wal

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"dynamast/internal/obs"
	"dynamast/internal/storage"
	"dynamast/internal/vclock"
)

// Kind discriminates log entry types.
type Kind uint8

const (
	// KindUpdate carries a committed transaction's write set; replicas
	// apply it as a refresh transaction.
	KindUpdate Kind = iota + 1
	// KindRelease records that the origin site released mastership of
	// partitions (logged for selector/site recovery).
	KindRelease
	// KindGrant records that the origin site was granted mastership of
	// partitions.
	KindGrant
)

// String returns the kind's name.
func (k Kind) String() string {
	switch k {
	case KindUpdate:
		return "update"
	case KindRelease:
		return "release"
	case KindGrant:
		return "grant"
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// On-disk framing: every record is [u32 length][u32 CRC-32C][payload], all
// little-endian, where each payload is a self-contained gob encoding of one
// Entry. The checksum turns silent corruption and torn tail writes into
// detectable conditions: Open verifies each frame and truncates the file at
// the last intact record instead of replaying garbage.
const frameHeaderSize = 8

// maxFrame bounds a frame's claimed length so a corrupt header cannot ask
// for an absurd allocation; anything larger is treated as corruption.
const maxFrame = 64 << 20

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// Entry is one record of a site's log: either a committed update
// transaction to be propagated as a refresh transaction, or a mastership
// change (release/grant) recorded for recovery.
type Entry struct {
	Offset     uint64
	Kind       Kind
	Origin     int           // site the entry originated at
	At         time.Time     // append time; replicas use it to model pipeline delay
	TVV        vclock.Vector // commit timestamp (KindUpdate)
	Writes     []storage.Write
	Partitions []uint64 // partitions whose mastership changed (release/grant)
	Peer       int      // the other site involved in a mastership change
	Epoch      uint64   // remaster epoch fencing the change (0 = unfenced)
}

// Log is one site's ordered update log. The zero value is not usable; use
// New or Open.
//
// File-backed logs persist with group commit: Append encodes the entry
// into an in-memory buffer under the log mutex, then one appender — the
// flush leader — writes every buffered byte to the file in a single write
// while later appenders queue behind it; when the leader returns, all of
// them are durable at once. Entries become readable by cursors only at
// the visibility watermark, which trails durability, so subscribers never
// replicate an update the origin could lose in a crash. In-memory logs
// advance the watermark immediately.
type Log struct {
	mu      sync.Mutex
	cond    *sync.Cond
	entries []Entry
	closed  bool

	// visible is the subscriber-visibility watermark: cursors read
	// entries[:visible]. Equal to len(entries) for in-memory logs; for
	// file-backed logs it advances when a flush makes entries durable.
	visible uint64

	file       *os.File
	fileBacked bool
	encBuf     bytes.Buffer // per-record gob scratch; framed into buf
	buf        bytes.Buffer // framed records; drained to file by the flush leader
	torn       uint64       // trailing bytes discarded as torn/corrupt at Open

	flushing  bool       // a flush leader is writing outside mu
	flushCond *sync.Cond // signalled when a flush completes
	flushErr  error      // sticky: a failed flush poisons the log

	// updSeq is the origin-dimension commit sequence of the last
	// KindUpdate entry appended: what a fully caught-up replica's version
	// vector shows for this site (refresh-delay gauges compare against it).
	updSeq atomic.Uint64

	// Observability instruments (nil-safe; see Instrument).
	appendDur  *obs.Histogram
	kindCounts map[Kind]*obs.Counter
	flushes    *obs.Counter
}

// New returns an in-memory log.
func New() *Log {
	l := &Log{}
	l.cond = sync.NewCond(&l.mu)
	l.flushCond = sync.NewCond(&l.mu)
	return l
}

// Open returns a file-backed log at path, replaying any entries already
// present (recovery). Every record's CRC-32C is verified; a torn tail write
// (expected after a crash) or corrupt trailing record is detected, warned
// about, and truncated away so the log ends at its last intact record.
// Appends are written through to the file.
func Open(path string) (*Log, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, fmt.Errorf("wal: open %s: %w", path, err)
	}
	data, err := io.ReadAll(f)
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("wal: read %s: %w", path, err)
	}

	// Walk the frames, verifying each checksum and decoding the record
	// (each frame is a self-contained gob message); `good` is the byte
	// offset after the last intact record.
	l := New()
	good := 0
	for off := 0; off+frameHeaderSize <= len(data); {
		n := binary.LittleEndian.Uint32(data[off:])
		sum := binary.LittleEndian.Uint32(data[off+4:])
		if n > maxFrame || off+frameHeaderSize+int(n) > len(data) {
			break // torn header or short payload
		}
		payload := data[off+frameHeaderSize : off+frameHeaderSize+int(n)]
		if crc32.Checksum(payload, crcTable) != sum {
			break // bit rot or torn write inside the record
		}
		var e Entry
		if err := gob.NewDecoder(bytes.NewReader(payload)).Decode(&e); err != nil {
			break // checksummed but structurally invalid: treat as corrupt tail
		}
		if e.Offset != uint64(len(l.entries)) {
			f.Close()
			return nil, fmt.Errorf("wal: %s corrupt: offset %d at position %d", path, e.Offset, len(l.entries))
		}
		l.entries = append(l.entries, e)
		if e.Kind == KindUpdate && e.Origin < len(e.TVV) {
			l.updSeq.Store(e.TVV[e.Origin])
		}
		off += frameHeaderSize + int(n)
		good = off
	}
	if good < len(data) {
		l.torn = uint64(len(data) - good)
		fmt.Fprintf(os.Stderr, "wal: %s: dropping %d torn/corrupt trailing bytes (log intact through byte %d)\n",
			path, l.torn, good)
		if err := f.Truncate(int64(good)); err != nil {
			f.Close()
			return nil, fmt.Errorf("wal: truncate %s: %w", path, err)
		}
	}
	if _, err := f.Seek(0, io.SeekEnd); err != nil {
		f.Close()
		return nil, err
	}
	l.visible = uint64(len(l.entries))
	l.file = f
	l.fileBacked = true
	return l, nil
}

// TornBytes reports how many trailing bytes Open discarded as torn or
// corrupt (0 for a clean log or an in-memory one).
func (l *Log) TornBytes() uint64 { return l.torn }

// Append assigns the next offset to e, appends it, persists it if the log
// is file-backed (group commit: the append returns once a flush covering
// it completes, typically batching many concurrent appends into one file
// write), wakes subscribers, and returns the assigned offset.
func (l *Log) Append(e Entry) (uint64, error) {
	start := time.Now()
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return 0, fmt.Errorf("wal: append to closed log")
	}
	if l.flushErr != nil {
		return 0, l.flushErr
	}
	e.Offset = uint64(len(l.entries))
	if e.At.IsZero() {
		e.At = start
	}
	if l.fileBacked {
		// Each record is a self-contained gob message so replay can verify
		// and decode frames independently (a fresh encoder per record; the
		// per-record type descriptor is the price of per-record recovery).
		l.encBuf.Reset()
		if err := gob.NewEncoder(&l.encBuf).Encode(&e); err != nil {
			return 0, fmt.Errorf("wal: encode: %w", err)
		}
		// Frame the record: length + CRC-32C ahead of the gob payload.
		payload := l.encBuf.Bytes()
		var hdr [frameHeaderSize]byte
		binary.LittleEndian.PutUint32(hdr[0:4], uint32(len(payload)))
		binary.LittleEndian.PutUint32(hdr[4:8], crc32.Checksum(payload, crcTable))
		l.buf.Write(hdr[:])
		l.buf.Write(payload)
	}
	l.entries = append(l.entries, e)
	if e.Kind == KindUpdate && e.Origin < len(e.TVV) {
		l.updSeq.Store(e.TVV[e.Origin])
	}
	if !l.fileBacked {
		// In-memory: immediately visible.
		l.visible = uint64(len(l.entries))
		l.cond.Broadcast()
	} else if err := l.waitDurable(e.Offset); err != nil {
		return 0, err
	}
	l.kindCounts[e.Kind].Inc()
	l.appendDur.ObserveDuration(time.Since(start))
	return e.Offset, nil
}

// waitDurable blocks until a flush covering offset off completes, electing
// this goroutine flush leader when none is running. Caller holds l.mu.
func (l *Log) waitDurable(off uint64) error {
	for l.visible <= off && l.flushErr == nil {
		if l.flushing {
			l.flushCond.Wait()
			continue
		}
		l.flushLocked()
	}
	return l.flushErr
}

// flushLocked drains the encode buffer to the file in one write, releasing
// l.mu during the write (appenders keep encoding into a fresh buffer), and
// advances the visibility watermark over everything the write covered.
// Caller holds l.mu; it is held again on return.
func (l *Log) flushLocked() {
	l.flushing = true
	data := append([]byte(nil), l.buf.Bytes()...)
	l.buf.Reset()
	target := uint64(len(l.entries))
	f := l.file
	l.mu.Unlock()
	var err error
	if len(data) > 0 && f != nil {
		_, err = f.Write(data)
	}
	l.mu.Lock()
	l.flushing = false
	if err != nil {
		if l.flushErr == nil {
			l.flushErr = fmt.Errorf("wal: flush: %w", err)
		}
	} else if target > l.visible {
		l.visible = target
	}
	l.flushes.Inc()
	l.cond.Broadcast()
	l.flushCond.Broadcast()
}

// LastUpdateSeq returns the commit sequence number of the newest update
// entry published to this log (the origin site's own version-vector
// dimension when it committed).
func (l *Log) LastUpdateSeq() uint64 { return l.updSeq.Load() }

// Instrument registers the log's metrics as site siteID's update log:
// per-kind append counters, an append-latency histogram, and publish-state
// gauges. Call once, before serving traffic.
func (l *Log) Instrument(reg *obs.Registry, siteID int) {
	if reg == nil {
		return
	}
	site := obs.Site(siteID)
	l.mu.Lock()
	l.appendDur = reg.Histogram("dynamast_wal_append_seconds", site)
	l.flushes = reg.Counter("dynamast_wal_flushes_total", site)
	l.kindCounts = map[Kind]*obs.Counter{
		KindUpdate:  reg.Counter("dynamast_wal_entries_total", site, obs.L("kind", KindUpdate.String())),
		KindRelease: reg.Counter("dynamast_wal_entries_total", site, obs.L("kind", KindRelease.String())),
		KindGrant:   reg.Counter("dynamast_wal_entries_total", site, obs.L("kind", KindGrant.String())),
	}
	l.mu.Unlock()
	reg.Func("dynamast_wal_entries", obs.KindGauge,
		func() float64 { return float64(l.Len()) }, site)
	reg.Func("dynamast_wal_last_update_seq", obs.KindGauge,
		func() float64 { return float64(l.LastUpdateSeq()) }, site)
}

// Len returns the number of published (subscriber-visible) entries.
func (l *Log) Len() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.visible
}

// Get returns the entry at offset, if published.
func (l *Log) Get(offset uint64) (Entry, bool) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if offset >= l.visible {
		return Entry{}, false
	}
	return l.entries[offset], true
}

// Close flushes any buffered appends, marks the log closed, waking blocked
// cursors (their Next returns ok=false once drained), and closes the
// backing file if any.
func (l *Log) Close() error {
	l.mu.Lock()
	if l.fileBacked && uint64(len(l.entries)) > 0 {
		// Drain the tail (also waits out any in-flight leader).
		_ = l.waitDurable(uint64(len(l.entries)) - 1)
	}
	for l.flushing {
		l.flushCond.Wait()
	}
	l.closed = true
	l.cond.Broadcast()
	l.flushCond.Broadcast()
	f := l.file
	l.file = nil
	l.mu.Unlock()
	if f != nil {
		return f.Close()
	}
	return nil
}

// Cursor reads a log in order starting at a subscription offset.
type Cursor struct {
	log  *Log
	next uint64
}

// Subscribe returns a cursor positioned at offset from.
func (l *Log) Subscribe(from uint64) *Cursor {
	return &Cursor{log: l, next: from}
}

// Next blocks until the next entry is available and returns it; ok is false
// if the log was closed and fully drained.
func (c *Cursor) Next() (Entry, bool) {
	l := c.log
	l.mu.Lock()
	defer l.mu.Unlock()
	for c.next >= l.visible {
		if l.closed {
			return Entry{}, false
		}
		l.cond.Wait()
	}
	e := l.entries[c.next]
	c.next++
	return e, true
}

// NextBatch blocks until at least one entry is available, then appends
// every available entry — up to max; max <= 0 means unbounded — to dst and
// returns it. One cursor wake drains the whole published backlog, so a
// subscriber that fell behind pays the wake/lock cost once per batch
// instead of once per entry. ok is false when the log was closed and fully
// drained (any remaining published entries are still returned first).
func (c *Cursor) NextBatch(dst []Entry, max int) ([]Entry, bool) {
	l := c.log
	l.mu.Lock()
	defer l.mu.Unlock()
	for c.next >= l.visible {
		if l.closed {
			return dst, false
		}
		l.cond.Wait()
	}
	n := l.visible - c.next
	if max > 0 && uint64(max) < n {
		n = uint64(max)
	}
	dst = append(dst, l.entries[c.next:c.next+n]...)
	c.next += n
	return dst, true
}

// TryNext returns the next entry if one is available without blocking.
func (c *Cursor) TryNext() (Entry, bool) {
	l := c.log
	l.mu.Lock()
	defer l.mu.Unlock()
	if c.next >= l.visible {
		return Entry{}, false
	}
	e := l.entries[c.next]
	c.next++
	return e, true
}

// Offset returns the cursor's next read position.
func (c *Cursor) Offset() uint64 { return c.next }

// Broker groups the per-site logs of a cluster, mirroring the paper's
// "distinct Kafka logs for updates from each site".
type Broker struct {
	logs []*Log
}

// NewBroker returns a broker with m in-memory logs.
func NewBroker(m int) *Broker {
	b := &Broker{logs: make([]*Log, m)}
	for i := range b.logs {
		b.logs[i] = New()
	}
	return b
}

// OpenBroker returns a broker with m file-backed logs under dir, replaying
// existing contents.
func OpenBroker(dir string, m int) (*Broker, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	b := &Broker{logs: make([]*Log, m)}
	for i := range b.logs {
		l, err := Open(fmt.Sprintf("%s/site-%d.wal", dir, i))
		if err != nil {
			b.Close()
			return nil, err
		}
		b.logs[i] = l
	}
	return b, nil
}

// Log returns site i's log.
func (b *Broker) Log(i int) *Log { return b.logs[i] }

// Instrument registers every log's metrics in reg (see Log.Instrument).
func (b *Broker) Instrument(reg *obs.Registry) {
	reg.Help("dynamast_wal_entries_total", "Update-log appends by site and entry kind.")
	reg.Help("dynamast_wal_append_seconds", "Update-log append (publish) latency per site.")
	reg.Help("dynamast_wal_entries", "Entries currently retained in each site's update log.")
	reg.Help("dynamast_wal_last_update_seq", "Commit sequence of the newest update published per site.")
	reg.Help("dynamast_wal_flushes_total", "Group-commit file flushes per site (appends/flushes = mean batch size).")
	for i, l := range b.logs {
		l.Instrument(reg, i)
	}
}

// Sites returns the number of logs.
func (b *Broker) Sites() int { return len(b.logs) }

// Close closes every log.
func (b *Broker) Close() error {
	var first error
	for _, l := range b.logs {
		if l == nil {
			continue
		}
		if err := l.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}
