package wal

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"fmt"
	"hash/crc32"
	"os"
	"time"

	"dynamast/internal/codec"
)

// Wire schema (format v1) for one log entry. The payload rides inside the
// CRC-32C frame ([u32 length][u32 CRC][payload]) and begins with the codec
// magic+version header; the fields follow in declaration order. Legacy logs
// carry self-contained gob payloads in the same frames — the first payload
// byte discriminates (gob never starts with 0x00), so one log file may mix
// both formats and still replay, which is exactly what happens to a log
// written partly by a pre-codec build and extended by this one.

// appendEntryPayload appends e's binary payload (header included) to buf.
func appendEntryPayload(buf []byte, e *Entry) []byte {
	buf = codec.AppendHeader(buf, codec.Version1)
	buf = codec.AppendUvarint(buf, e.Offset)
	buf = codec.AppendUvarint(buf, uint64(e.Kind))
	buf = codec.AppendInt(buf, int64(e.Origin))
	buf = codec.AppendTime(buf, e.At)
	buf = codec.AppendVector(buf, e.TVV)
	buf = codec.AppendWrites(buf, e.Writes)
	buf = codec.AppendUint64s(buf, e.Partitions)
	buf = codec.AppendInt(buf, int64(e.Peer))
	buf = codec.AppendUvarint(buf, e.Epoch)
	return buf
}

// decodeEntryPayload decodes one frame payload into e, accepting both the
// binary format and legacy gob (the fallback reader for logs written by
// pre-codec builds). intern, when non-nil, deduplicates table-name strings
// across a replay. Decoded slices are freshly allocated — entries live for
// the life of the log and their write payloads escape into MVCC version
// chains, so nothing here may alias pooled or mapped memory.
func decodeEntryPayload(payload []byte, e *Entry, intern map[string]string) error {
	if !codec.IsBinary(payload) {
		codec.RecordLegacy(codec.SurfaceWAL)
		*e = Entry{}
		return gob.NewDecoder(bytes.NewReader(payload)).Decode(e)
	}
	r := codec.NewReader(payload)
	if intern != nil {
		r.SetIntern(intern)
	}
	e.Offset = r.Uvarint()
	e.Kind = Kind(r.Uvarint())
	e.Origin = int(r.Int())
	e.At = r.Time()
	e.TVV = r.Vector(nil)
	e.Writes = r.Writes()
	e.Partitions = r.Uint64s()
	e.Peer = int(r.Int())
	e.Epoch = r.Uvarint()
	return r.Done()
}

// appendFrame appends the on-disk frame for payload: length and CRC-32C
// header, then the payload bytes.
func appendFrame(dst, payload []byte) []byte {
	var hdr [frameHeaderSize]byte
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(hdr[4:8], crc32.Checksum(payload, crcTable))
	dst = append(dst, hdr[:]...)
	return append(dst, payload...)
}

// WriteLegacyLog writes entries to path in the pre-codec format — CRC-32C
// frames around self-contained gob payloads — exactly as builds before the
// binary codec did. It exists for compatibility tests and downgrade
// tooling; new logs are always written in the binary format.
func WriteLegacyLog(path string, entries []Entry) error {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return err
	}
	var out []byte
	var encBuf bytes.Buffer
	for i := range entries {
		encBuf.Reset()
		if err := gob.NewEncoder(&encBuf).Encode(&entries[i]); err != nil {
			f.Close()
			return fmt.Errorf("wal: legacy encode: %w", err)
		}
		out = appendFrame(out, encBuf.Bytes())
	}
	if _, err := f.Write(out); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// encodeTimed encodes e into buf, charging the codec's WAL-surface
// encode counters.
func encodeTimed(buf []byte, e *Entry) []byte {
	start := time.Now()
	buf = appendEntryPayload(buf, e)
	codec.RecordEncode(codec.SurfaceWAL, len(buf), time.Since(start))
	return buf
}
