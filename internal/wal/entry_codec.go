package wal

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"fmt"
	"hash/crc32"
	"os"
	"time"

	"dynamast/internal/codec"
	"dynamast/internal/storage"
)

// Wire schema (format v1) for one log entry. The payload rides inside the
// CRC-32C frame ([u32 length][u32 CRC][payload]) and begins with the codec
// magic+version header; the fields follow in declaration order. Legacy logs
// carry self-contained gob payloads in the same frames — the first payload
// byte discriminates (gob never starts with 0x00), so one log file may mix
// both formats and still replay, which is exactly what happens to a log
// written partly by a pre-codec build and extended by this one.

// appendEntryPayload appends e's binary payload (header included) to buf.
func appendEntryPayload(buf []byte, e *Entry) []byte {
	buf = codec.AppendHeader(buf, codec.Version1)
	buf = codec.AppendUvarint(buf, e.Offset)
	buf = codec.AppendUvarint(buf, uint64(e.Kind))
	buf = codec.AppendInt(buf, int64(e.Origin))
	buf = codec.AppendTime(buf, e.At)
	buf = codec.AppendVector(buf, e.TVV)
	buf = codec.AppendWrites(buf, e.Writes)
	buf = codec.AppendUint64s(buf, e.Partitions)
	buf = codec.AppendInt(buf, int64(e.Peer))
	buf = codec.AppendUvarint(buf, e.Epoch)
	if e.Kind == KindEpoch {
		// The member list exists only on epoch frames, so every other kind's
		// payload stays byte-for-byte what pre-epoch builds wrote (pinned by
		// TestEntryPayloadByteIdentity); old logs decode unchanged.
		buf = appendEpochTxns(buf, e)
	}
	return buf
}

// appendEpochTxns appends a sealed epoch's member transactions: a table-name
// dictionary shared by every member's writes, then per member a commit
// vector delta-encoded against the previous member's (the entry's closing
// vector seeds the chain), a commit-time delta against the entry timestamp,
// and the write set with dictionary-indexed table names. Deltas and the
// dictionary are where the epoch frame beats len(Txns) standalone update
// frames: per-member vectors collapse to a couple of bytes and each table
// name travels once per epoch instead of once per write.
func appendEpochTxns(buf []byte, e *Entry) []byte {
	buf = codec.AppendUvarint(buf, uint64(len(e.Txns)))
	if len(e.Txns) == 0 {
		// Mirror the decoder's early return on a zero count: no dictionary
		// follows (real epochs always carry at least one member).
		return buf
	}
	var tables []string
	idx := make(map[string]uint64, 4)
	for i := range e.Txns {
		for _, w := range e.Txns[i].Writes {
			if _, ok := idx[w.Ref.Table]; !ok {
				idx[w.Ref.Table] = uint64(len(tables))
				tables = append(tables, w.Ref.Table)
			}
		}
	}
	buf = codec.AppendUvarint(buf, uint64(len(tables)))
	for _, t := range tables {
		buf = codec.AppendString(buf, t)
	}
	base := e.At.UnixNano()
	prev := e.TVV
	for i := range e.Txns {
		t := &e.Txns[i]
		buf = codec.AppendVectorMaybeDelta(buf, prev, t.TVV)
		prev = t.TVV
		buf = codec.AppendInt(buf, t.At.UnixNano()-base)
		buf = codec.AppendUvarint(buf, uint64(len(t.Writes)))
		for _, w := range t.Writes {
			buf = codec.AppendUvarint(buf, idx[w.Ref.Table])
			buf = codec.AppendUvarint(buf, w.Ref.Key)
			buf = codec.AppendBytes(buf, w.Data)
			buf = codec.AppendBool(buf, w.Deleted)
		}
	}
	return buf
}

// decodeEpochTxns decodes the member list appended by appendEpochTxns.
func decodeEpochTxns(r *codec.Reader, e *Entry) {
	n := r.Uvarint()
	if r.Err() != nil || n == 0 {
		return
	}
	if n > maxFrame/8 {
		r.Fail(codec.ErrCorrupt)
		return
	}
	nt := r.Uvarint()
	if nt > maxFrame/8 {
		r.Fail(codec.ErrCorrupt)
		return
	}
	tables := make([]string, nt)
	for i := range tables {
		tables[i] = r.String()
	}
	if r.Err() != nil {
		return
	}
	base := e.At.UnixNano()
	prev := e.TVV
	e.Txns = make([]EpochTxn, n)
	for i := range e.Txns {
		t := &e.Txns[i]
		t.TVV = r.VectorMaybeDelta(prev, nil)
		prev = t.TVV
		t.At = time.Unix(0, base+r.Int())
		nw := r.Uvarint()
		if r.Err() != nil {
			return
		}
		if nw > maxFrame/8 {
			r.Fail(codec.ErrCorrupt)
			return
		}
		if nw == 0 {
			continue
		}
		t.Writes = make([]storage.Write, nw)
		for j := range t.Writes {
			ti := r.Uvarint()
			if ti >= uint64(len(tables)) {
				r.Fail(codec.ErrCorrupt)
				return
			}
			t.Writes[j] = storage.Write{
				Ref:     storage.RowRef{Table: tables[ti], Key: r.Uvarint()},
				Data:    r.Bytes(),
				Deleted: r.Bool(),
			}
			if r.Err() != nil {
				return
			}
		}
	}
}

// decodeEntryPayload decodes one frame payload into e, accepting both the
// binary format and legacy gob (the fallback reader for logs written by
// pre-codec builds). intern, when non-nil, deduplicates table-name strings
// across a replay. Decoded slices are freshly allocated — entries live for
// the life of the log and their write payloads escape into MVCC version
// chains, so nothing here may alias pooled or mapped memory.
func decodeEntryPayload(payload []byte, e *Entry, intern map[string]string) error {
	if !codec.IsBinary(payload) {
		codec.RecordLegacy(codec.SurfaceWAL)
		*e = Entry{}
		return gob.NewDecoder(bytes.NewReader(payload)).Decode(e)
	}
	r := codec.NewReader(payload)
	if intern != nil {
		r.SetIntern(intern)
	}
	e.Offset = r.Uvarint()
	e.Kind = Kind(r.Uvarint())
	e.Origin = int(r.Int())
	e.At = r.Time()
	e.TVV = r.Vector(nil)
	e.Writes = r.Writes()
	e.Partitions = r.Uint64s()
	e.Peer = int(r.Int())
	e.Epoch = r.Uvarint()
	e.Txns = nil
	if e.Kind == KindEpoch {
		decodeEpochTxns(r, e)
	}
	return r.Done()
}

// appendFrame appends the on-disk frame for payload: length and CRC-32C
// header, then the payload bytes.
func appendFrame(dst, payload []byte) []byte {
	var hdr [frameHeaderSize]byte
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(hdr[4:8], crc32.Checksum(payload, crcTable))
	dst = append(dst, hdr[:]...)
	return append(dst, payload...)
}

// WriteLegacyLog writes entries to path in the pre-codec format — CRC-32C
// frames around self-contained gob payloads — exactly as builds before the
// binary codec did. It exists for compatibility tests and downgrade
// tooling; new logs are always written in the binary format.
func WriteLegacyLog(path string, entries []Entry) error {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return err
	}
	var out []byte
	var encBuf bytes.Buffer
	for i := range entries {
		encBuf.Reset()
		if err := gob.NewEncoder(&encBuf).Encode(&entries[i]); err != nil {
			f.Close()
			return fmt.Errorf("wal: legacy encode: %w", err)
		}
		out = appendFrame(out, encBuf.Bytes())
	}
	if _, err := f.Write(out); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// EntryWireSize returns e's replicated size in bytes — its CRC frame header
// plus the encoded payload — by encoding into pooled scratch. Replication
// byte accounting and the epoch bytes-saved metric use it; at one call per
// sealed epoch (not per transaction) the encode cost is noise.
func EntryWireSize(e *Entry) int {
	bp := codec.GetBuf()
	b := appendEntryPayload((*bp)[:0], e)
	n := len(b)
	*bp = b[:0]
	codec.PutBuf(bp)
	return frameHeaderSize + n
}

// encodeTimed encodes e into buf, charging the codec's WAL-surface
// encode counters.
func encodeTimed(buf []byte, e *Entry) []byte {
	start := time.Now()
	buf = appendEntryPayload(buf, e)
	codec.RecordEncode(codec.SurfaceWAL, len(buf), time.Since(start))
	return buf
}
