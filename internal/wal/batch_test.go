package wal

import (
	"path/filepath"
	"sync"
	"testing"
	"time"
)

// TestNextBatchDrainsBacklog verifies one NextBatch call returns every
// published entry in order, and that max bounds the batch.
func TestNextBatchDrainsBacklog(t *testing.T) {
	l := New()
	for i := 0; i < 10; i++ {
		if _, err := l.Append(Entry{Kind: KindUpdate, Origin: 0}); err != nil {
			t.Fatal(err)
		}
	}
	c := l.Subscribe(0)
	batch, ok := c.NextBatch(nil, 0)
	if !ok || len(batch) != 10 {
		t.Fatalf("NextBatch = %d entries, ok=%v; want 10, true", len(batch), ok)
	}
	for i, e := range batch {
		if e.Offset != uint64(i) {
			t.Fatalf("batch[%d].Offset = %d", i, e.Offset)
		}
	}

	c2 := l.Subscribe(0)
	first, ok := c2.NextBatch(nil, 3)
	if !ok || len(first) != 3 || c2.Offset() != 3 {
		t.Fatalf("bounded NextBatch = %d entries (offset %d), ok=%v; want 3, 3, true", len(first), c2.Offset(), ok)
	}
	// dst is appended to, not replaced.
	rest, ok := c2.NextBatch(first, 0)
	if !ok || len(rest) != 10 {
		t.Fatalf("appending NextBatch = %d entries, ok=%v; want 10, true", len(rest), ok)
	}
}

// TestNextBatchBlocksAndWakes verifies NextBatch blocks until an append
// and returns entries appended while it waited.
func TestNextBatchBlocksAndWakes(t *testing.T) {
	l := New()
	c := l.Subscribe(0)
	got := make(chan []Entry, 1)
	go func() {
		batch, _ := c.NextBatch(nil, 0)
		got <- batch
	}()
	time.Sleep(5 * time.Millisecond)
	l.Append(Entry{Kind: KindUpdate})
	select {
	case batch := <-got:
		if len(batch) == 0 {
			t.Fatal("empty batch after wake")
		}
	case <-time.After(time.Second):
		t.Fatal("NextBatch did not wake")
	}
}

// TestNextBatchCloseDrains verifies a closed log still yields its
// remaining entries before reporting ok=false.
func TestNextBatchCloseDrains(t *testing.T) {
	l := New()
	l.Append(Entry{Kind: KindUpdate})
	l.Append(Entry{Kind: KindUpdate})
	l.Close()
	c := l.Subscribe(0)
	batch, ok := c.NextBatch(nil, 0)
	if !ok || len(batch) != 2 {
		t.Fatalf("drain after close = %d entries, ok=%v; want 2, true", len(batch), ok)
	}
	if batch, ok = c.NextBatch(batch[:0], 0); ok || len(batch) != 0 {
		t.Fatalf("NextBatch on drained closed log = %d entries, ok=%v; want 0, false", len(batch), ok)
	}
}

// TestGroupCommitDurability drives concurrent appenders at a file-backed
// log and verifies (a) every append is replayable after close — the group
// flush lost nothing — and (b) subscribers observed entries only after
// they were durable (the visibility watermark never passed the flush).
func TestGroupCommitDurability(t *testing.T) {
	path := filepath.Join(t.TempDir(), "site.wal")
	l, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	const writers, perWriter = 8, 50
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				if _, err := l.Append(Entry{Kind: KindUpdate, Origin: 0, Peer: w}); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	// A concurrent subscriber: everything it reads must already be durable.
	done := make(chan struct{})
	go func() {
		defer close(done)
		c := l.Subscribe(0)
		var seen uint64
		for {
			e, ok := c.Next()
			if !ok {
				return
			}
			if e.Offset != seen {
				t.Errorf("subscriber saw offset %d, want %d", e.Offset, seen)
				return
			}
			seen++
		}
	}()
	wg.Wait()
	if got := l.Len(); got != writers*perWriter {
		t.Fatalf("Len = %d, want %d", got, writers*perWriter)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	<-done

	re, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if got := re.Len(); got != writers*perWriter {
		t.Fatalf("replayed Len = %d, want %d", got, writers*perWriter)
	}
}
