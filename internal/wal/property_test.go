package wal

import (
	"path/filepath"
	"testing"
	"testing/quick"

	"dynamast/internal/storage"
	"dynamast/internal/vclock"
)

// Property: any sequence of appended entries replays from disk byte-exact
// and in order.
func TestQuickFileReplayRoundTrip(t *testing.T) {
	dir := t.TempDir()
	n := 0
	f := func(kinds []uint8, payload []byte) bool {
		n++
		path := filepath.Join(dir, "log-"+string(rune('a'+n%26))+itoa(n)+".wal")
		l, err := Open(path)
		if err != nil {
			return false
		}
		var want []Entry
		for i, k := range kinds {
			if i >= 16 {
				break
			}
			e := Entry{
				Kind:   Kind(k%3) + 1,
				Origin: int(k) % 7,
				TVV:    vclock.Vector{uint64(i + 1), uint64(k)},
			}
			if e.Kind == KindUpdate {
				e.Writes = []storage.Write{{
					Ref:  storage.RowRef{Table: "t", Key: uint64(i)},
					Data: append([]byte(nil), payload...),
				}}
			} else {
				e.Partitions = []uint64{uint64(i), uint64(k)}
				e.Peer = int(k) % 5
			}
			if _, err := l.Append(e); err != nil {
				return false
			}
			want = append(want, e)
		}
		l.Close()

		r, err := Open(path)
		if err != nil {
			return false
		}
		defer r.Close()
		if r.Len() != uint64(len(want)) {
			return false
		}
		for i, w := range want {
			got, ok := r.Get(uint64(i))
			if !ok || got.Kind != w.Kind || got.Origin != w.Origin ||
				!got.TVV.Equal(w.TVV) || len(got.Writes) != len(w.Writes) ||
				len(got.Partitions) != len(w.Partitions) || got.Peer != w.Peer {
				return false
			}
			if len(w.Writes) == 1 && string(got.Writes[0].Data) != string(w.Writes[0].Data) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [20]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}

// Property: cursors never skip or duplicate entries regardless of the
// interleaving of appends and reads.
func TestQuickCursorExactlyOnce(t *testing.T) {
	f := func(batchSizes []uint8) bool {
		l := New()
		c := l.Subscribe(0)
		next := 0
		for _, b := range batchSizes {
			k := int(b % 5)
			for i := 0; i < k; i++ {
				l.Append(Entry{Origin: next + i})
			}
			for {
				e, ok := c.TryNext()
				if !ok {
					break
				}
				if e.Origin != next {
					return false
				}
				next++
			}
		}
		return uint64(next) == l.Len()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
