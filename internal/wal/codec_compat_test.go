package wal

import (
	"os"
	"path/filepath"
	"reflect"
	"testing"
	"time"

	"dynamast/internal/codec"
	"dynamast/internal/storage"
	"dynamast/internal/vclock"
)

func compatEntries(n int) []Entry {
	at := time.Unix(0, 1700000000_000000000)
	out := make([]Entry, n)
	for i := range out {
		out[i] = Entry{
			Offset: uint64(i),
			Kind:   KindUpdate,
			Origin: i % 3,
			At:     at.Add(time.Duration(i) * time.Millisecond),
			TVV:    vclock.Vector{uint64(i), uint64(i * 2), 7},
			Writes: []storage.Write{
				{Ref: storage.RowRef{Table: "accounts", Key: uint64(i)}, Data: []byte{byte(i), 0xff}},
				{Ref: storage.RowRef{Table: "orders", Key: uint64(i * 10)}, Deleted: true},
			},
		}
		if i%4 == 3 {
			out[i].Kind = KindGrant
			out[i].Writes = nil
			out[i].Partitions = []uint64{uint64(i), uint64(i + 1)}
			out[i].Peer = (i + 1) % 3
			out[i].Epoch = uint64(i)
		}
	}
	return out
}

func allEntries(t *testing.T, l *Log) []Entry {
	t.Helper()
	c := l.Subscribe(l.Base())
	defer c.Close()
	var out []Entry
	for {
		e, ok := c.TryNext()
		if !ok {
			return out
		}
		out = append(out, e)
	}
}

// TestEntryRoundTrip checks the binary entry schema reproduces every field
// exactly, including the nil/empty conventions gob established.
func TestEntryRoundTrip(t *testing.T) {
	for _, e := range compatEntries(8) {
		payload := appendEntryPayload(nil, &e)
		var got Entry
		if err := decodeEntryPayload(payload, &got, nil); err != nil {
			t.Fatalf("decode: %v", err)
		}
		if !reflect.DeepEqual(e, got) {
			t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", got, e)
		}
	}
}

// TestLegacyLogReplays proves a log written wholly by a pre-codec (gob)
// build opens and replays to identical entries through the fallback reader.
func TestLegacyLogReplays(t *testing.T) {
	codec.Reset()
	path := filepath.Join(t.TempDir(), "site-0.wal")
	want := compatEntries(10)
	if err := WriteLegacyLog(path, want); err != nil {
		t.Fatal(err)
	}
	l, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	if got := allEntries(t, l); !reflect.DeepEqual(got, want) {
		t.Fatalf("legacy replay mismatch:\n got %+v\nwant %+v", got, want)
	}
	if n := codec.LegacyFrames(codec.SurfaceWAL); n != uint64(len(want)) {
		t.Fatalf("legacy frame counter = %d, want %d", n, len(want))
	}
}

// TestMixedFormatLogReplays proves the upgrade scenario end to end: a log
// whose prefix was written by a gob build and whose suffix was appended by
// this build (binary format) replays to the exact combined entry sequence,
// and survives a further reopen.
func TestMixedFormatLogReplays(t *testing.T) {
	path := filepath.Join(t.TempDir(), "site-0.wal")
	want := compatEntries(12)

	// The "old build" writes the first half in gob frames.
	if err := WriteLegacyLog(path, want[:6]); err != nil {
		t.Fatal(err)
	}

	// The "new build" opens the log and appends the second half — these
	// frames are binary-format, in the same file.
	l, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range want[6:] {
		if _, err := l.Append(e); err != nil {
			t.Fatal(err)
		}
	}
	if got := allEntries(t, l); !reflect.DeepEqual(got, want) {
		t.Fatalf("mixed log mismatch after append:\n got %+v\nwant %+v", got, want)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	// A second recovery replays the gob prefix and binary suffix again.
	l2, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if got := allEntries(t, l2); !reflect.DeepEqual(got, want) {
		t.Fatalf("mixed log mismatch after reopen:\n got %+v\nwant %+v", got, want)
	}
}

// TestTruncationRewritesLegacyToBinary checks that the compaction rewrite
// upgrades legacy frames in place: after SetLowWater on a gob-written log,
// the surviving suffix is rewritten in the binary format and still replays.
func TestTruncationRewritesLegacyToBinary(t *testing.T) {
	path := filepath.Join(t.TempDir(), "site-0.wal")
	want := compatEntries(10)
	if err := WriteLegacyLog(path, want); err != nil {
		t.Fatal(err)
	}
	l, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := l.SetLowWater(4); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	codec.Reset()
	l2, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if got := allEntries(t, l2); !reflect.DeepEqual(got, want[4:]) {
		t.Fatalf("post-truncation replay mismatch:\n got %+v\nwant %+v", got, want[4:])
	}
	if n := codec.LegacyFrames(codec.SurfaceWAL); n != 0 {
		t.Fatalf("rewritten log still contains %d legacy frames", n)
	}
}

// FuzzWALFrameDecode feeds arbitrary bytes to the entry payload decoder:
// it must never panic, and whatever it accepts must re-encode and decode
// to the same entry (decode∘encode is the identity on accepted inputs).
func FuzzWALFrameDecode(f *testing.F) {
	for _, e := range compatEntries(4) {
		f.Add(appendEntryPayload(nil, &e))
	}
	f.Add([]byte{})
	f.Add([]byte{codec.Magic})
	f.Add([]byte{codec.Magic, codec.Version1})
	f.Add([]byte{codec.Magic, 0x7f, 0x01})
	f.Add([]byte{0x42, 0xff, 0x00, 0x01})
	f.Fuzz(func(t *testing.T, payload []byte) {
		var e Entry
		if err := decodeEntryPayload(payload, &e, map[string]string{}); err != nil {
			return
		}
		re := appendEntryPayload(nil, &e)
		var e2 Entry
		if err := decodeEntryPayload(re, &e2, nil); err != nil {
			t.Fatalf("re-decode of accepted entry failed: %v", err)
		}
		if !reflect.DeepEqual(e, e2) {
			t.Fatalf("decode/encode not idempotent:\n got %+v\nwant %+v", e2, e)
		}
	})
}

// TestLegacyLogFileIsGobFramed sanity-checks the legacy writer really does
// produce pre-codec bytes: no payload may start with the codec magic.
func TestLegacyLogFileIsGobFramed(t *testing.T) {
	path := filepath.Join(t.TempDir(), "site-0.wal")
	if err := WriteLegacyLog(path, compatEntries(3)); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	off := 0
	for off < len(data) {
		n := int(uint32(data[off]) | uint32(data[off+1])<<8 | uint32(data[off+2])<<16 | uint32(data[off+3])<<24)
		payload := data[off+frameHeaderSize : off+frameHeaderSize+n]
		if codec.IsBinary(payload) {
			t.Fatal("legacy writer produced a binary-format payload")
		}
		off += frameHeaderSize + n
	}
}
