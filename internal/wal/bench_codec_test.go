package wal

import (
	"bytes"
	"encoding/gob"
	"path/filepath"
	"testing"
)

// benchEntry is a representative update: a 2-write commit with a 3-site
// vector, the shape the WAL encodes on every transaction.
func benchEntry() Entry {
	e := compatEntries(2)[1]
	return e
}

// BenchmarkWALEncodeEntry isolates entry serialization — the work Append
// does under the log mutex — in both formats. The binary/gob ratio is the
// codec's headline number.
func BenchmarkWALEncodeEntry(b *testing.B) {
	e := benchEntry()
	b.Run("binary", func(b *testing.B) {
		var buf []byte
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			buf = appendEntryPayload(buf[:0], &e)
		}
	})
	b.Run("gob", func(b *testing.B) {
		var buf bytes.Buffer
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			buf.Reset()
			if err := gob.NewEncoder(&buf).Encode(&e); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkWALDecodeEntry isolates entry deserialization — the per-frame
// work of replay — in both formats.
func BenchmarkWALDecodeEntry(b *testing.B) {
	e := benchEntry()
	b.Run("binary", func(b *testing.B) {
		payload := appendEntryPayload(nil, &e)
		intern := make(map[string]string)
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			var out Entry
			if err := decodeEntryPayload(payload, &out, intern); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("gob", func(b *testing.B) {
		var buf bytes.Buffer
		if err := gob.NewEncoder(&buf).Encode(&e); err != nil {
			b.Fatal(err)
		}
		payload := buf.Bytes()
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			var out Entry
			if err := decodeEntryPayload(payload, &out, nil); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkWALAppend measures the full durable append path — encode, frame,
// group commit to the file — from a single appender. The allocs/op figure
// is the acceptance criterion: the encode path itself must not allocate
// (steady-state allocations come only from retaining the entry).
func BenchmarkWALAppend(b *testing.B) {
	l, err := Open(filepath.Join(b.TempDir(), "bench.wal"))
	if err != nil {
		b.Fatal(err)
	}
	defer l.Close()
	e := benchEntry()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := l.Append(e); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkWALReplay measures Open over a 10k-entry log in each format —
// the restart-latency contribution of entry decoding.
func BenchmarkWALReplay(b *testing.B) {
	const n = 10_000
	entries := make([]Entry, n)
	for i := range entries {
		entries[i] = benchEntry()
		entries[i].Offset = uint64(i)
	}
	b.Run("binary", func(b *testing.B) {
		path := filepath.Join(b.TempDir(), "bench.wal")
		l, err := Open(path)
		if err != nil {
			b.Fatal(err)
		}
		for i := range entries {
			if _, err := l.Append(entries[i]); err != nil {
				b.Fatal(err)
			}
		}
		l.Close()
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			l, err := Open(path)
			if err != nil {
				b.Fatal(err)
			}
			if l.Len() != n {
				b.Fatalf("replayed %d entries", l.Len())
			}
			l.Close()
		}
	})
	b.Run("legacy-gob", func(b *testing.B) {
		path := filepath.Join(b.TempDir(), "bench.wal")
		if err := WriteLegacyLog(path, entries); err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			l, err := Open(path)
			if err != nil {
				b.Fatal(err)
			}
			if l.Len() != n {
				b.Fatalf("replayed %d entries", l.Len())
			}
			l.Close()
		}
	})
}
