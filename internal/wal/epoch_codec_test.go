package wal

import (
	"bytes"
	"path/filepath"
	"reflect"
	"testing"
	"time"

	"dynamast/internal/codec"
	"dynamast/internal/storage"
	"dynamast/internal/vclock"
)

// epochEntry builds a sealed-epoch entry with n member transactions whose
// vectors step the way real commits do: the origin dimension is seq-dense
// and remote dimensions move occasionally (small deltas, the case the
// delta encoding is built for).
func epochEntry(origin, n int) Entry {
	at := time.Unix(0, 1700000000_000000000)
	e := Entry{
		Kind:   KindEpoch,
		Origin: origin,
		At:     at,
		Txns:   make([]EpochTxn, n),
	}
	closing := vclock.Vector{3, 5, 9}
	for i := range e.Txns {
		seq := uint64(10 + i)
		tvv := closing.Clone()
		tvv[origin] = seq
		if i%3 == 2 {
			tvv[(origin+1)%3] += uint64(i)
		}
		e.Txns[i] = EpochTxn{
			TVV: tvv,
			At:  at.Add(time.Duration(i) * 100 * time.Microsecond),
			Writes: []storage.Write{
				{Ref: storage.RowRef{Table: "accounts", Key: uint64(i)}, Data: []byte{byte(i), 0xaa}},
				{Ref: storage.RowRef{Table: "orders", Key: uint64(i * 7)}, Deleted: true},
			},
		}
	}
	closing = vclock.Vector{}
	for i := range e.Txns {
		closing = closing.MaxInto(e.Txns[i].TVV)
	}
	e.TVV = closing
	return e
}

// TestEpochEntryRoundTrip checks the epoch frame schema — table dictionary,
// chained maybe-delta member vectors, time deltas — reproduces every member
// exactly.
func TestEpochEntryRoundTrip(t *testing.T) {
	for _, n := range []int{1, 2, 7, 33} {
		e := epochEntry(1, n)
		payload := appendEntryPayload(nil, &e)
		var got Entry
		if err := decodeEntryPayload(payload, &got, nil); err != nil {
			t.Fatalf("n=%d decode: %v", n, err)
		}
		if !reflect.DeepEqual(e, got) {
			t.Fatalf("n=%d round trip mismatch:\n got %+v\nwant %+v", n, got, e)
		}
	}
}

// TestEpochFrameBeatsStandaloneUpdates asserts the coalescing actually wins
// bytes: one epoch frame must be smaller than the len(Txns) standalone
// update frames it replaces.
func TestEpochFrameBeatsStandaloneUpdates(t *testing.T) {
	e := epochEntry(0, 16)
	coalesced := EntryWireSize(&e)
	var split int
	for i := range e.Txns {
		u := Entry{
			Kind:   KindUpdate,
			Origin: e.Origin,
			At:     e.Txns[i].At,
			TVV:    e.Txns[i].TVV,
			Writes: e.Txns[i].Writes,
		}
		split += EntryWireSize(&u)
	}
	if coalesced >= split {
		t.Fatalf("epoch frame %dB not smaller than %dB of standalone updates", coalesced, split)
	}
	// The acceptance bar for the replication path is a ≥40% per-txn byte
	// reduction; the pure encoding should clear it with room to spare.
	if float64(coalesced) > 0.6*float64(split) {
		t.Errorf("epoch frame %dB saves <40%% vs %dB standalone", coalesced, split)
	}
}

// TestEntryPayloadByteIdentity pins the payload bytes of every non-epoch
// entry kind to the pre-epoch schema: field by field, in declaration order,
// with no epoch member list. A log written with epochs disabled must be
// byte-identical to one written by a pre-epoch build, so old binaries can
// read new logs that contain no epoch frames.
func TestEntryPayloadByteIdentity(t *testing.T) {
	for _, e := range compatEntries(8) {
		if e.Kind == KindEpoch {
			t.Fatal("compatEntries must not produce epoch entries")
		}
		got := appendEntryPayload(nil, &e)

		// Reference encoding: the PR 5 wire schema, reproduced inline.
		want := codec.AppendHeader(nil, codec.Version1)
		want = codec.AppendUvarint(want, e.Offset)
		want = codec.AppendUvarint(want, uint64(e.Kind))
		want = codec.AppendInt(want, int64(e.Origin))
		want = codec.AppendTime(want, e.At)
		want = codec.AppendVector(want, e.TVV)
		want = codec.AppendWrites(want, e.Writes)
		want = codec.AppendUint64s(want, e.Partitions)
		want = codec.AppendInt(want, int64(e.Peer))
		want = codec.AppendUvarint(want, e.Epoch)

		if !bytes.Equal(got, want) {
			t.Fatalf("kind %v payload diverged from the pre-epoch schema:\n got %x\nwant %x",
				e.Kind, got, want)
		}
	}
}

// TestMixedLegacyAndEpochLogReplays proves the full upgrade scenario: a gob
// prefix written by a pre-codec build, a binary middle of per-transaction
// updates, and an epoch-frame suffix all replay as one sequence, and
// survive a reopen.
func TestMixedLegacyAndEpochLogReplays(t *testing.T) {
	path := filepath.Join(t.TempDir(), "site-0.wal")
	legacy := compatEntries(6)
	if err := WriteLegacyLog(path, legacy); err != nil {
		t.Fatal(err)
	}

	l, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	suffix := append(compatEntries(9)[6:], epochEntry(1, 5), epochEntry(2, 1))
	want := append(append([]Entry(nil), legacy...), suffix...)
	for i := range suffix {
		suffix[i].Offset = uint64(6 + i)
		want[6+i].Offset = uint64(6 + i)
		if _, err := l.Append(suffix[i]); err != nil {
			t.Fatal(err)
		}
	}
	if got := allEntries(t, l); !reflect.DeepEqual(got, want) {
		t.Fatalf("mixed epoch log mismatch after append:\n got %+v\nwant %+v", got, want)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	l2, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if got := allEntries(t, l2); !reflect.DeepEqual(got, want) {
		t.Fatalf("mixed epoch log mismatch after reopen:\n got %+v\nwant %+v", got, want)
	}
}

// TestEpochEntrySeqHelpers checks the sequence bookkeeping replicas rely on:
// FirstSeq/lastSeq over dense member ranges, and IsUpdate classification.
func TestEpochEntrySeqHelpers(t *testing.T) {
	e := epochEntry(1, 5)
	if !e.IsUpdate() {
		t.Error("epoch entry must classify as an update")
	}
	if got, want := e.FirstSeq(), e.TVV[1]-4; got != want {
		t.Errorf("FirstSeq = %d, want %d", got, want)
	}
	rel := Entry{Kind: KindRelease, Origin: 1, TVV: vclock.Vector{1, 2, 3}}
	if rel.IsUpdate() {
		t.Error("release entry must not classify as an update")
	}
	if got := rel.FirstSeq(); got != 0 {
		t.Errorf("release FirstSeq = %d, want 0", got)
	}
}

// FuzzEpochFrameDecode drives the epoch member decoder with arbitrary
// bytes: it must never panic, and any accepted payload must re-encode and
// re-decode to the same entry.
func FuzzEpochFrameDecode(f *testing.F) {
	for _, n := range []int{1, 3, 12} {
		e := epochEntry(n%3, n)
		f.Add(appendEntryPayload(nil, &e))
	}
	// A truncated epoch payload and a member count larger than the buffer.
	e := epochEntry(0, 4)
	full := appendEntryPayload(nil, &e)
	f.Add(full[:len(full)/2])
	f.Add(append(append([]byte{}, full[:12]...), 0xff, 0xff, 0xff, 0x7f))
	f.Fuzz(func(t *testing.T, payload []byte) {
		var e Entry
		if err := decodeEntryPayload(payload, &e, map[string]string{}); err != nil {
			return
		}
		re := appendEntryPayload(nil, &e)
		var e2 Entry
		if err := decodeEntryPayload(re, &e2, nil); err != nil {
			t.Fatalf("re-decode of accepted entry failed: %v", err)
		}
		if !reflect.DeepEqual(e, e2) {
			t.Fatalf("decode/encode not idempotent:\n got %+v\nwant %+v", e2, e)
		}
	})
}
