package wal

import (
	"encoding/binary"
	"os"
	"path/filepath"
	"testing"
)

// writeTestLog creates a file-backed log with n update entries and closes
// it, returning the path.
func writeTestLog(t *testing.T, n int) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "site.wal")
	l, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		if _, err := l.Append(Entry{Kind: KindUpdate, Origin: 0}); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestOpenTruncatesTornTail(t *testing.T) {
	path := writeTestLog(t, 5)
	// A crash mid-write leaves a partial record: chop bytes off the tail.
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, data[:len(data)-3], 0o644); err != nil {
		t.Fatal(err)
	}

	l, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	if l.Len() != 4 {
		t.Fatalf("replayed %d entries after torn tail, want 4", l.Len())
	}
	if l.TornBytes() == 0 {
		t.Fatal("torn tail not reported")
	}
	// The file was truncated at the last intact record: appends resume and
	// a further reopen sees a clean log.
	if _, err := l.Append(Entry{Kind: KindUpdate, Origin: 0}); err != nil {
		t.Fatal(err)
	}
	l.Close()
	l2, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if l2.Len() != 5 || l2.TornBytes() != 0 {
		t.Fatalf("after repair+append: len=%d torn=%d, want 5, 0", l2.Len(), l2.TornBytes())
	}
}

func TestOpenDetectsBitRot(t *testing.T) {
	path := writeTestLog(t, 5)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Flip one payload bit inside the LAST record. Walk the frames to find
	// its payload start.
	off := 0
	last := 0
	for off+frameHeaderSize < len(data) {
		last = off
		n := binary.LittleEndian.Uint32(data[off:])
		off += frameHeaderSize + int(n)
	}
	data[last+frameHeaderSize] ^= 0x40
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}

	l, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	if l.Len() != 4 {
		t.Fatalf("replayed %d entries with corrupt final record, want 4", l.Len())
	}
	if l.TornBytes() == 0 {
		t.Fatal("corruption not reported")
	}
}

func TestOpenCorruptLengthHeader(t *testing.T) {
	path := writeTestLog(t, 3)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Garbage length claiming more bytes than the file holds must be
	// treated as a torn tail, not an allocation or a partial read.
	hdr := make([]byte, frameHeaderSize)
	binary.LittleEndian.PutUint32(hdr[0:4], ^uint32(0))
	if err := os.WriteFile(path, append(data, hdr...), 0o644); err != nil {
		t.Fatal(err)
	}
	l, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	if l.Len() != 3 {
		t.Fatalf("replayed %d entries, want 3", l.Len())
	}
	if l.TornBytes() != frameHeaderSize {
		t.Fatalf("torn bytes = %d, want %d", l.TornBytes(), frameHeaderSize)
	}
}
