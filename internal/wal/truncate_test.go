package wal

import (
	"os"
	"path/filepath"
	"testing"

	"dynamast/internal/storage"
	"dynamast/internal/vclock"
)

func updateEntry(origin int, seq uint64) Entry {
	return Entry{
		Kind:   KindUpdate,
		Origin: origin,
		TVV:    vclock.Vector{seq},
		Writes: []storage.Write{{Ref: storage.RowRef{Table: "t", Key: seq}, Data: make([]byte, 64)}},
	}
}

func TestTruncateReclaimsFileBytes(t *testing.T) {
	path := filepath.Join(t.TempDir(), "site-0.wal")
	l, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	for i := uint64(1); i <= 200; i++ {
		if _, err := l.Append(updateEntry(0, i)); err != nil {
			t.Fatal(err)
		}
	}
	before, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}

	dropped, err := l.SetLowWater(150)
	if err != nil {
		t.Fatal(err)
	}
	if dropped != 150 {
		t.Fatalf("dropped %d entries, want 150", dropped)
	}
	after, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if after.Size() >= before.Size() {
		t.Fatalf("file did not shrink: %d -> %d bytes", before.Size(), after.Size())
	}
	if l.Base() != 150 || l.Len() != 200 {
		t.Fatalf("base=%d len=%d, want 150/200", l.Base(), l.Len())
	}
	// Truncated offsets are gone; retained ones keep their identity.
	if _, ok := l.Get(149); ok {
		t.Fatal("truncated offset 149 still readable")
	}
	if e, ok := l.Get(150); !ok || e.Offset != 150 {
		t.Fatalf("retained offset 150: ok=%v off=%d", ok, e.Offset)
	}

	// Appends continue after truncation with dense offsets.
	off, err := l.Append(updateEntry(0, 201))
	if err != nil || off != 200 {
		t.Fatalf("post-truncation append: off=%d err=%v", off, err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	// Reopen: the log resumes at its truncated base with the suffix intact.
	l2, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if l2.Base() != 150 || l2.Len() != 201 {
		t.Fatalf("reopened base=%d len=%d, want 150/201", l2.Base(), l2.Len())
	}
	c := l2.Subscribe(0) // clamped up to base
	defer c.Close()
	e, ok := c.TryNext()
	if !ok || e.Offset != 150 || e.TVV[0] != 151 {
		t.Fatalf("first replayed entry: ok=%v off=%d seq=%v", ok, e.Offset, e.TVV)
	}
}

func TestTruncateFlooredByRegisteredCursor(t *testing.T) {
	l := New()
	for i := uint64(1); i <= 100; i++ {
		if _, err := l.Append(updateEntry(0, i)); err != nil {
			t.Fatal(err)
		}
	}
	c := l.Subscribe(0)
	for i := 0; i < 30; i++ {
		c.Next()
	}

	dropped, err := l.SetLowWater(80)
	if err != nil {
		t.Fatal(err)
	}
	if dropped != 30 || l.Base() != 30 {
		t.Fatalf("dropped=%d base=%d, want 30/30 (cursor floors the low-water)", dropped, l.Base())
	}

	// The slow reader still sees a contiguous stream.
	if e, ok := c.Next(); !ok || e.Offset != 30 {
		t.Fatalf("cursor read after truncation: ok=%v off=%d", ok, e.Offset)
	}

	// Closing the cursor releases the floor up to the low-water mark.
	c.Close()
	dropped, err = l.SetLowWater(80)
	if err != nil {
		t.Fatal(err)
	}
	if dropped != 50 || l.Base() != 80 {
		t.Fatalf("dropped=%d base=%d after cursor close, want 50/80", dropped, l.Base())
	}
}

func TestFirstUpdateOffsetAfter(t *testing.T) {
	l := New()
	l.Append(updateEntry(0, 1))                               // off 0
	l.Append(Entry{Kind: KindGrant, Partitions: []uint64{7}}) // off 1
	l.Append(updateEntry(0, 2))                               // off 2
	l.Append(updateEntry(0, 3))                               // off 3

	for _, tc := range []struct{ seq, want uint64 }{
		{0, 0}, {1, 2}, {2, 3}, {3, 4}, {99, 4},
	} {
		if got := l.FirstUpdateOffsetAfter(tc.seq); got != tc.want {
			t.Errorf("FirstUpdateOffsetAfter(%d) = %d, want %d", tc.seq, got, tc.want)
		}
	}
}

func TestSetLowWaterNeverLowers(t *testing.T) {
	l := New()
	for i := uint64(1); i <= 10; i++ {
		l.Append(updateEntry(0, i))
	}
	if _, err := l.SetLowWater(8); err != nil {
		t.Fatal(err)
	}
	dropped, err := l.SetLowWater(3)
	if err != nil {
		t.Fatal(err)
	}
	if dropped != 0 || l.Base() != 8 || l.LowWater() != 8 {
		t.Fatalf("lowering: dropped=%d base=%d lw=%d, want 0/8/8", dropped, l.Base(), l.LowWater())
	}
}
