package wal

import (
	"path/filepath"
	"sync"
	"testing"
	"time"

	"dynamast/internal/storage"
	"dynamast/internal/vclock"
)

func TestAppendAssignsDenseOffsets(t *testing.T) {
	l := New()
	for i := 0; i < 5; i++ {
		off, err := l.Append(Entry{Kind: KindUpdate, Origin: 1})
		if err != nil {
			t.Fatal(err)
		}
		if off != uint64(i) {
			t.Fatalf("offset %d, want %d", off, i)
		}
	}
	if l.Len() != 5 {
		t.Fatalf("Len = %d", l.Len())
	}
	e, ok := l.Get(3)
	if !ok || e.Offset != 3 {
		t.Fatalf("Get(3) = %+v %v", e, ok)
	}
	if _, ok := l.Get(99); ok {
		t.Fatal("Get past end succeeded")
	}
}

func TestCursorOrderedDelivery(t *testing.T) {
	l := New()
	c := l.Subscribe(0)
	for i := 0; i < 10; i++ {
		l.Append(Entry{Kind: KindUpdate, Origin: i})
	}
	for i := 0; i < 10; i++ {
		e, ok := c.TryNext()
		if !ok || e.Origin != i {
			t.Fatalf("entry %d: %+v %v", i, e, ok)
		}
	}
	if _, ok := c.TryNext(); ok {
		t.Fatal("TryNext past end succeeded")
	}
	if c.Offset() != 10 {
		t.Fatalf("Offset = %d", c.Offset())
	}
}

func TestCursorBlockingNext(t *testing.T) {
	l := New()
	c := l.Subscribe(0)
	got := make(chan Entry, 1)
	go func() {
		e, ok := c.Next()
		if ok {
			got <- e
		}
	}()
	select {
	case <-got:
		t.Fatal("Next returned before append")
	case <-time.After(10 * time.Millisecond):
	}
	l.Append(Entry{Kind: KindGrant, Peer: 2})
	select {
	case e := <-got:
		if e.Kind != KindGrant || e.Peer != 2 {
			t.Fatalf("got %+v", e)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("Next never woke")
	}
}

func TestCursorSubscribeMidStream(t *testing.T) {
	l := New()
	for i := 0; i < 5; i++ {
		l.Append(Entry{Origin: i})
	}
	c := l.Subscribe(3)
	e, ok := c.TryNext()
	if !ok || e.Origin != 3 {
		t.Fatalf("mid-stream cursor read %+v %v", e, ok)
	}
}

func TestCloseWakesCursors(t *testing.T) {
	l := New()
	c := l.Subscribe(0)
	done := make(chan bool, 1)
	go func() {
		_, ok := c.Next()
		done <- ok
	}()
	time.Sleep(5 * time.Millisecond)
	l.Close()
	select {
	case ok := <-done:
		if ok {
			t.Fatal("Next returned an entry from an empty closed log")
		}
	case <-time.After(2 * time.Second):
		t.Fatal("Next not woken by Close")
	}
	if _, err := l.Append(Entry{}); err == nil {
		t.Fatal("Append after Close succeeded")
	}
}

func TestCloseDrainsBeforeEOF(t *testing.T) {
	l := New()
	l.Append(Entry{Origin: 7})
	l.Close()
	c := l.Subscribe(0)
	e, ok := c.Next()
	if !ok || e.Origin != 7 {
		t.Fatalf("drain read %+v %v", e, ok)
	}
	if _, ok := c.Next(); ok {
		t.Fatal("read past drained closed log")
	}
}

func TestFileBackedReplay(t *testing.T) {
	path := filepath.Join(t.TempDir(), "site-0.wal")
	l, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	writes := []storage.Write{{Ref: storage.RowRef{Table: "t", Key: 9}, Data: []byte("hello")}}
	l.Append(Entry{Kind: KindUpdate, Origin: 2, TVV: vclock.Vector{0, 0, 3}, Writes: writes})
	l.Append(Entry{Kind: KindRelease, Origin: 2, Partitions: []uint64{4, 5}, Peer: 1})
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	r, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if r.Len() != 2 {
		t.Fatalf("replayed Len = %d", r.Len())
	}
	e, _ := r.Get(0)
	if e.Kind != KindUpdate || !e.TVV.Equal(vclock.Vector{0, 0, 3}) ||
		len(e.Writes) != 1 || string(e.Writes[0].Data) != "hello" {
		t.Fatalf("replayed entry 0 = %+v", e)
	}
	e, _ = r.Get(1)
	if e.Kind != KindRelease || len(e.Partitions) != 2 || e.Peer != 1 {
		t.Fatalf("replayed entry 1 = %+v", e)
	}
	// Appends continue from the replayed offset.
	off, err := r.Append(Entry{Kind: KindGrant})
	if err != nil || off != 2 {
		t.Fatalf("post-replay append = %d, %v", off, err)
	}
}

func TestConcurrentAppendersAndSubscriber(t *testing.T) {
	l := New()
	const appenders, per = 4, 50
	var wg sync.WaitGroup
	for a := 0; a < appenders; a++ {
		wg.Add(1)
		go func(a int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				if _, err := l.Append(Entry{Origin: a}); err != nil {
					panic(err)
				}
			}
		}(a)
	}
	c := l.Subscribe(0)
	seen := 0
	done := make(chan struct{})
	go func() {
		defer close(done)
		for seen < appenders*per {
			e, ok := c.Next()
			if !ok {
				return
			}
			if e.Offset != uint64(seen) {
				panic("out of order delivery")
			}
			seen++
		}
	}()
	wg.Wait()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatalf("subscriber saw %d/%d", seen, appenders*per)
	}
}

func TestBroker(t *testing.T) {
	b := NewBroker(3)
	if b.Sites() != 3 {
		t.Fatalf("Sites = %d", b.Sites())
	}
	b.Log(1).Append(Entry{Origin: 1})
	if b.Log(1).Len() != 1 || b.Log(0).Len() != 0 {
		t.Fatal("broker logs not independent")
	}
	if err := b.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestOpenBrokerRecovers(t *testing.T) {
	dir := t.TempDir()
	b, err := OpenBroker(dir, 2)
	if err != nil {
		t.Fatal(err)
	}
	b.Log(0).Append(Entry{Kind: KindUpdate, Origin: 0})
	b.Log(1).Append(Entry{Kind: KindUpdate, Origin: 1})
	b.Log(1).Append(Entry{Kind: KindGrant, Origin: 1})
	b.Close()

	r, err := OpenBroker(dir, 2)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if r.Log(0).Len() != 1 || r.Log(1).Len() != 2 {
		t.Fatalf("recovered lens = %d, %d", r.Log(0).Len(), r.Log(1).Len())
	}
}

func TestKindString(t *testing.T) {
	if KindUpdate.String() != "update" || KindRelease.String() != "release" ||
		KindGrant.String() != "grant" || Kind(9).String() != "kind(9)" {
		t.Fatal("Kind.String broken")
	}
}
