package sitemgr

import (
	"errors"
	"testing"

	"dynamast/internal/storage"
	"dynamast/internal/wal"
)

// countKind tallies entries of kind k in site i's log.
func countKind(b *wal.Broker, i int, k wal.Kind) int {
	cur := b.Log(i).Subscribe(0)
	n := 0
	for {
		e, ok := cur.TryNext()
		if !ok {
			return n
		}
		if e.Kind == k {
			n++
		}
	}
}

func TestReleaseGrantIdempotentPerEpoch(t *testing.T) {
	sites, b := testCluster(t, 2)
	s0, s1 := sites[0], sites[1]

	const epoch = 7
	rel1, err := s0.Release([]uint64{0}, 1, epoch)
	if err != nil {
		t.Fatal(err)
	}
	// A retried release (lost RPC response) must be a lookup, not a second
	// state change: same vector, no new log entry.
	rel2, err := s0.Release([]uint64{0}, 1, epoch)
	if err != nil {
		t.Fatal(err)
	}
	if !rel1.Equal(rel2) {
		t.Fatalf("retried release returned %v, first returned %v", rel2, rel1)
	}
	if n := countKind(b, 0, wal.KindRelease); n != 1 {
		t.Fatalf("%d release entries logged, want 1", n)
	}

	g1, err := s1.Grant([]uint64{0}, rel1, 0, epoch)
	if err != nil {
		t.Fatal(err)
	}
	g2, err := s1.Grant([]uint64{0}, rel1, 0, epoch)
	if err != nil {
		t.Fatal(err)
	}
	if !g1.Equal(g2) {
		t.Fatalf("retried grant returned %v, first returned %v", g2, g1)
	}
	if n := countKind(b, 1, wal.KindGrant); n != 1 {
		t.Fatalf("%d grant entries logged, want 1", n)
	}
	if !s1.Masters(0) || s0.Masters(0) {
		t.Fatalf("ownership wrong after idempotent transfer: s0=%v s1=%v", s0.Masters(0), s1.Masters(0))
	}
}

func TestStaleEpochFenced(t *testing.T) {
	sites, _ := testCluster(t, 3)
	s0, s1 := sites[0], sites[1]

	// Partition 0 moves 0 -> 1 under epoch 10.
	rel, err := s0.Release([]uint64{0}, 1, 10)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s1.Grant([]uint64{0}, rel, 0, 10); err != nil {
		t.Fatal(err)
	}

	// A straggler chain from before (epoch 4) must not clobber the newer
	// ownership at either end.
	if _, err := s1.Release([]uint64{0}, 2, 4); !errors.Is(err, ErrStaleEpoch) {
		t.Fatalf("stale release: %v", err)
	}
	if _, err := s0.Grant([]uint64{0}, rel, 1, 4); !errors.Is(err, ErrStaleEpoch) {
		t.Fatalf("stale grant: %v", err)
	}
	if !s1.Masters(0) || s0.Masters(0) {
		t.Fatalf("stale chain moved ownership: s0=%v s1=%v", s0.Masters(0), s1.Masters(0))
	}
}

func TestKilledSiteFailsFast(t *testing.T) {
	sites, _ := testCluster(t, 2)
	s0 := sites[0]

	// A transaction in flight when the site dies must abort retryably, not
	// hang or commit.
	tx, err := s0.Begin(nil, []storage.RowRef{ref(5)})
	if err != nil {
		t.Fatal(err)
	}
	tx.Write(ref(5), []byte("doomed"))

	s0.Kill()
	if s0.Alive() {
		t.Fatal("killed site reports alive")
	}
	if _, err := tx.Commit(); !errors.Is(err, ErrSiteDown) {
		t.Fatalf("commit on killed site: %v", err)
	}

	if _, err := s0.Begin(nil, []storage.RowRef{ref(5)}); !errors.Is(err, ErrSiteDown) {
		t.Fatalf("begin on killed site: %v", err)
	}
	if _, err := s0.Begin(nil, nil); !errors.Is(err, ErrSiteDown) {
		t.Fatalf("read-only begin on killed site: %v", err)
	}
	if _, err := s0.Release([]uint64{0}, 1, 1); !errors.Is(err, ErrSiteDown) {
		t.Fatalf("release on killed site: %v", err)
	}
	if _, err := s0.Grant([]uint64{9}, nil, 1, 2); !errors.Is(err, ErrSiteDown) {
		t.Fatalf("grant on killed site: %v", err)
	}
	// Kill is idempotent. (Stop still requires the broker closed first —
	// the testCluster cleanup tears down in that order.)
	s0.Kill()
}

func TestReleaseAppendFailureKeepsOwnership(t *testing.T) {
	// The satellite fix: if the WAL append fails, the site must NOT have
	// surrendered ownership — otherwise the partition is stranded (no log
	// record for recovery, no live master).
	sites, b := testCluster(t, 2)
	s0 := sites[0]

	// Closing the site's log makes every append fail.
	b.Log(0).Close()
	if _, err := s0.Release([]uint64{0}, 1, 3); err == nil {
		t.Fatal("release succeeded with a dead log")
	}
	if !s0.Masters(0) {
		t.Fatal("release with failed append surrendered ownership")
	}
	// The partition is not stuck in `releasing` either: mastership checks
	// still pass for routing purposes.
	s0.pmu.Lock()
	releasing := s0.parts[0].releasing
	s0.pmu.Unlock()
	if releasing {
		t.Fatal("failed release left partition marked releasing")
	}
}
