package sitemgr

import (
	"errors"
	"sync"

	"dynamast/internal/storage"
	"dynamast/internal/transport"
	"dynamast/internal/vclock"
	"dynamast/internal/wal"
)

// Partial replication: a site hosts only a subset of the partitions.
//
// With Config.PartialReplication set, the site keeps a hosting map (a seed
// membership function plus explicit add/drop overrides) and its refresh
// appliers filter every incoming write set against it. Crucially the site
// clock stays DENSE: an applier advances svv[origin] past entries whose
// writes it filtered out entirely, so svv[o] = n means "this site has
// OBSERVED (installed or deliberately skipped) o's first n commits". All
// Equation 1 dependency waits, CanApplyEpoch gates, freshness waits and
// quiescence checks keep their existing mechanics; soundness comes from
// routing — transactions that read or write a partition never execute at a
// site outside its replica set (Txn.Read poisons with ErrNotHosted and the
// session re-routes).
//
// Hosting flips synchronize with the appliers the same way BootstrapFrom
// does: HostPartition/UnhostPartition acquire EVERY per-origin apply mutex,
// while appliers evaluate the hosting filter inside their per-entry applyMu
// critical section. Each entry's {filter check, install, clock advance} is
// therefore entirely before or after any flip, which makes the flip vector
// HostPartition returns an exact cut: entries ≤ cut are covered by the
// bootstrap copy, entries > cut by the (now-unfiltered) applier stream —
// no gap and no double-install.

// ErrNotHosted is returned when a transaction reads a partition outside this
// site's replica set. Sessions treat it as retryable and re-route to a
// hosting site.
var ErrNotHosted = errors.New("sitemgr: partition not replicated at this site")

// hostingState is a partially-replicating site's membership map.
type hostingState struct {
	mu        sync.RWMutex
	def       func(part uint64) bool // seed membership (nil = host nothing by default)
	overrides map[uint64]bool        // explicit replica add/drop decisions
}

func (h *hostingState) hostsLocked(part uint64) bool {
	if v, ok := h.overrides[part]; ok {
		return v
	}
	return h.def != nil && h.def(part)
}

// PartialReplication reports whether this site hosts only a subset of the
// partitions (Config.PartialReplication).
func (s *Site) PartialReplication() bool { return s.hosting != nil }

// Hosts reports whether this site is in part's replica set. Always true for
// fully replicating sites.
func (s *Site) Hosts(part uint64) bool {
	h := s.hosting
	if h == nil {
		return true
	}
	h.mu.RLock()
	defer h.mu.RUnlock()
	return h.hostsLocked(part)
}

// lockAppliers acquires every per-origin apply mutex in index order; hosting
// flips use it to fence all refresh application (the BootstrapFrom pattern).
func (s *Site) lockAppliers() {
	for o := range s.applyMu {
		s.applyMu[o].Lock()
	}
}

func (s *Site) unlockAppliers() {
	for o := range s.applyMu {
		s.applyMu[o].Unlock()
	}
}

// HostPartition adds part to this site's hosting map and returns the flip
// vector: the site clock as of the instant the filter started admitting
// part's writes. Every entry ≤ the flip vector was (or would have been)
// filtered and must come from a bootstrap copy exported at exactly this
// vector; every entry > it is delivered by the appliers. No-op (returning
// nil) on fully replicating sites.
func (s *Site) HostPartition(part uint64) vclock.Vector {
	h := s.hosting
	if h == nil {
		return nil
	}
	s.lockAppliers()
	h.mu.Lock()
	h.overrides[part] = true
	cut := s.clock.Now()
	h.mu.Unlock()
	s.unlockAppliers()
	return cut
}

// UnhostPartition removes part from the hosting map and purges its resident
// rows, returning how many were dropped. The flag flip and the purge happen
// under the hosting write lock (excluding Txn.Read's check-and-read) and
// with every applier fenced, so no reader observes a half-purged partition
// as silently missing rows and no in-flight refresh installs into it after
// the purge. Callers must not unhost a partition this site masters.
func (s *Site) UnhostPartition(part uint64) int {
	h := s.hosting
	if h == nil {
		return 0
	}
	s.lockAppliers()
	h.mu.Lock()
	h.overrides[part] = false
	purged := s.store.PurgeMatching(func(ref storage.RowRef) bool {
		return s.cfg.Partitioner(ref) == part
	})
	h.mu.Unlock()
	s.unlockAppliers()
	return purged
}

// AdoptHosting installs explicit hosting overrides for the given partitions
// (recovery folding a checkpoint manifest's membership). Other partitions
// keep the seed membership.
func (s *Site) AdoptHosting(hosted map[uint64]bool) {
	h := s.hosting
	if h == nil {
		return
	}
	s.lockAppliers()
	h.mu.Lock()
	for p, v := range hosted {
		h.overrides[p] = v
	}
	h.mu.Unlock()
	s.unlockAppliers()
}

// filterHosted returns the subset of writes that target hosted partitions.
// The input slice (borrowed from a log entry) is never mutated; when every
// write is hosted it is returned as-is. Callers hold the origin's apply
// mutex, which orders the hosting decision against flips.
func (s *Site) filterHosted(writes []storage.Write) []storage.Write {
	h := s.hosting
	h.mu.RLock()
	defer h.mu.RUnlock()
	keep := 0
	for i := range writes {
		if h.hostsLocked(s.cfg.Partitioner(writes[i].Ref)) {
			keep++
		}
	}
	if keep == len(writes) {
		return writes
	}
	if keep == 0 {
		return nil
	}
	out := make([]storage.Write, 0, keep)
	for i := range writes {
		if h.hostsLocked(s.cfg.Partitioner(writes[i].Ref)) {
			out = append(out, writes[i])
		}
	}
	return out
}

// ResidentPartitions counts the distinct partitions with at least one live
// row in this site's store. O(rows); used by the residency gauge and the
// partial-replication experiments.
func (s *Site) ResidentPartitions() int {
	seen := make(map[uint64]struct{})
	for _, name := range s.store.TableNames() {
		t := s.store.Table(name)
		if t == nil {
			continue
		}
		t.ForEachLatest(func(key uint64, _ []byte, _ storage.Stamp) {
			seen[s.cfg.Partitioner(storage.RowRef{Table: name, Key: key})] = struct{}{}
		})
	}
	return len(seen)
}

// BootstrapPartitionFrom copies part's rows from src as they stood at cut
// (the flip vector this site's HostPartition returned). The caller must have
// waited until src's clock dominates cut. Each row installs under the
// superseding guard: src's bounded version chains can export a version NEWER
// than cut (see storage.ExportAt), but that version's own log entry is > cut
// and the applier stream re-delivers it, so skipping rows the target already
// holds newer state for is always safe. Returns rows copied; the shipped
// bytes are charged to the replication category.
func (s *Site) BootstrapPartitionFrom(src *Site, part uint64, cut vclock.Vector) int {
	srcVV := src.clock.Now()
	rows, bytes := 0, 0
	src.store.ExportAt(cut, func(table string, key uint64, data []byte, stamp storage.Stamp) bool {
		if s.cfg.Partitioner(storage.RowRef{Table: table, Key: key}) != part {
			return true
		}
		if s.store.ImportRowSuperseding(table, key, data, stamp, srcVV) {
			rows++
			bytes += 10 + 3 + len(data) // refOverhead + flags, as SizeOfWrites prices a row
		}
		return true
	})
	if rows > 0 {
		s.net.Account(transport.CatReplication, transport.MsgOverhead+bytes)
	}
	return rows
}

// RebuildPartitionFromLogs reconstructs part's rows from every origin's
// retained log — the last-resort bootstrap source when no live replica of
// part survived a failure. Only entries at or below cut are folded (newer
// ones arrive through the appliers); among a row's candidate writes the one
// with the dominating transaction vector wins (writes to a row serialize
// through its masters, so their tvvs are comparable). Rows whose only writes
// predate the retained log prefix (checkpoint truncation) cannot be rebuilt
// — run with MinReplicas >= 2 to keep a live source through single failures.
func (s *Site) RebuildPartitionFromLogs(part uint64, cut vclock.Vector) int {
	type cand struct {
		data    []byte
		stamp   storage.Stamp
		tvv     vclock.Vector
		deleted bool
	}
	best := make(map[storage.RowRef]cand)
	consider := func(origin int, seq uint64, tvv vclock.Vector, writes []storage.Write) {
		if origin < len(cut) && seq > cut[origin] {
			return
		}
		for _, w := range writes {
			if s.cfg.Partitioner(w.Ref) != part {
				continue
			}
			c := cand{data: w.Data, stamp: storage.Stamp{Origin: origin, Seq: seq}, tvv: tvv, deleted: w.Deleted}
			if b, ok := best[w.Ref]; ok && !c.tvv.DominatesEq(b.tvv) {
				continue
			}
			best[w.Ref] = c
		}
	}
	for origin := 0; origin < s.m; origin++ {
		log := s.cfg.Broker.Log(origin)
		cur := log.Subscribe(0)
		for {
			e, ok := cur.TryNext()
			if !ok {
				break
			}
			switch e.Kind {
			case wal.KindUpdate:
				consider(origin, e.TVV[origin], e.TVV, e.Writes)
			case wal.KindEpoch:
				first := e.FirstSeq()
				for j := range e.Txns {
					consider(origin, first+uint64(j), e.Txns[j].TVV, e.Txns[j].Writes)
				}
			}
		}
		cur.Close()
	}
	installed := 0
	for ref, c := range best {
		if c.deleted {
			continue // absent row ≡ tombstone to readers
		}
		if s.store.ImportRowSuperseding(ref.Table, ref.Key, c.data, c.stamp, cut) {
			installed++
		}
	}
	return installed
}
