package sitemgr

import (
	"sync"
	"time"

	"dynamast/internal/storage"
	"dynamast/internal/transport"
	"dynamast/internal/vclock"
	"dynamast/internal/wal"
)

// Epoch-based group commit. With Config.EpochInterval > 0, a site stops
// paying per-transaction synchronization on its commit path: transactions
// install their writes and enter the epoch buffer, and a sealer seals the
// buffer every interval with ONE log append (the WAL's group-commit leader
// then flushes the whole epoch in one write), ONE site-vector advance
// covering every member, and ONE coalesced replication record per
// destination (KindEpoch). Until the seal, members are visible only to
// local snapshots — Begin extends a snapshot's self dimension to the
// installed watermark — so remote sites, checkpoints, and the svv only ever
// observe epoch boundaries.
//
// Correctness hinges on two orderings:
//
//   - Seals are serialized (sealMu) and each advances the svv to its last
//     member, so the site's log remains per-origin FIFO and seq-dense, which
//     is what lets a replica gate a whole epoch with one CanApplyEpoch check.
//   - An epoch never spans a mastership fence: Release and Grant force a
//     seal before appending their own log record, and Kill force-seals after
//     a commit barrier, so acked commits are never stranded in a dead
//     site's buffer (the paper's failure model keeps the logs).
//
// SSSI session guarantees bound the epoch length, not correctness: a
// session's read-your-writes at the origin site is served from the extended
// snapshot without waiting for the seal (Begin clamps the self dimension of
// its freshness wait), and cross-site freshness waits resolve within one
// interval plus propagation.

// DefaultEpochInterval is the seal interval core clusters use when epochs
// are enabled without an explicit interval.
const DefaultEpochInterval = time.Millisecond

// epochState is a site's current (unsealed) commit epoch.
type epochState struct {
	mu   sync.Mutex
	cond *sync.Cond // wakes file-backed commits waiting on their seal

	txns     []wal.EpochTxn // members in commit order
	spare    []wal.EpochTxn // drained buffer from the previous seal
	closing  vclock.Vector  // running element-wise max of member tvvs
	firstSeq uint64         // first member's local commit sequence

	sealedSeq uint64 // highest commit sequence a completed seal covers
	sealErr   error  // sticky: a failed seal append poisons the commit path
}

// epochOn reports whether the site batches commits into epochs.
func (s *Site) epochOn() bool { return s.cfg.EpochInterval > 0 }

// extendSnap folds the installed watermark into a snapshot's self dimension:
// locally committed members of the current epoch are visible to local
// snapshots before the seal publishes them. Only a site's own snapshots can
// carry its mid-epoch sequences — every cross-site surface (refresh
// application, grants, checkpoints) reads the sealed svv — which is why
// per-epoch dependency checks at replicas stay sound.
func (s *Site) extendSnap(v vclock.Vector) {
	if !s.epochOn() || s.id >= len(v) {
		return
	}
	if inst := s.installed.Load(); inst > v[s.id] {
		v[s.id] = inst
	}
}

// clampFreshnessWait rewrites a Begin freshness wait so a session's
// read-your-writes never waits for the seal at the origin site: when the
// requested self dimension is already installed locally (it came from this
// site's own extended snapshots), the wait drops it — the extended begin
// snapshot will serve the data. Cross-origin dimensions are untouched.
func (s *Site) clampFreshnessWait(minVV vclock.Vector) vclock.Vector {
	if !s.epochOn() || s.id >= len(minVV) {
		return minVV
	}
	want := minVV[s.id]
	if want <= s.clock.Get(s.id) || want > s.installed.Load() {
		return minVV
	}
	w := minVV.Clone()
	w[s.id] = s.clock.Get(s.id)
	return w
}

// InstalledSeq returns the highest locally installed commit sequence,
// including epoch-buffered commits the sealer has not yet published into
// the svv. Quiescence checks target this: an acked commit counts as work
// the cluster still owes its replicas even before its epoch seals.
func (s *Site) InstalledSeq() uint64 {
	if seq := s.installed.Load(); seq > s.clock.Get(s.id) {
		return seq
	}
	return s.clock.Get(s.id)
}

// sealerLoop seals the epoch buffer every interval. A final drain on stop
// keeps durability waiters from hanging: if the log already closed, the
// failed append surfaces as the sticky seal error and wakes them.
func (s *Site) sealerLoop() {
	defer s.wg.Done()
	t := time.NewTicker(s.cfg.EpochInterval)
	defer t.Stop()
	for {
		select {
		case <-s.stopped:
			_ = s.SealEpoch()
			return
		case <-t.C:
			_ = s.SealEpoch()
		}
	}
}

// SealEpoch seals the current epoch buffer, if non-empty: one KindEpoch log
// append carrying every buffered commit, then one svv advance to the last
// member's sequence. Seals serialize on sealMu; commits keep buffering into
// the next epoch while the append (and its group-commit flush) runs.
// A no-op returning the sticky seal error when the buffer is empty.
func (s *Site) SealEpoch() error {
	s.sealMu.Lock()
	defer s.sealMu.Unlock()

	ep := &s.ep
	ep.mu.Lock()
	if len(ep.txns) == 0 {
		err := ep.sealErr
		ep.mu.Unlock()
		return err
	}
	txns := ep.txns
	closing := ep.closing
	first := ep.firstSeq
	ep.txns = ep.spare[:0]
	ep.spare = nil
	ep.closing = nil
	ep.mu.Unlock()

	last := first + uint64(len(txns)) - 1
	closing[s.id] = last
	e := wal.Entry{
		Kind:   wal.KindEpoch,
		Origin: s.id,
		TVV:    closing,
		Txns:   txns,
	}

	sealStart := time.Now()
	_, err := s.log.Append(e)
	if err == nil {
		s.clock.Advance(s.id, last)
	}
	s.ob.epochSealDur.ObserveDuration(time.Since(sealStart))

	ep.mu.Lock()
	if err != nil {
		if ep.sealErr == nil {
			ep.sealErr = err
		}
	} else {
		ep.sealedSeq = last
	}
	ep.cond.Broadcast()
	ep.mu.Unlock()
	if err != nil {
		return err
	}

	s.ob.epochSeals.Inc()
	s.ob.epochTxns.Add(uint64(len(txns)))
	// Byte savings vs the per-transaction frames these members would have
	// shipped as (the pre-epoch replication accounting formula), against the
	// coalesced record's actual encoded size.
	perTxn := 0
	for i := range txns {
		perTxn += transport.MsgOverhead +
			transport.SizeOfVector(txns[i].TVV) + transport.SizeOfWrites(txns[i].Writes)
	}
	if actual := transport.MsgOverhead + wal.EntryWireSize(&e); perTxn > actual {
		s.ob.epochBytesSaved.Add(uint64(perTxn - actual))
	}

	// The drained members now live in the log entry; recycle only the slice
	// header capacity for the next epoch.
	ep.mu.Lock()
	if ep.spare == nil {
		ep.spare = make([]wal.EpochTxn, 0, cap(txns))
	}
	ep.mu.Unlock()
	return nil
}

// waitSealed blocks until a seal covering seq completes (file-backed
// durability for an epoch-mode commit) and returns the sticky seal error.
func (s *Site) waitSealed(seq uint64) error {
	ep := &s.ep
	ep.mu.Lock()
	defer ep.mu.Unlock()
	for ep.sealedSeq < seq && ep.sealErr == nil {
		ep.cond.Wait()
	}
	return ep.sealErr
}

// bufferEpochTxn installs a commit into the current epoch. Caller holds
// commitMu (which orders members by sequence) and has already installed the
// writes; the member becomes locally visible through the installed
// watermark and globally visible at the next seal.
func (s *Site) bufferEpochTxn(seq uint64, tvv vclock.Vector, at time.Time, writes []storage.Write) {
	s.installed.Store(seq)
	ep := &s.ep
	ep.mu.Lock()
	if len(ep.txns) == 0 {
		ep.firstSeq = seq
	}
	ep.txns = append(ep.txns, wal.EpochTxn{TVV: tvv, At: at, Writes: writes})
	ep.closing = ep.closing.MaxInto(tvv)
	ep.mu.Unlock()
}

// applyEpoch applies one sealed epoch from origin as a single refresh unit:
// one propagation gate, one CanApplyEpoch dependency wait (the closing
// vector dominates every member's dependencies; see vclock.CanApplyEpoch),
// one apply-pool slot, one replication-byte account of the coalesced frame,
// and one svv advance after the members install. Returns false when the
// site stopped.
func (s *Site) applyEpoch(origin int, e *wal.Entry) bool {
	if len(e.Txns) == 0 {
		return true
	}
	last := e.TVV[origin]
	if last <= s.clock.Get(origin) {
		return true // already applied (bootstrap/recovery overlap)
	}
	if d := s.cfg.PropagationDelay; d > 0 {
		if age := time.Since(e.At); age < d {
			if !s.sleep(d - age) {
				return false
			}
		}
	}
	first := e.FirstSeq()
	s.clock.WaitDimAtLeast(origin, first-1)
	for k, want := range e.TVV {
		if k != origin && want > 0 {
			s.clock.WaitDimAtLeast(k, want)
		}
	}
	// The waits return unconditionally once the site stops; never install an
	// epoch whose dependencies were not actually satisfied.
	select {
	case <-s.stopped:
		return false
	default:
	}
	if s.hosting == nil {
		s.net.Account(transport.CatReplication, transport.MsgOverhead+wal.EntryWireSize(e))
	}
	applyStart := time.Now()
	var applied uint64
	var fTxns []wal.EpochTxn
	s.applyPool.do(func() time.Duration {
		s.applyMu[origin].Lock()
		base := s.clock.Get(origin)
		var nWrites int
		for j := range e.Txns {
			seq := first + uint64(j)
			if seq <= base {
				continue // a recovery catch-up already installed this member
			}
			t := &e.Txns[j]
			writes := t.Writes
			if s.hosting != nil {
				// Per-destination epoch filtering: install (and charge) only
				// the member writes this site hosts; the clock still covers
				// every member (dense svv, see hosting.go).
				writes = s.filterHosted(writes)
				if len(writes) > 0 {
					fTxns = append(fTxns, wal.EpochTxn{TVV: t.TVV, At: t.At, Writes: writes})
				}
			}
			s.store.Apply(storage.Stamp{Origin: origin, Seq: seq}, writes)
			s.bumpWatermarks(writes, t.TVV)
			applied++
			nWrites += len(writes)
		}
		if last > base {
			s.clock.Advance(origin, last)
		}
		s.applyMu[origin].Unlock()
		if s.hosting != nil && applied > 0 {
			// One filtered coalesced frame: the site receives the same
			// delta-encoded epoch format carrying only the members whose
			// writes it hosts. Fully filtered members need no vector on the
			// wire — the dense svv advances by the member count, and the
			// closing vector (in the envelope) covers the dependency gate.
			// Pricing it through EntryWireSize keeps the partial- and
			// full-replication accounting byte-comparable.
			f := *e
			f.Txns = fTxns
			s.net.Account(transport.CatReplication,
				transport.MsgOverhead+wal.EntryWireSize(&f))
		}
		if s.cfg.Costs.Zero() || applied == 0 {
			return 0
		}
		// One refresh-transaction base for the whole epoch: the coalesced
		// record is applied as one refresh unit.
		return s.cfg.Costs.RefreshBase + time.Duration(nWrites)*s.cfg.Costs.PerRefreshWrite
	})
	s.refreshes.Add(applied)
	s.ob.refreshBatches.Inc()
	s.ob.refreshApply.ObserveDuration(time.Since(applyStart))
	now := time.Now()
	for j := range e.Txns {
		t := &e.Txns[j]
		lag := now.Sub(t.At)
		s.ob.refreshes.Inc()
		s.ob.refreshLag.ObserveDuration(lag)
		s.ob.lastLag.Set(lag.Seconds())
		s.ob.refreshStage.ObserveDuration(lag)
		s.tracer.RefreshApplied(origin, first+uint64(j), lag)
		s.spans.RefreshApplied(origin, first+uint64(j), s.id, lag, now)
	}
	return true
}
