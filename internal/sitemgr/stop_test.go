package sitemgr

import (
	"testing"
	"time"

	"dynamast/internal/storage"
	"dynamast/internal/vclock"
	"dynamast/internal/wal"
)

// TestStopUnblocksDependencyWait: an applier parked on a cross-origin causal
// dependency that will never be satisfied (its producer published nothing)
// must not deadlock Stop. Regression test for a shutdown hang where one
// applier exited on stop while a sibling stayed blocked in WaitDimAtLeast.
func TestStopUnblocksDependencyWait(t *testing.T) {
	b := wal.NewBroker(3)
	s, err := New(Config{
		SiteID:      0,
		Sites:       3,
		Broker:      b,
		Partitioner: partitionBy100,
		Replicate:   true,
	})
	if err != nil {
		t.Fatal(err)
	}
	s.Store().CreateTable("t")
	s.SetMaster(2, false)
	s.Start()

	// Origin 2 publishes an update depending on origin 1's seq 5; origin 1
	// never publishes, so site 0's origin-2 applier blocks on the dependency.
	if _, err := b.Log(2).Append(wal.Entry{
		Kind:   wal.KindUpdate,
		Origin: 2,
		At:     time.Now(),
		TVV:    vclock.Vector{0, 5, 1},
		Writes: []storage.Write{{Ref: ref(200), Data: []byte("x")}},
	}); err != nil {
		t.Fatal(err)
	}
	// Give the applier time to reach the dependency wait.
	waitFor(t, func() bool { return s.SVV()[2] == 0 })
	time.Sleep(10 * time.Millisecond)

	done := make(chan struct{})
	go func() {
		b.Close()
		s.Stop()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Stop deadlocked on a blocked dependency wait")
	}
	// The blocked update must not have been applied out of order.
	if got := s.SVV()[2]; got != 0 {
		t.Fatalf("dependency-blocked update applied: svv[2] = %d", got)
	}
}
