package sitemgr

import (
	"fmt"
	"testing"

	"dynamast/internal/obs"
	"dynamast/internal/storage"
	"dynamast/internal/wal"
)

// TestRefreshDelayGaugeTracksWatermark checks the per-site freshness gauges:
// dynamast_refresh_delay{site,origin} must equal the number of updates the
// origin has published that the site has not yet applied, and
// dynamast_site_svv must converge to the publisher's watermark once the
// site's appliers run.
func TestRefreshDelayGaugeTracksWatermark(t *testing.T) {
	reg := obs.NewRegistry()
	b := wal.NewBroker(2)

	sites := make([]*Site, 2)
	for i := range sites {
		s, err := New(Config{
			SiteID:      i,
			Sites:       2,
			Broker:      b,
			Partitioner: partitionBy100,
			Replicate:   true,
			Obs:         reg,
		})
		if err != nil {
			t.Fatal(err)
		}
		s.Store().CreateTable("t")
		s.SetMaster(0, i == 0)
		sites[i] = s
	}
	defer func() {
		// The broker closes first so blocked appliers drain and exit.
		b.Close()
		for _, s := range sites {
			s.Stop()
		}
	}()
	// Only site 0 replicates for now: site 1's appliers stay parked so its
	// refresh delay accumulates deterministically.
	sites[0].Start()

	value := func(name string, site, origin int) float64 {
		t.Helper()
		v, ok := reg.Snapshot().Value(name, obs.Site(site),
			obs.L("origin", fmt.Sprint(origin)))
		if !ok {
			t.Fatalf("%s{site=%d,origin=%d} not registered", name, site, origin)
		}
		return v
	}

	const updates = 5
	for i := uint64(0); i < updates; i++ {
		tx, err := sites[0].Begin(nil, []storage.RowRef{ref(i)})
		if err != nil {
			t.Fatal(err)
		}
		if err := tx.Write(ref(i), []byte("v")); err != nil {
			t.Fatal(err)
		}
		mustCommit(t, tx)
		// The gauge follows the publish watermark commit by commit.
		if d := value("dynamast_refresh_delay", 1, 0); d != float64(i+1) {
			t.Fatalf("after %d commits refresh_delay{site=1,origin=0} = %g", i+1, d)
		}
	}
	if v := value("dynamast_site_svv", 0, 0); v != updates {
		t.Fatalf("svv{site=0,origin=0} = %g", v)
	}
	if v := value("dynamast_site_svv", 1, 0); v != 0 {
		t.Fatalf("svv{site=1,origin=0} = %g before appliers started", v)
	}

	// Start site 1's appliers: the delay must drain to zero and its SVV
	// entry for the origin must reach the watermark.
	sites[1].Start()
	waitFor(t, func() bool {
		return value("dynamast_refresh_delay", 1, 0) == 0 &&
			value("dynamast_site_svv", 1, 0) == updates
	})

	// The applied refreshes were counted and their lag observed.
	snap := reg.Snapshot()
	if v, ok := snap.Value("dynamast_refreshes_total", obs.Site(1)); !ok || v != updates {
		t.Fatalf("refreshes_total{site=1} = %g, %v", v, ok)
	}
	lag, ok := snap.Get("dynamast_refresh_lag_seconds", obs.Site(1))
	if !ok || lag.Count != updates {
		t.Fatalf("refresh_lag_seconds{site=1} count = %d, %v", lag.Count, ok)
	}
	if lag.Max <= 0 {
		t.Fatalf("refresh_lag_seconds{site=1} max = %g", lag.Max)
	}
	if v, ok := snap.Value("dynamast_refresh_lag", obs.Site(1)); !ok || v <= 0 {
		t.Fatalf("refresh_lag{site=1} = %g, %v", v, ok)
	}
}
