package sitemgr

import (
	"bytes"
	"testing"
	"time"

	"dynamast/internal/storage"
	"dynamast/internal/wal"
)

// testClusterEpoch builds m replicating sites over one broker with the
// given epoch interval (0 disables epochs at this layer), partitions 0-9
// mastered at site 0.
func testClusterEpoch(t *testing.T, m int, interval time.Duration) ([]*Site, *wal.Broker) {
	t.Helper()
	b := wal.NewBroker(m)
	sites := make([]*Site, m)
	for i := 0; i < m; i++ {
		s, err := New(Config{
			SiteID:        i,
			Sites:         m,
			Broker:        b,
			Partitioner:   partitionBy100,
			Replicate:     true,
			EpochInterval: interval,
		})
		if err != nil {
			t.Fatal(err)
		}
		s.Store().CreateTable("t")
		for p := uint64(0); p < 10; p++ {
			s.SetMaster(p, i == 0)
		}
		sites[i] = s
	}
	for _, s := range sites {
		s.Start()
	}
	t.Cleanup(func() {
		b.Close()
		for _, s := range sites {
			s.Stop()
		}
	})
	return sites, b
}

// logEntries snapshots every entry currently in site i's log.
func logEntries(b *wal.Broker, i int) []wal.Entry {
	l := b.Log(i)
	var out []wal.Entry
	for off := l.Base(); off < l.Len(); off++ {
		if e, ok := l.Get(off); ok {
			out = append(out, e)
		}
	}
	return out
}

// TestEpochCommitsCoalesceAndPropagate commits a burst of transactions and
// checks (a) the origin's log holds them as KindEpoch frames whose members
// cover every commit sequence exactly once, and (b) replicas converge to
// the same data through the batched apply path.
func TestEpochCommitsCoalesceAndPropagate(t *testing.T) {
	sites, b := testClusterEpoch(t, 3, time.Millisecond)
	const n = 20
	for i := uint64(0); i < n; i++ {
		tx, err := sites[0].Begin(nil, []storage.RowRef{ref(i)})
		if err != nil {
			t.Fatal(err)
		}
		tx.Write(ref(i), []byte{byte(i)})
		mustCommit(t, tx)
	}

	var seqs []uint64
	for _, e := range logEntries(b, 0) {
		if e.Kind != wal.KindEpoch {
			t.Fatalf("epoch-enabled site logged a %v entry", e.Kind)
		}
		if len(e.Txns) == 0 {
			t.Fatal("epoch entry with no members")
		}
		first := e.FirstSeq()
		for j := range e.Txns {
			seqs = append(seqs, first+uint64(j))
		}
	}
	if len(seqs) != n {
		t.Fatalf("epoch members cover %d commits, want %d", len(seqs), n)
	}
	for i, seq := range seqs {
		if seq != uint64(i+1) {
			t.Fatalf("member %d has seq %d, want dense sequence %d", i, seq, i+1)
		}
	}

	for _, s := range sites[1:] {
		s := s
		waitFor(t, func() bool { return s.clock.Get(0) == n })
		for i := uint64(0); i < n; i++ {
			data, ok := s.ReadLocal(ref(i))
			if !ok || !bytes.Equal(data, []byte{byte(i)}) {
				t.Fatalf("site %d: key %d = %v after epoch refresh", s.ID(), i, data)
			}
		}
	}
}

// TestEpochAckImpliesLogged pins the group-commit ack contract: by the time
// Commit returns, the sealed epoch containing the transaction is already in
// the origin's log and the svv self-dimension covers it — exactly the
// durability point per-transaction commits had.
func TestEpochAckImpliesLogged(t *testing.T) {
	sites, b := testClusterEpoch(t, 2, 2*time.Millisecond)
	tx, err := sites[0].Begin(nil, []storage.RowRef{ref(1)})
	if err != nil {
		t.Fatal(err)
	}
	tx.Write(ref(1), []byte("x"))
	tvv := mustCommit(t, tx)
	seq := tvv[0]

	if got := sites[0].clock.Get(0); got < seq {
		t.Fatalf("svv[self] = %d after ack, want >= %d", got, seq)
	}
	var covered bool
	for _, e := range logEntries(b, 0) {
		if e.Kind == wal.KindEpoch && e.FirstSeq() <= seq && seq <= e.TVV[0] {
			covered = true
		}
	}
	if !covered {
		t.Fatalf("acked commit seq %d not covered by any sealed epoch in the log", seq)
	}
}

// TestEpochDisabledRestoresPerTxnFrames checks the opt-out: with the
// interval at zero every commit appends its own KindUpdate entry with no
// member list, the pre-epoch log shape (whose payload bytes are pinned by
// wal.TestEntryPayloadByteIdentity).
func TestEpochDisabledRestoresPerTxnFrames(t *testing.T) {
	sites, b := testClusterEpoch(t, 2, 0)
	const n = 5
	for i := uint64(0); i < n; i++ {
		tx, err := sites[0].Begin(nil, []storage.RowRef{ref(i)})
		if err != nil {
			t.Fatal(err)
		}
		tx.Write(ref(i), []byte{byte(i)})
		mustCommit(t, tx)
	}
	entries := logEntries(b, 0)
	if len(entries) != n {
		t.Fatalf("disabled epochs logged %d entries, want %d per-txn entries", len(entries), n)
	}
	for _, e := range entries {
		if e.Kind != wal.KindUpdate || e.Txns != nil {
			t.Fatalf("disabled epochs logged kind %v (Txns %v), want per-txn updates", e.Kind, e.Txns)
		}
	}
}

// TestEpochReadYourWrites checks SSSI session order across the seal
// boundary: a transaction begun immediately after a commit ack at the same
// site observes that commit without waiting out another epoch.
func TestEpochReadYourWrites(t *testing.T) {
	sites, _ := testClusterEpoch(t, 2, 5*time.Millisecond)
	tx, err := sites[0].Begin(nil, []storage.RowRef{ref(1)})
	if err != nil {
		t.Fatal(err)
	}
	tx.Write(ref(1), []byte("mine"))
	tvv := mustCommit(t, tx)

	rd, err := sites[0].Begin(tvv, nil)
	if err != nil {
		t.Fatal(err)
	}
	data, ok := rd.Read(ref(1))
	if !ok || !bytes.Equal(data, []byte("mine")) {
		t.Fatalf("session read after commit = %v, want own write", data)
	}
	rd.Abort()
}

// TestEpochKillSealsBuffer checks a killed site leaves no acked commit
// outside the log: Kill force-seals the open epoch, so the log covers the
// full committed prefix.
func TestEpochKillSealsBuffer(t *testing.T) {
	sites, b := testClusterEpoch(t, 2, 50*time.Millisecond)
	var last uint64
	for i := uint64(0); i < 3; i++ {
		tx, err := sites[0].Begin(nil, []storage.RowRef{ref(i)})
		if err != nil {
			t.Fatal(err)
		}
		tx.Write(ref(i), []byte{byte(i)})
		last = mustCommit(t, tx)[0]
	}
	sites[0].Kill()
	var covered uint64
	for _, e := range logEntries(b, 0) {
		if e.IsUpdate() && e.TVV[0] > covered {
			covered = e.TVV[0]
		}
	}
	if covered < last {
		t.Fatalf("log covers seq %d after Kill, want every acked commit through %d", covered, last)
	}
}

// TestEpochSealedBeforeRelease checks remaster fencing: releasing a
// partition seals the open epoch first, so no epoch frame containing the
// partition's writes lands after the KindRelease record in the log.
func TestEpochSealedBeforeRelease(t *testing.T) {
	sites, b := testClusterEpoch(t, 2, 50*time.Millisecond)
	tx, err := sites[0].Begin(nil, []storage.RowRef{ref(5)})
	if err != nil {
		t.Fatal(err)
	}
	tx.Write(ref(5), []byte("pre-release"))
	mustCommit(t, tx)

	if _, err := sites[0].Release([]uint64{0}, 1, 1); err != nil {
		t.Fatal(err)
	}

	released := false
	for _, e := range logEntries(b, 0) {
		switch e.Kind {
		case wal.KindRelease:
			released = true
		case wal.KindEpoch, wal.KindUpdate:
			if released {
				t.Fatalf("update entry (kind %v, tvv %v) after release record", e.Kind, e.TVV)
			}
		}
	}
	if !released {
		t.Fatal("release record missing from log")
	}
}
