package sitemgr

// Router sharding. The selector control plane can be split into N router
// shards, each owning a contiguous range of the partition-id hash space.
// Shard assignment is a pure function of the partition id (the same
// Fibonacci multiply-shift the selector uses for lock striping), so every
// layer — selector shards, sites fencing a promoted shard's range, tooling —
// computes identical ownership with no shared state.

// fibMix is the 64-bit Fibonacci hashing constant (golden-ratio multiplier).
const fibMix = 0x9E3779B97F4A7C15

// RouterShard maps a partition id to its router shard in [0, n). The
// partition id is mixed to a 32-bit hash and the hash space is cut into n
// contiguous ranges (the fixed-point product hash*n >> 32), so each shard
// owns a contiguous range of the hashed keyspace and any n — not just powers
// of two — divides the map evenly. n <= 1 always maps to shard 0.
func RouterShard(part uint64, n int) int {
	if n <= 1 {
		return 0
	}
	h := (part * fibMix) >> 32 // 32-bit Fibonacci hash
	return int((uint64(n) * h) >> 32)
}

// rangeFence is a remaster-epoch floor scoped to one router shard's
// partition range. Epoch allocators are per shard under the sharded
// selector, so floors from different shards are incomparable and must never
// be applied outside their own range: "one shard's fence dominates only its
// range".
type rangeFence struct {
	shard, shards int
	floor         uint64
}

// FenceEpochsBelowRange installs a remaster-epoch fence covering only the
// partitions RouterShard assigns to shard-of-shards: subsequent Release or
// Grant operations whose partition set intersects that range and whose
// nonzero epoch is below floor are rejected with ErrStaleEpoch. It is the
// range-scoped analogue of FenceEpochsBelow, used by a promoted router shard
// so its fence cannot kill in-flight chains of the other, still-healthy
// shards (whose epochs come from different allocators and are incomparable).
// Taking the fence write lock gives the same WAL-fold guarantee: operations
// already past their floor check finish logging before this returns.
//
// shards <= 1 degenerates to the site-wide FenceEpochsBelow. The floor in
// effect for the range is returned and only ever rises.
func (s *Site) FenceEpochsBelowRange(floor uint64, shard, shards int) uint64 {
	if shards <= 1 {
		return s.FenceEpochsBelow(floor)
	}
	s.fenceMu.Lock()
	defer s.fenceMu.Unlock()
	var fences []rangeFence
	if old := s.rangeFences.Load(); old != nil {
		fences = append(fences, *old...)
	}
	for i := range fences {
		if fences[i].shard == shard && fences[i].shards == shards {
			if fences[i].floor >= floor {
				return fences[i].floor
			}
			fences[i].floor = floor
			s.rangeFences.Store(&fences)
			return floor
		}
	}
	fences = append(fences, rangeFence{shard: shard, shards: shards, floor: floor})
	s.rangeFences.Store(&fences)
	return floor
}

// fencedEpoch reports whether a release/grant carrying epoch over parts is
// below any fence that covers it: the site-wide floor, or a range fence
// whose shard range contains at least one of parts. Returns the violated
// floor. The range-fence scan is skipped entirely when no range fence was
// ever installed (the single-shard deployment), keeping the hot path
// identical to the pre-sharding code.
func (s *Site) fencedEpoch(parts []uint64, epoch uint64) (uint64, bool) {
	if floor := s.epochFloor.Load(); epoch < floor {
		return floor, true
	}
	fences := s.rangeFences.Load()
	if fences == nil {
		return 0, false
	}
	for _, f := range *fences {
		if epoch >= f.floor {
			continue
		}
		for _, id := range parts {
			if RouterShard(id, f.shards) == f.shard {
				return f.floor, true
			}
		}
	}
	return 0, false
}

// EpochFloorForRange returns the effective remaster-epoch floor for a
// partition in shard-of-shards' range: the max of the site-wide floor and
// the matching range fence (0 = never fenced).
func (s *Site) EpochFloorForRange(shard, shards int) uint64 {
	floor := s.epochFloor.Load()
	if fences := s.rangeFences.Load(); fences != nil {
		for _, f := range *fences {
			if f.shard == shard && f.shards == shards && f.floor > floor {
				floor = f.floor
			}
		}
	}
	return floor
}
