package sitemgr

import (
	"dynamast/internal/storage"
	"dynamast/internal/vclock"
	"dynamast/internal/wal"
)

// Recovery (§V-C). DynaMast uses redo logging: on commit the write set is
// appended to the site's durable log, which doubles as the replication
// feed. A data site recovers by initializing state from an existing replica
// and replaying redo logs from the positions indicated by the site version
// vector; mastership state is reconstructed from the sequence of release
// and grant operations in the logs.

// BootstrapFrom copies a peer replica's newest committed versions and
// version vector into this (empty) site. The refresh appliers started
// afterwards skip entries already reflected in the adopted vector.
func (s *Site) BootstrapFrom(peer *Site) {
	// As in RestoreSnapshot, fence the background appliers for the whole
	// copy + clock adoption: a refresh entry older than a copied row must
	// not be installed over it after the copy lands.
	for o := range s.applyMu {
		s.applyMu[o].Lock()
	}
	defer func() {
		for o := range s.applyMu {
			s.applyMu[o].Unlock()
		}
	}()
	peerVV := peer.clock.Now()
	// Same guard as RestoreSnapshot: our appliers may have outrun the
	// peer's copy for some rows; a peer row at or below what they already
	// installed would shadow the newer head.
	applied := s.clock.Now()
	for _, name := range peer.store.TableNames() {
		src := peer.store.Table(name)
		s.store.CreateTable(name)
		src.ForEachLatest(func(key uint64, data []byte, stamp storage.Stamp) {
			if s.hosting != nil && !s.Hosts(s.cfg.Partitioner(storage.RowRef{Table: name, Key: key})) {
				return
			}
			s.store.ImportRowIfNewer(name, key, data, stamp, applied)
		})
	}
	for k, v := range peerVV {
		s.clock.Advance(k, v)
	}
	s.nextSeq.Store(peerVV[s.id])
}

// RecoverLocal replays this site's own redo log into the local store,
// restoring every update it had committed before the crash, and advances
// the clock's own dimension accordingly. Remote dimensions are recovered by
// the refresh appliers re-reading the peers' logs.
func (s *Site) RecoverLocal() error {
	_, err := s.RecoverLocalFrom(0)
	return err
}

// RecoverLocalFrom replays this site's own redo log starting at offset from
// (a checkpoint manifest's replay position; 0 = the whole retained log) and
// returns how many update records it applied. Entries at or below the
// site's restored clock are skipped, so replaying a slightly-too-early
// suffix is harmless.
func (s *Site) RecoverLocalFrom(from uint64) (uint64, error) {
	cur := s.log.Subscribe(from)
	defer cur.Close()
	var applied uint64
	for {
		e, ok := cur.TryNext()
		if !ok {
			return applied, nil
		}
		switch e.Kind {
		case wal.KindUpdate:
			seq := e.TVV[s.id]
			if seq <= s.clock.Get(s.id) {
				continue
			}
			s.store.Apply(storage.Stamp{Origin: s.id, Seq: seq}, e.Writes)
			s.clock.Advance(s.id, seq)
			applied++
			if s.nextSeq.Load() < seq {
				s.nextSeq.Store(seq)
			}
		case wal.KindEpoch:
			// Members are seq-dense from FirstSeq; replay each like the
			// standalone update record it coalesces.
			first := e.FirstSeq()
			for j := range e.Txns {
				seq := first + uint64(j)
				if seq <= s.clock.Get(s.id) {
					continue
				}
				s.store.Apply(storage.Stamp{Origin: s.id, Seq: seq}, e.Txns[j].Writes)
				s.clock.Advance(s.id, seq)
				applied++
				if s.nextSeq.Load() < seq {
					s.nextSeq.Store(seq)
				}
			}
		}
	}
}

// RecoverMastership reconstructs partition ownership by folding the
// release/grant entries of every site's log over an initial placement.
// Entries are merged in a deterministic interleaving: mastership of a
// partition alternates release -> grant, and each grant names the releasing
// peer, so replaying each log in order and matching grant entries to their
// releases yields the final owner of every partition.
func RecoverMastership(b *wal.Broker, initial map[uint64]int) map[uint64]int {
	return FoldMastership(b, initial).Owner
}

// MastershipFold is the outcome of folding every site's release/grant log
// records: the reconstructed owner and the epoch of the winning grant per
// partition, plus the transfers that were cut in half by a coordinator
// crash (release logged, grant never executed).
type MastershipFold struct {
	// Owner is the reconstructed master per partition (last grant wins,
	// epoch-arbitrated; see RecoverMastership).
	Owner map[uint64]int
	// Epoch is the epoch of the grant that installed Owner (0 when the
	// owner comes from the initial placement or an unfenced grant).
	Epoch map[uint64]uint64
	// Dangling maps partitions whose highest-epoch operation is a RELEASE
	// to the releasing site: the grant leg of that transfer never executed
	// anywhere, so the releasing site — which still holds the data and the
	// freshest applied state — has surrendered ownership into the void. A
	// promoted selector repairs these by re-granting to the releaser under
	// a fresh epoch.
	Dangling map[uint64]int
	// MaxEpoch is the highest epoch observed in any folded record; a
	// recovered or promoted coordinator's allocator must start above it.
	MaxEpoch uint64
}

// FoldMastership is RecoverMastership exposing the full fold: per-partition
// winning epochs and dangling releases. The fold only sees the retained log
// suffixes — checkpoint truncation can have dropped old grant records — so
// callers holding fresher metadata (a standby's mirrored map) must overlay
// it, keeping whichever source carries the higher epoch per partition.
func FoldMastership(b *wal.Broker, initial map[uint64]int) MastershipFold {
	f := MastershipFold{
		Owner:    make(map[uint64]int, len(initial)),
		Epoch:    make(map[uint64]uint64),
		Dangling: make(map[uint64]int),
	}
	for p, site := range initial {
		f.Owner[p] = site
	}
	// Count grants per (partition, site): the last grant in any log for a
	// partition determines its owner. Logs are per-site FIFO; a partition
	// is granted to site g only after g's predecessor released it, so for
	// each partition the grant entries across logs form a chain and the
	// chain's tail is normally the unique grant not followed by a release
	// of the same partition in the same site's log. A site failover breaks
	// that uniqueness — the dead site's log still ends in a grant because
	// it never released — so when several sites end in granted state the
	// remaster epoch arbitrates: the failover (or any later transfer) ran
	// under a strictly higher epoch than every earlier grant.
	type lastOp struct {
		granted bool
		epoch   uint64
	}
	state := make(map[uint64]map[int]lastOp) // partition -> site -> last op
	for i := 0; i < b.Sites(); i++ {
		cur := b.Log(i).Subscribe(0)
		for {
			e, ok := cur.TryNext()
			if !ok {
				cur.Close()
				break
			}
			switch e.Kind {
			case wal.KindGrant, wal.KindRelease:
				if e.Epoch > f.MaxEpoch {
					f.MaxEpoch = e.Epoch
				}
				for _, p := range e.Partitions {
					m := state[p]
					if m == nil {
						m = make(map[int]lastOp)
						state[p] = m
					}
					m[i] = lastOp{granted: e.Kind == wal.KindGrant, epoch: e.Epoch}
				}
			}
		}
	}
	for p, sites := range state {
		best, bestEpoch := -1, uint64(0)
		relSite, relEpoch, released := -1, uint64(0), false
		for site := 0; site < b.Sites(); site++ {
			op, ok := sites[site]
			if !ok {
				continue
			}
			if op.granted {
				if best < 0 || op.epoch > bestEpoch {
					best, bestEpoch = site, op.epoch
				}
			} else if !released || op.epoch > relEpoch {
				relSite, relEpoch, released = site, op.epoch, true
			}
		}
		if best >= 0 {
			f.Owner[p] = best
			f.Epoch[p] = bestEpoch
		}
		// A release strictly out-epoching every grant (or with no grant at
		// all) is a transfer whose grant leg is missing from every log.
		if released && (best < 0 || relEpoch > bestEpoch) {
			f.Dangling[p] = relSite
		}
	}
	return f
}

// RecoverMastershipFrom reconstructs partition ownership from a checkpoint:
// the manifest's placement snapshot seeds the map, and only the log
// suffixes at or past foldOffsets (each origin's log end when the placement
// was captured) are folded on top. A suffix grant overrides the placement
// only under a strictly higher epoch than the one that installed the
// placement entry — sites fence stale-epoch remaster ops, so every
// post-capture grant satisfies this, while the strict comparison keeps a
// replayed copy of the placement-installing grant from flapping ownership.
// Ties among suffix grants break deterministically by site order, matching
// RecoverMastership. The second result is the highest epoch observed
// anywhere (placement or suffix): the recovered selector's epoch counter
// must start above it.
func RecoverMastershipFrom(b *wal.Broker, placement map[uint64]int, placementEpochs map[uint64]uint64, foldOffsets []uint64) (map[uint64]int, uint64) {
	owner := make(map[uint64]int, len(placement))
	for p, site := range placement {
		owner[p] = site
	}
	var maxEpoch uint64
	for _, e := range placementEpochs {
		if e > maxEpoch {
			maxEpoch = e
		}
	}
	type lastOp struct {
		granted bool
		epoch   uint64
	}
	state := make(map[uint64]map[int]lastOp)
	for i := 0; i < b.Sites(); i++ {
		var from uint64
		if i < len(foldOffsets) {
			from = foldOffsets[i]
		}
		cur := b.Log(i).Subscribe(from)
		for {
			e, ok := cur.TryNext()
			if !ok {
				cur.Close()
				break
			}
			if e.Kind != wal.KindGrant && e.Kind != wal.KindRelease {
				continue
			}
			if e.Epoch > maxEpoch {
				maxEpoch = e.Epoch
			}
			for _, p := range e.Partitions {
				m := state[p]
				if m == nil {
					m = make(map[int]lastOp)
					state[p] = m
				}
				m[i] = lastOp{granted: e.Kind == wal.KindGrant, epoch: e.Epoch}
			}
		}
	}
	for p, sites := range state {
		best, bestEpoch := -1, uint64(0)
		if site, ok := placement[p]; ok {
			best, bestEpoch = site, placementEpochs[p]
		}
		for site := 0; site < b.Sites(); site++ {
			op, ok := sites[site]
			if !ok || !op.granted {
				continue
			}
			if best < 0 || op.epoch > bestEpoch {
				best, bestEpoch = site, op.epoch
			}
		}
		if best >= 0 {
			owner[p] = best
		}
	}
	return owner, maxEpoch
}

// AdoptMastership installs an ownership map (produced by
// RecoverMastership) into this site.
func (s *Site) AdoptMastership(owner map[uint64]int) {
	s.pmu.Lock()
	defer s.pmu.Unlock()
	for p, site := range owner {
		st := s.partition(p)
		st.owned = site == s.id
		st.releasing = false
	}
	s.pcond.Broadcast()
}

// CatchUp applies every remaining applicable refresh entry synchronously
// (without waiting on propagation delay); used by recovery paths and tests
// to bring a site to a target vector before serving traffic.
func (s *Site) CatchUp(target vclock.Vector) {
	s.CatchUpFrom(nil, target)
}

// CatchUpFrom is CatchUp starting each origin's log at offsets[origin] (a
// checkpoint manifest's replay positions; nil = from the beginning) and
// returns how many refresh records it applied. Already-applied entries in
// the suffix are skipped by sequence, so replay is idempotent.
func (s *Site) CatchUpFrom(offsets []uint64, target vclock.Vector) uint64 {
	var applied uint64
	for {
		progressed := false
		for origin := 0; origin < s.m; origin++ {
			if origin == s.id {
				continue
			}
			var from uint64
			if origin < len(offsets) {
				from = offsets[origin]
			}
			cur := s.cfg.Broker.Log(origin).Subscribe(from)
			for {
				e, ok := cur.TryNext()
				if !ok {
					break
				}
				if e.Kind == wal.KindEpoch {
					// A sealed epoch installs as one unit: the closing
					// vector's dependency check covers every member (see
					// vclock.CanApplyEpoch), and the clock advances straight
					// to the last member.
					first := e.FirstSeq()
					last := e.TVV[origin]
					s.applyMu[origin].Lock()
					if last <= s.clock.Get(origin) {
						s.applyMu[origin].Unlock()
						continue
					}
					if !vclock.CanApplyEpoch(s.clock.Now(), e.TVV, origin, first) {
						s.applyMu[origin].Unlock()
						break
					}
					base := s.clock.Get(origin)
					var n uint64
					for j := range e.Txns {
						seq := first + uint64(j)
						if seq <= base {
							continue
						}
						writes := e.Txns[j].Writes
						if s.hosting != nil {
							writes = s.filterHosted(writes)
						}
						s.store.Apply(storage.Stamp{Origin: origin, Seq: seq}, writes)
						n++
					}
					s.clock.Advance(origin, last)
					s.applyMu[origin].Unlock()
					s.refreshes.Add(n)
					applied += n
					progressed = true
					continue
				}
				if e.Kind != wal.KindUpdate {
					continue
				}
				seq := e.TVV[origin]
				// The background applyLoop may be working the same suffix;
				// applyMu makes check+install+advance atomic so neither
				// replier stacks a stale version over the other's newer one.
				s.applyMu[origin].Lock()
				if seq <= s.clock.Get(origin) {
					s.applyMu[origin].Unlock()
					continue
				}
				if !vclock.CanApply(s.clock.Now(), e.TVV, origin) {
					s.applyMu[origin].Unlock()
					break
				}
				writes := e.Writes
				if s.hosting != nil {
					writes = s.filterHosted(writes)
				}
				s.store.Apply(storage.Stamp{Origin: origin, Seq: seq}, writes)
				s.clock.Advance(origin, seq)
				s.applyMu[origin].Unlock()
				s.refreshes.Add(1)
				applied++
				progressed = true
			}
			cur.Close()
		}
		if s.clock.Now().DominatesEq(target) || !progressed {
			return applied
		}
	}
}
