package sitemgr

import (
	"dynamast/internal/storage"
	"dynamast/internal/vclock"
	"dynamast/internal/wal"
)

// Recovery (§V-C). DynaMast uses redo logging: on commit the write set is
// appended to the site's durable log, which doubles as the replication
// feed. A data site recovers by initializing state from an existing replica
// and replaying redo logs from the positions indicated by the site version
// vector; mastership state is reconstructed from the sequence of release
// and grant operations in the logs.

// BootstrapFrom copies a peer replica's newest committed versions and
// version vector into this (empty) site. The refresh appliers started
// afterwards skip entries already reflected in the adopted vector.
func (s *Site) BootstrapFrom(peer *Site) {
	peerVV := peer.clock.Now()
	for _, name := range peer.store.TableNames() {
		src := peer.store.Table(name)
		dst := s.store.CreateTable(name)
		src.ForEachLatest(func(key uint64, data []byte, stamp storage.Stamp) {
			dst.Record(key, true).Install(stamp, data, false, s.store.MaxVersions())
		})
	}
	for k, v := range peerVV {
		s.clock.Advance(k, v)
	}
	s.nextSeq.Store(peerVV[s.id])
}

// RecoverLocal replays this site's own redo log into the local store,
// restoring every update it had committed before the crash, and advances
// the clock's own dimension accordingly. Remote dimensions are recovered by
// the refresh appliers re-reading the peers' logs.
func (s *Site) RecoverLocal() error {
	cur := s.log.Subscribe(0)
	for {
		e, ok := cur.TryNext()
		if !ok {
			return nil
		}
		if e.Kind != wal.KindUpdate {
			continue
		}
		seq := e.TVV[s.id]
		s.store.Apply(storage.Stamp{Origin: s.id, Seq: seq}, e.Writes)
		s.clock.Advance(s.id, seq)
		if s.nextSeq.Load() < seq {
			s.nextSeq.Store(seq)
		}
	}
}

// RecoverMastership reconstructs partition ownership by folding the
// release/grant entries of every site's log over an initial placement.
// Entries are merged in a deterministic interleaving: mastership of a
// partition alternates release -> grant, and each grant names the releasing
// peer, so replaying each log in order and matching grant entries to their
// releases yields the final owner of every partition.
func RecoverMastership(b *wal.Broker, initial map[uint64]int) map[uint64]int {
	owner := make(map[uint64]int, len(initial))
	for p, site := range initial {
		owner[p] = site
	}
	// Count grants per (partition, site): the last grant in any log for a
	// partition determines its owner. Logs are per-site FIFO; a partition
	// is granted to site g only after g's predecessor released it, so for
	// each partition the grant entries across logs form a chain and the
	// chain's tail is normally the unique grant not followed by a release
	// of the same partition in the same site's log. A site failover breaks
	// that uniqueness — the dead site's log still ends in a grant because
	// it never released — so when several sites end in granted state the
	// remaster epoch arbitrates: the failover (or any later transfer) ran
	// under a strictly higher epoch than every earlier grant.
	type lastOp struct {
		granted bool
		epoch   uint64
	}
	state := make(map[uint64]map[int]lastOp) // partition -> site -> last op
	for i := 0; i < b.Sites(); i++ {
		cur := b.Log(i).Subscribe(0)
		for {
			e, ok := cur.TryNext()
			if !ok {
				break
			}
			switch e.Kind {
			case wal.KindGrant:
				for _, p := range e.Partitions {
					m := state[p]
					if m == nil {
						m = make(map[int]lastOp)
						state[p] = m
					}
					m[i] = lastOp{granted: true, epoch: e.Epoch}
				}
			case wal.KindRelease:
				for _, p := range e.Partitions {
					m := state[p]
					if m == nil {
						m = make(map[int]lastOp)
						state[p] = m
					}
					m[i] = lastOp{granted: false, epoch: e.Epoch}
				}
			}
		}
	}
	for p, sites := range state {
		best, bestEpoch := -1, uint64(0)
		for site := 0; site < b.Sites(); site++ {
			op, ok := sites[site]
			if !ok || !op.granted {
				continue
			}
			if best < 0 || op.epoch > bestEpoch {
				best, bestEpoch = site, op.epoch
			}
		}
		if best >= 0 {
			owner[p] = best
		}
	}
	return owner
}

// AdoptMastership installs an ownership map (produced by
// RecoverMastership) into this site.
func (s *Site) AdoptMastership(owner map[uint64]int) {
	s.pmu.Lock()
	defer s.pmu.Unlock()
	for p, site := range owner {
		st := s.partition(p)
		st.owned = site == s.id
		st.releasing = false
	}
	s.pcond.Broadcast()
}

// CatchUp applies every remaining applicable refresh entry synchronously
// (without waiting on propagation delay); used by recovery paths and tests
// to bring a site to a target vector before serving traffic.
func (s *Site) CatchUp(target vclock.Vector) {
	for {
		progressed := false
		for origin := 0; origin < s.m; origin++ {
			if origin == s.id {
				continue
			}
			cur := s.cfg.Broker.Log(origin).Subscribe(0)
			for {
				e, ok := cur.TryNext()
				if !ok {
					break
				}
				if e.Kind != wal.KindUpdate {
					continue
				}
				seq := e.TVV[origin]
				if seq <= s.clock.Get(origin) {
					continue
				}
				if !vclock.CanApply(s.clock.Now(), e.TVV, origin) {
					break
				}
				s.store.Apply(storage.Stamp{Origin: origin, Seq: seq}, e.Writes)
				s.clock.Advance(origin, seq)
				s.refreshes.Add(1)
				progressed = true
			}
		}
		if s.clock.Now().DominatesEq(target) || !progressed {
			return
		}
	}
}
