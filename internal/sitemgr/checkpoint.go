package sitemgr

import (
	"dynamast/internal/checkpoint"
	"dynamast/internal/storage"
	"dynamast/internal/vclock"
)

// Checkpoint integration: a site exports a consistent snapshot of its store
// without blocking writers, and restores one before suffix replay.

// WriteSnapshot captures the site's current version vector and streams the
// store as observed at it into w. Commits proceed concurrently: the export
// walk takes no write locks, and a version evicted mid-walk is replaced by
// the oldest retained one, which the post-svv WAL suffix replay corrects
// (see storage.Store.ExportAt). Returns the captured svv; the caller records
// it in the manifest together with per-origin replay offsets derived from
// it.
func (s *Site) WriteSnapshot(w *checkpoint.SnapshotWriter) (vclock.Vector, error) {
	svv := s.clock.Now()
	var werr error
	s.store.ExportAt(svv, func(table string, key uint64, data []byte, stamp storage.Stamp) bool {
		werr = w.Write(checkpoint.Row{Table: table, Key: key, Data: data, Stamp: stamp})
		return werr == nil
	})
	return svv, werr
}

// RestoreSnapshot installs a (pre-verified) snapshot file's rows into this
// empty site and adopts its svv, positioning the site for suffix replay
// with RecoverLocalFrom and CatchUpFrom. Returns the number of rows
// installed.
func (s *Site) RestoreSnapshot(path string, svv vclock.Vector) (uint64, error) {
	// Hold every origin's apply mutex across install + clock advance: the
	// background appliers are already running, and letting one install a
	// log entry older than a just-restored row would stack a stale version
	// over the snapshot's newer head. Once the clock reads svv they skip
	// the covered prefix on their own.
	for o := range s.applyMu {
		s.applyMu[o].Lock()
	}
	defer func() {
		for o := range s.applyMu {
			s.applyMu[o].Unlock()
		}
	}()
	// The appliers may already have installed part of the retained log
	// (with a truncated-prefix WAL their first dependency gate can pass
	// before Recover runs), so rows the clock shows as already-covered must
	// not be imported over the newer heads. The clock is frozen while every
	// applyMu is held, so one snapshot of it guards the whole import.
	applied := s.clock.Now()
	rows, err := checkpoint.ReadSnapshot(path, func(r checkpoint.Row) error {
		s.store.ImportRowIfNewer(r.Table, r.Key, r.Data, r.Stamp, applied)
		return nil
	})
	if err != nil {
		return rows, err
	}
	for k, v := range svv {
		s.clock.Advance(k, v)
	}
	if s.id < len(svv) && s.nextSeq.Load() < svv[s.id] {
		s.nextSeq.Store(svv[s.id])
	}
	return rows, nil
}
