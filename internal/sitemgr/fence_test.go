package sitemgr

import (
	"errors"
	"testing"

	"dynamast/internal/wal"
)

// newFencePair builds two replicating sites over one broker with partition
// ownership seeded at site 0.
func newFencePair(t *testing.T) ([]*Site, *wal.Broker) {
	t.Helper()
	b := wal.NewBroker(2)
	sites := make([]*Site, 2)
	for i := range sites {
		s, err := New(Config{
			SiteID: i, Sites: 2, Broker: b,
			Partitioner: partitionBy100, Replicate: true,
		})
		if err != nil {
			t.Fatal(err)
		}
		s.Store().CreateTable("t")
		for p := uint64(0); p < 10; p++ {
			s.SetMaster(p, i == 0)
		}
		sites[i] = s
		s.Start()
	}
	t.Cleanup(func() {
		b.Close()
		for _, s := range sites {
			s.Stop()
		}
	})
	return sites, b
}

func TestFenceEpochsBelow(t *testing.T) {
	sites, _ := newFencePair(t)
	s0, s1 := sites[0], sites[1]

	if got := s0.EpochFloor(); got != 0 {
		t.Fatalf("initial floor = %d, want 0", got)
	}
	if got := s0.FenceEpochsBelow(5); got != 5 {
		t.Fatalf("fence install returned %d, want 5", got)
	}
	// The floor only rises: a lower fence is a no-op returning the one in
	// effect, re-installing the same floor is idempotent.
	if got := s0.FenceEpochsBelow(3); got != 5 {
		t.Fatalf("lower fence returned %d, want 5", got)
	}
	if got := s0.FenceEpochsBelow(5); got != 5 {
		t.Fatalf("idempotent fence returned %d, want 5", got)
	}

	// Operations below the floor die with ErrStaleEpoch.
	if _, err := s0.Release([]uint64{1}, 1, 4); !errors.Is(err, ErrStaleEpoch) {
		t.Fatalf("release below floor: err = %v, want ErrStaleEpoch", err)
	}
	s1.FenceEpochsBelow(5)
	if _, err := s1.Grant([]uint64{1}, nil, 0, 4); !errors.Is(err, ErrStaleEpoch) {
		t.Fatalf("grant below floor: err = %v, want ErrStaleEpoch", err)
	}
	if s1.Masters(1) || !s0.Masters(1) {
		t.Fatal("fenced operations changed ownership")
	}

	// Epoch-0 (unfenced, coordinator-less) transfers are unaffected, and
	// operations at or above the floor proceed.
	rel, err := s0.Release([]uint64{1}, 1, 0)
	if err != nil {
		t.Fatalf("epoch-0 release under fence: %v", err)
	}
	if _, err := s1.Grant([]uint64{1}, rel, 0, 0); err != nil {
		t.Fatalf("epoch-0 grant under fence: %v", err)
	}
	rel, err = s1.Release([]uint64{1}, 0, 5)
	if err != nil {
		t.Fatalf("release at floor: %v", err)
	}
	if _, err := s0.Grant([]uint64{1}, rel, 1, 6); err != nil {
		t.Fatalf("grant above floor: %v", err)
	}
	if !s0.Masters(1) || s1.Masters(1) {
		t.Fatal("at/above-floor transfer did not complete")
	}

	// A dead site still serves the fence (promotion treats fenced and
	// crashed sites uniformly).
	s1.Kill()
	if got := s1.FenceEpochsBelow(9); got != 9 {
		t.Fatalf("fence on dead site returned %d, want 9", got)
	}
}

func TestFoldMastership(t *testing.T) {
	sites, b := newFencePair(t)
	s0, s1 := sites[0], sites[1]

	// A completed chain at epoch 2: partition 3 moves 0 -> 1.
	rel, err := s0.Release([]uint64{3}, 1, 2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s1.Grant([]uint64{3}, rel, 0, 2); err != nil {
		t.Fatal(err)
	}
	// A dangling release at epoch 3: partition 4 released by site 0, the
	// grant never ran (coordinator died between the legs).
	if _, err := s0.Release([]uint64{4}, 1, 3); err != nil {
		t.Fatal(err)
	}

	f := FoldMastership(b, map[uint64]int{3: 0, 4: 0, 5: 0})
	if got := f.Owner[3]; got != 1 {
		t.Fatalf("fold owner of partition 3 = %d, want 1", got)
	}
	if got := f.Epoch[3]; got != 2 {
		t.Fatalf("fold epoch of partition 3 = %d, want 2", got)
	}
	if got := f.Owner[5]; got != 0 {
		t.Fatalf("fold owner of untouched partition 5 = %d, want initial 0", got)
	}
	if got, ok := f.Dangling[4]; !ok || got != 0 {
		t.Fatalf("dangling = %v, want partition 4 -> releaser 0", f.Dangling)
	}
	if _, dangling := f.Dangling[3]; dangling {
		t.Fatal("completed chain reported dangling")
	}
	// With an initial placement the dangling partition keeps its seed owner
	// (legacy RecoverMastership callers expect a complete map); without one
	// no log grant exists, so the partition has no fold owner at all.
	if got := f.Owner[4]; got != 0 {
		t.Fatalf("dangling partition seeded owner = %d, want initial 0", got)
	}
	if _, owned := FoldMastership(b, nil).Owner[4]; owned {
		t.Fatal("dangling partition acquired a fold owner without an initial placement")
	}
	if f.MaxEpoch != 3 {
		t.Fatalf("fold max epoch = %d, want 3", f.MaxEpoch)
	}

	// The legacy entry point stays consistent with the fold's owners.
	owners := RecoverMastership(b, map[uint64]int{3: 0, 4: 0, 5: 0})
	if owners[3] != 1 || owners[5] != 0 {
		t.Fatalf("RecoverMastership = %v", owners)
	}
}
