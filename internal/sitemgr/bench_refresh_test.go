package sitemgr

import (
	"runtime"
	"testing"
	"time"

	"dynamast/internal/storage"
	"dynamast/internal/vclock"
	"dynamast/internal/wal"
)

// BenchmarkRefreshApplyBatch measures a replica absorbing a backlog of
// already-published updates: the per-entry cost of the refresh pipeline
// (cursor wake, dependency check, apply-slot acquisition, store apply,
// clock advance). The origin's log is pre-filled so the applier drains at
// full speed — the case batching targets.
func BenchmarkRefreshApplyBatch(b *testing.B) {
	broker := wal.NewBroker(2)
	at := time.Now().Add(-time.Second) // already past any propagation delay
	for i := 1; i <= b.N; i++ {
		k := uint64(i % 1000)
		broker.Log(0).Append(wal.Entry{
			Kind:   wal.KindUpdate,
			Origin: 0,
			At:     at,
			TVV:    vclock.Vector{uint64(i), 0},
			Writes: []storage.Write{{Ref: storage.RowRef{Table: "t", Key: k}, Data: []byte("v")}},
		})
	}
	site, err := New(Config{
		SiteID: 1, Sites: 2, Broker: broker,
		Partitioner: partitionBy100, Replicate: true,
	})
	if err != nil {
		b.Fatal(err)
	}
	site.Store().CreateTable("t")
	b.ReportAllocs()
	b.ResetTimer()
	site.Start()
	for site.Refreshes() < uint64(b.N) {
		runtime.Gosched()
	}
	b.StopTimer()
	broker.Close()
	site.Stop()
}
