package sitemgr

import (
	"time"
)

// Execution capacity model. The paper's data sites are 12-core machines
// whose saturation under update load is what bottlenecks the single-master
// architecture; this reproduction runs all sites in one process, so each
// Site owns a pool of execution slots and every piece of transactional work
// (stored procedures, 2PC participant work, refresh application) occupies a
// slot for its modelled CPU cost. A saturated site queues work exactly like
// a saturated server.
//
// Costs are charged as sleeps. Because OS sleep granularity (~50-100µs)
// would swamp microsecond-scale costs, each slot accrues a debt and sleeps
// only when the debt crosses a quantum — average rates stay correct while
// individual transactions see at most one quantum of jitter.

// CostModel prices transactional work.
type CostModel struct {
	// TxnBase is charged per stored-procedure execution.
	TxnBase time.Duration
	// PerRead, PerWrite and PerScanKey are charged per operation.
	PerRead    time.Duration
	PerWrite   time.Duration
	PerScanKey time.Duration
	// RefreshBase and PerRefreshWrite price refresh-transaction
	// application at replicas.
	RefreshBase     time.Duration
	PerRefreshWrite time.Duration
}

// DefaultCostModel approximates an OLTP stored-procedure engine at the
// simulation's time scale (~8x the paper's hardware; see
// transport.DefaultConfig): ~1ms of fixed per-transaction work plus tens of
// µs per row touched. With the default 4 execution slots a site saturates
// around 3k update transactions per second; scans of 200-1000 keys cost
// 3-11ms. Refresh application is ~6x cheaper than executing the full
// stored procedure, which is what lets a dynamically mastered replicated
// system out-scale a single master.
func DefaultCostModel() CostModel {
	return CostModel{
		TxnBase:         1000 * time.Microsecond,
		PerRead:         20 * time.Microsecond,
		PerWrite:        50 * time.Microsecond,
		PerScanKey:      10 * time.Microsecond,
		RefreshBase:     100 * time.Microsecond,
		PerRefreshWrite: 30 * time.Microsecond,
	}
}

// Zero reports whether the model charges nothing (unit tests).
func (c CostModel) Zero() bool { return c == CostModel{} }

// DefaultExecSlots is the default per-site execution parallelism.
const DefaultExecSlots = 4

// DefaultApplySlots is the default parallelism of a site's replication
// manager (refresh application runs on its own threads and does not queue
// behind stored procedures, as in the paper's integrated-but-concurrent
// design; its capacity still bounds how fast replicas absorb remote
// updates, which is what limits site-count scaling).
const DefaultApplySlots = 2

// execQuantum is the debt threshold at which a slot actually sleeps; it
// sits above the host's sleep granularity so batching error stays ~10%.
const execQuantum = 2 * time.Millisecond

// slotToken carries a slot's accumulated unslept debt.
type slotToken struct {
	debt time.Duration
}

// execPool is a site's execution slots.
type execPool struct {
	slots chan *slotToken
}

func newExecPool(n int) *execPool {
	if n <= 0 {
		n = DefaultExecSlots
	}
	p := &execPool{slots: make(chan *slotToken, n)}
	for i := 0; i < n; i++ {
		p.slots <- &slotToken{}
	}
	return p
}

// do runs fn while holding a slot, then charges the cost fn returned.
func (p *execPool) do(fn func() time.Duration) {
	tok := <-p.slots
	cost := fn()
	tok.debt += cost
	if tok.debt >= execQuantum {
		time.Sleep(tok.debt)
		tok.debt = 0
	}
	p.slots <- tok
}

// Exec runs fn on one of the site's execution slots and charges the
// modelled CPU cost fn returns. When the site is saturated, callers queue.
func (s *Site) Exec(fn func() time.Duration) {
	s.pool.do(fn)
}

// Costs returns the site's cost model.
func (s *Site) Costs() CostModel { return s.cfg.Costs }
