package sitemgr

import (
	"errors"
	"fmt"
	"testing"
	"time"

	"dynamast/internal/storage"
	"dynamast/internal/vclock"
	"dynamast/internal/wal"
)

// partitionBy100 groups keys into partitions of 100 contiguous keys, the
// paper's YCSB partitioning.
func partitionBy100(ref storage.RowRef) uint64 { return ref.Key / 100 }

// testCluster builds m replicating sites over one broker, with every
// partition initially mastered at site 0 and table "t" pre-created.
func testCluster(t *testing.T, m int) ([]*Site, *wal.Broker) {
	t.Helper()
	b := wal.NewBroker(m)
	sites := make([]*Site, m)
	for i := 0; i < m; i++ {
		s, err := New(Config{
			SiteID:      i,
			Sites:       m,
			Broker:      b,
			Partitioner: partitionBy100,
			Replicate:   true,
			// Propagation delay left at zero for fast tests.
		})
		if err != nil {
			t.Fatal(err)
		}
		s.Store().CreateTable("t")
		for p := uint64(0); p < 10; p++ {
			s.SetMaster(p, i == 0)
		}
		sites[i] = s
	}
	for _, s := range sites {
		s.Start()
	}
	t.Cleanup(func() {
		b.Close()
		for _, s := range sites {
			s.Stop()
		}
	})
	return sites, b
}

func ref(key uint64) storage.RowRef { return storage.RowRef{Table: "t", Key: key} }

func mustCommit(t *testing.T, tx *Txn) vclock.Vector {
	t.Helper()
	vv, err := tx.Commit()
	if err != nil {
		t.Fatal(err)
	}
	return vv
}

func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition never satisfied")
		}
		time.Sleep(time.Millisecond)
	}
}

func TestNewValidation(t *testing.T) {
	b := wal.NewBroker(2)
	defer b.Close()
	if _, err := New(Config{SiteID: 0, Sites: 2, Partitioner: partitionBy100}); err == nil {
		t.Error("missing broker accepted")
	}
	if _, err := New(Config{SiteID: 0, Sites: 2, Broker: b}); err == nil {
		t.Error("missing partitioner accepted")
	}
	if _, err := New(Config{SiteID: 5, Sites: 2, Broker: b, Partitioner: partitionBy100}); err == nil {
		t.Error("out-of-range site id accepted")
	}
}

func TestLocalCommitVisibility(t *testing.T) {
	sites, _ := testCluster(t, 2)
	s0 := sites[0]

	tx, err := s0.Begin(nil, []storage.RowRef{ref(5)})
	if err != nil {
		t.Fatal(err)
	}
	if err := tx.Write(ref(5), []byte("hello")); err != nil {
		t.Fatal(err)
	}
	tvv := mustCommit(t, tx)
	if !tvv.Equal(vclock.Vector{1, 0}) {
		t.Fatalf("tvv = %v", tvv)
	}

	rd, err := s0.Begin(nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if data, ok := rd.Read(ref(5)); !ok || string(data) != "hello" {
		t.Fatalf("read = %q %v", data, ok)
	}
	if _, err := rd.Commit(); err != nil {
		t.Fatal(err)
	}
}

func TestRefreshPropagation(t *testing.T) {
	sites, _ := testCluster(t, 3)
	tx, _ := sites[0].Begin(nil, []storage.RowRef{ref(1)})
	tx.Write(ref(1), []byte("x"))
	tvv := mustCommit(t, tx)

	for _, s := range sites[1:] {
		s := s
		waitFor(t, func() bool { return s.SVV().DominatesEq(tvv) })
		if data, ok := s.ReadLocal(ref(1)); !ok || string(data) != "x" {
			t.Fatalf("site %d read = %q %v", s.ID(), data, ok)
		}
		if s.Refreshes() == 0 {
			t.Fatalf("site %d applied no refreshes", s.ID())
		}
	}
}

func TestRefreshDependencyOrdering(t *testing.T) {
	// Reproduces the paper's Figure 2: T1 commits at S0; S2 applies R(T1)
	// then commits T2 (which depends on T1); S1 must apply R(T1) before
	// R(T2) even though R(T2) may arrive first in wall-clock terms.
	sites, _ := testCluster(t, 3)
	s0, s1, s2 := sites[0], sites[1], sites[2]

	tx, _ := s0.Begin(nil, []storage.RowRef{ref(1)})
	tx.Write(ref(1), []byte("t1"))
	tvv1 := mustCommit(t, tx)

	// Let S2 apply R(T1), then remaster partition 0 to S2 and commit T2.
	waitFor(t, func() bool { return s2.SVV().DominatesEq(tvv1) })
	relVV, err := s0.Release([]uint64{0}, 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s2.Grant([]uint64{0}, relVV, 0, 0); err != nil {
		t.Fatal(err)
	}
	tx2, err := s2.Begin(nil, []storage.RowRef{ref(1)})
	if err != nil {
		t.Fatal(err)
	}
	tx2.Write(ref(1), []byte("t2"))
	tvv2 := mustCommit(t, tx2)
	if !tvv2.DominatesEq(tvv1) {
		t.Fatalf("T2's commit %v does not reflect T1 %v", tvv2, tvv1)
	}

	waitFor(t, func() bool { return s1.SVV().DominatesEq(tvv2) })
	if data, ok := s1.ReadLocal(ref(1)); !ok || string(data) != "t2" {
		t.Fatalf("S1 read = %q %v (must be T2's value)", data, ok)
	}
}

func TestBeginNotMaster(t *testing.T) {
	sites, _ := testCluster(t, 2)
	_, err := sites[1].Begin(nil, []storage.RowRef{ref(1)})
	if !errors.Is(err, ErrNotMaster) {
		t.Fatalf("err = %v, want ErrNotMaster", err)
	}
}

func TestWriteOutsideDeclaredSet(t *testing.T) {
	sites, _ := testCluster(t, 2)
	tx, _ := sites[0].Begin(nil, []storage.RowRef{ref(1)})
	defer tx.Abort()
	if err := tx.Write(ref(2), []byte("x")); err == nil {
		t.Fatal("write outside declared write set accepted")
	}
}

func TestReadOnlyTxnRejectsWrites(t *testing.T) {
	sites, _ := testCluster(t, 2)
	tx, _ := sites[0].Begin(nil, nil)
	if !tx.ReadOnly() {
		t.Fatal("empty write set not read-only")
	}
	if err := tx.Write(ref(1), []byte("x")); err == nil {
		t.Fatal("read-only txn accepted a write")
	}
	if _, err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	if _, err := tx.Commit(); err == nil {
		t.Fatal("double commit accepted")
	}
}

func TestTxnReadsOwnWrites(t *testing.T) {
	sites, _ := testCluster(t, 2)
	s0 := sites[0]
	tx, _ := s0.Begin(nil, []storage.RowRef{ref(1)})
	tx.Write(ref(1), []byte("mine"))
	if data, ok := tx.Read(ref(1)); !ok || string(data) != "mine" {
		t.Fatalf("own write invisible: %q %v", data, ok)
	}
	tx.Delete(ref(1))
	if _, ok := tx.Read(ref(1)); ok {
		t.Fatal("own delete invisible")
	}
	mustCommit(t, tx)
	if _, ok := s0.ReadLocal(ref(1)); ok {
		t.Fatal("committed delete not effective")
	}
}

func TestSnapshotIsolationReaderUnblocked(t *testing.T) {
	sites, _ := testCluster(t, 2)
	s0 := sites[0]
	tx, _ := s0.Begin(nil, []storage.RowRef{ref(1)})
	tx.Write(ref(1), []byte("v1"))
	mustCommit(t, tx)

	// Writer holds the lock on key 1; a concurrent reader must not block
	// and must see the pre-update value.
	w, _ := s0.Begin(nil, []storage.RowRef{ref(1)})
	w.Write(ref(1), []byte("v2"))
	r, _ := s0.Begin(nil, nil)
	if data, ok := r.Read(ref(1)); !ok || string(data) != "v1" {
		t.Fatalf("reader saw %q %v", data, ok)
	}
	mustCommit(t, w)
	// The reader's snapshot still sees v1 after the writer commits.
	if data, ok := r.Read(ref(1)); !ok || string(data) != "v1" {
		t.Fatalf("snapshot not stable: %q %v", data, ok)
	}
}

func TestWriteWriteBlocking(t *testing.T) {
	sites, _ := testCluster(t, 2)
	s0 := sites[0]
	tx1, _ := s0.Begin(nil, []storage.RowRef{ref(1)})
	started := make(chan struct{})
	done := make(chan vclock.Vector, 1)
	go func() {
		close(started)
		tx2, err := s0.Begin(nil, []storage.RowRef{ref(1)})
		if err != nil {
			panic(err)
		}
		tx2.Write(ref(1), []byte("second"))
		vv, err := tx2.Commit()
		if err != nil {
			panic(err)
		}
		done <- vv
	}()
	<-started
	select {
	case <-done:
		t.Fatal("conflicting txn proceeded while lock held")
	case <-time.After(20 * time.Millisecond):
	}
	tx1.Write(ref(1), []byte("first"))
	tvv1 := mustCommit(t, tx1)
	select {
	case tvv2 := <-done:
		// The second writer's snapshot (and commit) must reflect the first.
		if !tvv2.DominatesEq(tvv1) {
			t.Fatalf("second commit %v does not dominate first %v", tvv2, tvv1)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("blocked writer never proceeded")
	}
	if data, _ := s0.ReadLocal(ref(1)); string(data) != "second" {
		t.Fatalf("final value %q", data)
	}
}

func TestBeginWaitsForMinVV(t *testing.T) {
	sites, _ := testCluster(t, 2)
	s1 := sites[1]
	// Session requires site 0's first commit; start the Begin first, then
	// commit at site 0 and verify the Begin completes with a snapshot that
	// includes it.
	got := make(chan vclock.Vector, 1)
	go func() {
		tx, err := s1.Begin(vclock.Vector{1, 0}, nil)
		if err != nil {
			panic(err)
		}
		got <- tx.Snapshot()
	}()
	select {
	case <-got:
		t.Fatal("Begin returned before freshness satisfied")
	case <-time.After(20 * time.Millisecond):
	}
	tx, _ := sites[0].Begin(nil, []storage.RowRef{ref(1)})
	tx.Write(ref(1), []byte("x"))
	mustCommit(t, tx)
	select {
	case snap := <-got:
		if snap[0] < 1 {
			t.Fatalf("snapshot %v misses required freshness", snap)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("Begin never unblocked")
	}
}

func TestReleaseWaitsForWriters(t *testing.T) {
	sites, _ := testCluster(t, 2)
	s0 := sites[0]
	tx, _ := s0.Begin(nil, []storage.RowRef{ref(1)})
	tx.Write(ref(1), []byte("x"))

	released := make(chan vclock.Vector, 1)
	go func() {
		vv, err := s0.Release([]uint64{0}, 1, 0)
		if err != nil {
			panic(err)
		}
		released <- vv
	}()
	select {
	case <-released:
		t.Fatal("release completed while a writer was in flight")
	case <-time.After(20 * time.Millisecond):
	}
	tvv := mustCommit(t, tx)
	select {
	case relVV := <-released:
		// The release vector must include the committed write.
		if !relVV.DominatesEq(tvv) {
			t.Fatalf("release vector %v misses commit %v", relVV, tvv)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("release never completed")
	}
	if s0.Masters(0) {
		t.Fatal("site still masters released partition")
	}
}

func TestReleaseBlocksNewWriters(t *testing.T) {
	sites, _ := testCluster(t, 2)
	s0 := sites[0]
	tx, _ := s0.Begin(nil, []storage.RowRef{ref(1)})
	go func() {
		time.Sleep(30 * time.Millisecond)
		tx.Abort()
	}()
	relDone := make(chan struct{})
	go func() {
		if _, err := s0.Release([]uint64{0}, 1, 0); err != nil {
			panic(err)
		}
		close(relDone)
	}()
	time.Sleep(10 * time.Millisecond)
	// While the release is pending, a new writer must be turned away.
	if _, err := s0.Begin(nil, []storage.RowRef{ref(2)}); !errors.Is(err, ErrReleasing) {
		t.Fatalf("err = %v, want ErrReleasing", err)
	}
	<-relDone
}

func TestGrantWaitsForReleasePoint(t *testing.T) {
	sites, _ := testCluster(t, 2)
	s0, s1 := sites[0], sites[1]

	tx, _ := s0.Begin(nil, []storage.RowRef{ref(1)})
	tx.Write(ref(1), []byte("pre-release"))
	mustCommit(t, tx)
	relVV, err := s0.Release([]uint64{0}, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	grantVV, err := s1.Grant([]uint64{0}, relVV, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !grantVV.DominatesEq(relVV) {
		t.Fatalf("grant vector %v below release point %v", grantVV, relVV)
	}
	if !s1.Masters(0) {
		t.Fatal("grant did not take ownership")
	}
	// The freshest value must already be readable at the new master.
	if data, ok := s1.ReadLocal(ref(1)); !ok || string(data) != "pre-release" {
		t.Fatalf("new master read = %q %v", data, ok)
	}
	if s1.RemastersReceived() != 1 {
		t.Fatalf("RemastersReceived = %d", s1.RemastersReceived())
	}
}

func TestScanAtSnapshot(t *testing.T) {
	sites, _ := testCluster(t, 2)
	s0 := sites[0]
	for k := uint64(0); k < 5; k++ {
		tx, _ := s0.Begin(nil, []storage.RowRef{ref(k)})
		tx.Write(ref(k), []byte{byte(k)})
		mustCommit(t, tx)
	}
	rd, _ := s0.Begin(nil, nil)
	rows := rd.Scan("t", 1, 4)
	if len(rows) != 3 || rows[0].Key != 1 || rows[2].Key != 3 {
		t.Fatalf("scan = %+v", rows)
	}
	n := 0
	rd.ScanEach("t", 0, 5, func(uint64, []byte) bool { n++; return true })
	if n != 5 {
		t.Fatalf("ScanEach visited %d", n)
	}
	if rd.Scan("missing", 0, 1) != nil {
		t.Fatal("scan of missing table returned rows")
	}
}

func TestMasteredPartitions(t *testing.T) {
	sites, _ := testCluster(t, 2)
	if got := len(sites[0].MasteredPartitions()); got != 10 {
		t.Fatalf("site 0 masters %d partitions", got)
	}
	if got := len(sites[1].MasteredPartitions()); got != 0 {
		t.Fatalf("site 1 masters %d partitions", got)
	}
}

func TestConcurrentCommitsStayDense(t *testing.T) {
	sites, _ := testCluster(t, 2)
	s0 := sites[0]
	const n = 30
	done := make(chan vclock.Vector, n)
	for i := 0; i < n; i++ {
		go func(i int) {
			tx, err := s0.Begin(nil, []storage.RowRef{ref(uint64(i))})
			if err != nil {
				panic(err)
			}
			tx.Write(ref(uint64(i)), []byte{byte(i)})
			vv, err := tx.Commit()
			if err != nil {
				panic(err)
			}
			done <- vv
		}(i)
	}
	seen := map[uint64]bool{}
	for i := 0; i < n; i++ {
		vv := <-done
		if seen[vv[0]] {
			t.Fatalf("duplicate commit seq %d", vv[0])
		}
		seen[vv[0]] = true
	}
	if s0.SVV()[0] != n {
		t.Fatalf("svv[0] = %d, want %d", s0.SVV()[0], n)
	}
	// The site's log must carry the n commits in sequence order.
	cur := s0.log.Subscribe(0)
	want := uint64(1)
	for {
		e, ok := cur.TryNext()
		if !ok {
			break
		}
		if e.Kind != wal.KindUpdate {
			continue
		}
		if e.TVV[0] != want {
			t.Fatalf("log out of order: got seq %d, want %d", e.TVV[0], want)
		}
		want++
	}
	if want != n+1 {
		t.Fatalf("log carried %d commits", want-1)
	}
}

func TestAbortReleasesLocksAndWriters(t *testing.T) {
	sites, _ := testCluster(t, 2)
	s0 := sites[0]
	tx, _ := s0.Begin(nil, []storage.RowRef{ref(1)})
	tx.Write(ref(1), []byte("x"))
	tx.Abort()
	tx.Abort() // idempotent

	// Lock free again.
	tx2, err := s0.Begin(nil, []storage.RowRef{ref(1)})
	if err != nil {
		t.Fatal(err)
	}
	mustCommit(t, tx2) // empty write set is a no-op commit of an update txn
	// Release must not block on the aborted writer.
	doneCh := make(chan struct{})
	go func() {
		s0.Release([]uint64{0}, 1, 0)
		close(doneCh)
	}()
	select {
	case <-doneCh:
	case <-time.After(2 * time.Second):
		t.Fatal("release blocked after abort")
	}
	// Aborted write is invisible.
	if _, ok := s0.ReadLocal(ref(1)); ok {
		t.Fatal("aborted write visible")
	}
}

func TestTwoPCPrepareCommit(t *testing.T) {
	sites, _ := testCluster(t, 2)
	s0 := sites[0]
	id := s0.NextTxnID()
	snap, err := s0.Prepare(id, []storage.RowRef{ref(1)})
	if err != nil {
		t.Fatal(err)
	}
	if snap == nil {
		t.Fatal("nil prepare snapshot")
	}
	if _, err := s0.Prepare(id, []storage.RowRef{ref(2)}); err == nil {
		t.Fatal("duplicate prepare accepted")
	}
	tvv, err := s0.CommitPrepared(id, []storage.Write{{Ref: ref(1), Data: []byte("d")}})
	if err != nil {
		t.Fatal(err)
	}
	if tvv[0] != 1 {
		t.Fatalf("tvv = %v", tvv)
	}
	if data, _ := s0.ReadLocal(ref(1)); string(data) != "d" {
		t.Fatalf("read %q", data)
	}
	if _, err := s0.CommitPrepared(id, nil); err == nil {
		t.Fatal("commit of unprepared txn accepted")
	}
}

func TestTwoPCUncertainPhaseBlocks(t *testing.T) {
	sites, _ := testCluster(t, 2)
	s0 := sites[0]
	id := s0.NextTxnID()
	if _, err := s0.Prepare(id, []storage.RowRef{ref(1)}); err != nil {
		t.Fatal(err)
	}
	// A local transaction on the same record blocks until the global
	// decision — the uncertain-phase blocking the paper highlights.
	done := make(chan struct{})
	go func() {
		tx, err := s0.Begin(nil, []storage.RowRef{ref(1)})
		if err != nil {
			panic(err)
		}
		tx.Write(ref(1), []byte("local"))
		if _, err := tx.Commit(); err != nil {
			panic(err)
		}
		close(done)
	}()
	select {
	case <-done:
		t.Fatal("local txn proceeded during uncertain phase")
	case <-time.After(20 * time.Millisecond):
	}
	s0.AbortPrepared(id)
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("local txn never unblocked after abort")
	}
	s0.AbortPrepared(id) // idempotent
}

func TestShipOutShipIn(t *testing.T) {
	// LEAP-style localization between two non-replicating sites.
	b := wal.NewBroker(2)
	defer b.Close()
	mk := func(id int) *Site {
		s, err := New(Config{SiteID: id, Sites: 2, Broker: b, Partitioner: partitionBy100})
		if err != nil {
			t.Fatal(err)
		}
		s.Store().CreateTable("t")
		return s
	}
	src, dst := mk(0), mk(1)
	for p := uint64(0); p < 10; p++ {
		src.SetMaster(p, true)
	}
	for k := uint64(0); k < 3; k++ {
		tx, _ := src.Begin(nil, []storage.RowRef{ref(k)})
		tx.Write(ref(k), []byte{byte(k + 10)})
		mustCommit(t, tx)
	}
	rows, err := src.ShipOut(ShipRequest{
		Refs:   []storage.RowRef{ref(0)},
		Scans:  []ScanRange{{Table: "t", Lo: 1, Hi: 3}},
		Parts:  []uint64{0},
		ToSite: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("shipped %d rows", len(rows))
	}
	if src.Masters(0) {
		t.Fatal("source still masters shipped partition")
	}
	if _, err := dst.ShipIn([]uint64{0}, rows); err != nil {
		t.Fatal(err)
	}
	if !dst.Masters(0) {
		t.Fatal("destination does not master shipped partition")
	}
	for k := uint64(0); k < 3; k++ {
		if data, ok := dst.ReadLocal(ref(k)); !ok || data[0] != byte(k+10) {
			t.Fatalf("key %d at destination: %v %v", k, data, ok)
		}
	}
	// The destination can now execute update transactions on the data.
	tx, err := dst.Begin(nil, []storage.RowRef{ref(0)})
	if err != nil {
		t.Fatal(err)
	}
	tx.Write(ref(0), []byte("updated"))
	mustCommit(t, tx)
}

func TestRecoveryBootstrapAndReplay(t *testing.T) {
	sites, broker := testCluster(t, 2)
	s0 := sites[0]
	for k := uint64(0); k < 5; k++ {
		tx, _ := s0.Begin(nil, []storage.RowRef{ref(k)})
		tx.Write(ref(k), []byte{byte(k)})
		mustCommit(t, tx)
	}
	waitFor(t, func() bool { return sites[1].SVV().DominatesEq(s0.SVV()) })

	// "Crash" site 0 and recover a fresh instance from its redo log.
	recovered, err := New(Config{
		SiteID: 0, Sites: 2, Broker: broker, Partitioner: partitionBy100,
	})
	if err != nil {
		t.Fatal(err)
	}
	recovered.Store().CreateTable("t")
	if err := recovered.RecoverLocal(); err != nil {
		t.Fatal(err)
	}
	if recovered.SVV()[0] != 5 {
		t.Fatalf("recovered svv = %v", recovered.SVV())
	}
	for k := uint64(0); k < 5; k++ {
		if data, ok := recovered.ReadLocal(ref(k)); !ok || data[0] != byte(k) {
			t.Fatalf("recovered key %d: %v %v", k, data, ok)
		}
	}
	// Recovery must resume the commit sequence without reuse.
	recovered.AdoptMastership(RecoverMastership(broker, map[uint64]int{0: 0}))
	tx, err := recovered.Begin(nil, []storage.RowRef{ref(9)})
	if err != nil {
		t.Fatal(err)
	}
	tx.Write(ref(9), []byte("post"))
	tvv := mustCommit(t, tx)
	if tvv[0] != 6 {
		t.Fatalf("post-recovery commit seq = %d, want 6", tvv[0])
	}
}

func TestRecoveryBootstrapFromPeer(t *testing.T) {
	sites, broker := testCluster(t, 2)
	s0, s1 := sites[0], sites[1]
	tx, _ := s0.Begin(nil, []storage.RowRef{ref(1)})
	tx.Write(ref(1), []byte("x"))
	tvv := mustCommit(t, tx)
	waitFor(t, func() bool { return s1.SVV().DominatesEq(tvv) })

	fresh, err := New(Config{SiteID: 0, Sites: 2, Broker: broker, Partitioner: partitionBy100})
	if err != nil {
		t.Fatal(err)
	}
	fresh.BootstrapFrom(s1)
	if !fresh.SVV().DominatesEq(tvv) {
		t.Fatalf("bootstrap svv = %v", fresh.SVV())
	}
	if data, ok := fresh.ReadLocal(ref(1)); !ok || string(data) != "x" {
		t.Fatalf("bootstrap read = %q %v", data, ok)
	}
}

func TestRecoverMastershipFromLogs(t *testing.T) {
	sites, broker := testCluster(t, 3)
	s0, s1, s2 := sites[0], sites[1], sites[2]
	// Move partition 3: s0 -> s1 -> s2; partition 4: s0 -> s1.
	rel, _ := s0.Release([]uint64{3, 4}, 1, 0)
	s1.Grant([]uint64{3, 4}, rel, 0, 0)
	rel2, _ := s1.Release([]uint64{3}, 2, 0)
	s2.Grant([]uint64{3}, rel2, 1, 0)

	initial := map[uint64]int{}
	for p := uint64(0); p < 10; p++ {
		initial[p] = 0
	}
	owner := RecoverMastership(broker, initial)
	if owner[3] != 2 {
		t.Errorf("partition 3 owner = %d, want 2", owner[3])
	}
	if owner[4] != 1 {
		t.Errorf("partition 4 owner = %d, want 1", owner[4])
	}
	if owner[5] != 0 {
		t.Errorf("partition 5 owner = %d, want 0", owner[5])
	}
}

func TestCatchUp(t *testing.T) {
	// A non-replicating site catches up synchronously from the logs.
	b := wal.NewBroker(2)
	defer b.Close()
	s0, err := New(Config{SiteID: 0, Sites: 2, Broker: b, Partitioner: partitionBy100, Replicate: false})
	if err != nil {
		t.Fatal(err)
	}
	s0.Store().CreateTable("t")
	for p := uint64(0); p < 10; p++ {
		s0.SetMaster(p, true)
	}
	lagger, err := New(Config{SiteID: 1, Sites: 2, Broker: b, Partitioner: partitionBy100, Replicate: false})
	if err != nil {
		t.Fatal(err)
	}
	lagger.Store().CreateTable("t")

	var last vclock.Vector
	for k := uint64(0); k < 4; k++ {
		tx, _ := s0.Begin(nil, []storage.RowRef{ref(k)})
		tx.Write(ref(k), []byte{byte(k)})
		last = mustCommit(t, tx)
	}
	lagger.CatchUp(last)
	if !lagger.SVV().DominatesEq(last) {
		t.Fatalf("CatchUp left svv at %v", lagger.SVV())
	}
	if data, ok := lagger.ReadLocal(ref(3)); !ok || data[0] != 3 {
		t.Fatalf("CatchUp data: %v %v", data, ok)
	}
}

func TestVersionChainBoundedUnderLoad(t *testing.T) {
	sites, _ := testCluster(t, 2)
	s0 := sites[0]
	for i := 0; i < 20; i++ {
		tx, _ := s0.Begin(nil, []storage.RowRef{ref(1)})
		tx.Write(ref(1), []byte(fmt.Sprintf("v%d", i)))
		mustCommit(t, tx)
	}
	rec := s0.Store().Table("t").Record(1, false)
	if rec.VersionCount() > storage.DefaultMaxVersions {
		t.Fatalf("version chain %d exceeds cap", rec.VersionCount())
	}
}
