package sitemgr

import (
	"fmt"
	"time"

	"dynamast/internal/obs"
	"dynamast/internal/storage"
	"dynamast/internal/vclock"
	"dynamast/internal/wal"
)

// Txn is a transaction executing locally at one data site under snapshot
// isolation. Update transactions declare their write set at begin (the
// system model assumes write sets are known, via reconnaissance queries if
// necessary); write locks on the full set are held until commit or abort so
// write-write conflicts block rather than abort. Reads observe the
// transaction's begin snapshot plus its own buffered writes.
type Txn struct {
	site  *Site
	snap  vclock.Vector
	refs  []storage.RowRef  // locked write set (sorted, deduplicated)
	recs  []*storage.Record // locked records, parallel to refs
	parts []uint64          // write partitions (writer counts held)

	writes   map[storage.RowRef]storage.Write
	order    []storage.RowRef // write order for deterministic log payloads
	finished bool
	readOnly bool

	// walPublish is the update-log append time measured during Commit;
	// sessions read it to split the commit stage in lifecycle traces.
	walPublish time.Duration

	// sc is the sampled trace context of the distributed transaction this
	// txn executes (zero when unsampled); Commit records its commit and
	// wal_flush spans under it and registers the commit stamp so refresh
	// application at remote sites can attach to the same trace.
	sc obs.SpanContext

	// Operation counts, priced by the site's cost model.
	nReads   int
	nWrites  int
	nScanned int

	// hostErr poisons the transaction when a read touched a partition this
	// site does not host (partial replication): the read returned a miss the
	// snapshot cannot vouch for, so Commit aborts with ErrNotHosted instead
	// of letting the caller act on it. notHosted accumulates the offending
	// partitions so the session can re-route to a site hosting all of them.
	hostErr   error
	notHosted []uint64

	// staleErr poisons the transaction when a read missed a record that
	// holds only versions newer than the begin snapshot — the version the
	// snapshot could see may have been evicted from the bounded chain, so
	// the miss is unsound. Commit fails with ErrSnapshotTooOld and the
	// session retries on a fresher snapshot.
	staleErr error
}

// Begin starts a transaction whose write set is writeSet (nil/empty for a
// read-only transaction). The transaction's begin snapshot is taken after
// the site version vector dominates minVV — the element-wise max of grant
// vectors and the client's session vector, enforcing both the remastering
// begin-version rule (Algorithm 1) and SSSI session freshness.
//
// For update transactions the site verifies it masters every written
// partition and registers as an in-flight writer on each (release waits for
// these writers); then it acquires the write locks in canonical order, and
// only after lock acquisition takes the begin snapshot (the SI proof's Case
// 1 relies on this ordering).
func (s *Site) Begin(minVV vclock.Vector, writeSet []storage.RowRef) (*Txn, error) {
	t := &Txn{site: s, readOnly: len(writeSet) == 0}
	if s.down.Load() {
		return nil, ErrSiteDown
	}
	if len(minVV) > 0 {
		// Under epochs, a session's own-site freshness never waits for the
		// seal: the self dimension is clamped when the requested sequence is
		// already installed locally (the extended snapshot below serves it).
		s.clock.WaitDominatesEq(s.clampFreshnessWait(minVV))
		// Kill interrupts the clock: the wait may have returned without its
		// freshness condition holding. A down site must never hand out a
		// snapshot (it could violate the session's SSSI guarantee).
		if s.down.Load() {
			return nil, ErrSiteDown
		}
	}
	if t.readOnly {
		t.snap = s.clock.Now()
		s.extendSnap(t.snap)
		return t, nil
	}

	parts := s.writePartitions(writeSet)
	if err := s.enterWriters(parts); err != nil {
		return nil, err
	}
	// LockSet sorts in place; work on a copy so callers may reuse (or even
	// share, read-only) their writeSet slice across transactions.
	refs, recs, err := s.store.LockSet(append([]storage.RowRef(nil), writeSet...))
	if err != nil {
		s.exitWriters(parts)
		return nil, err
	}
	t.refs, t.recs, t.parts = refs, recs, parts
	t.writes = make(map[storage.RowRef]storage.Write, len(refs))
	t.snap = s.clock.Now()
	s.extendSnap(t.snap)
	return t, nil
}

// enterWriters atomically checks mastership of all parts and increments
// their writer counts.
func (s *Site) enterWriters(parts []uint64) error {
	s.pmu.Lock()
	defer s.pmu.Unlock()
	if s.down.Load() {
		return ErrSiteDown
	}
	for _, id := range parts {
		p := s.partition(id)
		if !p.owned {
			return ErrNotMaster
		}
		if p.releasing {
			return ErrReleasing
		}
	}
	for _, id := range parts {
		s.parts[id].writers++
	}
	return nil
}

// exitWriters decrements writer counts and wakes pending releases.
func (s *Site) exitWriters(parts []uint64) {
	s.pmu.Lock()
	defer s.pmu.Unlock()
	for _, id := range parts {
		if p := s.parts[id]; p != nil {
			p.writers--
		}
	}
	s.pcond.Broadcast()
}

// Snapshot returns the transaction's begin version vector.
func (t *Txn) Snapshot() vclock.Vector { return t.snap.Clone() }

// ReadOnly reports whether the transaction declared an empty write set.
func (t *Txn) ReadOnly() bool { return t.readOnly }

// Read returns the row's value at the transaction's snapshot, observing the
// transaction's own uncommitted writes first. Under partial replication the
// hosting check and the store read share one hosting read-lock, so a
// concurrent replica drop (flag flip + purge under the write lock) can never
// make a hosted read observe a half-purged partition: either the read sees
// the pre-drop rows, or the check fails and the transaction poisons.
func (t *Txn) Read(ref storage.RowRef) ([]byte, bool) {
	t.nReads++
	if t.writes != nil {
		if w, ok := t.writes[ref]; ok {
			if w.Deleted {
				return nil, false
			}
			return w.Data, true
		}
	}
	s := t.site
	if h := s.hosting; h != nil {
		part := s.cfg.Partitioner(ref)
		h.mu.RLock()
		if !h.hostsLocked(part) {
			h.mu.RUnlock()
			t.poisonNotHosted(part)
			return nil, false
		}
		data, ok, evicted := s.store.GetChecked(ref, t.snap)
		h.mu.RUnlock()
		if evicted {
			t.poisonStale(ref)
		}
		return data, ok
	}
	data, ok, evicted := s.store.GetChecked(ref, t.snap)
	if evicted {
		t.poisonStale(ref)
	}
	return data, ok
}

// poisonStale marks the transaction failed with ErrSnapshotTooOld: a read of
// ref missed, but only because every retained version of the record is newer
// than the begin snapshot — the visible one may have been evicted.
func (t *Txn) poisonStale(ref storage.RowRef) {
	if t.staleErr == nil {
		t.staleErr = fmt.Errorf("%v: %w", ref, ErrSnapshotTooOld)
	}
}

// SnapshotTooOld reports whether a read poisoned the transaction with
// ErrSnapshotTooOld; sessions abort and retry on a fresher snapshot.
func (t *Txn) SnapshotTooOld() bool { return t.staleErr != nil }

// poisonNotHosted marks the transaction failed with ErrNotHosted for part.
func (t *Txn) poisonNotHosted(part uint64) {
	if t.hostErr == nil {
		t.hostErr = fmt.Errorf("partition %d: %w", part, ErrNotHosted)
	}
	for _, p := range t.notHosted {
		if p == part {
			return
		}
	}
	t.notHosted = append(t.notHosted, part)
}

// NotHostedParts returns the partitions whose reads poisoned the transaction
// (empty unless Commit returned ErrNotHosted). Sessions feed them into the
// read router to pick a site hosting the full set.
func (t *Txn) NotHostedParts() []uint64 { return t.notHosted }

// scanRangeHosted verifies this site hosts every partition a scan of
// [lo, hi) can touch, by probing the partitioner across the key range
// (purged rows are invisible to the scan itself, so the range must be
// checked, not the results). Ranges too large to probe poison outright —
// scan-heavy workloads should keep ranges partition-aligned or use full
// replication. Caller holds the hosting read lock.
func (t *Txn) scanRangeHosted(table string, lo, hi uint64) bool {
	const probeCap = 1 << 16
	s := t.site
	if hi < lo {
		return true
	}
	if hi-lo > probeCap {
		t.poisonNotHosted(s.cfg.Partitioner(storage.RowRef{Table: table, Key: lo}))
		return false
	}
	ok := true
	last, has := uint64(0), false
	for k := lo; k < hi; k++ {
		p := s.cfg.Partitioner(storage.RowRef{Table: table, Key: k})
		if has && p == last {
			continue
		}
		last, has = p, true
		if !t.site.hosting.hostsLocked(p) {
			t.poisonNotHosted(p)
			ok = false
		}
	}
	return ok
}

// Scan returns the visible rows of table with lo <= key < hi at the
// transaction's snapshot. Buffered writes are not merged into scans (no
// workload in the evaluation scans its own write set).
func (t *Txn) Scan(table string, lo, hi uint64) []storage.KV {
	tb := t.site.store.Table(table)
	if tb == nil {
		return nil
	}
	if h := t.site.hosting; h != nil {
		h.mu.RLock()
		defer h.mu.RUnlock()
		if !t.scanRangeHosted(table, lo, hi) {
			return nil
		}
	}
	rows, evicted := tb.ScanChecked(lo, hi, t.snap)
	if evicted {
		t.poisonStale(storage.RowRef{Table: table, Key: lo})
	}
	t.nScanned += len(rows)
	return rows
}

// ScanEach streams visible rows of table in [lo, hi) to fn without
// materializing them; fn returning false stops early.
func (t *Txn) ScanEach(table string, lo, hi uint64, fn func(key uint64, data []byte) bool) {
	tb := t.site.store.Table(table)
	if tb == nil {
		return
	}
	if h := t.site.hosting; h != nil {
		h.mu.RLock()
		defer h.mu.RUnlock()
		if !t.scanRangeHosted(table, lo, hi) {
			return
		}
	}
	if tb.ScanKeys(lo, hi, t.snap, func(key uint64, data []byte) bool {
		t.nScanned++
		return fn(key, data)
	}) {
		t.poisonStale(storage.RowRef{Table: table, Key: lo})
	}
}

// Write buffers an update to ref, which must be in the declared write set.
func (t *Txn) Write(ref storage.RowRef, data []byte) error {
	return t.bufferWrite(storage.Write{Ref: ref, Data: data})
}

// Delete buffers a tombstone for ref.
func (t *Txn) Delete(ref storage.RowRef) error {
	return t.bufferWrite(storage.Write{Ref: ref, Deleted: true})
}

func (t *Txn) bufferWrite(w storage.Write) error {
	if t.readOnly {
		return fmt.Errorf("sitemgr: write in read-only transaction")
	}
	if t.finished {
		return fmt.Errorf("sitemgr: write after commit/abort")
	}
	if !t.inWriteSet(w.Ref) {
		return fmt.Errorf("sitemgr: %v not in declared write set", w.Ref)
	}
	if _, dup := t.writes[w.Ref]; !dup {
		t.order = append(t.order, w.Ref)
	}
	t.writes[w.Ref] = w
	t.nWrites++
	return nil
}

// Cost prices the transaction's operations under the site's cost model;
// systems charge it on the site's execution pool around the stored
// procedure.
func (t *Txn) Cost() time.Duration {
	cm := t.site.cfg.Costs
	if cm.Zero() {
		return 0
	}
	return cm.TxnBase +
		time.Duration(t.nReads)*cm.PerRead +
		time.Duration(t.nWrites)*cm.PerWrite +
		time.Duration(t.nScanned)*cm.PerScanKey
}

func (t *Txn) inWriteSet(ref storage.RowRef) bool {
	for _, r := range t.refs {
		if r == ref {
			return true
		}
	}
	return false
}

// Commit makes the transaction's writes durable and visible and returns its
// commit timestamp (transaction version vector). The sequence follows
// §V-A2: the site atomically (under a short commit critical section)
// allocates the next local commit sequence number, stamps and installs the
// versions while still holding write locks, appends the write set and tvv
// to the site's log (redo + propagation), and publishes visibility by
// advancing the site version vector. The critical section guarantees the
// site's log carries its commits in commit order — the per-origin FIFO that
// the update application rule's svv[i] == tvv[i]-1 clause relies on.
func (t *Txn) Commit() (vclock.Vector, error) {
	if t.finished {
		return nil, fmt.Errorf("sitemgr: commit after finish")
	}
	t.finished = true
	s := t.site
	if err := t.hostErr; err != nil || t.staleErr != nil {
		// A read touched a non-hosted partition, or missed a record whose
		// visible version may have been evicted from the bounded chain: the
		// results handed to the caller's logic were unsound (silent misses),
		// so nothing may commit. Both are retryable — the session re-routes
		// within the replica set, or re-begins on a fresher snapshot.
		if err == nil {
			err = t.staleErr
		}
		if !t.readOnly {
			storage.UnlockAll(t.recs)
			s.exitWriters(t.parts)
			s.aborts.Add(1)
			s.ob.aborts.Inc()
		}
		return nil, err
	}
	if t.readOnly {
		return t.snap, nil
	}
	if s.down.Load() {
		// The site crashed between begin and commit: release everything and
		// fail with the retryable error. Nothing was installed or logged, so
		// the transaction is invisible — safe to re-execute elsewhere.
		storage.UnlockAll(t.recs)
		s.exitWriters(t.parts)
		s.aborts.Add(1)
		s.ob.aborts.Inc()
		return nil, ErrSiteDown
	}

	writes := make([]storage.Write, 0, len(t.order))
	for _, ref := range t.order {
		writes = append(writes, t.writes[ref])
	}

	start := time.Now()
	if s.epochOn() {
		return t.commitEpoch(writes, start)
	}
	s.commitMu.Lock()
	seq := s.nextSeq.Add(1)
	tvv := t.snap.Clone()
	tvv[s.id] = seq
	var commitID uint64
	if t.sc.Sampled() {
		// Register the commit stamp BEFORE the log append publishes the
		// entry: a replica can apply the refresh the moment the entry is
		// readable — ahead of this goroutine resuming — and a lookup against
		// an unregistered stamp silently drops the refresh_apply span.
		commitID = obs.NewSpanID()
		s.spans.RegisterStamp(s.id, seq, obs.SpanContext{Trace: t.sc.Trace, Span: commitID})
	}
	s.store.Apply(storage.Stamp{Origin: s.id, Seq: seq}, writes)
	walStart := time.Now()
	_, err := s.log.Append(wal.Entry{
		Kind:   wal.KindUpdate,
		Origin: s.id,
		TVV:    tvv,
		Writes: writes,
	})
	t.walPublish = time.Since(walStart)
	if err == nil {
		s.clock.Advance(s.id, seq)
	}
	s.commitMu.Unlock()

	storage.UnlockAll(t.recs)
	if err == nil {
		s.bumpWatermarks(writes, tvv)
	}
	s.exitWriters(t.parts)
	if err != nil {
		// The log only rejects appends after shutdown; the commit is
		// abandoned (its versions are unreachable: visibility was never
		// published).
		return nil, err
	}
	s.commits.Add(1)
	s.ob.commits.Inc()
	commitDur := time.Since(start)
	s.ob.commitDur.ObserveDuration(commitDur)
	if t.sc.Sampled() {
		// Record the commit critical section and its WAL append as spans
		// under the commit span id the stamp was registered with above: when
		// remote sites apply this commit as a refresh transaction they look
		// the stamp up and attach their refresh_apply spans under the commit
		// span, closing the trace's cross-site causal edge.
		s.spans.Record(obs.Span{
			Trace: t.sc.Trace, ID: commitID, Parent: t.sc.Span,
			Name: "commit", Site: s.id, Start: start, Dur: commitDur,
		})
		s.spans.Record(obs.Span{
			Trace: t.sc.Trace, Parent: commitID,
			Name: "wal_flush", Site: s.id, Start: walStart, Dur: t.walPublish,
		})
	}
	return tvv, nil
}

// commitEpoch is Commit under epoch-based group commit (epoch.go): the
// critical section installs the versions and buffers the member — no WAL
// append and no svv advance per transaction; the sealer pays both once per
// epoch. File-backed sites wait for the covering seal before acking
// (durability, measured as the WAL-publish stage); in-memory sites ack
// immediately and the seal publishes replica visibility within one interval.
func (t *Txn) commitEpoch(writes []storage.Write, start time.Time) (vclock.Vector, error) {
	s := t.site
	s.commitMu.Lock()
	if s.down.Load() {
		// Kill's seal barrier passed (or is about to): nothing may enter the
		// buffer once the site is down, or an acked commit could be
		// stranded unsealed in a dead site.
		s.commitMu.Unlock()
		storage.UnlockAll(t.recs)
		s.exitWriters(t.parts)
		s.aborts.Add(1)
		s.ob.aborts.Inc()
		return nil, ErrSiteDown
	}
	s.ep.mu.Lock()
	err := s.ep.sealErr
	s.ep.mu.Unlock()
	if err != nil {
		// A seal append failed (log closed/poisoned): the commit path is
		// dead, abandon before installing anything.
		s.commitMu.Unlock()
		storage.UnlockAll(t.recs)
		s.exitWriters(t.parts)
		return nil, err
	}
	seq := s.nextSeq.Add(1)
	tvv := t.snap.Clone()
	tvv[s.id] = seq
	var commitID uint64
	if t.sc.Sampled() {
		// Register the commit stamp BEFORE the member enters the epoch
		// buffer: a concurrent seal can ship it immediately, and a replica
		// applying the epoch against an unregistered stamp would silently
		// drop the refresh_apply span.
		commitID = obs.NewSpanID()
		s.spans.RegisterStamp(s.id, seq, obs.SpanContext{Trace: t.sc.Trace, Span: commitID})
	}
	s.store.Apply(storage.Stamp{Origin: s.id, Seq: seq}, writes)
	s.bufferEpochTxn(seq, tvv, start, writes)
	s.commitMu.Unlock()

	storage.UnlockAll(t.recs)
	s.bumpWatermarks(writes, tvv)
	s.exitWriters(t.parts)

	// Group commit: the ack waits for the seal that publishes this commit —
	// the log append (and, file-backed, its durable flush) covers the whole
	// epoch at once. Acking earlier would let a fresh session observe a
	// cluster that never shows an already-acknowledged write; waiting keeps
	// the pre-epoch guarantee that an acked commit is in the log. The wait
	// is bounded by the seal interval and amortized across every member.
	walStart := time.Now()
	if err := s.waitSealed(seq); err != nil {
		// Seals only fail after shutdown poisons the log; the commit is
		// abandoned (visibility was never published to replicas).
		t.walPublish = time.Since(walStart)
		return nil, err
	}
	t.walPublish = time.Since(walStart)
	s.commits.Add(1)
	s.ob.commits.Inc()
	commitDur := time.Since(start)
	s.ob.commitDur.ObserveDuration(commitDur)
	if t.sc.Sampled() {
		s.spans.Record(obs.Span{
			Trace: t.sc.Trace, ID: commitID, Parent: t.sc.Span,
			Name: "commit", Site: s.id, Start: start, Dur: commitDur,
		})
		s.spans.Record(obs.Span{
			Trace: t.sc.Trace, Parent: commitID,
			Name: "wal_flush", Site: s.id, Start: start, Dur: t.walPublish,
		})
	}
	return tvv, nil
}

// WALPublish returns the update-log append time of a committed
// transaction (zero before Commit and for read-only transactions).
func (t *Txn) WALPublish() time.Duration { return t.walPublish }

// SetSpan attaches a sampled trace context (the distributed transaction's
// root span) under which Commit records its commit and wal_flush spans.
func (t *Txn) SetSpan(sc obs.SpanContext) { t.sc = sc }

// Abort releases the transaction's locks without installing writes.
func (t *Txn) Abort() {
	if t.finished {
		return
	}
	t.finished = true
	if t.readOnly {
		return
	}
	storage.UnlockAll(t.recs)
	t.site.exitWriters(t.parts)
	t.site.aborts.Add(1)
	t.site.ob.aborts.Inc()
}

// ReadLocal serves a single-row read at the site's current snapshot; used
// by partitioned systems for remote reads.
func (s *Site) ReadLocal(ref storage.RowRef) ([]byte, bool) {
	snap := s.clock.Now()
	s.extendSnap(snap)
	return s.store.Get(ref, snap)
}

// ScanLocal serves a range scan at the site's current snapshot.
func (s *Site) ScanLocal(table string, lo, hi uint64) []storage.KV {
	tb := s.store.Table(table)
	if tb == nil {
		return nil
	}
	snap := s.clock.Now()
	s.extendSnap(snap)
	return tb.Scan(lo, hi, snap)
}
