package sitemgr

import (
	"dynamast/internal/vclock"
	"dynamast/internal/wal"
)

// Release relinquishes this site's mastership of the given partitions and
// returns the release-point vector: the element-wise max of the released
// partitions' write watermarks — everything a grantee must have applied to
// serve the items' freshest committed state. (Returning the watermark
// rather than the full site vector means the grant waits only for updates
// causally relevant to the moved items.)
//
// Per §III-B, the site waits for any ongoing transactions writing the
// partitions to finish before releasing. While the wait is in progress the
// partitions are marked releasing so that no new local update transaction
// can slip in (the stand-alone site selector already prevents this by
// holding the partition locks in exclusive mode, but the site-level guard
// keeps the protocol safe under the distributed-selector design too).
// The release is recorded in the site's redo log so that mastership state
// can be reconstructed on recovery (§V-C).
func (s *Site) Release(parts []uint64, to int) (vclock.Vector, error) {
	s.pmu.Lock()
	for _, id := range parts {
		p := s.partition(id)
		p.releasing = true
	}
	for !s.writersIdle(parts) {
		s.pcond.Wait()
	}
	var relVV vclock.Vector
	for _, id := range parts {
		p := s.parts[id]
		p.owned = false
		p.releasing = false
		relVV = relVV.MaxInto(p.wm)
	}
	s.pmu.Unlock()

	if _, err := s.log.Append(wal.Entry{
		Kind:       wal.KindRelease,
		Origin:     s.id,
		Partitions: parts,
		Peer:       to,
	}); err != nil {
		return nil, err
	}
	return relVV, nil
}

// writersIdle reports whether no in-flight writer holds any of parts.
// Caller holds pmu.
func (s *Site) writersIdle(parts []uint64) bool {
	for _, id := range parts {
		if p := s.parts[id]; p != nil && p.writers > 0 {
			return false
		}
	}
	return true
}

// Grant makes this site the master of the given partitions once it has
// applied the releasing site's updates up to the release point relVV, and
// returns the site's version vector at the time it took ownership — the
// minimum version the remastered transaction must execute at (Algorithm 1).
func (s *Site) Grant(parts []uint64, relVV vclock.Vector, from int) (vclock.Vector, error) {
	// Wait until updates from the releasing site (and everything they
	// depend on) have been applied locally. Waiting for full dominance of
	// relVV is slightly stronger than the per-item requirement and is
	// what guarantees the granted site can serve the freshest committed
	// state of every remastered item.
	s.clock.WaitDominatesEq(relVV)

	s.pmu.Lock()
	for _, id := range parts {
		p := s.partition(id)
		p.owned = true
		p.releasing = false
		// The grantee's watermark reflects at least the release point.
		p.wm = p.wm.MaxInto(relVV)
	}
	s.pcond.Broadcast()
	s.pmu.Unlock()

	if _, err := s.log.Append(wal.Entry{
		Kind:       wal.KindGrant,
		Origin:     s.id,
		Partitions: parts,
		Peer:       from,
	}); err != nil {
		return nil, err
	}
	s.remasterIn.Add(1)
	return s.clock.Now(), nil
}

// RemastersReceived returns how many grant operations this site served.
func (s *Site) RemastersReceived() uint64 { return s.remasterIn.Load() }
