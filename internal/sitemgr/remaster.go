package sitemgr

import (
	"fmt"

	"dynamast/internal/vclock"
	"dynamast/internal/wal"
)

// Epoch fencing. The selector stamps every remaster chain with a fresh
// monotonic epoch; Release and Grant memoize their results per epoch and
// fence per-partition state with the highest epoch that touched it, so:
//
//   - a retried release/grant (lost RPC response, selector retry after a
//     timeout) re-executes as a lookup, never a second state change;
//   - a stale chain (the selector moved the partition again under a higher
//     epoch while this chain's RPC was in flight) is rejected with
//     ErrStaleEpoch instead of clobbering newer ownership.
//
// Epoch 0 is the unfenced legacy mode used by direct Site-to-Site transfers
// in tests and by initial-placement grants, which have no coordinator
// allocating epochs; it performs no memoization and no fencing.

// memoLimit bounds the per-site epoch memo maps; epochs are allocated
// monotonically, so entries far below the newest are dead (their chains
// finished long ago) and are pruned in batches.
const memoLimit = 512

// memoize records an epoch's result in m, pruning stale epochs when the
// map grows past memoLimit. Caller holds s.remu.
func memoize(m map[uint64]vclock.Vector, epoch uint64, vv vclock.Vector) {
	m[epoch] = vv
	if len(m) > memoLimit {
		for e := range m {
			if e+memoLimit/2 < epoch {
				delete(m, e)
			}
		}
	}
}

// Release relinquishes this site's mastership of the given partitions and
// returns the release-point vector: the element-wise max of the released
// partitions' write watermarks — everything a grantee must have applied to
// serve the items' freshest committed state. (Returning the watermark
// rather than the full site vector means the grant waits only for updates
// causally relevant to the moved items.)
//
// Per §III-B, the site waits for any ongoing transactions writing the
// partitions to finish before releasing. While the wait is in progress the
// partitions are marked releasing so that no new local update transaction
// can slip in (the stand-alone site selector already prevents this by
// holding the partition locks in exclusive mode, but the site-level guard
// keeps the protocol safe under the distributed-selector design too).
//
// The release is recorded in the site's redo log BEFORE ownership is
// surrendered, so a crash (or append failure) between the two cannot
// strand the partition: either the log carries the release and recovery
// sees the transfer, or ownership was never given up. On append failure
// the partitions simply stay owned and writable.
func (s *Site) Release(parts []uint64, to int, epoch uint64) (vclock.Vector, error) {
	if epoch != 0 {
		s.remu.Lock()
		if vv, ok := s.relMemo[epoch]; ok {
			s.remu.Unlock()
			return vv, nil
		}
		s.remu.Unlock()
	}
	if s.down.Load() {
		return nil, ErrSiteDown
	}
	if epoch != 0 {
		// Advisory early rejection; the authoritative floor check runs
		// under fenceMu below, after the writer drain.
		if floor, fenced := s.fencedEpoch(parts, epoch); fenced {
			return nil, fmt.Errorf("%w: release epoch %d below site %d fence %d", ErrStaleEpoch, epoch, s.id, floor)
		}
	}

	s.pmu.Lock()
	if epoch != 0 {
		for _, id := range parts {
			if p := s.partition(id); p.lastEpoch > epoch {
				last := p.lastEpoch
				s.pmu.Unlock()
				return nil, fmt.Errorf("%w: release epoch %d behind partition %d fence %d", ErrStaleEpoch, epoch, id, last)
			}
		}
	}
	for _, id := range parts {
		s.partition(id).releasing = true
	}
	for !s.writersIdle(parts) {
		if s.down.Load() {
			for _, id := range parts {
				s.parts[id].releasing = false
			}
			s.pcond.Broadcast()
			s.pmu.Unlock()
			return nil, ErrSiteDown
		}
		s.pcond.Wait()
	}
	var relVV vclock.Vector
	for _, id := range parts {
		relVV = relVV.MaxInto(s.parts[id].wm)
	}
	s.pmu.Unlock()

	// The {floor check, append, flip} section runs under the fence read
	// lock: either it completes entirely before a FenceEpochsBelow returns
	// (the promotion's WAL fold then sees the release), or it observes the
	// new floor and rejects before touching the log.
	s.fenceMu.RLock()
	if epoch != 0 {
		if floor, fenced := s.fencedEpoch(parts, epoch); fenced {
			s.fenceMu.RUnlock()
			s.pmu.Lock()
			for _, id := range parts {
				s.parts[id].releasing = false
			}
			s.pcond.Broadcast()
			s.pmu.Unlock()
			return nil, fmt.Errorf("%w: release epoch %d below site %d fence %d", ErrStaleEpoch, epoch, s.id, floor)
		}
	}

	// Fence the epoch pipeline: every commit that wrote the released
	// partitions is in the epoch buffer (writers drained above), so sealing
	// now puts their epoch record ahead of the release record in the log —
	// an epoch never spans a release for a partition it contains. A seal
	// failure means the log is dead; the release append below will fail the
	// same way and take the cleanup path.
	if s.epochOn() {
		_ = s.SealEpoch()
	}

	// Durably record the release while the partitions are still guarded by
	// `releasing` (no writer can slip in), then flip ownership.
	_, err := s.log.Append(wal.Entry{
		Kind:       wal.KindRelease,
		Origin:     s.id,
		Partitions: parts,
		Peer:       to,
		Epoch:      epoch,
	})

	s.pmu.Lock()
	for _, id := range parts {
		p := s.parts[id]
		p.releasing = false
		if err == nil && (epoch == 0 || p.lastEpoch <= epoch) {
			p.owned = false
			if epoch > p.lastEpoch {
				p.lastEpoch = epoch
			}
		}
	}
	s.pcond.Broadcast()
	s.pmu.Unlock()
	s.fenceMu.RUnlock()

	if err != nil {
		return nil, err
	}
	if epoch != 0 {
		s.remu.Lock()
		memoize(s.relMemo, epoch, relVV)
		s.remu.Unlock()
	}
	return relVV, nil
}

// writersIdle reports whether no in-flight writer holds any of parts.
// Caller holds pmu.
func (s *Site) writersIdle(parts []uint64) bool {
	for _, id := range parts {
		if p := s.parts[id]; p != nil && p.writers > 0 {
			return false
		}
	}
	return true
}

// Grant makes this site the master of the given partitions once it has
// applied the releasing site's updates up to the release point relVV, and
// returns the site's version vector at the time it took ownership — the
// minimum version the remastered transaction must execute at (Algorithm 1).
//
// The grant is logged before ownership becomes visible, mirroring Release:
// recovery never reconstructs less mastership than live transactions could
// have observed.
func (s *Site) Grant(parts []uint64, relVV vclock.Vector, from int, epoch uint64) (vclock.Vector, error) {
	if epoch != 0 {
		s.remu.Lock()
		if vv, ok := s.grantMemo[epoch]; ok {
			s.remu.Unlock()
			return vv, nil
		}
		s.remu.Unlock()
	}
	if s.down.Load() {
		return nil, ErrSiteDown
	}

	// Wait until updates from the releasing site (and everything they
	// depend on) have been applied locally. Waiting for full dominance of
	// relVV is slightly stronger than the per-item requirement and is
	// what guarantees the granted site can serve the freshest committed
	// state of every remastered item.
	s.clock.WaitDominatesEq(relVV)
	if s.down.Load() {
		// Kill interrupts the clock, so the wait above may have returned
		// without its condition holding; never take ownership while down.
		return nil, ErrSiteDown
	}

	s.pmu.Lock()
	if epoch != 0 {
		for _, id := range parts {
			if p := s.partition(id); p.lastEpoch > epoch {
				last := p.lastEpoch
				s.pmu.Unlock()
				return nil, fmt.Errorf("%w: grant epoch %d behind partition %d fence %d", ErrStaleEpoch, epoch, id, last)
			}
		}
	}
	s.pmu.Unlock()

	// As in Release, the {floor check, append, flip} section holds the
	// fence read lock: a grant either lands in the log before a
	// FenceEpochsBelow returns, or dies on the floor without logging.
	s.fenceMu.RLock()
	if epoch != 0 {
		if floor, fenced := s.fencedEpoch(parts, epoch); fenced {
			s.fenceMu.RUnlock()
			return nil, fmt.Errorf("%w: grant epoch %d below site %d fence %d", ErrStaleEpoch, epoch, s.id, floor)
		}
	}

	// Mirror Release's fencing: commits buffered before the grant seal into
	// their own epoch record ahead of the grant entry, so epochs never
	// straddle a mastership change in the log.
	if s.epochOn() {
		_ = s.SealEpoch()
	}

	if _, err := s.log.Append(wal.Entry{
		Kind:       wal.KindGrant,
		Origin:     s.id,
		Partitions: parts,
		Peer:       from,
		Epoch:      epoch,
	}); err != nil {
		s.fenceMu.RUnlock()
		return nil, err
	}

	s.pmu.Lock()
	for _, id := range parts {
		p := s.partition(id)
		if epoch != 0 && p.lastEpoch > epoch {
			continue // fenced while the append ran; a newer chain owns this
		}
		p.owned = true
		p.releasing = false
		// The grantee's watermark reflects at least the release point.
		p.wm = p.wm.MaxInto(relVV)
		if epoch > p.lastEpoch {
			p.lastEpoch = epoch
		}
	}
	s.pcond.Broadcast()
	s.pmu.Unlock()
	s.fenceMu.RUnlock()

	s.remasterIn.Add(1)
	now := s.clock.Now()
	if epoch != 0 {
		s.remu.Lock()
		memoize(s.grantMemo, epoch, now)
		s.remu.Unlock()
	}
	return now, nil
}

// RemastersReceived returns how many grant operations this site served.
func (s *Site) RemastersReceived() uint64 { return s.remasterIn.Load() }

// FenceEpochsBelow installs a site-wide remaster-epoch fence: every
// subsequent Release or Grant carrying a nonzero epoch below floor is
// rejected with ErrStaleEpoch. A promoted selector fences every site with a
// freshly allocated epoch BEFORE folding the sites' logs, so a deposed
// coordinator's in-flight chains can no longer change ownership once the
// fold runs; taking the fence write lock additionally waits out any
// release/grant already past its floor check, whose log append is therefore
// visible to the fold. The floor only ever rises; the floor in effect is
// returned. Epoch-0 (unfenced, coordinator-less) operations are unaffected.
//
// The fence is deliberately served even while the site is down: a dead site
// refuses all operations anyway, and keeping the call infallible lets a
// promotion treat "fenced" and "crashed" sites uniformly.
func (s *Site) FenceEpochsBelow(floor uint64) uint64 {
	s.fenceMu.Lock()
	defer s.fenceMu.Unlock()
	for {
		cur := s.epochFloor.Load()
		if cur >= floor {
			return cur
		}
		if s.epochFloor.CompareAndSwap(cur, floor) {
			return floor
		}
	}
}

// EpochFloor returns the site-wide remaster-epoch fence currently in effect
// (0 = never fenced).
func (s *Site) EpochFloor() uint64 { return s.epochFloor.Load() }
