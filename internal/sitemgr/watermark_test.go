package sitemgr

import (
	"testing"
	"time"

	"dynamast/internal/storage"
	"dynamast/internal/wal"
)

// The release point is the released partitions' write watermark, not the
// whole site vector: a grant must not wait for updates unrelated to the
// moved items.
func TestReleaseReturnsPartitionWatermark(t *testing.T) {
	sites, _ := testCluster(t, 2)
	s0 := sites[0]

	// Commit to partition 0 twice and partition 5 once.
	for i := 0; i < 2; i++ {
		tx, _ := s0.Begin(nil, []storage.RowRef{ref(1)})
		tx.Write(ref(1), []byte("a"))
		mustCommit(t, tx)
	}
	tx, _ := s0.Begin(nil, []storage.RowRef{ref(501)})
	tx.Write(ref(501), []byte("b"))
	mustCommit(t, tx)

	// Releasing partition 0 returns a vector covering its two commits —
	// seq 1 and 2 — even though the site's own dimension is at 3.
	relVV, err := s0.Release([]uint64{0}, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if relVV[0] != 2 {
		t.Fatalf("release watermark %v, want dim0 = 2", relVV)
	}
	if s0.SVV()[0] != 3 {
		t.Fatalf("site vector %v, want dim0 = 3", s0.SVV())
	}
}

func TestGrantWaitsOnlyForRelevantUpdates(t *testing.T) {
	// Site 1 has applied partition 0's updates but lags on partition 5's;
	// a grant of partition 0 must complete without waiting for the rest.
	// Site 1 runs without replication appliers so its lag is controlled.
	b := wal.NewBroker(2)
	defer b.Close()
	s0, err := New(Config{SiteID: 0, Sites: 2, Broker: b, Partitioner: partitionBy100})
	if err != nil {
		t.Fatal(err)
	}
	s1, err := New(Config{SiteID: 1, Sites: 2, Broker: b, Partitioner: partitionBy100})
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range []*Site{s0, s1} {
		s.Store().CreateTable("t")
	}
	for p := uint64(0); p < 10; p++ {
		s0.SetMaster(p, true)
	}

	tx, _ := s0.Begin(nil, []storage.RowRef{ref(1)})
	tx.Write(ref(1), []byte("a"))
	tvv := mustCommit(t, tx)
	s1.CatchUp(tvv) // site 1 applies partition 0's update synchronously

	// A later unrelated commit that site 1 never applies.
	tx2, _ := s0.Begin(nil, []storage.RowRef{ref(501)})
	tx2.Write(ref(501), []byte("b"))
	mustCommit(t, tx2)

	relVV, err := s0.Release([]uint64{0}, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() {
		if _, err := s1.Grant([]uint64{0}, relVV, 0, 0); err != nil {
			panic(err)
		}
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("grant waited for an unrelated update")
	}
}

func TestWatermarkFollowsRemasterChain(t *testing.T) {
	// p moves 0 -> 1 -> 0; the final release point must cover commits made
	// at both sites, so a third grantee sees the freshest value.
	sites, _ := testCluster(t, 3)
	s0, s1, s2 := sites[0], sites[1], sites[2]

	tx, _ := s0.Begin(nil, []storage.RowRef{ref(1)})
	tx.Write(ref(1), []byte("v0"))
	mustCommit(t, tx)

	rel, _ := s0.Release([]uint64{0}, 1, 0)
	if _, err := s1.Grant([]uint64{0}, rel, 0, 0); err != nil {
		t.Fatal(err)
	}
	tx, err := s1.Begin(nil, []storage.RowRef{ref(1)})
	if err != nil {
		t.Fatal(err)
	}
	tx.Write(ref(1), []byte("v1"))
	mustCommit(t, tx)

	rel2, _ := s1.Release([]uint64{0}, 2, 0)
	if rel2[0] < 1 || rel2[1] < 1 {
		t.Fatalf("chained watermark %v must cover both sites' commits", rel2)
	}
	if _, err := s2.Grant([]uint64{0}, rel2, 1, 0); err != nil {
		t.Fatal(err)
	}
	if data, ok := s2.ReadLocal(ref(1)); !ok || string(data) != "v1" {
		t.Fatalf("third master read %q %v, want v1", data, ok)
	}
}
