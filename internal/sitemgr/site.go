// Package sitemgr implements DynaMast's data sites: the integrated site
// manager, database system and replication manager of §V-A.
//
// A Site executes transactions against its local MVCC store, tracks its
// position in the global commit order with a site version vector, publishes
// committed write sets to its update log, and applies other sites' updates
// as refresh transactions under the paper's update application rule
// (Equation 1). It also serves the mastership-transfer RPCs (release and
// grant), acts as a two-phase-commit participant for the partitioned
// baselines, and ships data for the LEAP baseline — so every evaluated
// system runs on the same storage, concurrency control and isolation level,
// matching the paper's apples-to-apples methodology.
package sitemgr

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"dynamast/internal/obs"
	"dynamast/internal/storage"
	"dynamast/internal/transport"
	"dynamast/internal/vclock"
	"dynamast/internal/wal"
)

// Partitioner maps a row to the partition (data-item group) it belongs to.
// The site selector tracks mastership per partition (§V-B), so every system
// component shares one Partitioner.
type Partitioner func(storage.RowRef) uint64

// Config describes one data site.
type Config struct {
	// SiteID is this site's index in [0, Sites).
	SiteID int
	// Sites is the number of data sites in the system.
	Sites int
	// Net simulates the cluster network; nil means free local calls.
	Net *transport.Network
	// Broker holds the per-site update logs; required.
	Broker *wal.Broker
	// MaxVersions caps each record's version chain (0 = default of 4).
	MaxVersions int
	// Partitioner maps rows to partitions; required.
	Partitioner Partitioner
	// Replicate starts refresh appliers that subscribe to the other
	// sites' logs (lazily maintained replicas). Partitioned systems
	// without replication leave it false.
	Replicate bool
	// PropagationDelay is the minimum age of a log entry before a replica
	// applies it, modelling the asynchronous propagation pipeline. If
	// zero, the network's one-way latency is used.
	PropagationDelay time.Duration
	// ExecSlots is the site's execution parallelism (0 = default 4).
	ExecSlots int
	// ApplySlots is the replication manager's parallelism (0 = default 2).
	ApplySlots int
	// EpochInterval, when positive, batches commits into epochs sealed at
	// this interval: one WAL append, one svv advance, and one coalesced
	// replication record per epoch (see epoch.go). Zero disables epochs
	// and keeps per-transaction commit records.
	EpochInterval time.Duration
	// PartialReplication enables per-partition hosting: the site applies
	// refresh writes only for partitions in its replica set (seeded by
	// DefaultHosted, adjusted by HostPartition/UnhostPartition) and poisons
	// reads of non-hosted partitions with ErrNotHosted. The site clock stays
	// dense — appliers advance past filtered entries — see hosting.go.
	PartialReplication bool
	// DefaultHosted is the seed membership function under partial
	// replication: whether this site hosts part before any explicit
	// add/drop decision. Required when PartialReplication is set.
	DefaultHosted func(part uint64) bool
	// DefaultOwner, when set, gives the owner of partitions this site has
	// no explicit state for (static-placement systems use their placement
	// function so writes to never-loaded partitions find their owner).
	// Dynamically mastered sites leave it nil: ownership then only comes
	// from SetMaster and Grant.
	DefaultOwner func(part uint64) int
	// TrackPartitionRows maintains a per-partition index of row
	// references, so data shipping (LEAP) can move a partition's entire
	// contents. Systems that never ship leave it off.
	TrackPartitionRows bool
	// Costs prices transactional work; the zero value charges nothing.
	Costs CostModel
	// Obs receives the site's metrics (commit/abort/refresh counters and
	// latency histograms, freshness gauges); nil disables instrumentation.
	Obs *obs.Registry
	// Tracer receives refresh-apply completions for the transaction
	// lifecycle traces; nil disables them.
	Tracer *obs.Tracer
	// Spans receives the commit/WAL-flush/refresh-apply spans of sampled
	// distributed traces; nil disables span recording.
	Spans *obs.SpanRecorder
}

// ErrNotMaster is returned when a transaction's write set includes a
// partition this site does not master. In the stand-alone-selector
// deployment this cannot happen (the selector serializes remastering with
// routing); the distributed-selector design of Appendix I relies on it to
// detect stale routing metadata, and callers resubmit to the selector.
var ErrNotMaster = errors.New("sitemgr: site does not master a written partition")

// ErrReleasing is returned when a write transaction arrives for a partition
// whose mastership is being released.
var ErrReleasing = errors.New("sitemgr: partition mastership is being released")

// ErrSiteDown is returned by a killed (crashed) site for every transactional
// and mastership operation. Sessions treat it as retryable: the selector
// re-routes to a surviving site once failover re-masters the partitions.
var ErrSiteDown = errors.New("sitemgr: site is down")

// ErrSnapshotTooOld poisons a transaction whose read touched a record with
// no version visible at the begin snapshot even though the record holds
// versions: the bounded version chain (storage.DefaultMaxVersions) may have
// evicted the version the snapshot could see, so the miss cannot be trusted
// — the newest maxVersions installs to a hot row between a transaction's
// begin and its read are enough to bury its whole visible history. Sessions
// treat it as retryable: a fresh begin takes a newer snapshot, at which the
// row's retained versions are visible again.
var ErrSnapshotTooOld = errors.New("sitemgr: begin snapshot predates the retained version history")

// ErrStaleEpoch is returned when a release/grant carries an epoch older than
// one that already fenced the partition — the remaster chain lost a race
// with a newer chain and must not apply.
var ErrStaleEpoch = errors.New("sitemgr: stale remaster epoch")

// partState tracks one partition's local mastership state.
type partState struct {
	owned     bool
	releasing bool
	writers   int // in-flight local update transactions writing it
	// rows indexes the partition's row references when the site tracks
	// partition contents (data-shipping systems).
	rows map[storage.RowRef]struct{}
	// wm is the partition's write watermark: the element-wise max of the
	// commit vectors of all updates to the partition applied at this
	// site. Release returns it so a grant waits only for updates causally
	// relevant to the moved items (§III-B), not full replica catch-up.
	wm vclock.Vector
	// lastEpoch fences mastership changes: the highest remaster epoch that
	// touched this partition. Stale (lower-epoch) release/grant retries are
	// rejected instead of clobbering newer ownership.
	lastEpoch uint64
}

// Site is one data site.
type Site struct {
	cfg   Config
	id    int
	m     int
	clock *vclock.SiteClock
	store *storage.Store
	log   *wal.Log
	net   *transport.Network

	commitMu sync.Mutex    // serializes seq allocation + install + log append
	nextSeq  atomic.Uint64 // local commit sequence allocator
	txnIDs   atomic.Uint64

	// Epoch group commit (see epoch.go). installed is the highest locally
	// installed commit sequence — possibly ahead of the sealed svv — that
	// local snapshots extend to; sealMu serializes seals.
	installed atomic.Uint64
	sealMu    sync.Mutex
	ep        epochState

	pool      *execPool
	applyPool *execPool

	// applyMu[origin] makes a replier's {clock check, store install, clock
	// advance} atomic per origin. The background applyLoop and a recovery
	// catch-up replay can work the same log suffix concurrently; without
	// this, one replier may install a stale version on top of a newer one
	// the other already applied (version chains are newest-first, so a late
	// stale install poisons the head and every snapshot read after it).
	applyMu []sync.Mutex

	pmu   sync.Mutex
	pcond *sync.Cond
	parts map[uint64]*partState

	// hosting is the partial-replication membership map (nil = the site
	// hosts everything and the apply/read hot paths take no extra locks).
	hosting *hostingState

	prepmu   sync.Mutex
	prepared map[uint64]*preparedTxn

	stopOnce sync.Once
	stopped  chan struct{}
	wg       sync.WaitGroup

	// down marks a simulated crash (Kill): every transactional and
	// mastership operation fails fast with ErrSiteDown.
	down atomic.Bool

	// epochFloor is the site-wide remaster-epoch fence installed by a
	// promoted selector (FenceEpochsBelow): release/grant operations
	// carrying a nonzero epoch below the floor are rejected with
	// ErrStaleEpoch, so a deposed coordinator's in-flight chains cannot
	// change ownership after the new coordinator has taken over. fenceMu
	// orders floor installation against in-flight release/grant
	// {floor-check, WAL-append, ownership-flip} sections: once
	// FenceEpochsBelow returns, every operation the site will still
	// complete is already in its log — a promotion's WAL fold misses
	// nothing.
	epochFloor atomic.Uint64
	fenceMu    sync.RWMutex

	// rangeFences holds per-router-shard epoch floors installed by
	// FenceEpochsBelowRange (nil until a sharded selector promotes, so the
	// single-shard hot path never scans it). Updated under fenceMu.
	rangeFences atomic.Pointer[[]rangeFence]

	// remu guards the epoch memo maps (idempotent release/grant retries).
	remu      sync.Mutex
	relMemo   map[uint64]vclock.Vector
	grantMemo map[uint64]vclock.Vector

	// Counters for experiment reporting.
	commits    atomic.Uint64
	aborts     atomic.Uint64
	refreshes  atomic.Uint64
	remasterIn atomic.Uint64

	// Observability (all instruments are nil-safe no-ops when the site is
	// built without a registry).
	ob     siteInstruments
	tracer *obs.Tracer
	spans  *obs.SpanRecorder
}

// siteInstruments are the site's registered metrics.
type siteInstruments struct {
	commits        *obs.Counter
	aborts         *obs.Counter
	refreshes      *obs.Counter
	refreshBatches *obs.Counter   // apply chunks (refreshes/batches = mean batch size)
	commitDur      *obs.Histogram // full local commit latency
	refreshApply   *obs.Histogram // one apply chunk's application work
	refreshLag     *obs.Histogram // publish -> applied-here delay, per refresh
	lastLag        *obs.Gauge     // most recent refresh lag, seconds
	refreshStage   *obs.Histogram // the shared refresh_apply lifecycle stage

	epochSeals      *obs.Counter   // sealed epochs
	epochTxns       *obs.Counter   // commits that rode a sealed epoch
	epochBytesSaved *obs.Counter   // replication bytes saved vs per-txn frames
	epochSealDur    *obs.Histogram // seal latency (append + flush wait)
}

// instrument registers the site's metrics and freshness gauges.
func (s *Site) instrument(reg *obs.Registry) {
	if reg == nil {
		return
	}
	site := obs.Site(s.id)
	reg.Help("dynamast_commits_total", "Committed update transactions per executing site.")
	reg.Help("dynamast_aborts_total", "Aborted update transactions per site.")
	reg.Help("dynamast_refreshes_total", "Refresh transactions applied per site.")
	reg.Help("dynamast_commit_seconds", "Local commit latency per site (including WAL publish).")
	reg.Help("dynamast_refresh_apply_seconds", "Refresh-transaction application work per site.")
	reg.Help("dynamast_refresh_lag_seconds", "Delay from update publish to application at this site.")
	reg.Help("dynamast_refresh_lag", "Most recent observed refresh lag per site, seconds.")
	reg.Help("dynamast_site_svv", "Site version vector: per-origin applied commit sequence.")
	reg.Help("dynamast_refresh_delay", "Updates published by origin but not yet applied at site.")
	reg.Help("dynamast_refresh_batches_total", "Refresh apply chunks per site (refreshes/batches = mean batch size).")
	reg.Help("dynamast_epoch_seals_total", "Sealed commit epochs per site.")
	reg.Help("dynamast_epoch_txns_total", "Update transactions committed through sealed epochs per site.")
	reg.Help("dynamast_epoch_bytes_saved_total", "Replication bytes saved by epoch coalescing vs per-transaction frames.")
	reg.Help("dynamast_epoch_seal_seconds", "Epoch seal latency per site (log append and group-commit flush).")
	reg.Help("dynamast_epoch_interval_seconds", "Configured epoch seal interval per site (0 = epochs disabled).")
	s.ob = siteInstruments{
		commits:        reg.Counter("dynamast_commits_total", site),
		aborts:         reg.Counter("dynamast_aborts_total", site),
		refreshes:      reg.Counter("dynamast_refreshes_total", site),
		refreshBatches: reg.Counter("dynamast_refresh_batches_total", site),
		commitDur:      reg.Histogram("dynamast_commit_seconds", site),
		refreshApply:   reg.Histogram("dynamast_refresh_apply_seconds", site),
		refreshLag:     reg.Histogram("dynamast_refresh_lag_seconds", site),
		lastLag:        reg.Gauge("dynamast_refresh_lag", site),
		refreshStage:   reg.Histogram("dynamast_txn_stage_seconds", obs.L("stage", "refresh_apply")),

		epochSeals:      reg.Counter("dynamast_epoch_seals_total", site),
		epochTxns:       reg.Counter("dynamast_epoch_txns_total", site),
		epochBytesSaved: reg.Counter("dynamast_epoch_bytes_saved_total", site),
		epochSealDur:    reg.Histogram("dynamast_epoch_seal_seconds", site),
	}
	reg.Func("dynamast_epoch_interval_seconds", obs.KindGauge,
		func() float64 { return s.cfg.EpochInterval.Seconds() }, site)
	reg.Help("dynamast_resident_partitions", "Distinct partitions with rows resident at this site.")
	reg.Func("dynamast_resident_partitions", obs.KindGauge,
		func() float64 { return float64(s.ResidentPartitions()) }, site)
	for origin := 0; origin < s.m; origin++ {
		origin := origin
		olbl := obs.L("origin", fmt.Sprint(origin))
		reg.Func("dynamast_site_svv", obs.KindGauge,
			func() float64 { return float64(s.clock.Get(origin)) }, site, olbl)
		if origin == s.id {
			continue
		}
		// Refresh delay: updates origin has published that this site has
		// not yet applied — the per-site freshness lag the routing
		// strategies reason about (Equation 5).
		log := s.cfg.Broker.Log(origin)
		reg.Func("dynamast_refresh_delay", obs.KindGauge, func() float64 {
			d := int64(log.LastUpdateSeq()) - int64(s.clock.Get(origin))
			if d < 0 {
				d = 0
			}
			return float64(d)
		}, site, olbl)
	}
}

// New constructs a data site. Call Start to launch replication.
func New(cfg Config) (*Site, error) {
	if cfg.Broker == nil {
		return nil, errors.New("sitemgr: config requires a Broker")
	}
	if cfg.Partitioner == nil {
		return nil, errors.New("sitemgr: config requires a Partitioner")
	}
	if cfg.SiteID < 0 || cfg.SiteID >= cfg.Sites {
		return nil, fmt.Errorf("sitemgr: site id %d out of range [0,%d)", cfg.SiteID, cfg.Sites)
	}
	if cfg.PropagationDelay == 0 && cfg.Net != nil {
		cfg.PropagationDelay = cfg.Net.Config().OneWay
	}
	s := &Site{
		cfg:       cfg,
		id:        cfg.SiteID,
		m:         cfg.Sites,
		clock:     vclock.NewSiteClock(cfg.SiteID, cfg.Sites),
		store:     storage.NewStore(cfg.MaxVersions),
		log:       cfg.Broker.Log(cfg.SiteID),
		net:       cfg.Net,
		parts:     make(map[uint64]*partState),
		prepared:  make(map[uint64]*preparedTxn),
		stopped:   make(chan struct{}),
		pool:      newExecPool(cfg.ExecSlots),
		relMemo:   make(map[uint64]vclock.Vector),
		grantMemo: make(map[uint64]vclock.Vector),
		applyMu:   make([]sync.Mutex, cfg.Sites),
	}
	if cfg.PartialReplication {
		s.hosting = &hostingState{
			def:       cfg.DefaultHosted,
			overrides: make(map[uint64]bool),
		}
	}
	if cfg.ApplySlots == 0 {
		cfg.ApplySlots = DefaultApplySlots
	}
	s.applyPool = newExecPool(cfg.ApplySlots)
	s.cfg.ApplySlots = cfg.ApplySlots
	s.pcond = sync.NewCond(&s.pmu)
	s.ep.cond = sync.NewCond(&s.ep.mu)
	s.tracer = cfg.Tracer
	s.spans = cfg.Spans
	s.instrument(cfg.Obs)
	return s, nil
}

// ID returns the site's index.
func (s *Site) ID() int { return s.id }

// Sites returns the system size m.
func (s *Site) Sites() int { return s.m }

// Store exposes the site's database for loading and direct inspection.
func (s *Site) Store() *storage.Store { return s.store }

// SVV returns a snapshot of the site version vector.
func (s *Site) SVV() vclock.Vector { return s.clock.Now() }

// Clock exposes the site clock (used by routing strategies to estimate
// refresh delay, Equation 5).
func (s *Site) Clock() *vclock.SiteClock { return s.clock }

// Commits returns the number of locally committed update transactions.
func (s *Site) Commits() uint64 { return s.commits.Load() }

// Aborts returns the number of locally aborted update transactions.
func (s *Site) Aborts() uint64 { return s.aborts.Load() }

// Refreshes returns the number of refresh transactions applied.
func (s *Site) Refreshes() uint64 { return s.refreshes.Load() }

// Start launches the refresh appliers (one per remote site) if the site is
// configured to replicate.
func (s *Site) Start() {
	if s.epochOn() {
		s.wg.Add(1)
		go s.sealerLoop()
	}
	if !s.cfg.Replicate {
		return
	}
	for origin := 0; origin < s.m; origin++ {
		if origin == s.id {
			continue
		}
		s.wg.Add(1)
		go s.applyLoop(origin)
	}
}

// Kill simulates a site crash: the site stops applying refreshes, rejects
// every new transactional and mastership operation with ErrSiteDown, and
// wakes anything parked on its clock or partition conditions so no caller
// hangs on a dead site. The site's WAL (in the shared broker) survives —
// exactly the paper's §V-C failure model, where the data store is lost but
// the durable logs are not.
func (s *Site) Kill() {
	if !s.down.CompareAndSwap(false, true) {
		return
	}
	s.stopOnce.Do(func() {
		close(s.stopped)
		s.clock.Interrupt()
	})
	s.pmu.Lock()
	s.pcond.Broadcast()
	s.pmu.Unlock()
	if s.epochOn() {
		// A commit that saw down==false is inside commitMu; the barrier
		// waits it into the buffer so the final seal below covers every
		// acked commit (the paper's failure model keeps the logs — an acked
		// commit must not be stranded in a dead site's buffer). Commits
		// arriving after the barrier observe down==true and abort.
		s.commitMu.Lock()
		s.commitMu.Unlock() //nolint:staticcheck // empty critical section = barrier
		_ = s.SealEpoch()
	}
}

// Alive reports whether the site has not been killed.
func (s *Site) Alive() bool { return !s.down.Load() }

// Stop terminates replication appliers and waits for them to exit.
// Appliers block on the broker's logs, so callers must close the broker
// (or at least the remote sites' logs) before calling Stop; the systems
// packages tear down in that order.
func (s *Site) Stop() {
	s.stopOnce.Do(func() {
		close(s.stopped)
		// Wake appliers parked on causal dependencies that can no longer
		// arrive (their producer appliers may already have exited).
		s.clock.Interrupt()
	})
	s.wg.Wait()
}

// maxRefreshBatch bounds how many log entries an applier drains per cursor
// wake: large enough to amortize wake/lock/slot costs over a backlog, small
// enough that the site clock advances (and freshness gauges move) at a fine
// grain while catching up.
const maxRefreshBatch = 64

// applyLoop subscribes to origin's update log and applies committed
// transactions as refresh transactions, blocking per the update application
// rule so that a consistent order is maintained (Equation 1). Entries are
// delivered per-origin FIFO; the rule's svv[origin] == tvv[origin]-1 clause
// holds exactly when the previous entry from origin has been applied, so
// the loop only needs to wait on the cross-origin dependency clauses.
//
// The loop drains the log in batches (one cursor wake per backlog, not per
// entry) and applies each batch in chunks of consecutively-ready entries,
// amortizing dependency waits, network byte accounting, and apply-pool slot
// acquisition across the chunk.
func (s *Site) applyLoop(origin int) {
	defer s.wg.Done()
	cur := s.cfg.Broker.Log(origin).Subscribe(0)
	defer cur.Close()
	// The batch buffer is pooled across applier generations (site restarts,
	// recovery appliers); entries only borrow the log's write sets, so the
	// pool's zero-on-put keeps parked buffers from pinning payload memory.
	bp := wal.GetBatch()
	defer wal.PutBatch(bp)
	batch := *bp
	defer func() { *bp = batch }()
	for {
		var ok bool
		batch, ok = cur.NextBatch(batch[:0], maxRefreshBatch)
		if !ok {
			return // log closed and drained
		}
		select {
		case <-s.stopped:
			return
		default:
		}
		if !s.applyBatch(origin, batch) {
			return
		}
	}
}

// applyBatch applies consecutive entries of origin's log, chunking them:
// the blocking gates (propagation delay, Equation 1 dependency waits) run
// on the first entry of each chunk only, OUTSIDE any apply-pool slot —
// holding a slot while parked on a cross-origin dependency could starve
// the applier that would satisfy it — and the chunk is then greedily
// extended with entries already applicable under one clock snapshot.
// Extension is conservative: it requires consecutive same-origin sequence
// numbers (commit order makes origin's log dense in that dimension, so
// sequential in-chunk application preserves the svv[origin]==tvv[origin]-1
// clause) and snapshot-satisfied cross-origin clauses; anything not
// provably ready ends the chunk and re-enters the blocking gate. Each
// chunk occupies one apply-pool slot and is charged its summed cost.
// Returns false when the site stopped.
func (s *Site) applyBatch(origin int, batch []wal.Entry) bool {
	i := 0
	for i < len(batch) {
		e := &batch[i]
		if e.Kind == wal.KindEpoch {
			// A sealed epoch is its own chunk: one dependency gate on its
			// closing vector, one apply-pool slot, one batched install.
			if !s.applyEpoch(origin, e) {
				return false
			}
			i++
			continue
		}
		if e.Kind != wal.KindUpdate || e.TVV[origin] <= s.clock.Get(origin) {
			i++ // mastership record, or already applied (bootstrap/recovery overlap)
			continue
		}
		// Model asynchronous propagation: the update becomes available
		// here only after the pipeline delay.
		if d := s.cfg.PropagationDelay; d > 0 {
			if age := time.Since(e.At); age < d {
				if !s.sleep(d - age) {
					return false
				}
			}
		}
		// Wait until every transaction the chunk head depends on has been
		// applied.
		for k, want := range e.TVV {
			if k == origin {
				s.clock.WaitDimAtLeast(k, want-1)
				continue
			}
			if want > 0 {
				s.clock.WaitDimAtLeast(k, want)
			}
		}
		// The waits return unconditionally once the site stops; never apply
		// an update whose dependencies were not actually satisfied.
		select {
		case <-s.stopped:
			return false
		default:
		}
		// Greedily extend the chunk with entries ready under one snapshot.
		snap := s.clock.Now()
		prevSeq := e.TVV[origin]
		end := i + 1
	extend:
		for end < len(batch) {
			n := &batch[end]
			if n.Kind != wal.KindUpdate || n.TVV[origin] != prevSeq+1 {
				break
			}
			if d := s.cfg.PropagationDelay; d > 0 && time.Since(n.At) < d {
				break
			}
			for k, want := range n.TVV {
				if k != origin && want > snap[k] {
					break extend
				}
			}
			prevSeq = n.TVV[origin]
			end++
		}
		chunk := batch[i:end]
		if s.hosting == nil {
			var bytes int
			for j := range chunk {
				bytes += transport.MsgOverhead +
					transport.SizeOfVector(chunk[j].TVV) + transport.SizeOfWrites(chunk[j].Writes)
			}
			s.net.Account(transport.CatReplication, bytes)
		}
		applyStart := time.Now()
		var applied uint64
		s.applyPool.do(func() time.Duration {
			var cost time.Duration
			var bytes int
			for j := range chunk {
				c := &chunk[j]
				seq := c.TVV[origin]
				s.applyMu[origin].Lock()
				if seq <= s.clock.Get(origin) {
					// A recovery catch-up replayed this entry between the
					// dependency gate and here; installing it now would
					// stack a stale version over the newer state.
					s.applyMu[origin].Unlock()
					continue
				}
				writes := c.Writes
				if s.hosting != nil {
					// Filter to hosted partitions inside the applyMu critical
					// section (hosting flips hold all apply mutexes, so the
					// decision is exactly ordered against them). The clock
					// still advances past fully filtered entries — the svv
					// stays dense; see hosting.go.
					writes = s.filterHosted(writes)
				}
				s.store.Apply(storage.Stamp{Origin: origin, Seq: seq}, writes)
				s.bumpWatermarks(writes, c.TVV)
				s.clock.Advance(origin, seq)
				s.applyMu[origin].Unlock()
				applied++
				if s.hosting != nil {
					// Per-destination frame filtering: this site receives the
					// envelope and commit vector (the svv must advance) but
					// only the write payloads it hosts.
					bytes += transport.MsgOverhead + transport.SizeOfVector(c.TVV)
					if len(writes) > 0 {
						bytes += transport.SizeOfWrites(writes)
					}
				}
				if !s.cfg.Costs.Zero() {
					cost += s.cfg.Costs.RefreshBase + time.Duration(len(writes))*s.cfg.Costs.PerRefreshWrite
				}
			}
			if bytes > 0 {
				s.net.Account(transport.CatReplication, bytes)
			}
			return cost
		})
		s.refreshes.Add(applied)
		s.ob.refreshBatches.Inc()
		s.ob.refreshApply.ObserveDuration(time.Since(applyStart))
		now := time.Now()
		for j := range chunk {
			c := &chunk[j]
			lag := now.Sub(c.At)
			s.ob.refreshes.Inc()
			s.ob.refreshLag.ObserveDuration(lag)
			s.ob.lastLag.Set(lag.Seconds())
			s.ob.refreshStage.ObserveDuration(lag)
			s.tracer.RefreshApplied(origin, c.TVV[origin], lag)
			s.spans.RefreshApplied(origin, c.TVV[origin], s.id, lag, now)
		}
		i = end
	}
	return true
}

// sleep waits for d unless the site stops first.
func (s *Site) sleep(d time.Duration) bool {
	select {
	case <-s.stopped:
		return false
	case <-time.After(d):
		return true
	}
}

// partition returns (creating if needed) the state for part. Caller holds pmu.
func (s *Site) partition(part uint64) *partState {
	p := s.parts[part]
	if p == nil {
		p = &partState{}
		if s.cfg.DefaultOwner != nil {
			p.owned = s.cfg.DefaultOwner(part) == s.id
		}
		s.parts[part] = p
	}
	return p
}

// SetMaster marks this site as (non-)master for part without logging; used
// for initial placement at load time.
func (s *Site) SetMaster(part uint64, owned bool) {
	s.pmu.Lock()
	defer s.pmu.Unlock()
	st := s.partition(part)
	st.owned = owned
	st.releasing = false
	s.pcond.Broadcast()
}

// Masters reports whether this site currently masters part.
func (s *Site) Masters(part uint64) bool {
	s.pmu.Lock()
	defer s.pmu.Unlock()
	p := s.parts[part]
	return p != nil && p.owned && !p.releasing
}

// MasteredPartitions returns the ids of all partitions this site masters.
func (s *Site) MasteredPartitions() []uint64 {
	s.pmu.Lock()
	defer s.pmu.Unlock()
	var out []uint64
	for id, p := range s.parts {
		if p.owned {
			out = append(out, id)
		}
	}
	return out
}

// bumpWatermarks folds a committed transaction's vector into the write
// watermarks of the partitions its writes touch, and indexes the rows if
// the site tracks partition contents.
func (s *Site) bumpWatermarks(writes []storage.Write, tvv vclock.Vector) {
	seen := make(map[uint64]struct{}, 4)
	s.pmu.Lock()
	defer s.pmu.Unlock()
	for _, w := range writes {
		id := s.cfg.Partitioner(w.Ref)
		if s.cfg.TrackPartitionRows {
			p := s.partition(id)
			if p.rows == nil {
				p.rows = make(map[storage.RowRef]struct{})
			}
			p.rows[w.Ref] = struct{}{}
		}
		if _, dup := seen[id]; dup {
			continue
		}
		seen[id] = struct{}{}
		p := s.partition(id)
		p.wm = p.wm.MaxInto(tvv)
	}
}

// LoadRow installs an initial row directly (load-time bulk path), indexing
// it when the site tracks partition contents. The stamp (origin 0, seq 0)
// is visible at every snapshot.
func (s *Site) LoadRow(ref storage.RowRef, data []byte) {
	t := s.store.CreateTable(ref.Table)
	t.Record(ref.Key, true).Install(storage.Stamp{}, data, false, s.store.MaxVersions())
	if s.cfg.TrackPartitionRows {
		s.pmu.Lock()
		p := s.partition(s.cfg.Partitioner(ref))
		if p.rows == nil {
			p.rows = make(map[storage.RowRef]struct{})
		}
		p.rows[ref] = struct{}{}
		s.pmu.Unlock()
	}
}

// writePartitions returns the deduplicated partition ids of a write set.
func (s *Site) writePartitions(refs []storage.RowRef) []uint64 {
	seen := make(map[uint64]struct{}, len(refs))
	var out []uint64
	for _, r := range refs {
		p := s.cfg.Partitioner(r)
		if _, ok := seen[p]; !ok {
			seen[p] = struct{}{}
			out = append(out, p)
		}
	}
	return out
}
