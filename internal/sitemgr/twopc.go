package sitemgr

import (
	"fmt"
	"time"

	"dynamast/internal/storage"
	"dynamast/internal/vclock"
	"dynamast/internal/wal"
)

// Two-phase-commit participant. The partitioned baselines (partition-store
// and multi-master) execute distributed write transactions with 2PC: the
// coordinator prepares every participant (acquiring the write locks), and
// on a unanimous yes-vote commits them. Between prepare and the global
// decision the participant is in the uncertain phase: the locks stay held,
// blocking any conflicting transaction — the blocking window that the paper
// identifies as multi-master's key cost and that DynaMast eliminates by
// coordinating outside transaction boundaries.

// preparedTxn is a participant-side transaction in the uncertain phase.
type preparedTxn struct {
	refs []storage.RowRef
	recs []*storage.Record
	snap vclock.Vector
}

// Prepare locks the local portion of a distributed transaction's write set
// and votes yes by returning the participant's snapshot at lock
// acquisition. The locks remain held until CommitPrepared or AbortPrepared.
func (s *Site) Prepare(txnID uint64, writeSet []storage.RowRef) (vclock.Vector, error) {
	// Copy before LockSet's in-place sort: coordinators fan the same write
	// set out to every participant.
	refs, recs, err := s.store.LockSet(append([]storage.RowRef(nil), writeSet...))
	if err != nil {
		return nil, err
	}
	p := &preparedTxn{refs: refs, recs: recs, snap: s.clock.Now()}
	s.prepmu.Lock()
	if _, dup := s.prepared[txnID]; dup {
		s.prepmu.Unlock()
		storage.UnlockAll(recs)
		return nil, fmt.Errorf("sitemgr: duplicate prepare for txn %d", txnID)
	}
	s.prepared[txnID] = p
	s.prepmu.Unlock()
	// Participant-side work consumes the site's execution capacity.
	s.Exec(func() time.Duration { return s.cfg.Costs.TxnBase / 4 })
	return p.snap, nil
}

// CommitPrepared applies the local writes of a prepared transaction,
// commits them locally (assigning the next local commit sequence), logs
// them for durability and replication, and releases the locks.
func (s *Site) CommitPrepared(txnID uint64, writes []storage.Write) (vclock.Vector, error) {
	s.prepmu.Lock()
	p := s.prepared[txnID]
	delete(s.prepared, txnID)
	s.prepmu.Unlock()
	if p == nil {
		return nil, fmt.Errorf("sitemgr: commit of unprepared txn %d", txnID)
	}

	s.commitMu.Lock()
	seq := s.nextSeq.Add(1)
	tvv := p.snap.Clone()
	tvv[s.id] = seq
	s.store.Apply(storage.Stamp{Origin: s.id, Seq: seq}, writes)
	_, err := s.log.Append(wal.Entry{
		Kind:   wal.KindUpdate,
		Origin: s.id,
		TVV:    tvv,
		Writes: writes,
	})
	if err == nil {
		s.clock.Advance(s.id, seq)
	}
	s.commitMu.Unlock()

	storage.UnlockAll(p.recs)
	if err != nil {
		return nil, err
	}
	s.Exec(func() time.Duration {
		return s.cfg.Costs.TxnBase/4 + time.Duration(len(writes))*s.cfg.Costs.PerWrite
	})
	s.commits.Add(1)
	return tvv, nil
}

// AbortPrepared releases a prepared transaction's locks without applying.
func (s *Site) AbortPrepared(txnID uint64) {
	s.prepmu.Lock()
	p := s.prepared[txnID]
	delete(s.prepared, txnID)
	s.prepmu.Unlock()
	if p != nil {
		storage.UnlockAll(p.recs)
	}
}

// NextTxnID allocates a cluster-unique distributed transaction id (unique
// per coordinating site; ids embed the site).
func (s *Site) NextTxnID() uint64 {
	return uint64(s.id)<<48 | s.txnIDs.Add(1)
}
