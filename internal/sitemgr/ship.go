package sitemgr

import (
	"dynamast/internal/storage"
	"dynamast/internal/vclock"
)

// Data shipping for the LEAP baseline. LEAP guarantees single-site
// execution like DynaMast but, lacking replicas, must physically copy the
// records in a transaction's read and write sets from their current master
// to the execution site (localization). Mastership of the affected
// partitions moves with the data.

// ShipRequest names the data to localize from one source site.
type ShipRequest struct {
	Refs   []storage.RowRef // individual rows (write sets, point reads)
	Scans  []ScanRange      // ranges (read sets of scan transactions)
	Parts  []uint64         // partitions whose ownership transfers
	ToSite int
}

// ScanRange is one table range.
type ScanRange struct {
	Table  string
	Lo, Hi uint64
}

// ShipOut relinquishes ownership of the affected partitions and returns
// their entire row contents at the newest committed versions — the payload
// that crosses the wire, LEAP's dominant cost. Sites that ship must be
// configured with TrackPartitionRows so the partition contents are known;
// explicitly requested rows and ranges are shipped as well (covering rows
// the index may not have seen, e.g. rows created on other sites before
// this one ever owned the partition).
func (s *Site) ShipOut(req ShipRequest) ([]storage.Write, error) {
	s.pmu.Lock()
	for _, id := range req.Parts {
		p := s.partition(id)
		p.releasing = true
	}
	for !s.writersIdle(req.Parts) {
		s.pcond.Wait()
	}
	refs := make(map[storage.RowRef]struct{})
	for _, id := range req.Parts {
		p := s.parts[id]
		p.owned = false
		p.releasing = false
		for ref := range p.rows {
			refs[ref] = struct{}{}
		}
		p.rows = nil // contents leave with the shipment
	}
	s.pmu.Unlock()

	for _, ref := range req.Refs {
		refs[ref] = struct{}{}
	}
	var out []storage.Write
	for ref := range refs {
		if t := s.store.Table(ref.Table); t != nil {
			if data, _, ok := t.GetLatest(ref.Key); ok {
				out = append(out, storage.Write{Ref: ref, Data: data})
			}
		}
	}
	snap := s.clock.Now()
	for _, r := range req.Scans {
		tb := s.store.Table(r.Table)
		if tb == nil {
			continue
		}
		for _, kv := range tb.Scan(r.Lo, r.Hi, snap) {
			ref := storage.RowRef{Table: r.Table, Key: kv.Key}
			if _, dup := refs[ref]; dup {
				continue
			}
			out = append(out, storage.Write{Ref: ref, Data: kv.Value})
		}
	}
	return out, nil
}

// ShipIn installs shipped rows as the local newest versions and takes
// ownership of the partitions. The rows are installed under a fresh local
// commit sequence so subsequent local snapshots observe them.
func (s *Site) ShipIn(parts []uint64, rows []storage.Write) (vclock.Vector, error) {
	s.commitMu.Lock()
	seq := s.nextSeq.Add(1)
	s.store.Apply(storage.Stamp{Origin: s.id, Seq: seq}, rows)
	s.clock.Advance(s.id, seq)
	s.commitMu.Unlock()

	s.pmu.Lock()
	for _, id := range parts {
		p := s.partition(id)
		p.owned = true
		p.releasing = false
	}
	if s.cfg.TrackPartitionRows {
		for _, w := range rows {
			p := s.partition(s.cfg.Partitioner(w.Ref))
			if p.rows == nil {
				p.rows = make(map[storage.RowRef]struct{})
			}
			p.rows[w.Ref] = struct{}{}
		}
	}
	s.pcond.Broadcast()
	s.pmu.Unlock()
	return s.clock.Now(), nil
}
