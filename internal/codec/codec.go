// Package codec is DynaMast's hand-rolled binary wire format: the
// zero-allocation replacement for encoding/gob on every surface where a
// record crosses a boundary — WAL entries, RPC frames and their bodies,
// and checkpoint snapshot rows.
//
// The paper's substrates are Apache Thrift's compact binary protocol (RPC)
// and Kafka's framed binary log (replication); gob stood in for both but
// reflects and allocates on every message. This package provides what those
// substrates provide: explicit per-type wire schemas built from a small set
// of primitives, with append-style encoding into caller-owned buffers and a
// sticky-error Reader for decoding.
//
// # Wire discipline
//
// Every payload produced by this package begins with a two-byte header:
// Magic (0x00) then a format-version byte. A self-contained gob stream can
// never begin with byte 0x00 (gob prefixes each message with its byte
// count, encoded as a uvarint that is never zero), so one payload byte
// distinguishes the binary format from legacy gob frames. Readers of
// durable data (WAL, checkpoints) use this to fall back to a gob decode
// per frame, which is what lets a log written partly by an old build and
// partly by this one replay seamlessly.
//
// Integers travel as unsigned LEB128 varints (signed values zig-zag), like
// Thrift's compact protocol; byte strings are length-prefixed.
//
// # Buffer ownership
//
// Encoding appends to a caller-supplied buffer (use GetBuf/PutBuf for
// pooled scratch). Decoding is the inverse ownership rule: any []byte or
// string a schema decodes is freshly allocated and owned by the caller —
// never an alias of the wire buffer — so pooled read buffers can be reused
// the moment decoding returns, and decoded payloads may safely escape into
// long-lived structures (MVCC version chains, retained log entries).
// Reader.Peek-style aliasing accessors are deliberately not provided.
package codec

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"sync"
)

const (
	// Magic is the first byte of every binary payload. Chosen because a
	// self-contained gob stream never starts with 0x00 (see package doc),
	// making one byte sufficient to discriminate the two formats.
	Magic = 0x00
	// Version1 is the first (current) binary format version.
	Version1 = 0x01
	// HeaderSize is the length of the magic+version prefix.
	HeaderSize = 2
)

// ErrTruncated reports a payload that ended mid-field.
var ErrTruncated = errors.New("codec: truncated payload")

// ErrCorrupt reports a structurally invalid payload (bad length, overflow,
// trailing garbage).
var ErrCorrupt = errors.New("codec: corrupt payload")

// maxLen bounds any single length-prefixed field so a corrupt prefix cannot
// ask for an absurd allocation; it matches the WAL's 64 MiB frame bound.
const maxLen = 64 << 20

// Message is implemented by types that carry their own binary wire schema.
// MarshalTo appends the full payload — header included — to buf and returns
// the extended slice; Unmarshal parses a payload MarshalTo produced.
// Implementations must obey the package's buffer-ownership rule: Unmarshal
// copies every byte field out of data.
type Message interface {
	MarshalTo(buf []byte) []byte
	Unmarshal(data []byte) error
}

// AppendHeader appends the magic+version prefix for format version v.
func AppendHeader(buf []byte, v byte) []byte {
	return append(buf, Magic, v)
}

// IsBinary reports whether payload begins with this package's magic byte
// (i.e. is NOT a legacy gob payload).
func IsBinary(payload []byte) bool {
	return len(payload) >= HeaderSize && payload[0] == Magic
}

// CheckHeader validates the magic+version prefix and returns the body after
// it. Unknown versions are an error (a newer build's frames are not
// guessed at).
func CheckHeader(payload []byte) ([]byte, error) {
	if len(payload) < HeaderSize {
		return nil, ErrTruncated
	}
	if payload[0] != Magic {
		return nil, fmt.Errorf("%w: bad magic 0x%02x", ErrCorrupt, payload[0])
	}
	if payload[1] != Version1 {
		return nil, fmt.Errorf("codec: unsupported format version %d", payload[1])
	}
	return payload[HeaderSize:], nil
}

// AppendUvarint appends v as an unsigned LEB128 varint.
func AppendUvarint(buf []byte, v uint64) []byte {
	return binary.AppendUvarint(buf, v)
}

// AppendInt appends v zig-zag encoded (small magnitudes of either sign stay
// short).
func AppendInt(buf []byte, v int64) []byte {
	return binary.AppendUvarint(buf, uint64(v)<<1^uint64(v>>63))
}

// AppendFloat appends a float64 as a varint of its IEEE-754 bits. Small
// integral values are not shorter this way (the mantissa occupies the high
// bits), but probabilities and ratios — the only floats on DynaMast's wire
// — are rare enough that uniformity beats a second fixed-width encoding.
func AppendFloat(buf []byte, f float64) []byte {
	return binary.AppendUvarint(buf, math.Float64bits(f))
}

// AppendBool appends v as one byte.
func AppendBool(buf []byte, v bool) []byte {
	if v {
		return append(buf, 1)
	}
	return append(buf, 0)
}

// AppendBytes appends a length-prefixed byte string.
func AppendBytes(buf, p []byte) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(p)))
	return append(buf, p...)
}

// AppendString appends a length-prefixed string.
func AppendString(buf []byte, s string) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(s)))
	return append(buf, s...)
}

// Reader decodes a payload field by field with a sticky error: after the
// first violation every accessor returns a zero value, and Err (or Done)
// reports what went wrong. This keeps call sites linear — no error check
// per field — without ever panicking on garbage input.
type Reader struct {
	data []byte
	off  int
	err  error

	// intern, when non-nil, deduplicates decoded strings: repeated table
	// names across thousands of WAL entries or snapshot rows decode to one
	// shared string instead of one allocation each.
	intern map[string]string
}

// NewReader returns a Reader over a full payload including the
// magic+version header, validating it first.
func NewReader(payload []byte) *Reader {
	r := &Reader{}
	body, err := CheckHeader(payload)
	if err != nil {
		r.err = err
		return r
	}
	r.data = body
	return r
}

// NewBodyReader returns a Reader over a payload whose header was already
// consumed (or that has none).
func NewBodyReader(body []byte) *Reader {
	return &Reader{data: body}
}

// SetIntern enables string interning with the given (possibly empty) map.
// The map is retained and grown; pass the same map across many payloads to
// share the dictionary.
func (r *Reader) SetIntern(m map[string]string) { r.intern = m }

// Err returns the first decode error, if any.
func (r *Reader) Err() error { return r.err }

// fail records the first error.
func (r *Reader) fail(err error) {
	if r.err == nil {
		r.err = err
	}
}

// Fail records err as the Reader's sticky error (first failure wins); it
// lets cooperating schema packages (the WAL's entry codec) report structural
// violations — a dictionary index out of range, an absurd count — through
// the same sticky-error channel the primitive accessors use.
func (r *Reader) Fail(err error) { r.fail(err) }

// Done returns the sticky error, or ErrCorrupt if undecoded bytes trail the
// payload (a well-formed payload is consumed exactly).
func (r *Reader) Done() error {
	if r.err != nil {
		return r.err
	}
	if r.off != len(r.data) {
		return fmt.Errorf("%w: %d trailing bytes", ErrCorrupt, len(r.data)-r.off)
	}
	return nil
}

// Remaining returns how many bytes are left undecoded.
func (r *Reader) Remaining() int {
	if r.err != nil {
		return 0
	}
	return len(r.data) - r.off
}

// Uvarint decodes one unsigned varint.
func (r *Reader) Uvarint() uint64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Uvarint(r.data[r.off:])
	if n <= 0 {
		if n == 0 {
			r.fail(ErrTruncated)
		} else {
			r.fail(fmt.Errorf("%w: varint overflow", ErrCorrupt))
		}
		return 0
	}
	r.off += n
	return v
}

// Int decodes one zig-zag varint.
func (r *Reader) Int() int64 {
	u := r.Uvarint()
	return int64(u>>1) ^ -int64(u&1)
}

// Float decodes a float64 appended by AppendFloat.
func (r *Reader) Float() float64 {
	return math.Float64frombits(r.Uvarint())
}

// Bool decodes one byte as a boolean (values other than 0/1 are corrupt).
func (r *Reader) Bool() bool {
	if r.err != nil {
		return false
	}
	if r.off >= len(r.data) {
		r.fail(ErrTruncated)
		return false
	}
	b := r.data[r.off]
	r.off++
	if b > 1 {
		r.fail(fmt.Errorf("%w: bool byte 0x%02x", ErrCorrupt, b))
		return false
	}
	return b == 1
}

// take validates and consumes a length-prefixed field, returning the raw
// wire bytes (an alias into the payload — internal use only; public
// accessors copy).
func (r *Reader) take() []byte {
	n := r.Uvarint()
	if r.err != nil {
		return nil
	}
	if n > maxLen {
		r.fail(fmt.Errorf("%w: field length %d", ErrCorrupt, n))
		return nil
	}
	if uint64(len(r.data)-r.off) < n {
		r.fail(ErrTruncated)
		return nil
	}
	p := r.data[r.off : r.off+int(n)]
	r.off += int(n)
	return p
}

// Bytes decodes a length-prefixed byte string into a fresh allocation
// (empty decodes as nil, matching gob's round-trip of nil slices).
func (r *Reader) Bytes() []byte {
	p := r.take()
	if len(p) == 0 {
		return nil
	}
	out := make([]byte, len(p))
	copy(out, p)
	return out
}

// BytesInto decodes a length-prefixed byte string by appending to dst
// (reusing its capacity); the result never aliases the wire buffer.
func (r *Reader) BytesInto(dst []byte) []byte {
	p := r.take()
	return append(dst, p...)
}

// Tail consumes and returns every remaining byte of the payload. It is the
// one deliberate exception to the no-aliasing rule — the returned slice
// points into the wire buffer — and exists for enclosing-frame schemas
// whose final field is an opaque nested body (the RPC frame): the caller
// owns the wire buffer and keeps it alive until the nested body has been
// decoded (at which point the ownership rule applies to ITS fields).
func (r *Reader) Tail() []byte {
	if r.err != nil {
		return nil
	}
	p := r.data[r.off:]
	r.off = len(r.data)
	if len(p) == 0 {
		return nil
	}
	return p
}

// String decodes a length-prefixed string, consulting the intern
// dictionary when enabled.
func (r *Reader) String() string {
	p := r.take()
	if len(p) == 0 {
		return ""
	}
	if r.intern != nil {
		if s, ok := r.intern[string(p)]; ok { // no-alloc map probe
			return s
		}
		s := string(p)
		r.intern[s] = s
		return s
	}
	return string(p)
}

// bufPool recycles encode/decode scratch across the WAL, RPC, and
// checkpoint paths. Buffers are held behind pointers so Put does not
// allocate a fresh interface header per call.
var bufPool = sync.Pool{
	New: func() any {
		b := make([]byte, 0, 4096)
		return &b
	},
}

// GetBuf returns a pooled, zero-length scratch buffer. Return it with
// PutBuf once every decoded view of it is dead.
func GetBuf() *[]byte { return bufPool.Get().(*[]byte) }

// PutBuf returns a scratch buffer to the pool. Oversized buffers (from a
// rare huge message) are dropped so the pool converges on typical sizes.
func PutBuf(b *[]byte) {
	if b == nil || cap(*b) > maxLen/64 {
		return
	}
	*b = (*b)[:0]
	bufPool.Put(b)
}
