package codec

import (
	"fmt"
	"time"

	"dynamast/internal/storage"
	"dynamast/internal/vclock"
)

// Shared sub-schemas for the record fragments that appear on more than one
// wire surface (version vectors and write sets ride in WAL entries, RPC
// bodies, and checkpoint rows). Each is a count-prefixed sequence of its
// element schema; empty sequences decode as nil so round-trips preserve
// gob's nil/empty convention.

// AppendVector appends a version vector (delegates to the vector's own
// encoding so vclock owns its wire shape).
func AppendVector(buf []byte, v vclock.Vector) []byte {
	return v.AppendBinary(buf)
}

// Vector decodes a version vector, reusing dst's capacity when possible.
func (r *Reader) Vector(dst vclock.Vector) vclock.Vector {
	n := r.Uvarint()
	if r.err != nil || n == 0 {
		return nil
	}
	if n > maxLen/8 {
		r.fail(ErrCorrupt)
		return nil
	}
	if uint64(cap(dst)) >= n {
		dst = dst[:n]
	} else {
		dst = make(vclock.Vector, n)
	}
	for i := range dst {
		dst[i] = r.Uvarint()
	}
	if r.err != nil {
		return nil
	}
	return dst
}

// AppendVectorDelta appends v delta-encoded against prev (see
// vclock.Vector.AppendDelta): same count prefix as AppendVector, zig-zag
// per-dimension diffs instead of absolute counters.
func AppendVectorDelta(buf []byte, prev, v vclock.Vector) []byte {
	return v.AppendDelta(buf, prev)
}

// VectorDelta decodes a delta-encoded vector against prev, reusing dst's
// capacity when possible. Diffs add to prev with two's-complement wrap, the
// exact inverse of AppendVectorDelta for every uint64 value.
func (r *Reader) VectorDelta(prev, dst vclock.Vector) vclock.Vector {
	n := r.Uvarint()
	if r.err != nil || n == 0 {
		return nil
	}
	if n > maxLen/8 {
		r.fail(ErrCorrupt)
		return nil
	}
	if uint64(cap(dst)) >= n {
		dst = dst[:n]
	} else {
		dst = make(vclock.Vector, n)
	}
	for i := range dst {
		var p uint64
		if i < len(prev) {
			p = prev[i]
		}
		dst[i] = p + uint64(r.Int())
	}
	if r.err != nil {
		return nil
	}
	return dst
}

// Vector delta-frame flags: the one-byte discriminator ahead of a
// maybe-delta vector. Full vectors are the fallback on first contact (no
// previous vector) or a dimensionality change; deltas carry diffs against
// the stream's previous vector.
const (
	vectorFull  = 0
	vectorDelta = 1
)

// AppendVectorMaybeDelta appends v either delta-encoded against prev (flag
// byte 1) or as a full vector (flag byte 0) when no usable previous vector
// exists — prev empty or of a different dimensionality. This is the frame
// shape of delta-vector streams (epoch replication frames): the flag makes
// each frame self-describing, so a receiver resynchronizes on any gap by
// the next full frame.
func AppendVectorMaybeDelta(buf []byte, prev, v vclock.Vector) []byte {
	if len(prev) != len(v) || len(v) == 0 {
		buf = append(buf, vectorFull)
		return v.AppendBinary(buf)
	}
	buf = append(buf, vectorDelta)
	return v.AppendDelta(buf, prev)
}

// VectorMaybeDelta decodes a frame appended by AppendVectorMaybeDelta,
// resolving deltas against prev.
func (r *Reader) VectorMaybeDelta(prev, dst vclock.Vector) vclock.Vector {
	if r.err != nil {
		return nil
	}
	if r.off >= len(r.data) {
		r.fail(ErrTruncated)
		return nil
	}
	flag := r.data[r.off]
	r.off++
	switch flag {
	case vectorFull:
		return r.Vector(dst)
	case vectorDelta:
		return r.VectorDelta(prev, dst)
	}
	r.fail(fmt.Errorf("%w: vector frame flag 0x%02x", ErrCorrupt, flag))
	return nil
}

// AppendRef appends one row reference.
func AppendRef(buf []byte, ref storage.RowRef) []byte {
	buf = AppendString(buf, ref.Table)
	return AppendUvarint(buf, ref.Key)
}

// Ref decodes one row reference.
func (r *Reader) Ref() storage.RowRef {
	return storage.RowRef{Table: r.String(), Key: r.Uvarint()}
}

// AppendRefs appends a row-reference list.
func AppendRefs(buf []byte, refs []storage.RowRef) []byte {
	buf = AppendUvarint(buf, uint64(len(refs)))
	for _, ref := range refs {
		buf = AppendRef(buf, ref)
	}
	return buf
}

// Refs decodes a row-reference list.
func (r *Reader) Refs() []storage.RowRef {
	n := r.Uvarint()
	if r.err != nil || n == 0 {
		return nil
	}
	if n > maxLen/2 {
		r.fail(ErrCorrupt)
		return nil
	}
	out := make([]storage.RowRef, n)
	for i := range out {
		out[i] = r.Ref()
		if r.err != nil {
			return nil
		}
	}
	return out
}

// AppendWrite appends one row mutation.
func AppendWrite(buf []byte, w storage.Write) []byte {
	buf = AppendRef(buf, w.Ref)
	buf = AppendBytes(buf, w.Data)
	return AppendBool(buf, w.Deleted)
}

// Write decodes one row mutation. Data is freshly allocated (it may escape
// into an MVCC version chain).
func (r *Reader) Write() storage.Write {
	return storage.Write{Ref: r.Ref(), Data: r.Bytes(), Deleted: r.Bool()}
}

// AppendWrites appends a write set.
func AppendWrites(buf []byte, ws []storage.Write) []byte {
	buf = AppendUvarint(buf, uint64(len(ws)))
	for i := range ws {
		buf = AppendWrite(buf, ws[i])
	}
	return buf
}

// Writes decodes a write set.
func (r *Reader) Writes() []storage.Write {
	n := r.Uvarint()
	if r.err != nil || n == 0 {
		return nil
	}
	if n > maxLen/4 {
		r.fail(ErrCorrupt)
		return nil
	}
	out := make([]storage.Write, n)
	for i := range out {
		out[i] = r.Write()
		if r.err != nil {
			return nil
		}
	}
	return out
}

// AppendKVs appends key/value rows (scan results, shipping payloads).
func AppendKVs(buf []byte, rows []storage.KV) []byte {
	buf = AppendUvarint(buf, uint64(len(rows)))
	for i := range rows {
		buf = AppendUvarint(buf, rows[i].Key)
		buf = AppendBytes(buf, rows[i].Value)
	}
	return buf
}

// KVs decodes key/value rows.
func (r *Reader) KVs() []storage.KV {
	n := r.Uvarint()
	if r.err != nil || n == 0 {
		return nil
	}
	if n > maxLen/2 {
		r.fail(ErrCorrupt)
		return nil
	}
	out := make([]storage.KV, n)
	for i := range out {
		out[i].Key = r.Uvarint()
		out[i].Value = r.Bytes()
		if r.err != nil {
			return nil
		}
	}
	return out
}

// AppendStamp appends an MVCC version stamp.
func AppendStamp(buf []byte, s storage.Stamp) []byte {
	buf = AppendInt(buf, int64(s.Origin))
	return AppendUvarint(buf, s.Seq)
}

// Stamp decodes an MVCC version stamp.
func (r *Reader) Stamp() storage.Stamp {
	return storage.Stamp{Origin: int(r.Int()), Seq: r.Uvarint()}
}

// AppendUint64s appends a count-prefixed uint64 list (partition ids,
// per-site counters).
func AppendUint64s(buf []byte, vs []uint64) []byte {
	buf = AppendUvarint(buf, uint64(len(vs)))
	for _, v := range vs {
		buf = AppendUvarint(buf, v)
	}
	return buf
}

// Uint64s decodes a count-prefixed uint64 list.
func (r *Reader) Uint64s() []uint64 {
	n := r.Uvarint()
	if r.err != nil || n == 0 {
		return nil
	}
	if n > maxLen/2 {
		r.fail(ErrCorrupt)
		return nil
	}
	out := make([]uint64, n)
	for i := range out {
		out[i] = r.Uvarint()
	}
	if r.err != nil {
		return nil
	}
	return out
}

// AppendTime appends a timestamp as UnixNano. The zero time travels as 0,
// which conflates it with the Unix epoch instant itself — no DynaMast
// timestamp is ever the epoch, and zero-ness (At unset) is what matters.
// Monotonic-clock readings and location are dropped, exactly as gob did.
func AppendTime(buf []byte, t time.Time) []byte {
	if t.IsZero() {
		return append(buf, 0)
	}
	return AppendInt(buf, t.UnixNano())
}

// Time decodes a timestamp appended by AppendTime.
func (r *Reader) Time() time.Time {
	ns := r.Int()
	if ns == 0 {
		return time.Time{}
	}
	return time.Unix(0, ns)
}
