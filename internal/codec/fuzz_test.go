package codec

import (
	"bytes"
	"testing"
	"time"

	"dynamast/internal/storage"
	"dynamast/internal/vclock"
)

// FuzzCodecRoundTrip builds a structured payload exercising every primitive
// and sub-schema from fuzzer-chosen values, encodes it, and requires the
// decode to reproduce it exactly and consume the payload fully.
func FuzzCodecRoundTrip(f *testing.F) {
	f.Add(uint64(0), int64(0), false, []byte(nil), "", uint64(1), int64(1), uint8(1))
	f.Add(uint64(1<<40), int64(-1), true, []byte("data"), "accounts", uint64(77), int64(time.Now().UnixNano()), uint8(3))
	f.Fuzz(func(t *testing.T, u uint64, i int64, b bool, data []byte, s string, key uint64, nanos int64, dims uint8) {
		vec := make(vclock.Vector, int(dims)%9)
		for k := range vec {
			vec[k] = u + uint64(k)
		}
		writes := []storage.Write{{Ref: storage.RowRef{Table: s, Key: key}, Data: data, Deleted: b}}
		at := time.Unix(0, nanos)

		buf := AppendHeader(nil, Version1)
		buf = AppendUvarint(buf, u)
		buf = AppendInt(buf, i)
		buf = AppendBool(buf, b)
		buf = AppendBytes(buf, data)
		buf = AppendString(buf, s)
		buf = AppendVector(buf, vec)
		buf = AppendWrites(buf, writes)
		buf = AppendStamp(buf, storage.Stamp{Origin: int(i % 1024), Seq: u})
		buf = AppendTime(buf, at)

		r := NewReader(buf)
		if got := r.Uvarint(); got != u {
			t.Fatalf("uvarint %d != %d", got, u)
		}
		if got := r.Int(); got != i {
			t.Fatalf("int %d != %d", got, i)
		}
		if got := r.Bool(); got != b {
			t.Fatalf("bool %v != %v", got, b)
		}
		gotData := r.Bytes()
		if len(gotData) != len(data) || (len(data) > 0 && !bytes.Equal(gotData, data)) {
			t.Fatalf("bytes %q != %q", gotData, data)
		}
		if got := r.String(); got != s {
			t.Fatalf("string %q != %q", got, s)
		}
		gotVec := r.Vector(nil)
		if !gotVec.Equal(vec) {
			t.Fatalf("vector %v != %v", gotVec, vec)
		}
		gotWrites := r.Writes()
		if len(gotWrites) != 1 || gotWrites[0].Ref != writes[0].Ref ||
			gotWrites[0].Deleted != writes[0].Deleted ||
			!bytes.Equal(gotWrites[0].Data, writes[0].Data) {
			t.Fatalf("writes %v != %v", gotWrites, writes)
		}
		if got := r.Stamp(); got != (storage.Stamp{Origin: int(i % 1024), Seq: u}) {
			t.Fatalf("stamp %v", got)
		}
		gotAt := r.Time()
		if nanos == 0 {
			if !gotAt.IsZero() {
				t.Fatalf("epoch nanos decoded as %v", gotAt)
			}
		} else if !gotAt.Equal(at) {
			t.Fatalf("time %v != %v", gotAt, at)
		}
		if err := r.Done(); err != nil {
			t.Fatalf("done: %v", err)
		}
	})
}

// FuzzReaderGarbage throws arbitrary bytes at every decoder; the only
// requirements are "no panic" and "errors are sticky" — garbage must never
// decode into an out-of-bounds access or infinite loop.
func FuzzReaderGarbage(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{Magic, Version1, 0x05, 0x01})
	f.Add(bytes.Repeat([]byte{0xff}, 64))
	f.Fuzz(func(t *testing.T, data []byte) {
		r := NewBodyReader(data)
		_ = r.Uvarint()
		_ = r.Int()
		_ = r.Bool()
		_ = r.Bytes()
		_ = r.String()
		_ = r.Vector(nil)
		_ = r.Refs()
		_ = r.Writes()
		_ = r.KVs()
		_ = r.Stamp()
		_ = r.Uint64s()
		_ = r.Time()
		_ = r.Done()
		// Header-checked variant as well.
		r2 := NewReader(data)
		_ = r2.Writes()
		_ = r2.Err()
	})
}
