package codec

import (
	"testing"

	"dynamast/internal/vclock"
)

// FuzzVClockDeltaRoundTrip checks the zig-zag delta encoding is a perfect
// inverse pair for every (prev, v) vector combination the fuzzer reaches —
// including dimension mismatches, zero vectors, and counter regressions
// (deltas are signed, so v < prev must survive too) — for both the raw
// delta frame and the flagged maybe-delta frame.
func FuzzVClockDeltaRoundTrip(f *testing.F) {
	f.Add(uint64(0), uint64(0), uint8(0), uint8(0))
	f.Add(uint64(5), uint64(3), uint8(4), uint8(4))
	f.Add(uint64(1<<50), uint64(7), uint8(8), uint8(3))
	f.Add(^uint64(0), uint64(1), uint8(2), uint8(6))
	f.Fuzz(func(t *testing.T, base, step uint64, prevDims, dims uint8) {
		prev := make(vclock.Vector, int(prevDims)%9)
		for k := range prev {
			prev[k] = base + uint64(k)*step
		}
		v := make(vclock.Vector, int(dims)%9)
		for k := range v {
			// Mix growth and regression so signed deltas are exercised.
			v[k] = base + step - uint64(k)*3
		}

		buf := AppendVectorDelta(AppendHeader(nil, Version1), prev, v)
		r := NewReader(buf)
		got := r.VectorDelta(prev, nil)
		if err := r.Done(); err != nil {
			t.Fatalf("delta decode: %v", err)
		}
		if !vclock.Vector(got).Equal(v) {
			t.Fatalf("delta round trip: got %v, want %v (prev %v)", got, v, prev)
		}

		mbuf := AppendVectorMaybeDelta(AppendHeader(nil, Version1), prev, v)
		mr := NewReader(mbuf)
		mgot := mr.VectorMaybeDelta(prev, nil)
		if err := mr.Done(); err != nil {
			t.Fatalf("maybe-delta decode: %v", err)
		}
		if !vclock.Vector(mgot).Equal(v) {
			t.Fatalf("maybe-delta round trip: got %v, want %v (prev %v)", mgot, v, prev)
		}
	})
}
