package codec

// Trace-context field codec. A sampled RPC frame carries its distributed
// trace context — trace id then span id, both uvarints — between the frame
// header fields and the body tail; unsampled frames carry nothing (the
// transport gates the field on a flags bit, keeping the unsampled encoding
// byte-identical to the pre-tracing wire format). The helpers take raw
// uint64s so this package stays dependency-free: the obs SpanContext type
// lives above codec in the import graph.

// AppendTraceContext appends a trace context (trace id, span id) to buf.
func AppendTraceContext(buf []byte, trace, span uint64) []byte {
	buf = AppendUvarint(buf, trace)
	return AppendUvarint(buf, span)
}

// TraceContext reads a trace context written by AppendTraceContext.
func (r *Reader) TraceContext() (trace, span uint64) {
	trace = r.Uvarint()
	span = r.Uvarint()
	return trace, span
}
