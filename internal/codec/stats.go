package codec

import (
	"sync/atomic"
	"time"

	"dynamast/internal/obs"
)

// Surface identifies which wire boundary an encode/decode served, so the
// codec's cost is attributable per subsystem (the WAL publish path, the RPC
// layer, checkpoint export/restore).
type Surface int

const (
	// SurfaceWAL is update-log append and replay.
	SurfaceWAL Surface = iota
	// SurfaceRPC is the networked request/response layer.
	SurfaceRPC
	// SurfaceCheckpoint is snapshot export and restore.
	SurfaceCheckpoint

	numSurfaces
)

// String names the surface.
func (s Surface) String() string {
	switch s {
	case SurfaceWAL:
		return "wal"
	case SurfaceRPC:
		return "rpc"
	case SurfaceCheckpoint:
		return "checkpoint"
	}
	return "unknown"
}

// surfaceStats is one surface's process-wide counters. Encode bytes/nanos
// quantify the serialization cost the codec removed from the hot paths;
// legacy counts how many gob-format frames the fallback reader decoded
// (non-zero exactly when recovering data a pre-codec build wrote).
type surfaceStats struct {
	encBytes atomic.Uint64
	encNanos atomic.Uint64
	decBytes atomic.Uint64
	decNanos atomic.Uint64
	legacy   atomic.Uint64
}

var stats [numSurfaces]surfaceStats

// RecordEncode charges one encode of n bytes taking d to surface s.
func RecordEncode(s Surface, n int, d time.Duration) {
	stats[s].encBytes.Add(uint64(n))
	stats[s].encNanos.Add(uint64(d))
}

// RecordDecode charges one decode of n bytes taking d to surface s.
func RecordDecode(s Surface, n int, d time.Duration) {
	stats[s].decBytes.Add(uint64(n))
	stats[s].decNanos.Add(uint64(d))
}

// RecordLegacy counts one legacy gob frame decoded on surface s.
func RecordLegacy(s Surface) { stats[s].legacy.Add(1) }

// LegacyFrames returns how many legacy gob frames surface s has decoded.
func LegacyFrames(s Surface) uint64 { return stats[s].legacy.Load() }

// EncodeStats returns surface s's cumulative encode bytes and time.
func EncodeStats(s Surface) (bytes uint64, d time.Duration) {
	return stats[s].encBytes.Load(), time.Duration(stats[s].encNanos.Load())
}

// DecodeStats returns surface s's cumulative decode bytes and time.
func DecodeStats(s Surface) (bytes uint64, d time.Duration) {
	return stats[s].decBytes.Load(), time.Duration(stats[s].decNanos.Load())
}

// Reset zeroes all codec counters (tests).
func Reset() {
	for i := range stats {
		stats[i] = surfaceStats{}
	}
}

// Instrument registers the codec's process-wide counters in reg:
// dynamast_codec_{encode,decode}_{bytes,nanos}_total and
// dynamast_codec_legacy_frames_total, each labelled by surface.
func Instrument(reg *obs.Registry) {
	if reg == nil {
		return
	}
	reg.Help("dynamast_codec_encode_bytes_total", "Bytes serialized by the binary codec, by wire surface.")
	reg.Help("dynamast_codec_encode_nanos_total", "Nanoseconds spent serializing, by wire surface.")
	reg.Help("dynamast_codec_decode_bytes_total", "Bytes deserialized by the binary codec, by wire surface.")
	reg.Help("dynamast_codec_decode_nanos_total", "Nanoseconds spent deserializing, by wire surface.")
	reg.Help("dynamast_codec_legacy_frames_total", "Legacy gob frames decoded by the fallback reader, by wire surface.")
	for i := Surface(0); i < numSurfaces; i++ {
		s := &stats[i]
		lbl := obs.L("surface", i.String())
		reg.Func("dynamast_codec_encode_bytes_total", obs.KindCounter,
			func() float64 { return float64(s.encBytes.Load()) }, lbl)
		reg.Func("dynamast_codec_encode_nanos_total", obs.KindCounter,
			func() float64 { return float64(s.encNanos.Load()) }, lbl)
		reg.Func("dynamast_codec_decode_bytes_total", obs.KindCounter,
			func() float64 { return float64(s.decBytes.Load()) }, lbl)
		reg.Func("dynamast_codec_decode_nanos_total", obs.KindCounter,
			func() float64 { return float64(s.decNanos.Load()) }, lbl)
		reg.Func("dynamast_codec_legacy_frames_total", obs.KindCounter,
			func() float64 { return float64(s.legacy.Load()) }, lbl)
	}
}
