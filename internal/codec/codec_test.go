package codec

import (
	"bytes"
	"encoding/gob"
	"math"
	"reflect"
	"testing"
	"time"
	"unsafe"

	"dynamast/internal/storage"
	"dynamast/internal/vclock"
)

func TestPrimitiveRoundTrip(t *testing.T) {
	buf := AppendHeader(nil, Version1)
	buf = AppendUvarint(buf, 0)
	buf = AppendUvarint(buf, math.MaxUint64)
	buf = AppendInt(buf, -1)
	buf = AppendInt(buf, math.MinInt64)
	buf = AppendInt(buf, math.MaxInt64)
	buf = AppendBool(buf, true)
	buf = AppendBool(buf, false)
	buf = AppendBytes(buf, []byte("payload"))
	buf = AppendBytes(buf, nil)
	buf = AppendString(buf, "accounts")
	buf = AppendString(buf, "")

	r := NewReader(buf)
	if got := r.Uvarint(); got != 0 {
		t.Fatalf("uvarint: %d", got)
	}
	if got := r.Uvarint(); got != math.MaxUint64 {
		t.Fatalf("uvarint max: %d", got)
	}
	if got := r.Int(); got != -1 {
		t.Fatalf("int: %d", got)
	}
	if got := r.Int(); got != math.MinInt64 {
		t.Fatalf("int min: %d", got)
	}
	if got := r.Int(); got != math.MaxInt64 {
		t.Fatalf("int max: %d", got)
	}
	if !r.Bool() || r.Bool() {
		t.Fatal("bool round trip")
	}
	if got := r.Bytes(); !bytes.Equal(got, []byte("payload")) {
		t.Fatalf("bytes: %q", got)
	}
	if got := r.Bytes(); got != nil {
		t.Fatalf("nil bytes decoded as %q", got)
	}
	if got := r.String(); got != "accounts" {
		t.Fatalf("string: %q", got)
	}
	if got := r.String(); got != "" {
		t.Fatalf("empty string: %q", got)
	}
	if err := r.Done(); err != nil {
		t.Fatalf("done: %v", err)
	}
}

func TestDecodedBytesDoNotAliasWire(t *testing.T) {
	wire := AppendHeader(nil, Version1)
	wire = AppendBytes(wire, []byte{1, 2, 3})
	r := NewReader(wire)
	got := r.Bytes()
	wire[len(wire)-1] = 99 // mutate the wire buffer after decode
	if got[2] != 3 {
		t.Fatal("decoded bytes alias the wire buffer")
	}
}

func TestSubSchemaRoundTrip(t *testing.T) {
	vec := vclock.Vector{4, 0, 9, math.MaxUint64}
	refs := []storage.RowRef{{Table: "a", Key: 1}, {Table: "b", Key: math.MaxUint64}}
	writes := []storage.Write{
		{Ref: storage.RowRef{Table: "t", Key: 7}, Data: []byte("v"), Deleted: false},
		{Ref: storage.RowRef{Table: "t", Key: 8}, Data: nil, Deleted: true},
	}
	kvs := []storage.KV{{Key: 3, Value: []byte("x")}, {Key: 4, Value: nil}}
	stamp := storage.Stamp{Origin: 2, Seq: 55}
	parts := []uint64{1, 1 << 40, 0}
	at := time.Now()

	buf := AppendHeader(nil, Version1)
	buf = AppendVector(buf, vec)
	buf = AppendRefs(buf, refs)
	buf = AppendWrites(buf, writes)
	buf = AppendKVs(buf, kvs)
	buf = AppendStamp(buf, stamp)
	buf = AppendUint64s(buf, parts)
	buf = AppendTime(buf, at)
	buf = AppendTime(buf, time.Time{})

	r := NewReader(buf)
	if got := r.Vector(nil); !got.Equal(vec) {
		t.Fatalf("vector: %v", got)
	}
	if got := r.Refs(); !reflect.DeepEqual(got, refs) {
		t.Fatalf("refs: %v", got)
	}
	if got := r.Writes(); !reflect.DeepEqual(got, writes) {
		t.Fatalf("writes: %v", got)
	}
	if got := r.KVs(); !reflect.DeepEqual(got, kvs) {
		t.Fatalf("kvs: %v", got)
	}
	if got := r.Stamp(); got != stamp {
		t.Fatalf("stamp: %v", got)
	}
	if got := r.Uint64s(); !reflect.DeepEqual(got, parts) {
		t.Fatalf("uint64s: %v", got)
	}
	if got := r.Time(); !got.Equal(at) {
		t.Fatalf("time: %v != %v", got, at)
	}
	if got := r.Time(); !got.IsZero() {
		t.Fatalf("zero time: %v", got)
	}
	if err := r.Done(); err != nil {
		t.Fatalf("done: %v", err)
	}
}

func TestVectorDecodeReusesCapacity(t *testing.T) {
	vec := vclock.Vector{1, 2, 3}
	buf := AppendVector(nil, vec)
	scratch := make(vclock.Vector, 0, 8)
	r := NewBodyReader(buf)
	got := r.Vector(scratch)
	if !got.Equal(vec) {
		t.Fatalf("vector: %v", got)
	}
	if &got[0] != &scratch[:1][0] {
		t.Fatal("decode did not reuse caller capacity")
	}
}

func TestHeaderRejections(t *testing.T) {
	if _, err := CheckHeader(nil); err == nil {
		t.Fatal("empty payload accepted")
	}
	if _, err := CheckHeader([]byte{0x17, Version1}); err == nil {
		t.Fatal("bad magic accepted")
	}
	if _, err := CheckHeader([]byte{Magic, 0x7f}); err == nil {
		t.Fatal("unknown version accepted")
	}
	if body, err := CheckHeader([]byte{Magic, Version1, 42}); err != nil || len(body) != 1 {
		t.Fatalf("valid header rejected: %v %v", body, err)
	}
}

func TestReaderStickyErrors(t *testing.T) {
	// Truncated varint.
	r := NewBodyReader([]byte{0x80})
	if r.Uvarint() != 0 || r.Err() == nil {
		t.Fatal("truncated varint not detected")
	}
	// All later reads are zero-valued, no panic.
	if r.String() != "" || r.Bytes() != nil || r.Bool() {
		t.Fatal("post-error reads not sticky-zero")
	}

	// Length prefix larger than the payload.
	r = NewBodyReader(AppendUvarint(nil, 1<<30))
	if r.Bytes() != nil || r.Err() == nil {
		t.Fatal("oversized length not detected")
	}

	// Trailing garbage.
	r = NewBodyReader([]byte{0x01, 0xff})
	_ = r.Uvarint()
	if err := r.Done(); err == nil {
		t.Fatal("trailing bytes not detected")
	}

	// Bad bool byte.
	r = NewBodyReader([]byte{0x02})
	if r.Bool() || r.Err() == nil {
		t.Fatal("bool byte 2 accepted")
	}
}

func TestStringInterning(t *testing.T) {
	buf := AppendString(nil, "accounts")
	buf = AppendString(buf, "accounts")
	r := NewBodyReader(buf)
	r.SetIntern(make(map[string]string))
	a, b := r.String(), r.String()
	if a != "accounts" || b != "accounts" {
		t.Fatalf("interned strings: %q %q", a, b)
	}
	if unsafe.StringData(a) != unsafe.StringData(b) {
		t.Fatal("interning did not deduplicate backing arrays")
	}
}

func TestGobNeverStartsWithMagic(t *testing.T) {
	// The format discriminator relies on self-contained gob streams never
	// beginning with byte 0x00; prove it for a representative payload.
	var sink bytes.Buffer
	type entry struct {
		A uint64
		B string
	}
	if err := gob.NewEncoder(&sink).Encode(&entry{A: 1, B: "x"}); err != nil {
		t.Fatal(err)
	}
	if sink.Bytes()[0] == Magic {
		t.Fatal("gob payload starts with the binary magic byte")
	}
}

func TestBufPool(t *testing.T) {
	b := GetBuf()
	*b = append(*b, 1, 2, 3)
	PutBuf(b)
	c := GetBuf()
	if len(*c) != 0 {
		t.Fatal("pooled buffer not reset")
	}
	PutBuf(c)
	PutBuf(nil) // must not panic
}

func TestStatsAccumulate(t *testing.T) {
	Reset()
	RecordEncode(SurfaceWAL, 100, 5*time.Nanosecond)
	RecordEncode(SurfaceWAL, 50, 5*time.Nanosecond)
	RecordDecode(SurfaceRPC, 7, time.Nanosecond)
	RecordLegacy(SurfaceCheckpoint)
	if b, d := EncodeStats(SurfaceWAL); b != 150 || d != 10*time.Nanosecond {
		t.Fatalf("encode stats: %d %v", b, d)
	}
	if b, _ := DecodeStats(SurfaceRPC); b != 7 {
		t.Fatalf("decode stats: %d", b)
	}
	if LegacyFrames(SurfaceCheckpoint) != 1 {
		t.Fatal("legacy counter")
	}
	Reset()
}
