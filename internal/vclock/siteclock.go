package vclock

import (
	"sync"
)

// SiteClock is an internally synchronized site version vector with waiters.
// Data sites use it as svv_i: local commits advance the site's own
// dimension, refresh application advances remote dimensions, and
// transactions block on WaitDominatesEq until session-freshness or grant
// preconditions hold.
type SiteClock struct {
	mu          sync.Mutex
	cond        *sync.Cond
	site        int
	vv          Vector
	interrupted bool
}

// NewSiteClock returns a clock for site index site in an m-site system.
func NewSiteClock(site, m int) *SiteClock {
	c := &SiteClock{site: site, vv: New(m)}
	c.cond = sync.NewCond(&c.mu)
	return c
}

// Site returns the owning site's index.
func (c *SiteClock) Site() int { return c.site }

// Now returns a snapshot copy of the current vector.
func (c *SiteClock) Now() Vector {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.vv.Clone()
}

// TickLocal atomically increments the site's own dimension and returns the
// resulting vector; the returned vector is the committing transaction's
// commit timestamp basis (tvv[i] = returned[i]).
func (c *SiteClock) TickLocal() Vector {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.vv[c.site]++
	out := c.vv.Clone()
	c.cond.Broadcast()
	return out
}

// Advance sets dimension k to seq if seq is greater than the current value
// and wakes waiters. Refresh application uses it to publish remote commits.
func (c *SiteClock) Advance(k int, seq uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if k < len(c.vv) && c.vv[k] < seq {
		c.vv[k] = seq
		c.cond.Broadcast()
	}
}

// Get returns dimension k of the current vector.
func (c *SiteClock) Get(k int) uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	if k >= len(c.vv) {
		return 0
	}
	return c.vv[k]
}

// WaitDominatesEq blocks until the clock dominates min elementwise, then
// returns a snapshot of the clock. It implements both the SSSI freshness
// rule (svv >= cvv) and the grant rule (destination has applied the
// releasing site's updates to the release point).
func (c *SiteClock) WaitDominatesEq(min Vector) Vector {
	c.mu.Lock()
	defer c.mu.Unlock()
	for !c.interrupted && !c.vv.DominatesEq(min) {
		c.cond.Wait()
	}
	return c.vv.Clone()
}

// WaitDimAtLeast blocks until dimension k reaches at least seq and returns a
// snapshot. The refresh applier uses it to wait for the predecessor
// transaction from the same origin.
func (c *SiteClock) WaitDimAtLeast(k int, seq uint64) Vector {
	c.mu.Lock()
	defer c.mu.Unlock()
	for !c.interrupted && k < len(c.vv) && c.vv[k] < seq {
		c.cond.Wait()
	}
	return c.vv.Clone()
}

// Interrupt wakes every waiter and makes all future waits return
// immediately with the current vector. Sites call it on shutdown: an
// applier blocked on a causal dependency whose producer applier has already
// exited would otherwise deadlock Stop. Callers must re-check their stop
// condition after a wait returns.
func (c *SiteClock) Interrupt() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.interrupted = true
	c.cond.Broadcast()
}
