// Package vclock implements the version-vector algebra that DynaMast uses to
// order transactions across sites.
//
// A replicated system with m sites tracks three kinds of m-dimensional
// vectors of counters:
//
//   - site version vectors (svv): svv[j] is the number of update
//     transactions originating at site j whose effects site i has applied
//     (locally committed transactions for j == i, refresh transactions
//     otherwise);
//   - transaction version vectors (tvv): a transaction's begin timestamp is
//     the executing site's svv at begin, and its commit timestamp is the
//     begin vector with the executing site's own dimension advanced to the
//     transaction's local commit sequence number;
//   - client version vectors (cvv): the freshest state a client session has
//     observed, used to enforce strong-session snapshot isolation.
//
// All three are represented by the Vector type.
package vclock

import (
	"encoding/binary"
	"fmt"
	"strings"
)

// Vector is an m-dimensional version vector. Index j counts committed update
// transactions that originated at site j. The zero-length Vector is a valid
// empty vector.
//
// Vector values are not safe for concurrent mutation; callers synchronize
// externally (see SiteClock for an internally synchronized site vector).
type Vector []uint64

// New returns a zeroed vector for a system of m sites.
func New(m int) Vector {
	return make(Vector, m)
}

// Clone returns a copy of v that shares no storage with v.
func (v Vector) Clone() Vector {
	if v == nil {
		return nil
	}
	c := make(Vector, len(v))
	copy(c, v)
	return c
}

// Len returns the dimensionality of v.
func (v Vector) Len() int { return len(v) }

// DominatesEq reports whether v[k] >= o[k] for every dimension k.
// Vectors of different lengths are compared over the shorter length, with
// missing trailing dimensions of either side treated as zero.
func (v Vector) DominatesEq(o Vector) bool {
	for k := range o {
		var vk uint64
		if k < len(v) {
			vk = v[k]
		}
		if vk < o[k] {
			return false
		}
	}
	return true
}

// Equal reports whether v and o agree in every dimension, treating missing
// trailing dimensions as zero.
func (v Vector) Equal(o Vector) bool {
	n := len(v)
	if len(o) > n {
		n = len(o)
	}
	for k := 0; k < n; k++ {
		var vk, ok uint64
		if k < len(v) {
			vk = v[k]
		}
		if k < len(o) {
			ok = o[k]
		}
		if vk != ok {
			return false
		}
	}
	return true
}

// Less reports whether v < o in every dimension (the strict ordering used by
// the paper's proofs: v[k] < o[k] for all k).
func (v Vector) Less(o Vector) bool {
	if len(o) == 0 {
		return false
	}
	for k := range o {
		var vk uint64
		if k < len(v) {
			vk = v[k]
		}
		if vk >= o[k] {
			return false
		}
	}
	return true
}

// MaxInto sets v[k] = max(v[k], o[k]) for every dimension, growing v if o is
// longer, and returns the (possibly reallocated) result. The elementwise max
// of release/grant vectors gives the minimum version a remastered
// transaction must observe (Algorithm 1, line 9).
func (v Vector) MaxInto(o Vector) Vector {
	if len(o) > len(v) {
		g := make(Vector, len(o))
		copy(g, v)
		v = g
	}
	for k := range o {
		if o[k] > v[k] {
			v[k] = o[k]
		}
	}
	return v
}

// Max returns the elementwise maximum of a and b as a new vector.
func Max(a, b Vector) Vector {
	return a.Clone().MaxInto(b)
}

// LagBehind returns the L1 distance max(0, o[k]-v[k]) summed over k: the
// number of refresh transactions v must still apply to dominate o. It is the
// quantity inside Equation 5's f_refresh_delay.
func (v Vector) LagBehind(o Vector) uint64 {
	var lag uint64
	for k := range o {
		var vk uint64
		if k < len(v) {
			vk = v[k]
		}
		if o[k] > vk {
			lag += o[k] - vk
		}
	}
	return lag
}

// Sum returns the total number of transactions reflected in v.
func (v Vector) Sum() uint64 {
	var s uint64
	for _, x := range v {
		s += x
	}
	return s
}

// CanApply reports whether a site with state svv may apply a refresh
// transaction with commit vector tvv originating at site origin, per the
// paper's update application rule (Equation 1):
//
//	svv[k] >= tvv[k] for all k != origin, and svv[origin] == tvv[origin]-1.
//
// The rule guarantees a refresh transaction is applied only after every
// transaction it depends on has been applied, and in per-origin commit
// order.
func CanApply(svv, tvv Vector, origin int) bool {
	if origin < 0 || origin >= len(tvv) {
		return false
	}
	for k := range tvv {
		var sk uint64
		if k < len(svv) {
			sk = svv[k]
		}
		if k == origin {
			if tvv[k] == 0 || sk != tvv[k]-1 {
				return false
			}
			continue
		}
		if sk < tvv[k] {
			return false
		}
	}
	return true
}

// CanApplyEpoch is the epoch-granular form of CanApply: it reports whether a
// site with state svv may apply a sealed epoch from origin whose first member
// carries local commit sequence firstSeq and whose closing commit vector
// (the element-wise max of the members' tvvs, with the origin dimension at
// the last member's sequence) is closing:
//
//	svv[k] >= closing[k] for all k != origin, and svv[origin] == firstSeq-1.
//
// Checking the closing vector once is sufficient for the whole epoch: a
// member's cross-origin dependencies always reference sealed epoch
// boundaries at the other sites (an unsealed commit is invisible to remote
// snapshots), so every member's dependency vector is dominated by closing.
func CanApplyEpoch(svv, closing Vector, origin int, firstSeq uint64) bool {
	if origin < 0 || origin >= len(closing) || firstSeq == 0 {
		return false
	}
	for k := range closing {
		var sk uint64
		if k < len(svv) {
			sk = svv[k]
		}
		if k == origin {
			if sk != firstSeq-1 {
				return false
			}
			continue
		}
		if sk < closing[k] {
			return false
		}
	}
	return true
}

// AppendBinary appends v's wire encoding — a uvarint dimension count
// followed by one uvarint per dimension — to buf and returns the extended
// slice. This is the vector's shape on every binary wire surface (WAL
// entries, RPC bodies, checkpoint manifolds); decoding lives with the
// codec's Reader, which reuses caller capacity.
func (v Vector) AppendBinary(buf []byte) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(v)))
	for _, x := range v {
		buf = binary.AppendUvarint(buf, x)
	}
	return buf
}

// AppendDelta appends v's delta encoding against prev — a uvarint dimension
// count followed by one zig-zag varint per dimension holding v[k]-prev[k]
// (two's-complement wrap; missing trailing dimensions of prev read as zero).
// Vectors in a refresh stream differ from their predecessor in one or two
// dimensions by small amounts, so deltas collapse O(sites) multi-byte
// counters to single-byte zeros; decoding lives with the codec's Reader
// (Reader.VectorDelta), mirroring AppendBinary.
func (v Vector) AppendDelta(buf []byte, prev Vector) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(v)))
	for k, x := range v {
		var p uint64
		if k < len(prev) {
			p = prev[k]
		}
		d := int64(x - p)
		buf = binary.AppendUvarint(buf, uint64(d)<<1^uint64(d>>63))
	}
	return buf
}

// String renders v as "[a b c]".
func (v Vector) String() string {
	var b strings.Builder
	b.WriteByte('[')
	for k, x := range v {
		if k > 0 {
			b.WriteByte(' ')
		}
		fmt.Fprintf(&b, "%d", x)
	}
	b.WriteByte(']')
	return b.String()
}
