package vclock

import "testing"

func BenchmarkDominatesEq(b *testing.B) {
	a := Vector{5, 7, 2, 9, 1, 3, 8, 4}
	o := Vector{4, 7, 1, 9, 0, 3, 8, 4}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if !a.DominatesEq(o) {
			b.Fatal("unexpected")
		}
	}
}

func BenchmarkMaxInto(b *testing.B) {
	a := Vector{5, 7, 2, 9, 1, 3, 8, 4}
	o := Vector{4, 8, 1, 9, 0, 5, 8, 4}
	buf := a.Clone()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		copy(buf, a)
		buf = buf.MaxInto(o)
	}
}

func BenchmarkCanApply(b *testing.B) {
	svv := Vector{10, 20, 30, 40}
	tvv := Vector{5, 21, 30, 12}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if !CanApply(svv, tvv, 1) {
			b.Fatal("rule rejected")
		}
	}
}

func BenchmarkSiteClockTick(b *testing.B) {
	c := NewSiteClock(0, 8)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.TickLocal()
	}
}
