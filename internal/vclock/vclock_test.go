package vclock

import (
	"math/rand"
	"sync"
	"testing"
	"testing/quick"
	"time"
)

func TestNewZeroed(t *testing.T) {
	v := New(4)
	if v.Len() != 4 {
		t.Fatalf("Len = %d, want 4", v.Len())
	}
	for k, x := range v {
		if x != 0 {
			t.Fatalf("v[%d] = %d, want 0", k, x)
		}
	}
}

func TestCloneIndependence(t *testing.T) {
	v := Vector{1, 2, 3}
	c := v.Clone()
	c[0] = 99
	if v[0] != 1 {
		t.Fatalf("Clone shares storage: v[0] = %d", v[0])
	}
	if Vector(nil).Clone() != nil {
		t.Fatal("Clone(nil) should be nil")
	}
}

func TestDominatesEq(t *testing.T) {
	cases := []struct {
		a, b Vector
		want bool
	}{
		{Vector{1, 2, 3}, Vector{1, 2, 3}, true},
		{Vector{2, 2, 3}, Vector{1, 2, 3}, true},
		{Vector{0, 2, 3}, Vector{1, 2, 3}, false},
		{Vector{}, Vector{}, true},
		{Vector{}, Vector{0, 0}, true},
		{Vector{}, Vector{1}, false},
		{Vector{5}, Vector{}, true},
		{Vector{1, 0}, Vector{1}, true},
	}
	for i, c := range cases {
		if got := c.a.DominatesEq(c.b); got != c.want {
			t.Errorf("case %d: %v.DominatesEq(%v) = %v, want %v", i, c.a, c.b, got, c.want)
		}
	}
}

func TestEqual(t *testing.T) {
	if !(Vector{1, 2}).Equal(Vector{1, 2, 0}) {
		t.Error("trailing zeros should compare equal")
	}
	if (Vector{1, 2}).Equal(Vector{1, 2, 1}) {
		t.Error("distinct vectors compared equal")
	}
	if !(Vector{}).Equal(nil) {
		t.Error("empty and nil should be equal")
	}
}

func TestLess(t *testing.T) {
	if !(Vector{0, 0}).Less(Vector{1, 1}) {
		t.Error("strictly smaller vector not Less")
	}
	if (Vector{0, 1}).Less(Vector{1, 1}) {
		t.Error("Less must be strict in every dimension")
	}
	if (Vector{1, 1}).Less(Vector{1, 1}) {
		t.Error("equal vectors are not Less")
	}
	if (Vector{}).Less(Vector{}) {
		t.Error("empty Less empty must be false")
	}
}

func TestMaxInto(t *testing.T) {
	v := Vector{1, 5, 0}
	v = v.MaxInto(Vector{3, 2, 0, 7})
	want := Vector{3, 5, 0, 7}
	if !v.Equal(want) {
		t.Fatalf("MaxInto = %v, want %v", v, want)
	}
}

func TestMaxDoesNotMutate(t *testing.T) {
	a := Vector{1, 2}
	b := Vector{2, 1}
	m := Max(a, b)
	if !m.Equal(Vector{2, 2}) {
		t.Fatalf("Max = %v", m)
	}
	if !a.Equal(Vector{1, 2}) || !b.Equal(Vector{2, 1}) {
		t.Fatal("Max mutated its arguments")
	}
}

func TestLagBehind(t *testing.T) {
	if lag := (Vector{1, 1}).LagBehind(Vector{3, 0, 2}); lag != 4 {
		t.Fatalf("LagBehind = %d, want 4", lag)
	}
	if lag := (Vector{5, 5}).LagBehind(Vector{1, 1}); lag != 0 {
		t.Fatalf("LagBehind when ahead = %d, want 0", lag)
	}
}

func TestSum(t *testing.T) {
	if s := (Vector{1, 2, 3}).Sum(); s != 6 {
		t.Fatalf("Sum = %d, want 6", s)
	}
}

func TestCanApply(t *testing.T) {
	// Replica has applied nothing; first transaction from site 0 applies.
	if !CanApply(Vector{0, 0, 0}, Vector{1, 0, 0}, 0) {
		t.Error("first txn from origin should apply")
	}
	// Gap in origin sequence: seq 2 cannot apply before seq 1.
	if CanApply(Vector{0, 0, 0}, Vector{2, 0, 0}, 0) {
		t.Error("out-of-order origin txn applied")
	}
	// Dependency on another site not yet satisfied (the paper's Fig. 2
	// example: R(T2) from site 3 blocks at site 2 until R(T1) applies).
	if CanApply(Vector{0, 0, 0}, Vector{1, 0, 1}, 2) {
		t.Error("applied refresh before its dependency")
	}
	if !CanApply(Vector{1, 0, 0}, Vector{1, 0, 1}, 2) {
		t.Error("refresh with satisfied dependency rejected")
	}
	// Already applied (svv[origin] == tvv[origin]) must not re-apply.
	if CanApply(Vector{1, 0, 1}, Vector{1, 0, 1}, 2) {
		t.Error("refresh re-applied")
	}
	// Invalid origin index.
	if CanApply(Vector{1}, Vector{1}, 5) {
		t.Error("out-of-range origin accepted")
	}
	// tvv[origin] == 0 is never applicable (commit seqs start at 1).
	if CanApply(Vector{0}, Vector{0}, 0) {
		t.Error("zero commit seq accepted")
	}
}

func TestStringFormat(t *testing.T) {
	if s := (Vector{1, 0, 7}).String(); s != "[1 0 7]" {
		t.Fatalf("String = %q", s)
	}
	if s := (Vector{}).String(); s != "[]" {
		t.Fatalf("String empty = %q", s)
	}
}

// Property: Max(a,b) dominates both a and b, and is the least such vector
// (every dimension equals one of the inputs).
func TestQuickMaxIsLeastUpperBound(t *testing.T) {
	f := func(a, b []uint8) bool {
		va := make(Vector, len(a))
		vb := make(Vector, len(b))
		for i, x := range a {
			va[i] = uint64(x)
		}
		for i, x := range b {
			vb[i] = uint64(x)
		}
		m := Max(va, vb)
		if !m.DominatesEq(va) || !m.DominatesEq(vb) {
			return false
		}
		for k := range m {
			var ak, bk uint64
			if k < len(va) {
				ak = va[k]
			}
			if k < len(vb) {
				bk = vb[k]
			}
			if m[k] != ak && m[k] != bk {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: DominatesEq is a partial order — reflexive, antisymmetric (up to
// Equal), transitive on random triples.
func TestQuickDominatesPartialOrder(t *testing.T) {
	rnd := rand.New(rand.NewSource(42))
	gen := func() Vector {
		v := New(4)
		for k := range v {
			v[k] = uint64(rnd.Intn(4))
		}
		return v
	}
	for i := 0; i < 2000; i++ {
		a, b, c := gen(), gen(), gen()
		if !a.DominatesEq(a) {
			t.Fatal("not reflexive")
		}
		if a.DominatesEq(b) && b.DominatesEq(a) && !a.Equal(b) {
			t.Fatalf("antisymmetry violated: %v %v", a, b)
		}
		if a.DominatesEq(b) && b.DominatesEq(c) && !a.DominatesEq(c) {
			t.Fatalf("transitivity violated: %v %v %v", a, b, c)
		}
	}
}

// Property: CanApply admits exactly one next transaction per origin given a
// state, and applying in rule order reaches the same final vector regardless
// of interleaving.
func TestQuickCanApplyConvergence(t *testing.T) {
	const m = 3
	rnd := rand.New(rand.NewSource(7))
	for trial := 0; trial < 200; trial++ {
		// Build a random but causally consistent history: each site commits
		// transactions in sequence, each begin vector dominated by current.
		type txn struct {
			tvv    Vector
			origin int
		}
		clocks := New(m)
		var history []txn
		for i := 0; i < 12; i++ {
			origin := rnd.Intn(m)
			begin := clocks.Clone()
			// Randomly forget some remote progress (lazy replication).
			for k := range begin {
				if k != origin && begin[k] > 0 {
					begin[k] -= uint64(rnd.Intn(int(begin[k]) + 1))
				}
			}
			clocks[origin]++
			tvv := begin
			tvv[origin] = clocks[origin]
			history = append(history, txn{tvv, origin})
		}
		// Apply at a replica in random retry order until fixpoint.
		svv := New(m)
		pending := append([]txn(nil), history...)
		for len(pending) > 0 {
			progressed := false
			rnd.Shuffle(len(pending), func(i, j int) { pending[i], pending[j] = pending[j], pending[i] })
			var next []txn
			for _, tx := range pending {
				if CanApply(svv, tx.tvv, tx.origin) {
					svv[tx.origin] = tx.tvv[tx.origin]
					progressed = true
				} else {
					next = append(next, tx)
				}
			}
			pending = next
			if !progressed {
				t.Fatalf("stuck: svv=%v pending=%d", svv, len(pending))
			}
		}
		if !svv.Equal(clocks) {
			t.Fatalf("replica converged to %v, want %v", svv, clocks)
		}
	}
}

func TestSiteClockTickLocal(t *testing.T) {
	c := NewSiteClock(1, 3)
	v := c.TickLocal()
	if !v.Equal(Vector{0, 1, 0}) {
		t.Fatalf("TickLocal = %v", v)
	}
	v = c.TickLocal()
	if !v.Equal(Vector{0, 2, 0}) {
		t.Fatalf("second TickLocal = %v", v)
	}
	if c.Get(1) != 2 {
		t.Fatalf("Get(1) = %d", c.Get(1))
	}
}

func TestSiteClockAdvanceMonotone(t *testing.T) {
	c := NewSiteClock(0, 2)
	c.Advance(1, 5)
	c.Advance(1, 3) // must not regress
	if got := c.Get(1); got != 5 {
		t.Fatalf("Get(1) = %d, want 5", got)
	}
	c.Advance(9, 1) // out of range: ignored
	if !c.Now().Equal(Vector{0, 5}) {
		t.Fatalf("Now = %v", c.Now())
	}
}

func TestSiteClockWaitDominatesEq(t *testing.T) {
	c := NewSiteClock(0, 2)
	done := make(chan Vector, 1)
	go func() { done <- c.WaitDominatesEq(Vector{1, 2}) }()
	select {
	case <-done:
		t.Fatal("wait returned before clock advanced")
	case <-time.After(10 * time.Millisecond):
	}
	c.TickLocal()
	c.Advance(1, 2)
	select {
	case v := <-done:
		if !v.DominatesEq(Vector{1, 2}) {
			t.Fatalf("woke with %v", v)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("wait never woke")
	}
}

func TestSiteClockWaitDimAtLeast(t *testing.T) {
	c := NewSiteClock(0, 2)
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		v := c.WaitDimAtLeast(1, 3)
		if v[1] < 3 {
			panic("woke early")
		}
	}()
	for s := uint64(1); s <= 3; s++ {
		c.Advance(1, s)
	}
	wg.Wait()
}

func TestSiteClockConcurrentTicks(t *testing.T) {
	c := NewSiteClock(0, 1)
	const n = 50
	var wg sync.WaitGroup
	seen := make(chan uint64, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			seen <- c.TickLocal()[0]
		}()
	}
	wg.Wait()
	close(seen)
	got := map[uint64]bool{}
	for s := range seen {
		if got[s] {
			t.Fatalf("duplicate commit seq %d", s)
		}
		got[s] = true
	}
	if c.Get(0) != n {
		t.Fatalf("final seq %d, want %d", c.Get(0), n)
	}
}
