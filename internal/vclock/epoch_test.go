package vclock

import (
	"encoding/binary"
	"testing"
)

func TestCanApplyEpoch(t *testing.T) {
	// Replica at svv waits on an epoch of 3 members (seqs 4..6) from
	// origin 0 whose closing vector also depends on site 2's seq 2.
	closing := Vector{6, 0, 2}

	// Exactly the previous origin seq applied, dependency satisfied.
	if !CanApplyEpoch(Vector{3, 0, 2}, closing, 0, 4) {
		t.Error("applicable epoch rejected")
	}
	// Gap in the origin sequence: firstSeq 4 needs svv[origin] == 3.
	if CanApplyEpoch(Vector{2, 0, 2}, closing, 0, 4) {
		t.Error("epoch applied over an origin-sequence gap")
	}
	// Origin ahead (epoch already applied) must not re-apply.
	if CanApplyEpoch(Vector{6, 0, 2}, closing, 0, 4) {
		t.Error("epoch re-applied")
	}
	// Cross-origin dependency unsatisfied: closing[2] = 2 > svv[2].
	if CanApplyEpoch(Vector{3, 0, 1}, closing, 0, 4) {
		t.Error("epoch applied before its cross-origin dependency")
	}
	// The origin dimension of closing itself is not a dependency: a
	// replica never needs svv[origin] to reach closing[origin] first.
	if !CanApplyEpoch(Vector{3, 5, 2}, closing, 0, 4) {
		t.Error("closing origin dimension treated as a dependency")
	}
	// Shorter svv reads missing dimensions as zero.
	if CanApplyEpoch(Vector{3}, closing, 0, 4) {
		t.Error("missing dependency dimension accepted")
	}
	if !CanApplyEpoch(Vector{3, 0, 2}, Vector{6, 0, 0}, 0, 4) {
		t.Error("longer svv rejected an applicable epoch")
	}
	// Single-member epoch degenerates to CanApply.
	if got, want := CanApplyEpoch(Vector{3, 0, 2}, Vector{4, 0, 2}, 0, 4),
		CanApply(Vector{3, 0, 2}, Vector{4, 0, 2}, 0); got != want {
		t.Errorf("single-member epoch = %v, CanApply = %v", got, want)
	}
	// Invalid parameters.
	if CanApplyEpoch(Vector{3, 0, 2}, closing, 5, 4) {
		t.Error("out-of-range origin accepted")
	}
	if CanApplyEpoch(Vector{0, 0, 0}, closing, 0, 0) {
		t.Error("zero firstSeq accepted (commit seqs start at 1)")
	}
}

// TestAppendDeltaEncoding checks the wire shape directly: near-identical
// vectors collapse to one byte per dimension, and regressions survive via
// the signed zig-zag wrap.
func TestAppendDeltaEncoding(t *testing.T) {
	prev := Vector{1 << 40, 1 << 40, 1 << 40}
	v := Vector{1<<40 + 1, 1 << 40, 1 << 40}
	buf := v.AppendDelta(nil, prev)
	// Count byte + three single-byte deltas (+1, 0, 0).
	if len(buf) != 4 {
		t.Fatalf("delta of near-identical vectors = %d bytes, want 4 (%x)", len(buf), buf)
	}

	decode := func(buf []byte, prev Vector) Vector {
		n, off := binary.Uvarint(buf)
		out := make(Vector, n)
		for k := range out {
			d, w := binary.Uvarint(buf[off:])
			off += w
			s := int64(d>>1) ^ -int64(d&1)
			var p uint64
			if k < len(prev) {
				p = prev[k]
			}
			out[k] = p + uint64(s)
		}
		if off != len(buf) {
			t.Fatalf("delta encoding left %d trailing bytes", len(buf)-off)
		}
		return out
	}
	if got := decode(buf, prev); !got.Equal(v) {
		t.Fatalf("decode = %v, want %v", got, v)
	}

	// Regression: v < prev in one dimension.
	down := Vector{1<<40 - 7, 1 << 40, 1 << 40}
	if got := decode(down.AppendDelta(nil, prev), prev); !got.Equal(down) {
		t.Fatalf("regressed delta decode = %v, want %v", got, down)
	}

	// Missing trailing prev dimensions read as zero.
	short := Vector{5}
	grown := Vector{6, 3}
	if got := decode(grown.AppendDelta(nil, short), short); !got.Equal(grown) {
		t.Fatalf("grown delta decode = %v, want %v", got, grown)
	}
}
