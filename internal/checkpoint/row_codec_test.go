package checkpoint

import (
	"path/filepath"
	"reflect"
	"testing"

	"dynamast/internal/codec"
	"dynamast/internal/storage"
)

func testRows() []Row {
	return []Row{
		{Table: "accounts", Key: 1, Data: []byte("alice"), Stamp: storage.Stamp{Origin: 0, Seq: 3}},
		{Table: "accounts", Key: 2, Data: []byte("bob"), Stamp: storage.Stamp{Origin: 1, Seq: 7}},
		{Table: "orders", Key: 900, Data: nil, Stamp: storage.Stamp{Origin: 2, Seq: 1}},
		{Table: "accounts", Key: 3, Data: []byte{0x00, 0xff, 0x01}, Stamp: storage.Stamp{Origin: 0, Seq: 12}},
	}
}

func readAll(t *testing.T, path string) []Row {
	t.Helper()
	var got []Row
	n, err := ReadSnapshot(path, func(r Row) error {
		got = append(got, r)
		return nil
	})
	if err != nil {
		t.Fatalf("ReadSnapshot: %v", err)
	}
	if int(n) != len(got) {
		t.Fatalf("row count %d != callback count %d", n, len(got))
	}
	return got
}

// TestRowRoundTrip writes rows through the binary SnapshotWriter and reads
// them back identical, and checks the manifest integrity record matches
// what VerifySnapshot recomputes.
func TestRowRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "site-0.snap")
	w, err := CreateSnapshot(path)
	if err != nil {
		t.Fatal(err)
	}
	rows := testRows()
	for _, r := range rows {
		if err := w.Write(r); err != nil {
			t.Fatal(err)
		}
	}
	info, err := w.Close()
	if err != nil {
		t.Fatal(err)
	}
	if err := VerifySnapshot(path, info); err != nil {
		t.Fatalf("VerifySnapshot: %v", err)
	}
	if got := readAll(t, path); !reflect.DeepEqual(got, rows) {
		t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", got, rows)
	}
}

// TestLegacySnapshotInstalls proves a snapshot written by a pre-codec
// (gob) build still reads: every row decodes through the legacy fallback
// and the legacy-frame counter records it.
func TestLegacySnapshotInstalls(t *testing.T) {
	codec.Reset()
	path := filepath.Join(t.TempDir(), "site-0.snap")
	rows := testRows()
	info, err := WriteLegacySnapshot(path, rows)
	if err != nil {
		t.Fatal(err)
	}
	if info.Rows != uint64(len(rows)) {
		t.Fatalf("legacy info rows = %d, want %d", info.Rows, len(rows))
	}
	if err := VerifySnapshot(path, info); err != nil {
		t.Fatalf("VerifySnapshot on legacy file: %v", err)
	}
	if got := readAll(t, path); !reflect.DeepEqual(got, rows) {
		t.Fatalf("legacy read mismatch:\n got %+v\nwant %+v", got, rows)
	}
	if n := codec.LegacyFrames(codec.SurfaceCheckpoint); n != uint64(len(rows)) {
		t.Fatalf("legacy frame counter = %d, want %d", n, len(rows))
	}
}

// TestRowTableInterning checks that a snapshot's repeated table names decode
// to one shared string (ReadSnapshot threads one intern map through the
// whole file).
func TestRowTableInterning(t *testing.T) {
	path := filepath.Join(t.TempDir(), "site-0.snap")
	w, err := CreateSnapshot(path)
	if err != nil {
		t.Fatal(err)
	}
	for i := uint64(0); i < 4; i++ {
		if err := w.Write(Row{Table: "shared_table", Key: i}); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := w.Close(); err != nil {
		t.Fatal(err)
	}
	got := readAll(t, path)
	for i := 1; i < len(got); i++ {
		if got[i].Table != got[0].Table {
			t.Fatalf("table mismatch at row %d", i)
		}
	}
}
