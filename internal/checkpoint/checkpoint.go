// Package checkpoint defines the on-disk format of DynaMast checkpoints:
// per-site snapshot files plus a manifest that makes the set atomic.
//
// A checkpoint lives in its own directory under the durable root:
//
//	<root>/checkpoint-<seq>/site-<i>.snap   one per site
//	<root>/checkpoint-<seq>/manifest.json   written last, via temp+rename
//
// Snapshot files reuse the WAL's framing — every row is
// [u32 length][u32 CRC-32C][payload], little-endian — so bit rot and torn
// writes are detectable. Row payloads are written in the binary codec
// format (internal/codec); files written by pre-codec builds carry gob
// payloads in the same frames, which ReadSnapshot accepts per frame via the
// magic-byte fallback. Unlike the WAL, a snapshot tolerates no torn
// tail: the manifest records each file's exact row and byte counts, and a
// file that fails CRC or count verification invalidates the whole
// checkpoint (recovery falls back to the previous one, then to full
// replay).
//
// The manifest is the commit point. Until manifest.json exists, the
// directory is garbage a future checkpoint run deletes; the rename that
// publishes it is atomic, so a crash at any moment leaves either a complete
// checkpoint or none.
package checkpoint

import (
	"bufio"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"time"

	"dynamast/internal/codec"
	"dynamast/internal/storage"
	"dynamast/internal/vclock"
)

// ManifestName is the file whose presence commits a checkpoint directory.
const ManifestName = "manifest.json"

const frameHeaderSize = 8

// maxFrame bounds a frame's claimed length; larger is corruption.
const maxFrame = 64 << 20

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// Row is one record version carried by a site snapshot.
type Row struct {
	Table string
	Key   uint64
	Data  []byte
	Stamp storage.Stamp
}

// SnapshotInfo is the manifest's integrity record for one snapshot file.
type SnapshotInfo struct {
	Rows  uint64 `json:"rows"`
	Bytes uint64 `json:"bytes"`
}

// Manifest describes one complete checkpoint: where every site's replay
// resumes, what the cluster's partition placement was, and how to verify
// the snapshot files.
type Manifest struct {
	// Seq orders checkpoints; higher is newer.
	Seq     uint64    `json:"seq"`
	TakenAt time.Time `json:"taken_at"`
	Sites   int       `json:"sites"`

	// SVVs[s] is the version vector site s's snapshot was exported at.
	SVVs []vclock.Vector `json:"svvs"`

	// Offsets[s][o] is the absolute offset in origin o's log where site
	// s's redo replay resumes: the first update past SVVs[s][o].
	Offsets [][]uint64 `json:"offsets"`

	// FoldOffsets[o] is origin o's log end when Placement was captured;
	// the mastership fold replays only entries at or past it.
	FoldOffsets []uint64 `json:"fold_offsets"`

	// LowWater[o] = min over sites of Offsets[s][o]: the prefix of origin
	// o's log every site's snapshot already covers, safe to truncate.
	LowWater []uint64 `json:"low_water"`

	// Placement maps partition -> master site at capture time;
	// PlacementEpochs records the remaster epoch that installed each
	// entry, so a stale grant in a log suffix cannot override it.
	Placement       map[uint64]int    `json:"placement"`
	PlacementEpochs map[uint64]uint64 `json:"placement_epochs"`

	// MaxEpoch is the highest remaster epoch observed at capture; the
	// recovered selector's epoch counter must start above it.
	MaxEpoch uint64 `json:"max_epoch"`

	// ReplicaSets maps partition -> replica-set membership at capture time
	// (partial replication; empty under full replication). Only partitions
	// with explicit placement decisions appear — the rest re-derive from the
	// deterministic seed membership. Recovery folds state to the capture:
	// adds and drops after the checkpoint are not journaled, so a
	// post-capture add is redone by the master-hosting reconciliation and a
	// post-capture drop is undone (the replica resurrects with its snapshot
	// rows plus suffix catch-up — correct, merely unpruned until the
	// placement controller re-decides).
	ReplicaSets map[uint64][]int `json:"replica_sets,omitempty"`

	// Snapshots[s] verifies site s's snapshot file.
	Snapshots []SnapshotInfo `json:"snapshots"`
}

// Dir returns the directory of checkpoint seq under root.
func Dir(root string, seq uint64) string {
	return filepath.Join(root, fmt.Sprintf("checkpoint-%08d", seq))
}

// SnapshotName returns the snapshot file name for one site.
func SnapshotName(site int) string { return fmt.Sprintf("site-%d.snap", site) }

// SnapshotWriter streams CRC-framed rows to a snapshot file.
type SnapshotWriter struct {
	f    *os.File
	w    *bufio.Writer
	enc  []byte // per-row encode scratch, reused across Write calls
	info SnapshotInfo
	err  error
}

// CreateSnapshot creates (truncating) the snapshot file at path.
func CreateSnapshot(path string) (*SnapshotWriter, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return nil, fmt.Errorf("checkpoint: create %s: %w", path, err)
	}
	return &SnapshotWriter{f: f, w: bufio.NewWriterSize(f, 1<<20)}, nil
}

// Write appends one framed row.
func (s *SnapshotWriter) Write(r Row) error {
	if s.err != nil {
		return s.err
	}
	s.enc = encodeRowTimed(s.enc[:0], &r)
	payload := s.enc
	var hdr [frameHeaderSize]byte
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(hdr[4:8], crc32.Checksum(payload, crcTable))
	if _, err := s.w.Write(hdr[:]); err != nil {
		s.err = err
		return err
	}
	if _, err := s.w.Write(payload); err != nil {
		s.err = err
		return err
	}
	s.info.Rows++
	s.info.Bytes += uint64(frameHeaderSize + len(payload))
	return nil
}

// Close flushes and closes the file, returning the integrity record the
// manifest must carry. A Write error surfaces here too.
func (s *SnapshotWriter) Close() (SnapshotInfo, error) {
	if err := s.w.Flush(); err != nil && s.err == nil {
		s.err = err
	}
	if err := s.f.Close(); err != nil && s.err == nil {
		s.err = err
	}
	return s.info, s.err
}

// Abort closes and removes the partial file; used when a checkpoint run is
// abandoned (export error, shutdown mid-write).
func (s *SnapshotWriter) Abort() {
	s.f.Close()
	os.Remove(s.f.Name())
}

// ReadSnapshot streams the rows of a snapshot file to fn, verifying every
// frame's CRC. Any framing violation — short header, oversized length, bad
// checksum, undecodable payload, trailing garbage — is an error: snapshots
// are all-or-nothing.
func ReadSnapshot(path string, fn func(Row) error) (uint64, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return 0, fmt.Errorf("checkpoint: read %s: %w", path, err)
	}
	var rows uint64
	var goodBytes int
	intern := make(map[string]string)
	decStart := time.Now()
	off := 0
	for off < len(data) {
		if off+frameHeaderSize > len(data) {
			return rows, fmt.Errorf("checkpoint: %s: torn frame header at byte %d", path, off)
		}
		n := binary.LittleEndian.Uint32(data[off:])
		sum := binary.LittleEndian.Uint32(data[off+4:])
		if n > maxFrame || off+frameHeaderSize+int(n) > len(data) {
			return rows, fmt.Errorf("checkpoint: %s: invalid frame length %d at byte %d", path, n, off)
		}
		payload := data[off+frameHeaderSize : off+frameHeaderSize+int(n)]
		if crc32.Checksum(payload, crcTable) != sum {
			return rows, fmt.Errorf("checkpoint: %s: CRC mismatch at byte %d", path, off)
		}
		var r Row
		if err := decodeRowPayload(payload, &r, intern); err != nil {
			return rows, fmt.Errorf("checkpoint: %s: decode at byte %d: %w", path, off, err)
		}
		goodBytes += int(n)
		if err := fn(r); err != nil {
			return rows, err
		}
		rows++
		off += frameHeaderSize + int(n)
	}
	codec.RecordDecode(codec.SurfaceCheckpoint, goodBytes, time.Since(decStart))
	return rows, nil
}

// VerifySnapshot CRC-walks a snapshot file without decoding rows and checks
// it against the manifest's integrity record. Recovery runs this over every
// site file before installing any row, so a partially-corrupt checkpoint is
// rejected whole rather than half-installed.
func VerifySnapshot(path string, want SnapshotInfo) error {
	f, err := os.Open(path)
	if err != nil {
		return fmt.Errorf("checkpoint: verify %s: %w", path, err)
	}
	defer f.Close()
	r := bufio.NewReaderSize(f, 1<<20)
	var rows, bytes uint64
	var hdr [frameHeaderSize]byte
	payload := make([]byte, 0, 4096)
	for {
		if _, err := io.ReadFull(r, hdr[:]); err == io.EOF {
			break
		} else if err != nil {
			return fmt.Errorf("checkpoint: verify %s: torn frame header: %w", path, err)
		}
		n := binary.LittleEndian.Uint32(hdr[0:4])
		sum := binary.LittleEndian.Uint32(hdr[4:8])
		if n > maxFrame {
			return fmt.Errorf("checkpoint: verify %s: invalid frame length %d", path, n)
		}
		if uint32(cap(payload)) < n {
			payload = make([]byte, n)
		}
		payload = payload[:n]
		if _, err := io.ReadFull(r, payload); err != nil {
			return fmt.Errorf("checkpoint: verify %s: torn frame: %w", path, err)
		}
		if crc32.Checksum(payload, crcTable) != sum {
			return fmt.Errorf("checkpoint: verify %s: CRC mismatch in row %d", path, rows)
		}
		rows++
		bytes += uint64(frameHeaderSize) + uint64(n)
	}
	if rows != want.Rows || bytes != want.Bytes {
		return fmt.Errorf("checkpoint: verify %s: have %d rows/%d bytes, manifest says %d/%d",
			path, rows, bytes, want.Rows, want.Bytes)
	}
	return nil
}

// WriteManifest commits the checkpoint: the manifest is marshalled to a
// temp file and renamed into place, so it appears atomically or not at all.
func WriteManifest(dir string, m *Manifest) error {
	data, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return err
	}
	tmp := filepath.Join(dir, ManifestName+".tmp")
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return err
	}
	return os.Rename(tmp, filepath.Join(dir, ManifestName))
}

// ReadManifest loads and structurally validates a checkpoint's manifest.
func ReadManifest(dir string) (*Manifest, error) {
	data, err := os.ReadFile(filepath.Join(dir, ManifestName))
	if err != nil {
		return nil, err
	}
	var m Manifest
	if err := json.Unmarshal(data, &m); err != nil {
		return nil, fmt.Errorf("checkpoint: %s: %w", dir, err)
	}
	if m.Sites <= 0 || len(m.SVVs) != m.Sites || len(m.Offsets) != m.Sites ||
		len(m.Snapshots) != m.Sites || len(m.LowWater) != m.Sites ||
		len(m.FoldOffsets) != m.Sites {
		return nil, fmt.Errorf("checkpoint: %s: manifest inconsistent with %d sites", dir, m.Sites)
	}
	return &m, nil
}

// List returns the committed checkpoints under root, newest first. Unreadable
// or structurally invalid manifests are skipped (their directories are
// uncommitted or damaged, which the recovery fallback chain handles).
func List(root string) []*Manifest {
	entries, err := os.ReadDir(root)
	if err != nil {
		return nil
	}
	var out []*Manifest
	for _, ent := range entries {
		if !ent.IsDir() || !strings.HasPrefix(ent.Name(), "checkpoint-") {
			continue
		}
		m, err := ReadManifest(filepath.Join(root, ent.Name()))
		if err != nil {
			continue
		}
		out = append(out, m)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Seq > out[j].Seq })
	return out
}

// NextSeq returns one past the highest checkpoint sequence present under
// root, committed or not (uncommitted directories still reserve their
// number so a new run never reuses — and clobbers — a directory a reader
// may be inspecting).
func NextSeq(root string) uint64 {
	entries, err := os.ReadDir(root)
	if err != nil {
		return 1
	}
	var max uint64
	for _, ent := range entries {
		if !ent.IsDir() {
			continue
		}
		n, ok := strings.CutPrefix(ent.Name(), "checkpoint-")
		if !ok {
			continue
		}
		if seq, err := strconv.ParseUint(n, 10, 64); err == nil && seq > max {
			max = seq
		}
	}
	return max + 1
}

// Remove deletes checkpoint seq's directory.
func Remove(root string, seq uint64) error {
	return os.RemoveAll(Dir(root, seq))
}
