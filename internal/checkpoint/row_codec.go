package checkpoint

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"fmt"
	"hash/crc32"
	"os"
	"time"

	"dynamast/internal/codec"
)

// Wire schema (format v1) for one snapshot row. Rows ride inside the same
// CRC-32C frames as before; only the payload format changed from gob to the
// binary codec. The first payload byte discriminates (gob never starts with
// 0x00), so ReadSnapshot installs checkpoints written by pre-codec builds
// through the legacy fallback without any configuration.

// appendRowPayload appends r's binary payload (header included) to buf.
func appendRowPayload(buf []byte, r *Row) []byte {
	buf = codec.AppendHeader(buf, codec.Version1)
	buf = codec.AppendString(buf, r.Table)
	buf = codec.AppendUvarint(buf, r.Key)
	buf = codec.AppendBytes(buf, r.Data)
	buf = codec.AppendStamp(buf, r.Stamp)
	return buf
}

// decodeRowPayload decodes one frame payload into r, accepting both the
// binary format and legacy gob. intern, when non-nil, deduplicates table
// names across a snapshot's rows. Decoded Data is freshly allocated — rows
// are installed directly into MVCC version chains, so nothing here may
// alias the snapshot file's read buffer.
func decodeRowPayload(payload []byte, r *Row, intern map[string]string) error {
	if !codec.IsBinary(payload) {
		codec.RecordLegacy(codec.SurfaceCheckpoint)
		*r = Row{}
		return gob.NewDecoder(bytes.NewReader(payload)).Decode(r)
	}
	rd := codec.NewReader(payload)
	if intern != nil {
		rd.SetIntern(intern)
	}
	r.Table = rd.String()
	r.Key = rd.Uvarint()
	r.Data = rd.Bytes()
	r.Stamp = rd.Stamp()
	return rd.Done()
}

// encodeRowTimed encodes r into buf, charging the codec's checkpoint-surface
// encode counters.
func encodeRowTimed(buf []byte, r *Row) []byte {
	start := time.Now()
	buf = appendRowPayload(buf, r)
	codec.RecordEncode(codec.SurfaceCheckpoint, len(buf), time.Since(start))
	return buf
}

// WriteLegacySnapshot writes rows to path in the pre-codec format — CRC-32C
// frames around self-contained gob payloads — exactly as builds before the
// binary codec did, returning the integrity record for the manifest. It
// exists for compatibility tests and downgrade tooling; new snapshots are
// always written in the binary format.
func WriteLegacySnapshot(path string, rows []Row) (SnapshotInfo, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return SnapshotInfo{}, err
	}
	var info SnapshotInfo
	var out []byte
	var encBuf bytes.Buffer
	for i := range rows {
		encBuf.Reset()
		if err := gob.NewEncoder(&encBuf).Encode(&rows[i]); err != nil {
			f.Close()
			return info, fmt.Errorf("checkpoint: legacy encode: %w", err)
		}
		payload := encBuf.Bytes()
		var hdr [frameHeaderSize]byte
		binary.LittleEndian.PutUint32(hdr[0:4], uint32(len(payload)))
		binary.LittleEndian.PutUint32(hdr[4:8], crc32.Checksum(payload, crcTable))
		out = append(out, hdr[:]...)
		out = append(out, payload...)
		info.Rows++
		info.Bytes += uint64(frameHeaderSize + len(payload))
	}
	if _, err := f.Write(out); err != nil {
		f.Close()
		return info, err
	}
	return info, f.Close()
}
