package checkpoint

import (
	"fmt"
	"os"
	"path/filepath"
	"testing"
	"time"

	"dynamast/internal/storage"
	"dynamast/internal/vclock"
)

func writeSnap(t *testing.T, path string, rows int) SnapshotInfo {
	t.Helper()
	w, err := CreateSnapshot(path)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < rows; i++ {
		if err := w.Write(Row{
			Table: "acct",
			Key:   uint64(i),
			Data:  []byte(fmt.Sprintf("row-%d", i)),
			Stamp: storage.Stamp{Origin: 0, Seq: uint64(i + 1)},
		}); err != nil {
			t.Fatal(err)
		}
	}
	info, err := w.Close()
	if err != nil {
		t.Fatal(err)
	}
	return info
}

func TestSnapshotRoundtripAndVerify(t *testing.T) {
	path := filepath.Join(t.TempDir(), "site-0.snap")
	info := writeSnap(t, path, 500)
	if info.Rows != 500 {
		t.Fatalf("info.Rows = %d, want 500", info.Rows)
	}
	if err := VerifySnapshot(path, info); err != nil {
		t.Fatal(err)
	}
	var n uint64
	rows, err := ReadSnapshot(path, func(r Row) error {
		if r.Key != n || string(r.Data) != fmt.Sprintf("row-%d", n) {
			return fmt.Errorf("row %d mismatched: key=%d data=%q", n, r.Key, r.Data)
		}
		n++
		return nil
	})
	if err != nil || rows != 500 {
		t.Fatalf("rows=%d err=%v", rows, err)
	}
}

func TestSnapshotDetectsCorruption(t *testing.T) {
	path := filepath.Join(t.TempDir(), "site-0.snap")
	info := writeSnap(t, path, 100)

	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Flip a bit in the middle of the file.
	data[len(data)/2] ^= 0x40
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := VerifySnapshot(path, info); err == nil {
		t.Fatal("verify accepted a bit-flipped snapshot")
	}
	if _, err := ReadSnapshot(path, func(Row) error { return nil }); err == nil {
		t.Fatal("read accepted a bit-flipped snapshot")
	}

	// A truncated (torn) snapshot is also rejected — no torn-tail tolerance.
	if err := os.WriteFile(path, data[:len(data)-3], 0o644); err != nil {
		t.Fatal(err)
	}
	if err := VerifySnapshot(path, info); err == nil {
		t.Fatal("verify accepted a torn snapshot")
	}
}

func TestManifestCommitAndList(t *testing.T) {
	root := t.TempDir()
	mk := func(seq uint64, commit bool) {
		dir := Dir(root, seq)
		if err := os.MkdirAll(dir, 0o755); err != nil {
			t.Fatal(err)
		}
		info := writeSnap(t, filepath.Join(dir, SnapshotName(0)), 10)
		if !commit {
			return // no manifest: directory stays invisible to List
		}
		m := &Manifest{
			Seq: seq, TakenAt: time.Unix(1700000000, 0), Sites: 1,
			SVVs:            []vclock.Vector{{10}},
			Offsets:         [][]uint64{{10}},
			FoldOffsets:     []uint64{10},
			LowWater:        []uint64{10},
			Placement:       map[uint64]int{1: 0},
			PlacementEpochs: map[uint64]uint64{1: 3},
			MaxEpoch:        3,
			Snapshots:       []SnapshotInfo{info},
		}
		if err := WriteManifest(dir, m); err != nil {
			t.Fatal(err)
		}
	}
	mk(1, true)
	mk(2, true)
	mk(3, false) // crashed before commit

	got := List(root)
	if len(got) != 2 || got[0].Seq != 2 || got[1].Seq != 1 {
		t.Fatalf("List = %v manifests (want seqs [2 1])", len(got))
	}
	if got[0].Placement[1] != 0 || got[0].PlacementEpochs[1] != 3 {
		t.Fatalf("placement did not roundtrip: %v / %v", got[0].Placement, got[0].PlacementEpochs)
	}
	// The uncommitted dir still reserves its sequence number.
	if ns := NextSeq(root); ns != 4 {
		t.Fatalf("NextSeq = %d, want 4", ns)
	}
	if err := Remove(root, 2); err != nil {
		t.Fatal(err)
	}
	if got := List(root); len(got) != 1 || got[0].Seq != 1 {
		t.Fatalf("after Remove: %d manifests", len(got))
	}
}
