package twopc

import (
	"errors"
	"testing"
	"time"

	"dynamast/internal/sitemgr"
	"dynamast/internal/storage"
	"dynamast/internal/vclock"
	"dynamast/internal/wal"
)

func newSites(t *testing.T, m int) []*sitemgr.Site {
	t.Helper()
	b := wal.NewBroker(m)
	t.Cleanup(func() { b.Close() })
	sites := make([]*sitemgr.Site, m)
	for i := 0; i < m; i++ {
		s, err := sitemgr.New(sitemgr.Config{
			SiteID: i, Sites: m, Broker: b,
			Partitioner: func(ref storage.RowRef) uint64 { return ref.Key / 100 },
		})
		if err != nil {
			t.Fatal(err)
		}
		s.Store().CreateTable("t")
		sites[i] = s
	}
	return sites
}

func ref(k uint64) storage.RowRef { return storage.RowRef{Table: "t", Key: k} }

func asParticipants(sites []*sitemgr.Site) map[int]Participant {
	out := make(map[int]Participant, len(sites))
	for i, s := range sites {
		out[i] = s
	}
	return out
}

func TestPrepareCommitTwoParticipants(t *testing.T) {
	sites := newSites(t, 2)
	c := NewCoordinator(nil)
	work := map[int]Work{
		0: {WriteSet: []storage.RowRef{ref(1)}, Writes: []storage.Write{{Ref: ref(1), Data: []byte("a")}}},
		1: {WriteSet: []storage.RowRef{ref(101)}, Writes: []storage.Write{{Ref: ref(101), Data: []byte("b")}}},
	}
	parts := asParticipants(sites)
	snap, err := c.Prepare(42, work, parts)
	if err != nil {
		t.Fatal(err)
	}
	if snap.Len() != 2 {
		t.Fatalf("prepare snap = %v", snap)
	}
	tvv, err := c.Commit(42, work, parts)
	if err != nil {
		t.Fatal(err)
	}
	if tvv[0] != 1 || tvv[1] != 1 {
		t.Fatalf("commit tvv = %v", tvv)
	}
	if d, ok := sites[0].ReadLocal(ref(1)); !ok || string(d) != "a" {
		t.Fatalf("site 0 read %q %v", d, ok)
	}
	if d, ok := sites[1].ReadLocal(ref(101)); !ok || string(d) != "b" {
		t.Fatalf("site 1 read %q %v", d, ok)
	}
}

func TestPrepareFailureAbortsOthers(t *testing.T) {
	sites := newSites(t, 2)
	c := NewCoordinator(nil)
	// Occupy txn id 7 at site 1 so its second prepare fails.
	if _, err := sites[1].Prepare(7, []storage.RowRef{ref(150)}); err != nil {
		t.Fatal(err)
	}
	work := map[int]Work{
		0: {WriteSet: []storage.RowRef{ref(1)}},
		1: {WriteSet: []storage.RowRef{ref(101)}},
	}
	if _, err := c.Prepare(7, work, asParticipants(sites)); err == nil {
		t.Fatal("prepare succeeded despite participant failure")
	}
	// Site 0's locks must have been released by the abort.
	done := make(chan struct{})
	go func() {
		snap, err := sites[0].Prepare(8, []storage.RowRef{ref(1)})
		if err != nil || snap == nil {
			panic(err)
		}
		sites[0].AbortPrepared(8)
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("abort leaked locks at surviving participant")
	}
	sites[1].AbortPrepared(7)
}

func TestCommitUnpreparedFails(t *testing.T) {
	sites := newSites(t, 1)
	c := NewCoordinator(nil)
	work := map[int]Work{0: {Writes: []storage.Write{{Ref: ref(1), Data: []byte("x")}}}}
	if _, err := c.Commit(99, work, asParticipants(sites)); err == nil {
		t.Fatal("commit of unprepared txn succeeded")
	}
}

func TestAbortExported(t *testing.T) {
	sites := newSites(t, 2)
	c := NewCoordinator(nil)
	work := map[int]Work{
		0: {WriteSet: []storage.RowRef{ref(1)}},
		1: {WriteSet: []storage.RowRef{ref(101)}},
	}
	parts := asParticipants(sites)
	if _, err := c.Prepare(5, work, parts); err != nil {
		t.Fatal(err)
	}
	c.Abort(5, work, parts)
	// All locks free: a fresh prepare on the same refs succeeds instantly.
	if _, err := c.Prepare(6, work, parts); err != nil {
		t.Fatal(err)
	}
	c.Abort(6, work, parts)
}

func TestUncertainPhaseBlocksConflicts(t *testing.T) {
	sites := newSites(t, 2)
	sites[0].SetMaster(0, true)
	c := NewCoordinator(nil)
	work := map[int]Work{0: {WriteSet: []storage.RowRef{ref(1)},
		Writes: []storage.Write{{Ref: ref(1), Data: []byte("2pc")}}}}
	parts := asParticipants(sites)
	if _, err := c.Prepare(11, work, parts); err != nil {
		t.Fatal(err)
	}
	blocked := make(chan vclock.Vector, 1)
	go func() {
		tx, err := sites[0].Begin(nil, []storage.RowRef{ref(1)})
		if err != nil {
			panic(err)
		}
		tx.Write(ref(1), []byte("local"))
		vv, err := tx.Commit()
		if err != nil {
			panic(err)
		}
		blocked <- vv
	}()
	select {
	case <-blocked:
		t.Fatal("conflicting local txn ran during uncertain phase")
	case <-time.After(20 * time.Millisecond):
	}
	if _, err := c.Commit(11, work, parts); err != nil {
		t.Fatal(err)
	}
	select {
	case <-blocked:
	case <-time.After(2 * time.Second):
		t.Fatal("local txn never unblocked after global commit")
	}
	if d, _ := sites[0].ReadLocal(ref(1)); string(d) != "local" {
		t.Fatalf("final value %q; local txn must follow the 2PC commit", d)
	}
}

func TestCommitErrorSurfaces(t *testing.T) {
	sites := newSites(t, 2)
	c := NewCoordinator(nil)
	work := map[int]Work{
		0: {WriteSet: []storage.RowRef{ref(1)}},
		1: {WriteSet: []storage.RowRef{ref(101)}},
	}
	parts := asParticipants(sites)
	if _, err := c.Prepare(13, work, parts); err != nil {
		t.Fatal(err)
	}
	// Sabotage participant 1 by aborting its branch out-of-band; the
	// decision-phase commit must then report an error.
	sites[1].AbortPrepared(13)
	if _, err := c.Commit(13, work, parts); err == nil {
		t.Fatal("commit error swallowed")
	}
	var check error = errors.New("x")
	_ = check
}
