// Package twopc implements the two-phase commit protocol the partitioned
// baselines (partition-store and multi-master) use for distributed write
// transactions.
//
// The coordinator runs at the client's coordinating site: it sends parallel
// prepare requests carrying each participant's slice of the write set (the
// participants acquire the write locks and enter the uncertain phase), and
// on a unanimous yes-vote sends parallel commit requests carrying the
// buffered writes. Between prepare and the global decision participants
// hold their locks — the blocking window that distinguishes these
// architectures from DynaMast. Every protocol message is charged to the
// simulated network in the Cat2PC category.
package twopc

import (
	"fmt"
	"sync"

	"dynamast/internal/storage"
	"dynamast/internal/transport"
	"dynamast/internal/vclock"
)

// Participant is a data site's 2PC participant interface
// (*sitemgr.Site implements it).
type Participant interface {
	Prepare(txnID uint64, writeSet []storage.RowRef) (vclock.Vector, error)
	CommitPrepared(txnID uint64, writes []storage.Write) (vclock.Vector, error)
	AbortPrepared(txnID uint64)
}

// Work is one participant's share of a distributed transaction.
type Work struct {
	WriteSet []storage.RowRef
	Writes   []storage.Write
}

// Coordinator drives distributed commits over a simulated network.
type Coordinator struct {
	net *transport.Network
}

// NewCoordinator returns a coordinator charging traffic to net (nil = free).
func NewCoordinator(net *transport.Network) *Coordinator {
	return &Coordinator{net: net}
}

// Prepare runs the voting phase: parallel prepare requests to every
// participant. On success every participant is in the uncertain phase with
// its locks held, and the element-wise max of their snapshots is returned.
// On failure the prepared participants are aborted.
func (c *Coordinator) Prepare(txnID uint64, work map[int]Work, sites map[int]Participant) (vclock.Vector, error) {
	type result struct {
		id   int
		snap vclock.Vector
		err  error
	}
	results := make(chan result, len(work))
	for id, w := range work {
		go func(id int, w Work) {
			c.net.RoundTrip(transport.Cat2PC,
				transport.MsgOverhead+transport.SizeOfRefs(w.WriteSet),
				transport.MsgOverhead+transport.SizeOfVector(nil))
			snap, err := sites[id].Prepare(txnID, w.WriteSet)
			results <- result{id, snap, err}
		}(id, w)
	}
	var (
		snap     vclock.Vector
		firstErr error
		prepared []int
	)
	for range work {
		r := <-results
		if r.err != nil {
			if firstErr == nil {
				firstErr = r.err
			}
			continue
		}
		prepared = append(prepared, r.id)
		snap = snap.MaxInto(r.snap)
	}
	if firstErr != nil {
		c.abort(txnID, prepared, sites)
		return nil, fmt.Errorf("twopc: prepare: %w", firstErr)
	}
	return snap, nil
}

// Commit runs the decision phase after a successful Prepare: parallel
// commit requests carrying each participant's writes. It returns the
// element-wise max of the participants' commit vectors.
func (c *Coordinator) Commit(txnID uint64, work map[int]Work, sites map[int]Participant) (vclock.Vector, error) {
	type result struct {
		tvv vclock.Vector
		err error
	}
	results := make(chan result, len(work))
	for id, w := range work {
		go func(id int, w Work) {
			c.net.RoundTrip(transport.Cat2PC,
				transport.MsgOverhead+transport.SizeOfWrites(w.Writes),
				transport.MsgOverhead+transport.SizeOfVector(nil))
			tvv, err := sites[id].CommitPrepared(txnID, w.Writes)
			results <- result{tvv, err}
		}(id, w)
	}
	var (
		out      vclock.Vector
		firstErr error
	)
	for range work {
		r := <-results
		if r.err != nil && firstErr == nil {
			firstErr = r.err
		}
		out = out.MaxInto(r.tvv)
	}
	if firstErr != nil {
		return nil, fmt.Errorf("twopc: commit: %w", firstErr)
	}
	return out, nil
}

// abort sends parallel aborts to the given participants.
func (c *Coordinator) abort(txnID uint64, ids []int, sites map[int]Participant) {
	var wg sync.WaitGroup
	for _, id := range ids {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			c.net.RoundTrip(transport.Cat2PC, transport.MsgOverhead, transport.MsgOverhead)
			sites[id].AbortPrepared(txnID)
		}(id)
	}
	wg.Wait()
}

// Abort aborts a transaction at every participant (exported for callers
// that fail between Prepare and Commit).
func (c *Coordinator) Abort(txnID uint64, work map[int]Work, sites map[int]Participant) {
	ids := make([]int, 0, len(work))
	for id := range work {
		ids = append(ids, id)
	}
	c.abort(txnID, ids, sites)
}
