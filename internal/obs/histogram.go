package obs

import (
	"math"
	"sync/atomic"
	"time"
)

// Histogram buckets are fixed and log-spaced (factor 2) from 1µs to ~67s,
// chosen to cover everything this system times — sub-microsecond lock
// holds round into the first bucket, and nothing in the simulation runs
// longer than a minute. Fixed buckets keep Observe lock-free (one atomic
// add) and make every histogram in the process mergeable and renderable as
// the same Prometheus le-series.
const (
	histBuckets = 27
	histMinUnit = 1e-6 // first upper bound, seconds
)

// bucketBounds holds the shared upper bounds in seconds:
// 1µs, 2µs, 4µs, ..., 2^26 µs (≈ 67.1s). Observations above the last bound
// land in the overflow bucket.
var bucketBounds = func() [histBuckets]float64 {
	var b [histBuckets]float64
	v := histMinUnit
	for i := range b {
		b[i] = v
		v *= 2
	}
	return b
}()

// bucketIndex returns the index of the smallest bound ≥ v, or histBuckets
// for overflow. The bounds are powers of two times 1e-6, so the index is a
// log2 — computed with Frexp rather than a scan.
func bucketIndex(v float64) int {
	if v <= histMinUnit {
		return 0
	}
	// v = f * 2^exp µs with f in [0.5, 1); bound i is 2^i µs, so the index
	// is ceil(log2(v/1µs)) — exp, except exact powers of two (f == 0.5)
	// where exp lands one too high.
	f, exp := math.Frexp(v / histMinUnit)
	i := exp
	if f == 0.5 {
		i--
	}
	if i >= histBuckets {
		return histBuckets
	}
	if i < 0 {
		return 0
	}
	return i
}

// Histogram is a lock-free streaming histogram: fixed log-spaced buckets,
// exact count/sum/max, and quantile extraction by interpolation within the
// matched bucket. The zero value is NOT ready; use NewHistogram (or
// Registry.Histogram). A nil *Histogram no-ops.
type Histogram struct {
	buckets [histBuckets + 1]atomic.Uint64 // +1 overflow
	count   atomic.Uint64
	sumBits atomic.Uint64 // float64 bits, CAS-add
	maxBits atomic.Uint64 // float64 bits, CAS-max
}

// NewHistogram returns an empty histogram with the package's shared
// log-spaced bucket layout.
func NewHistogram() *Histogram { return &Histogram{} }

// Observe records a value in seconds.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	if v < 0 {
		v = 0
	}
	h.buckets[bucketIndex(v)].Add(1)
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, next) {
			break
		}
	}
	for {
		old := h.maxBits.Load()
		if math.Float64frombits(old) >= v {
			break
		}
		if h.maxBits.CompareAndSwap(old, math.Float64bits(v)) {
			break
		}
	}
}

// ObserveDuration records a duration.
func (h *Histogram) ObserveDuration(d time.Duration) { h.Observe(d.Seconds()) }

// Count returns the number of observations.
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of observations in seconds.
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sumBits.Load())
}

// Max returns the largest observation in seconds (exact).
func (h *Histogram) Max() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.maxBits.Load())
}

// Avg returns the mean observation in seconds.
func (h *Histogram) Avg() float64 {
	n := h.Count()
	if n == 0 {
		return 0
	}
	return h.Sum() / float64(n)
}

// Quantile estimates the p-quantile (0 ≤ p ≤ 1) in seconds by locating the
// bucket holding the rank and interpolating linearly inside it. The
// overflow bucket reports the exact max. Concurrent Observe calls can make
// the scan see a slightly torn state; the estimate degrades gracefully (a
// quantile between the pre- and post-update values), which is fine for
// monitoring.
func (h *Histogram) Quantile(p float64) float64 {
	if h == nil {
		return 0
	}
	total := h.count.Load()
	if total == 0 {
		return 0
	}
	if p < 0 {
		p = 0
	}
	if p > 1 {
		p = 1
	}
	rank := uint64(math.Ceil(p * float64(total)))
	if rank == 0 {
		rank = 1
	}
	var cum uint64
	for i := 0; i <= histBuckets; i++ {
		n := h.buckets[i].Load()
		if n == 0 {
			continue
		}
		if cum+n < rank {
			cum += n
			continue
		}
		if i == histBuckets {
			return h.Max()
		}
		lo := 0.0
		if i > 0 {
			lo = bucketBounds[i-1]
		}
		hi := bucketBounds[i]
		if m := h.Max(); m < hi && m >= lo {
			hi = m // tighten the last partially filled bucket
		}
		frac := float64(rank-cum) / float64(n)
		return lo + (hi-lo)*frac
	}
	return h.Max()
}

// cumulativeBuckets renders the Prometheus-style cumulative bucket counts,
// ending with the +Inf bucket.
func (h *Histogram) cumulativeBuckets() []BucketCount {
	out := make([]BucketCount, 0, histBuckets+1)
	var cum uint64
	for i := 0; i < histBuckets; i++ {
		cum += h.buckets[i].Load()
		out = append(out, BucketCount{UpperBound: bucketBounds[i], Count: cum})
	}
	cum += h.buckets[histBuckets].Load()
	out = append(out, BucketCount{UpperBound: math.Inf(1), Count: cum})
	return out
}
