package obs

import (
	"math"
	"strings"
	"testing"
	"time"
)

func TestBucketIndex(t *testing.T) {
	cases := []struct {
		v    float64
		want int
	}{
		{0, 0},
		{-1, 0},
		{0.5e-6, 0},
		{1e-6, 0},     // exactly the first bound
		{1.5e-6, 1},   // (1µs, 2µs]
		{2e-6, 1},     // exactly 2µs
		{2.1e-6, 2},   // (2µs, 4µs]
		{1e-3, 10},           // (512µs, 1.024ms]
		{1.0, 20},            // (524ms, 1.05s]
		{100.0, histBuckets}, // overflow bucket
	}
	for _, c := range cases {
		if got := bucketIndex(c.v); got != c.want {
			t.Errorf("bucketIndex(%g) = %d, want %d", c.v, got, c.want)
		}
	}
	// Every bound must land in its own bucket; just past it, in the next.
	for i, b := range bucketBounds {
		if got := bucketIndex(b); got != i {
			t.Errorf("bound %d (%g) indexed to %d", i, b, got)
		}
		if i < histBuckets-2 {
			if got := bucketIndex(b * 1.001); got != i+1 {
				t.Errorf("past bound %d (%g) indexed to %d, want %d", i, b, got, i+1)
			}
		}
	}
}

func TestHistogramBasics(t *testing.T) {
	h := NewHistogram()
	if h.Count() != 0 || h.Sum() != 0 || h.Max() != 0 || h.Avg() != 0 {
		t.Fatal("fresh histogram not zero")
	}
	if q := h.Quantile(0.5); q != 0 {
		t.Fatalf("empty quantile = %g", q)
	}
	h.Observe(0.001)
	h.Observe(0.003)
	h.Observe(0.002)
	if h.Count() != 3 {
		t.Fatalf("count = %d", h.Count())
	}
	if math.Abs(h.Sum()-0.006) > 1e-12 {
		t.Fatalf("sum = %g", h.Sum())
	}
	if h.Max() != 0.003 {
		t.Fatalf("max = %g", h.Max())
	}
	if math.Abs(h.Avg()-0.002) > 1e-12 {
		t.Fatalf("avg = %g", h.Avg())
	}
}

func TestHistogramQuantiles(t *testing.T) {
	h := NewHistogram()
	// 1000 observations spread uniformly over (0, 1s].
	for i := 1; i <= 1000; i++ {
		h.Observe(float64(i) / 1000)
	}
	for _, p := range []float64{0.5, 0.9, 0.99} {
		got := h.Quantile(p)
		if got < p/2 || got > p*2 {
			t.Errorf("q%g = %g, outside one factor-2 bucket", p, got)
		}
	}
	// The top quantile is clamped by the observed max, not the bucket bound.
	if q := h.Quantile(1.0); q > h.Max()+1e-9 {
		t.Errorf("q1.0 = %g > max %g", q, h.Max())
	}
}

func TestHistogramObserveDuration(t *testing.T) {
	h := NewHistogram()
	h.ObserveDuration(250 * time.Millisecond)
	if h.Count() != 1 || math.Abs(h.Sum()-0.25) > 1e-12 {
		t.Fatalf("count=%d sum=%g", h.Count(), h.Sum())
	}
}

func TestRegistryGetOrCreate(t *testing.T) {
	r := NewRegistry()
	c1 := r.Counter("x_total", L("site", "0"))
	c2 := r.Counter("x_total", L("site", "0"))
	if c1 != c2 {
		t.Fatal("same name+labels produced distinct counters")
	}
	if c3 := r.Counter("x_total", L("site", "1")); c3 == c1 {
		t.Fatal("distinct labels shared a counter")
	}
	// Label order must not matter.
	h1 := r.Histogram("h_seconds", L("a", "1"), L("b", "2"))
	h2 := r.Histogram("h_seconds", L("b", "2"), L("a", "1"))
	if h1 != h2 {
		t.Fatal("label order produced distinct histograms")
	}
}

func TestRegistryKindMismatchPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("m")
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on kind mismatch")
		}
	}()
	r.Gauge("m")
}

func TestNilInstrumentsNoop(t *testing.T) {
	var r *Registry
	c := r.Counter("x") // nil registry hands out nil instruments
	c.Inc()
	c.Add(5)
	if c.Value() != 0 {
		t.Fatal("nil counter has a value")
	}
	var g *Gauge
	g.Set(3)
	g.Add(1)
	if g.Value() != 0 {
		t.Fatal("nil gauge has a value")
	}
	var h *Histogram
	h.Observe(1)
	h.ObserveDuration(time.Second)
	if h.Count() != 0 || h.Quantile(0.5) != 0 {
		t.Fatal("nil histogram recorded")
	}
	var tr *Tracer
	tr.Record(Trace{})
	tr.RefreshApplied(0, 1, time.Second)
	if tr.Count() != 0 || tr.Recent(5) != nil || tr.Slowest(5) != nil {
		t.Fatal("nil tracer recorded")
	}
	r.Func("f", KindGauge, func() float64 { return 1 })
	r.Help("f", "help")
}

func TestSnapshotLookup(t *testing.T) {
	r := NewRegistry()
	r.Counter("a_total", Site(0)).Add(7)
	r.Gauge("g", Site(1)).Set(2.5)
	r.Func("f", KindGauge, func() float64 { return 42 })
	r.Histogram("h_seconds").Observe(0.5)

	s := r.Snapshot()
	if v, ok := s.Value("a_total", Site(0)); !ok || v != 7 {
		t.Fatalf("a_total = %g, %v", v, ok)
	}
	if v, ok := s.Value("g", Site(1)); !ok || v != 2.5 {
		t.Fatalf("g = %g, %v", v, ok)
	}
	if v, ok := s.Value("f"); !ok || v != 42 {
		t.Fatalf("f = %g, %v", v, ok)
	}
	if _, ok := s.Value("a_total", Site(9)); ok {
		t.Fatal("lookup with wrong labels succeeded")
	}
	sm, ok := s.Get("h_seconds")
	if !ok || sm.Kind != KindHistogram.String() || sm.Count != 1 || sm.Sum != 0.5 {
		t.Fatalf("h_seconds sample = %+v, %v", sm, ok)
	}
	if sm.P50 <= 0 || sm.Max != 0.5 {
		t.Fatalf("h_seconds quantiles = %+v", sm)
	}
}

func TestWritePrometheusFormat(t *testing.T) {
	r := NewRegistry()
	r.Help("req_total", "Requests served.")
	r.Counter("req_total", Site(0)).Add(3)
	r.Gauge("temp").Set(1.5)
	h := r.Histogram("lat_seconds", L("type", "w"))
	h.Observe(0.001)
	h.Observe(0.1)

	var sb strings.Builder
	if err := r.Snapshot().WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"# HELP req_total Requests served.",
		"# TYPE req_total counter",
		`req_total{site="0"} 3`,
		"# TYPE temp gauge",
		"temp 1.5",
		"# TYPE lat_seconds histogram",
		`lat_seconds_bucket{type="w",le="+Inf"} 2`,
		`lat_seconds_count{type="w"} 2`,
		`lat_seconds_sum{type="w"} 0.101`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
	// Bucket counts are cumulative: the 0.001 observation must already be
	// counted in some bucket below the 0.1 one.
	if !strings.Contains(out, `le="0.001024"} 1`) {
		t.Errorf("missing cumulative bucket in:\n%s", out)
	}
}

func TestWriteTextFormat(t *testing.T) {
	r := NewRegistry()
	r.Counter("c_total").Add(2)
	r.Histogram("h_seconds").ObserveDuration(3 * time.Millisecond)
	var sb strings.Builder
	if err := r.Snapshot().WriteText(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "c_total") || !strings.Contains(out, "2") {
		t.Errorf("counter missing in:\n%s", out)
	}
	if !strings.Contains(out, "n=1") || !strings.Contains(out, "avg=3ms") {
		t.Errorf("histogram summary missing in:\n%s", out)
	}
}

func TestTracerRing(t *testing.T) {
	tr := NewTracer(4)
	for i := 0; i < 10; i++ {
		tr.Record(Trace{Site: i % 2, Seq: uint64(i), Total: time.Duration(i) * time.Millisecond})
	}
	if tr.Count() != 10 {
		t.Fatalf("count = %d", tr.Count())
	}
	recent := tr.Recent(100)
	if len(recent) != 4 {
		t.Fatalf("ring kept %d", len(recent))
	}
	// Most recent first.
	if recent[0].Seq != 9 || recent[3].Seq != 6 {
		t.Fatalf("recent order: %d..%d", recent[0].Seq, recent[3].Seq)
	}
	if ids := tr.Recent(2); len(ids) != 2 || ids[0].Seq != 9 {
		t.Fatalf("limited recent = %+v", ids)
	}
	slow := tr.Slowest(2)
	if len(slow) != 2 || slow[0].Seq != 9 || slow[1].Seq != 8 {
		t.Fatalf("slowest = %+v", slow)
	}
}

func TestTracerRefreshApplied(t *testing.T) {
	tr := NewTracer(8)
	rec := tr.Record(Trace{Site: 1, Seq: 42})
	tr.RefreshApplied(1, 42, 5*time.Millisecond)
	tr.RefreshApplied(1, 42, 3*time.Millisecond) // smaller lag must not regress it
	tr.RefreshApplied(1, 42, 9*time.Millisecond) // larger lag wins
	tr.RefreshApplied(0, 42, time.Hour)          // different site: ignored
	got := tr.Recent(1)[0]
	if got.ID != rec.ID {
		t.Fatalf("trace id %d != %d", got.ID, rec.ID)
	}
	if got.Stages[StageRefreshApply] != 9*time.Millisecond {
		t.Fatalf("refresh_apply = %v", got.Stages[StageRefreshApply])
	}
	// Evicted stamps must not be reachable.
	small := NewTracer(1)
	small.Record(Trace{Site: 0, Seq: 1})
	small.Record(Trace{Site: 0, Seq: 2}) // evicts seq 1
	small.RefreshApplied(0, 1, time.Second)
	if got := small.Recent(1)[0]; got.Seq != 2 || got.Stages[StageRefreshApply] != 0 {
		t.Fatalf("evicted stamp leaked: %+v", got)
	}
}

func TestTraceJSON(t *testing.T) {
	tr := Trace{ID: 3, Client: 7, Site: 1, Seq: 9, Remastered: true,
		PartsMoved: 2, Total: 1500 * time.Microsecond}
	tr.Stages[StageRoute] = time.Millisecond
	out := TracesJSON([]Trace{tr})
	if len(out) != 1 || out[0].ID != 3 || !out[0].Remastered {
		t.Fatalf("json = %+v", out)
	}
	if out[0].Stages["route"] != int64(time.Millisecond) {
		t.Fatalf("stages = %+v", out[0].Stages)
	}
	if out[0].Total != "1.5ms" {
		t.Fatalf("total = %q", out[0].Total)
	}
}
