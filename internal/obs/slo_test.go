package obs

import (
	"strings"
	"testing"
	"time"
)

func TestParseSLOSpec(t *testing.T) {
	targets, err := ParseSLOSpec("dynamast_txn_update_seconds:0.99:250ms, dynamast_txn_read_seconds:p999:100ms")
	if err != nil {
		t.Fatal(err)
	}
	if len(targets) != 2 {
		t.Fatalf("parsed %d targets, want 2", len(targets))
	}
	if targets[0].Metric != "dynamast_txn_update_seconds" || targets[0].Quantile != 0.99 ||
		targets[0].Threshold != 250*time.Millisecond {
		t.Fatalf("target 0 wrong: %+v", targets[0])
	}
	if targets[1].Quantile != 0.999 || targets[1].Threshold != 100*time.Millisecond {
		t.Fatalf("p999 form parsed wrong: %+v", targets[1])
	}
	if got, err := ParseSLOSpec(""); err != nil || len(got) != 0 {
		t.Fatalf("empty spec = (%v, %v), want no targets, no error", got, err)
	}
	for _, bad := range []string{
		"m:0.99",          // missing threshold
		"m:abc:10ms",      // bad quantile
		"m:1.5:10ms",      // quantile out of range
		"m:0:10ms",        // quantile zero
		"m:0.99:fast",     // bad duration
		"m:0.99:10ms:bad", // too many fields
	} {
		if _, err := ParseSLOSpec(bad); err == nil {
			t.Errorf("ParseSLOSpec(%q) accepted malformed spec", bad)
		}
	}
}

func TestSLOTargetString(t *testing.T) {
	s := SLOTarget{Metric: "m", Quantile: 0.99, Threshold: 250 * time.Millisecond}.String()
	if s != "m:p99:250ms" {
		t.Fatalf("String() = %q, want m:p99:250ms", s)
	}
}

func TestSLOWatchValidation(t *testing.T) {
	e := NewSLOEngine(NewRegistry())
	for _, bad := range []SLOTarget{
		{Quantile: 0.99, Threshold: time.Millisecond},              // no metric
		{Metric: "m", Quantile: 0, Threshold: time.Millisecond},    // zero quantile
		{Metric: "m", Quantile: 1.01, Threshold: time.Millisecond}, // quantile > 1
		{Metric: "m", Quantile: 0.99},                              // no threshold
	} {
		if err := e.Watch(bad); err == nil {
			t.Errorf("Watch accepted invalid target %+v", bad)
		}
	}
	if err := e.Watch(SLOTarget{Metric: "m", Quantile: 0.99, Threshold: time.Millisecond}); err != nil {
		t.Fatalf("Watch rejected valid target: %v", err)
	}
	got := e.Targets()
	if len(got) != 1 || got[0].MinCount != DefaultSLOMinCount {
		t.Fatalf("Targets() = %+v, want one target with default MinCount", got)
	}
}

func TestSLOEvaluateWindowed(t *testing.T) {
	reg := NewRegistry()
	h := reg.Histogram("test_latency_seconds")
	e := NewSLOEngine(reg)
	if err := e.Watch(SLOTarget{
		Metric: "test_latency_seconds", Quantile: 0.5,
		Threshold: 10 * time.Millisecond, MinCount: 1,
	}); err != nil {
		t.Fatal(err)
	}

	// Window 1: all fast — no breach.
	for i := 0; i < 20; i++ {
		h.Observe(0.001)
	}
	if br := e.Evaluate(); len(br) != 0 {
		t.Fatalf("fast window breached: %+v", br)
	}

	// Window 2: all slow. The cumulative histogram median would still be
	// diluted by window 1's 20 fast points; the windowed delta must see only
	// the slow ones and breach.
	for i := 0; i < 10; i++ {
		h.Observe(0.5)
	}
	br := e.Evaluate()
	if len(br) != 1 {
		t.Fatalf("slow window: got %d breaches, want 1", len(br))
	}
	if br[0].Window != 10 {
		t.Fatalf("breach window = %d observations, want 10 (delta, not cumulative)", br[0].Window)
	}
	if br[0].Observed < 100*time.Millisecond {
		t.Fatalf("breach observed %v, want >= 100ms-ish for 500ms observations", br[0].Observed)
	}
	if e.TotalBreaches() != 1 {
		t.Fatalf("TotalBreaches = %d, want 1", e.TotalBreaches())
	}
	if !strings.Contains(br[0].String(), "SLO breach") {
		t.Fatalf("Breach.String() = %q", br[0].String())
	}

	// Window 3: empty — no observations, no breach, no divide-by-zero.
	if br := e.Evaluate(); len(br) != 0 {
		t.Fatalf("empty window breached: %+v", br)
	}

	snap := reg.Snapshot()
	lbls := []Label{L("metric", "test_latency_seconds"), L("quantile", "0.5")}
	if v, ok := snap.Value("dynamast_slo_breaches_total", lbls...); !ok || v != 1 {
		t.Fatalf("per-target breach counter = %v (ok=%v), want 1", v, ok)
	}
	if v, ok := snap.Value("dynamast_slo_breaches_total"); !ok || v != 1 {
		t.Fatalf("total breach counter = %v (ok=%v), want 1", v, ok)
	}
	if v, ok := snap.Value("dynamast_slo_window_observations", lbls...); !ok || v != 0 {
		t.Fatalf("window gauge = %v (ok=%v), want 0 after the empty window", v, ok)
	}
}

func TestSLOMinCountSkipsThinWindows(t *testing.T) {
	reg := NewRegistry()
	h := reg.Histogram("thin_seconds")
	e := NewSLOEngine(reg)
	if err := e.Watch(SLOTarget{
		Metric: "thin_seconds", Quantile: 0.99,
		Threshold: time.Microsecond, // everything breaches...
		MinCount:  8,                // ...but thin windows are skipped
	}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 7; i++ {
		h.Observe(1.0)
	}
	if br := e.Evaluate(); len(br) != 0 {
		t.Fatalf("thin window (7 < MinCount 8) breached: %+v", br)
	}
	h.Observe(1.0) // 8th observation lands in the NEXT window
	for i := 0; i < 7; i++ {
		h.Observe(1.0)
	}
	if br := e.Evaluate(); len(br) != 1 {
		t.Fatalf("full window: got %d breaches, want 1", len(br))
	}
}

func TestSLOOverflowBucketPessimistic(t *testing.T) {
	var delta [histBuckets + 1]uint64
	delta[histBuckets] = 10 // all observations in overflow
	got := quantileFromDeltas(&delta, 10, 0.99)
	want := bucketBounds[histBuckets-1] * 2
	if got != want {
		t.Fatalf("overflow quantile = %v, want pessimistic %v", got, want)
	}
	if q := quantileFromDeltas(&delta, 0, 0.99); q != 0 {
		t.Fatalf("zero-total quantile = %v, want 0", q)
	}
}

func TestSLOEngineNilSafe(t *testing.T) {
	var e *SLOEngine
	if err := e.Watch(SLOTarget{}); err != nil {
		t.Fatal("nil engine Watch must no-op")
	}
	if e.Evaluate() != nil || e.Targets() != nil || e.TotalBreaches() != 0 {
		t.Fatal("nil engine accessors must return zero values")
	}
	e.Start(time.Second)
	e.Stop()
}

func TestSLOStartStop(t *testing.T) {
	reg := NewRegistry()
	h := reg.Histogram("periodic_seconds")
	e := NewSLOEngine(reg)
	if err := e.Watch(SLOTarget{
		Metric: "periodic_seconds", Quantile: 0.5,
		Threshold: time.Microsecond, MinCount: 1,
	}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		h.Observe(1.0)
	}
	e.Start(time.Millisecond)
	e.Start(time.Millisecond) // idempotent second start
	deadline := time.Now().Add(2 * time.Second)
	for e.TotalBreaches() == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	e.Stop()
	e.Stop() // idempotent
	if e.TotalBreaches() == 0 {
		t.Fatal("periodic evaluation never detected the breach")
	}
}
