package obs

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// The flight recorder is process-global, so these tests assert on deltas
// and uniquely tagged messages rather than absolute ring contents.

func TestFlightRecordAndCollect(t *testing.T) {
	before := FlightEventCount()
	tag := fmt.Sprintf("flight-test-%d", before)
	RecordEvent(FlightRemaster, 2, "moved %d partitions (%s)", 3, tag)
	RecordEvent(FlightFailover, 1, "site 1 down (%s)", tag)
	if got := FlightEventCount(); got != before+2 {
		t.Fatalf("FlightEventCount = %d, want %d", got, before+2)
	}

	events := FlightEvents()
	var mine []FlightEvent
	for _, ev := range events {
		if strings.Contains(ev.Msg, tag) {
			mine = append(mine, ev)
		}
	}
	if len(mine) != 2 {
		t.Fatalf("found %d tagged events, want 2", len(mine))
	}
	if mine[0].Kind != FlightRemaster || mine[0].Site != 2 || mine[0].Msg != "moved 3 partitions ("+tag+")" {
		t.Fatalf("first event wrong: %+v", mine[0])
	}
	if mine[1].Kind != FlightFailover || mine[1].Site != 1 {
		t.Fatalf("second event wrong: %+v", mine[1])
	}
	// Oldest-first ordering by dense sequence numbers.
	if mine[0].Seq >= mine[1].Seq || mine[0].At.IsZero() {
		t.Fatalf("events out of order or unstamped: %+v", mine)
	}
	for i := 1; i < len(events); i++ {
		if events[i-1].Seq >= events[i].Seq {
			t.Fatalf("FlightEvents not sorted by Seq at %d", i)
		}
	}
}

func TestFlightSnapshotToDisk(t *testing.T) {
	dir := t.TempDir()
	if err := SetFlightDir(dir); err != nil {
		t.Fatal(err)
	}
	defer SetFlightDir("")
	if FlightDir() != dir {
		t.Fatalf("FlightDir = %q, want %q", FlightDir(), dir)
	}

	tag := fmt.Sprintf("snapshot-test-%d", FlightEventCount())
	RecordEvent(FlightRecovery, 0, "recovered (%s)", tag)
	path, err := SnapshotFlight("unit")
	if err != nil {
		t.Fatal(err)
	}
	if filepath.Dir(path) != dir || !strings.Contains(filepath.Base(path), "-unit.json") {
		t.Fatalf("snapshot path %q: want flight-<n>-unit.json under %q", path, dir)
	}

	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var snap struct {
		Reason string        `json:"reason"`
		Events []FlightEvent `json:"events"`
	}
	if err := json.Unmarshal(data, &snap); err != nil {
		t.Fatalf("snapshot not valid JSON: %v", err)
	}
	if snap.Reason != "unit" {
		t.Fatalf("snapshot reason = %q, want unit", snap.Reason)
	}
	found := false
	for _, ev := range snap.Events {
		if strings.Contains(ev.Msg, tag) && ev.Kind == FlightRecovery {
			found = true
		}
	}
	if !found {
		t.Fatal("snapshot missing the event recorded before it")
	}
}

func TestFlightSnapshotDisabled(t *testing.T) {
	if err := SetFlightDir(""); err != nil {
		t.Fatal(err)
	}
	path, err := SnapshotFlight("nowhere")
	if err != nil || path != "" {
		t.Fatalf("disabled snapshot = (%q, %v), want empty no-op", path, err)
	}
}

func TestFlightInstrument(t *testing.T) {
	reg := NewRegistry()
	InstrumentFlight(reg)
	before, _ := reg.Snapshot().Value("dynamast_flightrec_events_total", L("kind", FlightWALTruncate))
	RecordEvent(FlightWALTruncate, 3, "truncated")
	after, ok := reg.Snapshot().Value("dynamast_flightrec_events_total", L("kind", FlightWALTruncate))
	if !ok || after != before+1 {
		t.Fatalf("wal_truncate counter %v -> %v (ok=%v), want +1", before, after, ok)
	}
	// Every taxonomy kind is pre-registered even if it never fired.
	for _, kind := range flightKinds {
		if _, ok := reg.Snapshot().Value("dynamast_flightrec_events_total", L("kind", kind)); !ok {
			t.Errorf("kind %q not pre-registered", kind)
		}
	}
	if _, ok := reg.Snapshot().Value("dynamast_flightrec_snapshots_total"); !ok {
		t.Error("snapshot counter not registered")
	}
}
