package obs

import (
	"fmt"
	"math"
	"strconv"
	"strings"
	"sync"
	"time"
)

// SLO engine: sliding-window quantile tracking with threshold breach
// detection over the registry's log-bucketed histograms. The cumulative
// Histogram quantiles answer "how has this process behaved since boot";
// SLOs need "how is it behaving *now*". The engine snapshots each watched
// histogram's raw bucket counters on every evaluation and computes the
// quantile of the *delta* — the observations that arrived during the last
// window — so a breach reflects current behaviour, not diluted history.
// Breaches increment dynamast_slo_breaches_total, land in the flight
// recorder, and drive the CI gate on the chaos suite.

// SLOTarget is one watched quantile threshold.
type SLOTarget struct {
	// Metric is the histogram's registered name.
	Metric string
	// Labels selects the histogram's exact label set.
	Labels []Label
	// Quantile is the watched quantile in (0, 1], e.g. 0.99.
	Quantile float64
	// Threshold breaches when the windowed quantile exceeds it.
	Threshold time.Duration
	// MinCount is the minimum observations per window for the target to be
	// evaluated (0 selects DefaultSLOMinCount); thin windows are skipped
	// rather than breached on noise.
	MinCount uint64
}

// DefaultSLOMinCount is the default per-window observation floor.
const DefaultSLOMinCount = 8

// String renders the target in slo-spec syntax.
func (t SLOTarget) String() string {
	return fmt.Sprintf("%s:p%g:%v", t.Metric, t.Quantile*100, t.Threshold)
}

// Breach is one detected threshold violation.
type Breach struct {
	Target   SLOTarget
	Observed time.Duration // the windowed quantile that exceeded the threshold
	Window   uint64        // observations in the window
	At       time.Time
}

// String renders the breach for logs and gate failures.
func (b Breach) String() string {
	return fmt.Sprintf("SLO breach: %s observed %v over %d obs", b.Target, b.Observed.Round(time.Microsecond), b.Window)
}

// sloWatch is one target's evaluation state.
type sloWatch struct {
	target SLOTarget
	hist   *Histogram
	prev   [histBuckets + 1]uint64 // bucket counters at the last evaluation

	latency  *Gauge   // dynamast_slo_latency_seconds{metric,quantile,...}
	window   *Gauge   // dynamast_slo_window_observations{metric,quantile,...}
	breached *Counter // dynamast_slo_breaches_total{metric,quantile,...}
}

// SLOEngine evaluates a set of SLOTargets, either on demand (Evaluate) or
// periodically (Start). A nil *SLOEngine no-ops.
type SLOEngine struct {
	reg *Registry

	mu      sync.Mutex
	watches []*sloWatch

	stop chan struct{}
	done chan struct{}

	breaches *Counter // total across targets
}

// NewSLOEngine returns an engine registering its metrics in reg (which may
// be nil for tests).
func NewSLOEngine(reg *Registry) *SLOEngine {
	reg.Help("dynamast_slo_latency_seconds", "Sliding-window latency quantile per SLO target.")
	reg.Help("dynamast_slo_window_observations", "Observations in the last SLO evaluation window.")
	reg.Help("dynamast_slo_breaches_total", "SLO threshold breaches detected, per target and in total.")
	return &SLOEngine{
		reg:      reg,
		breaches: reg.Counter("dynamast_slo_breaches_total"),
	}
}

// Watch adds a target. The watched histogram is resolved (registering an
// empty one if the producing component has not instrumented yet — the
// registry hands both parties the same instrument).
func (e *SLOEngine) Watch(t SLOTarget) error {
	if e == nil {
		return nil
	}
	if t.Metric == "" || t.Quantile <= 0 || t.Quantile > 1 || t.Threshold <= 0 {
		return fmt.Errorf("obs: invalid SLO target %+v", t)
	}
	if t.MinCount == 0 {
		t.MinCount = DefaultSLOMinCount
	}
	w := &sloWatch{target: t, hist: e.reg.Histogram(t.Metric, t.Labels...)}
	if w.hist == nil {
		w.hist = NewHistogram() // nil registry: still evaluable in tests
	}
	lbls := append(append([]Label(nil), t.Labels...),
		L("metric", t.Metric), L("quantile", strconv.FormatFloat(t.Quantile, 'g', -1, 64)))
	w.latency = e.reg.Gauge("dynamast_slo_latency_seconds", lbls...)
	w.window = e.reg.Gauge("dynamast_slo_window_observations", lbls...)
	w.breached = e.reg.Counter("dynamast_slo_breaches_total", lbls...)
	e.mu.Lock()
	e.watches = append(e.watches, w)
	e.mu.Unlock()
	return nil
}

// Targets returns the watched targets.
func (e *SLOEngine) Targets() []SLOTarget {
	if e == nil {
		return nil
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	out := make([]SLOTarget, len(e.watches))
	for i, w := range e.watches {
		out[i] = w.target
	}
	return out
}

// Evaluate closes the current window for every target: it computes each
// windowed quantile, publishes the gauges, and returns (and counts, and
// flight-records) any breaches.
func (e *SLOEngine) Evaluate() []Breach {
	if e == nil {
		return nil
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	now := time.Now()
	var breaches []Breach
	for _, w := range e.watches {
		var delta [histBuckets + 1]uint64
		var total uint64
		for i := range delta {
			cur := w.hist.buckets[i].Load()
			delta[i] = cur - w.prev[i]
			w.prev[i] = cur
			total += delta[i]
		}
		w.window.Set(float64(total))
		if total < w.target.MinCount {
			continue // thin window: keep the previous latency gauge value
		}
		q := quantileFromDeltas(&delta, total, w.target.Quantile)
		w.latency.Set(q)
		if q > w.target.Threshold.Seconds() {
			b := Breach{
				Target:   w.target,
				Observed: time.Duration(q * float64(time.Second)),
				Window:   total,
				At:       now,
			}
			breaches = append(breaches, b)
			w.breached.Inc()
			e.breaches.Inc()
			RecordEvent(FlightSLOBreach, SelectorSite, "%s", b.String())
		}
	}
	return breaches
}

// TotalBreaches returns the lifetime breach count across all targets.
func (e *SLOEngine) TotalBreaches() uint64 {
	if e == nil {
		return 0
	}
	return e.breaches.Value()
}

// Start evaluates every interval until Stop. Idempotent Stop; Start after
// Stop is not supported.
func (e *SLOEngine) Start(interval time.Duration) {
	if e == nil || interval <= 0 {
		return
	}
	e.mu.Lock()
	if e.stop != nil {
		e.mu.Unlock()
		return
	}
	e.stop = make(chan struct{})
	e.done = make(chan struct{})
	stop, done := e.stop, e.done
	e.mu.Unlock()
	go func() {
		defer close(done)
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-stop:
				return
			case <-t.C:
				e.Evaluate()
			}
		}
	}()
}

// Stop halts periodic evaluation (no-op if never started).
func (e *SLOEngine) Stop() {
	if e == nil {
		return
	}
	e.mu.Lock()
	stop, done := e.stop, e.done
	e.stop, e.done = nil, nil
	e.mu.Unlock()
	if stop != nil {
		close(stop)
		<-done
	}
}

// quantileFromDeltas computes the p-quantile of one window's bucket deltas,
// mirroring Histogram.Quantile's rank walk and in-bucket interpolation. The
// overflow bucket has no exact max for the window, so it reports twice the
// last finite bound — pessimistic, which is the right bias for a breach
// detector.
func quantileFromDeltas(delta *[histBuckets + 1]uint64, total uint64, p float64) float64 {
	if total == 0 {
		return 0
	}
	rank := uint64(math.Ceil(p * float64(total)))
	if rank == 0 {
		rank = 1
	}
	var cum uint64
	for i := 0; i <= histBuckets; i++ {
		n := delta[i]
		if n == 0 {
			continue
		}
		if cum+n < rank {
			cum += n
			continue
		}
		if i == histBuckets {
			return bucketBounds[histBuckets-1] * 2
		}
		lo := 0.0
		if i > 0 {
			lo = bucketBounds[i-1]
		}
		hi := bucketBounds[i]
		frac := float64(rank-cum) / float64(n)
		return lo + (hi-lo)*frac
	}
	return bucketBounds[histBuckets-1] * 2
}

// ParseSLOSpec parses a comma-separated SLO specification:
//
//	metric:quantile:threshold
//
// e.g. "dynamast_txn_update_seconds:0.99:250ms,dynamast_txn_read_seconds:0.999:100ms".
// Quantiles accept 0.5/0.99/0.999 or p50/p99/p999 forms.
func ParseSLOSpec(spec string) ([]SLOTarget, error) {
	var out []SLOTarget
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		fields := strings.Split(part, ":")
		if len(fields) != 3 {
			return nil, fmt.Errorf("obs: slo spec %q: want metric:quantile:threshold", part)
		}
		qs := strings.TrimPrefix(fields[1], "p")
		q, err := strconv.ParseFloat(qs, 64)
		if err != nil {
			return nil, fmt.Errorf("obs: slo spec %q: bad quantile: %w", part, err)
		}
		if strings.HasPrefix(fields[1], "p") {
			// p50 -> 0.5, p99 -> 0.99; extra nines (p999, p9999) shift down
			// a digit at a time so "three nines" parses as 0.999.
			q /= 100
			for q > 1 {
				q /= 10
			}
		}
		if q <= 0 || q > 1 {
			return nil, fmt.Errorf("obs: slo spec %q: quantile %v not in (0,1]", part, q)
		}
		d, err := time.ParseDuration(fields[2])
		if err != nil {
			return nil, fmt.Errorf("obs: slo spec %q: bad threshold: %w", part, err)
		}
		out = append(out, SLOTarget{Metric: fields[0], Quantile: q, Threshold: d})
	}
	return out, nil
}
